// Command repro is the one-command reproduction pipeline: it enumerates
// the experiment registry (the paper's Figures 6–10 plus this
// reproduction's ablations), runs any subset of it across all systems —
// independent (experiment × system) cells execute in parallel worker
// shards — and emits machine-readable results (BENCH_repro.json) plus
// markdown tables ready to embed in docs.
//
// Usage:
//
//	repro list                               # every registry entry, no runs
//	repro run --all --scale=ci               # smoke-run everything
//	repro run --figure=6 --scale=quick       # both panels of Figure 6
//	repro run --id=fig9-low,capacity         # explicit entries
//	repro run --all --baseline=old.json      # run + regression check
//	repro compare --baseline=a.json --current=b.json
//
// Scales: ci (seconds, smoke), quick (minutes), paper (the full ladder
// to 80 threads; hours). The simulator's absolute throughput depends on
// the host — shape, not numbers, is the reproduction target (see
// docs/experiments.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sihtm/internal/experiments"
	"sihtm/internal/hotbench"
	"sihtm/internal/results"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "durable":
		err = cmdDurable(os.Args[2:])
	case "recover":
		err = cmdRecover(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "promote":
		err = cmdPromote(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "monitor":
		err = cmdMonitor(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "repro: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `repro — reproduction pipeline for the SI-HTM evaluation

commands:
  list                      enumerate the experiment registry
  run                       run experiments, write JSON + markdown results
  bench                     run the hot-path microbenchmark suite (BENCH_hotpath.json)
  durable                   run a durable workload against a WAL directory (crashable)
  recover                   crash-replay a durable run directory and check invariants
  serve                     run the networked transaction server (SIGTERM drains)
  loadgen                   drive the net-* cells against a live server, write results
  promote                   promote a follower after leader death (zero acked loss)
  trace                     merge /debug/traces rings into a Chrome trace_event file
  monitor                   live terminal dashboard over /debug/timeseries + /debug/alerts
  report                    post-run incident report from timeseries + alerts + traces
  compare                   compare two result files for regressions

serve flags:
  --addr=HOST:PORT          listen address (default 127.0.0.1:7654)
  --scenario=ycsb-a         hosted workload build: ycsb-a|ycsb-b|ycsb-c
  --system=si-htm           concurrency control (default si-htm)
  --scale=ci|quick|paper    workload sizing preset (default ci)
  --shards=N                executor goroutines (default 4)
  --batch=N                 admission bound: max ops per transaction (default 32)
  --admit-wait=DUR          admission grace: wait for fuller batches (default 0)
  --p99-target=DUR          adaptive admission control: steer batch/grace toward this p99 (default off)
  --durable-dir=DIR         serve durably (WAL + checkpoints + meta.json in DIR)
  --window=DUR              durable group-commit fsync window (default 1ms)
  --checkpoint-every=DUR    fuzzy checkpoint interval (default 1s; 0 disables)
  --follow=HOST:PORT        serve as a read replica of the durable leader at ADDR
  --leader-log=PATH         shared-storage path of the leader's wal.log (for promotion)
  --metrics-addr=HOST:PORT  observability plane: /metrics, /healthz, /readyz, /debug/pprof,
                            /debug/traces, /debug/timeseries, /debug/alerts
  --scrape-interval=DUR     tsdb self-scrape / alert evaluation cadence (default 1s)
  --trace-slow=DUR          log per-stage lifecycle traces for requests slower than DUR

promote flags:
  --addr=HOST:PORT          follower address to promote (required)

trace flags + args:
  --out=FILE                Chrome trace_event output (default trace.json; '-' = stdout)
  --trace=ID                restrict to one trace id (decimal)
  NODE=URL-or-FILE ...      sources: per-node /debug/traces URLs or saved JSONL files
                            (e.g. leader=http://127.0.0.1:9464/debug/traces)

monitor flags + args:
  --interval=DUR            refresh cadence (default 1s)
  --window=DUR              rate/percentile window (default 10s)
  --once                    render a single frame and exit (no screen clearing)
  --duration=DUR            stop after DUR (default 0: run until interrupted)
  NODE=URL ...              metrics listeners to poll (e.g. leader=http://127.0.0.1:9464)

report flags + args:
  --out=FILE                markdown output (default report.md; '-' = stdout)
  --title=STR               report title (default "run")
  --bench=FILE              attach final stats from a BENCH JSON file
  NODE=URL ...              metrics listeners to collect from (timeseries + alerts + traces)

loadgen flags:
  --addr=HOST:PORT          server address (required)
  --id=a,b                  net entries (default: all, incl. net-connscale)
  --scale=ci|quick|paper    client scale: conn/thread ladders + run windows (default ci)
  --conns=N                 open-loop mode: drive N connections at --arrival instead of --id
  --arrival=poisson:RATE    open-loop arrival process, total ops/sec (or uniform:RATE)
  --trace-every=N           open-loop mode: stamp every n-th request with a trace id (1 = all)
  --window=DUR              open-loop mode: override the scale preset's measurement window
  --out=FILE                JSON results (default BENCH_repro.json)
  --md=FILE                 markdown tables ('-' = stdout, '' = none; default BENCH_repro.md)

durable flags:
  --dir=DIR                 run directory (meta.json + wal.log + heap.ckpt)
  --scenario=ycsb-a         workload: ycsb-a or vacation
  --system=si-htm           concurrency control (default si-htm)
  --threads=N               worker threads (default 4)
  --scale=ci|quick|paper    workload sizing preset (default ci)
  --window=DUR              group-commit fsync window (default 1ms)
  --checkpoint-every=DUR    fuzzy checkpoint interval (default 1s; 0 disables)
  --duration=DUR            stop cleanly after DUR (default 0: run until killed)

recover flags:
  --dir=DIR                 run directory written by 'repro durable'
  --out=FILE                JSON recovery report (default BENCH_recover.json; '' = none)

bench flags:
  --time=DUR                per-case measurement budget (default 100ms)
  --sweep=1,64,...          footprint ladder in cache lines (default 1,4,16,64,256,1024,4096)
  --out=FILE                JSON results (default BENCH_hotpath.json)
  --baseline=FILE           embed a previous bench report's records as the baseline
  --quiet                   suppress per-case progress

run flags:
  --all                     run every registry entry
  --figure=N[,M]            run a figure's panels (6..10)
  --id=a,b                  entries, prefixes (ycsb, vacation) or groups
                            (figures, scenarios, ablations) — see 'repro list'
  --systems=a,b             restrict to these systems (default: all of each entry)
  --scale=ci|quick|paper    scale preset (default ci)
  --shards=N                parallel (experiment × system) cells (default GOMAXPROCS)
  --out=FILE                JSON results (default BENCH_repro.json)
  --md=FILE                 markdown tables ('-' = stdout, '' = none; default BENCH_repro.md)
  --baseline=FILE           compare against a previous JSON result file
  --tolerance=F             regression tolerance as a fraction (default 0.5)
  --min-commits=N           skip baseline cells with fewer commits (default 100)
  --fail-on-regression      exit non-zero if the baseline comparison flags cells
  --cpuprofile=FILE         write a pprof CPU profile of the run
  --memprofile=FILE         write a pprof heap profile after the run
  --quiet                   suppress per-cell progress
`)
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	figure := fs.Int("figure", 0, "only this figure's entries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	entries := experiments.Registry()
	fmt.Printf("%-18s %-10s %-6s %-9s %-28s %s\n", "ID", "GROUP", "FIGURE", "WORKLOAD", "SYSTEMS", "PARAMS")
	for _, e := range entries {
		if *figure != 0 && e.Figure != *figure {
			continue
		}
		fig := "-"
		if e.Figure > 0 {
			fig = fmt.Sprintf("%d/%s", e.Figure, e.Panel)
		}
		fmt.Printf("%-18s %-10s %-6s %-9s %-28s %s\n", e.ID, e.Group(), fig, e.Workload, strings.Join(e.Systems, ","), e.Params)
		if len(e.ThreadLadder) > 0 {
			fmt.Printf("%-18s %-10s %-6s %-9s thread ladder %v\n", "", "", "", "", e.ThreadLadder)
		}
	}
	fmt.Printf("\n%d entries; selector groups: %s; scales: %s\n",
		len(entries), strings.Join(experiments.Groups(), ", "), strings.Join(experiments.ScaleNames(), ", "))
	return nil
}

// cell is one independently runnable (experiment × system) unit.
type cell struct {
	entry  experiments.Entry
	system string
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		all        = fs.Bool("all", false, "run every registry entry")
		figure     = fs.String("figure", "", "comma-separated figures (6..10)")
		ids        = fs.String("id", "", "comma-separated entry ids")
		systems    = fs.String("systems", "", "restrict to these systems")
		scaleName  = fs.String("scale", "ci", "scale preset: "+strings.Join(experiments.ScaleNames(), "|"))
		shards     = fs.Int("shards", runtime.GOMAXPROCS(0), "parallel cells")
		out        = fs.String("out", "BENCH_repro.json", "JSON output path")
		md         = fs.String("md", "BENCH_repro.md", "markdown output path ('-' = stdout, '' = none)")
		baseline   = fs.String("baseline", "", "baseline JSON to compare against")
		tolerance  = fs.Float64("tolerance", 0.5, "regression tolerance fraction")
		minCommits = fs.Uint64("min-commits", 100, "skip baseline cells with fewer commits (noise)")
		failOnReg  = fs.Bool("fail-on-regression", false, "exit non-zero on flagged regressions")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile after the run")
		quiet      = fs.Bool("quiet", false, "suppress per-cell progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "repro: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "repro: memprofile:", err)
			}
			f.Close()
		}()
	}

	sc, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		return err
	}

	var selectors []string
	if *all {
		selectors = append(selectors, "all")
	}
	if *figure != "" {
		selectors = append(selectors, strings.Split(*figure, ",")...)
	}
	if *ids != "" {
		selectors = append(selectors, strings.Split(*ids, ",")...)
	}
	if len(selectors) == 0 {
		return fmt.Errorf("nothing selected: pass --all, --figure or --id (see 'repro list')")
	}
	entries, err := experiments.Select(strings.Join(selectors, ","))
	if err != nil {
		return fmt.Errorf("%w (see 'repro list')", err)
	}

	restrict := map[string]bool{}
	for _, s := range strings.Split(*systems, ",") {
		if s = strings.TrimSpace(s); s != "" {
			restrict[s] = true
		}
	}

	var cells []cell
	for _, e := range entries {
		for _, s := range e.Systems {
			if len(restrict) > 0 && !restrict[s] {
				continue
			}
			cells = append(cells, cell{entry: e, system: s})
		}
	}
	if len(cells) == 0 {
		return fmt.Errorf("selection yields no (experiment × system) cells")
	}

	rep, runErr := runCells(cells, sc, *scaleName, *shards, *quiet)
	if runErr != nil && len(rep.Records) == 0 {
		return runErr
	}

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			return err
		}
		partial := ""
		if rep.Partial {
			partial = ", PARTIAL"
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d records%s)\n", *out, len(rep.Records), partial)
	}
	switch *md {
	case "":
	case "-":
		results.MarkdownReport(os.Stdout, rep, experiments.Titles())
	default:
		f, err := os.Create(*md)
		if err != nil {
			return err
		}
		results.MarkdownReport(f, rep, experiments.Titles())
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *md)
	}

	if runErr != nil {
		return fmt.Errorf("run aborted after %d record(s): %w", len(rep.Records), runErr)
	}

	if *baseline != "" {
		base, err := results.ReadFile(*baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		c := results.Compare(base, rep, *tolerance, *minCommits)
		c.WriteText(os.Stdout)
		if *failOnReg && len(c.Regressions) > 0 {
			return fmt.Errorf("%d throughput regression(s) beyond %.0f%% tolerance", len(c.Regressions), 100**tolerance)
		}
	}
	return nil
}

// runCells executes the cells in a shard pool and assembles the report.
// On a cell failure it stops dispatching further cells (in-flight cells
// finish) and returns the records gathered so far in a report marked
// Partial, together with the first error.
func runCells(cells []cell, sc experiments.Scale, scaleName string, shards int, quiet bool) (*results.Report, error) {
	if shards < 1 {
		shards = 1
	}
	if shards > len(cells) {
		shards = len(cells)
	}

	var (
		mu      sync.Mutex
		recs    []results.Record
		firstEC error
		done    int
		failed  atomic.Bool
	)
	work := make(chan cell)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				rs, err := c.entry.RunCell(c.system, sc, nil)
				mu.Lock()
				if err != nil {
					if firstEC == nil {
						firstEC = err
					}
					failed.Store(true)
				} else {
					recs = append(recs, rs...)
				}
				done++
				if !quiet {
					status := "ok"
					if err != nil {
						status = "FAILED: " + err.Error()
					}
					fmt.Fprintf(os.Stderr, "[%3d/%3d] %-11s %-13s %s\n", done, len(cells), c.entry.ID, c.system, status)
				}
				mu.Unlock()
			}
		}()
	}
	for _, c := range cells {
		if failed.Load() {
			break
		}
		work <- c
	}
	close(work)
	wg.Wait()

	rep := &results.Report{
		Tool:       "cmd/repro",
		Scale:      scaleName,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Shards:     shards,
		Machine:    experiments.MachineDescription(),
		Partial:    firstEC != nil,
		Records:    recs,
	}
	rep.Sort()
	return rep, firstEC
}

// cmdBench runs the hot-path microbenchmark suite (internal/hotbench)
// and writes BENCH_hotpath.json. With --baseline, a previous report's
// records are embedded so one artifact carries before/after numbers and
// the printed table gains a speed-up column.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		budget   = fs.Duration("time", 100*time.Millisecond, "per-case measurement budget")
		sweepStr = fs.String("sweep", "", "comma-separated footprint ladder in cache lines")
		out      = fs.String("out", "BENCH_hotpath.json", "JSON output path")
		baseline = fs.String("baseline", "", "previous bench report to embed as baseline")
		quiet    = fs.Bool("quiet", false, "suppress per-case progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sweep := hotbench.DefaultSweep
	if *sweepStr != "" {
		sweep = nil
		for _, s := range strings.Split(*sweepStr, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad --sweep entry %q", s)
			}
			sweep = append(sweep, n)
		}
	}

	rep := &results.BenchReport{
		Tool:       "cmd/repro bench",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if *baseline != "" {
		base, err := results.ReadBenchFile(*baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		rep.Baseline = base.Records
	}

	total := len(hotbench.Cases(sweep))
	done := 0
	rep.Records = hotbench.RunAll(sweep, *budget, func(r results.BenchRecord) {
		done++
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-22s %12.1f ns/op %8.2f allocs/op\n",
				done, total, r.Name, r.NsPerOp, r.AllocsPerOp)
		}
	})
	rep.Sort()

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d records)\n", *out, len(rep.Records))
	}
	rep.WriteText(os.Stdout)
	return nil
}

// cmdDurable runs a durable workload against an on-disk WAL directory,
// either for a fixed duration or until the process is killed — the
// crash half of the recovery pipeline.
func cmdDurable(args []string) error {
	fs := flag.NewFlagSet("durable", flag.ExitOnError)
	var (
		dir       = fs.String("dir", "", "run directory (required)")
		scenario  = fs.String("scenario", "ycsb-a", "workload: "+strings.Join(experiments.DurableScenarioNames(), "|"))
		system    = fs.String("system", "si-htm", "concurrency control")
		threads   = fs.Int("threads", 4, "worker threads")
		scaleName = fs.String("scale", "ci", "workload sizing preset")
		window    = fs.Duration("window", time.Millisecond, "group-commit fsync window")
		ckptEvery = fs.Duration("checkpoint-every", time.Second, "fuzzy checkpoint interval (0 disables)")
		duration  = fs.Duration("duration", 0, "stop cleanly after this long (0 = run until killed)")
		quiet     = fs.Bool("quiet", false, "suppress the per-second progress line")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("durable needs --dir")
	}
	meta := experiments.DurableMeta{
		Scenario: *scenario,
		System:   *system,
		Scale:    *scaleName,
		Threads:  *threads,
		WindowNS: int64(*window),
	}
	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}
	fmt.Fprintf(os.Stderr, "durable run: %s on %s, %d threads, window %s → %s\n",
		*scenario, *system, *threads, *window, *dir)
	return experiments.StartDurable(*dir, meta, *duration, *ckptEvery, progress)
}

// cmdRecover crash-replays a durable run directory: rebuild the
// scenario base, restore checkpoint + log, verify invariants, and write
// the recovery report.
func cmdRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	var (
		dir = fs.String("dir", "", "run directory written by 'repro durable' (required)")
		out = fs.String("out", "BENCH_recover.json", "JSON recovery report ('' = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("recover needs --dir")
	}
	rep, rerr := experiments.RecoverDurable(*dir)
	if *out != "" {
		j, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(j, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	if rerr != nil {
		return rerr
	}
	fmt.Printf("recovery OK: %s\n", rep.Detail)
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	var (
		baseline   = fs.String("baseline", "", "baseline JSON file")
		current    = fs.String("current", "", "current JSON file")
		tolerance  = fs.Float64("tolerance", 0.5, "regression tolerance fraction")
		minCommits = fs.Uint64("min-commits", 100, "skip baseline cells with fewer commits (noise)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline == "" || *current == "" {
		return fmt.Errorf("compare needs --baseline and --current")
	}
	base, err := results.ReadFile(*baseline)
	if err != nil {
		return err
	}
	cur, err := results.ReadFile(*current)
	if err != nil {
		return err
	}
	c := results.Compare(base, cur, *tolerance, *minCommits)
	c.WriteText(os.Stdout)
	if len(c.Regressions) > 0 {
		return fmt.Errorf("%d throughput regression(s)", len(c.Regressions))
	}
	return nil
}
