package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Two saved rings with fixed timestamps: the leader's request stages
// plus a process-scoped fsync, and a follower ring whose first span
// shares the leader's trace id (the cross-node join) and whose second
// line carries an embedded node label (the shape of a previously merged
// file).
const leaderRing = `{"trace":"42","kind":"request","seq":1,"start_ns":1000000,"dur_ns":20000}
{"trace":"42","kind":"admit","seq":1,"start_ns":1001000,"dur_ns":5000}
{"trace":"42","kind":"exec","seq":1,"start_ns":1007000,"dur_ns":8000,"arg":4}
{"kind":"fsync","seq":7,"start_ns":1030000,"dur_ns":3000,"arg":2}
`

const followerRing = `{"trace":"42","kind":"repl_apply","seq":7,"start_ns":1040000,"dur_ns":2000,"arg":7}
{"kind":"repl_apply","seq":8,"start_ns":1050000,"dur_ns":1500,"arg":8,"node":"follower-embedded"}
`

// goldenMerge is the exact Chrome trace_event document the merge must
// produce: events globally sorted by timestamp (every fixture Ts is
// distinct, so the sort is deterministic), trace-scoped spans grouped
// under tid "trace-<id>", process-scoped spans under "wal", and the
// duplicate trace id 42 present under both the leader and follower
// pids — the cross-node join a viewer relies on.
const goldenMerge = `{"traceEvents":[` +
	`{"name":"request","ph":"X","ts":1000,"dur":20,"pid":"leader","tid":"trace-42","args":{"seq":1}},` +
	`{"name":"admit","ph":"X","ts":1001,"dur":5,"pid":"leader","tid":"trace-42","args":{"seq":1}},` +
	`{"name":"exec","ph":"X","ts":1007,"dur":8,"pid":"leader","tid":"trace-42","args":{"arg":4,"seq":1}},` +
	`{"name":"fsync","ph":"X","ts":1030,"dur":3,"pid":"leader","tid":"wal","args":{"arg":2,"seq":7}},` +
	`{"name":"repl_apply","ph":"X","ts":1040,"dur":2,"pid":"follower-0","tid":"trace-42","args":{"arg":7,"seq":7}},` +
	`{"name":"repl_apply","ph":"X","ts":1050,"dur":1.5,"pid":"follower-embedded","tid":"wal","args":{"arg":8,"seq":8}}` +
	"]}\n"

func writeRings(t *testing.T) (leader, follower string) {
	t.Helper()
	dir := t.TempDir()
	leader = filepath.Join(dir, "leader.jsonl")
	follower = filepath.Join(dir, "follower.jsonl")
	if err := os.WriteFile(leader, []byte(leaderRing), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(follower, []byte(followerRing), 0o644); err != nil {
		t.Fatal(err)
	}
	return leader, follower
}

// TestTraceMergeGolden pins the FILE-input merge path of `repro trace`
// byte for byte.
func TestTraceMergeGolden(t *testing.T) {
	leader, follower := writeRings(t)
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := cmdTrace([]string{"--out", out, "leader=" + leader, "follower-0=" + follower}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != goldenMerge {
		t.Fatalf("merged trace drifted from golden:\n got: %s\nwant: %s", got, goldenMerge)
	}
}

// TestTraceMergeFilter checks --trace restricts the merge to one id
// while keeping the cross-node join (both pids still present).
func TestTraceMergeFilter(t *testing.T) {
	leader, follower := writeRings(t)
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := cmdTrace([]string{"--out", out, "--trace", "42", "leader=" + leader, "follower-0=" + follower}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(got)
	if strings.Contains(s, `"wal"`) {
		t.Fatalf("filtered merge kept process-scoped spans:\n%s", s)
	}
	if n := strings.Count(s, `"tid":"trace-42"`); n != 4 {
		t.Fatalf("filtered merge has %d trace-42 events, want 4:\n%s", n, s)
	}
	for _, pid := range []string{`"pid":"leader"`, `"pid":"follower-0"`} {
		if !strings.Contains(s, pid) {
			t.Fatalf("filtered merge lost the cross-node join (%s missing):\n%s", pid, s)
		}
	}
}
