package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"sihtm/internal/trace"
)

// cmdTrace merges span rings from a whole cluster into one Chrome
// trace_event document: each source is a node's /debug/traces endpoint
// (or a saved JSONL file), each node becomes a process in the viewer,
// and every trace id groups its spans — client round trip, server
// stages, fsync, follower replay — onto one timeline row. Load the
// output in chrome://tracing or https://ui.perfetto.dev.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	var (
		out    = fs.String("out", "trace.json", "Chrome trace_event output path ('-' = stdout)")
		filter = fs.String("trace", "", "restrict to one trace id (decimal, as printed in span JSONL)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	srcs := fs.Args()
	if len(srcs) == 0 {
		return fmt.Errorf("trace needs sources: NODE=URL-or-FILE ... " +
			"(e.g. leader=http://127.0.0.1:9464/debug/traces follower-0=spans.jsonl)")
	}
	var filterID uint64
	if *filter != "" {
		id, err := strconv.ParseUint(*filter, 10, 64)
		if err != nil {
			return fmt.Errorf("bad --trace id %q: %v", *filter, err)
		}
		filterID = id
	}

	// Fetch every source, keeping the command-line order for the viewer's
	// process list. A span line that already carries a node label (a
	// previously merged file) keeps it; fresh endpoint output takes the
	// source's label.
	byNode := map[string][]trace.Span{}
	var order []string
	note := func(node string, s trace.Span) {
		if filterID != 0 && s.Trace != filterID {
			return
		}
		if _, ok := byNode[node]; !ok {
			order = append(order, node)
		}
		byNode[node] = append(byNode[node], s)
	}
	traces := map[uint64]bool{}
	for i, src := range srcs {
		node := fmt.Sprintf("node-%d", i)
		if name, rest, ok := strings.Cut(src, "="); ok && name != "" && !strings.HasPrefix(src, "http") {
			node, src = name, rest
		}
		body, err := fetchSpans(src)
		if err != nil {
			return fmt.Errorf("%s: %w", node, err)
		}
		spans, nodes, err := trace.ReadJSONL(strings.NewReader(body))
		if err != nil {
			return fmt.Errorf("%s: %w", node, err)
		}
		for j, s := range spans {
			label := node
			if nodes[j] != "" {
				label = nodes[j]
			}
			note(label, s)
			if s.Trace != 0 {
				traces[s.Trace] = true
			}
		}
	}

	var merged []trace.NodeSpans
	total := 0
	for _, node := range order {
		merged = append(merged, trace.NodeSpans{Node: node, Spans: byNode[node]})
		total += len(byNode[node])
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Node < merged[j].Node })

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteChromeTrace(w, merged); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d spans, %d traces, %d nodes)\n", *out, total, len(traces), len(merged))
	}
	return nil
}

// fetchSpans reads one source: an http(s) URL is GET (a /debug/traces
// endpoint), anything else a JSONL file on disk.
func fetchSpans(src string) (string, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		cl := &http.Client{Timeout: 10 * time.Second}
		resp, err := cl.Get(src)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s: status %d (%s)", src, resp.StatusCode, strings.TrimSpace(string(b)))
		}
		return string(b), nil
	}
	b, err := os.ReadFile(src)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
