package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sihtm/internal/monitor"
)

// parseMonitorNodes resolves NODE=URL args into named nodes. A bare URL
// gets a positional name ("node-0", ...).
func parseMonitorNodes(args []string) ([]monitor.Node, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("need at least one NODE=URL arg (e.g. leader=http://127.0.0.1:9464)")
	}
	nodes := make([]monitor.Node, 0, len(args))
	for i, arg := range args {
		name := fmt.Sprintf("node-%d", i)
		base := arg
		if n, rest, ok := strings.Cut(arg, "="); ok && n != "" && !strings.HasPrefix(arg, "http") {
			name, base = n, rest
		}
		if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
			return nil, fmt.Errorf("node %s: base %q is not an http(s) URL", name, base)
		}
		nodes = append(nodes, monitor.Node{Name: name, Base: base})
	}
	return nodes, nil
}

// cmdMonitor is the live terminal dashboard: it polls every node's
// /debug/timeseries and /debug/alerts on an interval and redraws a
// compact per-node panel — throughput, abort mix, stage p99s, WAL and
// replication state, and the active alert set.
func cmdMonitor(args []string) error {
	fs := flag.NewFlagSet("monitor", flag.ExitOnError)
	var (
		interval = fs.Duration("interval", time.Second, "refresh cadence")
		window   = fs.Duration("window", 10*time.Second, "trailing window for rates and percentiles")
		once     = fs.Bool("once", false, "render a single frame and exit")
		duration = fs.Duration("duration", 0, "stop after this long (0 = until interrupted)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	nodes, err := parseMonitorNodes(fs.Args())
	if err != nil {
		return err
	}

	poll := func() []monitor.Frame {
		frames := make([]monitor.Frame, len(nodes))
		for i, n := range nodes {
			frames[i] = monitor.Poll(n, *window)
		}
		return frames
	}
	if *once {
		monitor.Render(os.Stdout, poll(), *window)
		return nil
	}

	var deadline time.Time
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	for {
		frames := poll()
		// Home the cursor and clear before each redraw so the dashboard
		// repaints in place instead of scrolling.
		fmt.Fprint(os.Stdout, "\033[H\033[2J")
		fmt.Fprintf(os.Stdout, "repro monitor — %s  (window %s, refresh %s)\n\n",
			time.Now().Format("15:04:05"), window, interval)
		monitor.Render(os.Stdout, frames, *window)
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil
		}
		time.Sleep(*interval)
	}
}
