package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sihtm/internal/report"
	"sihtm/internal/results"
)

// cmdReport builds the post-run incident report: it collects every
// node's /debug/timeseries, /debug/alerts and /debug/traces surfaces,
// joins them into the alert timeline, SLO compliance, worst-trace
// exemplars and abort attribution, and writes incident-style markdown.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	var (
		out   = fs.String("out", "report.md", "markdown output path ('-' = stdout)")
		title = fs.String("title", "run", "report title")
		bench = fs.String("bench", "", "attach final stats from a BENCH_repro.json file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	nodes, err := parseMonitorNodes(fs.Args())
	if err != nil {
		return err
	}

	in := report.Inputs{Title: *title}
	for _, n := range nodes {
		nd, err := report.Collect(n.Name, n.Base)
		if err != nil {
			return fmt.Errorf("collect %s: %w", n.Name, err)
		}
		in.Nodes = append(in.Nodes, nd)
	}
	if *bench != "" {
		rep, err := results.ReadFile(*bench)
		if err != nil {
			return fmt.Errorf("bench %s: %w", *bench, err)
		}
		in.Bench = rep
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := report.Build(w, in); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d nodes)\n", *out, len(in.Nodes))
	}
	return nil
}
