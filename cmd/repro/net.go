package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"sihtm/internal/experiments"
	"sihtm/internal/loadgen"
	"sihtm/internal/results"
	"sihtm/internal/workload/engine"
)

// cmdServe runs the networked service layer: build one scenario
// (optionally durable), listen, serve until SIGTERM/SIGINT, then drain
// gracefully — in-flight commits quiesce, replies flush, and a durable
// store writes a final checkpoint — and exit 0.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:7654", "listen address")
		scenario    = fs.String("scenario", "ycsb-a", "hosted workload build: ycsb-a|ycsb-b|ycsb-c")
		system      = fs.String("system", "si-htm", "concurrency control")
		scaleName   = fs.String("scale", "ci", "workload sizing preset")
		shards      = fs.Int("shards", 4, "executor goroutines (transaction threads)")
		batch       = fs.Int("batch", 32, "admission bound: max ops per transaction")
		admitWait   = fs.Duration("admit-wait", 0, "admission grace: wait this long for a fuller batch")
		p99Target   = fs.Duration("p99-target", 0, "adaptive admission control: steer batch/grace toward this p99 service latency")
		dir         = fs.String("durable-dir", "", "serve durably: WAL + checkpoints + meta.json in DIR")
		window      = fs.Duration("window", time.Millisecond, "durable group-commit fsync window")
		ckptEvery   = fs.Duration("checkpoint-every", time.Second, "fuzzy checkpoint interval (0 disables)")
		follow      = fs.String("follow", "", "serve as a read replica of the durable leader at ADDR")
		leaderLog   = fs.String("leader-log", "", "shared-storage path of the leader's wal.log (promotion catch-up)")
		metricsAddr = fs.String("metrics-addr", "", "observability address: /metrics, /healthz, /readyz, /debug/pprof, /debug/traces, /debug/timeseries, /debug/alerts")
		scrapeIv    = fs.Duration("scrape-interval", 0, "time-series self-scrape cadence (0 = default 1s; needs --metrics-addr)")
		traceSlow   = fs.Duration("trace-slow", 0, "log a per-stage lifecycle trace for requests slower than this (0 disables)")
		quiet       = fs.Bool("quiet", false, "suppress the per-second stats line")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The connection-scale ladder may aim thousands of connections here.
	loadgen.RaiseFDLimit()
	ns, err := experiments.StartNetServer(experiments.ServeConfig{
		Addr:           *addr,
		Scenario:       *scenario,
		System:         *system,
		ScaleName:      *scaleName,
		Shards:         *shards,
		BatchMax:       *batch,
		AdmitWait:      *admitWait,
		P99Target:      *p99Target,
		DurableDir:     *dir,
		Window:         *window,
		CkptEvery:      *ckptEvery,
		FollowAddr:     *follow,
		LeaderLogPath:  *leaderLog,
		MetricsAddr:    *metricsAddr,
		ScrapeInterval: *scrapeIv,
		TraceSlow:      *traceSlow,
	})
	if err != nil {
		return err
	}
	// One structured line with everything an operator needs to find this
	// process again: addresses, build, and every knob that shapes the
	// run.
	mode := "volatile"
	switch {
	case *dir != "":
		mode = "durable"
	case *follow != "":
		mode = "follower"
	}
	fields := fmt.Sprintf("addr=%s scenario=%s system=%s scale=%s shards=%d mode=%s batch_max=%d admit_wait=%s p99_target=%s",
		ns.Addr, *scenario, *system, *scaleName, *shards, mode, *batch, *admitWait, *p99Target)
	if *dir != "" {
		fields += fmt.Sprintf(" durable_dir=%s window=%s", *dir, *window)
	}
	if *follow != "" {
		fields += fmt.Sprintf(" leader=%s", *follow)
	}
	if ns.Metrics != nil {
		fields += fmt.Sprintf(" metrics_addr=%s", ns.Metrics.Addr())
	}
	if *traceSlow > 0 {
		fields += fmt.Sprintf(" trace_slow=%s", *traceSlow)
	}
	fmt.Fprintf(os.Stderr, "serve: started %s\n", fields)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	served := make(chan error, 1)
	go func() { served <- ns.Srv.Serve() }()

	var report <-chan time.Time
	if !*quiet {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		report = t.C
	}
	start := time.Now()
	for {
		select {
		case <-report:
			st := ns.Srv.Hist().Snapshot()
			fmt.Fprintf(os.Stderr, "t=%s ops=%d p50=%s p99=%s\n",
				time.Since(start).Round(time.Second), st.Count(), st.Quantile(0.5), st.Quantile(0.99))
		case sig := <-sigc:
			fmt.Fprintf(os.Stderr, "serve: %v — draining\n", sig)
			if err := ns.Shutdown(); err != nil {
				return fmt.Errorf("drain: %w", err)
			}
			if err := <-served; err != nil {
				return err
			}
			// Final counter totals, in the same key=value shape as the
			// startup line, so a log pair brackets the whole run.
			st := ns.Srv.Snapshot()
			totals := fmt.Sprintf("uptime=%s ops=%d commits=%d commits_ro=%d aborts=%d fallbacks=%d batches=%d",
				time.Since(start).Round(time.Millisecond), st.Hist.Count(),
				st.Stats.Commits, st.Stats.CommitsRO, st.Stats.TotalAborts(), st.Stats.Fallbacks, st.Batches)
			if t := st.Telemetry; t != nil {
				totals += fmt.Sprintf(" frames_in=%d frames_out=%d slow_traces=%d", t.FramesIn, t.FramesOut, t.SlowTraces)
				if st.Durable {
					totals += fmt.Sprintf(" wal_records=%d wal_fsyncs=%d", t.WalRecords, t.WalFsyncs)
				}
			}
			fmt.Fprintf(os.Stderr, "serve: drained cleanly %s\n", totals)
			return nil
		case err := <-served:
			// Listener failed outside a drain.
			ns.Shutdown()
			return err
		}
	}
}

// cmdPromote asks a follower (`repro serve --follow`) to promote
// itself: stop streaming, catch up from the dead leader's on-disk log
// (its valid prefix holds every acknowledged commit — the zero-loss
// argument), and start admitting writes. Exits non-zero if the
// promoted watermark falls short of the leader's last advertised
// durable frontier, or if the promoted state fails its structural
// check.
func cmdPromote(args []string) error {
	fs := flag.NewFlagSet("promote", flag.ExitOnError)
	addr := fs.String("addr", "", "follower address (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("promote needs --addr")
	}
	rb, err := engine.DialRemote(*addr, 1)
	if err != nil {
		return err
	}
	defer rb.Close()
	rs, err := rb.Promote()
	if err != nil {
		return err
	}
	if rs.Watermark < rs.LeaderSeq {
		return fmt.Errorf("ACKED LOSS: promoted watermark %d < advertised leader frontier %d", rs.Watermark, rs.LeaderSeq)
	}
	if err := rb.Check(); err != nil {
		return fmt.Errorf("promoted state check: %w", err)
	}
	fmt.Printf("promote: %s now role=%s, zero acknowledged loss (watermark %d >= advertised leader frontier %d, reconnects %d)\n",
		*addr, rs.Role, rs.Watermark, rs.LeaderSeq, rs.Reconnects)
	return nil
}

// cmdLoadgen drives the networked registry cells against a live `repro
// serve` address and writes the usual BENCH artifacts.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "", "server address (required; see 'repro serve')")
		ids       = fs.String("id", strings.Join(experiments.NetEntryIDs(), ","), "net entries to measure")
		scaleName = fs.String("scale", "ci", "client scale preset (ladder caps, run windows)")
		conns     = fs.Int("conns", 0, "open-loop mode: drive this many connections at --arrival")
		arrival   = fs.String("arrival", "poisson:20000", "open-loop arrival process: poisson:RATE or uniform:RATE (total ops/sec)")
		traceEv   = fs.Int("trace-every", 0, "open-loop mode: stamp every n-th request with a trace id (1 = all, 0 = off)")
		window    = fs.Duration("window", 0, "open-loop mode: override the scale preset's measurement window")
		out       = fs.String("out", "BENCH_repro.json", "JSON output path")
		md        = fs.String("md", "BENCH_repro.md", "markdown output path ('-' = stdout, '' = none)")
		quiet     = fs.Bool("quiet", false, "suppress per-point progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("loadgen needs --addr")
	}
	sc, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}
	var recs []results.Record
	var runErr error
	if *conns > 0 {
		// Open-loop single point: N connections at the given arrival
		// rate, coordinated-omission-safe latency, server knobs left
		// exactly as the operator set them.
		a, err := loadgen.ParseArrival(*arrival)
		if err != nil {
			return err
		}
		if *window > 0 {
			sc.Measure = *window
		}
		r, err := experiments.RunOpenLoop(*addr, *conns, a, sc, *traceEv)
		if err != nil {
			return err
		}
		recs = append(recs, r)
		if progress != nil {
			fmt.Fprintf(progress, "open-loop %s conns=%d %s: %.0f ops/s p50=%.0fµs p99=%.0fµs batch<=%d wait=%dµs target=%dµs\n",
				r.System, r.Threads, a, r.Throughput, r.LatencyP50Us, r.LatencyP99Us,
				r.CtrlBatchMax, r.CtrlAdmitWaitUs, r.CtrlP99TargetUs)
		}
	} else {
		runErr = experiments.RunLoadgen(*addr, strings.Split(*ids, ","), sc,
			func(r results.Record) { recs = append(recs, r) }, progress)
	}

	if len(recs) > 0 {
		rep := &results.Report{
			Tool:       "cmd/repro loadgen",
			Scale:      *scaleName,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Machine:    experiments.MachineDescription(),
			Partial:    runErr != nil,
			Records:    recs,
		}
		rep.Sort()
		if *out != "" {
			if err := rep.WriteFile(*out); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d records)\n", *out, len(recs))
		}
		switch *md {
		case "":
		case "-":
			results.MarkdownReport(os.Stdout, rep, experiments.Titles())
		default:
			f, err := os.Create(*md)
			if err != nil {
				return err
			}
			results.MarkdownReport(f, rep, experiments.Titles())
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *md)
		}
	}
	return runErr
}
