// Command sihtm-bench regenerates the paper's evaluation: every figure
// (6–10, low- and high-contention panels) and this reproduction's
// ablations, printing the throughput and abort-breakdown tables that
// correspond to the figures' two panels.
//
// Usage:
//
//	sihtm-bench -experiment list
//	sihtm-bench -experiment fig6              # both panels of Figure 6
//	sihtm-bench -experiment fig9-low          # one panel
//	sihtm-bench -experiment all               # everything (long)
//	sihtm-bench -experiment fig10 -max-threads 16 -measure 2s -out results.txt
//
// The thread ladder, workloads and mixes are the paper's; -max-threads
// and -workload-div shrink runs for quick machines (shape, not absolute
// numbers, is the reproduction target — see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"sihtm/internal/experiments"
)

func main() {
	var (
		experiment  = flag.String("experiment", "list", "experiment id, figure id (fig6..fig10), 'all', or 'list'")
		maxThreads  = flag.Int("max-threads", 0, "cap the thread ladder (0 = paper's full ladder to 80)")
		workloadDiv = flag.Int("workload-div", 1, "divide workload sizes by this factor for quick runs")
		warmup      = flag.Duration("warmup", 150*time.Millisecond, "warm-up window per point")
		measure     = flag.Duration("measure", 600*time.Millisecond, "measurement window per point")
		out         = flag.String("out", "", "also write the report to this file")
		quiet       = flag.Bool("quiet", false, "suppress per-point progress lines")
	)
	flag.Parse()

	sc := experiments.Scale{
		MaxThreads:  *maxThreads,
		WorkloadDiv: *workloadDiv,
		Warmup:      *warmup,
		Measure:     *measure,
	}
	list, byID := experiments.All(sc)

	if *experiment == "list" {
		fmt.Println("experiments:")
		for _, e := range list {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		fmt.Println("\ngroups: fig6 fig7 fig8 fig9 fig10 figures ablations all")
		return
	}

	ids, err := resolve(*experiment, list)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var sinks []io.Writer = []io.Writer{os.Stdout}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sinks = append(sinks, f)
	}
	report := io.MultiWriter(sinks...)

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}

	fmt.Fprintf(report, "sihtm-bench: host GOMAXPROCS=%d; simulated machine: 10 cores × SMT-8, TMCAM 64 lines\n",
		runtime.GOMAXPROCS(0))
	fmt.Fprintf(report, "windows: warmup=%v measure=%v; workload divisor %d\n\n", *warmup, *measure, *workloadDiv)

	for _, id := range ids {
		e := byID[id]
		fmt.Fprintf(report, "=== %s: %s ===\n", e.ID, e.Title)
		if progress != nil {
			fmt.Fprintf(progress, "[%s]\n", e.ID)
		}
		text, err := e.Run(progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintln(report, text)
	}
}

// resolve expands an experiment selector to experiment ids.
func resolve(sel string, list []experiments.Experiment) ([]string, error) {
	var all, figures, ablations []string
	for _, e := range list {
		all = append(all, e.ID)
		if strings.HasPrefix(e.ID, "fig") {
			figures = append(figures, e.ID)
		} else {
			ablations = append(ablations, e.ID)
		}
	}
	switch sel {
	case "all":
		return all, nil
	case "figures":
		return figures, nil
	case "ablations":
		return ablations, nil
	}
	// Exact id.
	for _, id := range all {
		if id == sel {
			return []string{id}, nil
		}
	}
	// Figure group: "fig6" → fig6-low, fig6-high.
	var group []string
	for _, id := range all {
		if strings.HasPrefix(id, sel+"-") {
			group = append(group, id)
		}
	}
	if len(group) > 0 {
		sort.Strings(group)
		return group, nil
	}
	return nil, fmt.Errorf("unknown experiment %q (try -experiment list)", sel)
}
