// Command sihtm-bench is the interactive text view over the experiment
// registry: it runs figures (6–10, low- and high-contention panels) and
// ablations with classic per-point progress lines and prints the
// throughput and abort-breakdown tables that correspond to the figures'
// two panels. For machine-readable results, parallel execution and
// baseline comparison, use cmd/repro — both commands are views over the
// same registry and regenerate exactly the same runs.
//
// Usage:
//
//	sihtm-bench -experiment list
//	sihtm-bench -experiment fig6              # both panels of Figure 6
//	sihtm-bench -experiment fig9-low          # one panel
//	sihtm-bench -experiment all               # everything (long)
//	sihtm-bench -experiment fig10 -max-threads 16 -measure 2s -out results.txt
//
// The thread ladder, workloads and mixes are the paper's; -max-threads
// and -workload-div shrink runs for quick machines (shape, not absolute
// numbers, is the reproduction target — see docs/experiments.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"sihtm/internal/experiments"
	"sihtm/internal/results"
)

func main() {
	var (
		experiment  = flag.String("experiment", "list", "experiment id, figure id (fig6..fig10), 'all', 'figures', 'ablations', or 'list'")
		maxThreads  = flag.Int("max-threads", 0, "cap the thread ladder (0 = paper's full ladder to 80)")
		workloadDiv = flag.Int("workload-div", 1, "divide workload sizes by this factor for quick runs")
		warmup      = flag.Duration("warmup", 150*time.Millisecond, "warm-up window per point")
		measure     = flag.Duration("measure", 600*time.Millisecond, "measurement window per point")
		out         = flag.String("out", "", "also write the report to this file")
		quiet       = flag.Bool("quiet", false, "suppress per-point progress lines")
	)
	flag.Parse()

	sc := experiments.Scale{
		MaxThreads:  *maxThreads,
		WorkloadDiv: *workloadDiv,
		Warmup:      *warmup,
		Measure:     *measure,
	}

	if *experiment == "list" {
		fmt.Println("experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		fmt.Println("\ngroups: fig6 fig7 fig8 fig9 fig10 figures ablations all")
		return
	}

	entries, err := experiments.Select(*experiment)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v (try -experiment list)\n", err)
		os.Exit(2)
	}

	var sinks []io.Writer = []io.Writer{os.Stdout}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sinks = append(sinks, f)
	}
	report := io.MultiWriter(sinks...)

	fmt.Fprintf(report, "sihtm-bench: host GOMAXPROCS=%d; simulated machine: %s\n",
		runtime.GOMAXPROCS(0), experiments.MachineDescription())
	fmt.Fprintf(report, "windows: warmup=%v measure=%v; workload divisor %d\n\n", *warmup, *measure, *workloadDiv)

	for _, e := range entries {
		fmt.Fprintf(report, "=== %s: %s ===\n", e.ID, e.Title)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s]\n", e.ID)
		}
		var hook func(results.Record)
		if !*quiet {
			hook = func(r results.Record) {
				point := fmt.Sprintf("%3d threads", r.Threads)
				if r.Param != "" {
					point = fmt.Sprintf("%d threads, %s", r.Threads, r.Param)
				}
				fmt.Fprintf(os.Stderr, "  %-13s %-24s %12.0f tx/s  aborts %5.1f%%  fallbacks %d\n",
					r.System, point, r.Throughput, 100*r.AbortRate, r.Fallbacks)
			}
		}
		recs, err := e.Run(sc, hook)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		rep := &results.Report{Records: recs}
		rep.Sort()
		fmt.Fprintln(report)
		results.MarkdownThroughput(report, e.Title, rep.Records)
		fmt.Fprintln(report)
		results.MarkdownAborts(report, e.Title, rep.Records)
		fmt.Fprintln(report)
		// Peak-vs-peak speedups only make sense along a thread ladder;
		// for parameter sweeps the "peak" would just be the cheapest
		// swept value on both sides.
		if len(e.ThreadLadder) > 0 {
			fmt.Fprintln(report, results.SpeedupSummary(rep.Records, highlightSystem(e)))
			fmt.Fprintln(report)
		}
	}
}

// highlightSystem picks the system the speedup summary quotes: the
// policy under test in variant ablations, else the paper's
// contribution, else the entry's last system.
func highlightSystem(e experiments.Entry) string {
	highlight := ""
	for _, s := range e.Systems {
		switch {
		case s == "si-htm-killer":
			return s
		case s == "si-htm":
			highlight = s
		}
	}
	if highlight == "" {
		highlight = e.Systems[len(e.Systems)-1]
	}
	return highlight
}
