// Command tpcc-bench runs the paper's §4.2 TPC-C benchmark with every
// knob exposed: warehouse count (contention), mix (standard vs
// read-dominated, or custom percentages), system, threads and windows.
// After each run it verifies the TPC-C consistency conditions.
//
// Examples:
//
//	tpcc-bench -system si-htm -threads 8 -warehouses 8 -mix standard
//	tpcc-bench -system htm -threads 16 -warehouses 1 -mix read-dominated
//	tpcc-bench -system silo -threads 4 -s 4 -d 4 -o 4 -p 43 -r 45
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sihtm/internal/experiments"
	"sihtm/internal/harness"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/stats"
	"sihtm/internal/topology"
	"sihtm/internal/workload/tpcc"
)

func main() {
	var (
		system     = flag.String("system", "si-htm", strings.Join(experiments.SystemNames(), " | "))
		threads    = flag.Int("threads", 8, "worker threads (placed on 10 cores × SMT-8)")
		warehouses = flag.Int("warehouses", 0, "warehouse count (0 = min(threads,16): low contention; 1 = high)")
		mixName    = flag.String("mix", "standard", "standard | read-dominated | custom (use -s -d -o -p -r)")
		sPct       = flag.Int("s", 4, "custom mix: stock-level %")
		dPct       = flag.Int("d", 4, "custom mix: delivery %")
		oPct       = flag.Int("o", 4, "custom mix: order-status %")
		pPct       = flag.Int("p", 43, "custom mix: payment %")
		rPct       = flag.Int("r", 45, "custom mix: new-order %")
		scaleDiv   = flag.Int("scale-div", 10, "divide spec cardinalities (items, customers) by this")
		warmup     = flag.Duration("warmup", 200*time.Millisecond, "warm-up window")
		measure    = flag.Duration("measure", 1*time.Second, "measurement window")
		seed       = flag.Uint64("seed", 42, "population/workload seed")
	)
	flag.Parse()

	var mix tpcc.Mix
	switch *mixName {
	case "standard":
		mix = tpcc.StandardMix
	case "read-dominated":
		mix = tpcc.ReadDominatedMix
	case "custom":
		mix = tpcc.Mix{StockLevel: *sPct, Delivery: *dPct, OrderStatus: *oPct, Payment: *pPct, NewOrder: *rPct}
	default:
		fmt.Fprintf(os.Stderr, "unknown mix %q\n", *mixName)
		os.Exit(2)
	}
	if err := mix.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	w := *warehouses
	if w == 0 {
		w = *threads
		if w > 16 {
			w = 16
		}
	}
	cfg := tpcc.Config{Warehouses: w, ScaleDiv: *scaleDiv, Seed: *seed}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("populating %d warehouses (%d items, %d customers/district)...\n",
		w, cfg.Items(), cfg.CustomersPerDistrict())
	heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
	m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
	db, err := tpcc.NewDB(heap, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sys, err := experiments.NewSystem(*system, m, heap, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	r := harness.Run(sys, *threads, *warmup, *measure, func(thread int) func() {
		wk, err := db.NewWorker(sys, thread, mix)
		if err != nil {
			panic(err)
		}
		return func() { wk.Op() }
	})

	fmt.Printf("system=%s threads=%d warehouses=%d mix={s%d d%d o%d p%d r%d}\n",
		sys.Name(), *threads, w, mix.StockLevel, mix.Delivery, mix.OrderStatus, mix.Payment, mix.NewOrder)
	fmt.Printf("throughput: %.0f tx/s over %v\n", r.Throughput, r.Elapsed.Round(time.Millisecond))
	fmt.Printf("commits: %d (read-only %d)  fallbacks: %d\n",
		r.Stats.Commits, r.Stats.CommitsRO, r.Stats.Fallbacks)
	fmt.Printf("aborts: %.1f%% of attempts (transactional %.1f%% | non-transactional %.1f%% | capacity %.1f%%)\n",
		100*r.Stats.AbortRate(),
		r.AbortPercent(stats.AbortTransactional),
		r.AbortPercent(stats.AbortNonTransactional),
		r.AbortPercent(stats.AbortCapacity))

	if err := db.CheckConsistency(); err != nil {
		fmt.Fprintf(os.Stderr, "consistency check FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("consistency: all checks passed (%d orders entered)\n", db.TotalOrders())
}
