// Command hashmap-bench runs the paper's §4.1 hash-map micro-benchmark
// with every knob exposed: bucket count (contention), chain length
// (footprint), read-only share, system, thread count and windows.
//
// Example (the peak point of Figure 6 left):
//
//	hashmap-bench -system si-htm -threads 32 -buckets 1000 -elements 200 -read-pct 90
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sihtm/internal/experiments"
	"sihtm/internal/harness"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/stats"
	"sihtm/internal/topology"
	"sihtm/internal/workload/hashmap"
)

func main() {
	var (
		system   = flag.String("system", "si-htm", strings.Join(experiments.SystemNames(), " | "))
		threads  = flag.Int("threads", 8, "worker threads (placed on 10 cores × SMT-8)")
		buckets  = flag.Int("buckets", 1000, "hash-map buckets (1000 = low contention, 10 = high)")
		elements = flag.Int("elements", 200, "average chain length (200 = large footprint, 50 = short)")
		readPct  = flag.Int("read-pct", 90, "read-only transaction percentage")
		tmcam    = flag.Int("tmcam", 64, "TMCAM lines per core")
		warmup   = flag.Duration("warmup", 200*time.Millisecond, "warm-up window")
		measure  = flag.Duration("measure", 1*time.Second, "measurement window")
		seed     = flag.Uint64("seed", 42, "workload seed (per-thread op streams)")
	)
	flag.Parse()

	cfg := hashmap.BenchConfig{
		Buckets:           *buckets,
		ElementsPerBucket: *elements,
		ReadOnlyPercent:   *readPct,
		Seed:              *seed,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	heap := memsim.NewHeapLines(cfg.HeapLinesNeeded() + (1 << 14))
	m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper(), TMCAMLines: *tmcam})
	bench, err := hashmap.NewBenchmark(heap, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sys, err := experiments.NewSystem(*system, m, heap, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	initial := bench.Map.Size()
	r := harness.Run(sys, *threads, *warmup, *measure, func(thread int) func() {
		w := bench.NewWorker(sys, thread)
		return w.Op
	})

	fmt.Printf("system=%s threads=%d buckets=%d chain=%d read%%=%d tmcam=%d\n",
		sys.Name(), *threads, *buckets, *elements, *readPct, *tmcam)
	fmt.Printf("throughput: %.0f tx/s over %v\n", r.Throughput, r.Elapsed.Round(time.Millisecond))
	fmt.Printf("commits: %d (read-only %d)  fallbacks: %d\n",
		r.Stats.Commits, r.Stats.CommitsRO, r.Stats.Fallbacks)
	fmt.Printf("aborts: %.1f%% of attempts (transactional %.1f%% | non-transactional %.1f%% | capacity %.1f%%)\n",
		100*r.Stats.AbortRate(),
		r.AbortPercent(stats.AbortTransactional),
		r.AbortPercent(stats.AbortNonTransactional),
		r.AbortPercent(stats.AbortCapacity))

	size := bench.Map.Size()
	if size < initial-2**threads || size > initial+2**threads {
		fmt.Fprintf(os.Stderr, "consistency: hash-map size drifted %d → %d\n", initial, size)
		os.Exit(1)
	}
	fmt.Printf("consistency: map size %d → %d (ok)\n", initial, size)
}
