// Package sihtm is a Go reproduction of "Stretching the capacity of
// Hardware Transactional Memory in IBM POWER architectures" (Filipe,
// Issa, Romano, Barreto — PPoPP 2019).
//
// It provides SI-HTM — a single-version implementation of Snapshot
// Isolation built from POWER8-style rollback-only hardware transactions
// plus a software quiescence phase — together with every system the paper
// depends on or compares against: a faithful simulator of the POWER8 HTM
// (TMCAM capacity shared across SMT threads, rollback-only transactions,
// suspend/resume, cache-line conflict detection), the plain-HTM baseline
// with a single-global-lock fall-back, the P8TM and Silo baselines, and
// the paper's hash-map and TPC-C workloads.
//
// # Quick start
//
//	rt := sihtm.New(sihtm.Config{HeapLines: 1 << 16})
//	x := rt.Heap().AllocLine()
//	sys := rt.NewSIHTM(4, sihtm.SIHTMOptions{})
//	sys.Atomic(0, sihtm.KindUpdate, func(ops sihtm.Ops) {
//	    ops.Write(x, ops.Read(x)+1)
//	})
//
// Transaction bodies receive an Ops handle whose Read/Write operate on
// the shared simulated heap; Atomic returns only after the transaction
// committed (retrying and falling back internally). Addresses are
// allocated from the runtime's heap and passed around like pointers.
//
// Workers are identified by a hardware-thread id in [0, threads); the
// thread→core placement (and therefore TMCAM sharing between SMT
// siblings) follows the paper's 10-core × SMT-8 POWER8 unless configured
// otherwise.
package sihtm

import (
	"fmt"

	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	isihtm "sihtm/internal/sihtm"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
	"sihtm/internal/topology"

	"sihtm/internal/htmtm"
	"sihtm/internal/p8tm"
	"sihtm/internal/sgl"
	"sihtm/internal/silo"
)

// Re-exported core types: the public API is expressed entirely in terms
// of these.
type (
	// Addr is a word address into the simulated heap.
	Addr = memsim.Addr
	// Heap is the simulated, cache-line-structured shared memory.
	Heap = memsim.Heap
	// Ops is the transactional access interface handed to bodies.
	Ops = tm.Ops
	// Kind declares a transaction read-only or updating at launch.
	Kind = tm.Kind
	// System is a complete concurrency control.
	System = tm.System
	// Stats is a snapshot of commit/abort counters.
	Stats = stats.Stats
	// AbortKind classifies aborts (transactional, non-transactional,
	// capacity, ...) as in the paper's figures.
	AbortKind = stats.AbortKind
	// Topology describes the simulated multicore.
	Topology = topology.Topology
)

// Re-exported constants.
const (
	// KindUpdate marks a transaction that may write shared data.
	KindUpdate = tm.KindUpdate
	// KindReadOnly promises a transaction writes no shared data.
	KindReadOnly = tm.KindReadOnly

	// AbortTransactional counts conflicts with other transactions.
	AbortTransactional = stats.AbortTransactional
	// AbortNonTransactional counts kills by plain accesses (SGL, quiescent
	// readers).
	AbortNonTransactional = stats.AbortNonTransactional
	// AbortCapacity counts TMCAM overflows.
	AbortCapacity = stats.AbortCapacity

	// WordsPerLine is the simulated cache-line size in 64-bit words.
	WordsPerLine = memsim.WordsPerLine
	// LineBytes is the simulated cache-line size in bytes (POWER8: 128).
	LineBytes = memsim.LineBytes
)

// Config sizes a Runtime.
type Config struct {
	// Cores and SMTWays define the simulated machine. Zero values mean
	// the paper's POWER8: 10 cores × SMT-8.
	Cores   int
	SMTWays int
	// TMCAMLines is the per-core transactional buffer in cache lines,
	// shared by SMT siblings. 0 means the hardware's 64.
	TMCAMLines int
	// HeapLines is the simulated memory size in cache lines. 0 means
	// 1<<16 lines (8 MiB).
	HeapLines int
	// ROTReadTrackEvery > 0 makes every n-th ROT read consume TMCAM
	// capacity (the paper's footnote 1). 0 disables.
	ROTReadTrackEvery int
}

// Runtime owns a simulated machine and its heap. All systems created from
// one Runtime share memory and hardware, so they must not run workloads
// concurrently with each other.
type Runtime struct {
	heap    *memsim.Heap
	machine *htm.Machine
}

// New builds a runtime.
func New(cfg Config) *Runtime {
	if cfg.Cores == 0 {
		cfg.Cores = topology.PaperCores
	}
	if cfg.SMTWays == 0 {
		cfg.SMTWays = topology.PaperSMTWays
	}
	if cfg.HeapLines == 0 {
		cfg.HeapLines = 1 << 16
	}
	heap := memsim.NewHeapLines(cfg.HeapLines)
	machine := htm.NewMachine(heap, htm.Config{
		Topology:          topology.New(cfg.Cores, cfg.SMTWays),
		TMCAMLines:        cfg.TMCAMLines,
		ROTReadTrackEvery: cfg.ROTReadTrackEvery,
	})
	return &Runtime{heap: heap, machine: machine}
}

// Heap returns the shared simulated memory. Allocation and raw
// (non-transactional) access are only safe for setup and verification,
// outside concurrent transactional execution.
func (r *Runtime) Heap() *Heap { return r.heap }

// Topology returns the simulated machine layout.
func (r *Runtime) Topology() Topology { return r.machine.Topology() }

// MaxThreads returns the simulated hardware thread count.
func (r *Runtime) MaxThreads() int { return r.machine.Topology().MaxThreads() }

// SIHTM is the paper's system, exposing AtomicBatch (§6 batching) beyond
// the System interface.
type SIHTM = isihtm.System

// SIHTMOptions tunes SI-HTM.
type SIHTMOptions struct {
	// Retries is the ROT attempt budget before the SGL fall-back
	// (default 10).
	Retries int
	// DisableROFastPath routes read-only transactions through the update
	// path (for ablations).
	DisableROFastPath bool
	// KillerSpins enables the paper's §6 killing policy after that many
	// wait-loop spins (0 disables).
	KillerSpins int
}

// NewSIHTM builds the paper's SI-HTM system for the given worker count.
func (r *Runtime) NewSIHTM(threads int, o SIHTMOptions) *SIHTM {
	return isihtm.NewSystem(r.machine, threads, isihtm.Config{
		Retries:           o.Retries,
		DisableROFastPath: o.DisableROFastPath,
		KillerSpins:       o.KillerSpins,
	})
}

// NewHTM builds the plain-HTM baseline (regular transactions, early lock
// subscription, SGL fall-back). retries 0 means the default budget.
func (r *Runtime) NewHTM(threads, retries int) System {
	return htmtm.NewSystem(r.machine, threads, htmtm.Config{Retries: retries})
}

// NewP8TM builds the P8TM baseline (ROTs + software read logging +
// quiescence; serializable). retries 0 means the default budget.
func (r *Runtime) NewP8TM(threads, retries int) System {
	return p8tm.NewSystem(r.machine, threads, p8tm.Config{Retries: retries})
}

// NewSilo builds the Silo baseline (software OCC, no hardware support).
func (r *Runtime) NewSilo(threads int) System {
	return silo.NewSystem(r.heap, threads)
}

// NewSGL builds the single-global-lock reference system.
func (r *Runtime) NewSGL(threads int) System {
	return sgl.NewSystem(r.machine, threads)
}

// SystemNames lists the constructor keys understood by NewSystemByName,
// in the order the paper's figures present them.
func SystemNames() []string { return []string{"htm", "si-htm", "p8tm", "silo", "sgl"} }

// NewSystemByName builds a system by its benchmark name.
func (r *Runtime) NewSystemByName(name string, threads int) (System, error) {
	switch name {
	case "si-htm", "sihtm":
		return r.NewSIHTM(threads, SIHTMOptions{}), nil
	case "htm":
		return r.NewHTM(threads, 0), nil
	case "p8tm":
		return r.NewP8TM(threads, 0), nil
	case "silo":
		return r.NewSilo(threads), nil
	case "sgl":
		return r.NewSGL(threads), nil
	default:
		return nil, fmt.Errorf("sihtm: unknown system %q (known: %v)", name, SystemNames())
	}
}

// PromoteRead performs a promoted read: the value is read and immediately
// written back, inserting the location into the transaction's write set.
// This is the paper's §2.1 fix for write-skew anomalies: under SI the
// promotion turns the skew into a write-write conflict that aborts one of
// the transactions.
func PromoteRead(ops Ops, a Addr) uint64 {
	v := ops.Read(a)
	ops.Write(a, v)
	return v
}
