// OrderDB: the paper's motivating scenario end to end — an in-memory
// database running on SI-HTM as its first-class concurrency control.
//
// Clerk threads enter orders (small update transactions: a row insert
// plus two index inserts) while analyst threads run range reports over
// the whole table (read-only transactions streaming hundreds of cache
// lines — far beyond any HTM capacity). On plain HTM the reports live on
// the serial fall-back path; on SI-HTM they run uninstrumented and the
// clerks commit as write-set-bounded ROTs.
//
// Run with: go run ./examples/orderdb
package main

import (
	"fmt"
	"sync"

	"sihtm"
	"sihtm/db"
)

const (
	clerks       = 6
	analysts     = 2
	ordersEach   = 800
	reportsEach  = 60
	customerBase = 100
)

func run(systemName string) {
	rt := sihtm.New(sihtm.Config{HeapLines: 1 << 16})
	store := db.New(rt)
	orders, err := store.CreateTable(db.Schema{
		Table:   "orders",
		Columns: []string{"id", "customer", "amount", "status"},
	}, clerks*(ordersEach+64))
	if err != nil {
		panic(err)
	}
	if err := orders.CreateIndex("customer"); err != nil {
		panic(err)
	}
	sys, err := rt.NewSystemByName(systemName, clerks+analysts)
	if err != nil {
		panic(err)
	}

	var wg sync.WaitGroup
	for c := 0; c < clerks; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			w := orders.NewWriter()
			w.Prepare()
			seed := uint64(worker)*2654435761 + 17
			for i := 0; i < ordersEach; i++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				// Disperse primary keys (bijectively) so clerks spread over
				// the tree instead of hammering the rightmost leaf.
				pk := (uint64(worker*ordersEach+i+1) * 0x9e3779b1) & 0xffffffff
				var insErr error
				sys.Atomic(worker, sihtm.KindUpdate, func(ops sihtm.Ops) {
					_, insErr = w.Insert(ops, []uint64{
						pk,
						customerBase + seed%50, // 50 customers
						seed % 1000_00,         // amount in cents
						0,                      // status: new
					})
				})
				if insErr != nil {
					panic(insErr)
				}
				w.Commit()
			}
		}(c)
	}
	for a := 0; a < analysts; a++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			seed := uint64(worker) * 0x9e3779b97f4a7c15
			for i := 0; i < reportsEach; i++ {
				// Revenue report over a quarter of the key space — hundreds
				// of cache lines, far past the TMCAM, but not a wall-to-wall
				// scan that would overlap every insert.
				seed = seed*6364136223846793005 + 1442695040888963407
				lo := seed & 0x3ffffffff &^ 0xfffffff
				hi := lo + 0x3fffffff
				var revenue, count uint64
				sys.Atomic(worker, sihtm.KindReadOnly, func(ops sihtm.Ops) {
					revenue, count = 0, 0
					orders.ScanPK(ops, lo, hi, func(id db.RowID) bool {
						revenue += orders.Get(ops, id, "amount")
						count++
						return true
					})
				})
				_ = revenue
				_ = count
			}
		}(clerks + a)
	}
	wg.Wait()

	// One final wall-to-wall audit: unlimited read capacity in a single
	// read-only transaction.
	var total uint64
	sys.Atomic(clerks, sihtm.KindReadOnly, func(ops sihtm.Ops) {
		total = 0
		orders.ScanPK(ops, 0, ^uint64(0), func(id db.RowID) bool {
			total += orders.Get(ops, id, "amount")
			return true
		})
	})

	if err := orders.CheckConsistency(); err != nil {
		panic(fmt.Sprintf("%s: %v", systemName, err))
	}
	s := sys.Collector().Snapshot()
	fmt.Printf("%-8s rows=%d  commits=%d (reports %d)  aborts=%d (capacity %d)  SGL fallbacks=%d\n",
		systemName+":", orders.Rows(), s.Commits, s.CommitsRO,
		s.TotalAborts(), s.Aborts[sihtm.AbortCapacity], s.Fallbacks)
}

func main() {
	fmt.Printf("orderdb: %d clerks entering %d orders each, %d analysts × %d range reports\n\n",
		clerks, ordersEach, analysts, reportsEach)
	run("htm")
	run("si-htm")
	fmt.Println("\nboth engines agree on the data; SI-HTM ran every query with zero capacity")
	fmt.Println("aborts: reports use the uninstrumented read-only path and update")
	fmt.Println("transactions are bounded by their write sets, as the paper promises.")
}
