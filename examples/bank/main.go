// Bank: snapshot isolation's write-skew anomaly, live, and the paper's
// read-promotion fix (§2.1).
//
// Two accounts share an overdraft rule: a withdrawal is allowed if the
// SUM of both balances stays non-negative. Under serializability the rule
// can never be violated. Under snapshot isolation two concurrent
// withdrawals — each reading both balances, each debiting a different
// account — can both commit: the write skew. SI-HTM, being an SI system,
// admits it; promoting the read of the other account turns the skew into
// a write-write conflict and restores the invariant.
//
// Run with: go run ./examples/bank
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sihtm"
)

const (
	initialBalance int64 = 100 // per account; rule: a+b >= 0
	withdrawal     int64 = 150 // each side tries to take 150
)

// Balances can go negative, so they are stored two's-complement.
func load(ops sihtm.Ops, a sihtm.Addr) int64     { return int64(ops.Read(a)) }
func store(ops sihtm.Ops, a sihtm.Addr, v int64) { ops.Write(a, uint64(v)) }

// withdraw takes `withdrawal` from own if the joint balance allows it.
// promote selects the paper's fix.
func withdraw(sys sihtm.System, thread int, own, other sihtm.Addr, promote bool) {
	sys.Atomic(thread, sihtm.KindUpdate, func(ops sihtm.Ops) {
		mine := load(ops, own)
		var theirs int64
		if promote {
			theirs = int64(sihtm.PromoteRead(ops, other))
		} else {
			theirs = load(ops, other)
		}
		if mine+theirs >= withdrawal {
			store(ops, own, mine-withdrawal)
		}
	})
}

// run performs `rounds` concurrent withdrawal pairs and reports how many
// rounds ended with the invariant broken (joint balance negative).
func run(promote bool, rounds int) int {
	rt := sihtm.New(sihtm.Config{HeapLines: 1 << 10})
	sys := rt.NewSIHTM(2, sihtm.SIHTMOptions{})
	a := rt.Heap().AllocLine()
	b := rt.Heap().AllocLine()

	violations := 0
	for round := 0; round < rounds; round++ {
		rt.Heap().Store(a, uint64(initialBalance))
		rt.Heap().Store(b, uint64(initialBalance))

		// Start both withdrawals together so their snapshots overlap.
		var began atomic.Int32
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			began.Add(1)
			for began.Load() < 2 {
			}
			withdraw(sys, 0, a, b, promote)
		}()
		go func() {
			defer wg.Done()
			began.Add(1)
			for began.Load() < 2 {
			}
			withdraw(sys, 1, b, a, promote)
		}()
		wg.Wait()

		if int64(rt.Heap().Load(a))+int64(rt.Heap().Load(b)) < 0 {
			violations++
		}
	}
	return violations
}

func main() {
	const rounds = 200

	fmt.Println("SI-HTM without read promotion (plain snapshot isolation):")
	v := run(false, rounds)
	fmt.Printf("  %d/%d rounds violated the overdraft rule — the write skew SI admits\n\n", v, rounds)

	fmt.Println("SI-HTM with the paper's §2.1 read promotion:")
	v = run(true, rounds)
	fmt.Printf("  %d/%d rounds violated the overdraft rule\n", v, rounds)
	if v == 0 {
		fmt.Println("  promotion turned the skew into a write-write conflict: invariant holds")
	}
}
