// Quickstart: the smallest complete SI-HTM program.
//
// It builds the simulated POWER8 machine, runs concurrent update
// transactions against one shared counter and a read-only transaction
// over a large array — demonstrating the two properties the paper is
// about: write-write conflicts are detected in hardware, and read-only
// transactions have unlimited capacity.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"sihtm"
)

func main() {
	// A runtime is a simulated machine (default: the paper's 10-core
	// SMT-8 POWER8 with a 64-line TMCAM per core) plus its heap.
	rt := sihtm.New(sihtm.Config{HeapLines: 1 << 14})

	// Allocate shared state: one counter line and a 1000-line array —
	// nearly 16× the TMCAM.
	counter := rt.Heap().AllocLine()
	const arrayLines = 1000
	array := make([]sihtm.Addr, arrayLines)
	for i := range array {
		array[i] = rt.Heap().AllocLine()
		rt.Heap().Store(array[i], uint64(i))
	}

	const threads = 8
	sys := rt.NewSIHTM(threads, sihtm.SIHTMOptions{})

	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Update transactions: racy increments made safe by SI's
			// write-write conflict detection.
			for i := 0; i < 1000; i++ {
				sys.Atomic(id, sihtm.KindUpdate, func(ops sihtm.Ops) {
					ops.Write(counter, ops.Read(counter)+1)
				})
			}
			// A read-only scan of all 1000 lines: far beyond any HTM
			// capacity, yet it runs uninstrumented and never aborts.
			var sum uint64
			sys.Atomic(id, sihtm.KindReadOnly, func(ops sihtm.Ops) {
				sum = 0
				for _, a := range array {
					sum += ops.Read(a)
				}
			})
			fmt.Printf("thread %d: scanned %d lines, sum %d\n", id, arrayLines, sum)
		}(id)
	}
	wg.Wait()

	fmt.Printf("\ncounter: %d (want %d)\n", rt.Heap().Load(counter), threads*1000)
	s := sys.Collector().Snapshot()
	fmt.Printf("commits: %d (read-only %d), aborts: %d, SGL fallbacks: %d\n",
		s.Commits, s.CommitsRO, s.TotalAborts(), s.Fallbacks)
}
