// SMTScaling: the TMCAM-sharing effect that makes plain HTM "practically
// incompatible" with POWER8's SMT (paper §2.2), and how SI-HTM survives it.
//
// The same 8-thread transactional workload runs twice on each system:
// once with the threads spread over 8 cores (each sees a full 64-line
// TMCAM) and once stacked onto a single core as SMT-8 siblings (all
// eight share one TMCAM). Regular transactions collapse when stacked;
// SI-HTM's update transactions — bounded only by their small write sets —
// keep committing, which is why the paper's Figures 6–10 show SI-HTM
// alone scaling into the SMT region.
//
// Run with: go run ./examples/smtscaling
package main

import (
	"fmt"
	"sync"

	"sihtm"
)

const (
	threads      = 8
	opsPerThread = 1500
	readLines    = 40 // per-transaction read footprint: two overlapping txs overflow 64
)

// runPlacement executes the workload on a machine with the given layout.
func runPlacement(cores, smtWays int, system string) (commits, capacityAborts, fallbacks uint64) {
	rt := sihtm.New(sihtm.Config{
		Cores:     cores,
		SMTWays:   smtWays,
		HeapLines: 1 << 14,
	})
	// Per-thread private arrays: no data conflicts at all — every abort
	// below is a pure capacity effect.
	arrays := make([][]sihtm.Addr, threads)
	outs := make([]sihtm.Addr, threads)
	for t := 0; t < threads; t++ {
		arrays[t] = make([]sihtm.Addr, readLines)
		for i := range arrays[t] {
			arrays[t][i] = rt.Heap().AllocLine()
		}
		outs[t] = rt.Heap().AllocLine()
	}
	sys, err := rt.NewSystemByName(system, threads)
	if err != nil {
		panic(err)
	}

	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < opsPerThread; i++ {
				sys.Atomic(id, sihtm.KindUpdate, func(ops sihtm.Ops) {
					var sum uint64
					for _, a := range arrays[id] {
						sum += ops.Read(a)
					}
					ops.Write(outs[id], sum+uint64(i))
				})
			}
		}(id)
	}
	wg.Wait()
	s := sys.Collector().Snapshot()
	return s.Commits, s.Aborts[sihtm.AbortCapacity], s.Fallbacks
}

func main() {
	fmt.Printf("8 threads × %d-line read footprint, 64-line TMCAM per core, zero data conflicts\n\n", readLines)
	fmt.Printf("%-8s %-22s %10s %16s %10s\n", "system", "placement", "commits", "capacity aborts", "fallbacks")
	for _, system := range []string{"htm", "si-htm"} {
		for _, placement := range []struct {
			name          string
			cores, smtWay int
		}{
			{"spread (8 cores×SMT-1)", 8, 8},
			{"stacked (1 core×SMT-8)", 1, 8},
		} {
			c, cap, fb := runPlacement(placement.cores, placement.smtWay, system)
			fmt.Printf("%-8s %-22s %10d %16d %10d\n", system, placement.name, c, cap, fb)
		}
	}
	fmt.Println("\nstacked regular HTM shares 64 lines among 8 threads × 41-line footprints → thrash;")
	fmt.Println("stacked SI-HTM tracks only the 1-line write sets → 8 lines of 64 in use.")
}
