// KVStore: a transactional key-value store with chained buckets — the
// in-memory-database shape the paper's introduction motivates — run under
// plain HTM and under SI-HTM on the same simulated POWER8.
//
// Long bucket chains make lookup footprints exceed the 64-line TMCAM, so
// plain HTM burns its retries on capacity aborts and serialises on the
// global lock, while SI-HTM runs every lookup uninstrumented and every
// update bounded only by its write set. The printed stats show the
// paper's Figure 6 mechanism in miniature.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"sync"

	"sihtm"
)

// store is a fixed-bucket chained KV store over the simulated heap.
// Node layout (one cache line): [key, value, next].
type store struct {
	heap    *sihtm.Heap
	buckets []sihtm.Addr
}

func newStore(heap *sihtm.Heap, buckets int) *store {
	s := &store{heap: heap, buckets: make([]sihtm.Addr, buckets)}
	for i := range s.buckets {
		s.buckets[i] = heap.AllocLine()
	}
	return s
}

func (s *store) bucket(key uint64) sihtm.Addr {
	return s.buckets[(key*0x9e3779b97f4a7c15)%uint64(len(s.buckets))]
}

// get walks the chain transactionally.
func (s *store) get(ops sihtm.Ops, key uint64) (uint64, bool) {
	node := sihtm.Addr(ops.Read(s.bucket(key)))
	for node != 0 {
		if ops.Read(node) == key {
			return ops.Read(node + 1), true
		}
		node = sihtm.Addr(ops.Read(node + 2))
	}
	return 0, false
}

// put inserts or updates; fresh holds a pre-allocated node line.
func (s *store) put(ops sihtm.Ops, key, value uint64, fresh sihtm.Addr) bool {
	head := s.bucket(key)
	node := sihtm.Addr(ops.Read(head))
	for node != 0 {
		if ops.Read(node) == key {
			ops.Write(node+1, value)
			return false
		}
		node = sihtm.Addr(ops.Read(node + 2))
	}
	ops.Write(fresh, key)
	ops.Write(fresh+1, value)
	ops.Write(fresh+2, ops.Read(head))
	ops.Write(head, uint64(fresh))
	return true
}

func runStore(rt *sihtm.Runtime, sys sihtm.System, threads, opsPerThread int, chainLen uint64) {
	// Populate: chains of ~chainLen nodes (footprint >> TMCAM).
	const buckets = 64
	kv := newStore(rt.Heap(), buckets)
	keySpace := buckets * chainLen
	for key := uint64(0); key < keySpace; key++ {
		node := rt.Heap().AllocLine()
		rt.Heap().Store(node, key)
		rt.Heap().Store(node+1, key)
		rt.Heap().Store(node+2, rt.Heap().Load(kv.bucket(key)))
		rt.Heap().Store(kv.bucket(key), uint64(node))
	}

	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id)*2654435761 + 1
			for i := 0; i < opsPerThread; i++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				key := (seed >> 20) % keySpace
				if i%10 == 0 { // 10% updates
					fresh := rt.Heap().AllocLine()
					sys.Atomic(id, sihtm.KindUpdate, func(ops sihtm.Ops) {
						kv.put(ops, key, seed, fresh)
					})
				} else { // 90% lookups
					sys.Atomic(id, sihtm.KindReadOnly, func(ops sihtm.Ops) {
						kv.get(ops, key)
					})
				}
			}
		}(id)
	}
	wg.Wait()

	s := sys.Collector().Snapshot()
	fmt.Printf("%-8s commits=%d  aborts=%d (capacity %d, non-tx %d, tx %d)  SGL fallbacks=%d\n",
		sys.Name()+":", s.Commits, s.TotalAborts(),
		s.Aborts[sihtm.AbortCapacity],
		s.Aborts[sihtm.AbortNonTransactional],
		s.Aborts[sihtm.AbortTransactional],
		s.Fallbacks)
}

func main() {
	const (
		threads      = 8
		opsPerThread = 2000
		chainLen     = 120 // ~120-line lookups vs the 64-line TMCAM
	)
	fmt.Printf("kvstore: %d threads, %d ops each, ~%d-node chains (TMCAM holds 64 lines)\n\n",
		threads, opsPerThread, chainLen)

	rtHTM := sihtm.New(sihtm.Config{HeapLines: 1 << 15})
	runStore(rtHTM, rtHTM.NewHTM(threads, 0), threads, opsPerThread, chainLen)

	rtSI := sihtm.New(sihtm.Config{HeapLines: 1 << 15})
	runStore(rtSI, rtSI.NewSIHTM(threads, sihtm.SIHTMOptions{}), threads, opsPerThread, chainLen)

	fmt.Println("\nplain HTM exhausts the TMCAM on long lookups and serialises on the lock;")
	fmt.Println("SI-HTM runs the same lookups uninstrumented with zero capacity aborts.")
}
