package sihtm_test

import (
	"sync"
	"testing"

	"sihtm"
)

func TestQuickstartFlow(t *testing.T) {
	rt := sihtm.New(sihtm.Config{HeapLines: 1 << 10})
	x := rt.Heap().AllocLine()
	sys := rt.NewSIHTM(2, sihtm.SIHTMOptions{})

	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sys.Atomic(id, sihtm.KindUpdate, func(ops sihtm.Ops) {
					ops.Write(x, ops.Read(x)+1)
				})
			}
		}(id)
	}
	wg.Wait()
	if got := rt.Heap().Load(x); got != 1000 {
		t.Fatalf("counter = %d, want 1000", got)
	}
	if s := sys.Collector().Snapshot(); s.Commits != 1000 {
		t.Fatalf("commits = %d, want 1000", s.Commits)
	}
}

func TestDefaultsMatchPaperMachine(t *testing.T) {
	rt := sihtm.New(sihtm.Config{HeapLines: 16})
	if rt.Topology().Cores() != 10 || rt.Topology().SMTWays() != 8 {
		t.Fatalf("default topology = %v, want 10×SMT-8", rt.Topology())
	}
	if rt.MaxThreads() != 80 {
		t.Fatalf("MaxThreads = %d, want 80", rt.MaxThreads())
	}
}

func TestNewSystemByName(t *testing.T) {
	rt := sihtm.New(sihtm.Config{HeapLines: 1 << 8})
	for _, name := range sihtm.SystemNames() {
		sys, err := rt.NewSystemByName(name, 2)
		if err != nil {
			t.Fatalf("NewSystemByName(%q): %v", name, err)
		}
		if sys.Name() != name {
			t.Fatalf("system %q reports name %q", name, sys.Name())
		}
		if sys.Threads() != 2 {
			t.Fatalf("system %q threads = %d", name, sys.Threads())
		}
	}
	if _, err := rt.NewSystemByName("nope", 2); err == nil {
		t.Fatal("unknown system name accepted")
	}
	// The alias spelling.
	if sys, err := rt.NewSystemByName("sihtm", 1); err != nil || sys.Name() != "si-htm" {
		t.Fatalf("alias sihtm: %v, %v", sys, err)
	}
}

func TestEverySystemRunsTheSameBody(t *testing.T) {
	rt := sihtm.New(sihtm.Config{HeapLines: 1 << 10, Cores: 4, SMTWays: 2})
	for _, name := range sihtm.SystemNames() {
		sys, err := rt.NewSystemByName(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		a := rt.Heap().AllocLine()
		sys.Atomic(0, sihtm.KindUpdate, func(ops sihtm.Ops) {
			ops.Write(a, 41)
			ops.Write(a, ops.Read(a)+1)
		})
		if got := rt.Heap().Load(a); got != 42 {
			t.Fatalf("%s: value = %d, want 42", name, got)
		}
	}
}

func TestPromoteReadPreventsWriteSkew(t *testing.T) {
	rt := sihtm.New(sihtm.Config{HeapLines: 1 << 10, Cores: 2, SMTWays: 1})
	sys := rt.NewSIHTM(2, sihtm.SIHTMOptions{})
	x := rt.Heap().AllocLine()
	y := rt.Heap().AllocLine()

	for round := 0; round < 30; round++ {
		rt.Heap().Store(x, 0)
		rt.Heap().Store(y, 0)
		var wg sync.WaitGroup
		run := func(id int, own, other sihtm.Addr) {
			defer wg.Done()
			sys.Atomic(id, sihtm.KindUpdate, func(ops sihtm.Ops) {
				sum := ops.Read(own) + sihtm.PromoteRead(ops, other)
				if sum == 0 {
					ops.Write(own, 1)
				}
			})
		}
		wg.Add(2)
		go run(0, x, y)
		go run(1, y, x)
		wg.Wait()
		if rt.Heap().Load(x)+rt.Heap().Load(y) == 2 {
			t.Fatalf("round %d: write skew despite read promotion", round)
		}
	}
}
