module sihtm

go 1.24
