// Package db exposes the repository's miniature in-memory database
// engine — fixed-width tables with a primary-key B+tree and secondary
// indexes over the transactional heap — as part of the public API. It is
// the integration shape the paper's introduction motivates: an IMDB whose
// concurrency control is SI-HTM (or any of the baselines), with no
// instrumentation of the engine's reads and writes beyond tm.Ops.
//
// Typical use:
//
//	rt := sihtm.New(sihtm.Config{HeapLines: 1 << 18})
//	store := db.New(rt)
//	orders, _ := store.CreateTable(db.Schema{
//	    Table:   "orders",
//	    Columns: []string{"id", "customer", "amount"},
//	}, 1<<16)
//	orders.CreateIndex("customer")
//
//	sys := rt.NewSIHTM(8, sihtm.SIHTMOptions{})
//	w := orders.NewWriter() // one per worker
//	w.Prepare()
//	sys.Atomic(0, sihtm.KindUpdate, func(ops sihtm.Ops) {
//	    w.Insert(ops, []uint64{1001, 7, 250_00})
//	})
//	w.Commit()
//
// Read-only reports (ScanPK / ScanIndex) run on SI-HTM's uninstrumented
// fast path with unlimited capacity — the capacity stretch that is the
// paper's contribution, applied to database range queries.
//
// This package is deliberately a pure re-export shim: type aliases and
// thin constructors over internal/imdb (tables) and
// internal/index/btree (indexes), with no logic of its own, so the
// public surface cannot diverge from the implementation. Every engine
// behaviour — and its tests — lives in internal/imdb; db decides only
// what is public (see docs/architecture.md, "Public surface"). The
// durability subsystem (internal/durable) attaches underneath this
// layer, at the TM commit hook, so durable operation requires no db
// API changes — see docs/durability.md.
package db

import (
	"sihtm"
	"sihtm/internal/imdb"
	"sihtm/internal/index/btree"
)

// Re-exported engine types.
type (
	// DB owns tables over one runtime's heap.
	DB = imdb.DB
	// Schema declares a table's columns; column 0 is the primary key.
	Schema = imdb.Schema
	// Table is a fixed-capacity row store with indexes.
	Table = imdb.Table
	// RowID identifies a row within its table.
	RowID = imdb.RowID
	// Writer is a per-worker insert handle (private row slots + index
	// node pool): Insert inside the transaction body, Commit after it
	// returns.
	Writer = imdb.Writer
	// Pool pre-allocates index nodes so transaction bodies stay
	// allocation-free (Refill outside transactions, Reset at body start,
	// Commit after the transaction returns).
	Pool = btree.Pool
	// Tree is the underlying transactional B+tree, usable directly for
	// ordered maps outside the table abstraction.
	Tree = btree.Tree
)

// Exported errors.
var (
	// ErrDuplicateKey reports an Insert with an existing primary key.
	ErrDuplicateKey = imdb.ErrDuplicateKey
	// ErrTableFull reports an Insert beyond the table's capacity.
	ErrTableFull = imdb.ErrTableFull
)

// Index geometry, re-exported for capacity planning.
const (
	// Fanout is the B+tree's maximum child count per internal node.
	Fanout = btree.Fanout
	// MaxKeys is the key capacity of any B+tree node.
	MaxKeys = btree.MaxKeys
)

// New creates an empty database on the runtime's heap.
func New(rt *sihtm.Runtime) *DB { return imdb.New(rt.Heap()) }

// NewPool creates an index-node pool on the runtime's heap.
func NewPool(rt *sihtm.Runtime) *Pool { return btree.NewPool(rt.Heap()) }

// NewTree creates a standalone transactional B+tree on the runtime's heap.
func NewTree(rt *sihtm.Runtime) *Tree { return btree.New(rt.Heap()) }

// RecommendedPoolSize is the node count one standalone tree insert may
// consume (a full root-to-leaf split chain).
func RecommendedPoolSize() int { return btree.RecommendedPoolSize() }

// HeapLinesForTable estimates the heap a table needs (rows + indexes).
func HeapLinesForTable(s Schema, capacity, indexes int) int {
	return imdb.HeapLinesForTable(s, capacity, indexes)
}
