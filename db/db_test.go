package db_test

import (
	"testing"

	"sihtm"
	"sihtm/db"
	"sihtm/internal/imdb"
	"sihtm/internal/index/btree"
)

// TestShimIsPureReExport pins the db ↔ internal/imdb contract: the
// public types are aliases (assignable in both directions without
// conversion), so the shim cannot diverge from the implementation.
func TestShimIsPureReExport(t *testing.T) {
	var (
		_ *imdb.DB     = (*db.DB)(nil)
		_ *imdb.Table  = (*db.Table)(nil)
		_ *imdb.Writer = (*db.Writer)(nil)
		_ imdb.Schema  = db.Schema{}
		_ imdb.RowID   = db.RowID(0)
		_ *btree.Tree  = (*db.Tree)(nil)
		_ *btree.Pool  = (*db.Pool)(nil)
	)
	if db.ErrDuplicateKey != imdb.ErrDuplicateKey || db.ErrTableFull != imdb.ErrTableFull {
		t.Fatal("db errors are not the imdb errors")
	}
	if db.Fanout != btree.Fanout || db.MaxKeys != btree.MaxKeys {
		t.Fatal("db index geometry diverges from btree")
	}
	if db.RecommendedPoolSize() != btree.RecommendedPoolSize() {
		t.Fatal("db.RecommendedPoolSize diverges from btree")
	}
}

// TestPublicSurfaceRoundTrip exercises the documented public usage
// shape end to end (runtime → db → table → transactional insert →
// read-only scan).
func TestPublicSurfaceRoundTrip(t *testing.T) {
	rt := sihtm.New(sihtm.Config{HeapLines: 1 << 14})
	store := db.New(rt)
	orders, err := store.CreateTable(db.Schema{
		Table:   "orders",
		Columns: []string{"id", "customer", "amount"},
	}, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := orders.CreateIndex("customer"); err != nil {
		t.Fatal(err)
	}

	sys := rt.NewSIHTM(2, sihtm.SIHTMOptions{})
	w := orders.NewWriter()
	w.Prepare()
	for i := uint64(1); i <= 10; i++ {
		i := i
		sys.Atomic(0, sihtm.KindUpdate, func(ops sihtm.Ops) {
			if _, err := w.Insert(ops, []uint64{1000 + i, i % 3, i * 100}); err != nil {
				panic(err)
			}
		})
		w.Commit()
	}

	var seen int
	sys.Atomic(1, sihtm.KindReadOnly, func(ops sihtm.Ops) {
		seen = 0
		orders.ScanPK(ops, 0, ^uint64(0), func(db.RowID) bool {
			seen++
			return true
		})
	})
	if seen != 10 {
		t.Fatalf("read-only scan saw %d rows, want 10", seen)
	}
	if err := orders.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
