// Package rng provides the deterministic pseudo-random number generation
// used by the workload generators: a per-thread splitmix64/xorshift-based
// generator (no locking, reproducible from a seed) plus the TPC-C
// specification's non-uniform random (NURand) and customer last-name
// helpers (TPC-C standard rev. 5.11, clause 2.1.6 and 4.3.2).
package rng

import "fmt"

// Rand is a small, fast, deterministic PRNG (xoshiro256** seeded by
// splitmix64). It is not safe for concurrent use; give each worker its
// own instance.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed. Distinct seeds — including
// sequential ones — produce decorrelated streams thanks to the splitmix64
// seeding pass.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// A state of all zeros would be a fixed point; splitmix64 cannot
	// produce it from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Stream returns the generator for one named stream of a seeded run:
// every workload derives its per-thread generators as
// Stream(cfg.Seed, thread), so a single configuration seed reproduces
// the whole run and distinct streams — even sequential ones — are
// decorrelated by an extra splitmix64 mixing pass over (seed, stream).
//
// Stream ids are a per-seed namespace. By convention, worker threads use
// their small thread index and setup-time population uses
// StreamPopulate, so loading and execution never share a stream.
func Stream(seed, stream uint64) *Rand {
	z := seed + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return New(z ^ (z >> 31))
}

// StreamPopulate is the reserved stream id for initial-population
// generators (see Stream).
const StreamPopulate uint64 = 0x706f70756c617465 // "populate"

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn argument must be positive, got %d", n))
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform int in [lo, hi] inclusive, the "random(x..y)"
// primitive of the TPC-C spec. It panics if hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("rng: IntRange bounds inverted: [%d,%d]", lo, hi))
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability pPercent/100.
func (r *Rand) Bool(pPercent int) bool {
	return r.Intn(100) < pPercent
}

// TPC-C clause 2.1.6: NURand(A, x, y) =
// (((random(0..A) | random(x..y)) + C) % (y - x + 1)) + x.
// The constants A are fixed by the spec per use; C is a per-run constant.
const (
	NURandACustomerID   = 1023
	NURandAItemID       = 8191
	NURandACustomerLast = 255
)

// NURand implements the spec's non-uniform random function with run
// constant c.
func (r *Rand) NURand(a, x, y, c int) int {
	return (((r.IntRange(0, a) | r.IntRange(x, y)) + c) % (y - x + 1)) + x
}

// CustomerID returns a NURand customer number in [1, customers].
func (r *Rand) CustomerID(customers, c int) int {
	return r.NURand(NURandACustomerID, 1, customers, c)
}

// ItemID returns a NURand item number in [1, items].
func (r *Rand) ItemID(items, c int) int {
	return r.NURand(NURandAItemID, 1, items, c)
}

// lastNameSyllables are the ten syllables of TPC-C clause 4.3.2.3.
var lastNameSyllables = [10]string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName composes the customer last name for a number in [0, 999].
func LastName(num int) string {
	if num < 0 || num > 999 {
		panic(fmt.Sprintf("rng: LastName argument must be in [0,999], got %d", num))
	}
	return lastNameSyllables[num/100] + lastNameSyllables[(num/10)%10] + lastNameSyllables[num%10]
}

// LastNameNum draws the NURand(255, 0, 999) last-name number used by
// Payment and Order-Status.
func (r *Rand) LastNameNum(c int) int {
	return r.NURand(NURandACustomerLast, 0, 999, c)
}

// Perm fills out with a pseudo-random permutation of [0, len(out)).
func (r *Rand) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
