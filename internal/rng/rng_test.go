package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 agreed on %d/100 draws", same)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a, b := Stream(42, 3), Stream(42, 3)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed, stream) diverged at draw %d", i)
		}
	}
}

// Sequential stream ids of one seed, and the same stream id under
// different seeds, must all be decorrelated.
func TestStreamsDecorrelated(t *testing.T) {
	pairs := [][2]*Rand{
		{Stream(42, 0), Stream(42, 1)},
		{Stream(42, 1), Stream(42, 2)},
		{Stream(1, 7), Stream(2, 7)},
		{Stream(42, 0), Stream(42, StreamPopulate)},
		{Stream(42, 5), New(42)},
	}
	for pi, p := range pairs {
		same := 0
		for i := 0; i < 100; i++ {
			if p[0].Uint64() == p[1].Uint64() {
				same++
			}
		}
		if same > 2 {
			t.Fatalf("pair %d agreed on %d/100 draws", pi, same)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRangeInclusive(t *testing.T) {
	r := New(11)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.IntRange(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntRange(3,5) = %d", v)
		}
		seen[v] = true
	}
	if !seen[3] || !seen[4] || !seen[5] {
		t.Fatalf("IntRange(3,5) never produced some endpoint: %v", seen)
	}
	if got := r.IntRange(9, 9); got != 9 {
		t.Fatalf("IntRange(9,9) = %d", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	n := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(30) {
			n++
		}
	}
	frac := float64(n) / draws
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(30) frequency = %v, want ≈0.30", frac)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(100) {
		t.Fatal("Bool(100) returned false")
	}
}

// Property: NURand always lands in [x, y].
func TestNURandRangeProperty(t *testing.T) {
	r := New(17)
	f := func(cRaw uint16) bool {
		c := int(cRaw)
		for i := 0; i < 50; i++ {
			if v := r.NURand(NURandACustomerID, 1, 3000, c); v < 1 || v > 3000 {
				return false
			}
			if v := r.NURand(NURandAItemID, 1, 100000, c); v < 1 || v > 100000 {
				return false
			}
			if v := r.LastNameNum(c); v < 0 || v > 999 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// NURand must actually be non-uniform: the OR construction makes some
// values far likelier than others (that is the point of the spec's
// hot-spot model). A uniform generator over n=300 with ~2000 samples per
// value would have a relative count deviation of about 1/sqrt(2000) ≈ 2%;
// NURand's is an order of magnitude larger.
func TestNURandIsSkewed(t *testing.T) {
	r := New(23)
	const draws = 600000
	const n = 300
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		counts[r.NURand(NURandACustomerID, 1, n, 123)]++
	}
	mean := float64(draws) / n
	var sumSq float64
	for _, c := range counts[1:] {
		d := float64(c) - mean
		sumSq += d * d
	}
	relDev := (sumSq / n) / (mean * mean) // squared coefficient of variation
	if relDev < 0.01 {
		t.Fatalf("NURand looks uniform (squared CV %v); expected strong skew", relDev)
	}
}

func TestLastName(t *testing.T) {
	cases := map[int]string{
		0:   "BARBARBAR",
		1:   "BARBAROUGHT",
		371: "PRICALLYOUGHT",
		999: "EINGEINGEING",
	}
	for num, want := range cases {
		if got := LastName(num); got != want {
			t.Errorf("LastName(%d) = %q, want %q", num, got, want)
		}
	}
}

func TestLastNamePanicsOutOfRange(t *testing.T) {
	for _, bad := range []int{-1, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LastName(%d) did not panic", bad)
				}
			}()
			LastName(bad)
		}()
	}
}

// Property: Perm produces a permutation (every index exactly once).
func TestPermProperty(t *testing.T) {
	r := New(31)
	f := func(nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		out := make([]int, n)
		r.Perm(out)
		seen := make([]bool, n)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
