// Package btree implements a transactional B+tree over the simulated
// heap — the ordered-index substrate the paper's §3 envisions for
// integrating SI-HTM into in-memory databases ("IMDBs that store named
// records ... making use of efficient indexes").
//
// Layout is chosen for the cache-line cost model the whole repository is
// built around: every node occupies exactly two 128-byte lines, so a
// point lookup in a tree of a million keys touches ~12 lines and a range
// scan streams the leaf chain at two lines per 14 entries. All node
// mutations touch the node's first line (the header holds the count), so
// two transactions updating one node always write-write conflict — the
// property that makes the tree serializable under snapshot isolation
// without read promotion (concurrent structural changes to the same node
// cannot both commit).
//
// Deletion is tombstone-free but lazy: keys are removed from their leaf
// without rebalancing, so a long deletion-only workload can leave
// under-full leaves (bounded by the number of deletions). This is the
// standard trade-off in TM index benchmarks and keeps delete write sets
// at a single node.
package btree

import (
	"fmt"

	"sihtm/internal/memsim"
	"sihtm/internal/tm"
)

// Node geometry: 2 cache lines = 32 words.
//
//	word 0:      header = count | leafFlag
//	words 1..14: keys (Fanout-1 = 14)
//	word 15:     next-leaf pointer (leaves) / unused (internal)
//	words 16..30: children (internal, Fanout = 15) or values (leaves, 14)
//	word 31:     unused
const (
	// Fanout is the maximum child count of an internal node.
	Fanout = 15
	// MaxKeys is the key capacity of any node.
	MaxKeys = Fanout - 1

	nodeWords = 2 * memsim.WordsPerLine
	hdrWord   = 0
	keyBase   = 1
	nextWord  = 15
	childBase = 16
	leafFlag  = uint64(1) << 63
	countMask = (uint64(1) << 32) - 1
)

// Tree is a transactional B+tree mapping uint64 keys to uint64 values.
// The root pointer cell lives in the heap so that structural root changes
// are transactional like everything else.
type Tree struct {
	heap     *memsim.Heap
	rootCell memsim.Addr // heap word holding the root node address
}

// New creates an empty tree on heap.
func New(heap *memsim.Heap) *Tree {
	t := &Tree{heap: heap, rootCell: heap.AllocLine()}
	root := heap.AllocLines(2)
	heap.Store(root+hdrWord, leafFlag) // empty leaf
	heap.Store(t.rootCell, uint64(root))
	return t
}

// Pool supplies pre-allocated nodes to Insert so transaction bodies stay
// allocation-free and idempotent. It is cursor-based: an aborted attempt
// re-runs the body, Reset rewinds the cursor, and the retry reuses the
// very same nodes (their tentative contents were never published).
//
// Contract: Refill outside transactions; Reset at the top of the
// transaction body; Commit after the transaction has committed, which
// permanently consumes the nodes the successful attempt used.
type Pool struct {
	heap   *memsim.Heap
	nodes  []memsim.Addr
	cursor int
}

// NewPool creates a node pool.
func NewPool(heap *memsim.Heap) *Pool { return &Pool{heap: heap} }

// Refill tops the pool up to n nodes. Call only outside transactions.
func (p *Pool) Refill(n int) {
	for len(p.nodes) < n {
		p.nodes = append(p.nodes, p.heap.AllocLines(2))
	}
}

// Len returns the number of pooled nodes.
func (p *Pool) Len() int { return len(p.nodes) - p.cursor }

// Reset rewinds the cursor; call at the start of each transaction body.
func (p *Pool) Reset() { p.cursor = 0 }

// Commit consumes the nodes used by the committed attempt; call after
// the transaction returns.
func (p *Pool) Commit() {
	p.nodes = p.nodes[:copy(p.nodes, p.nodes[p.cursor:])]
	p.cursor = 0
}

// take hands out the next node. Running dry mid-transaction panics,
// pointing at a caller bug (allocating here would break idempotency).
func (p *Pool) take() memsim.Addr {
	if p.cursor >= len(p.nodes) {
		panic("btree: node pool exhausted inside a transaction; Refill(RecommendedPoolSize()) between transactions")
	}
	n := p.nodes[p.cursor]
	p.cursor++
	return n
}

// RecommendedPoolSize returns the node count one Insert may consume in
// the worst case (a full root-to-leaf split chain plus a new root).
func RecommendedPoolSize() int { return 12 }

func isLeaf(hdr uint64) bool { return hdr&leafFlag != 0 }
func count(hdr uint64) int   { return int(hdr & countMask) }

func (t *Tree) root(ops tm.Ops) memsim.Addr {
	return memsim.Addr(ops.Read(t.rootCell))
}

// search returns the index of the first key >= k within the node, reading
// keys transactionally.
func search(ops tm.Ops, n memsim.Addr, cnt int, k uint64) int {
	lo, hi := 0, cnt
	for lo < hi {
		mid := (lo + hi) / 2
		if ops.Read(n+keyBase+memsim.Addr(mid)) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Lookup returns the value stored under key.
func (t *Tree) Lookup(ops tm.Ops, key uint64) (uint64, bool) {
	n := t.root(ops)
	for {
		hdr := ops.Read(n + hdrWord)
		cnt := count(hdr)
		i := search(ops, n, cnt, key)
		if isLeaf(hdr) {
			if i < cnt && ops.Read(n+keyBase+memsim.Addr(i)) == key {
				return ops.Read(n + childBase + memsim.Addr(i)), true
			}
			return 0, false
		}
		if i < cnt && ops.Read(n+keyBase+memsim.Addr(i)) == key {
			i++ // equal keys route right in internal nodes
		}
		n = memsim.Addr(ops.Read(n + childBase + memsim.Addr(i)))
	}
}

// Insert stores value under key, reporting whether the key was new.
// Existing keys are updated in place. pool must hold at least
// RecommendedPoolSize() nodes.
func (t *Tree) Insert(ops tm.Ops, key, value uint64, pool *Pool) bool {
	root := t.root(ops)
	newKey, splitKey, splitNode := t.insertRec(ops, root, key, value, pool)
	if splitNode != 0 {
		// Root split: grow the tree by one level.
		newRoot := pool.take()
		ops.Write(newRoot+hdrWord, 1) // internal, one key
		ops.Write(newRoot+keyBase, splitKey)
		ops.Write(newRoot+childBase, uint64(root))
		ops.Write(newRoot+childBase+1, uint64(splitNode))
		ops.Write(t.rootCell, uint64(newRoot))
	}
	return newKey
}

// insertRec inserts below n. If n split, it returns the separator key and
// the new right sibling.
func (t *Tree) insertRec(ops tm.Ops, n memsim.Addr, key, value uint64, pool *Pool) (newKey bool, splitKey uint64, splitNode memsim.Addr) {
	hdr := ops.Read(n + hdrWord)
	cnt := count(hdr)
	i := search(ops, n, cnt, key)

	if isLeaf(hdr) {
		if i < cnt && ops.Read(n+keyBase+memsim.Addr(i)) == key {
			ops.Write(n+childBase+memsim.Addr(i), value)
			return false, 0, 0
		}
		if cnt < MaxKeys {
			leafInsertAt(ops, n, cnt, i, key, value)
			return true, 0, 0
		}
		// Split the full leaf, then insert into the proper half.
		right := pool.take()
		mid := (MaxKeys + 1) / 2 // 7 stay left, 7 move right
		moveLeafUpper(ops, n, right, mid, cnt)
		sep := ops.Read(right + keyBase) // first key of the right leaf
		if key < sep {
			leafInsertAt(ops, n, mid, i, key, value)
		} else {
			j := search(ops, right, cnt-mid, key)
			leafInsertAt(ops, right, cnt-mid, j, key, value)
		}
		return true, sep, right
	}

	if i < cnt && ops.Read(n+keyBase+memsim.Addr(i)) == key {
		i++
	}
	child := memsim.Addr(ops.Read(n + childBase + memsim.Addr(i)))
	newKey, csKey, csNode := t.insertRec(ops, child, key, value, pool)
	if csNode == 0 {
		return newKey, 0, 0
	}
	// Child split: insert (csKey, csNode) into this internal node.
	if cnt < MaxKeys {
		internalInsertAt(ops, n, cnt, i, csKey, uint64(csNode))
		return newKey, 0, 0
	}
	// Split this internal node. The middle key moves up.
	right := pool.take()
	mid := MaxKeys / 2 // keys [0,mid) stay, key mid moves up, (mid,cnt) move right
	upKey := ops.Read(n + keyBase + memsim.Addr(mid))
	moveInternalUpper(ops, n, right, mid, cnt)
	if csKey < upKey {
		internalInsertAt(ops, n, mid, i, csKey, uint64(csNode))
	} else {
		j := i - mid - 1
		internalInsertAt(ops, right, cnt-mid-1, j, csKey, uint64(csNode))
	}
	return newKey, upKey, right
}

// leafInsertAt shifts entries [i,cnt) right and writes (key,value) at i.
func leafInsertAt(ops tm.Ops, n memsim.Addr, cnt, i int, key, value uint64) {
	for j := cnt; j > i; j-- {
		ops.Write(n+keyBase+memsim.Addr(j), ops.Read(n+keyBase+memsim.Addr(j-1)))
		ops.Write(n+childBase+memsim.Addr(j), ops.Read(n+childBase+memsim.Addr(j-1)))
	}
	ops.Write(n+keyBase+memsim.Addr(i), key)
	ops.Write(n+childBase+memsim.Addr(i), value)
	ops.Write(n+hdrWord, leafFlag|uint64(cnt+1))
}

// internalInsertAt inserts key at slot i and child pointer at slot i+1.
func internalInsertAt(ops tm.Ops, n memsim.Addr, cnt, i int, key, child uint64) {
	for j := cnt; j > i; j-- {
		ops.Write(n+keyBase+memsim.Addr(j), ops.Read(n+keyBase+memsim.Addr(j-1)))
		ops.Write(n+childBase+memsim.Addr(j+1), ops.Read(n+childBase+memsim.Addr(j)))
	}
	ops.Write(n+keyBase+memsim.Addr(i), key)
	ops.Write(n+childBase+memsim.Addr(i+1), child)
	ops.Write(n+hdrWord, uint64(cnt+1))
}

// moveLeafUpper moves leaf entries [mid,cnt) of n to fresh leaf right and
// links right into the leaf chain after n.
func moveLeafUpper(ops tm.Ops, n, right memsim.Addr, mid, cnt int) {
	for j := mid; j < cnt; j++ {
		ops.Write(right+keyBase+memsim.Addr(j-mid), ops.Read(n+keyBase+memsim.Addr(j)))
		ops.Write(right+childBase+memsim.Addr(j-mid), ops.Read(n+childBase+memsim.Addr(j)))
	}
	ops.Write(right+hdrWord, leafFlag|uint64(cnt-mid))
	ops.Write(right+nextWord, ops.Read(n+nextWord))
	ops.Write(n+nextWord, uint64(right))
	ops.Write(n+hdrWord, leafFlag|uint64(mid))
}

// moveInternalUpper moves keys (mid,cnt) and children (mid,cnt] of n to
// fresh internal node right (key mid is promoted by the caller).
func moveInternalUpper(ops tm.Ops, n, right memsim.Addr, mid, cnt int) {
	for j := mid + 1; j < cnt; j++ {
		ops.Write(right+keyBase+memsim.Addr(j-mid-1), ops.Read(n+keyBase+memsim.Addr(j)))
	}
	for j := mid + 1; j <= cnt; j++ {
		ops.Write(right+childBase+memsim.Addr(j-mid-1), ops.Read(n+childBase+memsim.Addr(j)))
	}
	ops.Write(right+hdrWord, uint64(cnt-mid-1))
	ops.Write(n+hdrWord, uint64(mid))
}

// Delete removes key from its leaf (lazy: no rebalancing), reporting
// whether the key was present.
func (t *Tree) Delete(ops tm.Ops, key uint64) bool {
	n := t.root(ops)
	for {
		hdr := ops.Read(n + hdrWord)
		cnt := count(hdr)
		i := search(ops, n, cnt, key)
		if isLeaf(hdr) {
			if i >= cnt || ops.Read(n+keyBase+memsim.Addr(i)) != key {
				return false
			}
			for j := i; j < cnt-1; j++ {
				ops.Write(n+keyBase+memsim.Addr(j), ops.Read(n+keyBase+memsim.Addr(j+1)))
				ops.Write(n+childBase+memsim.Addr(j), ops.Read(n+childBase+memsim.Addr(j+1)))
			}
			ops.Write(n+hdrWord, leafFlag|uint64(cnt-1))
			return true
		}
		if i < cnt && ops.Read(n+keyBase+memsim.Addr(i)) == key {
			i++
		}
		n = memsim.Addr(ops.Read(n + childBase + memsim.Addr(i)))
	}
}

// RangeScan visits all (key,value) pairs with lo <= key <= hi in order,
// streaming the leaf chain. fn returning false stops the scan. The scan's
// footprint is ~2 cache lines per 14 entries — the long-read-set shape
// SI-HTM's read-only fast path exists for.
func (t *Tree) RangeScan(ops tm.Ops, lo, hi uint64, fn func(key, value uint64) bool) {
	n := t.root(ops)
	// Descend to the leaf that may hold lo.
	for {
		hdr := ops.Read(n + hdrWord)
		if isLeaf(hdr) {
			break
		}
		cnt := count(hdr)
		i := search(ops, n, cnt, lo)
		if i < cnt && ops.Read(n+keyBase+memsim.Addr(i)) == lo {
			i++
		}
		n = memsim.Addr(ops.Read(n + childBase + memsim.Addr(i)))
	}
	for n != 0 {
		hdr := ops.Read(n + hdrWord)
		cnt := count(hdr)
		for i := search(ops, n, cnt, lo); i < cnt; i++ {
			k := ops.Read(n + keyBase + memsim.Addr(i))
			if k > hi {
				return
			}
			if !fn(k, ops.Read(n+childBase+memsim.Addr(i))) {
				return
			}
		}
		n = memsim.Addr(ops.Read(n + nextWord))
	}
}

// Count returns the number of keys (verification helper; walks the whole
// leaf chain).
func (t *Tree) Count(ops tm.Ops) int {
	total := 0
	t.RangeScan(ops, 0, ^uint64(0), func(uint64, uint64) bool {
		total++
		return true
	})
	return total
}

// CheckInvariants verifies the structural invariants non-transactionally:
// sorted keys in every node, children's key ranges consistent with their
// separators, uniform leaf depth, and an intact leaf chain. Verification
// helper for tests; must run quiescently.
func (t *Tree) CheckInvariants() error {
	heap := t.heap
	root := memsim.Addr(heap.Load(t.rootCell))
	leafDepth := -1
	var prevLeafLast *uint64

	var walk func(n memsim.Addr, depth int, lo, hi *uint64) error
	walk = func(n memsim.Addr, depth int, lo, hi *uint64) error {
		hdr := heap.Load(n + hdrWord)
		cnt := count(hdr)
		if cnt > MaxKeys {
			return fmt.Errorf("btree: node %d has %d keys (max %d)", n, cnt, MaxKeys)
		}
		var prev *uint64
		for i := 0; i < cnt; i++ {
			k := heap.Load(n + keyBase + memsim.Addr(i))
			if prev != nil && k <= *prev {
				return fmt.Errorf("btree: node %d keys out of order at %d", n, i)
			}
			if lo != nil && k < *lo {
				return fmt.Errorf("btree: node %d key %d below lower bound %d", n, k, *lo)
			}
			if hi != nil && k >= *hi {
				return fmt.Errorf("btree: node %d key %d at/above upper bound %d", n, k, *hi)
			}
			kCopy := k
			prev = &kCopy
		}
		if isLeaf(hdr) {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree: leaf depth %d != %d (unbalanced)", depth, leafDepth)
			}
			if cnt > 0 {
				first := heap.Load(n + keyBase)
				if prevLeafLast != nil && first <= *prevLeafLast {
					return fmt.Errorf("btree: leaf chain out of order (%d after %d)", first, *prevLeafLast)
				}
				last := heap.Load(n + keyBase + memsim.Addr(cnt-1))
				prevLeafLast = &last
			}
			return nil
		}
		for i := 0; i <= cnt; i++ {
			child := memsim.Addr(heap.Load(n + childBase + memsim.Addr(i)))
			if child == 0 {
				return fmt.Errorf("btree: node %d child %d is nil", n, i)
			}
			var cLo, cHi *uint64
			if i > 0 {
				k := heap.Load(n + keyBase + memsim.Addr(i-1))
				cLo = &k
			} else {
				cLo = lo
			}
			if i < cnt {
				k := heap.Load(n + keyBase + memsim.Addr(i))
				cHi = &k
			} else {
				cHi = hi
			}
			if err := walk(child, depth+1, cLo, cHi); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root, 0, nil, nil)
}
