package btree_test

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"sihtm/internal/index/btree"
	"sihtm/internal/memsim"
	"sihtm/internal/rng"
	"sihtm/internal/tm"
	"sihtm/internal/tmtest"
)

// plainOps runs tree operations without a transaction.
type plainOps struct{ heap *memsim.Heap }

func (o plainOps) Read(a memsim.Addr) uint64     { return o.heap.Load(a) }
func (o plainOps) Write(a memsim.Addr, v uint64) { o.heap.Store(a, v) }

func newTree(t testing.TB, lines int) (*btree.Tree, *memsim.Heap, *btree.Pool, plainOps) {
	t.Helper()
	heap := memsim.NewHeapLines(lines)
	tr := btree.New(heap)
	pool := btree.NewPool(heap)
	return tr, heap, pool, plainOps{heap}
}

// insert is the full pool protocol for one non-transactional insert.
func insert(tr *btree.Tree, pool *btree.Pool, ops tm.Ops, k, v uint64) bool {
	pool.Refill(btree.RecommendedPoolSize())
	pool.Reset()
	fresh := tr.Insert(ops, k, v, pool)
	pool.Commit()
	return fresh
}

func TestEmptyTree(t *testing.T) {
	tr, _, _, ops := newTree(t, 1<<10)
	if _, ok := tr.Lookup(ops, 42); ok {
		t.Fatal("lookup in empty tree succeeded")
	}
	if tr.Count(ops) != 0 {
		t.Fatal("empty tree has nonzero count")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertLookupUpdate(t *testing.T) {
	tr, _, pool, ops := newTree(t, 1<<12)
	if !insert(tr, pool, ops, 5, 50) {
		t.Fatal("fresh insert reported existing")
	}
	if insert(tr, pool, ops, 5, 51) {
		t.Fatal("update reported fresh")
	}
	if v, ok := tr.Lookup(ops, 5); !ok || v != 51 {
		t.Fatalf("lookup = %d,%v", v, ok)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Sequential, reverse and shuffled bulk inserts exercise every split path.
func TestBulkInsertOrders(t *testing.T) {
	const n = 3000
	orders := map[string]func(i int) uint64{
		"ascending":  func(i int) uint64 { return uint64(i) },
		"descending": func(i int) uint64 { return uint64(n - i) },
		"shuffled":   nil, // filled below
	}
	perm := make([]int, n)
	rng.New(9).Perm(perm)
	orders["shuffled"] = func(i int) uint64 { return uint64(perm[i]) }

	for name, keyOf := range orders {
		t.Run(name, func(t *testing.T) {
			tr, _, pool, ops := newTree(t, 1<<14)
			for i := 0; i < n; i++ {
				insert(tr, pool, ops, keyOf(i), keyOf(i)*2)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if got := tr.Count(ops); got != n {
				t.Fatalf("count = %d, want %d", got, n)
			}
			for i := 0; i < n; i++ {
				k := keyOf(i)
				if v, ok := tr.Lookup(ops, k); !ok || v != k*2 {
					t.Fatalf("lookup(%d) = %d,%v", k, v, ok)
				}
			}
		})
	}
}

func TestDelete(t *testing.T) {
	tr, _, pool, ops := newTree(t, 1<<14)
	const n = 500
	for i := 0; i < n; i++ {
		insert(tr, pool, ops, uint64(i), uint64(i))
	}
	// Delete every third key.
	for i := 0; i < n; i += 3 {
		if !tr.Delete(ops, uint64(i)) {
			t.Fatalf("delete(%d) missed", i)
		}
	}
	if tr.Delete(ops, 0) {
		t.Fatal("double delete succeeded")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Lookup(ops, uint64(i))
		if want := i%3 != 0; ok != want {
			t.Fatalf("lookup(%d) = %v, want %v", i, ok, want)
		}
	}
}

func TestRangeScan(t *testing.T) {
	tr, _, pool, ops := newTree(t, 1<<14)
	for i := 0; i < 1000; i += 2 { // even keys only
		insert(tr, pool, ops, uint64(i), uint64(i)*10)
	}
	var got []uint64
	tr.RangeScan(ops, 100, 200, func(k, v uint64) bool {
		if v != k*10 {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 51 { // 100,102,...,200
		t.Fatalf("scan returned %d keys, want 51", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan out of order")
	}
	// Early stop.
	count := 0
	tr.RangeScan(ops, 0, ^uint64(0), func(uint64, uint64) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
	// Empty range.
	tr.RangeScan(ops, 301, 301, func(k, v uint64) bool {
		t.Fatalf("empty range visited %d", k)
		return false
	})
}

// Property: the tree agrees with a shadow map over random op sequences.
func TestTreeMatchesShadowProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16
		Val  uint16
	}
	f := func(ops []op) bool {
		tr, _, pool, po := newTree(t, 1<<14)
		shadow := map[uint64]uint64{}
		for _, o := range ops {
			k := uint64(o.Key % 512)
			switch o.Kind % 3 {
			case 0:
				fresh := insert(tr, pool, po, k, uint64(o.Val))
				_, existed := shadow[k]
				if fresh == existed {
					return false
				}
				shadow[k] = uint64(o.Val)
			case 1:
				deleted := tr.Delete(po, k)
				_, existed := shadow[k]
				if deleted != existed {
					return false
				}
				delete(shadow, k)
			case 2:
				v, ok := tr.Lookup(po, k)
				sv, sok := shadow[k]
				if ok != sok || (ok && v != sv) {
					return false
				}
			}
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		return tr.Count(po) == len(shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The tree must stay structurally sound under concurrent transactional
// use on every system — including SI-HTM, where node-level write-write
// conflicts are what forbid the torn-split anomalies.
func TestConcurrentInsertsUnderEverySystem(t *testing.T) {
	for _, f := range tmtest.StandardFactories(0) {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			heap := memsim.NewHeapLines(1 << 14)
			tr := btree.New(heap)
			const threads = 4
			const perThread = 250
			sys := f.New(heap, threads)
			var wg sync.WaitGroup
			for id := 0; id < threads; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					pool := btree.NewPool(heap)
					r := rng.New(uint64(id) + 77)
					for i := 0; i < perThread; i++ {
						k := uint64(id*perThread + i)
						v := r.Uint64()
						pool.Refill(btree.RecommendedPoolSize())
						sys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
							pool.Reset()
							tr.Insert(ops, k, v, pool)
						})
						pool.Commit()
						if i%10 == 0 { // interleave range scans
							// Only the committed attempt's observation counts:
							// optimistic systems (Silo) may expose inconsistent
							// scans in attempts they abort and retry.
							badOrder := false
							sys.Atomic(id, tm.KindReadOnly, func(ops tm.Ops) {
								badOrder = false
								prev := uint64(0)
								first := true
								tr.RangeScan(ops, 0, ^uint64(0), func(key, _ uint64) bool {
									if !first && key <= prev {
										badOrder = true
										return false
									}
									prev, first = key, false
									return true
								})
							})
							if badOrder {
								t.Errorf("committed scan out of order under %s", f.Name)
							}
						}
					}
				}(id)
			}
			wg.Wait()
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("%s: %v", f.Name, err)
			}
			po := plainOps{heap}
			if got := tr.Count(po); got != threads*perThread {
				t.Fatalf("%s: count = %d, want %d", f.Name, got, threads*perThread)
			}
			for id := 0; id < threads; id++ {
				for i := 0; i < perThread; i += 17 {
					if _, ok := tr.Lookup(po, uint64(id*perThread+i)); !ok {
						t.Fatalf("%s: key %d lost", f.Name, id*perThread+i)
					}
				}
			}
		})
	}
}

func TestPoolProtocol(t *testing.T) {
	heap := memsim.NewHeapLines(1 << 10)
	pool := btree.NewPool(heap)
	pool.Refill(3)
	if pool.Len() != 3 {
		t.Fatalf("Len = %d, want 3", pool.Len())
	}
	pool.Refill(2) // no-op: already above
	if pool.Len() != 3 {
		t.Fatalf("Len after smaller refill = %d, want 3", pool.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted pool did not panic")
		}
	}()
	tr := btree.New(heap)
	ops := plainOps{heap}
	// 3 nodes cannot absorb the splits of hundreds of inserts without a
	// Refill; the pool must panic rather than allocate mid-transaction.
	pool.Reset()
	for i := 0; i < 10000; i++ {
		tr.Insert(ops, uint64(i), 1, pool)
	}
}
