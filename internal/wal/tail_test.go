package wal

import (
	"os"
	"path/filepath"
	"testing"

	"sihtm/internal/footprint"
	"sihtm/internal/memsim"
)

func tailerLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, Config{NoDaemon: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func entriesFor(seq uint64) []footprint.Entry {
	return []footprint.Entry{
		{Addr: memsim.Addr(seq % 128), Val: seq * 3},
		{Addr: memsim.Addr(seq%128 + 128), Val: seq},
	}
}

// TestTailerFollowsDurableFrontier appends in stages and checks the
// tailer surfaces exactly the records at or below each durable limit,
// in order, without rereading.
func TestTailerFollowsDurableFrontier(t *testing.T) {
	l, path := tailerLog(t)
	tl, err := OpenTailer(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	// Nothing written yet.
	recs, err := tl.Next(100, nil)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty log: (%d records, %v)", len(recs), err)
	}

	var want uint64 = 1
	for stage := 0; stage < 5; stage++ {
		for i := 0; i < 7; i++ {
			l.Append(entriesFor(l.LastSeq() + 1))
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		limit := l.DurableSeq()
		recs, err = tl.Next(limit, recs[:0])
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 7 {
			t.Fatalf("stage %d: %d records, want 7", stage, len(recs))
		}
		for _, r := range recs {
			if r.Seq != want {
				t.Fatalf("stage %d: seq %d, want %d", stage, r.Seq, want)
			}
			exp := entriesFor(r.Seq)
			if len(r.Entries) != len(exp) || r.Entries[0] != exp[0] || r.Entries[1] != exp[1] {
				t.Fatalf("seq %d: entries %+v, want %+v", r.Seq, r.Entries, exp)
			}
			want++
		}
	}
}

// TestTailerHoldsBackPastLimit: records beyond the limit stay buffered
// until the limit advances — the "only durable records ship" rule.
func TestTailerHoldsBackPastLimit(t *testing.T) {
	l, path := tailerLog(t)
	for i := 0; i < 10; i++ {
		l.Append(entriesFor(uint64(i + 1)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	tl, err := OpenTailer(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	recs, err := tl.Next(4, nil)
	if err != nil || len(recs) != 4 {
		t.Fatalf("limit 4: (%d records, %v)", len(recs), err)
	}
	recs, err = tl.Next(4, recs[:0])
	if err != nil || len(recs) != 0 {
		t.Fatalf("limit 4 again: (%d records, %v)", len(recs), err)
	}
	recs, err = tl.Next(10, recs[:0])
	if err != nil || len(recs) != 6 || recs[0].Seq != 5 || recs[5].Seq != 10 {
		t.Fatalf("limit 10: (%d records, %v)", len(recs), err)
	}
}

// TestTailerResumeFloor: a tailer opened at fromSeq skips the prefix a
// follower already replayed — the reconnect path.
func TestTailerResumeFloor(t *testing.T) {
	l, path := tailerLog(t)
	for i := 0; i < 12; i++ {
		l.Append(entriesFor(uint64(i + 1)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	tl, err := OpenTailer(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	recs, err := tl.Next(l.DurableSeq(), nil)
	if err != nil || len(recs) != 5 {
		t.Fatalf("resume from 8: (%d records, %v)", len(recs), err)
	}
	if recs[0].Seq != 8 || recs[4].Seq != 12 {
		t.Fatalf("resume from 8: seqs %d..%d", recs[0].Seq, recs[4].Seq)
	}
}

// TestTailerCorruption: damage in a complete record is reported, not
// skipped or surfaced.
func TestTailerCorruption(t *testing.T) {
	l, path := tailerLog(t)
	for i := 0; i < 6; i++ {
		l.Append(entriesFor(uint64(i + 1)))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0x40
	mutPath := filepath.Join(t.TempDir(), "mut.log")
	if err := os.WriteFile(mutPath, img, 0o644); err != nil {
		t.Fatal(err)
	}
	tl, err := OpenTailer(mutPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	recs, err := tl.Next(6, nil)
	if err == nil {
		t.Fatalf("corruption not detected (%d records)", len(recs))
	}
	for _, r := range recs {
		exp := entriesFor(r.Seq)
		if r.Entries[0] != exp[0] || r.Entries[1] != exp[1] {
			t.Fatalf("corrupt record surfaced: seq %d %+v", r.Seq, r.Entries)
		}
	}
}
