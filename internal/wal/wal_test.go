package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sihtm/internal/footprint"
	"sihtm/internal/memsim"
)

func entriesOf(pairs ...uint64) []footprint.Entry {
	if len(pairs)%2 != 0 {
		panic("pairs must be even")
	}
	es := make([]footprint.Entry, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		es = append(es, footprint.Entry{Addr: memsim.Addr(pairs[i]), Val: pairs[i+1]})
	}
	return es
}

// TestRoundTrip appends records, syncs, and replays them back byte-exact.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, Config{NoDaemon: true})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]footprint.Entry{
		entriesOf(1, 10, 2, 20),
		entriesOf(3, 30),
		{}, // empty write set is legal framing (not produced by the hook)
		entriesOf(4, 40, 5, 50, 6, 60),
	}
	for _, es := range want {
		l.Append(es)
	}
	if got := l.LastSeq(); got != uint64(len(want)) {
		t.Fatalf("LastSeq = %d, want %d", got, len(want))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]footprint.Entry
	st, err := Replay(path, func(seq uint64, es []footprint.Entry) error {
		cp := make([]footprint.Entry, len(es))
		copy(cp, es)
		got = append(got, cp)
		if seq != uint64(len(got)) {
			t.Errorf("seq %d out of order at record %d", seq, len(got))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != len(want) || st.TailBytes != 0 {
		t.Fatalf("stats %+v, want %d records, no tail", st, len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("record %d: %d entries, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("record %d entry %d: %+v, want %+v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestDurabilityAck: WaitDurable returns only after the record is
// fsynced, and the daemon acknowledges within the window.
func TestDurabilityAck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, Config{Window: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	seq := l.Append(entriesOf(1, 1))
	done := make(chan struct{})
	go func() {
		l.WaitDurable(seq)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitDurable did not return within 5s of a 1ms window")
	}
	if l.DurableSeq() < seq {
		t.Fatalf("DurableSeq %d < acknowledged %d", l.DurableSeq(), seq)
	}
}

// TestZeroWindow: the immediate-flush mode acknowledges without a timer.
func TestZeroWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, Config{Window: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.WaitDurable(l.Append(entriesOf(uint64(i), uint64(i))))
	}
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Records != 10 {
		t.Fatalf("records = %d, want 10", st.Records)
	}
	if st.Fsyncs == 0 {
		t.Fatal("zero-window log never fsynced")
	}
}

// TestGroupCommitBatches: with a wide window, many concurrent appends
// share few fsyncs.
func TestGroupCommitBatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, Config{Window: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.WaitDurable(l.Append(entriesOf(uint64(w*per+i), 1)))
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Records != workers*per {
		t.Fatalf("records = %d, want %d", st.Records, workers*per)
	}
	// 400 acked records in ≥20ms batches: far fewer fsyncs than records
	// is the whole point of group commit. Bound loosely for slow CI.
	if st.Fsyncs >= st.Records/2 {
		t.Errorf("fsyncs = %d for %d records; group commit not batching", st.Fsyncs, st.Records)
	}

	st2, err := Replay(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Records != workers*per || st2.TailBytes != 0 {
		t.Fatalf("replay %+v, want %d clean records", st2, workers*per)
	}
}

// TestTornTail: truncating or corrupting the file mid-record yields a
// clean prefix and a discarded tail, never garbage records.
func TestTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, Config{NoDaemon: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		es := entriesOf(uint64(i), uint64(i*7), uint64(i+100), uint64(i*13))
		l.Append(es)
		sizes[i] = recordSize(len(es))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate at every byte offset: replay must return exactly the
	// records fully contained in the prefix.
	bounds := make([]int, n+1)
	for i := 0; i < n; i++ {
		bounds[i+1] = bounds[i] + sizes[i]
	}
	for cut := 0; cut <= len(data); cut += 7 {
		st, err := ReplayBytes(data[:cut], nil)
		if err != nil {
			t.Fatal(err)
		}
		wantRecs := 0
		for bounds[wantRecs+1] <= cut {
			wantRecs++
			if wantRecs == n {
				break
			}
		}
		if st.Records != wantRecs {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, st.Records, wantRecs)
		}
	}

	// Flip a byte inside record k: replay stops before k.
	for k := 0; k < n; k += 5 {
		corrupt := bytes.Clone(data)
		corrupt[bounds[k]+sizes[k]/2] ^= 0xFF
		st, err := ReplayBytes(corrupt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.Records != k {
			t.Fatalf("corrupt record %d: replayed %d records, want %d", k, st.Records, k)
		}
	}
}

// TestAppendSteadyStateAllocs: once the buffer has grown, Append (the
// commit hot path) allocates nothing.
func TestAppendSteadyStateAllocs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, Config{NoDaemon: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	es := entriesOf(1, 2, 3, 4, 5, 6, 7, 8)
	for i := 0; i < 4096; i++ { // grow the buffer
		l.Append(es)
	}
	if err := l.Sync(); err != nil { // reset len, keep capacity
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2000, func() { l.Append(es) })
	if allocs != 0 {
		t.Errorf("Append allocates %.2f objects/op at steady state, want 0", allocs)
	}
}

// TestFirstSeq: a log continued from a recovered store starts where the
// history left off, and replay accepts the configured base.
func TestFirstSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, Config{NoDaemon: true, FirstSeq: 100})
	if err != nil {
		t.Fatal(err)
	}
	if seq := l.Append(entriesOf(1, 1)); seq != 100 {
		t.Fatalf("first seq = %d, want 100", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.FirstSeq != 100 || st.Records != 1 {
		t.Fatalf("replay %+v, want first seq 100", st)
	}
}
