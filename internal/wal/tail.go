package wal

import (
	"errors"
	"fmt"
	"io"
	"os"

	"sihtm/internal/footprint"
)

// Record is one redo record surfaced by a Tailer: the unit a leader
// ships to its replicas.
type Record struct {
	Seq     uint64
	Entries []footprint.Entry
}

// ErrTailCorrupt reports damage in the tailed log: a complete record
// whose magic, count bound or CRC fails. A live log never produces it
// (the writer appends whole records in file order); seeing it means the
// file is not the log the tailer was pointed at.
var ErrTailCorrupt = errors.New("wal: corrupt record in tailed log")

// Tailer follows a (possibly still-growing) log file, surfacing its
// records in sequence order from a starting floor. Unlike Replay, which
// reads a dead log once and discards the torn tail, a Tailer treats an
// incomplete record as "not flushed yet" and resumes parsing when more
// bytes arrive — the reader side of WAL shipping.
//
// The caller bounds each read with the writer's durable watermark
// (Log.DurableSeq): records past it may be mid-flush, so the tailer
// never surfaces them even when their bytes happen to be readable.
type Tailer struct {
	f     *os.File
	buf   []byte // unconsumed file bytes
	off   int    // parse offset into buf
	next  uint64 // next sequence number to surface
	chunk []byte // read scratch
}

// OpenTailer opens the log at path for following. Records with
// sequence numbers below fromSeq are skipped (the follower already has
// them); the first record surfaced is exactly fromSeq, and continuity
// is enforced from there on.
func OpenTailer(path string, fromSeq uint64) (*Tailer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: tail: %w", err)
	}
	if fromSeq == 0 {
		fromSeq = 1
	}
	return &Tailer{f: f, next: fromSeq, chunk: make([]byte, 64<<10)}, nil
}

// NextSeq returns the next sequence number the tailer will surface.
func (t *Tailer) NextSeq() uint64 { return t.next }

// Next returns every newly available record with sequence ≤ limit, in
// sequence order, appended to dst. It reads to the current end of file
// and returns (possibly empty) rather than blocking; callers poll as
// the writer's durable watermark advances. A record that parses but
// exceeds limit stays buffered for a later call.
//
// Errors: ErrTailCorrupt for damaged bytes, a sequence-continuity
// violation for a log that skips numbers, I/O errors otherwise. All
// are terminal for this tailer.
func (t *Tailer) Next(limit uint64, dst []Record) ([]Record, error) {
	for {
		// Drain whole records already buffered.
		for {
			seq, entries, size, st := parseRecordPrefix(t.buf[t.off:])
			if st == recShort {
				break
			}
			if st == recBad {
				return dst, ErrTailCorrupt
			}
			if seq >= t.next && seq > limit {
				// Durable frontier reached: leave the record buffered (the
				// re-parse on the next call is cheap).
				return dst, nil
			}
			t.off += size
			if seq < t.next {
				continue // prefix the follower already holds
			}
			if seq != t.next {
				return dst, fmt.Errorf("wal: tail: sequence gap: got %d, want %d", seq, t.next)
			}
			t.next++
			dst = append(dst, Record{Seq: seq, Entries: entries})
		}
		// Compact consumed bytes, then try to read more.
		if t.off > 0 {
			t.buf = append(t.buf[:0], t.buf[t.off:]...)
			t.off = 0
		}
		n, err := t.f.Read(t.chunk)
		if n > 0 {
			t.buf = append(t.buf, t.chunk[:n]...)
			continue
		}
		if err == nil || err == io.EOF {
			return dst, nil // caught up with the file
		}
		return dst, fmt.Errorf("wal: tail: %w", err)
	}
}

// Close releases the tailed file.
func (t *Tailer) Close() error { return t.f.Close() }
