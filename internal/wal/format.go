package wal

import (
	"encoding/binary"
	"hash/crc32"

	"sihtm/internal/footprint"
	"sihtm/internal/memsim"
)

// On-disk record framing (all fields little-endian):
//
//	offset  size  field
//	0       4     magic  = recordMagic ("WALR")
//	4       8     seq    — commit sequence number (LSN); strictly
//	              increasing by 1 in file order
//	12      4     count  — number of (addr, val) word pairs
//	16      16·n  pairs  — addr uint64, val uint64, first-write order,
//	              last-write-wins values (one pair per distinct address)
//	16+16·n 4     crc    — CRC-32C (Castagnoli) over bytes [0, 16+16·n)
//
// One record is one committed transaction's redo image. The framing is
// self-validating: replay accepts the longest prefix of records whose
// magic, CRC and sequence continuity all check out, and discards the
// torn tail a crash mid-write leaves behind.
const (
	recordMagic   = uint32(0x57414C52) // "WALR"
	headerBytes   = 16
	pairBytes     = 16
	trailerBytes  = 4
	maxPairs      = 1 << 28 // sanity bound on count during replay
	recordMinSize = headerBytes + trailerBytes
)

// castagnoli is the CRC-32C table shared by append and replay.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// recordSize returns the framed size of a record with n pairs.
func recordSize(n int) int { return headerBytes + n*pairBytes + trailerBytes }

// appendRecord encodes one record onto buf and returns the extended
// slice. It allocates only when buf's capacity is exhausted (append
// growth), so a retained buffer makes steady-state encoding
// allocation-free.
func appendRecord(buf []byte, seq uint64, entries []footprint.Entry) []byte {
	start := len(buf)
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], recordMagic)
	binary.LittleEndian.PutUint64(hdr[4:], seq)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(entries)))
	buf = append(buf, hdr[:]...)
	for _, e := range entries {
		var pair [pairBytes]byte
		binary.LittleEndian.PutUint64(pair[0:], uint64(e.Addr))
		binary.LittleEndian.PutUint64(pair[8:], e.Val)
		buf = append(buf, pair[:]...)
	}
	crc := crc32.Checksum(buf[start:], castagnoli)
	var tr [trailerBytes]byte
	binary.LittleEndian.PutUint32(tr[:], crc)
	return append(buf, tr[:]...)
}

// recStatus classifies a prefix-parse attempt: complete record, not
// enough bytes yet, or bytes that can never frame a record.
type recStatus uint8

const (
	recOK recStatus = iota
	// recShort: the buffer holds a so-far-valid but incomplete record; a
	// live tail reader should wait for more bytes, a replay treats it as
	// the torn tail.
	recShort
	// recBad: the bytes are damaged (bad magic, absurd count, CRC
	// mismatch on a complete record) — corruption, not a short read.
	recBad
)

// parseRecordPrefix decodes the record at the head of b, distinguishing
// "need more bytes" from "corrupt" so a tailer following a live file can
// park on a partial flush without mistaking it for damage. entries is
// freshly allocated (no aliasing of b).
func parseRecordPrefix(b []byte) (seq uint64, entries []footprint.Entry, size int, st recStatus) {
	if len(b) < recordMinSize {
		return 0, nil, 0, recShort
	}
	if binary.LittleEndian.Uint32(b[0:]) != recordMagic {
		return 0, nil, 0, recBad
	}
	seq = binary.LittleEndian.Uint64(b[4:])
	count := binary.LittleEndian.Uint32(b[12:])
	if count > maxPairs {
		return 0, nil, 0, recBad
	}
	size = recordSize(int(count))
	if len(b) < size {
		return 0, nil, 0, recShort
	}
	want := binary.LittleEndian.Uint32(b[size-trailerBytes:])
	if crc32.Checksum(b[:size-trailerBytes], castagnoli) != want {
		return 0, nil, 0, recBad
	}
	entries = make([]footprint.Entry, count)
	for i := range entries {
		off := headerBytes + i*pairBytes
		entries[i].Addr = memsim.Addr(binary.LittleEndian.Uint64(b[off:]))
		entries[i].Val = binary.LittleEndian.Uint64(b[off+8:])
	}
	return seq, entries, size, recOK
}

// parseRecord decodes the record at the head of b. ok is false when the
// bytes do not frame a valid record (short buffer, bad magic, absurd
// count or CRC mismatch) — the torn-tail signal.
func parseRecord(b []byte) (seq uint64, entries []footprint.Entry, size int, ok bool) {
	seq, entries, size, st := parseRecordPrefix(b)
	return seq, entries, size, st == recOK
}
