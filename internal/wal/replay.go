package wal

import (
	"fmt"
	"os"

	"sihtm/internal/footprint"
)

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	// Records is how many valid records were applied.
	Records int
	// FirstSeq and LastSeq bound the applied sequence range (0/0 when
	// the log held no valid record).
	FirstSeq, LastSeq uint64
	// ValidBytes is the offset where the valid prefix ends.
	ValidBytes int64
	// TailBytes is the size of the discarded torn/corrupt tail.
	TailBytes int64
}

// String renders the stats for reports.
func (s ReplayStats) String() string {
	return fmt.Sprintf("%d records (seq %d..%d), %d valid bytes, %d tail bytes discarded",
		s.Records, s.FirstSeq, s.LastSeq, s.ValidBytes, s.TailBytes)
}

// Replay scans the log file at path and invokes fn for every record of
// the longest valid prefix, in sequence order. The prefix ends at the
// first framing violation — short read, bad magic, CRC mismatch or a
// sequence-continuity break — which is how a tail torn by a crash
// mid-write (or corrupted on the way down) is detected and discarded;
// everything after it is ignored even if it frames correctly, because a
// gap means the commit order cannot be reconstructed. A non-nil error
// from fn aborts the replay.
//
// entries passed to fn alias the file image; copy them out to retain.
func Replay(path string, fn func(seq uint64, entries []footprint.Entry) error) (ReplayStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ReplayStats{}, fmt.Errorf("wal: replay: %w", err)
	}
	return ReplayBytes(data, fn)
}

// ReplayBytes is Replay over an in-memory log image (crash-injection
// tests corrupt copies of the image directly).
func ReplayBytes(data []byte, fn func(seq uint64, entries []footprint.Entry) error) (ReplayStats, error) {
	var st ReplayStats
	off := 0
	for {
		seq, entries, size, ok := parseRecord(data[off:])
		if !ok {
			break
		}
		if st.Records > 0 && seq != st.LastSeq+1 {
			break // continuity break: treat like a torn tail
		}
		if fn != nil {
			if err := fn(seq, entries); err != nil {
				return st, fmt.Errorf("wal: replay seq %d: %w", seq, err)
			}
		}
		if st.Records == 0 {
			st.FirstSeq = seq
		}
		st.LastSeq = seq
		st.Records++
		off += size
		st.ValidBytes = int64(off)
	}
	st.TailBytes = int64(len(data)) - st.ValidBytes
	return st, nil
}
