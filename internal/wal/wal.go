// Package wal is the write-ahead log of the durability subsystem: an
// append-only file of per-transaction redo records (the write set a
// committed transaction published, captured at the commit hook), made
// durable by a group-commit daemon that batches fsyncs over a
// configurable window, and replayed after a crash by Replay, which
// accepts exactly the longest valid prefix and discards the torn tail
// via per-record CRCs.
//
// Ordering contract: Append assigns sequence numbers under the same
// mutex that serializes buffer writes, so file order equals sequence
// order; callers (internal/durable.Store) invoke Append inside the TM
// commit critical section, so sequence order also equals the
// serialization order of conflicting transactions. Replaying records in
// file order therefore reproduces every prefix of the commit history.
//
// Failure model: log I/O errors are fail-stop. A write or fsync failure
// leaves the daemon panicking rather than acknowledging transactions it
// can no longer make durable — the same posture production engines take
// after fsyncgate.
package wal

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sihtm/internal/footprint"
	"sihtm/internal/stats"
	"sihtm/internal/trace"
)

// Config tunes a Log.
type Config struct {
	// Window is the group-commit fsync window: the daemon flushes and
	// fsyncs the append buffer at most once per window, so one fsync
	// amortizes over every transaction that arrived inside it. 0 means
	// flush as soon as anything is pending (fsync latency itself then
	// forms the batch). Ignored when NoDaemon is set.
	Window time.Duration
	// NoDaemon disables the background flusher: nothing becomes durable
	// until Sync is called. Tests and the allocation pins use this to
	// keep all I/O off the measured path.
	NoDaemon bool
	// FirstSeq is the sequence number of the first record appended
	// (default 1). A store recovered to sequence S continues its log
	// with FirstSeq = S+1.
	FirstSeq uint64
}

// Stats counts a log's activity (monotonic, read with Stats).
type Stats struct {
	// Records and Bytes are appended totals (not necessarily durable).
	Records uint64
	Bytes   uint64
	// Batches is how many flushes wrote data; Fsyncs counts fsyncs
	// (equal to Batches unless Sync found nothing pending).
	Batches uint64
	Fsyncs  uint64
}

// Log is an append-only redo log over one file.
type Log struct {
	mu      sync.Mutex // guards buf, bufRecs, nextSeq
	buf     []byte     // encoded records not yet handed to the flusher
	bufRecs uint64     // records in buf (group-commit batch in progress)
	nextSeq uint64

	f       *os.File
	flushMu sync.Mutex // serializes flushes; held across write+fsync
	scratch []byte     // flusher-owned swap buffer (reused)

	durMu   sync.Mutex
	durCond *sync.Cond
	durable uint64 // highest fsynced seq; guarded by durMu

	records atomic.Uint64
	bytes   atomic.Uint64
	batches atomic.Uint64
	fsyncs  atomic.Uint64

	// fsyncHist observes the wall time of each fsync; batchRecsHist
	// observes records-per-written-batch (dimensionless, one count per
	// flush that had data). Both are lock-free and cost nothing until
	// a telemetry registry scrapes them.
	fsyncHist     stats.Histogram
	batchRecsHist stats.Histogram

	// traceRing, when set, receives one KFsync span per group-commit
	// flush that wrote data (Seq = highest sequence made durable, Arg =
	// records covered) — the durability boundary's slice of an
	// end-to-end trace. Atomic pointer so SetTraceRing is safe after the
	// daemon started.
	traceRing atomic.Pointer[trace.Ring]

	window time.Duration
	kick   chan struct{} // wakes the daemon when Window == 0
	stop   chan struct{}
	done   chan struct{}
}

// Create creates (truncating) the log file at path.
func Create(path string, cfg Config) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	first := cfg.FirstSeq
	if first == 0 {
		first = 1
	}
	l := &Log{
		f:       f,
		nextSeq: first,
		window:  cfg.Window,
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	l.durCond = sync.NewCond(&l.durMu)
	l.durable = first - 1
	if cfg.NoDaemon {
		close(l.done)
	} else {
		go l.daemon()
	}
	return l, nil
}

// Append captures one committed transaction's write set as a redo
// record, assigning and returning its sequence number. entries may
// alias pooled storage owned by the caller: the record is fully encoded
// before Append returns. Durability is asynchronous — the record is on
// disk only once DurableSeq passes the returned sequence (see
// WaitDurable).
//
// Append is called on the TM commit hot path and does not allocate once
// the append buffer has grown to its steady-state capacity.
func (l *Log) Append(entries []footprint.Entry) uint64 {
	l.mu.Lock()
	seq := l.nextSeq
	l.nextSeq++
	before := len(l.buf)
	l.buf = appendRecord(l.buf, seq, entries)
	grew := len(l.buf) - before
	l.bufRecs++
	l.mu.Unlock()

	l.records.Add(1)
	l.bytes.Add(uint64(grew))
	if l.window == 0 {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	return seq
}

// LastSeq returns the highest sequence number assigned so far.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// DurableSeq returns the highest sequence number known fsynced.
func (l *Log) DurableSeq() uint64 {
	l.durMu.Lock()
	defer l.durMu.Unlock()
	return l.durable
}

// WaitDurable blocks until every record with sequence ≤ seq is fsynced.
// With NoDaemon set, it returns only after a caller runs Sync.
func (l *Log) WaitDurable(seq uint64) {
	l.durMu.Lock()
	for l.durable < seq {
		l.durCond.Wait()
	}
	l.durMu.Unlock()
}

// Sync flushes everything appended so far and fsyncs the file. It is
// the manual flush for NoDaemon logs and the checkpoint force
// (checkpoints must not finalize before the log covers them).
func (l *Log) Sync() error { return l.flush() }

// flush writes and fsyncs all pending records. Serialized by flushMu so
// the daemon and explicit Syncs do not interleave file writes.
func (l *Log) flush() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	l.mu.Lock()
	pending := l.buf
	recs := l.bufRecs
	hi := l.nextSeq - 1
	l.buf = l.scratch[:0] // hand the appenders the (empty) swap buffer
	l.bufRecs = 0
	l.mu.Unlock()
	l.scratch = pending[:0] // next flush swaps back

	if len(pending) > 0 {
		if _, err := l.f.Write(pending); err != nil {
			return fmt.Errorf("wal: write: %w", err)
		}
		l.batches.Add(1)
		l.batchRecsHist.Observe(time.Duration(recs))
	}
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	fsyncDur := time.Since(t0)
	l.fsyncHist.Observe(fsyncDur)
	l.fsyncs.Add(1)
	if recs > 0 {
		if r := l.traceRing.Load(); r != nil {
			r.Add(trace.Span{
				Kind:  trace.KFsync,
				Seq:   hi,
				Start: t0.UnixNano(),
				Dur:   int64(fsyncDur),
				Arg:   int64(recs),
			})
		}
	}

	l.durMu.Lock()
	if hi > l.durable {
		l.durable = hi
	}
	l.durCond.Broadcast()
	l.durMu.Unlock()
	return nil
}

// daemon is the group-commit loop: one flush+fsync per window (or per
// pending batch when Window is 0).
func (l *Log) daemon() {
	defer close(l.done)
	var tick *time.Ticker
	if l.window > 0 {
		tick = time.NewTicker(l.window)
		defer tick.Stop()
	}
	for {
		if tick != nil {
			select {
			case <-l.stop:
				return
			case <-tick.C:
			}
		} else {
			select {
			case <-l.stop:
				return
			case <-l.kick:
			}
		}
		l.mu.Lock()
		dirty := len(l.buf) > 0
		l.mu.Unlock()
		if !dirty {
			continue
		}
		if err := l.flush(); err != nil {
			// Fail-stop: we can no longer honour durability promises.
			panic(err)
		}
	}
}

// Close stops the daemon, flushes the remainder and closes the file.
func (l *Log) Close() error {
	select {
	case <-l.stop:
	default:
		close(l.stop)
	}
	<-l.done
	err := l.flush()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats returns the activity counters.
func (l *Log) Stats() Stats {
	return Stats{
		Records: l.records.Load(),
		Bytes:   l.bytes.Load(),
		Batches: l.batches.Load(),
		Fsyncs:  l.fsyncs.Load(),
	}
}

// FsyncHist returns the live fsync-latency histogram for telemetry
// registration. Callers must only snapshot it.
func (l *Log) FsyncHist() *stats.Histogram { return &l.fsyncHist }

// BatchRecsHist returns the records-per-group-commit-batch histogram
// (dimensionless: Observe'd as time.Duration(records)).
func (l *Log) BatchRecsHist() *stats.Histogram { return &l.batchRecsHist }

// SetTraceRing attaches a span ring: every subsequent group-commit
// flush that writes data records a KFsync span into it. Nil detaches.
func (l *Log) SetTraceRing(r *trace.Ring) { l.traceRing.Store(r) }

// PendingBytes returns the size of the append buffer awaiting the next
// flush — the WAL's queue depth as seen by the group-commit daemon.
func (l *Log) PendingBytes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}
