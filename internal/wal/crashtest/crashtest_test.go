package crashtest

import (
	"bytes"
	"testing"

	"sihtm/internal/rng"
)

func build(t *testing.T) *Harness {
	t.Helper()
	h, err := Build(t.TempDir(), 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	if h.Records < 100 {
		t.Fatalf("harness produced only %d records", h.Records)
	}
	return h
}

// TestIntactImage: the unmutilated log recovers the full history.
func TestIntactImage(t *testing.T) {
	h := build(t)
	if err := h.CheckImage(h.Image, h.Records); err != nil {
		t.Fatal(err)
	}
}

// TestKillAtRandomOffsets truncates the log at randomized byte offsets
// — the on-disk outcome of a crash mid-write — and asserts every
// truncation recovers exactly the commits whose records fit, with the
// torn tail discarded.
func TestKillAtRandomOffsets(t *testing.T) {
	h := build(t)
	r := rng.New(0xC0FFEE)
	for i := 0; i < 200; i++ {
		cut := r.Intn(len(h.Image) + 1)
		if err := h.CheckImage(h.Image[:cut], h.DurableRecords(cut)); err != nil {
			t.Fatalf("truncation at byte %d: %v", cut, err)
		}
	}
	// Exhaustive sweep over the first few records' bytes, where header
	// fields and CRC boundaries live.
	limit := h.Bounds[minInt(4, h.Records)]
	for cut := 0; cut <= limit; cut++ {
		if err := h.CheckImage(h.Image[:cut], h.DurableRecords(cut)); err != nil {
			t.Fatalf("truncation at byte %d: %v", cut, err)
		}
	}
}

// TestBitFlips flips random bytes mid-log: the per-record CRC must
// confine recovery to the prefix before the flip.
func TestBitFlips(t *testing.T) {
	h := build(t)
	r := rng.New(0xBADF00D)
	for i := 0; i < 200; i++ {
		pos := r.Intn(len(h.Image))
		img := bytes.Clone(h.Image)
		img[pos] ^= byte(1 + r.Intn(255))
		// The flip may land anywhere in record k's bytes, so only
		// records fully before it are guaranteed; nothing past the
		// flipped record may survive.
		k := h.DurableRecords(pos)
		if err := h.CheckImage(img, 0); err != nil {
			t.Fatalf("bit flip at byte %d: %v", pos, err)
		}
		// Tighter: recovery must keep at least the records strictly
		// before the flipped one (their bytes are untouched).
		if err := h.CheckImage(img[:h.Bounds[k]], k); err != nil {
			t.Fatalf("bit flip at byte %d, clean prefix: %v", pos, err)
		}
	}
}

// TestZeroedSpans zeroes 16-byte spans (a lost sector in miniature).
func TestZeroedSpans(t *testing.T) {
	h := build(t)
	r := rng.New(0xDEAD10CC)
	for i := 0; i < 100; i++ {
		pos := r.Intn(len(h.Image))
		img := bytes.Clone(h.Image)
		for j := pos; j < pos+16 && j < len(img); j++ {
			img[j] = 0
		}
		if err := h.CheckImage(img, 0); err != nil {
			t.Fatalf("zeroed span at byte %d: %v", pos, err)
		}
	}
}

// TestGarbageTail appends random bytes past the valid log: replay must
// still accept the full history and discard the garbage.
func TestGarbageTail(t *testing.T) {
	h := build(t)
	r := rng.New(0xFEEDFACE)
	img := bytes.Clone(h.Image)
	for i := 0; i < 333; i++ {
		img = append(img, byte(r.Intn(256)))
	}
	if err := h.CheckImage(img, h.Records); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
