// Package crashtest is the crash-injection harness of the durability
// subsystem: it generates a real multi-threaded durable workload whose
// write-ahead log and per-prefix expected states are known exactly, then
// lets tests "kill" the log at arbitrary byte offsets — truncation,
// bit flips, zeroed spans, garbage tails — and asserts that recovery
// from the mutilated image always lands on a prefix-consistent state:
// exactly the heap produced by the first K logged commits for the K the
// replay reports, with the torn or corrupt tail detected by the
// per-record CRC and discarded.
package crashtest

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sihtm/internal/durable"
	"sihtm/internal/footprint"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/sihtm"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
	"sihtm/internal/wal"
)

// Harness holds one generated history: the intact log image, the base
// heap it applies to, and the expected state digest after every prefix.
type Harness struct {
	// Image is the intact on-disk log produced by the workload.
	Image []byte
	// Records is the number of committed (and logged) transactions.
	Records int
	// Bounds[k] is the byte offset at which record k ends; Bounds[0] is
	// 0 and Bounds[Records] is len(Image).
	Bounds []int

	heapWords int
	base      []uint64
	allocated int
	// digests[k] is the heap digest after applying records 1..k.
	digests []uint64
}

// Build runs a concurrent durable workload (SI-HTM over a small
// machine, both hardware commits and SGL fall-backs) and captures its
// log plus the expected state of every commit prefix. dir receives the
// transient log file.
func Build(dir string, threads, perThread int) (*Harness, error) {
	heap := memsim.NewHeapLines(96)
	cells := make([]memsim.Addr, 8)
	for i := range cells {
		cells[i] = heap.AllocLine()
	}
	big := heap.AllocLines(16)
	h := &Harness{heapWords: heap.Size()}
	h.base = make([]uint64, heap.Size())
	for a := range h.base {
		h.base[a] = heap.Load(memsim.Addr(a))
	}
	h.allocated = heap.Allocated()

	// The tiny TMCAM pushes a share of the update transactions onto the
	// SGL fall-back, so the log interleaves hardware-hook records with
	// Recorder records — the mix recovery must handle.
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(2, 2), TMCAMLines: 8})
	sys := sihtm.NewSystem(m, threads, sihtm.Config{})
	logPath := filepath.Join(dir, "crash.log")
	store, err := durable.Open(heap, logPath, 8, durable.Config{
		Window: 200 * time.Microsecond, WaitAck: true,
	})
	if err != nil {
		return nil, err
	}
	dsys := store.Attach(sys, m)

	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id)*0x9e3779b97f4a7c15 + 7
			next := func(n int) int {
				seed = seed*6364136223846793005 + 1442695040888963407
				return int((seed >> 33) % uint64(n))
			}
			for i := 0; i < perThread; i++ {
				if i%7 == 3 { // capacity-spilling transaction → fall-back
					dsys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
						for l := 0; l < 16; l++ {
							a := big + memsim.Addr(l*memsim.WordsPerLine)
							ops.Write(a, ops.Read(a)+uint64(id)+1)
						}
					})
					continue
				}
				c := cells[next(len(cells))]
				d := cells[next(len(cells))]
				dsys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
					v := ops.Read(c)
					ops.Write(c, v+1)
					if d != c {
						ops.Write(d, ops.Read(d)^(v+13))
					}
				})
			}
		}(id)
	}
	wg.Wait()
	if err := store.Close(); err != nil {
		return nil, err
	}
	h.Image, err = os.ReadFile(logPath)
	if err != nil {
		return nil, err
	}

	// Walk the intact image once to learn record boundaries and the
	// expected digest after every prefix.
	replayHeap := memsim.NewHeap(h.heapWords)
	h.restoreBase(replayHeap)
	h.Bounds = append(h.Bounds, 0)
	h.digests = append(h.digests, digest(replayHeap))
	st, err := wal.ReplayBytes(h.Image, func(seq uint64, entries []footprint.Entry) error {
		for _, e := range entries {
			replayHeap.Store(e.Addr, e.Val)
		}
		h.Records++
		h.digests = append(h.digests, digest(replayHeap))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if st.TailBytes != 0 {
		return nil, fmt.Errorf("crashtest: intact log has a torn tail: %s", st)
	}
	// Reconstruct byte boundaries from the record framing.
	off := 0
	for k := 1; k <= h.Records; k++ {
		sz, ok := frameSize(h.Image[off:])
		if !ok {
			return nil, fmt.Errorf("crashtest: cannot re-frame record %d", k)
		}
		off += sz
		h.Bounds = append(h.Bounds, off)
	}
	if off != len(h.Image) {
		return nil, fmt.Errorf("crashtest: framing ends at %d of %d bytes", off, len(h.Image))
	}

	// The live heap must itself be the full-prefix state.
	if digest(heap) != h.digests[h.Records] {
		return nil, fmt.Errorf("crashtest: live state does not match full replay")
	}
	return h, nil
}

// frameSize reads one record's framed size without validating it.
func frameSize(b []byte) (int, bool) {
	if len(b) < 16 {
		return 0, false
	}
	count := int(uint32(b[12]) | uint32(b[13])<<8 | uint32(b[14])<<16 | uint32(b[15])<<24)
	return 16 + count*16 + 4, true
}

// restoreBase writes the pre-workload heap image into h2.
func (h *Harness) restoreBase(h2 *memsim.Heap) {
	for a, v := range h.base {
		h2.Store(memsim.Addr(a), v)
	}
	h2.RestoreAllocated(h.allocated)
}

// digest hashes a heap image (FNV-1a over the words).
func digest(h *memsim.Heap) uint64 {
	f := fnv.New64a()
	var b [8]byte
	for a := 0; a < h.Size(); a++ {
		v := h.Load(memsim.Addr(a))
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		f.Write(b[:])
	}
	return f.Sum64()
}

// CheckImage recovers from a (possibly mutilated) log image and
// verifies prefix consistency: the replayed record count K must
// identify a prefix of the intact history, the recovered heap must
// equal the expected state after exactly K commits, and the reported
// sequence range must be 1..K. minRecords lower-bounds K (use the
// number of records known durable before the "crash"; 0 when unknown).
func (h *Harness) CheckImage(img []byte, minRecords int) error {
	heap := memsim.NewHeap(h.heapWords)
	h.restoreBase(heap)
	st, err := wal.ReplayBytes(img, func(seq uint64, entries []footprint.Entry) error {
		for _, e := range entries {
			if int(e.Addr) >= heap.Size() {
				return fmt.Errorf("redo address %d out of range", e.Addr)
			}
			heap.Store(e.Addr, e.Val)
		}
		return nil
	})
	if err != nil {
		return err
	}
	k := st.Records
	if k > h.Records {
		return fmt.Errorf("crashtest: replayed %d records, history has only %d", k, h.Records)
	}
	if k < minRecords {
		return fmt.Errorf("crashtest: replayed %d records, but %d were durable before the crash", k, minRecords)
	}
	if k > 0 && (st.FirstSeq != 1 || st.LastSeq != uint64(k)) {
		return fmt.Errorf("crashtest: replayed sequence range %d..%d for %d records; want 1..%d",
			st.FirstSeq, st.LastSeq, k, k)
	}
	if got, want := digest(heap), h.digests[k]; got != want {
		return fmt.Errorf("crashtest: recovered state after %d records has digest %x, want %x — not a commit prefix",
			k, got, want)
	}
	return nil
}

// DurableRecords returns how many full records fit in the first n bytes
// — the commits a crash preserving exactly n bytes must recover.
func (h *Harness) DurableRecords(n int) int {
	k := 0
	for k < h.Records && h.Bounds[k+1] <= n {
		k++
	}
	return k
}
