package netchaos

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoListener accepts connections and echoes bytes until they close.
func echoListener(t *testing.T) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
	return ln.Addr()
}

// run drives one dial-write-read round; reports whether the round
// survived and how many payload bytes echoed back.
func run(d *Dialer) (ok bool, echoed int) {
	c, err := d.Dial()
	if err != nil {
		return false, 0
	}
	defer c.Close()
	msg := []byte("0123456789abcdef")
	if _, err := c.Write(msg); err != nil {
		return false, 0
	}
	buf := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(time.Second))
	n, err := io.ReadFull(c, buf)
	return err == nil, n
}

// TestDeterminism: the same seed must produce the same cut/refusal
// trace; a different seed a (very likely) different one.
func TestDeterminism(t *testing.T) {
	addr := echoListener(t)
	cfg := Config{
		Seed:        42,
		CutAfterMin: 1, CutAfterMax: 6,
		TearProb:     0.5,
		PartitionMin: 1, PartitionMax: 3,
	}
	trace := func(cfg Config) (tr []bool, cuts, refused uint64) {
		d := NewDialer(addr.String(), cfg)
		for i := 0; i < 60; i++ {
			ok, _ := run(d)
			tr = append(tr, ok)
		}
		return tr, d.Cuts(), d.Refused()
	}
	t1, c1, r1 := trace(cfg)
	t2, c2, r2 := trace(cfg)
	if c1 != c2 || r1 != r2 {
		t.Fatalf("same seed diverged: cuts %d/%d, refused %d/%d", c1, c2, r1, r2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("same seed diverged at round %d", i)
		}
	}
	if c1 == 0 || r1 == 0 {
		t.Fatalf("schedule never bit: cuts=%d refused=%d", c1, r1)
	}
}

// TestPartitionWindow: after a cut, the drawn number of dials must be
// refused with ErrPartitioned, then dialing recovers.
func TestPartitionWindow(t *testing.T) {
	addr := echoListener(t)
	d := NewDialer(addr.String(), Config{
		Seed:        7,
		CutAfterMin: 1, CutAfterMax: 2,
		PartitionMin: 2, PartitionMax: 4,
	})
	// Burn rounds until a cut lands, then count refusals.
	for i := 0; i < 20 && d.Cuts() == 0; i++ {
		run(d)
	}
	if d.Cuts() == 0 {
		t.Fatal("no cut in 20 rounds")
	}
	sawRefusal := false
	for i := 0; i < 10; i++ {
		c, err := d.Dial()
		if errors.Is(err, ErrPartitioned) {
			sawRefusal = true
			continue
		}
		if err == nil {
			c.Close()
			break
		}
	}
	if !sawRefusal {
		t.Fatal("partition window refused no dials")
	}
	if d.Refused() == 0 {
		t.Fatal("refusal counter not advanced")
	}
}

// TestDeadConnStaysDead: I/O after the injected kill keeps failing
// rather than touching the closed socket.
func TestDeadConnStaysDead(t *testing.T) {
	addr := echoListener(t)
	d := NewDialer(addr.String(), Config{Seed: 1, CutAfterMin: 1, CutAfterMax: 1})
	c, err := d.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("budget-1 conn died before its budget: %v", err)
	}
	if _, err := c.Write([]byte("y")); err == nil {
		t.Fatal("budget-1 conn survived its second write")
	}
	if _, err := c.Write([]byte("z")); !errors.Is(err, ErrInjected) {
		t.Fatalf("dead conn write: %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("dead conn read: %v", err)
	}
}
