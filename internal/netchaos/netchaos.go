// Package netchaos is the fault-injection layer for the networked
// tests, in the mould of internal/tmtest: a net.Conn wrapper driven by
// a seeded deterministic schedule that kills connections after a drawn
// number of I/O calls (optionally tearing the final write or read so
// the peer sees a partial frame), refuses dials for a drawn window
// after each kill (a partition), and injects small delays. Because the
// schedule is drawn from internal/rng with a caller-chosen seed and
// advances on I/O counts — never wall-clock — a test that fails under a
// given seed fails the same way every run.
//
// The replication tests are the package's reason to exist: a follower
// dialing its leader through a chaos Dialer loses the stream at seeded
// points, sits out seeded partition windows, and must reconnect and
// resume from its own watermark without ever diverging.
package netchaos

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sihtm/internal/rng"
)

// ErrInjected is the error returned by I/O on a connection the
// schedule has killed.
var ErrInjected = errors.New("netchaos: injected fault")

// ErrPartitioned is the error returned by Dial during a partition
// window.
var ErrPartitioned = errors.New("netchaos: partitioned")

// Config is a chaos schedule. Zero values disable each fault class.
type Config struct {
	// Seed drives every draw; equal seeds give equal schedules.
	Seed uint64
	// CutAfterMin/Max bound the per-connection I/O-call budget: each
	// connection dies after a drawn number of Read/Write calls in
	// [Min, Max]. 0 Max disables cuts.
	CutAfterMin, CutAfterMax int
	// TearProb (0..1) is the chance a cut tears — the final Write
	// delivers only a prefix of its buffer (the peer parses a torn
	// frame), or the final Read returns a truncated count.
	TearProb float64
	// PartitionMin/Max bound the dial-refusal window after each cut:
	// the next drawn number of Dial calls fail with ErrPartitioned.
	PartitionMin, PartitionMax int
	// DelayEvery injects Delay before every n-th I/O call on a
	// connection (0 disables).
	DelayEvery int
	// Delay is the injected delay length.
	Delay time.Duration
}

// Dialer dials through the chaos schedule. All randomness is drawn
// under the dialer's lock from one seeded stream, so concurrent use is
// safe and the schedule is a pure function of the seed and the order
// of draws.
type Dialer struct {
	addr string
	cfg  Config

	mu     sync.Mutex
	r      *rng.Rand
	refuse int // dials left to refuse (partition window)

	dials   atomic.Uint64
	refused atomic.Uint64
	cuts    atomic.Uint64
	tears   atomic.Uint64
}

// NewDialer builds a chaos dialer for addr.
func NewDialer(addr string, cfg Config) *Dialer {
	return &Dialer{addr: addr, cfg: cfg, r: rng.New(cfg.Seed)}
}

// Dial opens one connection through the schedule, or refuses it inside
// a partition window.
func (d *Dialer) Dial() (net.Conn, error) {
	d.dials.Add(1)
	d.mu.Lock()
	if d.refuse > 0 {
		d.refuse--
		d.mu.Unlock()
		d.refused.Add(1)
		return nil, ErrPartitioned
	}
	budget := -1
	if d.cfg.CutAfterMax > 0 {
		lo, hi := d.cfg.CutAfterMin, d.cfg.CutAfterMax
		if lo < 1 {
			lo = 1
		}
		budget = lo
		if hi > lo {
			budget = lo + d.r.Intn(hi-lo)
		}
	}
	tear := d.cfg.TearProb > 0 && float64(d.r.Intn(1000))/1000 < d.cfg.TearProb
	d.mu.Unlock()

	nc, err := net.Dial("tcp", d.addr)
	if err != nil {
		return nil, err
	}
	return &chaosConn{Conn: nc, d: d, budget: budget, tear: tear}, nil
}

// noteCut records a kill and opens the partition window that follows.
func (d *Dialer) noteCut() {
	d.cuts.Add(1)
	if d.cfg.PartitionMax <= 0 {
		return
	}
	d.mu.Lock()
	w := d.cfg.PartitionMin
	if d.cfg.PartitionMax > w {
		w += d.r.Intn(d.cfg.PartitionMax - w)
	}
	if w > d.refuse {
		d.refuse = w
	}
	d.mu.Unlock()
}

// tearLen draws the surviving prefix of a torn buffer.
func (d *Dialer) tearLen(n int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n <= 1 {
		return 0
	}
	return 1 + d.r.Intn(n-1)
}

// Dials, Refused, Cuts and Tears expose the schedule's activity for
// test assertions ("the chaos actually bit").
func (d *Dialer) Dials() uint64   { return d.dials.Load() }
func (d *Dialer) Refused() uint64 { return d.refused.Load() }
func (d *Dialer) Cuts() uint64    { return d.cuts.Load() }
func (d *Dialer) Tears() uint64   { return d.tears.Load() }

// chaosConn is one scheduled connection. budget counts I/O calls until
// the kill (-1 = never); the mutex serializes the budget against the
// usual reader/writer goroutine pair.
type chaosConn struct {
	net.Conn
	d      *Dialer
	mu     sync.Mutex
	ios    int
	budget int
	tear   bool
	dead   bool
}

// charge spends one I/O call; reports whether this call is the cut.
func (c *chaosConn) charge() (cut, dead bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return false, true
	}
	c.ios++
	if c.d.cfg.DelayEvery > 0 && c.ios%c.d.cfg.DelayEvery == 0 && c.d.cfg.Delay > 0 {
		time.Sleep(c.d.cfg.Delay)
	}
	if c.budget >= 0 {
		c.budget--
		if c.budget < 0 {
			c.dead = true
			return true, false
		}
	}
	return false, false
}

func (c *chaosConn) Read(p []byte) (int, error) {
	cut, dead := c.charge()
	if dead {
		return 0, ErrInjected
	}
	if cut {
		if c.tear && len(p) > 1 {
			// Deliver a truncated read so the consumer's framing sees a
			// torn frame before the connection dies.
			k := c.d.tearLen(len(p))
			n, _ := c.Conn.Read(p[:k])
			c.d.tears.Add(1)
			c.d.noteCut()
			c.Conn.Close()
			return n, nil
		}
		c.d.noteCut()
		c.Conn.Close()
		return 0, ErrInjected
	}
	return c.Conn.Read(p)
}

func (c *chaosConn) Write(p []byte) (int, error) {
	cut, dead := c.charge()
	if dead {
		return 0, ErrInjected
	}
	if cut {
		if c.tear && len(p) > 1 {
			// Flush a prefix so the peer's parser chews on a torn frame.
			k := c.d.tearLen(len(p))
			c.Conn.Write(p[:k])
			c.d.tears.Add(1)
		}
		c.d.noteCut()
		c.Conn.Close()
		return 0, ErrInjected
	}
	return c.Conn.Write(p)
}

func (c *chaosConn) Close() error {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	return c.Conn.Close()
}
