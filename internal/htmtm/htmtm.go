// Package htmtm is the plain-HTM concurrency control the paper uses as
// its primary baseline ("HTM" in every figure): each transaction runs as
// a regular hardware transaction with early lock subscription, retrying a
// bounded number of times before serialising on the single-global-lock
// fall-back path.
//
// Because regular transactions track reads and writes, this system pays
// the full TMCAM capacity cost the paper's §2.2 describes — large
// transactions abort on capacity, escalate to the SGL, and the SGL kills
// every subscribed transaction (non-transactional aborts), which is
// precisely the collapse visible in the HTM curves of Figures 6–10.
package htmtm

import (
	"runtime"

	"sihtm/internal/htm"
	"sihtm/internal/sgl"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
)

// DefaultRetries is the number of hardware attempts before falling back
// to the SGL, matching the artifact's default retry budget.
const DefaultRetries = 10

// Config tunes the system.
type Config struct {
	// Retries is the hardware attempt budget per transaction before the
	// SGL fall-back. 0 means DefaultRetries.
	Retries int
}

// System is the plain-HTM concurrency control.
type System struct {
	m       *htm.Machine
	lock    *sgl.Lock
	threads int
	retries int
	col     *stats.Collector

	// hook, when set, makes the SGL fall-back publish through a
	// tm.Recorder so its write set reaches the durability seam.
	hook tm.CommitHook
	recs []tm.Recorder
}

// NewSystem builds the baseline for the first `threads` hardware threads
// of m.
func NewSystem(m *htm.Machine, threads int, cfg Config) *System {
	if cfg.Retries == 0 {
		cfg.Retries = DefaultRetries
	}
	return &System{
		m:       m,
		lock:    sgl.New(m),
		threads: threads,
		retries: cfg.Retries,
		col:     stats.New(threads),
	}
}

// Name implements tm.System.
func (s *System) Name() string { return "htm" }

// Threads implements tm.System.
func (s *System) Threads() int { return s.threads }

// Collector implements tm.System.
func (s *System) Collector() *stats.Collector { return s.col }

// SetCommitHook implements tm.HookableSystem for the fall-back path.
// Call before any transaction runs.
func (s *System) SetCommitHook(h tm.CommitHook) {
	s.hook = h
	s.recs = make([]tm.Recorder, s.threads)
}

// Atomic implements tm.System: regular hardware transaction with early
// lock subscription, bounded retries, then the SGL path. Capacity aborts
// carry the POWER TEXASR persistence hint — retrying is unlikely to help
// — so they consume the remaining budget after one grace retry.
func (s *System) Atomic(thread int, kind tm.Kind, body func(tm.Ops)) {
	th := s.m.Thread(thread)
	l := s.col.Thread(thread)
	capacityAborts := 0
	for attempt := 0; attempt < s.retries && capacityAborts < 2; attempt++ {
		// Don't even start while the lock is held — we would abort
		// immediately on subscription.
		s.lock.WaitUnlocked(th)
		l.HWBegin(false)
		ab := htm.Run(th, htm.ModeHTM, func(tx *htm.Tx) {
			// Early subscription: a transactional read of the lock word.
			// If the lock is taken we must not run; if it is taken later,
			// the holder's store kills us through this tracked line.
			if tx.Read(s.lock.Addr()) != 0 {
				tx.AbortExplicit()
			}
			body(tm.TxOps{Tx: tx})
		})
		if ab == nil {
			l.Commit(kind == tm.KindReadOnly)
			return
		}
		if ab.Code == htm.CodeCapacity {
			capacityAborts++
		}
		l.Abort(tm.AbortKindOf(ab.Code))
		runtime.Gosched()
	}
	// Fall-back: serialise under the global lock. The acquisition store
	// dooms all subscribed transactions.
	s.lock.Acquire(th)
	if s.hook != nil {
		// A subscriber that had already entered its hardware commit when
		// the acquisition landed survives the doom and may still be
		// publishing; wait it out so this fall-back's redo record is
		// sequenced after every commit that raced the acquisition. (No
		// new commit can start: every attempt subscribes first and the
		// lock is now held.)
		s.m.QuiesceCommits()
		rec := &s.recs[thread]
		rec.Begin(tm.PlainOps{Th: th})
		body(rec)
		rec.Flush(thread, s.hook)
	} else {
		body(tm.PlainOps{Th: th})
	}
	s.lock.Release(th)
	l.Commit(kind == tm.KindReadOnly)
	l.Fallback()
}

var _ tm.System = (*System)(nil)
