package htmtm_test

import (
	"runtime"
	"sync"
	"testing"

	"sihtm/internal/htm"
	"sihtm/internal/htmtm"
	"sihtm/internal/memsim"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
)

func newSystem(t testing.TB, threads, tmcam int, cfg htmtm.Config) (*htmtm.System, *memsim.Heap) {
	t.Helper()
	heap := memsim.NewHeapLines(1 << 10)
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(4, 2), TMCAMLines: tmcam})
	return htmtm.NewSystem(m, threads, cfg), heap
}

func TestName(t *testing.T) {
	sys, _ := newSystem(t, 2, 64, htmtm.Config{})
	if sys.Name() != "htm" || sys.Threads() != 2 {
		t.Fatalf("Name/Threads = %q/%d", sys.Name(), sys.Threads())
	}
}

// Plain HTM transactions are capacity-bounded by reads: a transaction
// whose read set exceeds the TMCAM burns its retries on capacity aborts
// and lands on the SGL — the failure mode SI-HTM eliminates.
func TestReadCapacityForcesFallback(t *testing.T) {
	sys, heap := newSystem(t, 1, 8, htmtm.Config{Retries: 4})
	lines := make([]memsim.Addr, 16)
	for i := range lines {
		lines[i] = heap.AllocLine()
		heap.Store(lines[i], uint64(i))
	}
	var sum uint64
	sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
		sum = 0
		for _, a := range lines {
			sum += ops.Read(a)
		}
	})
	if sum != 15*16/2 {
		t.Fatalf("sum = %d", sum)
	}
	s := sys.Collector().Snapshot()
	if s.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", s.Fallbacks)
	}
	if s.Aborts[stats.AbortCapacity] != 2 {
		t.Fatalf("capacity aborts = %d, want 2 (persistent-capacity budget)", s.Aborts[stats.AbortCapacity])
	}
}

// Unlike SI-HTM, read-only transactions enjoy no special treatment: a
// large read-only scan also falls back.
func TestReadOnlyHasNoFastPath(t *testing.T) {
	sys, heap := newSystem(t, 1, 8, htmtm.Config{Retries: 2})
	lines := make([]memsim.Addr, 16)
	for i := range lines {
		lines[i] = heap.AllocLine()
	}
	sys.Atomic(0, tm.KindReadOnly, func(ops tm.Ops) {
		for _, a := range lines {
			_ = ops.Read(a)
		}
	})
	s := sys.Collector().Snapshot()
	if s.Fallbacks != 1 || s.CommitsRO != 1 {
		t.Fatalf("stats = %v", s)
	}
}

// The SGL lock-word subscription: while one thread is serialised on the
// lock, hardware attempts by others abort non-transactionally, exactly
// the "non-transactional aborts" population in the paper's breakdowns.
func TestLockSubscriptionKillsConcurrentTxs(t *testing.T) {
	sys, heap := newSystem(t, 2, 4, htmtm.Config{Retries: 3})
	big := make([]memsim.Addr, 8) // exceeds the 4-line TMCAM → forces SGL
	for i := range big {
		big[i] = heap.AllocLine()
	}
	x := heap.AllocLine()

	const rounds = 100
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
				for j, a := range big {
					ops.Write(a, uint64(i*8+j))
				}
			})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			sys.Atomic(1, tm.KindUpdate, func(ops tm.Ops) {
				ops.Write(x, ops.Read(x)+1)
			})
		}
	}()
	wg.Wait()
	if got := heap.Load(x); got != rounds {
		t.Fatalf("counter = %d, want %d (SGL serialisation lost updates)", got, rounds)
	}
	s := sys.Collector().Snapshot()
	if s.Fallbacks == 0 {
		t.Fatal("expected SGL fallbacks")
	}
	if s.Commits != 2*rounds {
		t.Fatalf("commits = %d, want %d", s.Commits, 2*rounds)
	}
}

func TestConflictAbortsAreCounted(t *testing.T) {
	sys, heap := newSystem(t, 4, 64, htmtm.Config{})
	x := heap.AllocLine()
	pad := heap.AllocLines(16) // stretch the read-to-write window
	const perThread = 500
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				sys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
					v := ops.Read(x)
					// Widen the conflict window so concurrent increments
					// overlap even on heavily time-sliced or single-CPU
					// hosts (the yield forces an interleaving point).
					for j := 0; j < 16; j++ {
						v += ops.Read(pad + memsim.Addr(j*memsim.WordsPerLine))
						runtime.Gosched()
					}
					ops.Write(x, v+1)
				})
			}
		}(id)
	}
	wg.Wait()
	if got := heap.Load(x); got != 4*perThread {
		t.Fatalf("counter = %d, want %d", got, 4*perThread)
	}
	s := sys.Collector().Snapshot()
	if s.TotalAborts() == 0 {
		t.Error("expected conflicts on a contended counter")
	}
}
