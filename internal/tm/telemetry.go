package tm

import (
	"sihtm/internal/stats"
	"sihtm/internal/telemetry"
)

// RegisterMetrics exposes a System's abort accounting as one uniform
// set of telemetry families, labeled by system name. Every system —
// si-htm, htm, p8tm, sgl, silo — funnels through the same
// stats.Collector seam, so the families are identical across systems:
// software-only systems simply report zero hardware begins, which is
// exactly the signal an operator uses to tell an SGL-serialized run
// from a hardware-backed one.
//
// All series are scrape-time functions over the collector's padded
// per-thread slots: registering metrics adds zero cost to the
// transaction hot path.
func RegisterMetrics(reg *telemetry.Registry, sys System) {
	col := sys.Collector()
	name := sys.Name()
	sysL := telemetry.L("system", name)

	reg.MustCounterFunc("sihtm_tm_commits_total",
		"Committed transactions by execution path.",
		func() uint64 { s := col.Snapshot(); return s.Commits - s.CommitsRO },
		sysL, telemetry.L("path", "update"))
	reg.MustCounterFunc("sihtm_tm_commits_total", "",
		func() uint64 { return col.Snapshot().CommitsRO },
		sysL, telemetry.L("path", "read_only"))

	for k := 0; k < stats.NumAbortKinds; k++ {
		kind := stats.AbortKind(k)
		reg.MustCounterFunc("sihtm_tm_aborts_total",
			"Aborted transaction attempts by cause (the paper's abort taxonomy).",
			func() uint64 { return col.Snapshot().Aborts[kind] },
			sysL, telemetry.L("cause", causeLabel(kind)))
	}

	reg.MustCounterFunc("sihtm_tm_fallbacks_total",
		"Commits executed under the single-global-lock fallback path.",
		func() uint64 { return col.Snapshot().Fallbacks },
		sysL)
	reg.MustCounterFunc("sihtm_tm_hw_begins_total",
		"Hardware transaction begins by mode (POWER rollback-only vs regular HTM).",
		func() uint64 { return col.Snapshot().HWBeginROT },
		sysL, telemetry.L("mode", "rot"))
	reg.MustCounterFunc("sihtm_tm_hw_begins_total", "",
		func() uint64 { return col.Snapshot().HWBeginHTM },
		sysL, telemetry.L("mode", "htm"))
	reg.MustCounterFunc("sihtm_tm_wait_spins_total",
		"Quiescence/safety-wait spin iterations.",
		func() uint64 { return col.Snapshot().WaitSpins },
		sysL)
}

// causeLabel maps an AbortKind to its metric label value: the String()
// form with label-safe underscores.
func causeLabel(k stats.AbortKind) string {
	switch k {
	case stats.AbortTransactional:
		return "conflict"
	case stats.AbortNonTransactional:
		return "non_transactional"
	case stats.AbortCapacity:
		return "capacity"
	case stats.AbortExplicit:
		return "explicit"
	case stats.AbortOther:
		return "other"
	default:
		return "unknown"
	}
}
