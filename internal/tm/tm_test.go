package tm_test

import (
	"testing"

	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
)

func TestKindString(t *testing.T) {
	if tm.KindUpdate.String() != "update" || tm.KindReadOnly.String() != "read-only" {
		t.Fatalf("Kind strings: %q, %q", tm.KindUpdate, tm.KindReadOnly)
	}
}

func TestAbortKindOf(t *testing.T) {
	cases := map[htm.AbortCode]stats.AbortKind{
		htm.CodeTxConflict:    stats.AbortTransactional,
		htm.CodeNonTxConflict: stats.AbortNonTransactional,
		htm.CodeCapacity:      stats.AbortCapacity,
		htm.CodeExplicit:      stats.AbortNonTransactional,
		htm.AbortCode(99):     stats.AbortOther,
	}
	for code, want := range cases {
		if got := tm.AbortKindOf(code); got != want {
			t.Errorf("AbortKindOf(%v) = %v, want %v", code, got, want)
		}
	}
}

func TestOpsAdapters(t *testing.T) {
	heap := memsim.NewHeapLines(64)
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(1, 1)})
	th := m.Thread(0)
	a := heap.AllocLine()

	// PlainOps round-trip.
	po := tm.PlainOps{Th: th}
	po.Write(a, 5)
	if po.Read(a) != 5 {
		t.Fatal("PlainOps round-trip failed")
	}

	// TxOps round-trip inside a transaction.
	if ab := htm.Run(th, htm.ModeROT, func(tx *htm.Tx) {
		to := tm.TxOps{Tx: tx}
		to.Write(a, 6)
		if to.Read(a) != 6 {
			t.Fatal("TxOps round-trip failed")
		}
	}); ab != nil {
		t.Fatalf("unexpected abort: %v", ab)
	}
	if heap.Load(a) != 6 {
		t.Fatal("TxOps write not committed")
	}

	// ReadOnlyOps forwards reads and rejects writes.
	ro := tm.ReadOnlyOps{Inner: po}
	if ro.Read(a) != 6 {
		t.Fatal("ReadOnlyOps read failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ReadOnlyOps.Write did not panic")
		}
	}()
	ro.Write(a, 7)
}
