// Package tm defines the interface every concurrency-control system in
// this repository implements — SI-HTM and all the baselines the paper
// compares against (plain HTM, P8TM, Silo, and a single-global-lock
// reference). Workloads are written once against tm.System/tm.Ops and run
// unchanged on every system, exactly like the paper's benchmarks run on
// interchangeable back-ends.
package tm

import (
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/stats"
)

// Kind declares a transaction's profile at launch. The paper's §3.3: "When
// a transaction is launched in SI-HTM, an argument specifies whether the
// transaction is read-only or not. We assume this parameter is set by the
// programmer or by some automatic tool."
type Kind int

const (
	// KindUpdate is a transaction that may write shared data.
	KindUpdate Kind = iota
	// KindReadOnly promises the transaction performs no shared writes
	// (thread-private writes — e.g. its own stack — are fine and are
	// simply not routed through Ops).
	KindReadOnly
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindReadOnly {
		return "read-only"
	}
	return "update"
}

// Ops is the transactional memory access interface handed to transaction
// bodies. Addresses index the shared simulated heap.
type Ops interface {
	// Read returns the word at a as observed by this transaction.
	Read(a memsim.Addr) uint64
	// Write updates the word at a within this transaction. Calling Write
	// in a KindReadOnly transaction is a programming error; systems with
	// a read-only fast path panic on it.
	Write(a memsim.Addr, v uint64)
}

// System is a complete concurrency control. Atomic executes body as one
// transaction, retrying and falling back internally as the system's
// protocol dictates; when Atomic returns, the transaction has committed.
//
// The body may be executed multiple times (on aborts) and must therefore
// be idempotent with respect to non-transactional side effects — the
// standard TM contract.
type System interface {
	// Name identifies the system in benchmark output ("si-htm", "htm",
	// "p8tm", "silo", "sgl").
	Name() string
	// Threads is the number of worker threads the system was sized for.
	Threads() int
	// Atomic runs body as one transaction on the given thread.
	// Implementations guarantee the call returns only after a successful
	// commit.
	Atomic(thread int, kind Kind, body func(Ops))
	// Collector exposes the per-thread statistics (commits, aborts by
	// kind, fall-backs) that the paper's figures report.
	Collector() *stats.Collector
}

// TxOps adapts a hardware transaction to Ops.
type TxOps struct{ Tx *htm.Tx }

// Read implements Ops.
func (o TxOps) Read(a memsim.Addr) uint64 { return o.Tx.Read(a) }

// Write implements Ops.
func (o TxOps) Write(a memsim.Addr, v uint64) { o.Tx.Write(a, v) }

// PlainOps adapts a hardware thread's plain (non-transactional) accesses
// to Ops. It is the access path of SGL fall-backs and of SI-HTM's
// read-only fast path.
type PlainOps struct{ Th *htm.Thread }

// Read implements Ops.
func (o PlainOps) Read(a memsim.Addr) uint64 { return o.Th.Load(a) }

// Write implements Ops.
func (o PlainOps) Write(a memsim.Addr, v uint64) { o.Th.Store(a, v) }

// ReadOnlyOps wraps an Ops and panics on Write: systems use it to enforce
// the KindReadOnly promise on their uninstrumented fast paths, where a
// stray write would otherwise silently corrupt isolation.
type ReadOnlyOps struct{ Inner Ops }

// Read implements Ops.
func (o ReadOnlyOps) Read(a memsim.Addr) uint64 { return o.Inner.Read(a) }

// Write implements Ops by panicking.
func (o ReadOnlyOps) Write(memsim.Addr, uint64) {
	panic("tm: Write inside a transaction declared read-only")
}

// ReadOnlyPlainOps is ReadOnlyOps over PlainOps flattened to a single
// pointer field. The flattening matters on the hot path: a one-pointer
// struct is a direct interface type, so passing it to a body as Ops
// stores the pointer in the interface word itself — the two-word
// ReadOnlyOps{Inner: PlainOps{...}} composition heap-allocates a box on
// every read-only transaction.
type ReadOnlyPlainOps struct{ Th *htm.Thread }

// Read implements Ops.
func (o ReadOnlyPlainOps) Read(a memsim.Addr) uint64 { return o.Th.Load(a) }

// Write implements Ops by panicking.
func (o ReadOnlyPlainOps) Write(memsim.Addr, uint64) {
	panic("tm: Write inside a transaction declared read-only")
}

// AbortKindOf maps a hardware abort cause to the paper's abort taxonomy:
// explicit aborts are raised by the lock-subscription check when the SGL
// is busy, so they count as non-transactional, like the SGL kills
// themselves.
func AbortKindOf(code htm.AbortCode) stats.AbortKind {
	switch code {
	case htm.CodeTxConflict:
		return stats.AbortTransactional
	case htm.CodeNonTxConflict:
		return stats.AbortNonTransactional
	case htm.CodeCapacity:
		return stats.AbortCapacity
	case htm.CodeExplicit:
		return stats.AbortNonTransactional
	default:
		return stats.AbortOther
	}
}
