package tm

import (
	"sihtm/internal/footprint"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
)

// CommitHook is the durability seam: one interface observes the write
// set of every committed update transaction, whichever path committed
// it. Hardware commits reach the hook through htm.Machine.SetCommitHook
// (the machine brackets the write-back, see htm.CommitHook); software
// publication paths — the SGL fall-backs of SI-HTM, HTM and P8TM, the
// all-serial SGL system and Silo's OCC install — reach it through each
// system's SetCommitHook plus a Recorder. The interface is defined in
// internal/htm (the machine cannot import this package); this alias is
// the name the system-facing layers use.
type CommitHook = htm.CommitHook

// HookableSystem is implemented by every concurrency control whose
// commits can be intercepted for durability. SetCommitHook must be
// called before any transaction runs; installing a hook on the system
// covers only its software publication paths — callers that want
// hardware commits too must also install the hook on the underlying
// htm.Machine (internal/durable.Attach does both).
type HookableSystem interface {
	System
	SetCommitHook(CommitHook)
}

// Recorder turns an immediate-visibility publication path (plain stores
// under a global lock) into the capture-then-publish shape the commit
// hook requires: the transaction body runs against the Recorder, which
// buffers writes (serving reads-own-writes) instead of issuing them;
// Flush then captures the write set via PreCommit, publishes it through
// the inner Ops and closes with PostCommit. Deferring the stores to
// Flush is safe on the paths that use it — they hold the SGL (or Silo's
// line locks), so no concurrent reader can observe the body's
// intermediate states anyway — and it is what makes the redo record's
// sequence number agree with the publication order.
//
// The write buffer is pooled and retained across transactions, so a
// steady-state fall-back commit allocates nothing. A Recorder belongs
// to one thread; systems keep one per worker slot.
type Recorder struct {
	inner Ops
	buf   footprint.WriteBuffer
}

// Begin arms the recorder over the real publication path for one
// transaction. Fall-back bodies are never re-executed (the serial path
// cannot abort), so Begin is called once per fall-back transaction.
func (r *Recorder) Begin(inner Ops) {
	r.inner = inner
	r.buf.Reset()
}

// Read implements Ops: reads-own-writes from the buffer, everything
// else through the inner path.
func (r *Recorder) Read(a memsim.Addr) uint64 {
	if v, ok := r.buf.Get(a); ok {
		return v
	}
	return r.inner.Read(a)
}

// Write implements Ops by buffering the store until Flush.
func (r *Recorder) Write(a memsim.Addr, v uint64) { r.buf.Put(a, v) }

// Flush publishes the buffered write set through the hook bracket:
// PreCommit (capture), inner writes (publish), PostCommit. A read-only
// body (empty buffer) publishes nothing and is not reported to the
// hook.
func (r *Recorder) Flush(thread int, h CommitHook) {
	if r.buf.Len() == 0 {
		return
	}
	h.PreCommit(thread, r.buf.Entries())
	for _, e := range r.buf.Entries() {
		r.inner.Write(e.Addr, e.Val)
	}
	h.PostCommit(thread)
	r.buf.Reset()
}
