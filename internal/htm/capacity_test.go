package htm_test

import (
	"testing"

	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/topology"
)

// Regular transactions are capacity-bounded by reads + writes.
func TestHTMReadCapacity(t *testing.T) {
	const tmcam = 8
	m := newMachine(t, 1, 1, tmcam)
	lines := allocLines(m, tmcam+1)
	th := m.Thread(0)
	ab := htm.Run(th, htm.ModeHTM, func(tx *htm.Tx) {
		for _, a := range lines {
			tx.Read(a)
		}
	})
	if ab == nil || ab.Code != htm.CodeCapacity {
		t.Fatalf("abort = %v, want capacity", ab)
	}
	// Exactly tmcam lines fit.
	if ab := htm.Run(th, htm.ModeHTM, func(tx *htm.Tx) {
		for _, a := range lines[:tmcam] {
			tx.Read(a)
		}
	}); ab != nil {
		t.Fatalf("transaction of exactly %d lines aborted: %v", tmcam, ab)
	}
	checkQuiescent(t, m)
}

// ROT reads are untracked: a ROT can read far beyond the TMCAM — the core
// capacity stretch the paper builds on.
func TestROTReadsAreCapacityFree(t *testing.T) {
	const tmcam = 8
	m := newMachine(t, 1, 1, tmcam)
	lines := allocLines(m, 50*tmcam)
	th := m.Thread(0)
	if ab := htm.Run(th, htm.ModeROT, func(tx *htm.Tx) {
		for _, a := range lines {
			tx.Read(a)
		}
		if tx.ReadSetLines() != 0 {
			t.Fatalf("ROT tracked %d read lines, want 0", tx.ReadSetLines())
		}
	}); ab != nil {
		t.Fatalf("large-read ROT aborted: %v", ab)
	}
	checkQuiescent(t, m)
}

// ROT writes are tracked and capacity-bounded.
func TestROTWriteCapacity(t *testing.T) {
	const tmcam = 8
	m := newMachine(t, 1, 1, tmcam)
	lines := allocLines(m, tmcam+1)
	th := m.Thread(0)
	ab := htm.Run(th, htm.ModeROT, func(tx *htm.Tx) {
		for i, a := range lines {
			tx.Write(a, uint64(i))
		}
	})
	if ab == nil || ab.Code != htm.CodeCapacity {
		t.Fatalf("abort = %v, want capacity", ab)
	}
	for _, a := range lines {
		if th.Load(a) != 0 {
			t.Fatal("capacity-aborted writes leaked")
		}
	}
	checkQuiescent(t, m)
}

// Repeated access to the same line consumes one entry, and a read→write
// upgrade reuses the read entry.
func TestCapacityChargesPerDistinctLine(t *testing.T) {
	const tmcam = 2
	m := newMachine(t, 1, 1, tmcam)
	lines := allocLines(m, 3)
	th := m.Thread(0)
	if ab := htm.Run(th, htm.ModeHTM, func(tx *htm.Tx) {
		for i := 0; i < 100; i++ {
			tx.Read(lines[0])
			tx.Write(lines[0], uint64(i)) // upgrade: same entry
			tx.Read(lines[1])
		}
		if got := m.CoreUsage(0); got != tmcam {
			t.Fatalf("core usage = %d, want %d", got, tmcam)
		}
	}); ab != nil {
		t.Fatalf("aborted: %v", ab)
	}
	// The third line overflows.
	ab := htm.Run(th, htm.ModeHTM, func(tx *htm.Tx) {
		tx.Write(lines[0], 1)
		tx.Write(lines[1], 1)
		tx.Write(lines[2], 1)
	})
	if ab == nil || ab.Code != htm.CodeCapacity {
		t.Fatalf("abort = %v, want capacity", ab)
	}
	checkQuiescent(t, m)
}

// The TMCAM is shared by SMT threads co-located on a core (§2.2): two
// threads on one core split the budget, while threads on different cores
// each get the full budget.
func TestTMCAMSharedAcrossSMTThreads(t *testing.T) {
	const tmcam = 8
	heap := memsim.NewHeapLines(1 << 12)
	// 2 cores × SMT-2: threads 0,2 on core 0; threads 1,3 on core 1.
	m := htm.NewMachine(heap, htm.Config{
		Topology:   topology.New(2, 2),
		TMCAMLines: tmcam,
	})
	lines := allocLines(m, 2*tmcam)

	// Fill 6 of core 0's 8 entries from thread 0 and keep the tx live.
	tx0 := m.Thread(0).Begin(htm.ModeROT)
	for _, a := range lines[:6] {
		tx0.Write(a, 1)
	}

	// Thread 2 shares core 0: only 2 entries left.
	tx2 := m.Thread(2).Begin(htm.ModeROT)
	tx2.Write(lines[8], 1)
	tx2.Write(lines[9], 1)
	ab := tryTx(func() { tx2.Write(lines[10], 1) })
	if ab == nil || ab.Code != htm.CodeCapacity {
		t.Fatalf("SMT sibling abort = %v, want capacity", ab)
	}

	// Thread 1 is on core 1: full budget available despite core 0 being full.
	if ab := htm.Run(m.Thread(1), htm.ModeROT, func(tx *htm.Tx) {
		for _, a := range lines[tmcam : 2*tmcam] {
			tx.Write(a, 2)
		}
	}); ab != nil {
		t.Fatalf("other-core transaction aborted: %v", ab)
	}

	if ab := tryTx(func() { tx0.Commit() }); ab != nil {
		t.Fatalf("tx0 aborted: %v", ab)
	}
	// After tx0 commits, its 6 entries are released and thread 2 can run.
	if ab := htm.Run(m.Thread(2), htm.ModeROT, func(tx *htm.Tx) {
		for _, a := range lines[:6] {
			tx.Write(a, 3)
		}
	}); ab != nil {
		t.Fatalf("post-release transaction aborted: %v", ab)
	}
	checkQuiescent(t, m)
}

// An aborted transaction releases its TMCAM charge.
func TestAbortReleasesCapacity(t *testing.T) {
	const tmcam = 4
	m := newMachine(t, 1, 1, tmcam)
	lines := allocLines(m, tmcam)
	th := m.Thread(0)
	ab := htm.Run(th, htm.ModeROT, func(tx *htm.Tx) {
		for _, a := range lines {
			tx.Write(a, 1)
		}
		tx.AbortExplicit()
	})
	if ab == nil {
		t.Fatal("explicit abort lost")
	}
	if got := m.CoreUsage(0); got != 0 {
		t.Fatalf("core usage after abort = %d, want 0", got)
	}
	if ab := htm.Run(th, htm.ModeROT, func(tx *htm.Tx) {
		for _, a := range lines {
			tx.Write(a, 2)
		}
	}); ab != nil {
		t.Fatalf("budget not released: %v", ab)
	}
	checkQuiescent(t, m)
}

// The ROT read-sampling knob (the paper's footnote 1) makes ROTs charge
// some reads.
func TestROTReadSampling(t *testing.T) {
	heap := memsim.NewHeapLines(1 << 12)
	m := htm.NewMachine(heap, htm.Config{
		Topology:          topology.New(1, 1),
		TMCAMLines:        4,
		ROTReadTrackEvery: 2, // every 2nd ROT read is tracked
	})
	lines := allocLines(m, 16)
	th := m.Thread(0)
	ab := htm.Run(th, htm.ModeROT, func(tx *htm.Tx) {
		for _, a := range lines {
			tx.Read(a)
		}
	})
	if ab == nil || ab.Code != htm.CodeCapacity {
		t.Fatalf("abort = %v, want capacity once sampled reads fill the TMCAM", ab)
	}
	checkQuiescent(t, m)
}

func TestConfigDefaults(t *testing.T) {
	heap := memsim.NewHeapLines(16)
	m := htm.NewMachine(heap, htm.Config{})
	if m.TMCAMLines() != htm.DefaultTMCAMLines {
		t.Fatalf("TMCAMLines = %d, want %d", m.TMCAMLines(), htm.DefaultTMCAMLines)
	}
	if m.Topology().Cores() != topology.PaperCores || m.Topology().SMTWays() != topology.PaperSMTWays {
		t.Fatalf("default topology = %v, want paper machine", m.Topology())
	}
	if m.Heap() != heap {
		t.Fatal("Heap() mismatch")
	}
}
