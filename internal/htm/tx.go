package htm

import (
	"math/bits"
	"runtime"
	"sync/atomic"

	"sihtm/internal/footprint"
	"sihtm/internal/memsim"
)

// Mode selects the transaction flavour offered by P8-HTM.
type Mode int

const (
	// ModeHTM is a regular transaction: reads and writes are tracked and
	// both consume TMCAM capacity.
	ModeHTM Mode = iota
	// ModeROT is a rollback-only transaction: only writes are tracked;
	// reads behave like plain loads (§2.2).
	ModeROT
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeROT {
		return "ROT"
	}
	return "HTM"
}

// Transaction status encoding. Doomed states carry the abort code.
const (
	statusIdle int32 = iota
	statusActive
	statusCommitting
	statusCommitted
	statusAborted
	statusDoomedBase int32 = 0x100
)

func doomedStatus(code AbortCode) int32 { return statusDoomedBase + int32(code) }
func isDoomedStatus(s int32) bool       { return s >= statusDoomedBase }
func codeOfStatus(s int32) AbortCode    { return AbortCode(s - statusDoomedBase) }

// maxShardOrder caps the capacity of the pooled commit lock-order
// scratch retained across transactions (its length is bounded by the
// number of directory shards a commit touches).
const maxShardOrder = 4096

// Tx is one hardware transaction. A Tx is obtained from Thread.Begin and
// driven by the owning goroutine; conflicting peers may asynchronously
// doom it, and the doom is delivered — as a panic carrying *Abort — at
// the transaction's next operation, mirroring asynchronous hardware
// abort delivery.
//
// All footprint state (the read/write line sets, the store buffer and
// the commit scratch) lives in pooled structures recycled across the
// thread's transactions, so a committed transaction amortizes to zero
// heap allocations; see internal/footprint.
type Tx struct {
	th        *Thread
	mode      Mode
	status    atomic.Int32
	suspended bool

	writes     footprint.WriteBuffer // buffered stores, invisible until commit
	writeLines footprint.LineSet     // distinct lines in the write set
	readLines  footprint.LineSet     // distinct tracked read lines
	charged    int64                 // TMCAM lines charged on the core
	rotReads   int                   // ROT reads seen, for the sampling knob

	// Commit's ordered shard-lock acquisition scratch: a bitmap with one
	// bit per directory shard (marking yields sorted, deduplicated
	// indices for free) and the flattened ascending index list. Both are
	// pooled; shardMarks is re-zeroed as it is consumed and shardOrder is
	// reset — capped at maxShardOrder — on every commit and abort path.
	shardMarks []uint64
	shardOrder []int32
}

// Mode returns the transaction's flavour.
func (tx *Tx) Mode() Mode { return tx.mode }

// Thread returns the hardware thread running the transaction.
func (tx *Tx) Thread() *Thread { return tx.th }

// Suspended reports whether the transaction is currently suspended.
func (tx *Tx) Suspended() bool { return tx.suspended }

// Doomed reports (without delivering) whether the transaction has been
// killed by a conflicting access. Spin loops — such as SI-HTM's safety
// wait — poll this to abandon a wait that can no longer succeed.
func (tx *Tx) Doomed() bool { return isDoomedStatus(tx.status.Load()) }

// Poll delivers a pending doom, unwinding with *Abort if the transaction
// has been killed. Software layers call it inside wait loops so a doomed
// transaction stops spinning promptly, mirroring the asynchronous abort
// delivery of the hardware.
func (tx *Tx) Poll() { tx.checkDoomed() }

// Kill requests the abort of this transaction from another thread, as the
// paper's §6 "killing alternative" envisions (a completed transaction
// killing laggards that delay its quiescence). It reports whether the
// kill landed; it fails if the transaction is already dead or committing.
// The victim observes the abort at its next transactional operation.
func (tx *Tx) Kill() bool { return tx.doom(CodeExplicit) }

// WriteSetLines returns the number of distinct cache lines written.
func (tx *Tx) WriteSetLines() int { return tx.writeLines.Len() }

// ReadSetLines returns the number of distinct cache lines tracked as read.
func (tx *Tx) ReadSetLines() int { return tx.readLines.Len() }

func (tx *Tx) isLive() bool {
	s := tx.status.Load()
	return s == statusActive || s == statusCommitting
}

// doom attempts to kill the transaction with the given cause, reporting
// whether this call performed the kill. It fails if the transaction is
// already dead or has entered its commit (hardware commit is atomic and
// cannot be interrupted).
func (tx *Tx) doom(code AbortCode) bool {
	return tx.status.CompareAndSwap(statusActive, doomedStatus(code))
}

// checkDoomed delivers a pending doom, unwinding with *Abort.
func (tx *Tx) checkDoomed() {
	if isDoomedStatus(tx.status.Load()) {
		tx.abortNow()
	}
}

// abort self-kills with the given cause and unwinds.
func (tx *Tx) abort(code AbortCode) {
	tx.status.CompareAndSwap(statusActive, doomedStatus(code))
	tx.abortNow()
}

// abortNow cleans up a doomed transaction and unwinds with *Abort.
func (tx *Tx) abortNow() {
	st := tx.status.Load()
	code := CodeExplicit
	if isDoomedStatus(st) {
		code = codeOfStatus(st)
	}
	tx.cleanup()
	tx.status.Store(statusAborted)
	panic(&Abort{Code: code})
}

// forceAbortQuiet kills and cleans up a live transaction without
// unwinding. It is used when a non-abort panic (a caller bug) escapes a
// transaction body, so the machine is not left with a zombie entry.
func (tx *Tx) forceAbortQuiet() {
	if !tx.isLive() {
		return
	}
	tx.status.CompareAndSwap(statusActive, doomedStatus(CodeExplicit))
	if tx.status.Load() == statusCommitting {
		return // commit already in-flight; it will finish on its own
	}
	tx.cleanup()
	tx.status.Store(statusAborted)
}

// resetFootprint returns the pooled footprint state to empty. It runs on
// every transaction exit — commit (with or without writes) and abort —
// so no path leaves stale scratch behind, and retained capacity is
// bounded by the footprint package's caps plus maxShardOrder.
func (tx *Tx) resetFootprint() {
	tx.writes.Reset()
	tx.writeLines.Reset()
	tx.readLines.Reset()
	if cap(tx.shardOrder) > maxShardOrder {
		tx.shardOrder = nil
	} else {
		tx.shardOrder = tx.shardOrder[:0]
	}
	tx.rotReads = 0
}

// cleanup withdraws the transaction from the directory, releases its
// TMCAM charge and discards buffered writes. Buffered stores were never
// visible, so rollback is purely local.
func (tx *Tx) cleanup() {
	m := tx.th.m
	for _, line := range tx.writeLines.Lines() {
		s := m.shardOf(line)
		s.mu.Lock()
		if e, ok := s.lines[line]; ok {
			if e.writer == tx {
				e.writer = nil
				s.writers.Add(-1)
			}
			s.removeReader(e, tx) // read-then-write upgrades register both
			s.maybeRelease(line, e)
		}
		s.mu.Unlock()
	}
	for _, line := range tx.readLines.Lines() {
		if tx.writeLines.Contains(line) {
			continue // already handled above
		}
		s := m.shardOf(line)
		s.mu.Lock()
		if e, ok := s.lines[line]; ok {
			s.removeReader(e, tx)
			s.maybeRelease(line, e)
		}
		s.mu.Unlock()
	}
	m.uncharge(tx.th.core, tx.charged)
	tx.charged = 0
	tx.resetFootprint()
}

// bufferedRead returns the transaction's own buffered value for addr.
func (tx *Tx) bufferedRead(a memsim.Addr) (uint64, bool) {
	return tx.writes.Get(a)
}

// Read performs a transactional load of the word at a.
//
// In ModeHTM the line is tracked in the read set (consuming TMCAM
// capacity); in ModeROT the load is untracked and capacity-free but, like
// any load, dooms a concurrent transactional writer of the line. While
// suspended, the load is executed non-transactionally.
func (tx *Tx) Read(a memsim.Addr) uint64 {
	tx.checkDoomed()
	if tx.suspended {
		return tx.th.m.plainLoad(a)
	}
	m := tx.th.m
	line := memsim.LineOf(a)
	if tx.writeLines.Contains(line) {
		if v, ok := tx.bufferedRead(a); ok {
			return v // reads-own-writes (restriction R3 in the paper)
		}
		return m.heap.Load(a)
	}
	if tx.mode == ModeHTM {
		if !tx.readLines.Contains(line) {
			tx.trackRead(line)
		}
		// A live transaction holding the line in its read set cannot
		// coexist with a live writer (either registration dooms the
		// other), so the heap value is committed data.
		return m.heap.Load(a)
	}
	// ROT read: optionally sample some reads into the TMCAM, modelling
	// the paper's footnote that ROTs may track a small fraction of reads.
	if every := m.cfg.ROTReadTrackEvery; every > 0 {
		tx.rotReads++
		if tx.rotReads%every == 0 && !tx.readLines.Contains(line) {
			tx.trackRead(line)
			return m.heap.Load(a)
		}
	}
	m.conflictRead(line, tx)
	return m.heap.Load(a)
}

// trackRead registers tx as a reader of line, dooming any live writer
// (last reader kills previous writer) and charging one TMCAM entry.
func (tx *Tx) trackRead(line memsim.Line) {
	m := tx.th.m
	s := m.shardOf(line)
	for {
		s.mu.Lock()
		e := s.entry(line)
		if w := e.writer; w != nil && w != tx && !w.doom(CodeTxConflict) && w.isLive() {
			// Committing writer: wait for its write-back to drain.
			s.maybeRelease(line, e)
			s.mu.Unlock()
			tx.checkDoomed()
			runtime.Gosched()
			continue
		}
		if !m.charge(tx.th.core, 1) {
			s.maybeRelease(line, e)
			s.mu.Unlock()
			tx.abort(CodeCapacity)
		}
		e.readers = append(e.readers, tx)
		s.readers.Add(1)
		tx.readLines.Add(line)
		tx.charged++
		s.mu.Unlock()
		return
	}
}

// Write performs a transactional store of v to the word at a. The store
// is buffered and invisible to other threads until Commit. While
// suspended, the store is executed non-transactionally (and is then
// immediately visible).
func (tx *Tx) Write(a memsim.Addr, v uint64) {
	tx.checkDoomed()
	if tx.suspended {
		tx.th.m.plainStore(a, v)
		return
	}
	line := memsim.LineOf(a)
	if !tx.writeLines.Contains(line) {
		tx.claimWrite(line)
	}
	tx.writes.Put(a, v)
}

// claimWrite takes exclusive transactional ownership of line: it kills
// tracked readers of the line (invalidation), self-aborts if another live
// writer holds it ("the last writer is killed", §2.2) and charges TMCAM
// capacity unless the line was already tracked by this transaction's
// read set (a read→write upgrade reuses the entry).
func (tx *Tx) claimWrite(line memsim.Line) {
	m := tx.th.m
	s := m.shardOf(line)
	s.mu.Lock()
	e := s.entry(line)
	if w := e.writer; w != nil && w != tx && w.isLive() {
		s.mu.Unlock()
		tx.abort(CodeTxConflict)
	}
	needCharge := !tx.readLines.Contains(line)
	if needCharge && !m.charge(tx.th.core, 1) {
		if e.writer == nil {
			s.maybeRelease(line, e)
		}
		s.mu.Unlock()
		tx.abort(CodeCapacity)
	}
	for _, r := range e.readers {
		if r != tx {
			r.doom(CodeTxConflict)
		}
	}
	if e.writer == nil {
		s.writers.Add(1)
	}
	e.writer = tx
	tx.writeLines.Add(line)
	if needCharge {
		tx.charged++
	}
	s.mu.Unlock()
}

// Suspend pauses transactional tracking: until Resume, the transaction's
// own accesses execute non-transactionally. Conflicts that doom the
// transaction while suspended take effect at Resume (§2.2).
func (tx *Tx) Suspend() {
	if tx.suspended {
		panic("htm: Suspend on already-suspended transaction")
	}
	if s := tx.status.Load(); s != statusActive && !isDoomedStatus(s) {
		panic("htm: Suspend outside an active transaction")
	}
	tx.suspended = true
}

// Resume ends a suspension, delivering any doom that arrived meanwhile.
func (tx *Tx) Resume() {
	if !tx.suspended {
		panic("htm: Resume on non-suspended transaction")
	}
	tx.suspended = false
	tx.checkDoomed()
}

// AbortExplicit aborts the transaction programmatically (tabort.),
// unwinding with *Abort carrying CodeExplicit.
func (tx *Tx) AbortExplicit() {
	tx.checkDoomed()
	tx.abort(CodeExplicit)
}

// Commit atomically publishes the transaction's write set and ends the
// transaction (tend.). Once Commit begins, the transaction can no longer
// be doomed; the whole write set becomes visible before Commit returns,
// with no torn intermediate state observable by any simulated access.
func (tx *Tx) Commit() {
	if tx.suspended {
		panic("htm: Commit while suspended; Resume first")
	}
	m := tx.th.m
	// With a commit hook installed, advertise the in-flight commit on the
	// core-local counter before the point of no return, so QuiesceCommits
	// observes every commit that can still publish (see hook.go).
	hooked := m.hook != nil
	if hooked {
		m.cores[tx.th.core].committing.Add(1)
	}
	if !tx.status.CompareAndSwap(statusActive, statusCommitting) {
		if hooked {
			m.cores[tx.th.core].committing.Add(-1)
		}
		tx.abortNow()
	}
	if tx.writes.Len() > 0 {
		// Lock every shard covering the write set, in index order, so the
		// write-back is atomic with respect to all directory-checking
		// accesses. Marking shard indices in the pooled bitmap and then
		// sweeping it ascending yields the sorted, deduplicated lock
		// order without sorting or allocating; each bitmap word is
		// cleared as it is consumed, so the scratch is clean for the next
		// transaction no matter what.
		marks := tx.shardMarks
		if len(marks) == 0 {
			marks = make([]uint64, (len(m.shards)+63)/64)
			tx.shardMarks = marks
		}
		order := tx.shardOrder[:0]
		for _, line := range tx.writeLines.Lines() {
			i := m.shardIndexOf(line)
			marks[i>>6] |= 1 << (uint(i) & 63)
		}
		for w, word := range marks {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				order = append(order, int32(w<<6+b))
			}
			marks[w] = 0
		}
		for _, i := range order {
			m.shards[i].mu.Lock()
		}
		// The commit hook brackets the write-back inside the shard-locked
		// section: a conflicting later transaction cannot reach its own
		// PreCommit until these locks are released, so sequence numbers
		// drawn in PreCommit respect the hardware serialization order.
		if h := m.hook; h != nil {
			h.PreCommit(tx.th.id, tx.writes.Entries())
		}
		for _, e := range tx.writes.Entries() {
			m.heap.Store(e.Addr, e.Val)
		}
		if h := m.hook; h != nil {
			h.PostCommit(tx.th.id)
		}
		for _, line := range tx.writeLines.Lines() {
			s := m.shardOf(line)
			if e, ok := s.lines[line]; ok {
				if e.writer == tx {
					e.writer = nil
					s.writers.Add(-1)
				}
				s.removeReader(e, tx)
				s.maybeRelease(line, e)
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			m.shards[order[i]].mu.Unlock()
		}
		tx.shardOrder = order
	}
	for _, line := range tx.readLines.Lines() {
		if tx.writeLines.Contains(line) {
			continue
		}
		s := m.shardOf(line)
		s.mu.Lock()
		if e, ok := s.lines[line]; ok {
			s.removeReader(e, tx)
			s.maybeRelease(line, e)
		}
		s.mu.Unlock()
	}
	m.uncharge(tx.th.core, tx.charged)
	tx.charged = 0
	tx.resetFootprint()
	tx.status.Store(statusCommitted)
	if hooked {
		m.cores[tx.th.core].committing.Add(-1)
	}
}
