package htm

import (
	"runtime"
	"sort"
	"sync/atomic"

	"sihtm/internal/memsim"
)

// Mode selects the transaction flavour offered by P8-HTM.
type Mode int

const (
	// ModeHTM is a regular transaction: reads and writes are tracked and
	// both consume TMCAM capacity.
	ModeHTM Mode = iota
	// ModeROT is a rollback-only transaction: only writes are tracked;
	// reads behave like plain loads (§2.2).
	ModeROT
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeROT {
		return "ROT"
	}
	return "HTM"
}

// Transaction status encoding. Doomed states carry the abort code.
const (
	statusIdle int32 = iota
	statusActive
	statusCommitting
	statusCommitted
	statusAborted
	statusDoomedBase int32 = 0x100
)

func doomedStatus(code AbortCode) int32 { return statusDoomedBase + int32(code) }
func isDoomedStatus(s int32) bool       { return s >= statusDoomedBase }
func codeOfStatus(s int32) AbortCode    { return AbortCode(s - statusDoomedBase) }

type writeEntry struct {
	addr memsim.Addr
	val  uint64
}

// Tx is one hardware transaction. A Tx is obtained from Thread.Begin and
// driven by the owning goroutine; conflicting peers may asynchronously
// doom it, and the doom is delivered — as a panic carrying *Abort — at
// the transaction's next operation, mirroring asynchronous hardware
// abort delivery.
type Tx struct {
	th        *Thread
	mode      Mode
	status    atomic.Int32
	suspended bool

	writes     []writeEntry  // buffered stores, invisible until commit
	writeLines []memsim.Line // distinct lines in the write set
	readLines  []memsim.Line // distinct tracked read lines
	charged    int64         // TMCAM lines charged on the core
	rotReads   int           // ROT reads seen, for the sampling knob

	shardScratch []int // reused by commit's ordered lock acquisition
}

// Mode returns the transaction's flavour.
func (tx *Tx) Mode() Mode { return tx.mode }

// Thread returns the hardware thread running the transaction.
func (tx *Tx) Thread() *Thread { return tx.th }

// Suspended reports whether the transaction is currently suspended.
func (tx *Tx) Suspended() bool { return tx.suspended }

// Doomed reports (without delivering) whether the transaction has been
// killed by a conflicting access. Spin loops — such as SI-HTM's safety
// wait — poll this to abandon a wait that can no longer succeed.
func (tx *Tx) Doomed() bool { return isDoomedStatus(tx.status.Load()) }

// Poll delivers a pending doom, unwinding with *Abort if the transaction
// has been killed. Software layers call it inside wait loops so a doomed
// transaction stops spinning promptly, mirroring the asynchronous abort
// delivery of the hardware.
func (tx *Tx) Poll() { tx.checkDoomed() }

// Kill requests the abort of this transaction from another thread, as the
// paper's §6 "killing alternative" envisions (a completed transaction
// killing laggards that delay its quiescence). It reports whether the
// kill landed; it fails if the transaction is already dead or committing.
// The victim observes the abort at its next transactional operation.
func (tx *Tx) Kill() bool { return tx.doom(CodeExplicit) }

// WriteSetLines returns the number of distinct cache lines written.
func (tx *Tx) WriteSetLines() int { return len(tx.writeLines) }

// ReadSetLines returns the number of distinct cache lines tracked as read.
func (tx *Tx) ReadSetLines() int { return len(tx.readLines) }

func (tx *Tx) isLive() bool {
	s := tx.status.Load()
	return s == statusActive || s == statusCommitting
}

// doom attempts to kill the transaction with the given cause, reporting
// whether this call performed the kill. It fails if the transaction is
// already dead or has entered its commit (hardware commit is atomic and
// cannot be interrupted).
func (tx *Tx) doom(code AbortCode) bool {
	return tx.status.CompareAndSwap(statusActive, doomedStatus(code))
}

// checkDoomed delivers a pending doom, unwinding with *Abort.
func (tx *Tx) checkDoomed() {
	if isDoomedStatus(tx.status.Load()) {
		tx.abortNow()
	}
}

// abort self-kills with the given cause and unwinds.
func (tx *Tx) abort(code AbortCode) {
	tx.status.CompareAndSwap(statusActive, doomedStatus(code))
	tx.abortNow()
}

// abortNow cleans up a doomed transaction and unwinds with *Abort.
func (tx *Tx) abortNow() {
	st := tx.status.Load()
	code := CodeExplicit
	if isDoomedStatus(st) {
		code = codeOfStatus(st)
	}
	tx.cleanup()
	tx.status.Store(statusAborted)
	panic(&Abort{Code: code})
}

// forceAbortQuiet kills and cleans up a live transaction without
// unwinding. It is used when a non-abort panic (a caller bug) escapes a
// transaction body, so the machine is not left with a zombie entry.
func (tx *Tx) forceAbortQuiet() {
	if !tx.isLive() {
		return
	}
	tx.status.CompareAndSwap(statusActive, doomedStatus(CodeExplicit))
	if tx.status.Load() == statusCommitting {
		return // commit already in-flight; it will finish on its own
	}
	tx.cleanup()
	tx.status.Store(statusAborted)
}

// cleanup withdraws the transaction from the directory, releases its
// TMCAM charge and discards buffered writes. Buffered stores were never
// visible, so rollback is purely local.
func (tx *Tx) cleanup() {
	m := tx.th.m
	for _, line := range tx.writeLines {
		s := m.shardOf(line)
		s.mu.Lock()
		if e, ok := s.lines[line]; ok {
			if e.writer == tx {
				e.writer = nil
				s.writers.Add(-1)
			}
			s.removeReader(e, tx) // read-then-write upgrades register both
			s.maybeRelease(line, e)
		}
		s.mu.Unlock()
	}
	for _, line := range tx.readLines {
		if tx.lineWritten(line) {
			continue // already handled above
		}
		s := m.shardOf(line)
		s.mu.Lock()
		if e, ok := s.lines[line]; ok {
			s.removeReader(e, tx)
			s.maybeRelease(line, e)
		}
		s.mu.Unlock()
	}
	m.uncharge(tx.th.core, tx.charged)
	tx.charged = 0
	tx.writes = tx.writes[:0]
	tx.writeLines = tx.writeLines[:0]
	tx.readLines = tx.readLines[:0]
	tx.rotReads = 0
}

func (tx *Tx) lineWritten(line memsim.Line) bool {
	for _, l := range tx.writeLines {
		if l == line {
			return true
		}
	}
	return false
}

func (tx *Tx) lineRead(line memsim.Line) bool {
	for _, l := range tx.readLines {
		if l == line {
			return true
		}
	}
	return false
}

// bufferedRead returns the transaction's own buffered value for addr.
func (tx *Tx) bufferedRead(a memsim.Addr) (uint64, bool) {
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].addr == a {
			return tx.writes[i].val, true
		}
	}
	return 0, false
}

// Read performs a transactional load of the word at a.
//
// In ModeHTM the line is tracked in the read set (consuming TMCAM
// capacity); in ModeROT the load is untracked and capacity-free but, like
// any load, dooms a concurrent transactional writer of the line. While
// suspended, the load is executed non-transactionally.
func (tx *Tx) Read(a memsim.Addr) uint64 {
	tx.checkDoomed()
	if tx.suspended {
		return tx.th.m.plainLoad(a)
	}
	m := tx.th.m
	line := memsim.LineOf(a)
	if tx.lineWritten(line) {
		if v, ok := tx.bufferedRead(a); ok {
			return v // reads-own-writes (restriction R3 in the paper)
		}
		return m.heap.Load(a)
	}
	if tx.mode == ModeHTM {
		if !tx.lineRead(line) {
			tx.trackRead(line)
		}
		// A live transaction holding the line in its read set cannot
		// coexist with a live writer (either registration dooms the
		// other), so the heap value is committed data.
		return m.heap.Load(a)
	}
	// ROT read: optionally sample some reads into the TMCAM, modelling
	// the paper's footnote that ROTs may track a small fraction of reads.
	if every := m.cfg.ROTReadTrackEvery; every > 0 {
		tx.rotReads++
		if tx.rotReads%every == 0 && !tx.lineRead(line) {
			tx.trackRead(line)
			return m.heap.Load(a)
		}
	}
	m.conflictRead(line, tx)
	return m.heap.Load(a)
}

// trackRead registers tx as a reader of line, dooming any live writer
// (last reader kills previous writer) and charging one TMCAM entry.
func (tx *Tx) trackRead(line memsim.Line) {
	m := tx.th.m
	s := m.shardOf(line)
	for {
		s.mu.Lock()
		e := s.entry(line)
		if w := e.writer; w != nil && w != tx && !w.doom(CodeTxConflict) && w.isLive() {
			// Committing writer: wait for its write-back to drain.
			s.maybeRelease(line, e)
			s.mu.Unlock()
			tx.checkDoomed()
			runtime.Gosched()
			continue
		}
		if !m.charge(tx.th.core, 1) {
			s.maybeRelease(line, e)
			s.mu.Unlock()
			tx.abort(CodeCapacity)
		}
		e.readers = append(e.readers, tx)
		s.readers.Add(1)
		tx.readLines = append(tx.readLines, line)
		tx.charged++
		s.mu.Unlock()
		return
	}
}

// Write performs a transactional store of v to the word at a. The store
// is buffered and invisible to other threads until Commit. While
// suspended, the store is executed non-transactionally (and is then
// immediately visible).
func (tx *Tx) Write(a memsim.Addr, v uint64) {
	tx.checkDoomed()
	if tx.suspended {
		tx.th.m.plainStore(a, v)
		return
	}
	line := memsim.LineOf(a)
	if !tx.lineWritten(line) {
		tx.claimWrite(line)
	}
	for i := range tx.writes {
		if tx.writes[i].addr == a {
			tx.writes[i].val = v
			return
		}
	}
	tx.writes = append(tx.writes, writeEntry{addr: a, val: v})
}

// claimWrite takes exclusive transactional ownership of line: it kills
// tracked readers of the line (invalidation), self-aborts if another live
// writer holds it ("the last writer is killed", §2.2) and charges TMCAM
// capacity unless the line was already tracked by this transaction's
// read set (a read→write upgrade reuses the entry).
func (tx *Tx) claimWrite(line memsim.Line) {
	m := tx.th.m
	s := m.shardOf(line)
	s.mu.Lock()
	e := s.entry(line)
	if w := e.writer; w != nil && w != tx && w.isLive() {
		s.mu.Unlock()
		tx.abort(CodeTxConflict)
	}
	needCharge := !tx.lineRead(line)
	if needCharge && !m.charge(tx.th.core, 1) {
		if e.writer == nil {
			s.maybeRelease(line, e)
		}
		s.mu.Unlock()
		tx.abort(CodeCapacity)
	}
	for _, r := range e.readers {
		if r != tx {
			r.doom(CodeTxConflict)
		}
	}
	if e.writer == nil {
		s.writers.Add(1)
	}
	e.writer = tx
	tx.writeLines = append(tx.writeLines, line)
	if needCharge {
		tx.charged++
	}
	s.mu.Unlock()
}

// Suspend pauses transactional tracking: until Resume, the transaction's
// own accesses execute non-transactionally. Conflicts that doom the
// transaction while suspended take effect at Resume (§2.2).
func (tx *Tx) Suspend() {
	if tx.suspended {
		panic("htm: Suspend on already-suspended transaction")
	}
	if s := tx.status.Load(); s != statusActive && !isDoomedStatus(s) {
		panic("htm: Suspend outside an active transaction")
	}
	tx.suspended = true
}

// Resume ends a suspension, delivering any doom that arrived meanwhile.
func (tx *Tx) Resume() {
	if !tx.suspended {
		panic("htm: Resume on non-suspended transaction")
	}
	tx.suspended = false
	tx.checkDoomed()
}

// AbortExplicit aborts the transaction programmatically (tabort.),
// unwinding with *Abort carrying CodeExplicit.
func (tx *Tx) AbortExplicit() {
	tx.checkDoomed()
	tx.abort(CodeExplicit)
}

// Commit atomically publishes the transaction's write set and ends the
// transaction (tend.). Once Commit begins, the transaction can no longer
// be doomed; the whole write set becomes visible before Commit returns,
// with no torn intermediate state observable by any simulated access.
func (tx *Tx) Commit() {
	if tx.suspended {
		panic("htm: Commit while suspended; Resume first")
	}
	if !tx.status.CompareAndSwap(statusActive, statusCommitting) {
		tx.abortNow()
	}
	m := tx.th.m
	if len(tx.writes) > 0 {
		// Lock every shard covering the write set, in index order, so the
		// write-back is atomic with respect to all directory-checking
		// accesses.
		idx := tx.shardScratch[:0]
		for _, line := range tx.writeLines {
			idx = append(idx, m.shardIndexOf(line))
		}
		sort.Ints(idx)
		uniq := idx[:0]
		for i, v := range idx {
			if i == 0 || v != idx[i-1] {
				uniq = append(uniq, v)
			}
		}
		for _, i := range uniq {
			m.shards[i].mu.Lock()
		}
		for _, w := range tx.writes {
			m.heap.Store(w.addr, w.val)
		}
		for _, line := range tx.writeLines {
			s := m.shardOf(line)
			if e, ok := s.lines[line]; ok {
				if e.writer == tx {
					e.writer = nil
					s.writers.Add(-1)
				}
				s.removeReader(e, tx)
				s.maybeRelease(line, e)
			}
		}
		for i := len(uniq) - 1; i >= 0; i-- {
			m.shards[uniq[i]].mu.Unlock()
		}
		tx.shardScratch = idx[:0]
	}
	for _, line := range tx.readLines {
		if tx.lineWritten(line) {
			continue
		}
		s := m.shardOf(line)
		s.mu.Lock()
		if e, ok := s.lines[line]; ok {
			s.removeReader(e, tx)
			s.maybeRelease(line, e)
		}
		s.mu.Unlock()
	}
	m.uncharge(tx.th.core, tx.charged)
	tx.charged = 0
	tx.writes = tx.writes[:0]
	tx.writeLines = tx.writeLines[:0]
	tx.readLines = tx.readLines[:0]
	tx.rotReads = 0
	tx.status.Store(statusCommitted)
}
