// Package htm is a software simulator of the hardware transactional
// memory of the IBM POWER8/POWER9 processors ("P8-HTM" in the paper),
// faithful to the architectural contract that SI-HTM depends on:
//
//   - Conflict detection is eager, at 128-byte cache-line granularity,
//     with the 2PL-flavoured resolution the paper describes in §2.2: the
//     last transaction to read a line kills any previous transactional
//     writer of that line; on write-write conflicts the last writer is
//     killed.
//   - Capacity is bounded by the TMCAM, an 8 KB (64-line) per-core buffer
//     shared by all SMT threads co-located on a core. Every line tracked
//     by any live transaction on a core consumes one entry; overflowing
//     the shared budget aborts the requester with a capacity abort.
//   - Regular transactions (ModeHTM) track both reads and writes.
//     Rollback-only transactions (ModeROT) track only writes: ROT reads
//     behave like plain loads — they consume no capacity, they are
//     invisible to conflict detection as reads (so write-after-read is
//     tolerated, Fig. 2A), yet like any load they invalidate, i.e. doom,
//     a concurrent transactional writer of the same line (Fig. 2B).
//   - Transactional stores are buffered and invisible to other threads
//     until commit; commit applies the whole write set atomically.
//   - Suspend/resume: accesses made while a transaction is suspended are
//     plain, untracked accesses; conflicts that doom the transaction
//     while suspended take effect at resume.
//   - Aborts carry a cause — transactional conflict, non-transactional
//     conflict (a plain access, e.g. an SGL acquisition, killed the
//     transaction), capacity, or explicit — mirroring the POWER TEXASR
//     failure codes that the paper's evaluation discriminates.
//
// Abort delivery uses a typed panic (*Abort) that the transaction-runtime
// packages recover in their retry loops, mirroring how a real HTM abort
// transfers control to the tbegin. fallback path. The panic never crosses
// a public API boundary.
//
// What is deliberately not modelled: instruction-level timing, cache
// associativity, and the POWER9 L2 LVDIR read-tracking structure (the
// paper argues it is incompatible with SMT workloads and does not use it).
//
// Per-transaction footprint state (read/write line sets, the store
// buffer) lives in the O(1), pooled structures of internal/footprint,
// so the cost of a simulated access is independent of transaction size
// and a committed transaction allocates no heap memory in steady state
// — a property the hot-path benchmark suite (internal/hotbench,
// docs/performance.md) guards.
package htm
