package htm_test

import (
	"testing"

	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/topology"
)

// TestCommittedTxSteadyStateAllocs pins the whole simulated transaction
// path — Begin, tracked reads, buffered writes, Commit — at zero heap
// allocations per committed transaction once the thread's pooled
// footprint state is warm. This is the acceptance bar of the O(1)
// footprint-tracking work: the simulator must be able to run the
// paper's footprint sweeps without the Go allocator in the loop.
func TestCommittedTxSteadyStateAllocs(t *testing.T) {
	for _, mode := range []htm.Mode{htm.ModeHTM, htm.ModeROT} {
		t.Run(mode.String(), func(t *testing.T) {
			heap := memsim.NewHeapLines(256)
			m := htm.NewMachine(heap, htm.Config{Topology: topology.New(1, 1), TMCAMLines: 128})
			const lines = 24
			addrs := make([]memsim.Addr, lines)
			for i := range addrs {
				addrs[i] = heap.AllocLine()
			}
			th := m.Thread(0)
			body := func() {
				tx := th.Begin(mode)
				var sum uint64
				for _, a := range addrs {
					sum += tx.Read(a)
				}
				for _, a := range addrs {
					tx.Write(a, sum)
				}
				tx.Commit()
			}
			body() // warm up the pooled footprint state and directory pools
			if allocs := testing.AllocsPerRun(100, body); allocs != 0 {
				t.Fatalf("steady-state committed %s transaction allocates %.1f/op, want 0", mode, allocs)
			}
			if !m.DirectoryQuiescent() {
				t.Fatal("directory not quiescent after runs")
			}
		})
	}
}
