package htm

import (
	"runtime"

	"sihtm/internal/memsim"
)

// Thread is a simulated hardware thread, bound to a core by the machine
// topology. It issues plain (non-transactional) accesses and begins
// transactions. A Thread must be driven by one goroutine at a time.
type Thread struct {
	m    *Machine
	id   int
	core int
	tx   Tx
	_    [64]byte
}

// ID returns the hardware thread id.
func (t *Thread) ID() int { return t.id }

// Core returns the core this thread is pinned to.
func (t *Thread) Core() int { return t.core }

// Machine returns the owning machine.
func (t *Thread) Machine() *Machine { return t.m }

// Begin starts a transaction of the given mode on this thread and returns
// its handle. Transactions do not nest (P8-HTM flattens nesting; this
// simulator forbids it outright to surface bugs).
func (t *Thread) Begin(mode Mode) *Tx {
	if t.tx.isLive() {
		panic("htm: Begin inside a live transaction")
	}
	tx := &t.tx
	tx.th = t
	tx.mode = mode
	tx.suspended = false
	tx.resetFootprint()
	tx.charged = 0
	tx.status.Store(statusActive)
	return tx
}

// InTx reports whether the thread has a live transaction.
func (t *Thread) InTx() bool { return t.tx.isLive() }

// assertPlainContext panics if called with a live, unsuspended
// transaction: such accesses would be transactional on real hardware, so
// issuing them through the plain API is a bug in the caller.
func (t *Thread) assertPlainContext() {
	if t.tx.isLive() && !t.tx.suspended {
		panic("htm: plain access inside an unsuspended transaction")
	}
}

// Load performs a plain load. Like any load, it invalidates (dooms) a
// concurrent transactional writer of the line — this is the hardware
// lever behind both the SGL fall-back and SI-HTM's safety wait.
func (t *Thread) Load(a memsim.Addr) uint64 {
	t.assertPlainContext()
	return t.m.plainLoad(a)
}

// Store performs a plain store. It dooms any live transactional writer of
// the line and any transaction tracking the line in its read set (e.g.
// SGL subscribers).
func (t *Thread) Store(a memsim.Addr, v uint64) {
	t.assertPlainContext()
	t.m.plainStore(a, v)
}

// CompareAndSwap performs a plain atomic compare-and-swap on the word at
// a, with store conflict semantics (victims are doomed whether or not the
// swap succeeds, as the exclusive-ownership request alone invalidates).
func (t *Thread) CompareAndSwap(a memsim.Addr, old, new uint64) bool {
	t.assertPlainContext()
	t.m.conflictStore(memsim.LineOf(a))
	return t.m.heap.CompareAndSwap(a, old, new)
}

// plainLoad is a non-transactional load with conflict side effects.
func (m *Machine) plainLoad(a memsim.Addr) uint64 {
	m.conflictRead(memsim.LineOf(a), nil)
	return m.heap.Load(a)
}

// plainStore is a non-transactional store with conflict side effects.
func (m *Machine) plainStore(a memsim.Addr, v uint64) {
	m.conflictStore(memsim.LineOf(a))
	m.heap.Store(a, v)
}

// conflictStore performs the coherence action of a plain store: dooming
// the line's live writer and every transaction tracking the line as read.
// If the writer is mid-commit, the store waits for the write-back to
// drain (it would lose the exclusive-ownership race on real hardware).
func (m *Machine) conflictStore(line memsim.Line) {
	s := m.shardOf(line)
	for {
		// As in conflictRead, re-check the occupancy counters on every
		// iteration so a shard that drains while this store waits on a
		// committing writer never costs a mutex acquisition.
		if s.writers.Load() == 0 && s.readers.Load() == 0 {
			return
		}
		s.mu.Lock()
		e, ok := s.lines[line]
		if !ok {
			s.mu.Unlock()
			return
		}
		if w := e.writer; w != nil && !w.doom(CodeNonTxConflict) && w.isLive() {
			s.mu.Unlock()
			runtime.Gosched()
			continue
		}
		for _, r := range e.readers {
			r.doom(CodeNonTxConflict)
		}
		s.mu.Unlock()
		return
	}
}
