// Hot-path microbenchmarks: the software cost of one simulated
// transactional operation as a function of transaction footprint.
// These are thin testing.B views over internal/hotbench, which also
// backs `repro bench` and the BENCH_hotpath.json artifact; see
// docs/performance.md for how to read them.
//
// The file lives in the external test package so it can exercise the
// simulator through hotbench without an import cycle.
package htm_test

import (
	"testing"

	"sihtm/internal/hotbench"
)

func benchCases(b *testing.B, op string) {
	for _, c := range hotbench.CasesFor(op, hotbench.DefaultSweep) {
		b.Run(c.Sub(), func(b *testing.B) {
			run := c.Setup()
			run(1)
			b.ReportAllocs()
			b.ResetTimer()
			run(b.N)
		})
	}
}

// BenchmarkRead measures steady-state Tx.Read at footprints of 1→4096
// tracked lines, in both HTM and ROT modes.
func BenchmarkRead(b *testing.B) { benchCases(b, "read") }

// BenchmarkWrite measures steady-state Tx.Write with write sets of
// 1→4096 lines, in both HTM and ROT modes.
func BenchmarkWrite(b *testing.B) { benchCases(b, "write") }

// BenchmarkCommit measures a full Begin + N×Write + Commit transaction;
// ns/op grows with N by construction, allocs/op must stay at zero.
func BenchmarkCommit(b *testing.B) { benchCases(b, "commit") }
