package htm

import (
	"runtime"
	"sync"
	"sync/atomic"

	"sihtm/internal/memsim"
)

// The directory plays the role of the cache-coherence fabric: it knows,
// per cache line, which live transactions hold the line in their write
// set (at most one, exclusive) and which regular-mode transactions track
// it in their read set. Every simulated memory access consults the
// directory to detect conflicts exactly as a coherence snoop would.
//
// Each shard also keeps lock-free occupancy counters so that the
// overwhelmingly common case — accessing a line nobody tracks — skips the
// shard mutex entirely. This is what makes uninstrumented reads (ROT
// reads, read-only fast-path reads) nearly free, reproducing the paper's
// claim that SI-HTM adds no per-read software cost.

// lineEntry records the transactional owners of one cache line.
type lineEntry struct {
	writer  *Tx   // exclusive transactional writer, or nil
	readers []*Tx // regular-mode transactions tracking the line as read
}

// shard is one directory partition.
type shard struct {
	writers atomic.Int64 // entries in this shard with writer != nil
	readers atomic.Int64 // total tracked-reader registrations in this shard
	mu      sync.Mutex
	lines   map[memsim.Line]*lineEntry
	free    []*lineEntry // entry pool, guarded by mu
	_       [64]byte
}

// shardOf maps a line to its shard with a Fibonacci hash. The shift is
// precomputed in NewMachine; this is on every simulated access's path.
func (m *Machine) shardOf(line memsim.Line) *shard {
	return &m.shards[uint64(line)*0x9e3779b97f4a7c15>>m.shardShift]
}

// shardIndexOf returns the shard index for ordered multi-shard locking.
func (m *Machine) shardIndexOf(line memsim.Line) int {
	return int(uint64(line) * 0x9e3779b97f4a7c15 >> m.shardShift)
}

// entry returns the lineEntry for line, creating it if needed. Caller
// holds s.mu.
func (s *shard) entry(line memsim.Line) *lineEntry {
	if e, ok := s.lines[line]; ok {
		return e
	}
	var e *lineEntry
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		e = &lineEntry{}
	}
	s.lines[line] = e
	return e
}

// maybeRelease deletes the entry if it no longer tracks anyone. Caller
// holds s.mu.
func (s *shard) maybeRelease(line memsim.Line, e *lineEntry) {
	if e.writer == nil && len(e.readers) == 0 {
		delete(s.lines, line)
		e.readers = e.readers[:0]
		s.free = append(s.free, e)
	}
}

// removeReader unregisters tx from e.readers if present. Caller holds s.mu.
func (s *shard) removeReader(e *lineEntry, tx *Tx) {
	for i, r := range e.readers {
		if r == tx {
			last := len(e.readers) - 1
			e.readers[i] = e.readers[last]
			e.readers[last] = nil
			e.readers = e.readers[:last]
			s.readers.Add(-1)
			return
		}
	}
}

// conflictRead performs the coherence action of a load of line by
// requester (nil for a plain, non-transactional load): any live
// transactional writer of the line is doomed — "the last transaction to
// read onto some shared variable will kill the execution of any other
// previous writer transaction on that same variable" (§2.2). If the
// writer is already committing it can no longer be doomed; the load must
// wait for the commit to drain, like a load stalled behind the committing
// store queue. Returns with no locks held.
func (m *Machine) conflictRead(line memsim.Line, requester *Tx) {
	s := m.shardOf(line)
	for {
		// Re-check the lock-free occupancy count on every iteration, not
		// just on entry: while this load waits for a committing writer to
		// drain, the shard can empty out entirely, and a drained shard
		// must never cost a mutex acquisition.
		if s.writers.Load() == 0 {
			return
		}
		s.mu.Lock()
		e, ok := s.lines[line]
		if !ok || e.writer == nil || e.writer == requester {
			s.mu.Unlock()
			return
		}
		w := e.writer
		if w.doom(conflictCodeFor(requester)) {
			s.mu.Unlock()
			return
		}
		if !w.isLive() {
			// Doomed or already finished; its entry will be cleaned up by
			// its owner. Treat the line as free for reading.
			s.mu.Unlock()
			return
		}
		// Writer is committing: wait for write-back to finish so the load
		// observes the post-commit value, never a torn prefix.
		s.mu.Unlock()
		if requester != nil {
			requester.checkDoomed()
		}
		runtime.Gosched()
	}
}

// conflictCodeFor is the abort cause a victim records when killed by this
// requester: transactions kill with transactional conflicts, plain
// accesses with non-transactional conflicts.
func conflictCodeFor(requester *Tx) AbortCode {
	if requester != nil {
		return CodeTxConflict
	}
	return CodeNonTxConflict
}
