package htm

import "fmt"

// AbortCode identifies why a transaction aborted, mirroring the failure
// cause captured in the POWER TEXASR register.
type AbortCode int

const (
	// CodeTxConflict: a conflicting access by another transaction.
	CodeTxConflict AbortCode = iota
	// CodeNonTxConflict: a conflicting non-transactional access (plain
	// load/store, suspended-transaction access, or SGL acquisition).
	CodeNonTxConflict
	// CodeCapacity: the transaction overflowed the shared TMCAM budget.
	CodeCapacity
	// CodeExplicit: the program requested the abort (tabort.).
	CodeExplicit
)

// String implements fmt.Stringer.
func (c AbortCode) String() string {
	switch c {
	case CodeTxConflict:
		return "tx-conflict"
	case CodeNonTxConflict:
		return "non-tx-conflict"
	case CodeCapacity:
		return "capacity"
	case CodeExplicit:
		return "explicit"
	default:
		return fmt.Sprintf("AbortCode(%d)", int(c))
	}
}

// Abort is the abort notification delivered when a transaction fails. It
// is thrown as a panic from transactional operations and recovered by the
// runtime's retry loop (see Run); it also satisfies error for callers
// that surface it.
type Abort struct {
	// Code is the abort cause.
	Code AbortCode
}

// Error implements error.
func (a *Abort) Error() string { return "htm: transaction aborted: " + a.Code.String() }

// Run executes body inside transaction tx's dynamic extent and converts
// an abort panic into a returned *Abort. On normal return the transaction
// has committed. This is the bridge between the hardware-like control
// flow (aborts unwind to tbegin.) and Go control flow.
// The body must not call Commit itself; Run commits on normal return.
func Run(t *Thread, mode Mode, body func(tx *Tx)) (abort *Abort) {
	tx := t.Begin(mode)
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(*Abort); ok {
				abort = a
				return
			}
			tx.forceAbortQuiet() // caller bug: don't leak a zombie tx
			panic(r)
		}
	}()
	body(tx)
	tx.Commit()
	return nil
}
