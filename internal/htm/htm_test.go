package htm_test

import (
	"testing"

	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/topology"
)

// newMachine builds a small machine for tests: `cores` cores with `smt`
// SMT ways and a TMCAM of `tmcam` lines per core.
func newMachine(t testing.TB, cores, smt, tmcam int) *htm.Machine {
	t.Helper()
	heap := memsim.NewHeapLines(1 << 12)
	return htm.NewMachine(heap, htm.Config{
		Topology:   topology.New(cores, smt),
		TMCAMLines: tmcam,
	})
}

// tryTx runs f, converting an abort panic into a return value.
func tryTx(f func()) (abort *htm.Abort) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(*htm.Abort); ok {
				abort = a
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

// allocLines allocates n line-aligned lines and returns their first-word
// addresses.
func allocLines(m *htm.Machine, n int) []memsim.Addr {
	addrs := make([]memsim.Addr, n)
	for i := range addrs {
		addrs[i] = m.Heap().AllocLine()
	}
	return addrs
}

func checkQuiescent(t *testing.T, m *htm.Machine) {
	t.Helper()
	if !m.DirectoryQuiescent() {
		t.Fatal("directory not quiescent after all transactions finished")
	}
}

func TestCommitPublishesWrites(t *testing.T) {
	for _, mode := range []htm.Mode{htm.ModeHTM, htm.ModeROT} {
		m := newMachine(t, 2, 1, 64)
		a := m.Heap().AllocLine()
		th := m.Thread(0)
		if ab := htm.Run(th, mode, func(tx *htm.Tx) {
			tx.Write(a, 7)
			tx.Write(a+1, 8)
		}); ab != nil {
			t.Fatalf("%v: unexpected abort %v", mode, ab)
		}
		if got := th.Load(a); got != 7 {
			t.Fatalf("%v: word 0 = %d, want 7", mode, got)
		}
		if got := th.Load(a + 1); got != 8 {
			t.Fatalf("%v: word 1 = %d, want 8", mode, got)
		}
		checkQuiescent(t, m)
	}
}

func TestWritesInvisibleBeforeCommit(t *testing.T) {
	m := newMachine(t, 2, 1, 64)
	a := m.Heap().AllocLine()
	t0, t1 := m.Thread(0), m.Thread(1)
	m.Heap().Store(a, 100)

	tx := t0.Begin(htm.ModeROT)
	tx.Write(a, 200)
	// The store is buffered: another thread's plain load must see the old
	// value (and dooms the writer, which is the hardware contract).
	if got := t1.Load(a); got != 100 {
		t.Fatalf("uncommitted write visible: Load = %d, want 100", got)
	}
	if ab := tryTx(func() { tx.Commit() }); ab == nil {
		t.Fatal("writer survived an invalidating plain load")
	} else if ab.Code != htm.CodeNonTxConflict {
		t.Fatalf("abort code = %v, want non-tx-conflict", ab.Code)
	}
	if got := t1.Load(a); got != 100 {
		t.Fatalf("aborted write leaked: Load = %d, want 100", got)
	}
	checkQuiescent(t, m)
}

func TestExplicitAbortRollsBack(t *testing.T) {
	m := newMachine(t, 1, 1, 64)
	a := m.Heap().AllocLine()
	th := m.Thread(0)
	m.Heap().Store(a, 1)
	ab := tryTx(func() {
		tx := th.Begin(htm.ModeHTM)
		tx.Write(a, 2)
		tx.AbortExplicit()
	})
	if ab == nil || ab.Code != htm.CodeExplicit {
		t.Fatalf("abort = %v, want explicit", ab)
	}
	if got := th.Load(a); got != 1 {
		t.Fatalf("Load = %d, want 1 (rolled back)", got)
	}
	checkQuiescent(t, m)
}

func TestReadOwnWrites(t *testing.T) {
	for _, mode := range []htm.Mode{htm.ModeHTM, htm.ModeROT} {
		m := newMachine(t, 1, 1, 64)
		a := m.Heap().AllocLine()
		m.Heap().Store(a, 5)
		m.Heap().Store(a+1, 50)
		th := m.Thread(0)
		if ab := htm.Run(th, mode, func(tx *htm.Tx) {
			if got := tx.Read(a); got != 5 {
				t.Fatalf("%v: pre-write read = %d, want 5", mode, got)
			}
			tx.Write(a, 6)
			if got := tx.Read(a); got != 6 {
				t.Fatalf("%v: read-own-write = %d, want 6", mode, got)
			}
			// A word on a written line but not itself written still reads
			// the committed value.
			if got := tx.Read(a + 1); got != 50 {
				t.Fatalf("%v: sibling word = %d, want 50", mode, got)
			}
			tx.Write(a, 7) // overwrite in place
			if got := tx.Read(a); got != 7 {
				t.Fatalf("%v: second own write = %d, want 7", mode, got)
			}
		}); ab != nil {
			t.Fatalf("%v: unexpected abort %v", mode, ab)
		}
		if got := th.Load(a); got != 7 {
			t.Fatalf("%v: committed = %d, want 7", mode, got)
		}
		checkQuiescent(t, m)
	}
}

func TestRunCommitsAndReportsAborts(t *testing.T) {
	m := newMachine(t, 1, 1, 64)
	a := m.Heap().AllocLine()
	th := m.Thread(0)
	if ab := htm.Run(th, htm.ModeHTM, func(tx *htm.Tx) { tx.Write(a, 9) }); ab != nil {
		t.Fatalf("unexpected abort: %v", ab)
	}
	if th.Load(a) != 9 {
		t.Fatal("Run did not commit")
	}
	ab := htm.Run(th, htm.ModeHTM, func(tx *htm.Tx) { tx.AbortExplicit() })
	if ab == nil || ab.Code != htm.CodeExplicit {
		t.Fatalf("Run abort = %v, want explicit", ab)
	}
	checkQuiescent(t, m)
}

func TestRunReleasesStateOnForeignPanic(t *testing.T) {
	m := newMachine(t, 1, 1, 64)
	a := m.Heap().AllocLine()
	th := m.Thread(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("foreign panic swallowed")
			}
		}()
		htm.Run(th, htm.ModeHTM, func(tx *htm.Tx) {
			tx.Write(a, 1)
			panic("caller bug")
		})
	}()
	checkQuiescent(t, m)
	// The thread must be reusable.
	if ab := htm.Run(th, htm.ModeHTM, func(tx *htm.Tx) { tx.Write(a, 2) }); ab != nil {
		t.Fatalf("thread unusable after foreign panic: %v", ab)
	}
	if th.Load(a) != 2 {
		t.Fatal("commit after foreign panic failed")
	}
}

func TestMisusePanics(t *testing.T) {
	m := newMachine(t, 1, 1, 64)
	a := m.Heap().AllocLine()
	th := m.Thread(0)

	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}

	tx := th.Begin(htm.ModeHTM)
	expectPanic("nested Begin", func() { th.Begin(htm.ModeROT) })
	expectPanic("plain Load in tx", func() { th.Load(a) })
	expectPanic("plain Store in tx", func() { th.Store(a, 1) })
	expectPanic("Resume when not suspended", func() { tx.Resume() })
	tx.Suspend()
	expectPanic("double Suspend", func() { tx.Suspend() })
	expectPanic("Commit while suspended", func() { tx.Commit() })
	tx.Resume()
	tx.Commit()

	expectPanic("thread id out of range", func() { m.Thread(99) })
	checkQuiescent(t, m)
}

func TestModeAccessors(t *testing.T) {
	m := newMachine(t, 1, 1, 64)
	th := m.Thread(0)
	tx := th.Begin(htm.ModeROT)
	if tx.Mode() != htm.ModeROT || tx.Mode().String() != "ROT" {
		t.Fatalf("Mode = %v", tx.Mode())
	}
	if tx.Thread() != th {
		t.Fatal("Thread() mismatch")
	}
	if !th.InTx() {
		t.Fatal("InTx() = false during transaction")
	}
	if tx.Suspended() {
		t.Fatal("Suspended() = true before Suspend")
	}
	tx.Suspend()
	if !tx.Suspended() {
		t.Fatal("Suspended() = false after Suspend")
	}
	tx.Resume()
	tx.Commit()
	if th.InTx() {
		t.Fatal("InTx() = true after commit")
	}
	if htm.ModeHTM.String() != "HTM" {
		t.Fatal("ModeHTM.String() wrong")
	}
}

func TestAbortCodeStrings(t *testing.T) {
	want := map[htm.AbortCode]string{
		htm.CodeTxConflict:    "tx-conflict",
		htm.CodeNonTxConflict: "non-tx-conflict",
		htm.CodeCapacity:      "capacity",
		htm.CodeExplicit:      "explicit",
	}
	for code, s := range want {
		if code.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(code), code.String(), s)
		}
	}
	ab := &htm.Abort{Code: htm.CodeCapacity}
	if ab.Error() != "htm: transaction aborted: capacity" {
		t.Errorf("Error() = %q", ab.Error())
	}
}

func TestCompareAndSwapPlain(t *testing.T) {
	m := newMachine(t, 1, 1, 64)
	a := m.Heap().AllocLine()
	th := m.Thread(0)
	if !th.CompareAndSwap(a, 0, 42) {
		t.Fatal("CAS(0→42) failed on fresh word")
	}
	if th.CompareAndSwap(a, 0, 43) {
		t.Fatal("CAS(0→43) succeeded against value 42")
	}
	if th.Load(a) != 42 {
		t.Fatalf("Load = %d, want 42", th.Load(a))
	}
}

func TestCASDoomsSubscribers(t *testing.T) {
	m := newMachine(t, 2, 1, 64)
	lock := m.Heap().AllocLine()
	t0, t1 := m.Thread(0), m.Thread(1)

	tx := t0.Begin(htm.ModeHTM)
	if got := tx.Read(lock); got != 0 { // subscribe to the lock word
		t.Fatalf("lock subscription read = %d, want 0", got)
	}
	if !t1.CompareAndSwap(lock, 0, 1) { // SGL acquisition
		t.Fatal("lock CAS failed")
	}
	ab := tryTx(func() { tx.Read(lock + 1) })
	if ab == nil || ab.Code != htm.CodeNonTxConflict {
		t.Fatalf("subscriber abort = %v, want non-tx-conflict", ab)
	}
	checkQuiescent(t, m)
}
