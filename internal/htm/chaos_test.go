package htm_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/topology"
)

// Failure injection: a chaos goroutine asynchronously kills random live
// transactions (the Kill API the §6 killing policy uses) while workers
// run read-modify-write transactions with retry. No kill may corrupt
// memory, leak TMCAM charge, or leave directory state behind.
func TestChaosKillsNeverCorrupt(t *testing.T) {
	const workers = 3
	const perWorker = 2000
	heap := memsim.NewHeapLines(1 << 8)
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(workers, 1)})
	x := heap.AllocLine()
	y := heap.AllocLine()

	// Workers publish their current transaction for the chaos goroutine.
	var live [workers]atomic.Pointer[htm.Tx]
	var stop atomic.Bool
	var kills atomic.Uint64

	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for i := 0; !stop.Load(); i++ {
			if tx := live[i%workers].Load(); tx != nil {
				if tx.Kill() {
					kills.Add(1)
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := m.Thread(id)
			for i := 0; i < perWorker; i++ {
				for {
					done := false
					tx := th.Begin(htm.ModeHTM)
					live[id].Store(tx)
					ab := tryTx(func() {
						v := tx.Read(x)
						tx.Write(x, v+1)
						tx.Write(y, tx.Read(y)+1)
						tx.Commit()
						done = true
					})
					live[id].Store(nil)
					if ab == nil && done {
						break
					}
				}
			}
		}(id)
	}
	wg.Wait()
	stop.Store(true)
	chaosWG.Wait()

	want := uint64(workers * perWorker)
	if got := m.Thread(0).Load(x); got != want {
		t.Fatalf("x = %d, want %d (kill corrupted an increment)", got, want)
	}
	if got := m.Thread(0).Load(y); got != want {
		t.Fatalf("y = %d, want %d", got, want)
	}
	if kills.Load() == 0 {
		t.Log("warning: chaos goroutine landed no kills; scheduling too coarse")
	}
	checkQuiescent(t, m)
}
