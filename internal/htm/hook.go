package htm

import "sihtm/internal/footprint"

// CommitHook intercepts the publication of every committed transaction
// that has a non-empty write set — the seam the durability subsystem
// (internal/durable) plugs into so that any TM backend built on this
// machine becomes persistent without knowing about log files.
//
// The machine brackets the write-back of a committing transaction with
// the two calls:
//
//	hook.PreCommit(thread, entries) // capture the redo record
//	<write set becomes visible in the heap>
//	hook.PostCommit(thread)         // publication finished
//
// Both calls happen inside the transaction's commit critical section
// (all directory shards covering the write set are locked), which gives
// the hook the ordering guarantee redo logging needs: if two
// transactions conflict, the later one cannot enter PreCommit before
// the earlier one's commit section — including its PreCommit — has
// completed. A sequence number drawn inside PreCommit therefore orders
// conflicting transactions exactly as the hardware serialized them;
// non-conflicting transactions may interleave freely, and any replay
// order among them is equivalent.
//
// entries aliases the transaction's pooled write buffer: it is valid
// only for the duration of the PreCommit call and must be copied out
// (or encoded) before returning. Implementations must not allocate on
// the steady-state path — the machine's zero-allocation commit pin
// covers the hooked path too — and must not issue transactional or
// plain heap accesses (the caller holds directory shard locks).
//
// Software systems with non-hardware publication paths (the SGL
// fall-back of SI-HTM/HTM/P8TM, the all-serial SGL system, Silo's OCC
// install) route those paths through the same interface — see
// tm.Recorder and each system's SetCommitHook.
type CommitHook interface {
	// PreCommit captures the write set of the committing transaction on
	// the given hardware thread. Called before any of the writes are
	// visible in the heap.
	PreCommit(thread int, entries []footprint.Entry)
	// PostCommit marks the end of the publication: every write passed
	// to the preceding PreCommit on this thread is now visible.
	PostCommit(thread int)
}

// SetCommitHook installs the machine-wide commit hook. It must be
// called while the machine is quiescent (no live transactions) — in
// practice, before workers start; the field is read without
// synchronization on the commit hot path. A nil hook (the default)
// disables interception.
func (m *Machine) SetCommitHook(h CommitHook) { m.hook = h }

// CommitHookInstalled reports whether a commit hook is set (tests and
// introspection).
func (m *Machine) CommitHookInstalled() bool { return m.hook != nil }
