package htm

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	"sihtm/internal/memsim"
	"sihtm/internal/topology"
)

// DefaultTMCAMLines is the paper's TMCAM: 8 KB of 128-byte lines.
const DefaultTMCAMLines = 64

// DefaultShards is the default size of the conflict-detection directory's
// shard table.
const DefaultShards = 1024

// Config parameterises a simulated machine.
type Config struct {
	// Topology is the core/SMT layout. Zero value means the paper's
	// 10-core SMT-8 POWER8.
	Topology topology.Topology
	// TMCAMLines is the per-core transactional buffer capacity in cache
	// lines, shared by the core's SMT threads. 0 means DefaultTMCAMLines.
	TMCAMLines int
	// Shards is the number of directory shards (rounded up to a power of
	// two). 0 means DefaultShards.
	Shards int
	// ROTReadTrackEvery models the footnote in §3: "due to
	// implementation-specific reasons, the TMCAM can also track a small
	// fraction of reads in a ROT". If > 0, every n-th distinct line read
	// by a ROT is tracked (and charged) as if it were a regular
	// transactional read. 0 (the default) disables the effect.
	ROTReadTrackEvery int
}

func (c Config) withDefaults() Config {
	if c.Topology == (topology.Topology{}) {
		c.Topology = topology.Paper()
	}
	if c.TMCAMLines == 0 {
		c.TMCAMLines = DefaultTMCAMLines
	}
	if c.Shards == 0 {
		c.Shards = DefaultShards
	}
	if c.Shards&(c.Shards-1) != 0 { // round up to power of two
		n := 1
		for n < c.Shards {
			n <<= 1
		}
		c.Shards = n
	}
	return c
}

// coreState is the per-core TMCAM occupancy counter, padded so cores do
// not false-share.
type coreState struct {
	used atomic.Int64 // tracked lines by all live transactions on this core
	// committing counts this core's in-flight hardware commits. It is
	// maintained only while a commit hook is installed: hooked fall-back
	// paths use QuiesceCommits to order their redo records after every
	// commit that raced their lock acquisition.
	committing atomic.Int64
	_          [112]byte
}

// Machine is a simulated POWER8/9 multicore with HTM. It owns the
// conflict-detection directory and the per-core TMCAM accounting, and
// hands out Thread handles bound to hardware threads.
type Machine struct {
	cfg     Config
	heap    *memsim.Heap
	cores   []coreState
	shards  []shard
	threads []Thread

	// hook, when non-nil, brackets every committed write set's
	// publication (see CommitHook). Set before workers start; read
	// unsynchronized on the commit hot path.
	hook CommitHook

	// shardShift maps a line hash to its shard index (64 - log2(shards)),
	// precomputed once here so the per-access shardOf/shardIndexOf never
	// recompute the shard-table geometry.
	shardShift uint
}

// NewMachine builds a machine over the given heap.
func NewMachine(heap *memsim.Heap, cfg Config) *Machine {
	if heap == nil {
		panic("htm: NewMachine requires a heap")
	}
	cfg = cfg.withDefaults()
	m := &Machine{
		cfg:        cfg,
		heap:       heap,
		cores:      make([]coreState, cfg.Topology.Cores()),
		shards:     make([]shard, cfg.Shards),
		shardShift: uint(64 - bits.TrailingZeros(uint(cfg.Shards))),
	}
	for i := range m.shards {
		m.shards[i].lines = make(map[memsim.Line]*lineEntry)
	}
	m.threads = make([]Thread, cfg.Topology.MaxThreads())
	for i := range m.threads {
		core, _ := cfg.Topology.Place(i)
		m.threads[i] = Thread{m: m, id: i, core: core}
	}
	return m
}

// Heap returns the machine's memory.
func (m *Machine) Heap() *memsim.Heap { return m.heap }

// Topology returns the machine's core/SMT layout.
func (m *Machine) Topology() topology.Topology { return m.cfg.Topology }

// TMCAMLines returns the per-core transactional buffer capacity.
func (m *Machine) TMCAMLines() int { return m.cfg.TMCAMLines }

// Thread returns the handle for hardware thread id (see topology.Place
// for the id → core mapping). The returned pointer is stable and must be
// used by at most one goroutine at a time.
func (m *Machine) Thread(id int) *Thread {
	if id < 0 || id >= len(m.threads) {
		panic(fmt.Sprintf("htm: thread id %d out of range [0,%d)", id, len(m.threads)))
	}
	return &m.threads[id]
}

// CoreUsage reports the TMCAM lines currently charged on a core. Intended
// for tests and introspection.
func (m *Machine) CoreUsage(core int) int {
	return int(m.cores[core].used.Load())
}

// DirectoryQuiescent reports whether the conflict-detection directory has
// no registrations and no TMCAM charge anywhere — the expected state when
// no transaction is live. Intended for tests: a false result after all
// transactions finished indicates a bookkeeping leak.
func (m *Machine) DirectoryQuiescent() bool {
	for i := range m.cores {
		if m.cores[i].used.Load() != 0 {
			return false
		}
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		n := len(s.lines)
		w, r := s.writers.Load(), s.readers.Load()
		s.mu.Unlock()
		if n != 0 || w != 0 || r != 0 {
			return false
		}
	}
	return true
}

// QuiesceCommits blocks until no hardware commit is in flight anywhere
// on the machine. The in-flight counters are maintained only while a
// commit hook is installed; without one the wait returns immediately.
// The caller must guarantee no new commits can start (e.g. it holds the
// SGL and every active transaction is subscribed to it), otherwise the
// wait may not terminate.
func (m *Machine) QuiesceCommits() {
	for i := range m.cores {
		for m.cores[i].committing.Load() != 0 {
			runtime.Gosched()
		}
	}
}

// charge attempts to reserve n TMCAM lines on a core, reporting success.
func (m *Machine) charge(core int, n int64) bool {
	if m.cores[core].used.Add(n) > int64(m.cfg.TMCAMLines) {
		m.cores[core].used.Add(-n)
		return false
	}
	return true
}

// uncharge releases n TMCAM lines on a core.
func (m *Machine) uncharge(core int, n int64) {
	if n != 0 {
		m.cores[core].used.Add(-n)
	}
}
