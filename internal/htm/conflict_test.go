package htm_test

import (
	"testing"

	"sihtm/internal/htm"
)

// The tests in this file script the exact conflict scenarios of the
// paper's §2.2 (Figure 2) and §3.1 (Figure 3), driving two hardware
// threads from one goroutine so interleavings are deterministic.

// Figure 2, example A: a write-after-read conflict between two ROTs is
// tolerated — the reader's load is untracked, so the writer survives.
func TestROTWriteAfterReadTolerated(t *testing.T) {
	m := newMachine(t, 2, 1, 64)
	x := m.Heap().AllocLine()
	r0 := m.Thread(0).Begin(htm.ModeROT)
	r1 := m.Thread(1).Begin(htm.ModeROT)

	if got := r0.Read(x); got != 0 {
		t.Fatalf("r0 read = %d, want 0", got)
	}
	r1.Write(x, 1) // write-after-read: no conflict under ROTs
	if ab := tryTx(func() { r1.Commit() }); ab != nil {
		t.Fatalf("writer ROT aborted on WAR: %v", ab)
	}
	if ab := tryTx(func() { r0.Commit() }); ab != nil {
		t.Fatalf("reader ROT aborted on WAR: %v", ab)
	}
	checkQuiescent(t, m)
}

// Figure 2, example B: a read-after-write conflict causes the writer ROT
// to abort — the read invalidates the writer's TMCAM entry.
func TestROTReadAfterWriteKillsWriter(t *testing.T) {
	m := newMachine(t, 2, 1, 64)
	x := m.Heap().AllocLine()
	r0 := m.Thread(0).Begin(htm.ModeROT)
	r1 := m.Thread(1).Begin(htm.ModeROT)

	r0.Write(x, 1)
	if got := r1.Read(x); got != 0 {
		t.Fatalf("r1 must read the committed value 0, got %d", got)
	}
	if ab := tryTx(func() { r0.Commit() }); ab == nil {
		t.Fatal("writer ROT survived an invalidating read")
	} else if ab.Code != htm.CodeTxConflict {
		t.Fatalf("writer abort code = %v, want tx-conflict", ab.Code)
	}
	if ab := tryTx(func() { r1.Commit() }); ab != nil {
		t.Fatalf("reader ROT aborted: %v", ab)
	}
	checkQuiescent(t, m)
}

// §2.2: "In the case of write-write conflicts the last writer is killed."
func TestWriteWriteKillsLastWriter(t *testing.T) {
	for _, mode := range []htm.Mode{htm.ModeHTM, htm.ModeROT} {
		m := newMachine(t, 2, 1, 64)
		x := m.Heap().AllocLine()
		first := m.Thread(0).Begin(mode)
		second := m.Thread(1).Begin(mode)

		first.Write(x, 1)
		ab := tryTx(func() { second.Write(x, 2) })
		if ab == nil || ab.Code != htm.CodeTxConflict {
			t.Fatalf("%v: last writer abort = %v, want tx-conflict", mode, ab)
		}
		if ab := tryTx(func() { first.Commit() }); ab != nil {
			t.Fatalf("%v: first writer aborted: %v", mode, ab)
		}
		th := m.Thread(0)
		if got := th.Load(x); got != 1 {
			t.Fatalf("%v: x = %d, want 1", mode, got)
		}
		checkQuiescent(t, m)
	}
}

// Regular HTM tracks reads, so a write-after-read is a conflict: the
// writer's invalidation dooms the reader (in contrast with ROTs above).
func TestHTMWriteAfterReadKillsReader(t *testing.T) {
	m := newMachine(t, 2, 1, 64)
	x := m.Heap().AllocLine()
	reader := m.Thread(0).Begin(htm.ModeHTM)
	writer := m.Thread(1).Begin(htm.ModeROT)

	if got := reader.Read(x); got != 0 {
		t.Fatalf("read = %d, want 0", got)
	}
	writer.Write(x, 1)
	if ab := tryTx(func() { writer.Commit() }); ab != nil {
		t.Fatalf("writer aborted: %v", ab)
	}
	ab := tryTx(func() { reader.Read(x + 1) })
	if ab == nil || ab.Code != htm.CodeTxConflict {
		t.Fatalf("tracked reader abort = %v, want tx-conflict", ab)
	}
	checkQuiescent(t, m)
}

// A regular-HTM read of a line in another transaction's write set kills
// the writer (last reader wins), and the reader observes the committed
// value.
func TestHTMReadAfterWriteKillsWriter(t *testing.T) {
	m := newMachine(t, 2, 1, 64)
	x := m.Heap().AllocLine()
	m.Heap().Store(x, 10)
	writer := m.Thread(0).Begin(htm.ModeHTM)
	reader := m.Thread(1).Begin(htm.ModeHTM)

	writer.Write(x, 99)
	if got := reader.Read(x); got != 10 {
		t.Fatalf("reader saw %d, want committed 10", got)
	}
	if ab := tryTx(func() { writer.Commit() }); ab == nil {
		t.Fatal("doomed writer committed")
	}
	if ab := tryTx(func() { reader.Commit() }); ab != nil {
		t.Fatalf("reader aborted: %v", ab)
	}
	checkQuiescent(t, m)
}

// A plain store kills both the line's writer and its tracked readers,
// with non-transactional cause — the SGL kill mechanism.
func TestPlainStoreKillsAllOwners(t *testing.T) {
	m := newMachine(t, 3, 1, 64)
	x := m.Heap().AllocLine()
	reader := m.Thread(0).Begin(htm.ModeHTM)
	writer := m.Thread(1).Begin(htm.ModeROT)
	y := m.Heap().AllocLine()
	writer.Write(y, 1) // disjoint line so both can be live at once
	_ = reader.Read(x)

	m.Thread(2).Store(x, 7)
	ab := tryTx(func() { reader.Read(x) })
	if ab == nil || ab.Code != htm.CodeNonTxConflict {
		t.Fatalf("reader abort = %v, want non-tx-conflict", ab)
	}

	m.Thread(2).Store(y, 8)
	ab = tryTx(func() { writer.Commit() })
	if ab == nil || ab.Code != htm.CodeNonTxConflict {
		t.Fatalf("writer abort = %v, want non-tx-conflict", ab)
	}
	th := m.Thread(2)
	if th.Load(x) != 7 || th.Load(y) != 8 {
		t.Fatal("plain stores lost")
	}
	checkQuiescent(t, m)
}

// Suspended accesses are non-transactional: they do not grow the
// footprint and they conflict as plain accesses do.
func TestSuspendResumeSemantics(t *testing.T) {
	m := newMachine(t, 2, 1, 4) // tiny TMCAM to catch accidental tracking
	lines := allocLines(m, 10)
	x := lines[0]
	tx := m.Thread(0).Begin(htm.ModeHTM)
	tx.Write(x, 1)

	tx.Suspend()
	// Ten distinct lines while suspended: would blow the 4-line TMCAM if
	// they were tracked.
	for _, a := range lines[1:] {
		if tx.Read(a) != 0 {
			t.Fatal("suspended read wrong")
		}
	}
	tx.Resume()
	if ab := tryTx(func() { tx.Commit() }); ab != nil {
		t.Fatalf("commit after suspend/resume aborted: %v", ab)
	}
	if m.Thread(0).Load(x) != 1 {
		t.Fatal("commit lost")
	}
	checkQuiescent(t, m)
}

// A conflict arriving during suspension is delivered at Resume.
func TestDoomDuringSuspensionDeliveredAtResume(t *testing.T) {
	m := newMachine(t, 2, 1, 64)
	x := m.Heap().AllocLine()
	tx := m.Thread(0).Begin(htm.ModeROT)
	tx.Write(x, 1)
	tx.Suspend()
	if got := m.Thread(1).Load(x); got != 0 { // invalidates the suspended writer
		t.Fatalf("plain load = %d, want 0", got)
	}
	ab := tryTx(func() { tx.Resume() })
	if ab == nil || ab.Code != htm.CodeNonTxConflict {
		t.Fatalf("resume abort = %v, want non-tx-conflict", ab)
	}
	checkQuiescent(t, m)
}

// A suspended transaction reading its own write set self-invalidates:
// the plain load conflicts with its own transactional store.
func TestSuspendedSelfReadSelfAborts(t *testing.T) {
	m := newMachine(t, 1, 1, 64)
	x := m.Heap().AllocLine()
	m.Heap().Store(x, 5)
	tx := m.Thread(0).Begin(htm.ModeROT)
	tx.Write(x, 6)
	tx.Suspend()
	if got := tx.Read(x); got != 5 {
		t.Fatalf("suspended self-read = %d, want pre-transaction 5", got)
	}
	ab := tryTx(func() { tx.Resume() })
	if ab == nil {
		t.Fatal("transaction survived self-invalidation")
	}
	checkQuiescent(t, m)
}

// The scripted lost-update interleaving: two raw ROTs increment the same
// counter; the second starts before the first commits but writes after.
// Raw ROTs permit the lost update (this is exactly why SI-HTM adds the
// safety wait — its runtime-level test shows the wait closes this).
func TestRawROTsPermitLostUpdate(t *testing.T) {
	m := newMachine(t, 2, 1, 64)
	x := m.Heap().AllocLine()
	r0 := m.Thread(0).Begin(htm.ModeROT)
	r1 := m.Thread(1).Begin(htm.ModeROT)

	v0 := r0.Read(x) // reads 0 (untracked)
	v1 := r1.Read(x) // reads 0 (untracked)
	r1.Write(x, v1+1)
	if ab := tryTx(func() { r1.Commit() }); ab != nil {
		t.Fatalf("r1 aborted: %v", ab)
	}
	r0.Write(x, v0+1) // stale increment, no conflict: r1 already committed
	if ab := tryTx(func() { r0.Commit() }); ab != nil {
		t.Fatalf("r0 aborted: %v", ab)
	}
	if got := m.Thread(0).Load(x); got != 1 {
		t.Fatalf("x = %d; raw ROTs were expected to lose one increment (want 1)", got)
	}
	checkQuiescent(t, m)
}

// Figure 3's dirty-read anomaly, reproduced on raw ROTs: r0 reads X twice
// and sees two different values because r1 commits in between. (SI-HTM's
// safety wait exists to forbid exactly this; see the sihtm tests.)
func TestRawROTsPermitNonRepeatableRead(t *testing.T) {
	m := newMachine(t, 2, 1, 64)
	x := m.Heap().AllocLine()
	r0 := m.Thread(0).Begin(htm.ModeROT)

	first := r0.Read(x)
	r1 := m.Thread(1).Begin(htm.ModeROT)
	r1.Write(x, 1)
	if ab := tryTx(func() { r1.Commit() }); ab != nil {
		t.Fatalf("r1 aborted: %v", ab)
	}
	second := r0.Read(x)
	if ab := tryTx(func() { r0.Commit() }); ab != nil {
		t.Fatalf("r0 aborted: %v", ab)
	}
	if first != 0 || second != 1 {
		t.Fatalf("reads = (%d,%d); raw ROTs were expected to expose (0,1)", first, second)
	}
	checkQuiescent(t, m)
}
