package htm_test

import (
	"sync"
	"testing"

	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/rng"
	"sihtm/internal/topology"
)

// retryTx keeps attempting body in a fresh transaction until it commits.
func retryTx(th *htm.Thread, mode htm.Mode, body func(tx *htm.Tx)) {
	for {
		if htm.Run(th, mode, body) == nil {
			return
		}
	}
}

// Concurrent increments through regular HTM transactions must not lose
// updates: tracked reads turn every interleaving into a conflict that
// kills one party.
func TestConcurrentCounterHTM(t *testing.T) {
	const threads = 4
	const perThread = 2000
	heap := memsim.NewHeapLines(64)
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(threads, 1)})
	x := heap.AllocLine()

	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := m.Thread(id)
			for i := 0; i < perThread; i++ {
				retryTx(th, htm.ModeHTM, func(tx *htm.Tx) {
					tx.Write(x, tx.Read(x)+1)
				})
			}
		}(id)
	}
	wg.Wait()
	if got := m.Thread(0).Load(x); got != threads*perThread {
		t.Fatalf("counter = %d, want %d", got, threads*perThread)
	}
	checkQuiescent(t, m)
}

// Writers maintain x == y inside one transaction; regular-HTM readers
// must never observe a torn pair — this exercises both conflict tracking
// and the atomicity of multi-line commit write-back.
func TestInvariantPairNeverTorn(t *testing.T) {
	heap := memsim.NewHeapLines(64)
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(4, 1)})
	x := heap.AllocLine()
	y := heap.AllocLine()

	const writers = 2
	const readers = 2
	const iters = 3000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := m.Thread(id)
			for i := 0; i < iters; i++ {
				retryTx(th, htm.ModeHTM, func(tx *htm.Tx) {
					v := tx.Read(x)
					tx.Write(x, v+1)
					tx.Write(y, v+1)
				})
			}
		}(w)
	}
	torn := make(chan [2]uint64, 1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := m.Thread(writers + id)
			for i := 0; i < iters; i++ {
				var a, b uint64
				retryTx(th, htm.ModeHTM, func(tx *htm.Tx) {
					a = tx.Read(x)
					b = tx.Read(y)
				})
				if a != b {
					select {
					case torn <- [2]uint64{a, b}:
					default:
					}
					return
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case pair := <-torn:
		t.Fatalf("regular-HTM reader observed torn pair %v", pair)
	default:
	}
	if gx, gy := m.Thread(0).Load(x), m.Thread(0).Load(y); gx != writers*iters || gy != gx {
		t.Fatalf("final (x,y) = (%d,%d), want (%d,%d)", gx, gy, writers*iters, writers*iters)
	}
	checkQuiescent(t, m)
}

// Randomised single-threaded transactions checked against a shadow map:
// committed writes and only committed writes reach memory.
func TestRandomOpsAgainstShadowModel(t *testing.T) {
	heap := memsim.NewHeapLines(256)
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(1, 1), TMCAMLines: 16})
	base := heap.AllocLines(16)
	th := m.Thread(0)
	r := rng.New(99)
	shadow := make(map[memsim.Addr]uint64)

	for round := 0; round < 2000; round++ {
		mode := htm.ModeHTM
		if r.Bool(50) {
			mode = htm.ModeROT
		}
		pending := make(map[memsim.Addr]uint64)
		wantAbort := r.Bool(30)
		ab := htm.Run(th, mode, func(tx *htm.Tx) {
			nOps := r.IntRange(1, 12)
			for i := 0; i < nOps; i++ {
				a := base + memsim.Addr(r.Intn(16*memsim.WordsPerLine))
				if r.Bool(50) {
					want := shadow[a]
					if v, ok := pending[a]; ok {
						want = v
					}
					if got := tx.Read(a); got != want {
						t.Fatalf("round %d: read %d = %d, want %d", round, a, got, want)
					}
				} else {
					v := r.Uint64()
					tx.Write(a, v)
					pending[a] = v
				}
			}
			if wantAbort {
				tx.AbortExplicit()
			}
		})
		if wantAbort {
			if ab == nil || ab.Code != htm.CodeExplicit {
				t.Fatalf("round %d: abort = %v, want explicit", round, ab)
			}
			continue // pending writes must be discarded
		}
		if ab != nil {
			// Capacity aborts are possible with a 16-line TMCAM; the writes
			// must then be discarded, same as explicit aborts.
			if ab.Code != htm.CodeCapacity {
				t.Fatalf("round %d: unexpected abort %v", round, ab)
			}
			continue
		}
		for a, v := range pending {
			shadow[a] = v
		}
	}
	for a, v := range shadow {
		if got := th.Load(a); got != v {
			t.Fatalf("addr %d = %d, want %d", a, got, v)
		}
	}
	checkQuiescent(t, m)
}

// Hammering one line from many ROTs: exactly one writer survives each
// round and no increment is lost when every transaction re-reads inside
// the claimed line (write set read-back makes ROT increments safe because
// WW conflicts kill late claimants).
func TestROTClaimThenIncrement(t *testing.T) {
	const threads = 4
	const perThread = 1500
	heap := memsim.NewHeapLines(64)
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(threads, 1)})
	x := heap.AllocLine()

	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := m.Thread(id)
			for i := 0; i < perThread; i++ {
				retryTx(th, htm.ModeROT, func(tx *htm.Tx) {
					// Claim the line first with a dummy write, then read:
					// the read returns the committed value only if we hold
					// the line exclusively, so the increment is atomic.
					tx.Write(x+1, 1) // claim a word on the same line
					v := tx.Read(x)
					tx.Write(x, v+1)
				})
			}
		}(id)
	}
	wg.Wait()
	if got := m.Thread(0).Load(x); got != threads*perThread {
		t.Fatalf("counter = %d, want %d", got, threads*perThread)
	}
	checkQuiescent(t, m)
}
