// Package silo implements the Silo baseline (Tu et al., SOSP'13) the
// paper compares against in §4.2: a software optimistic concurrency
// control for in-memory databases. As in the paper's evaluation, record
// indexing is out of scope ("we disable record indexing in Silo") — what
// runs here is Silo's core protocol at cache-line granularity over the
// shared simulated heap:
//
//   - every cache line has a TID word (lock bit + version);
//   - reads snapshot the line version before and after the load and
//     record (line, version) in the read set;
//   - writes are buffered;
//   - commit locks the write lines in address order, validates that every
//     read-set entry still carries its recorded version and is not locked
//     by another transaction, installs the writes, and bumps versions.
//
// Silo needs no hardware support and has no capacity limits, but pays
// software instrumentation on every access — the trade-off the paper's
// TPC-C figures illustrate.
package silo

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"sihtm/internal/footprint"
	"sihtm/internal/memsim"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
)

// tidWord encoding: bit 0 is the lock bit, the rest is the version.
const lockBit = 1

// readEntry records one read-set item.
type readEntry struct {
	line memsim.Line
	tid  uint64
}

// worker is one thread's transaction scratch, reused across attempts.
// Buffered writes use footprint.Entry so the write set can be handed to
// the durability commit hook without conversion.
type worker struct {
	reads      []readEntry
	writes     []footprint.Entry
	writeLines []memsim.Line
	_          [64]byte
}

// System is the Silo concurrency control.
type System struct {
	heap    *memsim.Heap
	tids    []atomic.Uint64 // one per heap cache line
	threads int
	col     *stats.Collector
	workers []worker

	// hook, when set, brackets the commit-time install of every write
	// set (Silo publishes in software, so the machine-level hook does
	// not apply here).
	hook tm.CommitHook
}

// NewSystem builds Silo over heap for the given worker count.
func NewSystem(heap *memsim.Heap, threads int) *System {
	if threads <= 0 {
		panic(fmt.Sprintf("silo: thread count must be positive, got %d", threads))
	}
	lines := (heap.Size() + memsim.WordsPerLine - 1) / memsim.WordsPerLine
	return &System{
		heap:    heap,
		tids:    make([]atomic.Uint64, lines),
		threads: threads,
		col:     stats.New(threads),
		workers: make([]worker, threads),
	}
}

// Name implements tm.System.
func (s *System) Name() string { return "silo" }

// Threads implements tm.System.
func (s *System) Threads() int { return s.threads }

// Collector implements tm.System.
func (s *System) Collector() *stats.Collector { return s.col }

// SetCommitHook implements tm.HookableSystem. Call before any
// transaction runs.
func (s *System) SetCommitHook(h tm.CommitHook) { s.hook = h }

// ops is the instrumented access path for one attempt.
type ops struct {
	s *System
	w *worker
}

// Read implements tm.Ops: an OCC consistent read with read-set logging.
func (o ops) Read(a memsim.Addr) uint64 {
	// Reads-own-writes first.
	for i := len(o.w.writes) - 1; i >= 0; i-- {
		if o.w.writes[i].Addr == a {
			return o.w.writes[i].Val
		}
	}
	line := memsim.LineOf(a)
	tid := &o.s.tids[line]
	for {
		v1 := tid.Load()
		if v1&lockBit != 0 {
			runtime.Gosched()
			continue
		}
		val := o.s.heap.Load(a)
		if tid.Load() == v1 {
			o.w.reads = append(o.w.reads, readEntry{line: line, tid: v1})
			return val
		}
	}
}

// Write implements tm.Ops: buffered until commit.
func (o ops) Write(a memsim.Addr, v uint64) {
	for i := range o.w.writes {
		if o.w.writes[i].Addr == a {
			o.w.writes[i].Val = v
			return
		}
	}
	o.w.writes = append(o.w.writes, footprint.Entry{Addr: a, Val: v})
	line := memsim.LineOf(a)
	for _, l := range o.w.writeLines {
		if l == line {
			return
		}
	}
	o.w.writeLines = append(o.w.writeLines, line)
}

// Atomic implements tm.System: optimistic execution with commit-time
// validation, retried until it succeeds (Silo has no fall-back path and
// guarantees progress probabilistically, as in the original system).
func (s *System) Atomic(thread int, kind tm.Kind, body func(tm.Ops)) {
	w := &s.workers[thread]
	l := s.col.Thread(thread)
	for {
		w.reads = w.reads[:0]
		w.writes = w.writes[:0]
		w.writeLines = w.writeLines[:0]
		body(ops{s: s, w: w})
		if s.commit(w, thread) {
			l.Commit(kind == tm.KindReadOnly)
			return
		}
		l.Abort(stats.AbortTransactional)
		runtime.Gosched()
	}
}

// commit runs Silo's three-phase commit. It reports success; on failure
// all locks are released and nothing was installed.
func (s *System) commit(w *worker, thread int) bool {
	// Phase 1: lock the write set in canonical (address) order.
	sort.Slice(w.writeLines, func(i, j int) bool { return w.writeLines[i] < w.writeLines[j] })
	locked := 0
	for _, line := range w.writeLines {
		tid := &s.tids[line]
		for {
			v := tid.Load()
			if v&lockBit != 0 {
				runtime.Gosched()
				continue
			}
			if tid.CompareAndSwap(v, v|lockBit) {
				break
			}
		}
		locked++
	}
	// Phase 2: validate the read set.
	for _, e := range w.reads {
		cur := s.tids[e.line].Load()
		if cur&lockBit != 0 && !w.ownsLine(e.line) {
			s.unlock(w, locked, false)
			return false
		}
		if cur&^uint64(lockBit) != e.tid {
			s.unlock(w, locked, false)
			return false
		}
	}
	// Phase 3: install writes and bump versions (which also unlocks).
	// With a commit hook installed, the install is bracketed like the
	// hardware write-back: a conflicting later commit blocks on the line
	// locks until this one unlocks, so sequence numbers drawn in
	// PreCommit respect the OCC serialization order.
	hooked := s.hook != nil && len(w.writes) > 0
	if hooked {
		s.hook.PreCommit(thread, w.writes)
	}
	for _, we := range w.writes {
		s.heap.Store(we.Addr, we.Val)
	}
	if hooked {
		s.hook.PostCommit(thread)
	}
	s.unlock(w, locked, true)
	return true
}

// unlock releases the first n locked write lines, bumping versions when
// the commit succeeded.
func (s *System) unlock(w *worker, n int, bump bool) {
	for _, line := range w.writeLines[:n] {
		tid := &s.tids[line]
		v := tid.Load()
		if bump {
			tid.Store((v &^ uint64(lockBit)) + 2) // +2: version is v>>1
		} else {
			tid.Store(v &^ uint64(lockBit))
		}
	}
}

func (w *worker) ownsLine(line memsim.Line) bool {
	for _, l := range w.writeLines {
		if l == line {
			return true
		}
	}
	return false
}

var _ tm.System = (*System)(nil)
