package silo_test

import (
	"sync"
	"testing"

	"sihtm/internal/memsim"
	"sihtm/internal/silo"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
)

func newSystem(t testing.TB, threads int) (*silo.System, *memsim.Heap) {
	t.Helper()
	heap := memsim.NewHeapLines(1 << 10)
	return silo.NewSystem(heap, threads), heap
}

func TestName(t *testing.T) {
	sys, _ := newSystem(t, 2)
	if sys.Name() != "silo" || sys.Threads() != 2 {
		t.Fatalf("Name/Threads = %q/%d", sys.Name(), sys.Threads())
	}
}

func TestNewSystemValidation(t *testing.T) {
	heap := memsim.NewHeapLines(4)
	defer func() {
		if recover() == nil {
			t.Fatal("NewSystem(heap, 0) did not panic")
		}
	}()
	silo.NewSystem(heap, 0)
}

func TestReadOwnWrites(t *testing.T) {
	sys, heap := newSystem(t, 1)
	a := heap.AllocLine()
	heap.Store(a, 3)
	sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
		if got := ops.Read(a); got != 3 {
			t.Fatalf("read = %d, want 3", got)
		}
		ops.Write(a, 4)
		if got := ops.Read(a); got != 4 {
			t.Fatalf("read-own-write = %d, want 4", got)
		}
		ops.Write(a, 5)
		if got := ops.Read(a); got != 5 {
			t.Fatalf("second own write = %d, want 5", got)
		}
	})
	if heap.Load(a) != 5 {
		t.Fatal("commit lost")
	}
}

// Writes are buffered: nothing reaches the heap until commit succeeds.
func TestNoDirtyWrites(t *testing.T) {
	sys, heap := newSystem(t, 2)
	a := heap.AllocLine()
	observed := make(chan uint64, 1)
	sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
		ops.Write(a, 9)
		// The write must be invisible to a raw heap read before commit.
		select {
		case observed <- heap.Load(a):
		default:
		}
	})
	if got := <-observed; got != 0 {
		t.Fatalf("pre-commit heap value = %d, want 0", got)
	}
	if heap.Load(a) != 9 {
		t.Fatal("commit lost")
	}
}

// Silo has no capacity limits: a transaction over hundreds of lines
// commits in one attempt.
func TestNoCapacityLimits(t *testing.T) {
	sys, heap := newSystem(t, 1)
	lines := make([]memsim.Addr, 300)
	for i := range lines {
		lines[i] = heap.AllocLine()
	}
	sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
		var sum uint64
		for _, a := range lines {
			sum += ops.Read(a)
		}
		for i, a := range lines {
			ops.Write(a, sum+uint64(i)+1)
		}
	})
	s := sys.Collector().Snapshot()
	if s.TotalAborts() != 0 || s.Commits != 1 {
		t.Fatalf("stats = %v", s)
	}
	for i, a := range lines {
		if heap.Load(a) != uint64(i)+1 {
			t.Fatalf("line %d = %d, want %d", i, heap.Load(a), i+1)
		}
	}
}

func TestContendedCounterExactness(t *testing.T) {
	sys, heap := newSystem(t, 4)
	x := heap.AllocLine()
	pad := heap.AllocLines(16) // stretch the read-to-commit window
	const perThread = 800
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				sys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
					v := ops.Read(x)
					// Widen the validation window so concurrent increments
					// overlap even on heavily time-sliced hosts.
					for j := 0; j < 16; j++ {
						v += ops.Read(pad + memsim.Addr(j*memsim.WordsPerLine))
					}
					ops.Write(x, v+1)
				})
			}
		}(id)
	}
	wg.Wait()
	if got := heap.Load(x); got != 4*perThread {
		t.Fatalf("counter = %d, want %d", got, 4*perThread)
	}
	s := sys.Collector().Snapshot()
	if s.Aborts[stats.AbortCapacity] != 0 || s.Aborts[stats.AbortNonTransactional] != 0 {
		t.Errorf("silo produced non-OCC abort kinds: %v", s.Aborts)
	}
}

// Version bumps make stale reads fail validation even across disjoint
// word offsets within one line (false sharing is detected at line
// granularity, like the hardware).
func TestLineGranularityConflicts(t *testing.T) {
	sys, heap := newSystem(t, 2)
	line := heap.AllocLine() // word 0 and word 1 share the line
	const perThread = 500
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			a := line + memsim.Addr(id) // distinct words, same line
			for i := 0; i < perThread; i++ {
				sys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
					ops.Write(a, ops.Read(a)+1)
				})
			}
		}(id)
	}
	wg.Wait()
	if heap.Load(line) != perThread || heap.Load(line+1) != perThread {
		t.Fatalf("counters = (%d,%d), want (%d,%d)",
			heap.Load(line), heap.Load(line+1), perThread, perThread)
	}
}
