package harness_test

import (
	"strings"
	"testing"
	"time"

	"sihtm/internal/harness"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/sgl"
	"sihtm/internal/sihtm"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
)

func newSIHTM(threads int) (tm.System, *memsim.Heap) {
	heap := memsim.NewHeapLines(1 << 10)
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(4, 2)})
	return sihtm.NewSystem(m, threads, sihtm.Config{}), heap
}

func TestRunMeasuresOnlyTheWindow(t *testing.T) {
	sys, heap := newSIHTM(2)
	x := heap.AllocLine()
	r := harness.Run(sys, 2, 20*time.Millisecond, 100*time.Millisecond, func(thread int) func() {
		return func() {
			sys.Atomic(thread, tm.KindUpdate, func(ops tm.Ops) {
				ops.Write(x, ops.Read(x)+1)
			})
		}
	})
	if r.System != "si-htm" || r.Threads != 2 {
		t.Fatalf("result identity: %+v", r)
	}
	if r.Stats.Commits == 0 {
		t.Fatal("no commits measured")
	}
	// The window delta must be smaller than the total (warm-up excluded).
	total := sys.Collector().Snapshot()
	if r.Stats.Commits >= total.Commits {
		t.Fatalf("window commits %d >= total %d; warm-up not excluded", r.Stats.Commits, total.Commits)
	}
	if r.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}
}

func TestRunOpsIsExact(t *testing.T) {
	sys, heap := newSIHTM(3)
	x := heap.AllocLine()
	r := harness.RunOps(sys, 3, 100, func(thread int) func() {
		return func() {
			sys.Atomic(thread, tm.KindUpdate, func(ops tm.Ops) {
				ops.Write(x, ops.Read(x)+1)
			})
		}
	})
	if r.Stats.Commits != 300 {
		t.Fatalf("commits = %d, want 300", r.Stats.Commits)
	}
	if got := heap.Load(x); got != 300 {
		t.Fatalf("counter = %d, want 300", got)
	}
}

func TestSweepExecuteAndTables(t *testing.T) {
	s := &harness.Sweep{
		ID:           "test",
		Title:        "test sweep",
		Systems:      []string{"sgl", "si-htm"},
		ThreadCounts: []int{1, 2},
		Warmup:       5 * time.Millisecond,
		Measure:      30 * time.Millisecond,
		Setup: func(system string, threads int) (tm.System, func(int) func(), func() error, error) {
			heap := memsim.NewHeapLines(1 << 8)
			m := htm.NewMachine(heap, htm.Config{Topology: topology.New(2, 2)})
			var sys tm.System
			if system == "sgl" {
				sys = sgl.NewSystem(m, threads)
			} else {
				sys = sihtm.NewSystem(m, threads, sihtm.Config{})
			}
			x := heap.AllocLine()
			mk := func(thread int) func() {
				return func() {
					sys.Atomic(thread, tm.KindUpdate, func(ops tm.Ops) {
						ops.Write(x, ops.Read(x)+1)
					})
				}
			}
			return sys, mk, func() error { return nil }, nil
		},
	}
	var events []string
	obs := func(sweepID string, r harness.Result) {
		events = append(events, sweepID+"/"+r.System)
	}
	results, err := s.Execute(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4 (2 systems × 2 thread counts)", len(results))
	}
	if len(events) != 4 || events[0] != "test/sgl" {
		t.Errorf("observer events = %v", events)
	}
	// Execute restores canonical (threads, system) order even though it
	// runs system columns independently.
	if results[0].Threads != 1 || results[0].System != "sgl" || results[1].System != "si-htm" {
		t.Errorf("result order: %+v", results[:2])
	}
}

func TestExecuteSystemRunsOneColumn(t *testing.T) {
	s := &harness.Sweep{
		ID:           "col",
		Systems:      []string{"sgl", "si-htm"},
		ThreadCounts: []int{1, 2},
		Warmup:       time.Millisecond,
		Measure:      10 * time.Millisecond,
		Setup: func(system string, threads int) (tm.System, func(int) func(), func() error, error) {
			heap := memsim.NewHeapLines(1 << 8)
			m := htm.NewMachine(heap, htm.Config{Topology: topology.New(2, 2)})
			sys := tm.System(sgl.NewSystem(m, threads))
			if system == "si-htm" {
				sys = sihtm.NewSystem(m, threads, sihtm.Config{})
			}
			x := heap.AllocLine()
			mk := func(thread int) func() {
				return func() {
					sys.Atomic(thread, tm.KindUpdate, func(ops tm.Ops) {
						ops.Write(x, ops.Read(x)+1)
					})
				}
			}
			return sys, mk, nil, nil
		},
	}
	results, err := s.ExecuteSystem("si-htm", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2 (one system × 2 thread counts)", len(results))
	}
	for i, n := range []int{1, 2} {
		if results[i].System != "si-htm" || results[i].Threads != n {
			t.Errorf("result %d = %s/%d, want si-htm/%d", i, results[i].System, results[i].Threads, n)
		}
	}
}

func TestAbortPercent(t *testing.T) {
	var r harness.Result
	r.Stats.Commits = 50
	r.Stats.Aborts[stats.AbortCapacity] = 50
	if got := r.AbortPercent(stats.AbortCapacity); got != 50 {
		t.Fatalf("AbortPercent = %v, want 50", got)
	}
}

func TestSweepSetupErrorPropagates(t *testing.T) {
	s := &harness.Sweep{
		ID:           "broken",
		Systems:      []string{"x"},
		ThreadCounts: []int{1},
		Warmup:       time.Millisecond,
		Measure:      time.Millisecond,
		Setup: func(string, int) (tm.System, func(int) func(), func() error, error) {
			return nil, nil, nil, strings.NewReader("").UnreadRune()
		},
	}
	if _, err := s.Execute(nil); err == nil {
		t.Fatal("setup error swallowed")
	}
}
