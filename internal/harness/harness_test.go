package harness_test

import (
	"strings"
	"testing"
	"time"

	"sihtm/internal/harness"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/sgl"
	"sihtm/internal/sihtm"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
)

func newSIHTM(threads int) (tm.System, *memsim.Heap) {
	heap := memsim.NewHeapLines(1 << 10)
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(4, 2)})
	return sihtm.NewSystem(m, threads, sihtm.Config{}), heap
}

func TestRunMeasuresOnlyTheWindow(t *testing.T) {
	sys, heap := newSIHTM(2)
	x := heap.AllocLine()
	r := harness.Run(sys, 2, 20*time.Millisecond, 100*time.Millisecond, func(thread int) func() {
		return func() {
			sys.Atomic(thread, tm.KindUpdate, func(ops tm.Ops) {
				ops.Write(x, ops.Read(x)+1)
			})
		}
	})
	if r.System != "si-htm" || r.Threads != 2 {
		t.Fatalf("result identity: %+v", r)
	}
	if r.Stats.Commits == 0 {
		t.Fatal("no commits measured")
	}
	// The window delta must be smaller than the total (warm-up excluded).
	total := sys.Collector().Snapshot()
	if r.Stats.Commits >= total.Commits {
		t.Fatalf("window commits %d >= total %d; warm-up not excluded", r.Stats.Commits, total.Commits)
	}
	if r.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}
}

func TestRunOpsIsExact(t *testing.T) {
	sys, heap := newSIHTM(3)
	x := heap.AllocLine()
	r := harness.RunOps(sys, 3, 100, func(thread int) func() {
		return func() {
			sys.Atomic(thread, tm.KindUpdate, func(ops tm.Ops) {
				ops.Write(x, ops.Read(x)+1)
			})
		}
	})
	if r.Stats.Commits != 300 {
		t.Fatalf("commits = %d, want 300", r.Stats.Commits)
	}
	if got := heap.Load(x); got != 300 {
		t.Fatalf("counter = %d, want 300", got)
	}
}

func TestSweepExecuteAndTables(t *testing.T) {
	s := &harness.Sweep{
		ID:           "test",
		Title:        "test sweep",
		Systems:      []string{"sgl", "si-htm"},
		ThreadCounts: []int{1, 2},
		Warmup:       5 * time.Millisecond,
		Measure:      30 * time.Millisecond,
		Setup: func(system string, threads int) (tm.System, func(int) func(), func() error, error) {
			heap := memsim.NewHeapLines(1 << 8)
			m := htm.NewMachine(heap, htm.Config{Topology: topology.New(2, 2)})
			var sys tm.System
			if system == "sgl" {
				sys = sgl.NewSystem(m, threads)
			} else {
				sys = sihtm.NewSystem(m, threads, sihtm.Config{})
			}
			x := heap.AllocLine()
			mk := func(thread int) func() {
				return func() {
					sys.Atomic(thread, tm.KindUpdate, func(ops tm.Ops) {
						ops.Write(x, ops.Read(x)+1)
					})
				}
			}
			return sys, mk, func() error { return nil }, nil
		},
	}
	var progress strings.Builder
	results, err := s.Execute(&progress)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4 (2 systems × 2 thread counts)", len(results))
	}
	if !strings.Contains(progress.String(), "sgl") {
		t.Error("progress output missing system names")
	}

	var tb strings.Builder
	harness.FormatThroughputTable(&tb, "T", results)
	out := tb.String()
	for _, want := range []string{"threads", "sgl", "si-htm", "\n       1", "\n       2"} {
		if !strings.Contains(out, want) {
			t.Errorf("throughput table missing %q:\n%s", want, out)
		}
	}

	tb.Reset()
	harness.FormatAbortTable(&tb, "T", results)
	if !strings.Contains(tb.String(), "aborts") {
		t.Error("abort table missing header")
	}

	tb.Reset()
	harness.FormatCSV(&tb, results)
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("csv rows = %d, want 5", len(lines))
	}
	if !strings.HasPrefix(lines[0], "system,threads,throughput") {
		t.Errorf("csv header = %q", lines[0])
	}
}

func TestPeakAndSpeedupSummary(t *testing.T) {
	results := []harness.Result{
		{System: "htm", Threads: 1, Throughput: 100},
		{System: "htm", Threads: 2, Throughput: 150},
		{System: "si-htm", Threads: 1, Throughput: 200},
		{System: "si-htm", Threads: 2, Throughput: 600},
	}
	p := harness.Peak(results, "si-htm")
	if p.Throughput != 600 || p.Threads != 2 {
		t.Fatalf("Peak = %+v", p)
	}
	s := harness.SpeedupSummary(results, "si-htm")
	if !strings.Contains(s, "si-htm peak: 600") || !strings.Contains(s, "vs htm +300%") {
		t.Fatalf("SpeedupSummary = %q", s)
	}
}

func TestAbortPercent(t *testing.T) {
	var r harness.Result
	r.Stats.Commits = 50
	r.Stats.Aborts[stats.AbortCapacity] = 50
	if got := r.AbortPercent(stats.AbortCapacity); got != 50 {
		t.Fatalf("AbortPercent = %v, want 50", got)
	}
}

func TestSweepSetupErrorPropagates(t *testing.T) {
	s := &harness.Sweep{
		ID:           "broken",
		Systems:      []string{"x"},
		ThreadCounts: []int{1},
		Warmup:       time.Millisecond,
		Measure:      time.Millisecond,
		Setup: func(string, int) (tm.System, func(int) func(), func() error, error) {
			return nil, nil, nil, strings.NewReader("").UnreadRune()
		},
	}
	if _, err := s.Execute(nil); err == nil {
		t.Fatal("setup error swallowed")
	}
}
