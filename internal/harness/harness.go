// Package harness runs the paper's experiments: timed, multi-threaded
// sweeps over (system × thread-count) with warm-up, per-window statistics
// deltas, and the throughput/abort-breakdown tables that correspond to
// the two panels of each figure in §4.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sihtm/internal/stats"
	"sihtm/internal/tm"
)

// Result is one (system, thread-count) measurement.
type Result struct {
	System     string
	Threads    int
	Elapsed    time.Duration
	Stats      stats.Stats // measurement-window delta
	Throughput float64     // committed transactions per second
}

// AbortPercent returns the share of attempts aborted with kind, in
// percent — the paper's abort-breakdown panels.
func (r Result) AbortPercent(kind stats.AbortKind) float64 {
	return 100 * r.Stats.AbortShare(kind)
}

// Run drives `threads` workers against sys for the given windows. Each
// worker repeatedly invokes the op closure returned by mkWorker for its
// thread id. Only activity inside the measurement window is reported.
func Run(sys tm.System, threads int, warmup, measure time.Duration, mkWorker func(thread int) func()) Result {
	var stop atomic.Bool
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			op := mkWorker(id)
			for !stop.Load() {
				op()
			}
		}(id)
	}
	time.Sleep(warmup)
	before := sys.Collector().Snapshot()
	start := time.Now()
	time.Sleep(measure)
	after := sys.Collector().Snapshot()
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()

	delta := after.Sub(before)
	return Result{
		System:     sys.Name(),
		Threads:    threads,
		Elapsed:    elapsed,
		Stats:      delta,
		Throughput: float64(delta.Commits) / elapsed.Seconds(),
	}
}

// RunOps drives the workers for a fixed op count per thread instead of a
// time window (used by deterministic tests and testing.B benchmarks).
func RunOps(sys tm.System, threads, opsPerThread int, mkWorker func(thread int) func()) Result {
	before := sys.Collector().Snapshot()
	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			op := mkWorker(id)
			for i := 0; i < opsPerThread; i++ {
				op()
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	delta := sys.Collector().Snapshot().Sub(before)
	return Result{
		System:     sys.Name(),
		Threads:    threads,
		Elapsed:    elapsed,
		Stats:      delta,
		Throughput: float64(delta.Commits) / elapsed.Seconds(),
	}
}

// Sweep is a full experiment: for every thread count and system, Setup
// builds a fresh workload and the harness measures it.
type Sweep struct {
	// ID and Title identify the experiment (e.g. "fig6-low", "Hash-map
	// 90% large read-only txs, low contention").
	ID, Title string
	// Systems are benchmark names in display order.
	Systems []string
	// ThreadCounts is the x-axis (the paper: 1,2,4,8,16,32,40,80).
	ThreadCounts []int
	// Warmup and Measure are the run windows per point.
	Warmup, Measure time.Duration
	// Setup builds a fresh system + workload for one run. The returned
	// check (may be nil) runs quiescently after the run; a non-nil error
	// fails the sweep.
	Setup func(system string, threads int) (sys tm.System, mkWorker func(thread int) func(), check func() error, err error)
}

// Execute runs the sweep, writing progress lines to progress (if non-nil),
// and returns results indexed [threadCount][system].
func (s *Sweep) Execute(progress io.Writer) ([]Result, error) {
	var results []Result
	for _, n := range s.ThreadCounts {
		for _, name := range s.Systems {
			sys, mkWorker, check, err := s.Setup(name, n)
			if err != nil {
				return nil, fmt.Errorf("%s: setup %s/%d: %w", s.ID, name, n, err)
			}
			r := Run(sys, n, s.Warmup, s.Measure, mkWorker)
			// Label with the sweep's system key: variant sweeps (e.g. the
			// killer-policy ablation) compare two configurations of one
			// system, which share a Name().
			r.System = name
			if check != nil {
				if err := check(); err != nil {
					return nil, fmt.Errorf("%s: %s/%d threads: post-run check: %w", s.ID, name, n, err)
				}
			}
			results = append(results, r)
			if progress != nil {
				fmt.Fprintf(progress, "  %-8s %3d threads: %12.0f tx/s  aborts %5.1f%% (tx %4.1f%% | non-tx %4.1f%% | cap %4.1f%%)  fallbacks %d\n",
					name, n, r.Throughput, 100*r.Stats.AbortRate(),
					r.AbortPercent(stats.AbortTransactional),
					r.AbortPercent(stats.AbortNonTransactional),
					r.AbortPercent(stats.AbortCapacity),
					r.Stats.Fallbacks)
			}
		}
	}
	return results, nil
}

// FormatThroughputTable renders the figure's throughput panel: one row
// per thread count, one column per system.
func FormatThroughputTable(w io.Writer, title string, results []Result) {
	systems := systemOrder(results)
	fmt.Fprintf(w, "%s — throughput (tx/s)\n", title)
	fmt.Fprintf(w, "%8s", "threads")
	for _, s := range systems {
		fmt.Fprintf(w, " %14s", s)
	}
	fmt.Fprintln(w)
	for _, n := range threadOrder(results) {
		fmt.Fprintf(w, "%8d", n)
		for _, s := range systems {
			if r, ok := lookup(results, s, n); ok {
				fmt.Fprintf(w, " %14.0f", r.Throughput)
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// FormatAbortTable renders the figure's abort panel: per thread count and
// system, the percentage of attempts aborted, split by cause.
func FormatAbortTable(w io.Writer, title string, results []Result) {
	systems := systemOrder(results)
	fmt.Fprintf(w, "%s — aborts (%% of attempts: transactional/non-transactional/capacity)\n", title)
	fmt.Fprintf(w, "%8s", "threads")
	for _, s := range systems {
		fmt.Fprintf(w, " %20s", s)
	}
	fmt.Fprintln(w)
	for _, n := range threadOrder(results) {
		fmt.Fprintf(w, "%8d", n)
		for _, s := range systems {
			if r, ok := lookup(results, s, n); ok {
				fmt.Fprintf(w, "    %5.1f/%5.1f/%5.1f",
					r.AbortPercent(stats.AbortTransactional),
					r.AbortPercent(stats.AbortNonTransactional),
					r.AbortPercent(stats.AbortCapacity))
			} else {
				fmt.Fprintf(w, " %20s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// FormatCSV renders results machine-readably (one row per measurement).
func FormatCSV(w io.Writer, results []Result) {
	fmt.Fprintln(w, "system,threads,throughput_tx_s,commits,commits_ro,aborts_tx,aborts_nontx,aborts_capacity,aborts_other,fallbacks,abort_rate")
	for _, r := range results {
		fmt.Fprintf(w, "%s,%d,%.2f,%d,%d,%d,%d,%d,%d,%d,%.4f\n",
			r.System, r.Threads, r.Throughput,
			r.Stats.Commits, r.Stats.CommitsRO,
			r.Stats.Aborts[stats.AbortTransactional],
			r.Stats.Aborts[stats.AbortNonTransactional],
			r.Stats.Aborts[stats.AbortCapacity],
			r.Stats.Aborts[stats.AbortExplicit]+r.Stats.Aborts[stats.AbortOther],
			r.Stats.Fallbacks,
			r.Stats.AbortRate())
	}
}

func systemOrder(results []Result) []string {
	var names []string
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.System] {
			seen[r.System] = true
			names = append(names, r.System)
		}
	}
	return names
}

func threadOrder(results []Result) []int {
	var ns []int
	seen := map[int]bool{}
	for _, r := range results {
		if !seen[r.Threads] {
			seen[r.Threads] = true
			ns = append(ns, r.Threads)
		}
	}
	sort.Ints(ns)
	return ns
}

func lookup(results []Result, system string, threads int) (Result, bool) {
	for _, r := range results {
		if r.System == system && r.Threads == threads {
			return r, true
		}
	}
	return Result{}, false
}

// Peak returns the best throughput a system reached across thread counts.
func Peak(results []Result, system string) Result {
	var best Result
	for _, r := range results {
		if r.System == system && r.Throughput > best.Throughput {
			best = r
		}
	}
	return best
}

// SpeedupSummary reports peak-vs-peak speedups of `of` over every other
// system, as the paper quotes (e.g. "+300% over HTM").
func SpeedupSummary(results []Result, of string) string {
	var b strings.Builder
	peak := Peak(results, of)
	fmt.Fprintf(&b, "%s peak: %.0f tx/s @ %d threads", of, peak.Throughput, peak.Threads)
	for _, s := range systemOrder(results) {
		if s == of {
			continue
		}
		other := Peak(results, s)
		if other.Throughput > 0 {
			fmt.Fprintf(&b, "; vs %s %+.0f%%", s, 100*(peak.Throughput/other.Throughput-1))
		}
	}
	return b.String()
}
