// Package harness runs the paper's experiments: timed, multi-threaded
// sweeps over (system × thread-count) with warm-up and per-window
// statistics deltas. Each measurement is a structured Result, streamed
// to an Observer as it completes; rendering lives in internal/results.
package harness

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sihtm/internal/stats"
	"sihtm/internal/tm"
)

// Result is one (system, thread-count) measurement.
type Result struct {
	System     string
	Threads    int
	Elapsed    time.Duration
	Stats      stats.Stats // measurement-window delta
	Throughput float64     // committed transactions per second
}

// AbortPercent returns the share of attempts aborted with kind, in
// percent — the paper's abort-breakdown panels.
func (r Result) AbortPercent(kind stats.AbortKind) float64 {
	return 100 * r.Stats.AbortShare(kind)
}

// Run drives `threads` workers against sys for the given windows. Each
// worker repeatedly invokes the op closure returned by mkWorker for its
// thread id. Only activity inside the measurement window is reported.
func Run(sys tm.System, threads int, warmup, measure time.Duration, mkWorker func(thread int) func()) Result {
	var stop atomic.Bool
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			op := mkWorker(id)
			for !stop.Load() {
				op()
			}
		}(id)
	}
	time.Sleep(warmup)
	before := sys.Collector().Snapshot()
	start := time.Now()
	time.Sleep(measure)
	after := sys.Collector().Snapshot()
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()

	delta := after.Sub(before)
	return Result{
		System:     sys.Name(),
		Threads:    threads,
		Elapsed:    elapsed,
		Stats:      delta,
		Throughput: float64(delta.Commits) / elapsed.Seconds(),
	}
}

// RunOps drives the workers for a fixed op count per thread instead of a
// time window (used by deterministic tests and testing.B benchmarks).
func RunOps(sys tm.System, threads, opsPerThread int, mkWorker func(thread int) func()) Result {
	before := sys.Collector().Snapshot()
	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			op := mkWorker(id)
			for i := 0; i < opsPerThread; i++ {
				op()
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	delta := sys.Collector().Snapshot().Sub(before)
	return Result{
		System:     sys.Name(),
		Threads:    threads,
		Elapsed:    elapsed,
		Stats:      delta,
		Throughput: float64(delta.Commits) / elapsed.Seconds(),
	}
}

// Sweep is a full experiment: for every thread count and system, Setup
// builds a fresh workload and the harness measures it.
type Sweep struct {
	// ID and Title identify the experiment (e.g. "fig6-low", "Hash-map
	// 90% large read-only txs, low contention").
	ID, Title string
	// Systems are benchmark names in display order.
	Systems []string
	// ThreadCounts is the x-axis (the paper: 1,2,4,8,16,32,40,80).
	ThreadCounts []int
	// Warmup and Measure are the run windows per point.
	Warmup, Measure time.Duration
	// Setup builds a fresh system + workload for one run. The returned
	// check (may be nil) runs quiescently after the run; a non-nil error
	// fails the sweep.
	Setup func(system string, threads int) (sys tm.System, mkWorker func(thread int) func(), check func() error, err error)
}

// Observer receives one structured event per completed measurement.
// Observers replace ad-hoc progress printing: the harness reports what
// happened, callers decide how (or whether) to render it. A nil Observer
// is always allowed.
type Observer func(sweepID string, r Result)

// Execute runs the sweep over every system, invoking obs (if non-nil)
// after each measurement, and returns all results.
func (s *Sweep) Execute(obs Observer) ([]Result, error) {
	var results []Result
	for _, name := range s.Systems {
		rs, err := s.ExecuteSystem(name, obs)
		if err != nil {
			return nil, err
		}
		results = append(results, rs...)
	}
	sortResults(results, s)
	return results, nil
}

// ExecuteSystem runs one system's column of the sweep — the independent
// cell unit the reproduction pipeline parallelizes over — walking the
// full thread ladder.
func (s *Sweep) ExecuteSystem(system string, obs Observer) ([]Result, error) {
	var results []Result
	for _, n := range s.ThreadCounts {
		sys, mkWorker, check, err := s.Setup(system, n)
		if err != nil {
			return nil, fmt.Errorf("%s: setup %s/%d: %w", s.ID, system, n, err)
		}
		r := Run(sys, n, s.Warmup, s.Measure, mkWorker)
		// Label with the sweep's system key: variant sweeps (e.g. the
		// killer-policy ablation) compare two configurations of one
		// system, which share a Name().
		r.System = system
		if check != nil {
			if err := check(); err != nil {
				return nil, fmt.Errorf("%s: %s/%d threads: post-run check: %w", s.ID, system, n, err)
			}
		}
		results = append(results, r)
		if obs != nil {
			obs(s.ID, r)
		}
	}
	return results, nil
}

// sortResults restores the sweep's canonical (thread-count, system)
// ordering after per-system execution.
func sortResults(results []Result, s *Sweep) {
	rank := make(map[string]int, len(s.Systems))
	for i, name := range s.Systems {
		rank[name] = i
	}
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Threads != results[j].Threads {
			return results[i].Threads < results[j].Threads
		}
		return rank[results[i].System] < rank[results[j].System]
	})
}

// Table rendering and peak/speedup summaries live in internal/results,
// which consumes the typed records built from these Results.
