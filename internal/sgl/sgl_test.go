package sgl_test

import (
	"sync"
	"testing"

	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/sgl"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
)

func newMachine(t testing.TB) *htm.Machine {
	t.Helper()
	heap := memsim.NewHeapLines(1 << 8)
	return htm.NewMachine(heap, htm.Config{Topology: topology.New(4, 1)})
}

func TestLockBasics(t *testing.T) {
	m := newMachine(t)
	l := sgl.New(m)
	th := m.Thread(0)
	if l.IsLocked(th) {
		t.Fatal("fresh lock is locked")
	}
	l.Acquire(th)
	if !l.IsLocked(th) || !l.HeldBy(th) {
		t.Fatal("acquired lock not held")
	}
	if l.HeldBy(m.Thread(1)) {
		t.Fatal("HeldBy true for non-holder")
	}
	l.Release(th)
	if l.IsLocked(th) {
		t.Fatal("released lock still locked")
	}
}

func TestReleaseByNonHolderPanics(t *testing.T) {
	m := newMachine(t)
	l := sgl.New(m)
	l.Acquire(m.Thread(0))
	defer func() {
		if recover() == nil {
			t.Fatal("Release by non-holder did not panic")
		}
	}()
	l.Release(m.Thread(1))
}

func TestMutualExclusion(t *testing.T) {
	m := newMachine(t)
	l := sgl.New(m)
	counter := 0 // plain int: the lock must make this safe
	const threads = 4
	const per = 2000
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := m.Thread(id)
			for i := 0; i < per; i++ {
				l.Acquire(th)
				counter++
				l.Release(th)
			}
		}(id)
	}
	wg.Wait()
	if counter != threads*per {
		t.Fatalf("counter = %d, want %d", counter, threads*per)
	}
}

func TestSystemSerialisesEverything(t *testing.T) {
	m := newMachine(t)
	sys := sgl.NewSystem(m, 4)
	if sys.Name() != "sgl" || sys.Threads() != 4 {
		t.Fatalf("Name/Threads = %q/%d", sys.Name(), sys.Threads())
	}
	x := m.Heap().AllocLine()
	const per = 1000
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
					ops.Write(x, ops.Read(x)+1)
				})
			}
		}(id)
	}
	wg.Wait()
	if got := m.Heap().Load(x); got != 4*per {
		t.Fatalf("counter = %d, want %d", got, 4*per)
	}
	s := sys.Collector().Snapshot()
	if s.Commits != 4*per || s.Fallbacks != 4*per || s.TotalAborts() != 0 {
		t.Fatalf("stats = %v", s)
	}
}
