// Package sgl provides the single global lock used as the serial
// fall-back path by the HTM-based systems, plus a complete (if trivially
// serial) tm.System built on it, which doubles as a correctness oracle in
// tests.
//
// The lock word lives in the simulated heap so that hardware transactions
// can subscribe to it with a transactional read: the acquisition store is
// then a plain store to a tracked line and kills every subscriber with a
// non-transactional conflict — the exact mechanism the paper's abort
// breakdown attributes "non-transactional aborts, mostly caused by a
// locked SGL".
package sgl

import (
	"runtime"

	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
)

// unlocked is the lock word value when free. A holder stores its thread
// id + 1.
const unlocked = 0

// Lock is a test-and-test-and-set global lock over a heap cache line.
type Lock struct {
	addr memsim.Addr
}

// New allocates the lock word on its own cache line of m's heap.
func New(m *htm.Machine) *Lock {
	return &Lock{addr: m.Heap().AllocLine()}
}

// Addr returns the lock word's address, which transactions read to
// subscribe to the lock.
func (l *Lock) Addr() memsim.Addr { return l.addr }

// IsLocked reports whether the lock is held, via a plain load.
func (l *Lock) IsLocked(th *htm.Thread) bool {
	return th.Load(l.addr) != unlocked
}

// HeldBy reports whether the lock is held by the given thread.
func (l *Lock) HeldBy(th *htm.Thread) bool {
	return th.Load(l.addr) == uint64(th.ID())+1
}

// Acquire spins until it owns the lock. The winning compare-and-swap
// dooms every transaction subscribed to the lock word.
func (l *Lock) Acquire(th *htm.Thread) {
	for {
		if th.Load(l.addr) == unlocked &&
			th.CompareAndSwap(l.addr, unlocked, uint64(th.ID())+1) {
			return
		}
		runtime.Gosched()
	}
}

// Release frees the lock. It panics if the caller does not hold it.
func (l *Lock) Release(th *htm.Thread) {
	if !l.HeldBy(th) {
		panic("sgl: Release by non-holder")
	}
	th.Store(l.addr, unlocked)
}

// WaitUnlocked spins until the lock is observed free.
func (l *Lock) WaitUnlocked(th *htm.Thread) {
	for l.IsLocked(th) {
		runtime.Gosched()
	}
}

// System is the all-serial concurrency control: every transaction runs
// under the global lock. It is the degenerate baseline and the
// correctness oracle for the others.
type System struct {
	m       *htm.Machine
	lock    *Lock
	threads int
	col     *stats.Collector

	// hook, when set, routes every transaction's write set through a
	// tm.Recorder into the durability seam.
	hook tm.CommitHook
	recs []tm.Recorder
}

// NewSystem builds an SGL system for the first `threads` hardware threads
// of m.
func NewSystem(m *htm.Machine, threads int) *System {
	return &System{m: m, lock: New(m), threads: threads, col: stats.New(threads)}
}

// Name implements tm.System.
func (s *System) Name() string { return "sgl" }

// Threads implements tm.System.
func (s *System) Threads() int { return s.threads }

// Collector implements tm.System.
func (s *System) Collector() *stats.Collector { return s.col }

// SetCommitHook implements tm.HookableSystem. Call before any
// transaction runs.
func (s *System) SetCommitHook(h tm.CommitHook) {
	s.hook = h
	s.recs = make([]tm.Recorder, s.threads)
}

// Atomic implements tm.System by serialising body under the global lock.
func (s *System) Atomic(thread int, kind tm.Kind, body func(tm.Ops)) {
	th := s.m.Thread(thread)
	l := s.col.Thread(thread)
	s.lock.Acquire(th)
	defer s.lock.Release(th)
	if s.hook != nil {
		rec := &s.recs[thread]
		rec.Begin(tm.PlainOps{Th: th})
		body(rec)
		rec.Flush(thread, s.hook)
	} else {
		body(tm.PlainOps{Th: th})
	}
	l.Commit(kind == tm.KindReadOnly)
	l.Fallback()
}

var _ tm.System = (*System)(nil)
