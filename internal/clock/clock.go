// Package clock provides the global logical clock used by the SI-HTM
// state array (Algorithm 1 of the paper).
//
// The paper uses the POWER timebase register (mftb) to timestamp the
// per-thread state word when a transaction begins. The algorithm only
// requires that timestamps be strictly monotonic and never collide with
// the two reserved state values (inactive = 0 and completed = 1), so a
// shared atomic counter is a faithful substitute.
package clock

import "sync/atomic"

// Reserved state-word values from Algorithm 1. A timestamp returned by
// Now is always strictly greater than Completed.
const (
	Inactive  uint64 = 0
	Completed uint64 = 1
)

// Clock is a strictly monotonic logical clock. The zero value is ready to
// use; its first tick is Completed+1.
type Clock struct {
	t atomic.Uint64
}

// New returns a clock whose first tick is Completed+1.
func New() *Clock { return &Clock{} }

// Now returns a fresh timestamp, strictly greater than any previously
// returned one and strictly greater than Completed.
func (c *Clock) Now() uint64 {
	return c.t.Add(1) + Completed
}

// Last returns the most recently issued timestamp, or Completed if no
// timestamp has been issued yet. It is intended for tests and debugging.
func (c *Clock) Last() uint64 {
	return c.t.Load() + Completed
}
