package clock

import (
	"sync"
	"testing"
)

func TestNowIsMonotonic(t *testing.T) {
	c := New()
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		now := c.Now()
		if now <= prev {
			t.Fatalf("Now() = %d, want > %d", now, prev)
		}
		prev = now
	}
}

func TestNowNeverReturnsReservedValues(t *testing.T) {
	c := New()
	for i := 0; i < 100; i++ {
		if now := c.Now(); now == Inactive || now == Completed {
			t.Fatalf("Now() returned reserved value %d", now)
		}
	}
}

func TestFirstTick(t *testing.T) {
	c := New()
	if got := c.Now(); got != Completed+1 {
		t.Fatalf("first Now() = %d, want %d", got, Completed+1)
	}
}

func TestLast(t *testing.T) {
	c := New()
	if got := c.Last(); got != Completed {
		t.Fatalf("Last() before any tick = %d, want %d", got, Completed)
	}
	want := c.Now()
	if got := c.Last(); got != want {
		t.Fatalf("Last() = %d, want %d", got, want)
	}
}

func TestConcurrentTicksAreUnique(t *testing.T) {
	const goroutines = 8
	const perGoroutine = 2000
	c := New()
	var wg sync.WaitGroup
	results := make([][]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]uint64, perGoroutine)
			for i := range out {
				out[i] = c.Now()
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool, goroutines*perGoroutine)
	for _, out := range results {
		for _, ts := range out {
			if seen[ts] {
				t.Fatalf("timestamp %d issued twice", ts)
			}
			seen[ts] = true
		}
	}
	if len(seen) != goroutines*perGoroutine {
		t.Fatalf("issued %d unique timestamps, want %d", len(seen), goroutines*perGoroutine)
	}
}
