// Package topology models the processor topology of the machine the paper
// evaluates on: one IBM POWER8 8284-22A with 10 cores, each supporting up
// to 8 simultaneous multi-threading (SMT) hardware threads.
//
// Topology matters to the simulation for exactly one reason: the TMCAM
// transactional buffer is a per-core resource shared by all SMT threads
// co-located on that core (paper §2.2), so the mapping from software
// thread to core determines how HTM capacity is divided. The paper's
// experiments pin threads "spread first, then stack": thread counts
// 1..10 land one per core, and larger counts stack additional SMT
// threads on already-used cores (16 → SMT-2 on six cores, 40 → SMT-4,
// 80 → SMT-8).
package topology

import "fmt"

// Paper machine: IBM POWER8 8284-22A, 10 cores, SMT-8.
const (
	PaperCores   = 10
	PaperSMTWays = 8
)

// PaperThreadLadder is the x-axis used by every figure in the paper's
// evaluation (§4): "Number of threads (1,2,4,8,16,32,40,80)".
var PaperThreadLadder = []int{1, 2, 4, 8, 16, 32, 40, 80}

// Topology describes a simulated multicore with SMT.
type Topology struct {
	cores   int
	smtWays int
}

// New returns a topology with the given core count and SMT ways per core.
// It panics if either is not positive, mirroring make()'s behaviour for
// nonsensical sizes: a topology is always constructed from trusted
// configuration.
func New(cores, smtWays int) Topology {
	if cores <= 0 {
		panic(fmt.Sprintf("topology: cores must be positive, got %d", cores))
	}
	if smtWays <= 0 {
		panic(fmt.Sprintf("topology: smtWays must be positive, got %d", smtWays))
	}
	return Topology{cores: cores, smtWays: smtWays}
}

// Paper returns the paper's evaluation machine: 10 cores × SMT-8.
func Paper() Topology { return New(PaperCores, PaperSMTWays) }

// Cores returns the number of cores.
func (t Topology) Cores() int { return t.cores }

// SMTWays returns the maximum hardware threads per core.
func (t Topology) SMTWays() int { return t.smtWays }

// MaxThreads returns the total hardware thread capacity.
func (t Topology) MaxThreads() int { return t.cores * t.smtWays }

// Place maps a software thread id to its (core, smtSlot) under the
// spread-then-stack pinning policy used in the paper's run scripts:
// thread i runs on core i%cores, in SMT slot i/cores.
func (t Topology) Place(thread int) (core, smtSlot int) {
	if thread < 0 || thread >= t.MaxThreads() {
		panic(fmt.Sprintf("topology: thread %d out of range [0,%d)", thread, t.MaxThreads()))
	}
	return thread % t.cores, thread / t.cores
}

// CoreOf is shorthand for the core component of Place.
func (t Topology) CoreOf(thread int) int {
	core, _ := t.Place(thread)
	return core
}

// ActiveSMTLevel reports the maximum number of SMT threads that share any
// single core when the first n threads are placed. This is the "SMT-n"
// level the paper refers to (e.g. 16 threads on 10 cores → SMT-2).
func (t Topology) ActiveSMTLevel(n int) int {
	if n <= 0 {
		return 0
	}
	if n > t.MaxThreads() {
		n = t.MaxThreads()
	}
	return (n + t.cores - 1) / t.cores
}

// ThreadsOnCore reports how many of the first n threads land on the given
// core under the Place policy.
func (t Topology) ThreadsOnCore(core, n int) int {
	if core < 0 || core >= t.cores {
		panic(fmt.Sprintf("topology: core %d out of range [0,%d)", core, t.cores))
	}
	if n <= 0 {
		return 0
	}
	if n > t.MaxThreads() {
		n = t.MaxThreads()
	}
	full := n / t.cores
	if core < n%t.cores {
		return full + 1
	}
	return full
}

// String implements fmt.Stringer.
func (t Topology) String() string {
	return fmt.Sprintf("%d cores × SMT-%d", t.cores, t.smtWays)
}
