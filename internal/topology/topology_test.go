package topology

import (
	"testing"
	"testing/quick"
)

func TestPaperTopology(t *testing.T) {
	p := Paper()
	if p.Cores() != 10 || p.SMTWays() != 8 {
		t.Fatalf("Paper() = %v, want 10 cores × SMT-8", p)
	}
	if p.MaxThreads() != 80 {
		t.Fatalf("MaxThreads() = %d, want 80", p.MaxThreads())
	}
}

func TestPlaceSpreadsBeforeStacking(t *testing.T) {
	p := Paper()
	// First 10 threads: one per core, slot 0.
	for i := 0; i < 10; i++ {
		core, slot := p.Place(i)
		if core != i || slot != 0 {
			t.Fatalf("Place(%d) = (%d,%d), want (%d,0)", i, core, slot, i)
		}
	}
	// Thread 10 stacks on core 0, slot 1.
	core, slot := p.Place(10)
	if core != 0 || slot != 1 {
		t.Fatalf("Place(10) = (%d,%d), want (0,1)", core, slot)
	}
	// Thread 79 is the last SMT slot of the last core.
	core, slot = p.Place(79)
	if core != 9 || slot != 7 {
		t.Fatalf("Place(79) = (%d,%d), want (9,7)", core, slot)
	}
}

func TestPlaceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Place(80) on 10×8 topology did not panic")
		}
	}()
	Paper().Place(80)
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct{ cores, ways int }{{0, 8}, {-1, 8}, {10, 0}, {10, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.cores, tc.ways)
				}
			}()
			New(tc.cores, tc.ways)
		}()
	}
}

func TestActiveSMTLevelMatchesPaperLadder(t *testing.T) {
	p := Paper()
	want := map[int]int{1: 1, 2: 1, 4: 1, 8: 1, 16: 2, 32: 4, 40: 4, 80: 8}
	for n, lvl := range want {
		if got := p.ActiveSMTLevel(n); got != lvl {
			t.Errorf("ActiveSMTLevel(%d) = %d, want %d", n, got, lvl)
		}
	}
	if got := p.ActiveSMTLevel(0); got != 0 {
		t.Errorf("ActiveSMTLevel(0) = %d, want 0", got)
	}
	if got := p.ActiveSMTLevel(1000); got != 8 {
		t.Errorf("ActiveSMTLevel(1000) = %d, want clamp to 8", got)
	}
}

func TestThreadsOnCore(t *testing.T) {
	p := Paper()
	// With 16 threads: cores 0-5 have 2 threads, cores 6-9 have 1.
	for core := 0; core < 10; core++ {
		want := 1
		if core < 6 {
			want = 2
		}
		if got := p.ThreadsOnCore(core, 16); got != want {
			t.Errorf("ThreadsOnCore(%d, 16) = %d, want %d", core, got, want)
		}
	}
	if got := p.ThreadsOnCore(3, 0); got != 0 {
		t.Errorf("ThreadsOnCore(3, 0) = %d, want 0", got)
	}
}

// Property: summing ThreadsOnCore over all cores equals min(n, MaxThreads),
// and the per-core count never exceeds what Place assigns.
func TestThreadsOnCoreSumProperty(t *testing.T) {
	p := Paper()
	f := func(n uint8) bool {
		total := 0
		for core := 0; core < p.Cores(); core++ {
			total += p.ThreadsOnCore(core, int(n))
		}
		want := int(n)
		if want > p.MaxThreads() {
			want = p.MaxThreads()
		}
		return total == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Place agrees with ThreadsOnCore — placing the first n threads
// puts exactly ThreadsOnCore(c, n) of them on core c.
func TestPlaceAgreesWithThreadsOnCore(t *testing.T) {
	p := New(7, 5) // deliberately not the paper topology
	f := func(nRaw uint8) bool {
		n := int(nRaw) % (p.MaxThreads() + 1)
		counts := make([]int, p.Cores())
		for i := 0; i < n; i++ {
			core, slot := p.Place(i)
			if slot != counts[core] {
				return false // slots must fill in order
			}
			counts[core]++
		}
		for c := 0; c < p.Cores(); c++ {
			if counts[c] != p.ThreadsOnCore(c, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if got := Paper().String(); got != "10 cores × SMT-8" {
		t.Fatalf("String() = %q", got)
	}
}
