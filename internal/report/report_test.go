package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sihtm/internal/alert"
	"sihtm/internal/trace"
	"sihtm/internal/tsdb"
)

// fixtureNode builds a synthetic node: 5 points at 100ms spacing, a
// capacity-abort cliff firing between points 1 and 3, one slow request
// trace inside the firing window and one outside it.
func fixtureNode() NodeData {
	base := int64(1_000_000_000_000)
	step := int64(100 * time.Millisecond)
	times := []int64{base, base + step, base + 2*step, base + 3*step, base + 4*step}
	ts := tsdb.Dump{
		IntervalMs: 100,
		Retention:  64,
		TimesNs:    times,
		Series: []tsdb.DumpSeries{
			{Name: "sihtm_tm_commits_total", Labels: map[string]string{"path": "update", "system": "htm"},
				Kind: "counter", Values: []float64{0, 100, 200, 300, 400}},
			{Name: "sihtm_tm_aborts_total", Labels: map[string]string{"cause": "capacity", "system": "htm"},
				Kind: "counter", Values: []float64{0, 40, 80, 90, 90}},
			{Name: "sihtm_tm_aborts_total", Labels: map[string]string{"cause": "conflict", "system": "htm"},
				Kind: "counter", Values: []float64{0, 5, 10, 10, 10}},
			{Name: "sihtm_server_service_seconds", Kind: "histogram",
				Counts: []uint64{0, 100, 200, 300, 400},
				P50Us:  []float64{0, 300, 350, 200, 150},
				P99Us:  []float64{0, 900, 1200, 400, 300}},
		},
	}
	al := alert.Dump{
		Rules: []alert.RuleStatus{
			{Name: alert.RuleCapacityShare, Kind: "burn-rate", Severity: "page",
				State: "inactive", Op: ">", Threshold: 0.02},
			{Name: alert.RuleP99SLO, Kind: "burn-rate", Severity: "page",
				State: "inactive", Op: ">", Threshold: 0.0005}, // 500µs
		},
		Events: []alert.Event{
			{Rule: alert.RuleCapacityShare, Severity: "page", To: "firing", AtNs: times[1], Value: 0.28},
			{Rule: alert.RuleCapacityShare, Severity: "page", To: "resolved", AtNs: times[3], Value: 0.0},
		},
	}
	spans := []trace.Span{
		// Inside the firing window.
		{Trace: 42, Kind: trace.KRequest, Start: times[2], Dur: int64(2 * time.Millisecond)},
		{Trace: 42, Kind: trace.KAdmit, Start: times[2], Dur: int64(1500 * time.Microsecond)},
		{Trace: 42, Kind: trace.KExec, Start: times[2], Dur: int64(400 * time.Microsecond)},
		// Outside every firing window.
		{Trace: 77, Kind: trace.KRequest, Start: times[4], Dur: int64(5 * time.Millisecond)},
	}
	return NodeData{Name: "leader", TS: ts, Alerts: al, Spans: spans}
}

func TestAnalyze(t *testing.T) {
	a := Analyze(Inputs{Title: "t", Nodes: []NodeData{fixtureNode()}})
	if len(a.Timeline) != 2 || a.Timeline[0].To != "firing" || a.Timeline[1].To != "resolved" {
		t.Fatalf("timeline = %+v", a.Timeline)
	}
	if a.Timeline[0].OffsetS != 0.1 {
		t.Fatalf("firing offset = %v want 0.1s", a.Timeline[0].OffsetS)
	}
	if len(a.Exemplars) != 1 {
		t.Fatalf("exemplars = %+v, want exactly the in-window trace", a.Exemplars)
	}
	ex := a.Exemplars[0]
	if ex.Trace != 42 || ex.Rule != alert.RuleCapacityShare {
		t.Fatalf("exemplar = %+v", ex)
	}
	if ex.Stages["admit"] != 1500*time.Microsecond {
		t.Fatalf("exemplar stages = %+v", ex.Stages)
	}
	// Aborts: capacity 90 of (400 commits + 90 + 10) attempts = 18%.
	if len(a.Aborts) != 2 || a.Aborts[0].Cause != "capacity" {
		t.Fatalf("aborts = %+v", a.Aborts)
	}
	if got := a.Aborts[0].Share; got < 0.179 || got > 0.181 {
		t.Fatalf("capacity share = %v want 0.18", got)
	}
	// SLO: threshold 500µs; traffic intervals p99 = 900,1200,400,300 →
	// 2 of 4 compliant, worst 1200.
	if len(a.SLO) != 1 {
		t.Fatalf("slo = %+v", a.SLO)
	}
	slo := a.SLO[0]
	if slo.Points != 4 || slo.Compliant != 2 || slo.WorstUs != 1200 {
		t.Fatalf("slo = %+v", slo)
	}
	if len(a.FiringNow) != 0 {
		t.Fatalf("firing now = %v", a.FiringNow)
	}
}

func TestRender(t *testing.T) {
	in := Inputs{Title: "net-slo smoke", Nodes: []NodeData{fixtureNode()}}
	var buf bytes.Buffer
	if err := Build(&buf, in); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	for _, want := range []string{
		"# Incident report: net-slo smoke",
		"## Alert timeline",
		alert.RuleCapacityShare,
		"**firing**",
		"**resolved**",
		"## Worst traces per firing window",
		"`42`",
		"admit 1.5ms",
		"## Abort-cause attribution",
		"| leader | capacity | 90 | 18.00% |",
		"## SLO compliance",
		"2 (50%)",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q:\n%s", want, md)
		}
	}
	// A healthy run renders the empty-state prose, not empty tables.
	healthy := fixtureNode()
	healthy.Alerts.Events = nil
	var hb bytes.Buffer
	if err := Build(&hb, Inputs{Nodes: []NodeData{healthy}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hb.String(), "No alert transitions") ||
		!strings.Contains(hb.String(), "No request traces fell inside a firing window") {
		t.Fatalf("healthy report:\n%s", hb.String())
	}
}
