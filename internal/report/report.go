// Package report is the post-run incident analyzer: it joins one or
// more nodes' time-series dumps (/debug/timeseries), alert transitions
// (/debug/alerts), and trace rings (/debug/traces) into an
// incident-style markdown report — SLO compliance, the alert timeline,
// the worst request traces inside each firing window, and abort-cause
// attribution. Analyze produces the joined facts as data (the `net-slo`
// cell asserts on them directly); Render turns them into markdown;
// Build is both. Collect fetches a node's three surfaces over HTTP —
// the shared path of `repro report` and the registry cell.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"sihtm/internal/alert"
	"sihtm/internal/results"
	"sihtm/internal/trace"
	"sihtm/internal/tsdb"
)

// NodeData is one node's raw observability surfaces.
type NodeData struct {
	Name   string
	TS     tsdb.Dump
	Alerts alert.Dump
	Spans  []trace.Span
}

// Inputs is everything a report joins.
type Inputs struct {
	Title string
	Nodes []NodeData
	// Bench optionally attaches the run's final BENCH records.
	Bench *results.Report
}

// TimelineEvent is one alert transition placed on the run's time axis.
type TimelineEvent struct {
	Node     string
	Rule     string
	Severity string
	To       string // "firing" | "resolved"
	AtNs     int64
	// OffsetS is seconds since the node's first dumped point.
	OffsetS float64
	Value   float64
}

// Exemplar is one slow request trace attributed to a firing window.
type Exemplar struct {
	Node    string
	Rule    string
	Trace   uint64
	StartNs int64
	Dur     time.Duration
	// Stages breaks the request down by server stage, same trace id.
	Stages map[string]time.Duration
}

// AbortCause is one cause's share of attempts over a node's dump.
type AbortCause struct {
	Node  string
	Cause string
	Count float64
	Share float64 // of attempts (commits + aborts) over the dump
}

// SLOCompliance summarizes service p99 against an alert threshold.
type SLOCompliance struct {
	Node        string
	Rule        string
	ThresholdUs float64
	// Points is the number of dump intervals that saw traffic;
	// Compliant of them had interval p99 at or under the threshold.
	Points    int
	Compliant int
	WorstUs   float64
}

// Analysis is the joined, assertable result.
type Analysis struct {
	Timeline   []TimelineEvent
	Exemplars  []Exemplar
	Aborts     []AbortCause
	SLO        []SLOCompliance
	FiringNow  []string // rules still firing at dump time, "node/rule"
	SpanCounts map[string]int
}

// exemplarsPerWindow bounds the worst-trace list of one firing window.
const exemplarsPerWindow = 3

// Analyze joins the inputs.
func Analyze(in Inputs) Analysis {
	var a Analysis
	a.SpanCounts = make(map[string]int)
	for _, n := range in.Nodes {
		a.SpanCounts[n.Name] = len(n.Spans)
		var start int64
		if len(n.TS.TimesNs) > 0 {
			start = n.TS.TimesNs[0]
		}
		for _, ev := range n.Alerts.Events {
			a.Timeline = append(a.Timeline, TimelineEvent{
				Node:     n.Name,
				Rule:     ev.Rule,
				Severity: ev.Severity,
				To:       ev.To,
				AtNs:     ev.AtNs,
				OffsetS:  float64(ev.AtNs-start) / 1e9,
				Value:    ev.Value,
			})
		}
		for _, rs := range n.Alerts.Rules {
			if rs.State == "firing" {
				a.FiringNow = append(a.FiringNow, n.Name+"/"+rs.Name)
			}
		}
		a.Exemplars = append(a.Exemplars, exemplars(n)...)
		a.Aborts = append(a.Aborts, abortAttribution(n)...)
		a.SLO = append(a.SLO, sloCompliance(n)...)
	}
	sort.Slice(a.Timeline, func(i, j int) bool { return a.Timeline[i].AtNs < a.Timeline[j].AtNs })
	return a
}

// firingWindows pairs each firing event with its resolve (or the end of
// the dump when still firing).
func firingWindows(n NodeData) map[string][][2]int64 {
	end := int64(1<<63 - 1)
	if len(n.TS.TimesNs) > 0 {
		end = n.TS.TimesNs[len(n.TS.TimesNs)-1]
	}
	open := map[string]int64{}
	out := map[string][][2]int64{}
	evs := append([]alert.Event(nil), n.Alerts.Events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].AtNs < evs[j].AtNs })
	for _, ev := range evs {
		switch ev.To {
		case "firing":
			open[ev.Rule] = ev.AtNs
		case "resolved":
			if at, ok := open[ev.Rule]; ok {
				out[ev.Rule] = append(out[ev.Rule], [2]int64{at, ev.AtNs})
				delete(open, ev.Rule)
			}
		}
	}
	for rule, at := range open {
		out[rule] = append(out[rule], [2]int64{at, end})
	}
	return out
}

// exemplars picks the slowest server-side request spans inside each
// firing window.
func exemplars(n NodeData) []Exemplar {
	windows := firingWindows(n)
	if len(windows) == 0 {
		return nil
	}
	// Index stage durations by trace id once.
	stages := map[uint64]map[string]time.Duration{}
	for _, s := range n.Spans {
		if s.Trace == 0 || s.Kind == trace.KRequest || s.Kind == trace.KClient {
			continue
		}
		m := stages[s.Trace]
		if m == nil {
			m = map[string]time.Duration{}
			stages[s.Trace] = m
		}
		m[s.Kind.String()] += time.Duration(s.Dur)
	}
	var out []Exemplar
	for rule, ws := range windows {
		for _, w := range ws {
			var cand []Exemplar
			for _, s := range n.Spans {
				if s.Kind != trace.KRequest || s.Trace == 0 {
					continue
				}
				if s.Start < w[0] || s.Start > w[1] {
					continue
				}
				cand = append(cand, Exemplar{
					Node: n.Name, Rule: rule, Trace: s.Trace,
					StartNs: s.Start, Dur: time.Duration(s.Dur),
					Stages: stages[s.Trace],
				})
			}
			sort.Slice(cand, func(i, j int) bool { return cand[i].Dur > cand[j].Dur })
			if len(cand) > exemplarsPerWindow {
				cand = cand[:exemplarsPerWindow]
			}
			out = append(out, cand...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Dur > out[j].Dur
	})
	return out
}

// abortAttribution computes each cause's count and share of attempts
// over the whole dump.
func abortAttribution(n NodeData) []AbortCause {
	var attempts float64
	for _, ds := range n.TS.Find("sihtm_tm_commits_total") {
		if d, ok := n.TS.ScalarDelta(ds, 0); ok {
			attempts += d
		}
	}
	causes := n.TS.Find("sihtm_tm_aborts_total")
	var deltas []AbortCause
	for _, ds := range causes {
		d, ok := n.TS.ScalarDelta(ds, 0)
		if !ok {
			continue
		}
		attempts += d
		deltas = append(deltas, AbortCause{Node: n.Name, Cause: ds.Labels["cause"], Count: d})
	}
	for i := range deltas {
		if attempts > 0 {
			deltas[i].Share = deltas[i].Count / attempts
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Count > deltas[j].Count })
	return deltas
}

// sloCompliance measures the service-latency histogram against any
// latency alert rule's threshold.
func sloCompliance(n NodeData) []SLOCompliance {
	var thresholdUs float64
	rule := ""
	for _, rs := range n.Alerts.Rules {
		if rs.Name == alert.RuleP99SLO {
			thresholdUs = rs.Threshold * 1e6
			rule = rs.Name
		}
	}
	if rule == "" {
		return nil
	}
	var out []SLOCompliance
	for _, ds := range n.TS.Find("sihtm_server_service_seconds") {
		c := SLOCompliance{Node: n.Name, Rule: rule, ThresholdUs: thresholdUs}
		for _, p99 := range ds.P99Us {
			if p99 <= 0 {
				continue // idle interval
			}
			c.Points++
			if p99 <= thresholdUs {
				c.Compliant++
			}
			if p99 > c.WorstUs {
				c.WorstUs = p99
			}
		}
		out = append(out, c)
	}
	return out
}

// Render writes the analysis as incident-style markdown.
func Render(w io.Writer, in Inputs, a Analysis) error {
	title := in.Title
	if title == "" {
		title = "run"
	}
	fmt.Fprintf(w, "# Incident report: %s\n\n", title)
	for _, n := range in.Nodes {
		span := "no points"
		if len(n.TS.TimesNs) > 1 {
			span = time.Duration(n.TS.TimesNs[len(n.TS.TimesNs)-1] - n.TS.TimesNs[0]).Round(time.Millisecond).String()
		}
		fmt.Fprintf(w, "- node `%s`: %d points over %s (interval %.0fms, %d spans in ring, %d scrape overruns)\n",
			n.Name, len(n.TS.TimesNs), span, n.TS.IntervalMs, a.SpanCounts[n.Name], n.TS.ScrapeOverruns)
	}

	fmt.Fprintf(w, "\n## SLO compliance\n\n")
	if len(a.SLO) == 0 {
		fmt.Fprintf(w, "No latency SLO rule was active (server ran without `--p99-target`).\n")
	} else {
		fmt.Fprintf(w, "| node | rule | threshold | intervals with traffic | compliant | worst p99 |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|---|\n")
		for _, c := range a.SLO {
			pct := 100.0
			if c.Points > 0 {
				pct = 100 * float64(c.Compliant) / float64(c.Points)
			}
			fmt.Fprintf(w, "| %s | %s | %.0fµs | %d | %d (%.0f%%) | %.0fµs |\n",
				c.Node, c.Rule, c.ThresholdUs, c.Points, c.Compliant, pct, c.WorstUs)
		}
	}

	fmt.Fprintf(w, "\n## Alert timeline\n\n")
	if len(a.Timeline) == 0 {
		fmt.Fprintf(w, "No alert transitions — the run stayed healthy.\n")
	} else {
		fmt.Fprintf(w, "| t+ | node | rule | severity | transition | value |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|---|\n")
		for _, ev := range a.Timeline {
			fmt.Fprintf(w, "| %.2fs | %s | %s | %s | **%s** | %.4g |\n",
				ev.OffsetS, ev.Node, ev.Rule, ev.Severity, ev.To, ev.Value)
		}
		if len(a.FiringNow) > 0 {
			fmt.Fprintf(w, "\nStill firing at dump time: %s.\n", strings.Join(a.FiringNow, ", "))
		}
	}

	fmt.Fprintf(w, "\n## Worst traces per firing window\n\n")
	if len(a.Exemplars) == 0 {
		fmt.Fprintf(w, "No request traces fell inside a firing window.\n")
	} else {
		fmt.Fprintf(w, "| rule | node | trace | duration | stages |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|\n")
		for _, ex := range a.Exemplars {
			var stages []string
			for _, k := range []string{"admit", "exec", "ack", "flush"} {
				if d, ok := ex.Stages[k]; ok {
					stages = append(stages, fmt.Sprintf("%s %s", k, d.Round(time.Microsecond)))
				}
			}
			fmt.Fprintf(w, "| %s | %s | `%d` | %s | %s |\n",
				ex.Rule, ex.Node, ex.Trace, ex.Dur.Round(time.Microsecond), strings.Join(stages, ", "))
		}
		fmt.Fprintf(w, "\nReplay any of these with `repro trace --trace=ID NODE=URL`.\n")
	}

	fmt.Fprintf(w, "\n## Abort-cause attribution\n\n")
	if len(a.Aborts) == 0 {
		fmt.Fprintf(w, "No abort counters in the dump.\n")
	} else {
		fmt.Fprintf(w, "| node | cause | aborts | share of attempts |\n")
		fmt.Fprintf(w, "|---|---|---|---|\n")
		for _, ac := range a.Aborts {
			fmt.Fprintf(w, "| %s | %s | %.0f | %.2f%% |\n", ac.Node, ac.Cause, ac.Count, 100*ac.Share)
		}
	}

	if in.Bench != nil && len(in.Bench.Records) > 0 {
		fmt.Fprintf(w, "\n## Final stats\n\n")
		fmt.Fprintf(w, "| experiment | system | threads | throughput | p50 | p99 |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|---|\n")
		for _, r := range in.Bench.Records {
			fmt.Fprintf(w, "| %s | %s | %d | %.0f tx/s | %.0fµs | %.0fµs |\n",
				r.Experiment, r.System, r.Threads, r.Throughput, r.LatencyP50Us, r.LatencyP99Us)
		}
	}
	return nil
}

// Build is Analyze + Render.
func Build(w io.Writer, in Inputs) error {
	return Render(w, in, Analyze(in))
}

// Collect fetches one node's three observability surfaces from the
// metrics listener base URL ("http://host:port").
func Collect(name, base string) (NodeData, error) {
	n := NodeData{Name: name}
	base = strings.TrimSuffix(base, "/")
	body, err := httpGet(base + "/debug/timeseries")
	if err != nil {
		return n, err
	}
	if err := json.Unmarshal(body, &n.TS); err != nil {
		return n, fmt.Errorf("report: %s/debug/timeseries: %w", base, err)
	}
	body, err = httpGet(base + "/debug/alerts")
	if err != nil {
		return n, err
	}
	if err := json.Unmarshal(body, &n.Alerts); err != nil {
		return n, fmt.Errorf("report: %s/debug/alerts: %w", base, err)
	}
	body, err = httpGet(base + "/debug/traces")
	if err != nil {
		return n, err
	}
	spans, _, err := trace.ReadJSONL(strings.NewReader(string(body)))
	if err != nil {
		return n, fmt.Errorf("report: %s/debug/traces: %w", base, err)
	}
	n.Spans = spans
	return n, nil
}

func httpGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("report: GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}
