package imdb_test

import (
	"errors"
	"sync"
	"testing"

	"sihtm/internal/imdb"
	"sihtm/internal/memsim"
	"sihtm/internal/tm"
	"sihtm/internal/tmtest"
)

type plainOps struct{ heap *memsim.Heap }

func (o plainOps) Read(a memsim.Addr) uint64     { return o.heap.Load(a) }
func (o plainOps) Write(a memsim.Addr, v uint64) { o.heap.Store(a, v) }

func ordersSchema() imdb.Schema {
	return imdb.Schema{
		Table:   "orders",
		Columns: []string{"id", "customer", "amount", "status"},
	}
}

func newOrdersTable(t testing.TB, capacity int, withIndex bool) (*imdb.Table, *memsim.Heap) {
	t.Helper()
	heap := memsim.NewHeapLines(imdb.HeapLinesForTable(ordersSchema(), capacity, 1))
	db := imdb.New(heap)
	tab, err := db.CreateTable(ordersSchema(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	if withIndex {
		if err := tab.CreateIndex("customer"); err != nil {
			t.Fatal(err)
		}
	}
	return tab, heap
}

// insertPlain runs the full writer protocol for one non-transactional
// insert.
func insertPlain(t testing.TB, w *imdb.Writer, ops tm.Ops, vals []uint64) imdb.RowID {
	t.Helper()
	w.Prepare()
	id, err := w.Insert(ops, vals)
	if err != nil {
		t.Fatal(err)
	}
	w.Commit()
	return id
}

func TestSchemaValidation(t *testing.T) {
	bad := []imdb.Schema{
		{},
		{Table: "t"},
		{Table: "t", Columns: []string{"a", "a"}},
		{Table: "t", Columns: []string{""}},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("schema %d validated", i)
		}
	}
	if err := ordersSchema().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateTableErrors(t *testing.T) {
	heap := memsim.NewHeapLines(1 << 12)
	db := imdb.New(heap)
	if _, err := db.CreateTable(ordersSchema(), 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := db.CreateTable(ordersSchema(), 8); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(ordersSchema(), 8); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.Table("orders"); err != nil {
		t.Error("lookup of existing table failed")
	}
	if _, err := db.Table("nope"); err == nil {
		t.Error("lookup of missing table succeeded")
	}
}

func TestIndexCreationRules(t *testing.T) {
	tab, heap := newOrdersTable(t, 128, false)
	if err := tab.CreateIndex("nope"); err == nil {
		t.Error("index on unknown column accepted")
	}
	if err := tab.CreateIndex("id"); err == nil {
		t.Error("index on primary key accepted")
	}
	if err := tab.CreateIndex("customer"); err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateIndex("customer"); err == nil {
		t.Error("duplicate index accepted")
	}
	// Non-empty table refuses new indexes.
	insertPlain(t, tab.NewWriter(), plainOps{heap}, []uint64{1, 2, 3, 0})
	if err := tab.CreateIndex("amount"); err == nil {
		t.Error("index on non-empty table accepted")
	}
}

func TestCRUDAndScans(t *testing.T) {
	tab, heap := newOrdersTable(t, 128, true)
	ops := plainOps{heap}
	w := tab.NewWriter()

	rowOf := make(map[int]imdb.RowID)
	for i := 0; i < 20; i++ {
		rowOf[i] = insertPlain(t, w, ops, []uint64{uint64(100 + i), uint64(i % 4), uint64(10 * i), 0})
	}
	if tab.Rows() != 20 {
		t.Fatalf("Rows = %d, want 20", tab.Rows())
	}

	// Duplicate pk rejected.
	w.Prepare()
	if _, err := w.Insert(ops, []uint64{100, 0, 0, 0}); !errors.Is(err, imdb.ErrDuplicateKey) {
		t.Fatalf("duplicate insert error = %v", err)
	}

	// Point reads through the pk index.
	id, ok := tab.LookupPK(ops, 107)
	if !ok || tab.Get(ops, id, "amount") != 70 {
		t.Fatalf("LookupPK(107) → %d, amount %d", id, tab.Get(ops, id, "amount"))
	}

	// PK range scan.
	var keys []uint64
	tab.ScanPK(ops, 105, 110, func(id imdb.RowID) bool {
		keys = append(keys, tab.Get(ops, id, "id"))
		return true
	})
	if len(keys) != 6 || keys[0] != 105 || keys[5] != 110 {
		t.Fatalf("ScanPK = %v", keys)
	}

	// Secondary index scan: customer 2 owns i = 2, 6, 10, 14, 18.
	count := 0
	if err := tab.ScanIndex(ops, "customer", 2, 2, func(id imdb.RowID) bool {
		if tab.Get(ops, id, "customer") != 2 {
			t.Fatalf("index scan returned wrong row %d", id)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("index scan found %d rows, want 5", count)
	}

	// Update an indexed column: the index must follow.
	pool := w.Pool()
	pool.Reset()
	tab.Update(ops, rowOf[2], "customer", 9, pool)
	pool.Commit()
	found := false
	tab.ScanIndex(ops, "customer", 9, 9, func(id imdb.RowID) bool {
		found = id == rowOf[2]
		return true
	})
	if !found {
		t.Fatal("index did not follow the update")
	}
	// Update of a non-indexed column needs no pool.
	tab.Update(ops, rowOf[2], "status", 1, nil)
	if tab.Get(ops, rowOf[2], "status") != 1 {
		t.Fatal("plain update lost")
	}

	if err := tab.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertErrors(t *testing.T) {
	tab, heap := newOrdersTable(t, 2, false)
	ops := plainOps{heap}
	w := tab.NewWriter()
	w.Prepare()

	if _, err := w.Insert(ops, []uint64{1, 2}); err == nil {
		t.Error("wrong arity accepted")
	}
	for i := 0; i < 2; i++ {
		insertPlain(t, w, ops, []uint64{uint64(i + 1), 0, 0, 0})
	}
	w.Prepare()
	if _, err := w.Insert(ops, []uint64{99, 0, 0, 0}); !errors.Is(err, imdb.ErrTableFull) {
		t.Fatalf("full-table insert error = %v", err)
	}
}

func TestWriterRetryReusesSlot(t *testing.T) {
	tab, heap := newOrdersTable(t, 128, false)
	ops := plainOps{heap}
	w := tab.NewWriter()
	w.Prepare()

	// Simulate an aborted attempt: Insert without Commit, then "retry".
	// (Distinct keys, because plain ops do not roll back the first
	// attempt's index write the way a real aborted transaction would.)
	id1, err := w.Insert(ops, []uint64{7, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := w.Insert(ops, []uint64{8, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("retry changed row slot: %d vs %d", id1, id2)
	}
	w.Commit()
	if tab.Rows() != 1 {
		t.Fatalf("Rows = %d, want 1", tab.Rows())
	}
	// Commit without a pending insert is a no-op.
	w.Commit()
	if tab.Rows() != 1 {
		t.Fatalf("Rows after no-op Commit = %d", tab.Rows())
	}
}

// Concurrent order entry + reporting under every concurrency control:
// the row store and both indexes must stay mutually consistent.
func TestConcurrentUseUnderEverySystem(t *testing.T) {
	for _, f := range tmtest.StandardFactories(0) {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			const threads = 4
			const perThread = 120
			capacity := threads*perThread + 4*64 // slack for segment rounding
			heap := memsim.NewHeapLines(imdb.HeapLinesForTable(ordersSchema(), capacity, 1))
			db := imdb.New(heap)
			tab, err := db.CreateTable(ordersSchema(), capacity)
			if err != nil {
				t.Fatal(err)
			}
			if err := tab.CreateIndex("customer"); err != nil {
				t.Fatal(err)
			}
			sys := f.New(heap, threads)
			var wg sync.WaitGroup
			for id := 0; id < threads; id++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					w := tab.NewWriter()
					w.Prepare()
					for i := 0; i < perThread; i++ {
						pk := uint64(worker*perThread+i) + 1
						var insErr error
						sys.Atomic(worker, tm.KindUpdate, func(ops tm.Ops) {
							_, insErr = w.Insert(ops, []uint64{pk, pk % 7, pk * 3, 0})
						})
						if insErr != nil {
							t.Errorf("%s: insert %d: %v", f.Name, pk, insErr)
							return
						}
						w.Commit()
						if i%16 == 0 { // read-only report
							sys.Atomic(worker, tm.KindReadOnly, func(ops tm.Ops) {
								total := uint64(0)
								tab.ScanPK(ops, 0, ^uint64(0), func(id imdb.RowID) bool {
									total += tab.Get(ops, id, "amount")
									return true
								})
							})
						}
					}
				}(id)
			}
			wg.Wait()
			if tab.Rows() != threads*perThread {
				t.Fatalf("%s: rows = %d, want %d", f.Name, tab.Rows(), threads*perThread)
			}
			if err := tab.CheckConsistency(); err != nil {
				t.Fatalf("%s: %v", f.Name, err)
			}
		})
	}
}
