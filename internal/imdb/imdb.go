// Package imdb is a miniature in-memory database engine over the
// transactional heap — the integration target the paper's introduction
// motivates: relational-style tables with fixed-width rows, a primary-key
// B+tree index and optional secondary indexes, all accessed through
// tm.Ops so that any of the repository's concurrency controls (SI-HTM
// first among them) provides isolation.
//
// The design keeps the cache-line cost model front and centre: rows are
// line-aligned with a known footprint, index probes cost ~2 lines per
// level, and range reports stream leaf chains — so the capacity
// behaviour studied by the paper transfers directly to this layer.
package imdb

import (
	"fmt"
	"sync/atomic"

	"sihtm/internal/index/btree"
	"sihtm/internal/memsim"
	"sihtm/internal/tm"
)

// RowID identifies a row within its table.
type RowID uint64

// Schema declares a table's columns. Every column is one 64-bit word;
// column 0 is the primary key. Wider payloads are modelled by multiple
// columns (as the TPC-C workload does with hashed strings).
type Schema struct {
	Table   string
	Columns []string
}

// Validate checks the schema.
func (s Schema) Validate() error {
	if s.Table == "" {
		return fmt.Errorf("imdb: schema needs a table name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("imdb: table %q needs at least one column (the primary key)", s.Table)
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if c == "" || seen[c] {
			return fmt.Errorf("imdb: table %q has empty or duplicate column %q", s.Table, c)
		}
		seen[c] = true
	}
	return nil
}

// rowWords returns the padded row stride: rows never straddle more lines
// than necessary, and rows of ≤16 words get exactly one line so row
// accesses have a fixed footprint.
func (s Schema) rowWords() int {
	w := len(s.Columns)
	lines := (w + memsim.WordsPerLine - 1) / memsim.WordsPerLine
	return lines * memsim.WordsPerLine
}

// Table is a fixed-capacity row store with a primary-key index.
//
// Row slots are allocated through per-worker Writers in segment chunks,
// never through a shared transactional counter: a single hot counter line
// would serialise every insert and, under rollback-only transactions,
// degenerate into a reader-kills-writer storm (every insert's read of the
// counter invalidating the previous claimant). Slot allocation is
// metadata, not data — an aborted insert retries into the same slot — so
// it needs no transactional protection.
type Table struct {
	schema   Schema
	heap     *memsim.Heap
	base     memsim.Addr
	stride   int
	capacity int
	nextSlot atomic.Int64 // segment allocator (Go-side, non-transactional)
	rows     atomic.Int64 // committed row count
	colIndex map[string]int
	pk       *btree.Tree
	secons   map[string]*btree.Tree // secondary indexes by column
}

// DB owns tables over one heap.
type DB struct {
	heap   *memsim.Heap
	tables map[string]*Table
}

// New creates an empty database on heap.
func New(heap *memsim.Heap) *DB {
	return &DB{heap: heap, tables: make(map[string]*Table)}
}

// CreateTable allocates a table with fixed row capacity. Setup-time only.
func (db *DB) CreateTable(schema Schema, capacity int) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("imdb: table %q capacity must be positive", schema.Table)
	}
	if _, dup := db.tables[schema.Table]; dup {
		return nil, fmt.Errorf("imdb: table %q already exists", schema.Table)
	}
	stride := schema.rowWords()
	t := &Table{
		schema:   schema,
		heap:     db.heap,
		base:     db.heap.AllocLines(capacity * stride / memsim.WordsPerLine),
		stride:   stride,
		capacity: capacity,
		colIndex: make(map[string]int, len(schema.Columns)),
		pk:       btree.New(db.heap),
		secons:   make(map[string]*btree.Tree),
	}
	for i, c := range schema.Columns {
		t.colIndex[c] = i
	}
	db.tables[schema.Table] = t
	return t, nil
}

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("imdb: unknown table %q", name)
	}
	return t, nil
}

// CreateIndex adds a secondary index on a column. Setup-time only (the
// table must still be empty).
func (t *Table) CreateIndex(column string) error {
	if _, ok := t.colIndex[column]; !ok {
		return fmt.Errorf("imdb: table %q has no column %q", t.schema.Table, column)
	}
	if column == t.schema.Columns[0] {
		return fmt.Errorf("imdb: column %q is the primary key", column)
	}
	if t.nextSlot.Load() != 0 {
		return fmt.Errorf("imdb: CreateIndex on non-empty table %q", t.schema.Table)
	}
	if _, dup := t.secons[column]; dup {
		return fmt.Errorf("imdb: duplicate index on %q", column)
	}
	t.secons[column] = btree.New(t.heap)
	return nil
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Capacity returns the maximum row count.
func (t *Table) Capacity() int { return t.capacity }

// col resolves a column name, panicking on unknown names: column sets are
// static program structure, so a miss is a caller bug, not a data error.
func (t *Table) col(name string) int {
	i, ok := t.colIndex[name]
	if !ok {
		panic(fmt.Sprintf("imdb: table %q has no column %q", t.schema.Table, name))
	}
	return i
}

func (t *Table) rowAddr(id RowID) memsim.Addr {
	if uint64(id) >= uint64(t.capacity) {
		panic(fmt.Sprintf("imdb: row %d out of range [0,%d)", id, t.capacity))
	}
	return t.base + memsim.Addr(uint64(id)*uint64(t.stride))
}

// Secondary-index keys are (columnValue, rowID) composites so duplicate
// column values coexist: value in the high bits, row id in the low bits.
const seconRowBits = 24 // up to 16M rows per table

func seconKey(val uint64, id RowID) uint64 {
	return val<<seconRowBits | uint64(id)
}

// ErrDuplicateKey is returned by Insert for an existing primary key.
var ErrDuplicateKey = fmt.Errorf("imdb: duplicate primary key")

// ErrTableFull is returned by Insert when capacity is exhausted.
var ErrTableFull = fmt.Errorf("imdb: table full")

// segmentRows is the chunk a Writer reserves from the table at a time.
const segmentRows = 64

// Writer is one worker's insert handle: it owns a private range of row
// slots and an index-node pool, so concurrent inserts share no allocation
// state. Use one Writer per worker goroutine.
//
// Protocol per insert: call Insert inside the transaction body (bodies
// may retry; the Writer hands the same slot and the same index nodes to
// every attempt) and Commit exactly once after the transaction committed.
type Writer struct {
	t        *Table
	pool     *btree.Pool
	segNext  int // next unused slot in the segment
	segLimit int // one past the segment's last slot
	pending  bool
}

// NewWriter creates an insert handle for one worker.
func (t *Table) NewWriter() *Writer {
	return &Writer{t: t, pool: btree.NewPool(t.heap)}
}

// reserve returns the slot for the current insert, claiming a fresh
// segment when the current one is exhausted. Idempotent across retries of
// one insert (the slot advances only in Commit).
func (w *Writer) reserve() (RowID, error) {
	if w.segNext == w.segLimit {
		base := int(w.t.nextSlot.Add(segmentRows)) - segmentRows
		if base >= w.t.capacity {
			w.t.nextSlot.Add(-segmentRows)
			return 0, ErrTableFull
		}
		w.segNext = base
		w.segLimit = base + segmentRows
		if w.segLimit > w.t.capacity {
			w.segLimit = w.t.capacity
		}
	}
	return RowID(w.segNext), nil
}

// Insert adds a row (vals in schema column order, vals[0] = primary key)
// inside the calling transaction.
func (w *Writer) Insert(ops tm.Ops, vals []uint64) (RowID, error) {
	t := w.t
	if len(vals) != len(t.schema.Columns) {
		return 0, fmt.Errorf("imdb: table %q insert with %d values, want %d",
			t.schema.Table, len(vals), len(t.schema.Columns))
	}
	if _, exists := t.pk.Lookup(ops, vals[0]); exists {
		return 0, ErrDuplicateKey
	}
	id, err := w.reserve()
	if err != nil {
		return 0, err
	}
	w.pool.Reset()
	row := t.rowAddr(id)
	for i, v := range vals {
		ops.Write(row+memsim.Addr(i), v)
	}
	t.pk.Insert(ops, vals[0], uint64(id), w.pool)
	for column, idx := range t.secons {
		idx.Insert(ops, seconKey(vals[t.col(column)], id), uint64(id), w.pool)
	}
	w.pending = true
	return id, nil
}

// Commit finalises the last Insert after its transaction committed:
// the slot is consumed, the used index nodes are retired, and the pool is
// topped up for the next insert. Calling it without a pending insert is a
// no-op.
func (w *Writer) Commit() {
	if !w.pending {
		return
	}
	w.pending = false
	w.segNext++
	w.t.rows.Add(1)
	w.pool.Commit()
	w.pool.Refill(w.t.PoolSizeForInsert())
}

// Prepare tops up the pool before the first use (optional; Insert pools
// are refilled by Commit thereafter).
func (w *Writer) Prepare() { w.pool.Refill(w.t.PoolSizeForInsert()) }

// Pool exposes the writer's node pool for callers that mix table inserts
// with direct index updates (e.g. Update on an indexed column) in one
// transaction.
func (w *Writer) Pool() *btree.Pool { return w.pool }

// PoolSizeForInsert returns the node-pool size one Insert may need (one
// split chain per index touched).
func (t *Table) PoolSizeForInsert() int {
	return (1 + len(t.secons)) * btree.RecommendedPoolSize()
}

// Get reads one column of a row.
func (t *Table) Get(ops tm.Ops, id RowID, column string) uint64 {
	return ops.Read(t.rowAddr(id) + memsim.Addr(t.col(column)))
}

// Update writes one column of a row, maintaining any secondary index on
// that column. pool is needed only when the column is indexed.
func (t *Table) Update(ops tm.Ops, id RowID, column string, val uint64, pool *btree.Pool) {
	c := t.col(column)
	if c == 0 {
		panic("imdb: primary keys are immutable; insert a new row instead")
	}
	addr := t.rowAddr(id) + memsim.Addr(c)
	if idx, indexed := t.secons[column]; indexed {
		old := ops.Read(addr)
		if old == val {
			return
		}
		idx.Delete(ops, seconKey(old, id))
		idx.Insert(ops, seconKey(val, id), uint64(id), pool)
	}
	ops.Write(addr, val)
}

// LookupPK returns the row id holding the given primary key.
func (t *Table) LookupPK(ops tm.Ops, key uint64) (RowID, bool) {
	id, ok := t.pk.Lookup(ops, key)
	return RowID(id), ok
}

// ScanPK visits rows with primary keys in [lo, hi] in key order.
func (t *Table) ScanPK(ops tm.Ops, lo, hi uint64, fn func(id RowID) bool) {
	t.pk.RangeScan(ops, lo, hi, func(_, id uint64) bool {
		return fn(RowID(id))
	})
}

// ScanIndex visits rows whose indexed column value lies in [lo, hi], in
// (value, row) order.
func (t *Table) ScanIndex(ops tm.Ops, column string, lo, hi uint64, fn func(id RowID) bool) error {
	idx, ok := t.secons[column]
	if !ok {
		return fmt.Errorf("imdb: no index on %q.%q", t.schema.Table, column)
	}
	idx.RangeScan(ops, seconKey(lo, 0), seconKey(hi, RowID(1<<seconRowBits-1)),
		func(_, id uint64) bool { return fn(RowID(id)) })
	return nil
}

// Rows returns the committed row count (non-transactional; verification
// and monitoring).
func (t *Table) Rows() int { return int(t.rows.Load()) }

// CheckConsistency verifies (quiescently) that the primary index and
// every secondary index agree exactly with the row store: entry counts
// match the committed row count, every primary entry points at a row
// carrying that key, and every secondary entry's composite key matches
// its row's column value.
func (t *Table) CheckConsistency() error {
	if err := t.pk.CheckInvariants(); err != nil {
		return fmt.Errorf("imdb: %q pk index: %w", t.schema.Table, err)
	}
	n := t.Rows()
	po := plainOps{t.heap}
	if got := t.pk.Count(po); got != n {
		return fmt.Errorf("imdb: %q pk index has %d entries, table has %d rows", t.schema.Table, got, n)
	}
	var walkErr error
	t.pk.RangeScan(po, 0, ^uint64(0), func(key, id uint64) bool {
		if got := t.heap.Load(t.rowAddr(RowID(id))); got != key {
			walkErr = fmt.Errorf("imdb: %q pk entry %d points at row %d holding key %d",
				t.schema.Table, key, id, got)
			return false
		}
		return true
	})
	if walkErr != nil {
		return walkErr
	}
	for column, idx := range t.secons {
		if err := idx.CheckInvariants(); err != nil {
			return fmt.Errorf("imdb: %q index %q: %w", t.schema.Table, column, err)
		}
		if got := idx.Count(po); got != n {
			return fmt.Errorf("imdb: %q index %q has %d entries, want %d", t.schema.Table, column, got, n)
		}
		c := t.col(column)
		idx.RangeScan(po, 0, ^uint64(0), func(key, id uint64) bool {
			wantVal, wantID := key>>seconRowBits, key&(1<<seconRowBits-1)
			if id != wantID {
				walkErr = fmt.Errorf("imdb: %q index %q composite/value mismatch at row %d", t.schema.Table, column, id)
				return false
			}
			if got := t.heap.Load(t.rowAddr(RowID(id)) + memsim.Addr(c)); got != wantVal {
				walkErr = fmt.Errorf("imdb: %q index %q entry (val %d, row %d) but row holds %d",
					t.schema.Table, column, wantVal, id, got)
				return false
			}
			return true
		})
		if walkErr != nil {
			return walkErr
		}
	}
	return nil
}

// plainOps adapts raw heap access for quiescent verification.
type plainOps struct{ heap *memsim.Heap }

func (o plainOps) Read(a memsim.Addr) uint64     { return o.heap.Load(a) }
func (o plainOps) Write(a memsim.Addr, v uint64) { o.heap.Store(a, v) }

// HeapLinesForTable estimates the heap a table of the given schema and
// capacity needs, including index slack (~2 nodes per 14 rows per index).
func HeapLinesForTable(s Schema, capacity, indexes int) int {
	rowLines := s.rowWords() / memsim.WordsPerLine * capacity
	indexLines := (1 + indexes) * (capacity/7 + 64) * 2
	return rowLines + indexLines + 1024
}
