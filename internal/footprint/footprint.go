// Package footprint provides the per-transaction footprint-tracking
// data structures of the HTM simulator: a set of cache lines (the read
// and write sets) and an address-indexed write buffer, both with O(1)
// membership, insertion and lookup regardless of transaction size.
//
// The paper's whole argument concerns transactions far larger than the
// TMCAM — SI-HTM stretches ROT capacity to ~100× the 64-line limit — so
// the simulator's per-access software cost must not grow with the very
// footprint the evaluation sweeps. These structures replace the linear
// scans the simulator started with (O(N) per access, O(N²) per
// transaction) and are engineered for the two regimes that matter:
//
//   - Tiny transactions (the common case): elements live in a small
//     inline array scanned linearly — no hashing, no heap allocation,
//     hot in the owner's cache line.
//   - Large transactions: an open-addressing, power-of-two hash table
//     with Fibonacci hashing and linear probing. Emptying the table is
//     O(1) via a generation counter, so a recycled transaction pays
//     nothing to reset, and the backing arrays are retained (up to a
//     cap) across transactions so steady-state commits allocate zero.
//
// A transaction owns one LineSet for its write lines, one for its read
// lines and one WriteBuffer for buffered stores; all three are recycled
// across attempts by the owning hardware thread. The package also ships
// reference linear-scan implementations (reference.go) used as oracles
// by the differential tests.
package footprint

import (
	"math/bits"

	"sihtm/internal/memsim"
)

const (
	// inlineCap is how many elements are tracked by linear scan over the
	// inline array before a hash table is built. 8 covers the bulk of
	// OLTP-style transactions (TPC-C payment touches ~6 lines).
	inlineCap = 8

	// firstTableSize is the initial hash-table size once a set outgrows
	// the inline array. Must be a power of two.
	firstTableSize = 64

	// maxRetainedElems caps the element-slice capacity kept across
	// Resets; larger slices are released so one giant transaction does
	// not pin memory on its thread forever. The cap must comfortably
	// exceed the largest footprint the bench suite sweeps (4096 lines)
	// because append's ~1.25× growth overshoots the element count — a
	// tighter cap would shed and re-grow the slice on every reuse.
	maxRetainedElems = 8192

	// maxRetainedSlots caps the hash-table size kept across Resets:
	// enough to hold maxRetainedElems at the growth load factor.
	maxRetainedSlots = 16384

	// growNum/growDen is the load factor threshold (3/4): the table
	// doubles when it is three-quarters full.
	growNum, growDen = 3, 4
)

// hashLine mixes a line number for table placement (Fibonacci hashing:
// multiply by 2^64/φ and take the top bits via the table's shift).
func hashLine(l memsim.Line) uint64 { return uint64(l) * 0x9e3779b97f4a7c15 }

// hashAddr mixes a word address for table placement.
func hashAddr(a memsim.Addr) uint64 { return uint64(a) * 0x9e3779b97f4a7c15 }

// tableShift returns the right-shift that maps a 64-bit hash onto a
// power-of-two table of n slots.
func tableShift(n int) uint { return uint(64 - bits.TrailingZeros(uint(n))) }

// lineSlot is one open-addressing slot of a LineSet. A slot holds a live
// key iff its generation matches the set's current generation, which
// lets Reset invalidate the whole table by bumping one counter instead
// of zeroing it.
type lineSlot struct {
	key memsim.Line
	gen uint64
}

// LineSet is a set of cache lines: the transaction read set or write
// set. The zero value is ready to use. Not safe for concurrent use; in
// the simulator it is only touched by the transaction's own thread.
type LineSet struct {
	gen    uint64
	elems  []memsim.Line // members in insertion order; backs iteration
	table  []lineSlot    // nil while the inline linear scan suffices
	shift  uint          // maps a hash onto table; 64 - log2(len(table))
	inline [inlineCap]memsim.Line
}

// Len returns the number of lines in the set.
func (s *LineSet) Len() int { return len(s.elems) }

// Lines returns the members in insertion order. The slice aliases the
// set's storage: it is valid until the next Add or Reset.
func (s *LineSet) Lines() []memsim.Line { return s.elems }

// Contains reports whether l is in the set.
func (s *LineSet) Contains(l memsim.Line) bool {
	if s.table == nil {
		for _, e := range s.elems {
			if e == l {
				return true
			}
		}
		return false
	}
	mask := uint64(len(s.table) - 1)
	for i := hashLine(l) >> s.shift; ; i = (i + 1) & mask {
		sl := &s.table[i]
		if sl.gen != s.gen {
			return false
		}
		if sl.key == l {
			return true
		}
	}
}

// Add inserts l, reporting whether it was newly added.
func (s *LineSet) Add(l memsim.Line) bool {
	if s.table == nil {
		for _, e := range s.elems {
			if e == l {
				return false
			}
		}
		if s.elems == nil {
			s.elems = s.inline[:0]
		}
		s.elems = append(s.elems, l)
		if len(s.elems) > inlineCap {
			s.grow(firstTableSize)
		}
		return true
	}
	mask := uint64(len(s.table) - 1)
	for i := hashLine(l) >> s.shift; ; i = (i + 1) & mask {
		sl := &s.table[i]
		if sl.gen != s.gen {
			sl.key, sl.gen = l, s.gen
			s.elems = append(s.elems, l)
			if len(s.elems)*growDen >= len(s.table)*growNum {
				s.grow(len(s.table) * 2)
			}
			return true
		}
		if sl.key == l {
			return false
		}
	}
}

// grow (re)builds the hash table with n slots (a power of two) and
// reinserts every member.
func (s *LineSet) grow(n int) {
	if s.gen == 0 {
		s.gen = 1 // zero-valued slots must never look live
	}
	s.table = make([]lineSlot, n)
	s.shift = tableShift(n)
	mask := uint64(n - 1)
	for _, l := range s.elems {
		i := hashLine(l) >> s.shift
		for s.table[i].gen == s.gen {
			i = (i + 1) & mask
		}
		s.table[i] = lineSlot{key: l, gen: s.gen}
	}
}

// Reset empties the set in O(1): the generation bump invalidates every
// table slot without touching it. Backing storage is retained up to the
// package caps so steady-state reuse allocates nothing.
func (s *LineSet) Reset() {
	if cap(s.elems) > maxRetainedElems {
		s.elems = s.inline[:0]
	} else if s.elems != nil {
		s.elems = s.elems[:0]
	}
	if len(s.table) > maxRetainedSlots {
		s.table = nil
		s.shift = 0
	}
	s.gen++
}

// Entry is one buffered store: the word address and the value that will
// be published at commit.
type Entry struct {
	Addr memsim.Addr
	Val  uint64
}

// wslot is one open-addressing slot of a WriteBuffer: it maps an address
// to the index of its entry in the entries slice.
type wslot struct {
	key memsim.Addr
	gen uint64
	idx int32
}

// WriteBuffer is the transaction's buffered store set, indexed by word
// address: Put upserts (last write wins) and Get serves reads-own-writes
// in O(1). The zero value is ready to use. Not safe for concurrent use.
type WriteBuffer struct {
	gen    uint64
	elems  []Entry // distinct addresses in first-write order
	table  []wslot // nil while the inline linear scan suffices
	shift  uint
	inline [inlineCap]Entry
}

// Len returns the number of distinct buffered addresses.
func (b *WriteBuffer) Len() int { return len(b.elems) }

// Entries returns the buffered stores, one per distinct address, in
// first-write order with last-write-wins values. The slice aliases the
// buffer's storage: it is valid until the next Put or Reset.
func (b *WriteBuffer) Entries() []Entry { return b.elems }

// Get returns the buffered value for a, if any.
func (b *WriteBuffer) Get(a memsim.Addr) (uint64, bool) {
	if b.table == nil {
		for i := range b.elems {
			if b.elems[i].Addr == a {
				return b.elems[i].Val, true
			}
		}
		return 0, false
	}
	mask := uint64(len(b.table) - 1)
	for i := hashAddr(a) >> b.shift; ; i = (i + 1) & mask {
		sl := &b.table[i]
		if sl.gen != b.gen {
			return 0, false
		}
		if sl.key == a {
			return b.elems[sl.idx].Val, true
		}
	}
}

// Put buffers a store of v to a, overwriting any previous value.
func (b *WriteBuffer) Put(a memsim.Addr, v uint64) {
	if b.table == nil {
		for i := range b.elems {
			if b.elems[i].Addr == a {
				b.elems[i].Val = v
				return
			}
		}
		if b.elems == nil {
			b.elems = b.inline[:0]
		}
		b.elems = append(b.elems, Entry{Addr: a, Val: v})
		if len(b.elems) > inlineCap {
			b.grow(firstTableSize)
		}
		return
	}
	mask := uint64(len(b.table) - 1)
	for i := hashAddr(a) >> b.shift; ; i = (i + 1) & mask {
		sl := &b.table[i]
		if sl.gen != b.gen {
			sl.key, sl.gen, sl.idx = a, b.gen, int32(len(b.elems))
			b.elems = append(b.elems, Entry{Addr: a, Val: v})
			if len(b.elems)*growDen >= len(b.table)*growNum {
				b.grow(len(b.table) * 2)
			}
			return
		}
		if sl.key == a {
			b.elems[sl.idx].Val = v
			return
		}
	}
}

// grow (re)builds the index with n slots and reindexes every entry.
func (b *WriteBuffer) grow(n int) {
	if b.gen == 0 {
		b.gen = 1
	}
	b.table = make([]wslot, n)
	b.shift = tableShift(n)
	mask := uint64(n - 1)
	for idx := range b.elems {
		i := hashAddr(b.elems[idx].Addr) >> b.shift
		for b.table[i].gen == b.gen {
			i = (i + 1) & mask
		}
		b.table[i] = wslot{key: b.elems[idx].Addr, gen: b.gen, idx: int32(idx)}
	}
}

// Reset empties the buffer in O(1), retaining backing storage up to the
// package caps.
func (b *WriteBuffer) Reset() {
	if cap(b.elems) > maxRetainedElems {
		b.elems = b.inline[:0]
	} else if b.elems != nil {
		b.elems = b.elems[:0]
	}
	if len(b.table) > maxRetainedSlots {
		b.table = nil
		b.shift = 0
	}
	b.gen++
}
