package footprint

import (
	"testing"

	"sihtm/internal/memsim"
	"sihtm/internal/rng"
)

// TestLineSetBasic exercises the inline→table transition by hand.
func TestLineSetBasic(t *testing.T) {
	var s LineSet
	if s.Len() != 0 || s.Contains(0) {
		t.Fatal("zero-value set not empty")
	}
	// Line 0 is a valid member (Addr 0 is merely the heap's nil word).
	for i := 0; i < 3*inlineCap; i++ {
		l := memsim.Line(i)
		if !s.Add(l) {
			t.Fatalf("Add(%d) reported duplicate on first insert", i)
		}
		if s.Add(l) {
			t.Fatalf("Add(%d) reported new on second insert", i)
		}
		if !s.Contains(l) {
			t.Fatalf("Contains(%d) false after Add", i)
		}
	}
	if s.Len() != 3*inlineCap {
		t.Fatalf("Len=%d want %d", s.Len(), 3*inlineCap)
	}
	for i, l := range s.Lines() {
		if l != memsim.Line(i) {
			t.Fatalf("Lines()[%d]=%d: insertion order not preserved", i, l)
		}
	}
	s.Reset()
	if s.Len() != 0 || s.Contains(0) || s.Contains(memsim.Line(inlineCap)) {
		t.Fatal("set not empty after Reset")
	}
}

// TestWriteBufferBasic exercises upsert and reads-own-writes by hand.
func TestWriteBufferBasic(t *testing.T) {
	var b WriteBuffer
	if _, ok := b.Get(0); ok {
		t.Fatal("zero-value buffer not empty")
	}
	for i := 0; i < 3*inlineCap; i++ {
		b.Put(memsim.Addr(i), uint64(i))
	}
	b.Put(2, 999) // overwrite must win and not grow the buffer
	if b.Len() != 3*inlineCap {
		t.Fatalf("Len=%d want %d", b.Len(), 3*inlineCap)
	}
	if v, ok := b.Get(2); !ok || v != 999 {
		t.Fatalf("Get(2)=%d,%v want 999,true", v, ok)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("buffer not empty after Reset")
	}
	if _, ok := b.Get(2); ok {
		t.Fatal("stale value visible after Reset")
	}
}

// TestLineSetDifferential drives the open-addressing set and the linear
// reference through 10k mixed random operations — adds, membership
// probes and occasional resets, over an address range small enough to
// force collisions and duplicates — and demands identical answers.
func TestLineSetDifferential(t *testing.T) {
	r := rng.New(0xf007)
	var fast LineSet
	var ref RefLineSet
	for op := 0; op < 10_000; op++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3: // Add
			l := memsim.Line(r.Intn(512))
			if g, w := fast.Add(l), ref.Add(l); g != w {
				t.Fatalf("op %d: Add(%d)=%v, reference says %v", op, l, g, w)
			}
		case 4, 5, 6, 7: // Contains
			l := memsim.Line(r.Intn(512))
			if g, w := fast.Contains(l), ref.Contains(l); g != w {
				t.Fatalf("op %d: Contains(%d)=%v, reference says %v", op, l, g, w)
			}
		case 8: // full-state check
			if fast.Len() != ref.Len() {
				t.Fatalf("op %d: Len=%d, reference says %d", op, fast.Len(), ref.Len())
			}
			for i, l := range ref.Lines() {
				if fast.Lines()[i] != l {
					t.Fatalf("op %d: Lines()[%d]=%d, reference says %d", op, i, fast.Lines()[i], l)
				}
			}
		case 9:
			if r.Intn(20) == 0 { // occasional transaction boundary
				fast.Reset()
				ref.Reset()
			}
		}
	}
}

// TestWriteBufferDifferential is the same 10k-operation differential
// drive for the write buffer: Put upserts, Get lookups, entry iteration
// and resets must match the linear reference exactly.
func TestWriteBufferDifferential(t *testing.T) {
	r := rng.New(0xbeef)
	var fast WriteBuffer
	var ref RefWriteBuffer
	for op := 0; op < 10_000; op++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3: // Put
			a := memsim.Addr(r.Intn(768))
			v := r.Uint64()
			fast.Put(a, v)
			ref.Put(a, v)
		case 4, 5, 6, 7: // Get
			a := memsim.Addr(r.Intn(768))
			gv, gok := fast.Get(a)
			wv, wok := ref.Get(a)
			if gok != wok || gv != wv {
				t.Fatalf("op %d: Get(%d)=%d,%v, reference says %d,%v", op, a, gv, gok, wv, wok)
			}
		case 8: // full-state check
			if fast.Len() != ref.Len() {
				t.Fatalf("op %d: Len=%d, reference says %d", op, fast.Len(), ref.Len())
			}
			for i, e := range ref.Entries() {
				if fast.Entries()[i] != e {
					t.Fatalf("op %d: Entries()[%d]=%+v, reference says %+v", op, i, fast.Entries()[i], e)
				}
			}
		case 9:
			if r.Intn(20) == 0 {
				fast.Reset()
				ref.Reset()
			}
		}
	}
}

// TestLineSetLargeFootprint pushes one set through the bench suite's
// largest footprint and verifies exact membership against a map oracle,
// including across a Reset that must retain (capped) capacity.
func TestLineSetLargeFootprint(t *testing.T) {
	r := rng.New(7)
	var s LineSet
	for round := 0; round < 3; round++ {
		oracle := map[memsim.Line]bool{}
		for i := 0; i < maxRetainedElems; i++ {
			l := memsim.Line(r.Uint64() % (4 * maxRetainedElems))
			if g, w := s.Add(l), !oracle[l]; g != w {
				t.Fatalf("round %d: Add(%d)=%v want %v", round, l, g, w)
			}
			oracle[l] = true
		}
		for l := range oracle {
			if !s.Contains(l) {
				t.Fatalf("round %d: lost line %d", round, l)
			}
		}
		if s.Len() != len(oracle) {
			t.Fatalf("round %d: Len=%d want %d", round, s.Len(), len(oracle))
		}
		s.Reset()
		if s.Len() != 0 {
			t.Fatalf("round %d: non-empty after Reset", round)
		}
	}
}

// TestResetCapsRetention verifies the pooled-capacity caps: a set grown
// past the retention limits must shed its backing storage on Reset.
func TestResetCapsRetention(t *testing.T) {
	var s LineSet
	for i := 0; i < 2*maxRetainedElems; i++ {
		s.Add(memsim.Line(i))
	}
	if cap(s.elems) <= maxRetainedElems || len(s.table) <= maxRetainedSlots {
		t.Skipf("set did not outgrow retention caps (cap=%d slots=%d)", cap(s.elems), len(s.table))
	}
	s.Reset()
	if cap(s.elems) > maxRetainedElems {
		t.Fatalf("Reset retained %d elems capacity, cap is %d", cap(s.elems), maxRetainedElems)
	}
	if len(s.table) > maxRetainedSlots {
		t.Fatalf("Reset retained %d table slots, cap is %d", len(s.table), maxRetainedSlots)
	}
	// The shed set must still work.
	if !s.Add(3) || !s.Contains(3) || s.Contains(4) {
		t.Fatal("set broken after capacity shed")
	}
}

// TestLineSetSteadyStateAllocs pins the steady-state access path at zero
// heap allocations: once a set has grown its table, Add/Contains/Reset
// cycles over the same footprint must never allocate.
func TestLineSetSteadyStateAllocs(t *testing.T) {
	var s LineSet
	const lines = 1024
	for i := 0; i < lines; i++ { // warm up: grow table and elems once
		s.Add(memsim.Line(i))
	}
	s.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < lines; i++ {
			if s.Add(memsim.Line(i)) == false {
				t.Fatal("duplicate in fresh generation")
			}
			if !s.Contains(memsim.Line(i)) {
				t.Fatal("lost line")
			}
		}
		s.Reset()
	})
	if allocs != 0 {
		t.Fatalf("steady-state LineSet cycle allocates %.1f/run, want 0", allocs)
	}
}

// TestWriteBufferSteadyStateAllocs is the same zero-alloc pin for the
// write buffer's Put/Get/Reset cycle.
func TestWriteBufferSteadyStateAllocs(t *testing.T) {
	var b WriteBuffer
	const words = 1024
	for i := 0; i < words; i++ {
		b.Put(memsim.Addr(i), uint64(i))
	}
	b.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < words; i++ {
			b.Put(memsim.Addr(i), uint64(i))
		}
		for i := 0; i < words; i++ {
			if v, ok := b.Get(memsim.Addr(i)); !ok || v != uint64(i) {
				t.Fatal("lost buffered write")
			}
		}
		b.Reset()
	})
	if allocs != 0 {
		t.Fatalf("steady-state WriteBuffer cycle allocates %.1f/run, want 0", allocs)
	}
}
