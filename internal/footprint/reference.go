package footprint

import "sihtm/internal/memsim"

// This file keeps the pre-optimisation linear-scan implementations as
// differential-testing oracles: they implement the same contract as
// LineSet and WriteBuffer with the simplest possible code (the exact
// shape internal/htm used before the O(1) structures), so the property
// tests can drive both over long random operation sequences and demand
// identical answers.

// RefLineSet is a linear-scan set of cache lines.
type RefLineSet struct {
	lines []memsim.Line
}

// Len returns the number of lines in the set.
func (s *RefLineSet) Len() int { return len(s.lines) }

// Lines returns the members in insertion order.
func (s *RefLineSet) Lines() []memsim.Line { return s.lines }

// Contains reports whether l is in the set.
func (s *RefLineSet) Contains(l memsim.Line) bool {
	for _, e := range s.lines {
		if e == l {
			return true
		}
	}
	return false
}

// Add inserts l, reporting whether it was newly added.
func (s *RefLineSet) Add(l memsim.Line) bool {
	if s.Contains(l) {
		return false
	}
	s.lines = append(s.lines, l)
	return true
}

// Reset empties the set.
func (s *RefLineSet) Reset() { s.lines = s.lines[:0] }

// RefWriteBuffer is a linear-scan write buffer. Get reverse-scans so the
// most recent store wins, exactly as the original bufferedRead did.
type RefWriteBuffer struct {
	entries []Entry
}

// Len returns the number of distinct buffered addresses.
func (b *RefWriteBuffer) Len() int { return len(b.entries) }

// Entries returns the buffered stores in first-write order.
func (b *RefWriteBuffer) Entries() []Entry { return b.entries }

// Get returns the buffered value for a, if any.
func (b *RefWriteBuffer) Get(a memsim.Addr) (uint64, bool) {
	for i := len(b.entries) - 1; i >= 0; i-- {
		if b.entries[i].Addr == a {
			return b.entries[i].Val, true
		}
	}
	return 0, false
}

// Put buffers a store of v to a, overwriting any previous value.
func (b *RefWriteBuffer) Put(a memsim.Addr, v uint64) {
	for i := range b.entries {
		if b.entries[i].Addr == a {
			b.entries[i].Val = v
			return
		}
	}
	b.entries = append(b.entries, Entry{Addr: a, Val: v})
}

// Reset empties the buffer.
func (b *RefWriteBuffer) Reset() { b.entries = b.entries[:0] }
