package p8tm_test

import (
	"sync"
	"testing"

	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/p8tm"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
)

func newSystem(t testing.TB, threads, tmcam int, cfg p8tm.Config) (*p8tm.System, *memsim.Heap) {
	t.Helper()
	heap := memsim.NewHeapLines(1 << 10)
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(4, 2), TMCAMLines: tmcam})
	return p8tm.NewSystem(m, threads, cfg), heap
}

func TestName(t *testing.T) {
	sys, _ := newSystem(t, 2, 64, p8tm.Config{})
	if sys.Name() != "p8tm" || sys.Threads() != 2 {
		t.Fatalf("Name/Threads = %q/%d", sys.Name(), sys.Threads())
	}
}

// Like SI-HTM, P8TM bounds update transactions by their write set only;
// reads are logged in software, not the TMCAM.
func TestUpdateReadsNotCapacityBound(t *testing.T) {
	sys, heap := newSystem(t, 1, 8, p8tm.Config{})
	lines := make([]memsim.Addr, 64)
	for i := range lines {
		lines[i] = heap.AllocLine()
		heap.Store(lines[i], 1)
	}
	out := heap.AllocLine()
	sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
		var sum uint64
		for _, a := range lines {
			sum += ops.Read(a)
		}
		ops.Write(out, sum)
	})
	s := sys.Collector().Snapshot()
	if s.Aborts[stats.AbortCapacity] != 0 {
		t.Fatalf("capacity aborts = %d, want 0", s.Aborts[stats.AbortCapacity])
	}
	if heap.Load(out) != 64 {
		t.Fatalf("out = %d, want 64", heap.Load(out))
	}
}

// The distinguishing feature vs SI-HTM: P8TM validates update-transaction
// read sets, so a write skew is impossible — at the cost of a
// transactional abort, which must be classified as such.
func TestValidationFailureIsTransactionalAbort(t *testing.T) {
	sys, heap := newSystem(t, 2, 64, p8tm.Config{})
	x := heap.AllocLine()
	y := heap.AllocLine()

	const rounds = 50
	var wg sync.WaitGroup
	run := func(id int, own memsim.Addr) {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			sys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
				sum := ops.Read(x) + ops.Read(y)
				ops.Write(own, sum+1)
			})
		}
	}
	wg.Add(2)
	go run(0, x)
	go run(1, y)
	wg.Wait()
	s := sys.Collector().Snapshot()
	if s.Commits != 2*rounds {
		t.Fatalf("commits = %d, want %d", s.Commits, 2*rounds)
	}
	// x and y end up consistent with a serial order: x+y increments obey
	// sum(n+1) chains; the precise values depend on the interleaving, but
	// every commit observed a consistent pair, which CheckWriteSkew in the
	// conformance suite asserts more strongly. Here we check accounting.
	if s.Aborts[stats.AbortNonTransactional] > s.TotalAborts() {
		t.Fatal("impossible abort accounting")
	}
}

// Read-only transactions are uninstrumented and unbounded, as in SI-HTM.
func TestReadOnlyFastPath(t *testing.T) {
	sys, heap := newSystem(t, 1, 8, p8tm.Config{})
	lines := make([]memsim.Addr, 100)
	for i := range lines {
		lines[i] = heap.AllocLine()
	}
	sys.Atomic(0, tm.KindReadOnly, func(ops tm.Ops) {
		for _, a := range lines {
			_ = ops.Read(a)
		}
	})
	s := sys.Collector().Snapshot()
	if s.CommitsRO != 1 || s.TotalAborts() != 0 || s.Fallbacks != 0 {
		t.Fatalf("stats = %v", s)
	}
}

// Write-set capacity overflow falls back to the SGL.
func TestWriteCapacityFallsBack(t *testing.T) {
	sys, heap := newSystem(t, 1, 8, p8tm.Config{Retries: 2})
	lines := make([]memsim.Addr, 16)
	for i := range lines {
		lines[i] = heap.AllocLine()
	}
	sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
		for i, a := range lines {
			ops.Write(a, uint64(i)+1)
		}
	})
	s := sys.Collector().Snapshot()
	if s.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", s.Fallbacks)
	}
	for i, a := range lines {
		if heap.Load(a) != uint64(i)+1 {
			t.Fatal("SGL path lost writes")
		}
	}
}

// Under a read-write contention storm the counter must stay exact
// (serializability) and validation aborts must appear as transactional.
func TestContendedCounterExactness(t *testing.T) {
	sys, heap := newSystem(t, 4, 64, p8tm.Config{})
	x := heap.AllocLine()
	const perThread = 400
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				sys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
					ops.Write(x, ops.Read(x)+1)
				})
			}
		}(id)
	}
	wg.Wait()
	if got := heap.Load(x); got != 4*perThread {
		t.Fatalf("counter = %d, want %d", got, 4*perThread)
	}
}
