// Package p8tm implements the P8TM baseline (Issa et al., DISC'17) the
// paper compares against in §4.2: like SI-HTM it runs update transactions
// as ROTs (write-set-bounded capacity) and read-only transactions
// uninstrumented behind a quiescence scheme — but unlike SI-HTM it offers
// full serializability, which it buys with software instrumentation of
// every read of an update transaction.
//
// Faithfulness note (recorded in DESIGN.md): the original P8TM validates
// update-transaction read sets with a suspend/resume-based scheme on real
// hardware. This reproduction keeps its cost model and guarantees —
// per-read software logging, commit-time validation, quiescence before
// commit — using value-based read validation serialized by a short commit
// lock (NOrec-style), which yields the same serializable semantics and
// the same "pays for read tracking that SI-HTM avoids" performance shape.
// The paper disables P8TM's on-line self-tuning in its evaluation, and so
// does this package.
package p8tm

import (
	"runtime"
	"sync"
	"sync/atomic"

	"sihtm/internal/clock"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/sgl"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
)

// DefaultRetries is the ROT attempt budget before the SGL fall-back.
const DefaultRetries = 10

// Config tunes P8TM.
type Config struct {
	// Retries is the attempt budget per transaction before the SGL
	// fall-back. 0 means DefaultRetries.
	Retries int
}

// stateSlot mirrors sihtm's quiescence state array.
type stateSlot struct {
	v atomic.Uint64
	_ [120]byte
}

type readLogEntry struct {
	addr memsim.Addr
	val  uint64
}

// workerState is the per-thread scratch (read log, write filter).
type workerState struct {
	readLog   []readLogEntry
	writeSet  []memsim.Addr
	snap      []uint64
	validFail bool
}

// System is the P8TM concurrency control.
type System struct {
	m       *htm.Machine
	clk     *clock.Clock
	threads int
	retries int
	state   []stateSlot
	lock    *sgl.Lock
	commit  sync.Mutex // serializes validate+write-back
	col     *stats.Collector
	workers []workerState

	// hook, when set, makes the SGL fall-back publish through a
	// tm.Recorder so its write set reaches the durability seam; ROT
	// commits reach the hook through the machine (htm.CommitHook).
	hook tm.CommitHook
	recs []tm.Recorder
}

// NewSystem builds P8TM for the first `threads` hardware threads of m.
func NewSystem(m *htm.Machine, threads int, cfg Config) *System {
	if cfg.Retries == 0 {
		cfg.Retries = DefaultRetries
	}
	s := &System{
		m:       m,
		clk:     clock.New(),
		threads: threads,
		retries: cfg.Retries,
		state:   make([]stateSlot, threads),
		lock:    sgl.New(m),
		col:     stats.New(threads),
		workers: make([]workerState, threads),
	}
	for i := range s.workers {
		s.workers[i].snap = make([]uint64, threads)
	}
	return s
}

// Name implements tm.System.
func (s *System) Name() string { return "p8tm" }

// Threads implements tm.System.
func (s *System) Threads() int { return s.threads }

// Collector implements tm.System.
func (s *System) Collector() *stats.Collector { return s.col }

// SetCommitHook implements tm.HookableSystem for the fall-back path.
// Call before any transaction runs.
func (s *System) SetCommitHook(h tm.CommitHook) {
	s.hook = h
	s.recs = make([]tm.Recorder, s.threads)
}

// instrumentedOps is the update-transaction access path: reads go through
// the hardware (untracked, capacity-free) but are logged in software for
// commit-time validation — the per-read cost SI-HTM eliminates.
type instrumentedOps struct {
	tx *htm.Tx
	w  *workerState
}

func (o instrumentedOps) Read(a memsim.Addr) uint64 {
	v := o.tx.Read(a)
	o.w.readLog = append(o.w.readLog, readLogEntry{addr: a, val: v})
	return v
}

func (o instrumentedOps) Write(a memsim.Addr, v uint64) {
	o.tx.Write(a, v)
	o.w.writeSet = append(o.w.writeSet, a)
}

func (s *System) syncWithGL(thread int, th *htm.Thread) {
	for {
		s.state[thread].v.Store(s.clk.Now())
		if !s.lock.IsLocked(th) {
			return
		}
		s.state[thread].v.Store(clock.Inactive)
		s.lock.WaitUnlocked(th)
	}
}

// Atomic implements tm.System.
func (s *System) Atomic(thread int, kind tm.Kind, body func(tm.Ops)) {
	th := s.m.Thread(thread)
	l := s.col.Thread(thread)

	if kind == tm.KindReadOnly {
		// Uninstrumented read-only path behind quiescence, as in SI-HTM.
		s.syncWithGL(thread, th)
		body(tm.ReadOnlyPlainOps{Th: th})
		s.state[thread].v.Store(clock.Inactive)
		l.Commit(true)
		return
	}

	// As in the other HTM-based systems, capacity aborts are treated as
	// persistent (TEXASR hint): one grace retry, then the fall-back.
	capacityAborts := 0
	for attempt := 0; attempt < s.retries && capacityAborts < 2; attempt++ {
		s.syncWithGL(thread, th)
		ab := s.updateOnce(thread, th, l, body)
		if ab == nil {
			l.Commit(false)
			return
		}
		if ab.Code == htm.CodeCapacity {
			capacityAborts++
		}
		s.state[thread].v.Store(clock.Inactive)
		kindOf := tm.AbortKindOf(ab.Code)
		if s.workers[thread].validFail {
			kindOf = stats.AbortTransactional // read validation is a data conflict
		}
		l.Abort(kindOf)
		runtime.Gosched()
	}

	s.lock.Acquire(th)
	s.drainOthers(thread)
	if s.hook != nil {
		rec := &s.recs[thread]
		rec.Begin(tm.PlainOps{Th: th})
		body(rec)
		rec.Flush(thread, s.hook)
	} else {
		body(tm.PlainOps{Th: th})
	}
	s.lock.Release(th)
	l.Commit(false)
	l.Fallback()
}

func (s *System) updateOnce(thread int, th *htm.Thread, l stats.Thread, body func(tm.Ops)) (abort *htm.Abort) {
	w := &s.workers[thread]
	w.readLog = w.readLog[:0]
	w.writeSet = w.writeSet[:0]
	w.validFail = false

	l.HWBegin(true)
	tx := th.Begin(htm.ModeROT)
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(*htm.Abort); ok {
				abort = a
				return
			}
			panic(r)
		}
	}()

	body(instrumentedOps{tx: tx, w: w})

	tx.Suspend()
	s.state[thread].v.Store(clock.Completed)
	tx.Resume()

	snap := w.snap
	for c := range s.state {
		snap[c] = s.state[c].v.Load()
	}
	for c := range s.state {
		if c == thread || snap[c] <= clock.Completed {
			continue
		}
		spins := uint64(0)
		for s.state[c].v.Load() == snap[c] {
			tx.Poll()
			spins++
			runtime.Gosched()
		}
		l.WaitSpins(spins)
	}

	// Validate + write back under the commit lock so no other update
	// transaction's write-back interleaves with our validation. Both
	// validation reads and Commit can unwind with an abort (the
	// transaction may still be doomed by a concurrent reader), so the
	// unlock is deferred inside the critical closure.
	s.commit.Lock()
	func() {
		defer s.commit.Unlock()
		if !s.validate(tx, w) {
			w.validFail = true
			tx.AbortExplicit()
		}
		tx.Commit()
	}()
	s.state[thread].v.Store(clock.Inactive)
	return nil
}

// validate re-reads the logged read set and compares values, skipping
// addresses the transaction itself wrote afterwards (those are protected
// by the hardware's write-write conflict detection).
func (s *System) validate(tx *htm.Tx, w *workerState) bool {
	for _, e := range w.readLog {
		if w.wrote(e.addr) {
			continue
		}
		if tx.Read(e.addr) != e.val {
			return false
		}
	}
	return true
}

func (w *workerState) wrote(a memsim.Addr) bool {
	for _, wa := range w.writeSet {
		if wa == a {
			return true
		}
	}
	return false
}

func (s *System) drainOthers(thread int) {
	for c := range s.state {
		if c == thread {
			continue
		}
		for s.state[c].v.Load() != clock.Inactive {
			runtime.Gosched()
		}
	}
}

var _ tm.System = (*System)(nil)
