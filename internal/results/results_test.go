package results

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"sihtm/internal/harness"
	"sihtm/internal/stats"
)

func sampleRecord(exp, system string, threads int, tput float64) Record {
	var hr harness.Result
	hr.System = system
	hr.Threads = threads
	hr.Elapsed = 250 * time.Millisecond
	hr.Throughput = tput
	hr.Stats.Commits = uint64(tput / 4)
	hr.Stats.CommitsRO = uint64(tput / 8)
	hr.Stats.Aborts[stats.AbortTransactional] = 5
	hr.Stats.Aborts[stats.AbortCapacity] = 3
	hr.Stats.Fallbacks = 1
	return FromHarness(exp, 6, "low", "hashmap", "", hr)
}

func sampleReport() *Report {
	return &Report{
		Tool:       "test",
		Scale:      "ci",
		GOMAXPROCS: 1,
		Machine:    "10 cores × SMT-8, TMCAM 64 lines",
		Records: []Record{
			sampleRecord("fig6-low", "htm", 1, 1000),
			sampleRecord("fig6-low", "htm", 2, 1500),
			sampleRecord("fig6-low", "si-htm", 1, 1200),
			sampleRecord("fig6-low", "si-htm", 2, 4000),
		},
	}
}

func TestJSONRoundTripIsLossless(t *testing.T) {
	rep := sampleReport()
	rep.Records[0].Param = "footprint=96"
	rep.Sort()

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round trip not lossless:\nwrote %+v\nread  %+v", rep, back)
	}
}

func TestFileRoundTrip(t *testing.T) {
	rep := sampleReport()
	path := filepath.Join(t.TempDir(), "BENCH_repro.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatal("file round trip not lossless")
	}
}

func TestSortIsDeterministic(t *testing.T) {
	rep := sampleReport()
	// Shuffle by reversing, then sort back.
	for i, j := 0, len(rep.Records)-1; i < j; i, j = i+1, j-1 {
		rep.Records[i], rep.Records[j] = rep.Records[j], rep.Records[i]
	}
	rep.Sort()
	want := []Key{
		{"fig6-low", "htm", 1, ""},
		{"fig6-low", "si-htm", 1, ""},
		{"fig6-low", "htm", 2, ""},
		{"fig6-low", "si-htm", 2, ""},
	}
	for i, k := range want {
		if rep.Records[i].Key() != k {
			t.Fatalf("record %d = %+v, want %+v", i, rep.Records[i].Key(), k)
		}
	}
}

func TestSortNaturalParamsAndAblationsLast(t *testing.T) {
	mk := func(exp string, figure int, param string) Record {
		return Record{Experiment: exp, Figure: figure, System: "htm", Threads: 1, Param: param}
	}
	rep := &Report{Records: []Record{
		mk("capacity", 0, "footprint=128"),
		mk("capacity", 0, "footprint=16"),
		mk("capacity", 0, "footprint=96"),
		mk("fig10-low", 10, ""),
		mk("fig6-low", 6, ""),
	}}
	rep.Sort()
	gotOrder := []string{}
	for _, r := range rep.Records {
		gotOrder = append(gotOrder, r.Experiment+"/"+r.Param)
	}
	want := []string{"fig6-low/", "fig10-low/", "capacity/footprint=16", "capacity/footprint=96", "capacity/footprint=128"}
	if !reflect.DeepEqual(gotOrder, want) {
		t.Fatalf("sort order = %v, want %v", gotOrder, want)
	}
}

func TestCompareFlagsSyntheticSlowdown(t *testing.T) {
	baseline := sampleReport()
	current := sampleReport()
	// Slow two cells down (3× and 10×): both must be flagged at 50%
	// tolerance, worst first.
	for i := range current.Records {
		switch {
		case current.Records[i].System == "si-htm" && current.Records[i].Threads == 2:
			current.Records[i].Throughput /= 3
		case current.Records[i].System == "htm" && current.Records[i].Threads == 1:
			current.Records[i].Throughput /= 10
		}
	}
	c := Compare(baseline, current, 0.5, 0)
	if c.Matched != 4 {
		t.Fatalf("matched %d cells, want 4", c.Matched)
	}
	if len(c.Regressions) != 2 {
		t.Fatalf("regressions = %+v, want exactly the two slowed cells", c.Regressions)
	}
	if c.Regressions[0].Key != (Key{"fig6-low", "htm", 1, ""}) {
		t.Fatalf("worst regression not first: %+v", c.Regressions)
	}
	r := c.Regressions[1]
	if r.Key != (Key{"fig6-low", "si-htm", 2, ""}) {
		t.Fatalf("flagged wrong cell: %+v", r.Key)
	}
	if r.Ratio > 0.34 || r.Ratio < 0.33 {
		t.Fatalf("ratio = %v, want ~1/3", r.Ratio)
	}

	var buf bytes.Buffer
	c.WriteText(&buf)
	if !strings.Contains(buf.String(), "si-htm/2") {
		t.Errorf("comparison text missing cell: %q", buf.String())
	}
}

func TestCompareWithinToleranceIsQuiet(t *testing.T) {
	baseline := sampleReport()
	current := sampleReport()
	for i := range current.Records {
		current.Records[i].Throughput *= 0.8 // 20% down, within 50% tolerance
	}
	c := Compare(baseline, current, 0.5, 0)
	if len(c.Regressions) != 0 {
		t.Fatalf("unexpected regressions: %+v", c.Regressions)
	}
}

func TestCompareWarnsOnMismatchedProvenance(t *testing.T) {
	baseline := sampleReport()
	current := sampleReport()
	baseline.Shards = 1
	current.Shards = 8
	current.Scale = "quick"
	c := Compare(baseline, current, 0.5, 0)
	if len(c.Warnings) != 2 {
		t.Fatalf("warnings = %v, want scale + shard mismatch", c.Warnings)
	}
	var buf bytes.Buffer
	c.WriteText(&buf)
	if !strings.Contains(buf.String(), "shard-count mismatch") || !strings.Contains(buf.String(), "scale mismatch") {
		t.Errorf("warnings not rendered: %q", buf.String())
	}
}

func TestCompareReportsMissingCells(t *testing.T) {
	baseline := sampleReport()
	current := sampleReport()
	current.Records = current.Records[:2]
	c := Compare(baseline, current, 0.5, 0)
	if c.MissingInCurrent != 2 {
		t.Fatalf("missing = %d, want 2", c.MissingInCurrent)
	}
}

func TestCompareSkipsNoiseCells(t *testing.T) {
	baseline := sampleReport()
	current := sampleReport()
	current.Records[0].Throughput = 1 // huge slowdown...
	c := Compare(baseline, current, 0.5, 1<<20)
	if len(c.Regressions) != 0 { // ...but baseline commits below minCommits
		t.Fatalf("noise cell flagged: %+v", c.Regressions)
	}
}

func TestMarkdownThroughputTable(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	MarkdownThroughput(&buf, "Figure 6 (left)", rep.Records)
	out := buf.String()
	for _, want := range []string{"| threads |", "| htm |", "| si-htm |", "| 1 |", "| 2 |", "4000"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown table missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownParamAxis(t *testing.T) {
	recs := []Record{
		sampleRecord("capacity", "htm", 1, 900),
		sampleRecord("capacity", "si-htm", 1, 1100),
	}
	recs[0].Param = "footprint=96"
	recs[1].Param = "footprint=96"
	var buf bytes.Buffer
	MarkdownThroughput(&buf, "A1", recs)
	out := buf.String()
	if !strings.Contains(out, "| param |") || !strings.Contains(out, "footprint=96") {
		t.Errorf("param axis not rendered:\n%s", out)
	}
}

func TestMarkdownAbortsAndReport(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	MarkdownAborts(&buf, "Figure 6 (left)", rep.Records)
	if !strings.Contains(buf.String(), "aborts") {
		t.Error("abort table missing header")
	}

	buf.Reset()
	MarkdownReport(&buf, rep, map[string]string{"fig6-low": "Figure 6 (left)"})
	out := buf.String()
	for _, want := range []string{"### Figure 6 (left)", "scale=ci", "throughput"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestSpeedupSummary(t *testing.T) {
	rep := sampleReport()
	s := SpeedupSummary(rep.Records, "si-htm")
	if !strings.Contains(s, "si-htm peak: 4000") || !strings.Contains(s, "vs htm +167%") {
		t.Fatalf("SpeedupSummary = %q", s)
	}
}

func TestAbortPercent(t *testing.T) {
	var r Record
	r.Commits = 50
	r.AbortsCapacity = 50
	if got := r.AbortPercent(r.AbortsCapacity); got != 50 {
		t.Fatalf("AbortPercent = %v, want 50", got)
	}
	var zero Record
	if got := zero.AbortPercent(0); got != 0 {
		t.Fatalf("zero-attempt AbortPercent = %v", got)
	}
}
