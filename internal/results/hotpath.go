package results

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
)

// BenchRecord is one hot-path microbenchmark measurement: a single
// (operation, mode, footprint) point of the simulator's per-access cost
// sweep. Unlike Record — which measures end-to-end workload throughput —
// a BenchRecord measures the software cost of one simulated operation,
// the quantity the O(1) footprint-tracking work optimises.
type BenchRecord struct {
	// Name is the benchmark's display id, e.g. "Read/HTM/lines=1024".
	Name string `json:"name"`
	// Op is the operation family: "read", "write", "commit" or "atomic".
	Op string `json:"op"`
	// Mode is the transaction flavour ("HTM", "ROT"), or "" for
	// end-to-end benchmarks that exercise a full system.
	Mode string `json:"mode,omitempty"`
	// Lines is the transaction footprint in cache lines at this point.
	Lines int `json:"lines"`
	// Iters is how many operations the measurement averaged over.
	Iters uint64 `json:"iters"`
	// NsPerOp is the mean wall time of one operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the mean heap allocations per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// BytesPerOp is the mean heap bytes allocated per operation.
	BytesPerOp float64 `json:"bytes_per_op"`
}

// BenchKey identifies a bench record's cell for matching between reports.
type BenchKey struct {
	Op    string
	Mode  string
	Lines int
}

// Key returns the record's comparison key.
func (r BenchRecord) Key() BenchKey { return BenchKey{Op: r.Op, Mode: r.Mode, Lines: r.Lines} }

// BenchReport is a full run of the hot-path microbenchmark suite — the
// `BENCH_hotpath.json` artifact produced by `repro bench`.
type BenchReport struct {
	// Tool identifies the producer (e.g. "cmd/repro bench").
	Tool string `json:"tool"`
	// GOMAXPROCS records the host parallelism; the suite itself is
	// single-threaded but scheduling noise still depends on it.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Records holds every measurement, sorted by Sort.
	Records []BenchRecord `json:"records"`
	// Baseline optionally embeds the records of a previous run (the
	// pre-optimisation numbers), so one artifact carries before/after.
	Baseline []BenchRecord `json:"baseline,omitempty"`
}

// Sort orders records by (op, mode, lines) so serialized reports are
// deterministic.
func (rep *BenchReport) Sort() {
	ord := func(rs []BenchRecord) {
		sort.SliceStable(rs, func(i, j int) bool {
			a, b := rs[i], rs[j]
			if a.Op != b.Op {
				return benchOpRank(a.Op) < benchOpRank(b.Op)
			}
			if a.Mode != b.Mode {
				return a.Mode < b.Mode
			}
			return a.Lines < b.Lines
		})
	}
	ord(rep.Records)
	ord(rep.Baseline)
}

// benchOpRank presents operations in hot-path order: the per-access
// primitives first, then commit, then end-to-end.
func benchOpRank(op string) int {
	switch op {
	case "read":
		return 0
	case "write":
		return 1
	case "commit":
		return 2
	case "atomic":
		return 3
	default:
		return 4
	}
}

// WriteJSON serializes the report (indented, trailing newline).
func (rep *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteFile serializes the report to path.
func (rep *BenchReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBenchFile parses a BenchReport from path.
func ReadBenchFile(path string) (*BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep BenchReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("results: decode bench report %s: %w", path, err)
	}
	return &rep, nil
}

// WriteText renders the report as an aligned table, with a speed-up
// column when a baseline is embedded.
func (rep *BenchReport) WriteText(w io.Writer) {
	base := map[BenchKey]BenchRecord{}
	for _, r := range rep.Baseline {
		base[r.Key()] = r
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	if len(base) > 0 {
		fmt.Fprintln(tw, "BENCH\tNS/OP\tALLOCS/OP\tB/OP\tBASELINE NS/OP\tSPEEDUP")
	} else {
		fmt.Fprintln(tw, "BENCH\tNS/OP\tALLOCS/OP\tB/OP")
	}
	for _, r := range rep.Records {
		fmt.Fprintf(tw, "%s\t%.1f\t%.2f\t%.1f", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		if len(base) > 0 {
			if b, ok := base[r.Key()]; ok && r.NsPerOp > 0 {
				fmt.Fprintf(tw, "\t%.1f\t%.2fx", b.NsPerOp, b.NsPerOp/r.NsPerOp)
			} else {
				fmt.Fprint(tw, "\t-\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
