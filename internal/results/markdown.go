package results

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// axisLabels returns the x-axis of a record group: the swept Param
// values when present (ablation sweeps), otherwise thread counts.
// byParam reports which case applies.
func axisLabels(recs []Record) (labels []string, byParam bool) {
	seen := map[string]bool{}
	for _, r := range recs {
		if r.Param != "" {
			byParam = true
		}
	}
	if byParam {
		for _, r := range recs {
			if !seen[r.Param] {
				seen[r.Param] = true
				labels = append(labels, r.Param)
			}
		}
		return labels, true
	}
	var threads []int
	ti := map[int]bool{}
	for _, r := range recs {
		if !ti[r.Threads] {
			ti[r.Threads] = true
			threads = append(threads, r.Threads)
		}
	}
	sort.Ints(threads)
	for _, n := range threads {
		labels = append(labels, fmt.Sprintf("%d", n))
	}
	return labels, false
}

func systemsOf(recs []Record) []string {
	var names []string
	seen := map[string]bool{}
	for _, r := range recs {
		if !seen[r.System] {
			seen[r.System] = true
			names = append(names, r.System)
		}
	}
	return names
}

func find(recs []Record, system, label string, byParam bool) (Record, bool) {
	for _, r := range recs {
		if r.System != system {
			continue
		}
		if byParam && r.Param == label {
			return r, true
		}
		if !byParam && fmt.Sprintf("%d", r.Threads) == label {
			return r, true
		}
	}
	return Record{}, false
}

// MarkdownThroughput renders one experiment's throughput panel as a
// GitHub-flavored markdown table: one row per x-axis point (threads or
// swept param), one column per system.
func MarkdownThroughput(w io.Writer, title string, recs []Record) {
	labels, byParam := axisLabels(recs)
	systems := systemsOf(recs)
	axis := "threads"
	if byParam {
		axis = "param"
	}
	fmt.Fprintf(w, "**%s — throughput (tx/s)**\n\n", title)
	fmt.Fprintf(w, "| %s |", axis)
	for _, s := range systems {
		fmt.Fprintf(w, " %s |", s)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|%s\n", strings.Repeat("---|", len(systems)))
	for _, label := range labels {
		fmt.Fprintf(w, "| %s |", label)
		for _, s := range systems {
			if r, ok := find(recs, s, label, byParam); ok {
				fmt.Fprintf(w, " %.0f |", r.Throughput)
			} else {
				fmt.Fprintf(w, " – |")
			}
		}
		fmt.Fprintln(w)
	}
}

// MarkdownAborts renders one experiment's abort-breakdown panel: per
// cell, "tx/non-tx/capacity" percentages of attempts.
func MarkdownAborts(w io.Writer, title string, recs []Record) {
	labels, byParam := axisLabels(recs)
	systems := systemsOf(recs)
	axis := "threads"
	if byParam {
		axis = "param"
	}
	fmt.Fprintf(w, "**%s — aborts (%% of attempts: transactional/non-transactional/capacity)**\n\n", title)
	fmt.Fprintf(w, "| %s |", axis)
	for _, s := range systems {
		fmt.Fprintf(w, " %s |", s)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|%s\n", strings.Repeat("---|", len(systems)))
	for _, label := range labels {
		fmt.Fprintf(w, "| %s |", label)
		for _, s := range systems {
			if r, ok := find(recs, s, label, byParam); ok {
				fmt.Fprintf(w, " %.1f/%.1f/%.1f |",
					r.AbortPercent(r.AbortsTransactional),
					r.AbortPercent(r.AbortsNonTransactional),
					r.AbortPercent(r.AbortsCapacity))
			} else {
				fmt.Fprintf(w, " – |")
			}
		}
		fmt.Fprintln(w)
	}
}

// MarkdownLatency renders one experiment's service-latency panel —
// per cell "p50/p99 µs (avg batch ops)" — for records carrying the
// networked layer's latency fields.
func MarkdownLatency(w io.Writer, title string, recs []Record) {
	labels, byParam := axisLabels(recs)
	systems := systemsOf(recs)
	axis := "threads"
	if byParam {
		axis = "param"
	}
	fmt.Fprintf(w, "**%s — per-op latency (p50/p99 µs, avg ops per transaction)**\n\n", title)
	fmt.Fprintf(w, "| %s |", axis)
	for _, s := range systems {
		fmt.Fprintf(w, " %s |", s)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|%s\n", strings.Repeat("---|", len(systems)))
	for _, label := range labels {
		fmt.Fprintf(w, "| %s |", label)
		for _, s := range systems {
			if r, ok := find(recs, s, label, byParam); ok && r.LatencyP99Us > 0 {
				fmt.Fprintf(w, " %.0f/%.0f (%.1f) |", r.LatencyP50Us, r.LatencyP99Us, r.BatchAvgOps)
			} else {
				fmt.Fprintf(w, " – |")
			}
		}
		fmt.Fprintln(w)
	}
}

// MarkdownController renders the admission-knob panel for cells whose
// server ran with explicit admission settings: per cell the batch
// bound, the grace period and — when the adaptive controller ran — the
// p99 target it steered toward.
func MarkdownController(w io.Writer, title string, recs []Record) {
	labels, byParam := axisLabels(recs)
	systems := systemsOf(recs)
	axis := "threads"
	if byParam {
		axis = "param"
	}
	fmt.Fprintf(w, "**%s — admission knobs at window end (batch bound / grace µs / p99 target µs)**\n\n", title)
	fmt.Fprintf(w, "| %s |", axis)
	for _, s := range systems {
		fmt.Fprintf(w, " %s |", s)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|%s\n", strings.Repeat("---|", len(systems)))
	for _, label := range labels {
		fmt.Fprintf(w, "| %s |", label)
		for _, s := range systems {
			r, ok := find(recs, s, label, byParam)
			switch {
			case !ok || r.CtrlBatchMax == 0:
				fmt.Fprintf(w, " – |")
			case r.CtrlP99TargetUs > 0:
				fmt.Fprintf(w, " %d / %d / %d |", r.CtrlBatchMax, r.CtrlAdmitWaitUs, r.CtrlP99TargetUs)
			default:
				fmt.Fprintf(w, " %d / %d / off |", r.CtrlBatchMax, r.CtrlAdmitWaitUs)
			}
		}
		fmt.Fprintln(w)
	}
}

// MarkdownTelemetry renders the server-telemetry panel for cells that
// scraped the instrument registry over their window: the admission-wait
// p99 and, on durable servers, the window's fsync count, fsync p99 and
// commit-ack wait p99.
func MarkdownTelemetry(w io.Writer, title string, recs []Record) {
	labels, byParam := axisLabels(recs)
	systems := systemsOf(recs)
	axis := "threads"
	if byParam {
		axis = "param"
	}
	fmt.Fprintf(w, "**%s — server telemetry (admit-wait p99 µs; fsyncs, fsync p99 µs, ack-wait p99 µs)**\n\n", title)
	fmt.Fprintf(w, "| %s |", axis)
	for _, s := range systems {
		fmt.Fprintf(w, " %s |", s)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|%s\n", strings.Repeat("---|", len(systems)))
	for _, label := range labels {
		fmt.Fprintf(w, "| %s |", label)
		for _, s := range systems {
			r, ok := find(recs, s, label, byParam)
			switch {
			case !ok || (r.AdmitWaitP99Us == 0 && r.FsyncsTotal == 0):
				fmt.Fprintf(w, " – |")
			case r.FsyncsTotal > 0:
				fmt.Fprintf(w, " %.0f; %d, %.0f, %.0f |",
					r.AdmitWaitP99Us, r.FsyncsTotal, r.FsyncP99Us, r.AckWaitP99Us)
			default:
				fmt.Fprintf(w, " %.0f; volatile |", r.AdmitWaitP99Us)
			}
		}
		fmt.Fprintln(w)
	}
}

// hasTelemetry reports whether any record carries scraped server
// telemetry.
func hasTelemetry(recs []Record) bool {
	for _, r := range recs {
		if r.AdmitWaitP99Us > 0 || r.FsyncsTotal > 0 {
			return true
		}
	}
	return false
}

// hasController reports whether any record carries admission-knob
// fields.
func hasController(recs []Record) bool {
	for _, r := range recs {
		if r.CtrlBatchMax > 0 {
			return true
		}
	}
	return false
}

// hasLatency reports whether any record carries the networked layer's
// latency fields.
func hasLatency(recs []Record) bool {
	for _, r := range recs {
		if r.LatencyP99Us > 0 {
			return true
		}
	}
	return false
}

// Peak returns the record with the best throughput for a system within
// the group (the paper quotes peak-vs-peak speedups).
func Peak(recs []Record, system string) Record {
	var best Record
	for _, r := range recs {
		if r.System == system && r.Throughput > best.Throughput {
			best = r
		}
	}
	return best
}

// SpeedupSummary reports peak-vs-peak speedups of `of` over every other
// system in the group, e.g. "si-htm peak: 1200 tx/s @ 4 threads; vs htm
// +300%".
func SpeedupSummary(recs []Record, of string) string {
	var b strings.Builder
	peak := Peak(recs, of)
	fmt.Fprintf(&b, "%s peak: %.0f tx/s @ %d threads", of, peak.Throughput, peak.Threads)
	for _, s := range systemsOf(recs) {
		if s == of {
			continue
		}
		other := Peak(recs, s)
		if other.Throughput > 0 {
			fmt.Fprintf(&b, "; vs %s %+.0f%%", s, 100*(peak.Throughput/other.Throughput-1))
		}
	}
	return b.String()
}

// MarkdownReport renders the whole report: a section per experiment with
// both panels, ready to embed in docs.
func MarkdownReport(w io.Writer, rep *Report, titles map[string]string) {
	fmt.Fprintf(w, "## Reproduction results (scale=%s, GOMAXPROCS=%d)\n\n", rep.Scale, rep.GOMAXPROCS)
	fmt.Fprintf(w, "Simulated machine: %s. Shape, not absolute throughput, is the\nreproduction target — see docs/experiments.md.\n\n", rep.Machine)
	for _, id := range rep.Experiments() {
		recs := rep.ByExperiment(id)
		title := titles[id]
		if title == "" {
			title = id
		}
		fmt.Fprintf(w, "### %s\n\n", title)
		MarkdownThroughput(w, id, recs)
		fmt.Fprintln(w)
		MarkdownAborts(w, id, recs)
		fmt.Fprintln(w)
		if hasLatency(recs) {
			MarkdownLatency(w, id, recs)
			fmt.Fprintln(w)
		}
		if hasTelemetry(recs) {
			MarkdownTelemetry(w, id, recs)
			fmt.Fprintln(w)
		}
		if hasController(recs) {
			MarkdownController(w, id, recs)
			fmt.Fprintln(w)
		}
	}
}
