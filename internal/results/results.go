// Package results is the typed result layer of the reproduction
// pipeline: every measurement the repository can produce — a figure
// panel's (system, thread-count) point or an ablation's parameter-sweep
// point — becomes one Record, and a run of the pipeline becomes one
// Report that serializes to JSON (the `BENCH_repro.json` artifact) and
// renders to the markdown tables embedded in docs/experiments.md.
//
// The package also implements baseline comparison: Compare matches the
// records of two reports cell by cell and flags throughput regressions
// beyond a tolerance, which is what CI uses to detect a slowdown between
// commits without caring about absolute numbers (the simulator's
// throughput depends on the host).
package results

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"sihtm/internal/harness"
	"sihtm/internal/stats"
)

// Record is one measurement: a single (experiment, system, threads,
// param) cell of the evaluation. Abort counts follow the paper's
// taxonomy (§4).
type Record struct {
	// Experiment is the registry id, e.g. "fig6-low" or "capacity".
	Experiment string `json:"experiment"`
	// Figure is the paper figure the experiment reproduces (0 for
	// ablations that have no figure).
	Figure int `json:"figure,omitempty"`
	// Panel distinguishes the figure's contention panels ("low"/"high").
	Panel string `json:"panel,omitempty"`
	// Workload names the workload family ("hashmap", "tpcc", "synthetic").
	Workload string `json:"workload,omitempty"`
	// System is the concurrency control under test ("si-htm", "htm", ...).
	System string `json:"system"`
	// Threads is the worker count of this point.
	Threads int `json:"threads"`
	// Param carries the swept parameter of ablation points (e.g.
	// "footprint=96", "tmcam=32", "placement=stacked"). Empty for
	// thread-ladder points.
	Param string `json:"param,omitempty"`
	// Order is the experiment's registry presentation rank, used to
	// keep same-figure records (notably the figure-0 ablations) in
	// registry order rather than alphabetical order.
	Order int `json:"order,omitempty"`

	ElapsedSec float64 `json:"elapsed_sec"`
	// Throughput is committed transactions per second.
	Throughput float64 `json:"throughput_tx_s"`
	Commits    uint64  `json:"commits"`
	CommitsRO  uint64  `json:"commits_ro"`
	// Abort counts by cause, as in the paper's abort-breakdown panels.
	AbortsTransactional    uint64 `json:"aborts_transactional"`
	AbortsNonTransactional uint64 `json:"aborts_non_transactional"`
	AbortsCapacity         uint64 `json:"aborts_capacity"`
	AbortsExplicit         uint64 `json:"aborts_explicit"`
	AbortsOther            uint64 `json:"aborts_other"`
	Fallbacks              uint64 `json:"fallbacks"`
	// AbortRate is total aborts / attempts (attempts = commits + aborts).
	AbortRate float64 `json:"abort_rate"`

	// Networked-cell extras, zero elsewhere: per-op service latency
	// percentiles measured server-side (admission to reply encode) and
	// the achieved operations per transaction of the admission batching.
	// Open-loop cells (net-connscale) instead fill the latency fields
	// with the client-observed, coordinated-omission-safe distribution.
	LatencyP50Us float64 `json:"latency_p50_us,omitempty"`
	LatencyP99Us float64 `json:"latency_p99_us,omitempty"`
	BatchAvgOps  float64 `json:"batch_avg_ops,omitempty"`

	// Telemetry extras scraped from the server's instrument registry over
	// the measurement window, zero elsewhere: admission-wait p99, the
	// window's fsync count and wall-time p99, and the commit-ack wait p99
	// (the durability tax a client pays on top of execution). The fsync
	// and ack fields stay zero on volatile servers.
	AdmitWaitP99Us float64 `json:"admit_wait_p99_us,omitempty"`
	FsyncsTotal    uint64  `json:"fsyncs_total,omitempty"`
	FsyncP99Us     float64 `json:"fsync_p99_us,omitempty"`
	AckWaitP99Us   float64 `json:"ack_wait_p99_us,omitempty"`

	// Admission-controller extras: the server's converged (or manually
	// fixed) admission knobs at the end of the point's window, and the
	// p99 target the controller steered toward (zero = controller off).
	CtrlBatchMax    int `json:"ctrl_batch_max,omitempty"`
	CtrlAdmitWaitUs int `json:"ctrl_admit_wait_us,omitempty"`
	CtrlP99TargetUs int `json:"ctrl_p99_target_us,omitempty"`

	// Tracing extras (net-trace only): spans the leader recorded over
	// the run, and the reconstructed exemplar trace's server-side stage
	// sum versus the client-observed round trip for the same trace id.
	TraceSpansTotal uint64  `json:"trace_spans_total,omitempty"`
	TraceStageSumUs float64 `json:"trace_stage_sum_us,omitempty"`
	TraceClientUs   float64 `json:"trace_client_us,omitempty"`

	// Alerting extras (net-slo only): firing transitions the rule engine
	// recorded over the point, time from overload start to the capacity
	// alert firing, and time from load drop to its resolution.
	AlertsFired          uint64  `json:"alerts_fired,omitempty"`
	AlertTimeToFireMs    float64 `json:"alert_ttf_ms,omitempty"`
	AlertTimeToResolveMs float64 `json:"alert_ttr_ms,omitempty"`
}

// Key identifies a record's cell for matching between reports.
type Key struct {
	Experiment string
	System     string
	Threads    int
	Param      string
}

// Key returns the record's comparison key.
func (r Record) Key() Key {
	return Key{Experiment: r.Experiment, System: r.System, Threads: r.Threads, Param: r.Param}
}

// TotalAborts sums the abort counts across causes.
func (r Record) TotalAborts() uint64 {
	return r.AbortsTransactional + r.AbortsNonTransactional + r.AbortsCapacity + r.AbortsExplicit + r.AbortsOther
}

// AbortPercent returns aborts of one cause as a percentage of attempts.
func (r Record) AbortPercent(count uint64) float64 {
	attempts := r.Commits + r.TotalAborts()
	if attempts == 0 {
		return 0
	}
	return 100 * float64(count) / float64(attempts)
}

// FromHarness converts a harness measurement into a Record. The caller
// supplies the registry coordinates; param may be empty.
func FromHarness(experiment string, figure int, panel, workload, param string, hr harness.Result) Record {
	return Record{
		Experiment:             experiment,
		Figure:                 figure,
		Panel:                  panel,
		Workload:               workload,
		System:                 hr.System,
		Threads:                hr.Threads,
		Param:                  param,
		ElapsedSec:             hr.Elapsed.Seconds(),
		Throughput:             hr.Throughput,
		Commits:                hr.Stats.Commits,
		CommitsRO:              hr.Stats.CommitsRO,
		AbortsTransactional:    hr.Stats.Aborts[stats.AbortTransactional],
		AbortsNonTransactional: hr.Stats.Aborts[stats.AbortNonTransactional],
		AbortsCapacity:         hr.Stats.Aborts[stats.AbortCapacity],
		AbortsExplicit:         hr.Stats.Aborts[stats.AbortExplicit],
		AbortsOther:            hr.Stats.Aborts[stats.AbortOther],
		Fallbacks:              hr.Stats.Fallbacks,
		AbortRate:              hr.Stats.AbortRate(),
	}
}

// Report is a full pipeline run: provenance metadata plus every record.
type Report struct {
	// Tool identifies the producer (e.g. "cmd/repro").
	Tool string `json:"tool"`
	// Scale names the scale preset the run used ("ci", "quick", "paper").
	Scale string `json:"scale"`
	// GOMAXPROCS records the host parallelism the simulator ran under —
	// absolute throughput is only comparable at equal values.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Shards records how many (experiment × system) cells ran
	// concurrently. Timed cells contend with their co-runners, so
	// comparing reports produced at different shard counts is
	// misleading; Compare warns on a mismatch.
	Shards int `json:"shards,omitempty"`
	// Partial marks a report whose run aborted before every selected
	// cell completed (the records present are still valid).
	Partial bool `json:"partial,omitempty"`
	// Machine describes the simulated hardware.
	Machine string `json:"machine"`
	// Records holds every measurement, sorted by Sort.
	Records []Record `json:"records"`
}

// Sort orders records by (figure, experiment, param, threads, system) so
// serialized reports are deterministic regardless of shard scheduling.
// Figures come before ablations (figure 0); params with numeric suffixes
// ("footprint=96") order numerically.
func (rep *Report) Sort() {
	sort.SliceStable(rep.Records, func(i, j int) bool {
		a, b := rep.Records[i], rep.Records[j]
		if fa, fb := figureRank(a.Figure), figureRank(b.Figure); fa != fb {
			return fa < fb
		}
		if pa, pb := panelRank(a.Panel), panelRank(b.Panel); pa != pb {
			return pa < pb
		}
		if a.Order != b.Order {
			return a.Order < b.Order
		}
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Param != b.Param {
			return paramLess(a.Param, b.Param)
		}
		if a.Threads != b.Threads {
			return a.Threads < b.Threads
		}
		return a.System < b.System
	})
}

// figureRank sorts ablations (figure 0) after all figures.
func figureRank(figure int) int {
	if figure == 0 {
		return 1 << 30
	}
	return figure
}

// panelRank presents panels in the paper's order: left (low contention)
// before right (high contention).
func panelRank(panel string) int {
	switch panel {
	case "low":
		return 0
	case "high":
		return 1
	default:
		return 2
	}
}

// paramLess orders "key=value" params naturally: equal keys with
// numeric values compare numerically ("footprint=16" < "footprint=96" <
// "footprint=128"), everything else lexically.
func paramLess(a, b string) bool {
	ka, va, oka := strings.Cut(a, "=")
	kb, vb, okb := strings.Cut(b, "=")
	if oka && okb && ka == kb {
		na, errA := strconv.Atoi(va)
		nb, errB := strconv.Atoi(vb)
		if errA == nil && errB == nil {
			return na < nb
		}
	}
	return a < b
}

// Experiments returns the distinct experiment ids in record order.
func (rep *Report) Experiments() []string {
	var ids []string
	seen := map[string]bool{}
	for _, r := range rep.Records {
		if !seen[r.Experiment] {
			seen[r.Experiment] = true
			ids = append(ids, r.Experiment)
		}
	}
	return ids
}

// ByExperiment returns the records of one experiment, in report order.
func (rep *Report) ByExperiment(id string) []Record {
	var out []Record
	for _, r := range rep.Records {
		if r.Experiment == id {
			out = append(out, r)
		}
	}
	return out
}

// WriteJSON serializes the report (indented, trailing newline).
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteFile serializes the report to path.
func (rep *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJSON parses a report produced by WriteJSON.
func ReadJSON(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("results: decode report: %w", err)
	}
	return &rep, nil
}

// ReadFile parses a report from path.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
