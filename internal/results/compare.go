package results

import (
	"fmt"
	"io"
	"sort"
)

// Regression is one cell whose throughput fell beyond tolerance
// relative to the baseline.
type Regression struct {
	Key      Key
	Baseline float64 // baseline throughput (tx/s)
	Current  float64 // current throughput (tx/s)
	// Ratio is current/baseline (< 1-tolerance to be flagged).
	Ratio float64
}

func (r Regression) String() string {
	where := fmt.Sprintf("%s/%s/%d", r.Key.Experiment, r.Key.System, r.Key.Threads)
	if r.Key.Param != "" {
		where += "/" + r.Key.Param
	}
	return fmt.Sprintf("%s: %.0f → %.0f tx/s (%.0f%%)", where, r.Baseline, r.Current, 100*r.Ratio)
}

// Comparison summarizes a baseline-vs-current match.
type Comparison struct {
	// Matched counts cells present in both reports.
	Matched int
	// MissingInCurrent counts baseline cells the current report lacks —
	// a coverage regression, reported separately from slowdowns.
	MissingInCurrent int
	// Regressions are matched cells slower than tolerance allows.
	Regressions []Regression
	// Warnings flag comparability problems (scale or shard-count
	// mismatch between the reports) that make ratios unreliable.
	Warnings []string
}

// Compare matches records cell by cell (experiment, system, threads,
// param) and flags throughput regressions: cells where current <
// baseline × (1 - tolerance). Tolerance must be generous for timed
// windows on shared CI hosts (0.5 flags only >2× slowdowns at the
// margin); cells below minCommits commits in the baseline are skipped
// as noise.
func Compare(baseline, current *Report, tolerance float64, minCommits uint64) Comparison {
	cur := make(map[Key]Record, len(current.Records))
	for _, r := range current.Records {
		cur[r.Key()] = r
	}
	var c Comparison
	if baseline.Scale != current.Scale {
		c.Warnings = append(c.Warnings, fmt.Sprintf("scale mismatch: baseline %q vs current %q", baseline.Scale, current.Scale))
	}
	if baseline.Shards != current.Shards {
		c.Warnings = append(c.Warnings, fmt.Sprintf("shard-count mismatch: baseline %d vs current %d (timed cells contend with co-runners; ratios are unreliable)", baseline.Shards, current.Shards))
	}
	for _, b := range baseline.Records {
		now, ok := cur[b.Key()]
		if !ok {
			c.MissingInCurrent++
			continue
		}
		c.Matched++
		if b.Commits < minCommits || b.Throughput <= 0 {
			continue
		}
		ratio := now.Throughput / b.Throughput
		if ratio < 1-tolerance {
			c.Regressions = append(c.Regressions, Regression{
				Key:      b.Key(),
				Baseline: b.Throughput,
				Current:  now.Throughput,
				Ratio:    ratio,
			})
		}
	}
	// Worst first, so truncated CI logs still show the headline.
	sort.Slice(c.Regressions, func(i, j int) bool { return c.Regressions[i].Ratio < c.Regressions[j].Ratio })
	return c
}

// WriteText renders the comparison human-readably.
func (c Comparison) WriteText(w io.Writer) {
	for _, warn := range c.Warnings {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}
	fmt.Fprintf(w, "compared %d cells (%d baseline cells missing in current)\n", c.Matched, c.MissingInCurrent)
	if len(c.Regressions) == 0 {
		fmt.Fprintln(w, "no throughput regressions")
		return
	}
	fmt.Fprintf(w, "%d throughput regression(s):\n", len(c.Regressions))
	for _, r := range c.Regressions {
		fmt.Fprintf(w, "  %s\n", r)
	}
}
