package stats

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a concurrency-safe latency histogram with logarithmic
// buckets: each power-of-two octave of nanoseconds is split into four
// linear sub-buckets, so quantile estimates carry at most ~25% relative
// error across the whole 1ns..~4.5min range — plenty for the p50/p99
// panels of the networked service layer, at the cost of one atomic add
// per observation and no allocation.
//
// The zero value is ready to use. Snapshots subtract (HistogramSnapshot
// .Sub), which is how measurement windows are carved out of a live
// server's histogram without resetting it under traffic.
type Histogram struct {
	sum     atomic.Uint64 // total observed nanoseconds
	buckets [histSlots]atomic.Uint64
}

const (
	// histSubBits sub-divides each octave into 2^histSubBits linear
	// sub-buckets.
	histSubBits = 2
	histSub     = 1 << histSubBits
	// histOctaves sizes the slot table; with the contiguous mapping of
	// histSlot the top slot ends at 2^(histOctaves+1) ns (~9 minutes) and
	// larger values clamp into it.
	histOctaves = 38
	histSlots   = histOctaves * histSub
)

// histSlot maps a nanosecond value to its bucket index. Values below
// histSub get one exact slot each; octave o ≥ histSubBits contributes
// histSub slots starting at (o-histSubBits+1)·histSub, which tiles the
// range contiguously.
func histSlot(ns uint64) int {
	if ns < histSub {
		return int(ns)
	}
	octave := bits.Len64(ns) - 1
	sub := (ns >> (uint(octave) - histSubBits)) & (histSub - 1)
	slot := (octave-histSubBits+1)*histSub + int(sub)
	if slot >= histSlots {
		slot = histSlots - 1
	}
	return slot
}

// histBounds returns the [lo, hi) nanosecond range of one slot.
func histBounds(slot int) (lo, hi uint64) {
	if slot < histSub {
		return uint64(slot), uint64(slot) + 1
	}
	octave := slot/histSub + histSubBits - 1
	sub := uint64(slot % histSub)
	width := uint64(1) << (uint(octave) - histSubBits)
	lo = (uint64(1) << uint(octave)) + sub*width
	return lo, lo + width
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d.Nanoseconds())
	}
	h.sum.Add(ns)
	h.buckets[histSlot(ns)].Add(1)
}

// Snapshot copies the current counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.SumNs = h.sum.Load()
	s.Counts = make([]uint64, histSlots)
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// SnapshotInto copies the current counters into dst, reusing dst's
// Counts buffer when it has capacity — the allocation-free scrape path
// (internal/tsdb's snapshot ring pins zero steady-state allocs on it).
func (h *Histogram) SnapshotInto(dst *HistogramSnapshot) {
	dst.SumNs = h.sum.Load()
	if cap(dst.Counts) < histSlots {
		dst.Counts = make([]uint64, histSlots)
	}
	dst.Counts = dst.Counts[:histSlots]
	for i := range h.buckets {
		dst.Counts[i] = h.buckets[i].Load()
	}
}

// HistogramSnapshot is an immutable copy of a Histogram (or the delta of
// two). It serializes to JSON, which is how server stats travel over the
// wire protocol's control plane.
type HistogramSnapshot struct {
	Counts []uint64 `json:"counts"`
	SumNs  uint64   `json:"sum_ns"`
}

// Sub returns the delta s - earlier, bucket-wise: the observations of a
// measurement window. Snapshots of different shapes (e.g. a zero-value
// snapshot) subtract as if missing buckets were zero.
func (s HistogramSnapshot) Sub(earlier HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{SumNs: s.SumNs - earlier.SumNs}
	d.Counts = make([]uint64, len(s.Counts))
	copy(d.Counts, s.Counts)
	for i := range earlier.Counts {
		if i < len(d.Counts) {
			d.Counts[i] -= earlier.Counts[i]
		}
	}
	return d
}

// Count returns the total number of observations.
func (s HistogramSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(s.SumNs / n)
}

// Quantile estimates the p-quantile (p in [0, 1]) by linear
// interpolation inside the bucket holding the target rank. The estimate
// is within one sub-bucket width of the true value (~25% relative).
//
// An empty snapshot (no observations — including a Sub delta over a
// quiet window) returns the documented sentinel 0. Callers that must
// distinguish "no data" from "genuinely ~0ns" use QuantileOK.
func (s HistogramSnapshot) Quantile(p float64) time.Duration {
	q, _ := s.QuantileOK(p)
	return q
}

// QuantileOK is Quantile with an explicit validity bit: ok is false —
// and the quantile 0 — when the snapshot holds no observations, so a
// measurement window that saw no traffic is never mistaken for one
// whose latencies were all zero.
func (s HistogramSnapshot) QuantileOK(p float64) (q time.Duration, ok bool) {
	total := s.Count()
	if total == 0 {
		return 0, false
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(total)
	var cum float64
	for slot, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, hi := histBounds(slot)
			frac := (target - cum) / float64(c)
			return time.Duration(float64(lo) + frac*float64(hi-lo)), true
		}
		cum = next
	}
	// All mass below target (p == 1 rounding): the top occupied bucket.
	for slot := len(s.Counts) - 1; slot >= 0; slot-- {
		if s.Counts[slot] > 0 {
			_, hi := histBounds(slot)
			return time.Duration(hi), true
		}
	}
	return 0, false
}

// NumHistogramBuckets is the bucket count of every Histogram (and of
// the Counts slice of every non-empty snapshot).
const NumHistogramBuckets = histSlots

// HistogramBucketBounds returns the [lo, hi) nanosecond range of one
// bucket slot, exported for renderers (the telemetry registry's
// Prometheus text format) that must translate bucket counts back into
// value boundaries.
func HistogramBucketBounds(slot int) (loNs, hiNs uint64) { return histBounds(slot) }

// HistogramSlot returns the bucket slot Observe(d) would count into,
// exported so exemplar tables (trace.Exemplars) can key recent trace
// ids by the exact bucket a scraped quantile lands in.
func HistogramSlot(d time.Duration) int {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d.Nanoseconds())
	}
	return histSlot(ns)
}
