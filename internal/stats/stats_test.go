package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"unsafe"
)

func TestSlotPaddingKeepsThreadsApart(t *testing.T) {
	var slots [2]threadSlot
	a := uintptr(unsafe.Pointer(&slots[0]))
	b := uintptr(unsafe.Pointer(&slots[1]))
	if b-a < 128 {
		t.Fatalf("adjacent slots %d bytes apart, want >= 128 (one cache line)", b-a)
	}
}

func TestBasicCounting(t *testing.T) {
	c := New(2)
	t0 := c.Thread(0)
	t1 := c.Thread(1)
	t0.Commit(false)
	t0.Commit(true)
	t0.Abort(AbortCapacity)
	t1.Abort(AbortTransactional)
	t1.Abort(AbortTransactional)
	t1.Fallback()
	t1.WaitSpins(7)

	s := c.Snapshot()
	if s.Commits != 2 || s.CommitsRO != 1 {
		t.Fatalf("commits = %d (ro %d), want 2 (ro 1)", s.Commits, s.CommitsRO)
	}
	if s.Aborts[AbortCapacity] != 1 || s.Aborts[AbortTransactional] != 2 {
		t.Fatalf("aborts wrong: %+v", s.Aborts)
	}
	if s.TotalAborts() != 3 {
		t.Fatalf("TotalAborts = %d, want 3", s.TotalAborts())
	}
	if s.Attempts() != 5 {
		t.Fatalf("Attempts = %d, want 5", s.Attempts())
	}
	if s.Fallbacks != 1 || s.WaitSpins != 7 {
		t.Fatalf("fallbacks/waitSpins = %d/%d, want 1/7", s.Fallbacks, s.WaitSpins)
	}
}

func TestAbortKindOutOfRangeMapsToOther(t *testing.T) {
	c := New(1)
	c.Thread(0).Abort(AbortKind(99))
	c.Thread(0).Abort(AbortKind(-1))
	if got := c.Snapshot().Aborts[AbortOther]; got != 2 {
		t.Fatalf("out-of-range kinds recorded %d in Other, want 2", got)
	}
}

func TestSubDelta(t *testing.T) {
	c := New(1)
	th := c.Thread(0)
	th.Commit(false)
	th.Abort(AbortCapacity)
	warm := c.Snapshot()
	th.Commit(false)
	th.Commit(false)
	th.Abort(AbortNonTransactional)
	d := c.Snapshot().Sub(warm)
	if d.Commits != 2 {
		t.Fatalf("delta commits = %d, want 2", d.Commits)
	}
	if d.Aborts[AbortCapacity] != 0 || d.Aborts[AbortNonTransactional] != 1 {
		t.Fatalf("delta aborts wrong: %+v", d.Aborts)
	}
}

func TestRates(t *testing.T) {
	var s Stats
	if s.AbortRate() != 0 || s.AbortShare(AbortCapacity) != 0 {
		t.Fatal("zero stats must have zero rates")
	}
	s.Commits = 60
	s.Aborts[AbortTransactional] = 30
	s.Aborts[AbortCapacity] = 10
	if got := s.AbortRate(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("AbortRate = %v, want 0.4", got)
	}
	if got := s.AbortShare(AbortCapacity); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("AbortShare(capacity) = %v, want 0.1", got)
	}
}

// Property: shares over all kinds sum to the abort rate.
func TestSharesSumToRateProperty(t *testing.T) {
	f := func(commits uint16, a0, a1, a2, a3, a4 uint16) bool {
		var s Stats
		s.Commits = uint64(commits)
		s.Aborts[0] = uint64(a0)
		s.Aborts[1] = uint64(a1)
		s.Aborts[2] = uint64(a2)
		s.Aborts[3] = uint64(a3)
		s.Aborts[4] = uint64(a4)
		var sum float64
		for k := 0; k < NumAbortKinds; k++ {
			sum += s.AbortShare(AbortKind(k))
		}
		return math.Abs(sum-s.AbortRate()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCountingLosesNothing(t *testing.T) {
	const threads = 8
	const per = 10000
	c := New(threads)
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := c.Thread(id)
			for i := 0; i < per; i++ {
				th.Commit(i%2 == 0)
				th.Abort(AbortKind(i % NumAbortKinds))
			}
		}(id)
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Commits != threads*per {
		t.Fatalf("commits = %d, want %d", s.Commits, threads*per)
	}
	if s.TotalAborts() != threads*per {
		t.Fatalf("aborts = %d, want %d", s.TotalAborts(), threads*per)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[AbortKind]string{
		AbortTransactional:    "transactional",
		AbortNonTransactional: "non-transactional",
		AbortCapacity:         "capacity",
		AbortExplicit:         "explicit",
		AbortOther:            "other",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if !strings.HasPrefix(AbortKind(42).String(), "AbortKind(") {
		t.Error("unknown kind should format as AbortKind(n)")
	}
}

func TestStatsString(t *testing.T) {
	c := New(1)
	c.Thread(0).Commit(true)
	c.Thread(0).Abort(AbortCapacity)
	got := c.Snapshot().String()
	for _, want := range []string{"commits=1", "ro=1", "capacity=1", "fallbacks=0"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// HWBegin feeds the mode-split hardware-attempt counters; Local reads
// only the calling thread's slot.
func TestHWBeginAndLocal(t *testing.T) {
	c := New(2)
	t0, t1 := c.Thread(0), c.Thread(1)
	t0.HWBegin(true)
	t0.HWBegin(true)
	t0.HWBegin(false)
	t1.HWBegin(false)
	t0.Commit(false)

	s := c.Snapshot()
	if s.HWBeginROT != 2 || s.HWBeginHTM != 2 {
		t.Fatalf("snapshot hw = rot:%d htm:%d, want 2/2", s.HWBeginROT, s.HWBeginHTM)
	}
	l0 := t0.Local()
	if l0.HWBeginROT != 2 || l0.HWBeginHTM != 1 || l0.Commits != 1 {
		t.Fatalf("thread-0 local = %+v, want rot:2 htm:1 commits:1", l0)
	}
	if l1 := t1.Local(); l1.HWBeginROT != 0 || l1.HWBeginHTM != 1 {
		t.Fatalf("thread-1 local = %+v, want rot:0 htm:1", l1)
	}
	d := s.Sub(l0)
	if d.HWBeginROT != 0 || d.HWBeginHTM != 1 {
		t.Fatalf("Sub hw delta = rot:%d htm:%d, want 0/1", d.HWBeginROT, d.HWBeginHTM)
	}
}
