package stats

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistSlotBoundsRoundTrip(t *testing.T) {
	// Every slot's bounds must map back to the slot itself, bounds must
	// tile the range without gaps, and representative values must land in
	// the slot whose bounds contain them.
	prevHi := uint64(0)
	for slot := 0; slot < histSlots; slot++ {
		lo, hi := histBounds(slot)
		if lo != prevHi {
			t.Fatalf("slot %d: lo = %d, want %d (gap/overlap)", slot, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("slot %d: empty range [%d, %d)", slot, lo, hi)
		}
		if got := histSlot(lo); got != slot {
			t.Fatalf("histSlot(%d) = %d, want %d", lo, got, slot)
		}
		if slot < histSlots-1 {
			if got := histSlot(hi - 1); got != slot {
				t.Fatalf("histSlot(%d) = %d, want %d", hi-1, got, slot)
			}
		}
		prevHi = hi
	}
	// Values beyond the range clamp to the last slot.
	if got := histSlot(math.MaxUint64); got != histSlots-1 {
		t.Fatalf("histSlot(max) = %d, want %d", got, histSlots-1)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// A known uniform population: 1..1000 µs.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count())
	}
	for _, c := range []struct {
		p    float64
		want time.Duration
	}{
		{0.5, 500 * time.Microsecond},
		{0.9, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := s.Quantile(c.p)
		rel := math.Abs(float64(got-c.want)) / float64(c.want)
		if rel > 0.30 {
			t.Errorf("Quantile(%.2f) = %s, want ~%s (rel err %.2f)", c.p, got, c.want, rel)
		}
	}
	if m := s.Mean(); m < 400*time.Microsecond || m > 600*time.Microsecond {
		t.Errorf("Mean = %s, want ~500µs", m)
	}
	// Quantiles are monotone in p.
	prev := time.Duration(-1)
	for p := 0.0; p <= 1.0; p += 0.05 {
		q := s.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile(%.2f) = %s < previous %s", p, q, prev)
		}
		prev = q
	}
}

func TestHistogramSub(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	before := h.Snapshot()
	h.Observe(2 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	d := h.Snapshot().Sub(before)
	if d.Count() != 2 {
		t.Fatalf("delta Count = %d, want 2", d.Count())
	}
	if d.SumNs != uint64(5*time.Millisecond) {
		t.Fatalf("delta SumNs = %d, want %d", d.SumNs, 5*time.Millisecond)
	}
	// Subtracting a zero-value snapshot is the identity.
	id := h.Snapshot().Sub(HistogramSnapshot{})
	if id.Count() != 3 {
		t.Fatalf("identity Sub lost counts: %d", id.Count())
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	if s.SumNs != 0 {
		t.Fatalf("SumNs = %d, want 0", s.SumNs)
	}
	if q := s.Quantile(0.99); q > time.Nanosecond {
		t.Fatalf("Quantile of all-zero population = %s", q)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile not 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, each = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(w*100+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count(); got != workers*each {
		t.Fatalf("Count = %d, want %d", got, workers*each)
	}
}

// QuantileOK distinguishes "no data" from "all observations ~0": the
// empty cases the windowed Sub machinery produces routinely.
func TestQuantileEmptyAndSingle(t *testing.T) {
	var h Histogram
	empty := h.Snapshot()
	if q, ok := empty.QuantileOK(0.99); ok || q != 0 {
		t.Fatalf("empty QuantileOK = (%v, %v), want (0, false)", q, ok)
	}
	if q := empty.Quantile(0.99); q != 0 {
		t.Fatalf("empty Quantile = %v, want sentinel 0", q)
	}

	h.Observe(5 * time.Microsecond)
	one := h.Snapshot()
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		q, ok := one.QuantileOK(p)
		if !ok {
			t.Fatalf("single-sample QuantileOK(%v) not ok", p)
		}
		// The sample sits in one bucket; every quantile must land inside
		// that bucket's ~25% relative error band.
		if q < 4*time.Microsecond || q > 7*time.Microsecond {
			t.Fatalf("single-sample QuantileOK(%v) = %v, want ~5µs", p, q)
		}
	}

	// A genuinely-zero observation is ok=true with quantile 0 — distinct
	// from the empty snapshot.
	var hz Histogram
	hz.Observe(0)
	if q, ok := hz.Snapshot().QuantileOK(0.5); !ok || q != 0 {
		t.Fatalf("zero-valued sample QuantileOK = (%v, %v), want (0, true)", q, ok)
	}
}

// Sub-ing a snapshot down to zero observations (a quiet measurement
// window) must report not-ok, not a fabricated bucket value.
func TestQuantileSubToZero(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	s := h.Snapshot()
	win := s.Sub(s)
	if n := win.Count(); n != 0 {
		t.Fatalf("self-Sub count = %d, want 0", n)
	}
	if q, ok := win.QuantileOK(0.99); ok || q != 0 {
		t.Fatalf("self-Sub QuantileOK = (%v, %v), want (0, false)", q, ok)
	}
	if m := win.Mean(); m != 0 {
		t.Fatalf("self-Sub Mean = %v, want 0", m)
	}
}
