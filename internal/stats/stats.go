// Package stats collects the execution metrics the paper's evaluation
// reports: committed transactions (throughput) and aborts discriminated
// by cause (§4: "we distinguish transactional aborts, ... non-transactional
// aborts, mostly caused by a locked SGL that kills ongoing transactions,
// ... and, of course, capacity aborts"), plus fall-back-path acquisitions.
//
// Counters are laid out one padded slot per simulated hardware thread so
// that the measurement machinery itself does not create false sharing
// between threads — the effect the benchmarks are trying to observe, not
// cause.
package stats

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// AbortKind classifies why a transaction aborted, matching the paper's
// abort taxonomy.
type AbortKind int

const (
	// AbortTransactional: a conflicting transactional access (the other
	// party was itself inside a transaction).
	AbortTransactional AbortKind = iota
	// AbortNonTransactional: killed by a non-transactional access — in
	// practice an SGL acquisition, a quiescence-phase read, or any plain
	// store into a tracked line.
	AbortNonTransactional
	// AbortCapacity: the transaction exceeded the (shared) TMCAM budget.
	AbortCapacity
	// AbortExplicit: the program aborted the transaction itself (e.g. the
	// lock-subscription check observed a busy SGL).
	AbortExplicit
	// AbortOther: anything else (illegal operation inside a transaction).
	AbortOther

	numAbortKinds
)

// NumAbortKinds is the number of distinct AbortKind values.
const NumAbortKinds = int(numAbortKinds)

// String implements fmt.Stringer.
func (k AbortKind) String() string {
	switch k {
	case AbortTransactional:
		return "transactional"
	case AbortNonTransactional:
		return "non-transactional"
	case AbortCapacity:
		return "capacity"
	case AbortExplicit:
		return "explicit"
	case AbortOther:
		return "other"
	default:
		return fmt.Sprintf("AbortKind(%d)", int(k))
	}
}

// threadSlot holds one thread's counters, padded to two cache lines so
// adjacent threads never share a line. The counter fields occupy
// (2+numAbortKinds+4)*8 = 88 bytes; the padding rounds the slot up to 256.
type threadSlot struct {
	commits   atomic.Uint64
	commitsRO atomic.Uint64 // subset of commits that took a read-only path
	aborts    [numAbortKinds]atomic.Uint64
	fallbacks atomic.Uint64 // commits that went through the SGL path
	waitSpins atomic.Uint64 // safety-wait / quiescence spin iterations
	hwROT     atomic.Uint64 // hardware transaction begins in ROT mode
	hwHTM     atomic.Uint64 // hardware transaction begins in regular HTM mode
	_         [256 - (6+numAbortKinds)*8]byte
}

// Collector accumulates per-thread counters. Create one per experiment run
// with New, hand Thread views to workers, and read totals with Snapshot.
type Collector struct {
	slots []threadSlot
}

// New returns a Collector for the given number of threads.
func New(threads int) *Collector {
	if threads <= 0 {
		panic(fmt.Sprintf("stats: thread count must be positive, got %d", threads))
	}
	return &Collector{slots: make([]threadSlot, threads)}
}

// Threads returns the number of thread slots.
func (c *Collector) Threads() int { return len(c.slots) }

// Thread returns the counter view for one thread. The returned value is
// cheap and may be stored per-worker.
func (c *Collector) Thread(id int) Thread {
	return Thread{slot: &c.slots[id]}
}

// Thread is a single thread's counter handle.
type Thread struct {
	slot *threadSlot
}

// Commit records a committed transaction. readOnly marks commits that used
// a read-only fast path.
func (t Thread) Commit(readOnly bool) {
	t.slot.commits.Add(1)
	if readOnly {
		t.slot.commitsRO.Add(1)
	}
}

// Abort records an aborted transaction attempt of the given kind.
func (t Thread) Abort(kind AbortKind) {
	if kind < 0 || kind >= numAbortKinds {
		kind = AbortOther
	}
	t.slot.aborts[kind].Add(1)
}

// Fallback records a commit that was executed under the single global lock.
func (t Thread) Fallback() { t.slot.fallbacks.Add(1) }

// WaitSpins adds n quiescence/safety-wait spin iterations.
func (t Thread) WaitSpins(n uint64) { t.slot.waitSpins.Add(n) }

// HWBegin records one hardware transaction begin: rot distinguishes
// POWER rollback-only transactions from regular HTM mode. Software-only
// systems (sgl, silo) never call it and report zero through the same
// telemetry families, which is itself informative.
func (t Thread) HWBegin(rot bool) {
	if rot {
		t.slot.hwROT.Add(1)
	} else {
		t.slot.hwHTM.Add(1)
	}
}

// Local snapshots this thread's own slot. The server's batch executor
// diffs it around one Atomic call to attribute abort causes to a single
// batch for slow-request traces — summing the whole Collector there
// would charge every shard's aborts to every batch.
func (t Thread) Local() Stats {
	var s Stats
	s.Commits = t.slot.commits.Load()
	s.CommitsRO = t.slot.commitsRO.Load()
	for k := 0; k < NumAbortKinds; k++ {
		s.Aborts[k] = t.slot.aborts[k].Load()
	}
	s.Fallbacks = t.slot.fallbacks.Load()
	s.WaitSpins = t.slot.waitSpins.Load()
	s.HWBeginROT = t.slot.hwROT.Load()
	s.HWBeginHTM = t.slot.hwHTM.Load()
	return s
}

// Stats is an immutable snapshot of a Collector (or a delta of two).
type Stats struct {
	Commits    uint64
	CommitsRO  uint64
	Aborts     [NumAbortKinds]uint64
	Fallbacks  uint64
	WaitSpins  uint64
	HWBeginROT uint64 `json:",omitempty"`
	HWBeginHTM uint64 `json:",omitempty"`
}

// Snapshot sums all thread slots.
func (c *Collector) Snapshot() Stats {
	var s Stats
	for i := range c.slots {
		sl := &c.slots[i]
		s.Commits += sl.commits.Load()
		s.CommitsRO += sl.commitsRO.Load()
		for k := 0; k < NumAbortKinds; k++ {
			s.Aborts[k] += sl.aborts[k].Load()
		}
		s.Fallbacks += sl.fallbacks.Load()
		s.WaitSpins += sl.waitSpins.Load()
		s.HWBeginROT += sl.hwROT.Load()
		s.HWBeginHTM += sl.hwHTM.Load()
	}
	return s
}

// Sub returns the delta s - earlier, counter-wise. It is used to discard
// warm-up activity.
func (s Stats) Sub(earlier Stats) Stats {
	d := Stats{
		Commits:    s.Commits - earlier.Commits,
		CommitsRO:  s.CommitsRO - earlier.CommitsRO,
		Fallbacks:  s.Fallbacks - earlier.Fallbacks,
		WaitSpins:  s.WaitSpins - earlier.WaitSpins,
		HWBeginROT: s.HWBeginROT - earlier.HWBeginROT,
		HWBeginHTM: s.HWBeginHTM - earlier.HWBeginHTM,
	}
	for k := 0; k < NumAbortKinds; k++ {
		d.Aborts[k] = s.Aborts[k] - earlier.Aborts[k]
	}
	return d
}

// TotalAborts sums aborts across kinds.
func (s Stats) TotalAborts() uint64 {
	var n uint64
	for k := 0; k < NumAbortKinds; k++ {
		n += s.Aborts[k]
	}
	return n
}

// Attempts is commits + aborts (each abort is one failed attempt).
func (s Stats) Attempts() uint64 { return s.Commits + s.TotalAborts() }

// AbortRate returns the fraction of attempts that aborted, in [0,1].
func (s Stats) AbortRate() float64 {
	att := s.Attempts()
	if att == 0 {
		return 0
	}
	return float64(s.TotalAborts()) / float64(att)
}

// AbortShare returns kind's share of all attempts, in [0,1]. The paper's
// abort panels stack exactly these shares.
func (s Stats) AbortShare(kind AbortKind) float64 {
	att := s.Attempts()
	if att == 0 {
		return 0
	}
	return float64(s.Aborts[kind]) / float64(att)
}

// String renders a compact one-line summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "commits=%d (ro=%d) aborts=%d [", s.Commits, s.CommitsRO, s.TotalAborts())
	for k := 0; k < NumAbortKinds; k++ {
		if k > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", AbortKind(k), s.Aborts[k])
	}
	fmt.Fprintf(&b, "] fallbacks=%d", s.Fallbacks)
	return b.String()
}
