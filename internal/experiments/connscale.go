package experiments

import (
	"fmt"
	"time"

	"sihtm/internal/harness"
	"sihtm/internal/loadgen"
	"sihtm/internal/results"
	"sihtm/internal/stats"
	"sihtm/internal/wire"
	"sihtm/internal/workload/engine"
)

// The connection-scale cell answers the question the closed-loop net
// entries cannot: what happens to the service layer as the *client
// population* grows, with each client offering load on its own clock?
// An open-loop generator (internal/loadgen) drives a ladder of
// connection counts at a fixed per-connection arrival rate, so total
// offered load scales with the ladder, and latency is recorded
// coordinated-omission-safely (charged from the scheduled arrival, not
// the eventual send).
//
// Every rung is measured twice: once with fixed, deliberately
// aggressive admission knobs (large batch bound + long grace — the
// throughput-greedy static choice, which drives coalesced transactions
// over the TMCAM capacity cliff as queues build), and once with the
// adaptive admission controller steering the same knobs against a p99
// target. The paired records show the controller holding tail latency
// while keeping the capacity-abort share below the uncontrolled
// configuration's worst case.

// connScaleShards is the executor count of the self-hosted server.
const connScaleShards = 4

// connScaleUncontrolledBatch / Grace are the fixed knobs of the
// uncontrolled baseline: the admission bound far past the 64-line
// TMCAM, with a grace long enough that the top rung's arrival rate
// alone fills batches over the capacity cliff (per-shard arrivals ×
// grace > the TMCAM write budget), independent of queue backlog —
// the throughput-greedy static choice, made deterministic.
const (
	connScaleUncontrolledBatch = 256
	connScaleUncontrolledGrace = 10000 // µs
)

// connScaleParams derives the ladder shape from the scale preset: the
// connection counts, the per-connection Poisson arrival rate (total
// offered load = conns × rate), and the controller's p99 target.
func connScaleParams(sc Scale) (ladder []int, perConn float64, target time.Duration) {
	// Per-connection rates are chosen so the ladder spans light load to
	// overload: the top rung offers more than the simulated server can
	// serve, which is where fixed aggressive knobs saturate their batch
	// bound and fall off the capacity cliff while the controller backs
	// the bound down.
	switch {
	case sc.WorkloadDiv >= 20: // ci
		return []int{32, 128, 512}, 100, 5 * time.Millisecond
	case sc.WorkloadDiv >= 4: // quick
		return []int{64, 256, 1024}, 100, 5 * time.Millisecond
	default: // paper
		return []int{128, 1024, 10240}, 50, 10 * time.Millisecond
	}
}

// connScaleWindows widens the scale preset's run windows for this
// cell: open-loop queueing is bistable near the capacity cliff, and a
// tens-of-milliseconds window can end before an overloaded rung's
// backlog tips the uncontrolled configuration over it. The floors give
// every rung time to reach its steady state (and the controller time
// to converge) without touching the preset used to size the workload.
func connScaleWindows(sc Scale) Scale {
	if sc.Warmup < 100*time.Millisecond {
		sc.Warmup = 100 * time.Millisecond
	}
	if sc.Measure < 400*time.Millisecond {
		sc.Measure = 400 * time.Millisecond
	}
	return sc
}

// connScaleCtrlInterval picks a controller cadence that fits many
// adjustment epochs inside the measurement window, clamped so a long
// window does not starve the loop of decisions.
func connScaleCtrlInterval(sc Scale) time.Duration {
	iv := sc.Measure / 16
	if iv < 2*time.Millisecond {
		iv = 2 * time.Millisecond
	}
	if iv > 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	return iv
}

// runOpenLoopPoint drives one open-loop measurement against a live
// server and merges it into a record: client-observed CO-safe latency
// and throughput, server-side abort taxonomy over exactly the client's
// window, and the admission knobs at window end. rb is an open
// control-plane connection to the same server; sysLabel labels the
// record's system column.
func runOpenLoopPoint(e Entry, rb *engine.RemoteBackend, addr, sysLabel string,
	keys, conns int, arrival loadgen.Arrival, sc Scale, traceEvery int) (results.Record, error) {
	var sv0, sv1 wire.ServerStats
	var werr error
	res, err := loadgen.Run(loadgen.Config{
		Addr:    addr,
		Conns:   conns,
		Arrival: arrival,
		Keys:    keys,
		Warmup:  sc.Warmup,
		Measure: sc.Measure,
		Seed:    uint64(conns)*2654435761 + 1,
		// Sampled trace ids ship to the server so its ring fills for
		// /debug/traces; no client ring here — `repro trace` merges the
		// server-side rings.
		TraceEvery: traceEvery,
		AtWindow: func(start bool) {
			st, serr := rb.Stats()
			if serr != nil {
				werr = serr
				return
			}
			if start {
				sv0 = st
			} else {
				sv1 = st
			}
		},
	})
	if err != nil {
		return results.Record{}, err
	}
	if werr != nil {
		return results.Record{}, werr
	}
	if res.Errs > 0 {
		return results.Record{}, fmt.Errorf("%d error replies from %s", res.Errs, addr)
	}

	srvDelta := sv1.Stats.Sub(sv0.Stats)
	merged := stats.Stats{
		// Client side: each successful reply is one completed operation.
		Commits: res.Replies,
		// Server side: the abort taxonomy of the batched transactions
		// that served the window.
		Aborts:    srvDelta.Aborts,
		Fallbacks: srvDelta.Fallbacks,
		WaitSpins: srvDelta.WaitSpins,
	}
	hr := harness.Result{
		System:     sysLabel,
		Threads:    conns,
		Elapsed:    res.Elapsed,
		Stats:      merged,
		Throughput: res.Throughput,
	}
	r := e.record("", hr)
	r.LatencyP50Us = float64(res.Hist.Quantile(0.5)) / float64(time.Microsecond)
	r.LatencyP99Us = float64(res.Hist.Quantile(0.99)) / float64(time.Microsecond)
	if batches := sv1.Batches - sv0.Batches; batches > 0 {
		r.BatchAvgOps = float64(sv1.BatchedOps-sv0.BatchedOps) / float64(batches)
	}
	r.CtrlBatchMax = sv1.BatchMax
	r.CtrlAdmitWaitUs = sv1.AdmitWaitUs
	r.CtrlP99TargetUs = sv1.P99TargetUs
	return r, nil
}

// connScaleVariant configures one half of a rung's pair: controller off
// (fixed aggressive knobs) or on (adaptive against target).
func connScaleVariant(rb *engine.RemoteBackend, ctrlOn bool, target time.Duration) error {
	if ctrlOn {
		// Reset to the moderate defaults the controller adapts from.
		return rb.Ctrl(wire.Ctrl{
			BatchMax:    netBatchDefault,
			AdmitWaitUs: -1,
			P99TargetUs: int(target / time.Microsecond),
		})
	}
	// Stop the controller first so it cannot overwrite the manual knobs.
	if err := rb.Ctrl(wire.Ctrl{P99TargetUs: -1}); err != nil {
		return err
	}
	return rb.Ctrl(wire.Ctrl{
		BatchMax:    connScaleUncontrolledBatch,
		AdmitWaitUs: connScaleUncontrolledGrace,
	})
}

// quiesceServer waits until the server's executors stop consuming ops
// — one rung's backlog must fully drain before the next rung's knobs
// apply and its window opens, or overload at one rung would pollute
// the next measurement.
func quiesceServer(rb *engine.RemoteBackend) error {
	deadline := time.Now().Add(30 * time.Second)
	var prev uint64
	settled := 0
	for {
		st, err := rb.Stats()
		if err != nil {
			return err
		}
		if st.BatchedOps == prev {
			settled++
			if settled >= 2 {
				return nil
			}
		} else {
			settled = 0
			prev = st.BatchedOps
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server still executing a backlog after 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// runConnScaleLadder measures the full ladder against one live server.
// keys is the populated keyspace; note may be nil.
func runConnScaleLadder(e Entry, addr, system string, keys int, sc Scale,
	hook func(results.Record), note func(string, ...any)) error {
	ladder, perConn, target := connScaleParams(sc)
	rb, err := engine.DialRemote(addr, 1)
	if err != nil {
		return err
	}
	defer rb.Close()
	for _, conns := range ladder {
		arrival := loadgen.Arrival{Process: "poisson", Rate: perConn * float64(conns)}
		for _, ctrlOn := range []bool{false, true} {
			if err := quiesceServer(rb); err != nil {
				return fmt.Errorf("net-connscale conns=%d: %w", conns, err)
			}
			if err := connScaleVariant(rb, ctrlOn, target); err != nil {
				return fmt.Errorf("net-connscale conns=%d: %w", conns, err)
			}
			label := system
			if ctrlOn {
				label += "+ctrl"
			}
			r, err := runOpenLoopPoint(e, rb, addr, label, keys, conns, arrival, sc, 0)
			if err != nil {
				return fmt.Errorf("net-connscale %s/conns=%d: %w", label, conns, err)
			}
			hook(r)
			if note != nil {
				note("  net-connscale %s conns=%d: %.0f ops/s p50=%.0fµs p99=%.0fµs batch<=%d wait=%dµs",
					label, conns, r.Throughput, r.LatencyP50Us, r.LatencyP99Us,
					r.CtrlBatchMax, r.CtrlAdmitWaitUs)
			}
		}
	}
	// Leave the server with the controller stopped and moderate knobs.
	if err := rb.Ctrl(wire.Ctrl{P99TargetUs: -1}); err != nil {
		return err
	}
	return rb.Ctrl(wire.Ctrl{BatchMax: netBatchDefault, AdmitWaitUs: -1})
}

// connScaleEntry is the net-connscale registry cell: self-hosts one
// loopback server, then walks the open-loop connection ladder with the
// admission controller off and on at every rung.
func connScaleEntry() Entry {
	e := Entry{
		ID:       "net-connscale",
		Title:    "Open-loop connection scale: CO-safe latency and throughput vs connection count, adaptive admission control vs fixed aggressive knobs",
		Workload: "net",
		Systems:  []string{"si-htm"},
		Params: fmt.Sprintf("ycsb-a over loopback, poisson arrivals per conn, shards=%d, uncontrolled batch=%d grace=%dµs",
			connScaleShards, connScaleUncontrolledBatch, connScaleUncontrolledGrace),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		sc = connScaleWindows(sc.withDefaults())
		y, err := ycsbSpecByID("ycsb-a")
		if err != nil {
			return err
		}
		host, err := startNetHost(y, NetPoint{
			Scenario: "ycsb-a", System: system,
			Threads: connScaleShards, Shards: connScaleShards,
			CtrlInterval: connScaleCtrlInterval(sc),
		}, sc)
		if err != nil {
			return err
		}
		keys := scaledKeys(y.baseKeys, sc, 128)
		if err := runConnScaleLadder(e, host.addr.String(), system, keys, sc, hook, nil); err != nil {
			host.close()
			return err
		}
		// verify drains and re-checks population conservation — the
		// GET/RMW mix must not have created or destroyed keys.
		return host.verify(y, NetPoint{Scenario: "ycsb-a", System: system, Threads: connScaleShards}, sc)
	}
	return e
}

// RunOpenLoop drives a single open-loop point against a live external
// server (the `repro loadgen --conns --arrival` path), leaving the
// server's admission knobs untouched.
func RunOpenLoop(addr string, conns int, arrival loadgen.Arrival, sc Scale, traceEvery int) (results.Record, error) {
	sc = sc.withDefaults()
	fail := func(err error) (results.Record, error) { return results.Record{}, err }
	rb, err := engine.DialRemote(addr, 1)
	if err != nil {
		return fail(err)
	}
	defer rb.Close()
	st, err := rb.Stats()
	if err != nil {
		return fail(err)
	}
	if st.Scenario == "" {
		return fail(fmt.Errorf("experiments: server at %s reports no scenario; is it `repro serve`?", addr))
	}
	y, err := ycsbSpecByID(st.Scenario)
	if err != nil {
		return fail(err)
	}
	buildSc, err := ScaleByName(st.Scale)
	if err != nil {
		return fail(fmt.Errorf("experiments: server build scale: %w", err))
	}
	buildSc = buildSc.withDefaults()
	keys := scaledKeys(y.baseKeys, buildSc, 128)
	label := st.System
	if st.P99TargetUs > 0 {
		label += "+ctrl"
	}
	return runOpenLoopPoint(connScaleEntry(), rb, addr, label, keys, conns, arrival, sc, traceEvery)
}
