// Package experiments is the declarative registry of the paper's
// evaluation (§4, Figures 6–10) plus this reproduction's ablations.
// Every run the repository can perform is one registry Entry — metadata
// (figure, workload, systems, thread ladder, parameters) enumerable
// without running anything, plus a cell runner that measures one
// (entry × system) column and emits typed results.Record values. The
// repro CLI (cmd/repro), the classic benchmark binary (cmd/sihtm-bench)
// and the testing.B harness (bench_test.go) are all thin views over
// this one registry, so they regenerate exactly the same runs.
package experiments

import (
	"fmt"
	"time"

	"sihtm/internal/harness"
	"sihtm/internal/htm"
	"sihtm/internal/htmtm"
	"sihtm/internal/memsim"
	"sihtm/internal/p8tm"
	"sihtm/internal/results"
	"sihtm/internal/sgl"
	"sihtm/internal/sihtm"
	"sihtm/internal/silo"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
	"sihtm/internal/workload/hashmap"
	"sihtm/internal/workload/tpcc"
)

// Scale shrinks an experiment for quick runs: the zero value is the
// paper's shape (10-core ladder to 80 threads, full workload sizes);
// larger values shrink workload sizes and the thread ladder for
// CI-friendly runs. Named presets live in ScaleByName.
type Scale struct {
	// MaxThreads caps the thread ladder (0 = no cap).
	MaxThreads int
	// WorkloadDiv divides workload sizes (hash-map population, TPC-C
	// warehouse cap). 0 = 1.
	WorkloadDiv int
	// Warmup and Measure override the run windows if non-zero.
	Warmup, Measure time.Duration
}

func (s Scale) withDefaults() Scale {
	if s.WorkloadDiv == 0 {
		s.WorkloadDiv = 1
	}
	if s.Warmup == 0 {
		s.Warmup = 150 * time.Millisecond
	}
	if s.Measure == 0 {
		s.Measure = 600 * time.Millisecond
	}
	return s
}

func (s Scale) threads(ladder []int) []int {
	if s.MaxThreads <= 0 {
		return ladder
	}
	var out []int
	for _, n := range ladder {
		if n <= s.MaxThreads {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{s.MaxThreads}
	}
	return out
}

// machine builds the paper's 10-core SMT-8 machine over a fresh heap.
func machine(heapLines int) (*memsim.Heap, *htm.Machine) {
	heap := memsim.NewHeapLines(heapLines)
	m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
	return heap, m
}

// NewSystem builds a named system over the given machine/heap — the one
// benchmark-name → constructor mapping shared by every binary and test
// in the repository.
func NewSystem(name string, m *htm.Machine, heap *memsim.Heap, threads int) (tm.System, error) {
	switch name {
	case "htm":
		return htmtm.NewSystem(m, threads, htmtm.Config{}), nil
	case "si-htm":
		return sihtm.NewSystem(m, threads, sihtm.Config{}), nil
	case "si-htm-noro":
		return sihtm.NewSystem(m, threads, sihtm.Config{DisableROFastPath: true}), nil
	case "si-htm-killer":
		return sihtm.NewSystem(m, threads, sihtm.Config{KillerSpins: 1 << 12}), nil
	case "p8tm":
		return p8tm.NewSystem(m, threads, p8tm.Config{}), nil
	case "silo":
		return silo.NewSystem(heap, threads), nil
	case "sgl":
		return sgl.NewSystem(m, threads), nil
	default:
		return nil, fmt.Errorf("experiments: unknown system %q", name)
	}
}

// SystemNames lists the benchmark names NewSystem accepts.
func SystemNames() []string {
	return []string{"htm", "si-htm", "si-htm-noro", "si-htm-killer", "p8tm", "silo", "sgl"}
}

// HashmapSweep builds the sweep for one hash-map figure panel.
//
// The paper's parameters: large footprint = 200 elements/bucket, short =
// 50; low contention = 1000 buckets, high = 10; read-only share 90% or
// 50%; systems HTM vs SI-HTM; thread ladder 1..80 on 10 cores.
func HashmapSweep(id, title string, buckets, elemsPerBucket, roPercent int, systems []string, sc Scale) *harness.Sweep {
	sc = sc.withDefaults()
	b := buckets
	e := elemsPerBucket / sc.WorkloadDiv
	if e < 2 {
		e = 2
	}
	return &harness.Sweep{
		ID:           id,
		Title:        title,
		Systems:      systems,
		ThreadCounts: sc.threads(topology.PaperThreadLadder),
		Warmup:       sc.Warmup,
		Measure:      sc.Measure,
		Setup: func(system string, threads int) (tm.System, func(int) func(), func() error, error) {
			cfg := hashmap.BenchConfig{
				Buckets:           b,
				ElementsPerBucket: e,
				ReadOnlyPercent:   roPercent,
				Seed:              uint64(threads)*31 + 7,
			}
			heap, m := machine(cfg.HeapLinesNeeded() + (1 << 14))
			bench, err := hashmap.NewBenchmark(heap, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			sys, err := NewSystem(system, m, heap, threads)
			if err != nil {
				return nil, nil, nil, err
			}
			mkWorker := func(thread int) func() {
				w := bench.NewWorker(sys, thread)
				return w.Op
			}
			initial := bench.Map.Size()
			check := func() error {
				size := bench.Map.Size()
				if size < initial-2*threads || size > initial+2*threads {
					return fmt.Errorf("hash-map size drifted %d → %d", initial, size)
				}
				return nil
			}
			return sys, mkWorker, check, nil
		},
	}
}

// TPCCSweep builds the sweep for one TPC-C figure panel.
//
// lowContention selects the warehouse count: the paper's low-contention
// runs give threads their own warehouses (capped), the high-contention
// runs share a single warehouse.
func TPCCSweep(id, title string, mix tpcc.Mix, lowContention bool, systems []string, sc Scale) *harness.Sweep {
	sc = sc.withDefaults()
	return &harness.Sweep{
		ID:           id,
		Title:        title,
		Systems:      systems,
		ThreadCounts: sc.threads(topology.PaperThreadLadder),
		Warmup:       sc.Warmup,
		Measure:      sc.Measure,
		Setup: func(system string, threads int) (tm.System, func(int) func(), func() error, error) {
			warehouses := 1
			if lowContention {
				warehouses = threads
				if warehouses > 16/sc.WorkloadDiv {
					warehouses = 16 / sc.WorkloadDiv
				}
				if warehouses < 1 {
					warehouses = 1
				}
			}
			cfg := tpcc.Config{
				Warehouses: warehouses,
				ScaleDiv:   10 * sc.WorkloadDiv,
				Seed:       uint64(threads)*17 + 3,
			}
			heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
			m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
			db, err := tpcc.NewDB(heap, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			sys, err := NewSystem(system, m, heap, threads)
			if err != nil {
				return nil, nil, nil, err
			}
			mkWorker := func(thread int) func() {
				w, err := db.NewWorker(sys, thread, mix)
				if err != nil {
					panic(err)
				}
				return func() { w.Op() }
			}
			return sys, mkWorker, db.CheckConsistency, nil
		},
	}
}

// hashmap figure parameters (paper §4.1).
const (
	largeChain  = 200
	shortChain  = 50
	lowBuckets  = 1000
	highBuckets = 10
	roHeavy     = 90
	roBalanced  = 50
)

// htmVsSIHTM are the systems in the hash-map figures.
var htmVsSIHTM = []string{"htm", "si-htm"}

// tpccSystems are the systems in the TPC-C figures (paper order).
var tpccSystems = []string{"htm", "si-htm", "p8tm", "silo"}

// figureSpec declares one figure panel: everything the registry needs to
// describe it and to build its sweep at any scale.
type figureSpec struct {
	id     string
	figure int
	panel  string
	title  string

	// hash-map panels (workload "hashmap"):
	buckets, chain, roPct int
	// TPC-C panels (workload "tpcc"):
	mix           tpcc.Mix
	lowContention bool
	isTPCC        bool
}

func (f figureSpec) workload() string {
	if f.isTPCC {
		return "tpcc"
	}
	return "hashmap"
}

func (f figureSpec) systems() []string {
	if f.isTPCC {
		return tpccSystems
	}
	return htmVsSIHTM
}

func (f figureSpec) params() string {
	if f.isTPCC {
		contention := "high (1 warehouse)"
		if f.lowContention {
			contention = "low (warehouse/thread)"
		}
		mixName := "standard"
		if f.mix == tpcc.ReadDominatedMix {
			mixName = "read-dominated"
		}
		return fmt.Sprintf("mix=%s contention=%s", mixName, contention)
	}
	return fmt.Sprintf("buckets=%d chain=%d ro=%d%%", f.buckets, f.chain, f.roPct)
}

func (f figureSpec) sweep(sc Scale) *harness.Sweep {
	if f.isTPCC {
		return TPCCSweep(f.id, f.title, f.mix, f.lowContention, f.systems(), sc)
	}
	return HashmapSweep(f.id, f.title, f.buckets, f.chain, f.roPct, f.systems(), sc)
}

// figureSpecs is the declarative table behind Figures 6–10 (two
// contention panels each).
var figureSpecs = []figureSpec{
	{id: "fig6-low", figure: 6, panel: "low",
		title:   "Figure 6 (left): hash-map, 90% large read-only txs, low contention",
		buckets: lowBuckets, chain: largeChain, roPct: roHeavy},
	{id: "fig6-high", figure: 6, panel: "high",
		title:   "Figure 6 (right): hash-map, 90% large read-only txs, high contention",
		buckets: highBuckets, chain: largeChain, roPct: roHeavy},
	{id: "fig7-low", figure: 7, panel: "low",
		title:   "Figure 7 (left): hash-map, 50% large read-only txs, low contention",
		buckets: lowBuckets, chain: largeChain, roPct: roBalanced},
	{id: "fig7-high", figure: 7, panel: "high",
		title:   "Figure 7 (right): hash-map, 50% large read-only txs, high contention",
		buckets: highBuckets, chain: largeChain, roPct: roBalanced},
	{id: "fig8-low", figure: 8, panel: "low",
		title:   "Figure 8 (left): hash-map, 90% small txs, low contention",
		buckets: lowBuckets, chain: shortChain, roPct: roHeavy},
	{id: "fig8-high", figure: 8, panel: "high",
		title:   "Figure 8 (right): hash-map, 90% small txs, high contention",
		buckets: highBuckets, chain: shortChain, roPct: roHeavy},
	{id: "fig9-low", figure: 9, panel: "low",
		title:  "Figure 9 (left): TPC-C standard mix, low contention",
		isTPCC: true, mix: tpcc.StandardMix, lowContention: true},
	{id: "fig9-high", figure: 9, panel: "high",
		title:  "Figure 9 (right): TPC-C standard mix, high contention",
		isTPCC: true, mix: tpcc.StandardMix},
	{id: "fig10-low", figure: 10, panel: "low",
		title:  "Figure 10 (left): TPC-C read-dominated mix, low contention",
		isTPCC: true, mix: tpcc.ReadDominatedMix, lowContention: true},
	{id: "fig10-high", figure: 10, panel: "high",
		title:  "Figure 10 (right): TPC-C read-dominated mix, high contention",
		isTPCC: true, mix: tpcc.ReadDominatedMix},
}

// FigureOrder lists figure ids in presentation order.
var FigureOrder = func() []string {
	ids := make([]string, len(figureSpecs))
	for i, f := range figureSpecs {
		ids[i] = f.id
	}
	return ids
}()

// figureEntry builds the registry entry for one figure panel.
func figureEntry(id string) Entry {
	var spec figureSpec
	for _, f := range figureSpecs {
		if f.id == id {
			spec = f
			break
		}
	}
	if spec.id == "" {
		panic("experiments: unknown figure id " + id)
	}
	e := Entry{
		ID:           spec.id,
		Figure:       spec.figure,
		Panel:        spec.panel,
		Title:        spec.title,
		Workload:     spec.workload(),
		Systems:      spec.systems(),
		ThreadLadder: topology.PaperThreadLadder,
		Params:       spec.params(),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		_, err := spec.sweep(sc).ExecuteSystem(system, func(_ string, hr harness.Result) {
			hook(e.record("", hr))
		})
		return err
	}
	return e
}

// SweepFor returns the harness sweep behind a sweep-backed registry
// entry (the figure panels, the sweep-shaped ablations and the
// thread-ladder scenarios) at the given scale — the hook bench_test.go
// uses to drive the same Setup through testing.B's op-count harness.
// Returns false for entries that are not sweeps (capacity, tmcam, smt,
// zipf).
func SweepFor(id string, sc Scale) (*harness.Sweep, bool) {
	for _, f := range figureSpecs {
		if f.id == id {
			return f.sweep(sc), true
		}
	}
	if build, ok := sweepAblations[id]; ok {
		return build(sc), true
	}
	if build, ok := scenarioSweeps[id]; ok {
		return build(sc), true
	}
	return nil, false
}
