// Package experiments defines, as data, every experiment of the paper's
// evaluation (§4, Figures 6–10) plus this reproduction's ablations, so
// that the benchmark binary (cmd/sihtm-bench) and the testing.B harness
// (bench_test.go) regenerate exactly the same runs.
package experiments

import (
	"fmt"
	"time"

	"sihtm/internal/harness"
	"sihtm/internal/htm"
	"sihtm/internal/htmtm"
	"sihtm/internal/memsim"
	"sihtm/internal/p8tm"
	"sihtm/internal/sgl"
	"sihtm/internal/sihtm"
	"sihtm/internal/silo"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
	"sihtm/internal/workload/hashmap"
	"sihtm/internal/workload/tpcc"
)

// Scale shrinks an experiment for quick runs: 1 = the paper's shape
// (10-core ladder to 80 threads, full workload sizes); larger values
// shrink workload sizes and the thread ladder for CI-friendly runs.
type Scale struct {
	// MaxThreads caps the thread ladder (0 = no cap).
	MaxThreads int
	// WorkloadDiv divides workload sizes (hash-map population, TPC-C
	// warehouse cap). 0 = 1.
	WorkloadDiv int
	// Warmup and Measure override the run windows if non-zero.
	Warmup, Measure time.Duration
}

func (s Scale) withDefaults() Scale {
	if s.WorkloadDiv == 0 {
		s.WorkloadDiv = 1
	}
	if s.Warmup == 0 {
		s.Warmup = 150 * time.Millisecond
	}
	if s.Measure == 0 {
		s.Measure = 600 * time.Millisecond
	}
	return s
}

func (s Scale) threads(ladder []int) []int {
	if s.MaxThreads <= 0 {
		return ladder
	}
	var out []int
	for _, n := range ladder {
		if n <= s.MaxThreads {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{s.MaxThreads}
	}
	return out
}

// machine builds the paper's 10-core SMT-8 machine over a fresh heap.
func machine(heapLines int) (*memsim.Heap, *htm.Machine) {
	heap := memsim.NewHeapLines(heapLines)
	m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
	return heap, m
}

// newSystem builds a named system over the given machine/heap.
func newSystem(name string, m *htm.Machine, heap *memsim.Heap, threads int) (tm.System, error) {
	switch name {
	case "htm":
		return htmtm.NewSystem(m, threads, htmtm.Config{}), nil
	case "si-htm":
		return sihtm.NewSystem(m, threads, sihtm.Config{}), nil
	case "si-htm-noro":
		return sihtm.NewSystem(m, threads, sihtm.Config{DisableROFastPath: true}), nil
	case "si-htm-killer":
		return sihtm.NewSystem(m, threads, sihtm.Config{KillerSpins: 1 << 12}), nil
	case "p8tm":
		return p8tm.NewSystem(m, threads, p8tm.Config{}), nil
	case "silo":
		return silo.NewSystem(heap, threads), nil
	case "sgl":
		return sgl.NewSystem(m, threads), nil
	default:
		return nil, fmt.Errorf("experiments: unknown system %q", name)
	}
}

// HashmapSweep builds the sweep for one hash-map figure panel.
//
// The paper's parameters: large footprint = 200 elements/bucket, short =
// 50; low contention = 1000 buckets, high = 10; read-only share 90% or
// 50%; systems HTM vs SI-HTM; thread ladder 1..80 on 10 cores.
func HashmapSweep(id, title string, buckets, elemsPerBucket, roPercent int, systems []string, sc Scale) *harness.Sweep {
	sc = sc.withDefaults()
	b := buckets
	e := elemsPerBucket / sc.WorkloadDiv
	if e < 2 {
		e = 2
	}
	return &harness.Sweep{
		ID:           id,
		Title:        title,
		Systems:      systems,
		ThreadCounts: sc.threads(topology.PaperThreadLadder),
		Warmup:       sc.Warmup,
		Measure:      sc.Measure,
		Setup: func(system string, threads int) (tm.System, func(int) func(), func() error, error) {
			cfg := hashmap.BenchConfig{
				Buckets:           b,
				ElementsPerBucket: e,
				ReadOnlyPercent:   roPercent,
				Seed:              uint64(threads)*31 + 7,
			}
			heap, m := machine(cfg.HeapLinesNeeded() + (1 << 14))
			bench, err := hashmap.NewBenchmark(heap, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			sys, err := newSystem(system, m, heap, threads)
			if err != nil {
				return nil, nil, nil, err
			}
			mkWorker := func(thread int) func() {
				w := bench.NewWorker(sys, thread, uint64(1000*threads+thread))
				return w.Op
			}
			initial := bench.Map.Size()
			check := func() error {
				size := bench.Map.Size()
				if size < initial-2*threads || size > initial+2*threads {
					return fmt.Errorf("hash-map size drifted %d → %d", initial, size)
				}
				return nil
			}
			return sys, mkWorker, check, nil
		},
	}
}

// TPCCSweep builds the sweep for one TPC-C figure panel.
//
// lowContention selects the warehouse count: the paper's low-contention
// runs give threads their own warehouses (capped), the high-contention
// runs share a single warehouse.
func TPCCSweep(id, title string, mix tpcc.Mix, lowContention bool, systems []string, sc Scale) *harness.Sweep {
	sc = sc.withDefaults()
	return &harness.Sweep{
		ID:           id,
		Title:        title,
		Systems:      systems,
		ThreadCounts: sc.threads(topology.PaperThreadLadder),
		Warmup:       sc.Warmup,
		Measure:      sc.Measure,
		Setup: func(system string, threads int) (tm.System, func(int) func(), func() error, error) {
			warehouses := 1
			if lowContention {
				warehouses = threads
				if warehouses > 16/sc.WorkloadDiv {
					warehouses = 16 / sc.WorkloadDiv
				}
				if warehouses < 1 {
					warehouses = 1
				}
			}
			cfg := tpcc.Config{
				Warehouses: warehouses,
				ScaleDiv:   10 * sc.WorkloadDiv,
				Seed:       uint64(threads)*17 + 3,
			}
			heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
			m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
			db, err := tpcc.NewDB(heap, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			sys, err := newSystem(system, m, heap, threads)
			if err != nil {
				return nil, nil, nil, err
			}
			mkWorker := func(thread int) func() {
				w, err := db.NewWorker(sys, thread, mix, uint64(100*threads+thread))
				if err != nil {
					panic(err)
				}
				return func() { w.Op() }
			}
			return sys, mkWorker, db.CheckConsistency, nil
		},
	}
}

// hashmap figure parameters (paper §4.1).
const (
	largeChain  = 200
	shortChain  = 50
	lowBuckets  = 1000
	highBuckets = 10
	roHeavy     = 90
	roBalanced  = 50
)

// htmVsSIHTM are the systems in the hash-map figures.
var htmVsSIHTM = []string{"htm", "si-htm"}

// tpccSystems are the systems in the TPC-C figures (paper order).
var tpccSystems = []string{"htm", "si-htm", "p8tm", "silo"}

// Figures returns the sweeps reproducing the paper's Figures 6–10, two
// panels (low/high contention) each.
func Figures(sc Scale) map[string]*harness.Sweep {
	return map[string]*harness.Sweep{
		"fig6-low": HashmapSweep("fig6-low",
			"Figure 6 (left): hash-map, 90% large read-only txs, low contention",
			lowBuckets, largeChain, roHeavy, htmVsSIHTM, sc),
		"fig6-high": HashmapSweep("fig6-high",
			"Figure 6 (right): hash-map, 90% large read-only txs, high contention",
			highBuckets, largeChain, roHeavy, htmVsSIHTM, sc),
		"fig7-low": HashmapSweep("fig7-low",
			"Figure 7 (left): hash-map, 50% large read-only txs, low contention",
			lowBuckets, largeChain, roBalanced, htmVsSIHTM, sc),
		"fig7-high": HashmapSweep("fig7-high",
			"Figure 7 (right): hash-map, 50% large read-only txs, high contention",
			highBuckets, largeChain, roBalanced, htmVsSIHTM, sc),
		"fig8-low": HashmapSweep("fig8-low",
			"Figure 8 (left): hash-map, 90% small txs, low contention",
			lowBuckets, shortChain, roHeavy, htmVsSIHTM, sc),
		"fig8-high": HashmapSweep("fig8-high",
			"Figure 8 (right): hash-map, 90% small txs, high contention",
			highBuckets, shortChain, roHeavy, htmVsSIHTM, sc),
		"fig9-low": TPCCSweep("fig9-low",
			"Figure 9 (left): TPC-C standard mix, low contention",
			tpcc.StandardMix, true, tpccSystems, sc),
		"fig9-high": TPCCSweep("fig9-high",
			"Figure 9 (right): TPC-C standard mix, high contention",
			tpcc.StandardMix, false, tpccSystems, sc),
		"fig10-low": TPCCSweep("fig10-low",
			"Figure 10 (left): TPC-C read-dominated mix, low contention",
			tpcc.ReadDominatedMix, true, tpccSystems, sc),
		"fig10-high": TPCCSweep("fig10-high",
			"Figure 10 (right): TPC-C read-dominated mix, high contention",
			tpcc.ReadDominatedMix, false, tpccSystems, sc),
	}
}

// FigureOrder lists figure ids in presentation order.
var FigureOrder = []string{
	"fig6-low", "fig6-high",
	"fig7-low", "fig7-high",
	"fig8-low", "fig8-high",
	"fig9-low", "fig9-high",
	"fig10-low", "fig10-high",
}
