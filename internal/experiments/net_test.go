package experiments

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"sihtm/internal/results"
)

// TestServeLoadgenRecoverPipeline is the in-process version of the CI
// server-smoke job: start a durable `repro serve` instance, drive every
// net entry against it with the loadgen path, shut the server down
// gracefully (final checkpoint), and crash-replay the run directory
// through the existing recovery pipeline.
func TestServeLoadgenRecoverPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("serves and measures over loopback; a few seconds")
	}
	dir := t.TempDir()
	ns, err := StartNetServer(ServeConfig{
		Addr:       "127.0.0.1:0",
		Scenario:   "ycsb-a",
		System:     "si-htm",
		ScaleName:  "ci",
		Shards:     4,
		BatchMax:   netBatchDefault,
		DurableDir: dir,
		Window:     500 * time.Microsecond,
		CkptEvery:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- ns.Srv.Serve() }()

	sc := quickScale()
	var recs []results.Record
	err = RunLoadgen(ns.Addr.String(), NetEntryIDs(), sc, func(r results.Record) {
		recs = append(recs, r)
	}, nil)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	byID := map[string]int{}
	for _, r := range recs {
		byID[r.Experiment]++
		if r.System != "si-htm" && r.System != "si-htm+ctrl" {
			t.Errorf("record %s labeled system %q, want the server's si-htm (or +ctrl variant)", r.Experiment, r.System)
		}
		if r.Commits == 0 {
			t.Errorf("record %s/%s/%d committed nothing", r.Experiment, r.Param, r.Threads)
		}
		if r.LatencyP99Us <= 0 || r.LatencyP50Us > r.LatencyP99Us {
			t.Errorf("record %s/%s/%d has malformed latency p50=%.1f p99=%.1f",
				r.Experiment, r.Param, r.Threads, r.LatencyP50Us, r.LatencyP99Us)
		}
	}
	for _, id := range NetEntryIDs() {
		if byID[id] == 0 {
			t.Errorf("loadgen produced no %s records", id)
		}
	}
	if byID["net-batch-window"] != len(netBatches) {
		t.Errorf("batch sweep produced %d records, want %d", byID["net-batch-window"], len(netBatches))
	}

	// Graceful shutdown: drain, final checkpoint, store close; Serve
	// returns nil.
	if err := ns.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	for _, f := range []string{"meta.json", "wal.log", "heap.ckpt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("run directory missing %s: %v", f, err)
		}
	}

	// The run directory replays through the crash-recovery pipeline.
	rep, err := RecoverDurable(dir)
	if err != nil {
		t.Fatalf("recover: %v (detail: %s)", err, rep.Detail)
	}
	if !rep.InvariantsOK {
		t.Fatalf("recovered state failed invariants: %+v", rep)
	}
	if !rep.CheckpointUsed {
		t.Error("drain-time checkpoint not used by recovery")
	}
}

// TestLoadgenRejectsNonDurableServer: the durable net entry must demand
// a durable server instead of silently measuring a volatile one.
func TestLoadgenRejectsNonDurableServer(t *testing.T) {
	ns, err := StartNetServer(ServeConfig{
		Addr: "127.0.0.1:0", Scenario: "ycsb-a", System: "si-htm",
		ScaleName: "ci", Shards: 2, BatchMax: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	go ns.Srv.Serve()
	defer ns.Shutdown()
	err = RunLoadgen(ns.Addr.String(), []string{"net-durable-ycsb-a"}, quickScale(), func(results.Record) {}, nil)
	if err == nil {
		t.Fatal("loadgen measured net-durable-ycsb-a against a volatile server")
	}
}
