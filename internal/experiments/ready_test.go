package experiments

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"sihtm/internal/telemetry"
)

// fakeFollower drives readyProbe's follower slice without a replica.
type fakeFollower struct {
	promoted atomic.Bool
	wm       atomic.Uint64
	leader   atomic.Uint64
}

func (f *fakeFollower) Promoted() bool    { return f.promoted.Load() }
func (f *fakeFollower) Watermark() uint64 { return f.wm.Load() }
func (f *fakeFollower) LeaderSeq() uint64 { return f.leader.Load() }

// TestReadyProbeFollowerStall drives the /readyz callback through the
// follower lifecycle the inline closure used to carry untested: behind
// and advancing is ready, the same watermark twice behind a live leader
// is a 503 stall, progress restores readiness, and catching up fully
// stays ready even with a flat watermark.
func TestReadyProbeFollowerStall(t *testing.T) {
	var draining atomic.Bool
	fol := &fakeFollower{}
	reg := telemetry.NewRegistry()
	h := telemetry.NewHandler(reg, readyProbe(draining.Load, fol))
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Fresh follower, nothing streamed yet: watermark == leader == 0.
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("fresh follower: status %d want 200", code)
	}
	// Behind but advancing: first observation of a higher watermark
	// counts as progress.
	fol.leader.Store(10)
	fol.wm.Store(5)
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("advancing follower: status %d want 200", code)
	}
	// Same watermark again, still behind the leader: stalled → 503.
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("stalled follower: status %d want 503", code)
	}
	if !strings.Contains(body, "replication stalled") || !strings.Contains(body, "watermark 5") {
		t.Fatalf("stall body = %q", body)
	}
	// Progress resumes: ready again.
	fol.wm.Store(7)
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("resumed follower: status %d want 200", code)
	}
	// Fully caught up: a flat watermark at the leader's frontier is
	// idle, not stalled.
	fol.wm.Store(10)
	get() // observe the advance
	for i := 0; i < 3; i++ {
		if code, _ := get(); code != http.StatusOK {
			t.Fatalf("caught-up follower: status %d want 200", code)
		}
	}
	// Promotion short-circuits the follower check entirely.
	fol.leader.Store(20)
	fol.promoted.Store(true)
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("promoted follower: status %d want 200", code)
	}
	// Draining trumps everything.
	draining.Store(true)
	code, body = get()
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining: status %d body %q", code, body)
	}
}
