package experiments

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sihtm/internal/harness"
	"sihtm/internal/memsim"
	"sihtm/internal/netchaos"
	"sihtm/internal/replica"
	"sihtm/internal/results"
	"sihtm/internal/server"
	"sihtm/internal/workload/engine"
	"sihtm/internal/workload/ycsb"
)

// The repl scenario entries measure the replicated cluster: a durable
// leader streaming its WAL to snapshot read replicas, and the failover
// path that promotes a replica after the leader dies. Both entries run
// the whole cluster in-process over loopback so `repro run` covers the
// layer hermetically; the CI failover-smoke job exercises the same
// protocol across real processes with a real SIGKILL.
//
//   - repl-ycsb-c: a write stream holds the leader at its YCSB-A mix
//     while a read-only YCSB-C-shaped client population drives the
//     followers' replayed snapshots through the routing ReplicaBackend.
//     Read throughput is measured against the follower count; the
//     leader's server-side p50/p99 rides along so replica fan-out can
//     be checked against net-ycsb-a for write-path interference.
//   - repl-failover: followers stream through seeded chaos dialers
//     (cuts, torn frames, partition windows) so they trail the leader;
//     the leader is then abandoned mid-history and a follower is
//     promoted over the wire. The promotion must catch up from the
//     leader's on-disk log to at least the durable frontier at the
//     kill point — zero acknowledged loss — with the promoted heap
//     digest-identical to the leader's, after which the promoted node
//     must admit writes.

// replReadThreads is the read-side client population of repl-ycsb-c,
// and replWriteThreads the concurrent write stream held at the leader
// (both capped by the scale).
const (
	replReadThreads  = 8
	replWriteThreads = 2
)

// replFollowerLadder is the x-axis of repl-ycsb-c: the replica count.
var replFollowerLadder = []int{1, 2, 3}

// replReadTimeout is the followers' stream-liveness bound: any read
// quieter than this (the leader heartbeats far more often) is treated
// as a dead leader and triggers reconnect-and-resume.
const replReadTimeout = 250 * time.Millisecond

// replNode is one follower: its own deterministic build of the
// scenario, the replica applier feeding its heap, and the read-only
// server fronting it.
type replNode struct {
	fol     *replica.Follower
	srv     *server.Server
	addr    net.Addr
	heap    *memsim.Heap
	backend engine.Backend
	chaos   *netchaos.Dialer
	served  chan error
}

// replCluster is the in-process cluster: a durable leader plus
// followers replaying its WAL stream, each node a full wire server.
type replCluster struct {
	y       ycsbSpec
	keys    int
	cell    *durableCell
	heap    *memsim.Heap
	backend engine.Backend
	srv     *server.Server
	addr    net.Addr
	served  chan error
	nodes   []*replNode
}

// startReplCluster builds the leader (durable, so it is a replication
// leader by construction) and followers many replica nodes. Every node
// runs the identical deterministic build, so the followers' heaps start
// from the same post-population base image the leader's log was opened
// on — the contract stream replay (and crash recovery) relies on.
// chaos, when non-nil, seeds a fault-injecting dialer per follower.
func startReplCluster(y ycsbSpec, system string, sc Scale, threads, followers int, chaos *netchaos.Config) (*replCluster, error) {
	m, backend, d, err := y.build(sc, threads)
	if err != nil {
		return nil, err
	}
	heap := m.Heap()
	sys, err := NewSystem(system, m, heap, threads)
	if err != nil {
		return nil, err
	}
	cell, err := openDurableCell(heap, m, durableWindowDefault)
	if err != nil {
		return nil, err
	}
	c := &replCluster{
		y: y, keys: d.Spec().Keys, cell: cell,
		heap: heap, backend: backend, served: make(chan error, 1),
	}
	fail := func(err error) (*replCluster, error) {
		c.close()
		return nil, err
	}
	c.srv, err = server.New(server.Config{
		Backend:  engine.NewDurableBackend(backend, cell.store),
		System:   cell.store.Attach(sys, m),
		Store:    cell.store,
		Shards:   threads,
		BatchMax: netBatchDefault,
		Scenario: y.id,
	})
	if err != nil {
		return fail(err)
	}
	if c.addr, err = c.srv.Listen("127.0.0.1:0"); err != nil {
		return fail(err)
	}
	go func() { c.served <- c.srv.Serve() }()

	leaderAddr := c.addr.String()
	for i := 0; i < followers; i++ {
		fm, fbackend, _, err := y.build(sc, threads)
		if err != nil {
			return fail(err)
		}
		fheap := fm.Heap()
		n := &replNode{heap: fheap, backend: fbackend, served: make(chan error, 1)}
		dial := func() (net.Conn, error) { return net.Dial("tcp", leaderAddr) }
		if chaos != nil {
			cfg := *chaos
			cfg.Seed += uint64(i) * 7919 // distinct schedule per follower
			n.chaos = netchaos.NewDialer(leaderAddr, cfg)
			dial = n.chaos.Dial
		}
		n.fol, err = replica.NewFollower(replica.FollowerConfig{
			Heap:        fheap,
			Dial:        dial,
			ReadTimeout: replReadTimeout,
		})
		if err != nil {
			return fail(err)
		}
		fsys, err := NewSystem(system, fm, fheap, threads)
		if err != nil {
			return fail(err)
		}
		n.srv, err = server.New(server.Config{
			Backend:       fbackend,
			System:        fsys,
			Shards:        threads,
			BatchMax:      netBatchDefault,
			Scenario:      y.id,
			Follower:      n.fol,
			LeaderLogPath: cell.logPath(),
		})
		if err != nil {
			return fail(err)
		}
		if n.addr, err = n.srv.Listen("127.0.0.1:0"); err != nil {
			return fail(err)
		}
		go func(n *replNode) { n.served <- n.srv.Serve() }(n)
		n.fol.Start()
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// followerAddrs lists the follower listen addresses.
func (c *replCluster) followerAddrs() []string {
	addrs := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		addrs[i] = n.addr.String()
	}
	return addrs
}

// close tears the cluster down, followers first (their streams end when
// the leader drains anyway, but this keeps shutdown orderly).
func (c *replCluster) close() {
	for _, n := range c.nodes {
		if n.srv != nil {
			n.srv.Drain()
		}
		if n.fol != nil {
			n.fol.Close()
		}
	}
	if c.srv != nil {
		c.srv.Drain()
	}
	if c.cell != nil {
		c.cell.close()
	}
}

// runWorkers drives mk-built workers until stop is requested, returning
// the stopper (which quiesces before returning — required before any
// connection teardown, since the session protocol panics on transport
// failure).
func runWorkers(threads int, mk func(int) func()) (stop func()) {
	var halt atomic.Bool
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			op := mk(id)
			for !halt.Load() {
				op()
			}
		}(id)
	}
	return func() { halt.Store(true); wg.Wait() }
}

// replVerify checks the cluster after a point: every follower caught up
// to the leader's durable frontier must hold a word-identical heap and
// pass the workload's structural/population invariants. Followers are
// stopped first so the comparison does not race the applier; callers
// run this at the end of a point.
func (c *replCluster) replVerify(rb *engine.ReplicaBackend) error {
	if err := rb.WaitCatchup(10 * time.Second); err != nil {
		return err
	}
	if err := rb.Check(); err != nil {
		return err
	}
	for i, n := range c.nodes {
		n.fol.Stop()
		if err := compareHeaps(c.heap, n.heap); err != nil {
			return fmt.Errorf("follower %d diverged: %w", i, err)
		}
		if err := engineCheck(n.backend, c.keys); err != nil {
			return fmt.Errorf("follower %d: %w", i, err)
		}
	}
	return engineCheck(c.backend, c.keys)
}

// runReplReadPoint measures one (system × follower count) cell of
// repl-ycsb-c: read throughput over the replicas while a write stream
// holds the leader, plus the leader's service-latency percentiles.
func runReplReadPoint(system string, sc Scale, followers int) (harness.Result, NetExtras, error) {
	sc = sc.withDefaults()
	fail := func(err error) (harness.Result, NetExtras, error) { return harness.Result{}, NetExtras{}, err }
	y, err := ycsbSpecByID("ycsb-a")
	if err != nil {
		return fail(err)
	}
	readers := replReadThreads
	writers := replWriteThreads
	if sc.MaxThreads > 0 {
		if readers > sc.MaxThreads {
			readers = sc.MaxThreads
		}
		if writers > sc.MaxThreads {
			writers = sc.MaxThreads
		}
	}
	c, err := startReplCluster(y, system, sc, readers, followers, nil)
	if err != nil {
		return fail(err)
	}
	defer c.close()

	// Write stream: the leader's own YCSB-A mix over a plain remote
	// backend (acks ride group-commit fsyncs, records stream out).
	wb, err := engine.DialRemote(c.addr.String(), (writers+1)/2)
	if err != nil {
		return fail(err)
	}
	defer wb.Close()
	wspec, err := netSpec(y, sc, readers)
	if err != nil {
		return fail(err)
	}
	wd, err := engine.New(wspec, wb)
	if err != nil {
		return fail(err)
	}
	wsys := engine.NewRemoteSystem(system, writers)

	// Read population: a read-only YCSB-C-shaped mix over the same
	// keyspace, routed to the followers by the replica backend (stale
	// snapshot reads: SyncReads off).
	rspec, err := ycsb.Spec(ycsb.Config{
		Workload: ycsb.C,
		Keys:     c.keys,
		OpsPerTx: y.opsPerTx,
		Seed:     uint64(readers)*19 + 5,
	})
	if err != nil {
		return fail(err)
	}
	rb, err := engine.DialReplica(c.addr.String(), c.followerAddrs(), (readers+1)/2)
	if err != nil {
		return fail(err)
	}
	defer rb.Close()
	rd, err := engine.New(rspec, rb)
	if err != nil {
		return fail(err)
	}
	rsys := engine.NewRemoteSystem(system, readers)

	stopW := runWorkers(writers, wd.Workers(wsys))
	stopR := runWorkers(readers, rd.Workers(rsys))
	stopAll := func() { stopR(); stopW() }
	time.Sleep(sc.Warmup)
	sv0, err := wb.Stats()
	if err != nil {
		stopAll()
		return fail(err)
	}
	r0 := rsys.Collector().Snapshot()
	start := time.Now()
	time.Sleep(sc.Measure)
	sv1, err := wb.Stats()
	elapsed := time.Since(start)
	r1 := rsys.Collector().Snapshot()
	stopAll()
	if err != nil {
		return fail(err)
	}

	reads := r1.Sub(r0)
	hr := harness.Result{
		System:     system,
		Threads:    readers,
		Elapsed:    elapsed,
		Stats:      reads,
		Throughput: float64(reads.Commits) / elapsed.Seconds(),
	}
	hist := sv1.Hist.Sub(sv0.Hist)
	ex := NetExtras{P50: hist.Quantile(0.5), P99: hist.Quantile(0.99)}
	if batches := sv1.Batches - sv0.Batches; batches > 0 {
		ex.BatchAvg = float64(sv1.BatchedOps-sv0.BatchedOps) / float64(batches)
	}
	if err := c.replVerify(rb); err != nil {
		return fail(err)
	}
	return hr, ex, nil
}

// replYCSBEntry is repl-ycsb-c: read throughput against the replica
// count, leader write latency riding along.
func replYCSBEntry() Entry {
	e := Entry{
		ID:       "repl-ycsb-c",
		Title:    "Replicated reads: YCSB-C read throughput vs replica count, writes held at the leader",
		Workload: "repl",
		Systems:  []string{"si-htm", "sgl"},
		Params: fmt.Sprintf("followers=%v readers=%d writers=%d window=%s ack=fsync reads=stale-snapshot",
			replFollowerLadder, replReadThreads, replWriteThreads, durableWindowDefault),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		for _, followers := range replFollowerLadder {
			hr, ex, err := runReplReadPoint(system, sc, followers)
			if err != nil {
				return fmt.Errorf("repl-ycsb-c %s/followers=%d: %w", system, followers, err)
			}
			hook(e.recordNet(fmt.Sprintf("followers=%d", followers), hr, ex))
		}
		return nil
	}
	return e
}

// replChaosConfig is the fault schedule the failover entry streams
// through: frequent cuts, torn frames and dial-refusal windows keep the
// followers trailing the leader, which is exactly the state a promotion
// must recover from.
var replChaosConfig = netchaos.Config{
	Seed:        131,
	CutAfterMin: 4, CutAfterMax: 60,
	TearProb:     0.25,
	PartitionMin: 1, PartitionMax: 3,
}

// runReplFailover runs one failover cell: write under chaos, abandon
// the leader, promote a follower over the wire, verify zero
// acknowledged loss and digest-exact state, then measure the promoted
// node serving writes.
func runReplFailover(e Entry, system string, sc Scale, hook func(results.Record)) error {
	sc = sc.withDefaults()
	y, err := ycsbSpecByID("ycsb-a")
	if err != nil {
		return err
	}
	writers := replWriteThreads * 2
	if sc.MaxThreads > 0 && writers > sc.MaxThreads {
		writers = sc.MaxThreads
	}
	chaos := replChaosConfig
	c, err := startReplCluster(y, system, sc, writers, 2, &chaos)
	if err != nil {
		return err
	}
	defer c.close()

	wb, err := engine.DialRemote(c.addr.String(), (writers+1)/2)
	if err != nil {
		return err
	}
	defer wb.Close()
	wspec, err := netSpec(y, sc, writers)
	if err != nil {
		return err
	}
	wd, err := engine.New(wspec, wb)
	if err != nil {
		return err
	}
	wsys := engine.NewRemoteSystem(system, writers)

	// Phase 1: write under chaos long enough for the schedule to cut
	// streams and open partition windows.
	window := sc.Measure
	if window < 300*time.Millisecond {
		window = 300 * time.Millisecond
	}
	stopW := runWorkers(writers, wd.Workers(wsys))
	w0 := wsys.Collector().Snapshot()
	start := time.Now()
	time.Sleep(window)
	stopW()
	elapsed := time.Since(start)
	w1 := wsys.Collector().Snapshot()
	pre := w1.Sub(w0)
	hook(e.recordNet("phase=prekill", harness.Result{
		System: system, Threads: writers, Elapsed: elapsed, Stats: pre,
		Throughput: float64(pre.Commits) / elapsed.Seconds(),
	}, NetExtras{}))

	// The kill point: every acknowledged commit is at or below the
	// durable frontier (acks wait for fsync), and the on-disk log's
	// valid prefix holds all of it — that file is what a SIGKILL leaves
	// behind, and what the promotion must recover from. The leader is
	// abandoned from here on.
	killSeq := c.cell.store.DurableSeq()

	promoted := c.nodes[0]
	behind := killSeq - promoted.fol.Watermark() // informational: chaos-induced lag at the kill
	pb, err := engine.DialRemote(promoted.addr.String(), (writers+1)/2)
	if err != nil {
		return err
	}
	defer pb.Close()
	rs, err := pb.Promote()
	if err != nil {
		return fmt.Errorf("promote: %w", err)
	}
	if rs.Role != "promoted" {
		return fmt.Errorf("promoted follower reports role %q", rs.Role)
	}
	if rs.Watermark < killSeq {
		return fmt.Errorf("ACKED LOSS: promoted watermark %d < durable frontier %d at kill", rs.Watermark, killSeq)
	}
	if err := compareHeaps(c.heap, promoted.heap); err != nil {
		return fmt.Errorf("promoted state diverged: %w", err)
	}
	if err := engineCheck(promoted.backend, c.keys); err != nil {
		return fmt.Errorf("promoted state: %w", err)
	}
	if promoted.chaos != nil && promoted.chaos.Cuts() == 0 && rs.Reconnects == 0 {
		return fmt.Errorf("chaos schedule never engaged (no cuts, no reconnects); the cell proved nothing")
	}

	// Phase 2: the promoted node must admit and serve writes.
	pd, err := engine.New(wspec, pb)
	if err != nil {
		return err
	}
	psys := engine.NewRemoteSystem(system, writers)
	stopP := runWorkers(writers, pd.Workers(psys))
	p0 := psys.Collector().Snapshot()
	start = time.Now()
	time.Sleep(sc.Measure)
	stopP()
	elapsed = time.Since(start)
	p1 := psys.Collector().Snapshot()
	post := p1.Sub(p0)
	if post.Commits == 0 {
		return fmt.Errorf("promoted node served no write commits")
	}
	if err := engineCheck(promoted.backend, c.keys); err != nil {
		return fmt.Errorf("post-promotion state: %w", err)
	}
	hook(e.recordNet(fmt.Sprintf("phase=postpromote lag=%d", behind), harness.Result{
		System: system, Threads: writers, Elapsed: elapsed, Stats: post,
		Throughput: float64(post.Commits) / elapsed.Seconds(),
	}, NetExtras{}))
	return nil
}

// replFailoverEntry is repl-failover: kill-the-leader with chaotic
// replication streams, zero-acknowledged-loss promotion, digest-exact
// promoted state, and post-promotion write service.
func replFailoverEntry() Entry {
	e := Entry{
		ID:       "repl-failover",
		Title:    "Leader failover: chaotic WAL streams, promote a follower, zero acknowledged loss, digest-exact state",
		Workload: "repl",
		Systems:  []string{"si-htm", "sgl"},
		Params: fmt.Sprintf("followers=2 writers=%d chaos=cuts/tears/partitions window=%s ack=fsync",
			replWriteThreads*2, durableWindowDefault),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		if err := runReplFailover(e, system, sc, hook); err != nil {
			return fmt.Errorf("repl-failover %s: %w", system, err)
		}
		return nil
	}
	return e
}

// replEntries builds the replication scenario entries in presentation
// order.
func replEntries() []Entry {
	return []Entry{replYCSBEntry(), replFailoverEntry()}
}
