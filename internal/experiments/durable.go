package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sihtm/internal/durable"
	"sihtm/internal/harness"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/results"
	"sihtm/internal/topology"
	"sihtm/internal/workload/engine"
	"sihtm/internal/workload/vacation"
)

// The durable scenario entries measure the engine with the durability
// subsystem attached: every update transaction's write set is captured
// at the commit hook, sequenced into the write-ahead log, group-commit
// fsynced, and acknowledged before Atomic returns; fuzzy checkpoints
// run concurrently with the measured window. Each cell also verifies
// recovery end-to-end: after the run, the scenario is rebuilt on a
// fresh heap, restored from checkpoint + log, and compared word-for-
// word against the live heap before the workload invariants are
// re-checked on the recovered state.

// durableWindowDefault is the group-commit window the durable-ycsb-a
// and durable-vacation entries run with.
const durableWindowDefault = 500 * time.Microsecond

// durableWindows is the fsync-window ladder of the group-commit sweep.
var durableWindows = []time.Duration{0, 200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond}

// checkpointer periodically writes fuzzy checkpoints for a store until
// halted — the one lifecycle shared by the durable cells and the
// long-running `repro serve` instance.
type checkpointer struct {
	stop chan struct{}
	done chan struct{}
	err  error
}

// startCheckpointer spawns the ticker goroutine. Checkpoints run
// concurrently with the measured workload, which is the point:
// checkpoints must not perturb correctness.
func startCheckpointer(store *durable.Store, path string, every time.Duration) *checkpointer {
	c := &checkpointer{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(c.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				if _, err := store.WriteCheckpoint(path); err != nil {
					c.err = err
					return
				}
			}
		}
	}()
	return c
}

// halt stops the ticker goroutine and reports any checkpoint failure.
// Safe on nil and after a previous halt.
func (c *checkpointer) halt() error {
	if c == nil {
		return nil
	}
	select {
	case <-c.done:
	default:
		close(c.stop)
		<-c.done
	}
	return c.err
}

// durableCell is the per-point scaffolding shared by the durable
// entries: a transient directory holding wal.log + heap.ckpt, the
// store, and a background fuzzy checkpointer.
type durableCell struct {
	dir   string
	store *durable.Store
	ckpt  *checkpointer
}

func openDurableCell(heap *memsim.Heap, m *htm.Machine, window time.Duration) (*durableCell, error) {
	dir, err := os.MkdirTemp("", "sihtm-durable-")
	if err != nil {
		return nil, err
	}
	store, err := durable.Open(heap, filepath.Join(dir, "wal.log"),
		m.Topology().MaxThreads(), durable.Config{Window: window, WaitAck: true})
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	return &durableCell{dir: dir, store: store}, nil
}

func (c *durableCell) logPath() string  { return filepath.Join(c.dir, "wal.log") }
func (c *durableCell) ckptPath() string { return filepath.Join(c.dir, "heap.ckpt") }

func (c *durableCell) startCheckpointer(every time.Duration) {
	c.ckpt = startCheckpointer(c.store, c.ckptPath(), every)
}

func (c *durableCell) stopCheckpointer() error {
	err := c.ckpt.halt()
	c.ckpt = nil
	return err
}

func (c *durableCell) close() {
	c.store.Close()
	os.RemoveAll(c.dir)
}

// compareHeaps verifies two heaps hold identical images.
func compareHeaps(live, recovered *memsim.Heap) error {
	if live.Size() != recovered.Size() {
		return fmt.Errorf("heap geometry differs: %d vs %d words", live.Size(), recovered.Size())
	}
	for a := 0; a < live.Size(); a++ {
		if w, g := live.Load(memsim.Addr(a)), recovered.Load(memsim.Addr(a)); w != g {
			return fmt.Errorf("recovered heap differs at word %d: %d, want %d", a, g, w)
		}
	}
	return nil
}

// durableYCSBPoint runs one (system × threads × window) durable YCSB-A
// measurement including the post-run recovery verification, and
// returns the harness result plus the achieved group-commit batch size.
func durableYCSBPoint(y ycsbSpec, sc Scale, system string, threads int, window time.Duration) (harness.Result, float64, error) {
	fail := func(err error) (harness.Result, float64, error) { return harness.Result{}, 0, err }
	m, backend, d, err := y.build(sc, threads)
	if err != nil {
		return fail(err)
	}
	heap := m.Heap()
	cell, err := openDurableCell(heap, m, window)
	if err != nil {
		return fail(err)
	}
	defer cell.close()
	dbackend := engine.NewDurableBackend(backend, cell.store)

	sys, err := NewSystem(system, m, heap, threads)
	if err != nil {
		return fail(err)
	}
	dsys := cell.store.Attach(sys, m)

	cell.startCheckpointer(sc.Measure / 3)
	hr := harness.Run(dsys, threads, sc.Warmup, sc.Measure, d.Workers(dsys))
	hr.System = system
	if err := cell.stopCheckpointer(); err != nil {
		return fail(fmt.Errorf("checkpointer: %w", err))
	}
	// engineCheck on the durable wrapper runs the inner structural
	// invariants plus the log force (DurableBackend.Check), then unwraps
	// for the population-conservation count.
	if err := engineCheck(dbackend, d.Spec().Keys); err != nil {
		return fail(err)
	}

	// Recovery verification: rebuild the scenario deterministically on
	// a fresh heap, restore checkpoint + log, compare to the live image
	// and re-check workload invariants on the recovered state.
	m2, backend2, d2, err := y.build(sc, threads)
	if err != nil {
		return fail(err)
	}
	if _, err := durable.Recover(m2.Heap(), cell.ckptPath(), cell.logPath()); err != nil {
		return fail(err)
	}
	if err := compareHeaps(heap, m2.Heap()); err != nil {
		return fail(err)
	}
	if err := engineCheck(backend2, d2.Spec().Keys); err != nil {
		return fail(fmt.Errorf("recovered state: %w", err))
	}

	st := cell.store.Log().Stats()
	batch := float64(st.Records)
	if st.Fsyncs > 0 {
		batch = float64(st.Records) / float64(st.Fsyncs)
	}
	return hr, batch, nil
}

// durableYCSBEntry is durable YCSB-A: the update-heavy mix with full
// durability (capture, group commit, ack) across the thread ladder.
func durableYCSBEntry() Entry {
	y := ycsbSpecs[0] // ycsb-a
	e := Entry{
		ID:           "durable-ycsb-a",
		Title:        "Durable YCSB-A: group-commit WAL + fuzzy checkpoints + post-run recovery check",
		Workload:     "durable",
		Systems:      scenarioSystems,
		ThreadLadder: topology.PaperThreadLadder,
		Params:       fmt.Sprintf("ycsb-a window=%s ack=fsync ckpt=fuzzy", durableWindowDefault),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		sc = sc.withDefaults()
		for _, n := range sc.threads(topology.PaperThreadLadder) {
			hr, _, err := durableYCSBPoint(y, sc, system, n, durableWindowDefault)
			if err != nil {
				return fmt.Errorf("durable-ycsb-a %s/%d: %w", system, n, err)
			}
			hook(e.record("", hr))
		}
		return nil
	}
	return e
}

// durableWindowEntry is the group-commit-window sweep: fixed thread
// count, fsync window swept from flush-on-demand (0) to 5ms batches.
// The window buys fsync amortization — the achieved batch size
// (records per fsync, recorded in each point's parameter string) grows
// with it — at the price of acknowledgement latency: a committer waits
// out the rest of the window before its fsync. Which side wins depends
// on storage: with fast fsyncs (CI tmpfs) commit admission is
// latency-bound and throughput falls as the window grows, while on
// fsync-expensive devices the amortization side dominates; the sweep
// exposes both quantities so either regime is readable from the data.
func durableWindowEntry() Entry {
	y := ycsbSpecs[0]
	const threads = 8
	e := Entry{
		ID:       "durable-window",
		Title:    "Group-commit window sweep: durable YCSB-A throughput vs fsync window (8 threads)",
		Workload: "durable",
		Systems:  []string{"si-htm", "htm"},
		Params:   fmt.Sprintf("ycsb-a windows=%v threads=%d ack=fsync", durableWindows, threads),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		sc = sc.withDefaults()
		n := threads
		if sc.MaxThreads > 0 && n > sc.MaxThreads {
			n = sc.MaxThreads
		}
		for _, w := range durableWindows {
			hr, batch, err := durableYCSBPoint(y, sc, system, n, w)
			if err != nil {
				return fmt.Errorf("durable-window %s/%s: %w", system, w, err)
			}
			hook(e.record(fmt.Sprintf("window=%s batch=%.1f", w, batch), hr))
		}
		return nil
	}
	return e
}

// durableVacationPoint runs one durable vacation measurement including
// the recovery verification (conservation invariant on the recovered
// state).
func durableVacationPoint(v vacationSpec, sc Scale, system string, threads int) (harness.Result, error) {
	fail := func(err error) (harness.Result, error) { return harness.Result{}, err }
	cfg := v.config(sc, threads)
	heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
	m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
	mgr, err := vacation.NewManager(heap, cfg)
	if err != nil {
		return fail(err)
	}
	cell, err := openDurableCell(heap, m, durableWindowDefault)
	if err != nil {
		return fail(err)
	}
	defer cell.close()

	sys, err := NewSystem(system, m, heap, threads)
	if err != nil {
		return fail(err)
	}
	dsys := cell.store.Attach(sys, m)
	mkWorker := func(thread int) func() {
		w, err := mgr.NewWorker(dsys, thread)
		if err != nil {
			panic(err)
		}
		return func() { w.Op() }
	}

	cell.startCheckpointer(sc.Measure / 3)
	hr := harness.Run(dsys, threads, sc.Warmup, sc.Measure, mkWorker)
	hr.System = system
	if err := cell.stopCheckpointer(); err != nil {
		return fail(fmt.Errorf("checkpointer: %w", err))
	}
	if err := mgr.CheckConsistency(); err != nil {
		return fail(err)
	}
	if err := cell.store.Sync(); err != nil {
		return fail(err)
	}

	// Recovery: rebuild the database deterministically, restore, compare
	// and re-verify the conservation invariant on the recovered heap.
	heap2 := memsim.NewHeapLines(cfg.HeapLinesNeeded())
	mgr2, err := vacation.NewManager(heap2, cfg)
	if err != nil {
		return fail(err)
	}
	if _, err := durable.Recover(heap2, cell.ckptPath(), cell.logPath()); err != nil {
		return fail(err)
	}
	if err := compareHeaps(heap, heap2); err != nil {
		return fail(err)
	}
	if err := mgr2.CheckConsistency(); err != nil {
		return fail(fmt.Errorf("recovered state: %w", err))
	}
	return hr, nil
}

// durableVacationEntry is the durable vacation scenario (low-contention
// configuration) across the thread ladder.
func durableVacationEntry() Entry {
	v := vacationSpecs[0] // vacation-low
	e := Entry{
		ID:           "durable-vacation",
		Title:        "Durable vacation: reservations with group-commit WAL, conservation re-checked after replay",
		Workload:     "durable",
		Systems:      scenarioSystems,
		ThreadLadder: topology.PaperThreadLadder,
		Params:       fmt.Sprintf("vacation-low window=%s ack=fsync ckpt=fuzzy", durableWindowDefault),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		sc = sc.withDefaults()
		for _, n := range sc.threads(topology.PaperThreadLadder) {
			hr, err := durableVacationPoint(v, sc, system, n)
			if err != nil {
				return fmt.Errorf("durable-vacation %s/%d: %w", system, n, err)
			}
			hook(e.record("", hr))
		}
		return nil
	}
	return e
}

// durableEntries builds the durability scenario entries in
// presentation order.
func durableEntries() []Entry {
	return []Entry{durableYCSBEntry(), durableVacationEntry(), durableWindowEntry()}
}
