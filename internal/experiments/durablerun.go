package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sihtm/internal/durable"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
	"sihtm/internal/workload/vacation"
)

// This file is the crash-recovery pipeline behind `repro durable` and
// `repro recover`: StartDurable runs a durable scenario against an
// on-disk run directory (meta.json + wal.log + heap.ckpt) until it is
// killed — the intended crash — and RecoverDurable later rebuilds the
// scenario deterministically from meta.json, restores checkpoint + log,
// and re-checks the workload invariants on the recovered state.

// DurableMeta is the run descriptor persisted as meta.json — everything
// recovery needs to rebuild the scenario's deterministic base state.
type DurableMeta struct {
	Scenario string `json:"scenario"` // "ycsb-a" or "vacation"
	System   string `json:"system"`
	Scale    string `json:"scale"`
	Threads  int    `json:"threads"`
	WindowNS int64  `json:"window_ns"`
}

// DurableScenarioNames lists the scenarios StartDurable accepts.
func DurableScenarioNames() []string { return []string{"ycsb-a", "vacation"} }

func metaPath(dir string) string { return filepath.Join(dir, "meta.json") }
func logPath(dir string) string  { return filepath.Join(dir, "wal.log") }
func ckptPath(dir string) string { return filepath.Join(dir, "heap.ckpt") }

// durableWorkload is the scenario-shape abstraction shared by the
// runner and recovery: build the deterministic base (heap populated,
// machine ready) and check invariants on a (possibly recovered) state.
type durableWorkload struct {
	heap     *memsim.Heap
	machine  *htm.Machine
	mkWorker func(sys tm.System) func(thread int) func()
	check    func() error
}

// buildDurableWorkload constructs a scenario's deterministic base state.
func buildDurableWorkload(meta DurableMeta, sc Scale) (*durableWorkload, error) {
	switch meta.Scenario {
	case "ycsb-a":
		y := ycsbSpecs[0]
		m, backend, d, err := y.build(sc, meta.Threads)
		if err != nil {
			return nil, err
		}
		return &durableWorkload{
			heap:    m.Heap(),
			machine: m,
			mkWorker: func(sys tm.System) func(thread int) func() {
				return d.Workers(sys)
			},
			check: func() error { return engineCheck(backend, d.Spec().Keys) },
		}, nil
	case "vacation":
		v := vacationSpecs[0]
		cfg := v.config(sc, meta.Threads)
		heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
		m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
		mgr, err := vacation.NewManager(heap, cfg)
		if err != nil {
			return nil, err
		}
		return &durableWorkload{
			heap:    heap,
			machine: m,
			mkWorker: func(sys tm.System) func(thread int) func() {
				return func(thread int) func() {
					w, err := mgr.NewWorker(sys, thread)
					if err != nil {
						panic(err)
					}
					return func() { w.Op() }
				}
			},
			check: mgr.CheckConsistency,
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown durable scenario %q (known: %v)",
			meta.Scenario, DurableScenarioNames())
	}
}

// StartDurable populates the scenario, writes meta.json, and runs the
// durable workload against dir until duration elapses (0 = until the
// process is killed — the crash the recovery pipeline exists for).
// Checkpoints are written to heap.ckpt on ckptEvery intervals (0
// disables them). progress (may be nil) receives one line per second.
func StartDurable(dir string, meta DurableMeta, duration, ckptEvery time.Duration, progress io.Writer) error {
	sc, err := ScaleByName(meta.Scale)
	if err != nil {
		return err
	}
	sc = sc.withDefaults()
	if meta.Threads <= 0 {
		return fmt.Errorf("experiments: durable run needs a positive thread count")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// A fresh run truncates wal.log (wal.Create), so a checkpoint left
	// by a previous run in the same directory would belong to a
	// different history — recovery restoring it over the new log would
	// produce a state from neither run. Remove it up front.
	for _, stale := range []string{ckptPath(dir), ckptPath(dir) + ".tmp"} {
		if err := os.Remove(stale); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	w, err := buildDurableWorkload(meta, sc)
	if err != nil {
		return err
	}
	mj, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(metaPath(dir), append(mj, '\n'), 0o644); err != nil {
		return err
	}

	store, err := durable.Open(w.heap, logPath(dir), w.machine.Topology().MaxThreads(),
		durable.Config{Window: time.Duration(meta.WindowNS), WaitAck: true})
	if err != nil {
		return err
	}
	sys, err := NewSystem(meta.System, w.machine, w.heap, meta.Threads)
	if err != nil {
		return err
	}
	dsys := store.Attach(sys, w.machine)

	var stop atomic.Bool
	var wg sync.WaitGroup
	mk := w.mkWorker(dsys)
	for id := 0; id < meta.Threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			op := mk(id)
			for !stop.Load() {
				op()
			}
		}(id)
	}

	start := time.Now()
	report := time.NewTicker(time.Second)
	defer report.Stop()
	var ckpt <-chan time.Time
	if ckptEvery > 0 {
		t := time.NewTicker(ckptEvery)
		defer t.Stop()
		ckpt = t.C
	}
	var deadline <-chan time.Time
	if duration > 0 {
		deadline = time.After(duration)
	}
	for {
		select {
		case <-report.C:
			if progress != nil {
				st := store.Log().Stats()
				fmt.Fprintf(progress, "t=%s commits=%d durable_seq=%d fsyncs=%d\n",
					time.Since(start).Round(time.Second), dsys.Collector().Snapshot().Commits,
					store.Log().DurableSeq(), st.Fsyncs)
			}
		case <-ckpt:
			if _, err := store.WriteCheckpoint(ckptPath(dir)); err != nil {
				return err
			}
		case <-deadline:
			stop.Store(true)
			wg.Wait()
			if err := w.check(); err != nil {
				return fmt.Errorf("experiments: post-run invariants: %w", err)
			}
			return store.Close()
		}
	}
}

// DurableRecovery is the JSON-serializable outcome of RecoverDurable —
// the replayed BENCH artifact the CI recovery smoke uploads.
type DurableRecovery struct {
	Meta           DurableMeta `json:"meta"`
	CheckpointUsed bool        `json:"checkpoint_used"`
	Watermark      uint64      `json:"watermark"`
	RecoveredSeq   uint64      `json:"recovered_seq"`
	RecordsApplied int         `json:"records_applied"`
	RecordsSkipped int         `json:"records_skipped"`
	TailBytes      int64       `json:"tail_bytes_discarded"`
	InvariantsOK   bool        `json:"invariants_ok"`
	Detail         string      `json:"detail"`
}

// RecoverDurable crash-replays a run directory: it rebuilds the
// scenario's deterministic base from meta.json, restores heap.ckpt (if
// the crash left one) plus the wal.log valid prefix, and re-checks the
// scenario invariants on the recovered state. The returned error is
// non-nil when recovery itself fails or the invariants do not hold.
func RecoverDurable(dir string) (DurableRecovery, error) {
	var out DurableRecovery
	mj, err := os.ReadFile(metaPath(dir))
	if err != nil {
		return out, fmt.Errorf("experiments: recover: %w", err)
	}
	if err := json.Unmarshal(mj, &out.Meta); err != nil {
		return out, fmt.Errorf("experiments: recover: meta.json: %w", err)
	}
	sc, err := ScaleByName(out.Meta.Scale)
	if err != nil {
		return out, err
	}
	sc = sc.withDefaults()
	w, err := buildDurableWorkload(out.Meta, sc)
	if err != nil {
		return out, err
	}
	rep, err := durable.Recover(w.heap, ckptPath(dir), logPath(dir))
	out.CheckpointUsed = rep.CheckpointUsed
	out.Watermark = rep.Watermark
	out.RecoveredSeq = rep.RecoveredSeq
	out.RecordsApplied = rep.Applied
	out.RecordsSkipped = rep.Skipped
	out.TailBytes = rep.Replay.TailBytes
	if err != nil {
		out.Detail = err.Error()
		return out, err
	}
	if err := w.check(); err != nil {
		out.Detail = err.Error()
		return out, fmt.Errorf("experiments: recovered state violates invariants: %w", err)
	}
	out.InvariantsOK = true
	out.Detail = rep.String()
	return out, nil
}
