package experiments

import (
	"fmt"
	"strings"
	"time"

	"sihtm/internal/harness"
	"sihtm/internal/results"
	"sihtm/internal/telemetry"
	"sihtm/internal/trace"
	"sihtm/internal/workload/engine"
)

// The net-trace cell proves the tracing plane end to end: a durable
// leader with one streaming follower serves a traced YCSB-A client
// (every request carries a trace id), and afterwards the cell merges
// the three span rings — client, leader (fetched over the real
// /debug/traces endpoint), follower — and reconstructs at least one
// complete trace:
//
//	client → admit → exec [→ ack] → flush → request → fsync → repl_apply
//
// with the cross-layer invariants checked on the reconstruction: the
// server stage sum equals the request span exactly, the client round
// trip bounds the server total, the follower replayed the same commit
// sequence, and a group-commit fsync covers it. The p99 exemplar must
// resolve to a client-originated trace id, closing the histogram →
// trace loop the exemplar table exists for.

// netTraceThreads is the cell's traced client worker count.
const netTraceThreads = 4

// netTraceSlack absorbs wall-versus-monotonic clock skew when comparing
// the client round trip against the server-side total.
const netTraceSlack = 2 * time.Millisecond

// traceIndex groups spans per trace id, one span per kind (the newest
// wins, which is fine: the cell only needs one coherent exemplar).
type traceIndex map[uint64]map[trace.Kind]trace.Span

func (ix traceIndex) add(spans []trace.Span) {
	for _, s := range spans {
		if s.Trace == 0 {
			continue
		}
		m := ix[s.Trace]
		if m == nil {
			m = make(map[trace.Kind]trace.Span, 8)
			ix[s.Trace] = m
		}
		m[s.Kind] = s
	}
}

func netTraceEntry() Entry {
	e := Entry{
		ID:       "net-trace",
		Title:    "End-to-end tracing: one reconstructed trace from client through server stages, fsync and follower replay",
		Workload: "net",
		Systems:  []string{"si-htm", "sgl"},
		Params: fmt.Sprintf("ycsb-a durable leader + 1 follower, trace-every=1, window=%s ack=fsync",
			durableWindowDefault),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		sc = sc.withDefaults()
		threads := netTraceThreads
		if sc.MaxThreads > 0 && threads > sc.MaxThreads {
			threads = sc.MaxThreads
		}
		fail := func(err error) error { return fmt.Errorf("net-trace %s: %w", system, err) }
		y, err := ycsbSpecByID("ycsb-a")
		if err != nil {
			return fail(err)
		}
		c, err := startReplCluster(y, system, sc, threads, 1, nil)
		if err != nil {
			return fail(err)
		}
		defer c.close()

		wb, err := engine.DialRemote(c.addr.String(), (threads+1)/2)
		if err != nil {
			return fail(err)
		}
		defer wb.Close()
		// Trace every request: the cell's assertions need traced commits
		// in the most recent ring window, not a 1/64 sample.
		clientRing := wb.EnableTracing(1)
		wspec, err := netSpec(y, sc, threads)
		if err != nil {
			return fail(err)
		}
		wd, err := engine.New(wspec, wb)
		if err != nil {
			return fail(err)
		}
		wsys := engine.NewRemoteSystem(system, threads)

		stop := runWorkers(threads, wd.Workers(wsys))
		time.Sleep(sc.Warmup)
		sv0, serr := wb.Stats()
		w0 := wsys.Collector().Snapshot()
		start := time.Now()
		time.Sleep(sc.Measure)
		sv1, serr1 := wb.Stats()
		elapsed := time.Since(start)
		w1 := wsys.Collector().Snapshot()
		stop()
		if serr != nil {
			return fail(serr)
		}
		if serr1 != nil {
			return fail(serr1)
		}

		// Acks ride fsyncs, so with the workers quiesced the durable
		// frontier covers every acknowledged commit; once the follower's
		// watermark reaches it, every traced commit still in the rings has
		// its repl_apply span recorded.
		frontier := c.cell.store.DurableSeq()
		fol := c.nodes[0]
		if !fol.fol.WaitWatermark(frontier, 10*time.Second) {
			return fail(fmt.Errorf("follower stuck at watermark %d, leader frontier %d",
				fol.fol.Watermark(), frontier))
		}

		// Fetch the leader's ring over the same /debug/traces endpoint
		// `repro serve --metrics-addr` mounts, so the HTTP query surface
		// is exercised, not just the in-process snapshot.
		msrv, err := telemetry.ListenAndServe("127.0.0.1:0", c.srv.Telemetry(), nil,
			telemetry.Extra{Path: "/debug/traces", Handler: trace.Handler(c.srv.TraceRing())})
		if err != nil {
			return fail(err)
		}
		defer msrv.Close()
		body, err := httpGetOK(msrv.Addr(), "/debug/traces")
		if err != nil {
			return fail(err)
		}
		leaderSpans, _, err := trace.ReadJSONL(strings.NewReader(body))
		if err != nil {
			return fail(err)
		}
		if len(leaderSpans) == 0 {
			return fail(fmt.Errorf("/debug/traces returned no spans after a traced run"))
		}

		ix := make(traceIndex)
		ix.add(clientRing.Snapshot(nil))
		ix.add(leaderSpans)
		ix.add(fol.srv.TraceRing().Snapshot(nil))
		var fsyncs []trace.Span
		for _, s := range leaderSpans {
			if s.Kind == trace.KFsync {
				fsyncs = append(fsyncs, s)
			}
		}
		if len(fsyncs) == 0 {
			return fail(fmt.Errorf("no fsync spans on the leader ring after a durable run"))
		}

		// Reconstruct: a complete trace has the client half, all server
		// stages, a follower replay of the same commit sequence, and a
		// group-commit fsync at or past it. Prefer one with an ack span
		// (a request that actually waited on durability).
		var best map[trace.Kind]trace.Span
		complete := 0
		for _, m := range ix {
			cl, okC := m[trace.KClient]
			req, okR := m[trace.KRequest]
			ra, okA := m[trace.KReplApply]
			_, okAd := m[trace.KAdmit]
			_, okEx := m[trace.KExec]
			_, okFl := m[trace.KFlush]
			if !(okC && okR && okA && okAd && okEx && okFl) || req.Seq == 0 {
				continue
			}
			if ra.Seq != req.Seq {
				return fail(fmt.Errorf("trace %d: repl_apply seq %d != request seq %d",
					cl.Trace, ra.Seq, req.Seq))
			}
			covered := false
			for _, f := range fsyncs {
				if f.Seq >= req.Seq {
					covered = true
					break
				}
			}
			if !covered {
				continue
			}
			complete++
			if best == nil {
				best = m
			}
			if _, hasAck := m[trace.KAck]; hasAck {
				best = m
			}
		}
		if complete == 0 {
			return fail(fmt.Errorf("no complete end-to-end trace across %d ids (client=%d leader=%d follower=%d spans)",
				len(ix), clientRing.Total(), c.srv.TraceRing().Total(), fol.srv.TraceRing().Total()))
		}

		// Cross-layer invariants on the chosen exemplar.
		req := best[trace.KRequest]
		stageSum := best[trace.KAdmit].Dur + best[trace.KExec].Dur + best[trace.KFlush].Dur
		if stageSum != req.Dur {
			return fail(fmt.Errorf("trace %d: stage sum %dns != request span %dns", req.Trace, stageSum, req.Dur))
		}
		client := best[trace.KClient]
		if req.Dur > int64(netTraceSlack)+client.Dur {
			return fail(fmt.Errorf("trace %d: server total %s exceeds client round trip %s",
				req.Trace, time.Duration(req.Dur), time.Duration(client.Dur)))
		}
		if req.Trace&trace.ServerOriginBit != 0 {
			return fail(fmt.Errorf("trace %d: client-sampled id carries ServerOriginBit", req.Trace))
		}

		// The histogram → trace bridge: the window's p99 must resolve to
		// an exemplar, and with every request client-traced it must be a
		// client-originated id present in the reconstruction index.
		hist := sv1.Hist.Sub(sv0.Hist)
		exID := c.srv.Exemplars().ForQuantile(hist, 0.99)
		if exID == 0 {
			return fail(fmt.Errorf("p99 exemplar empty after a fully traced window"))
		}
		if exID&trace.ServerOriginBit != 0 {
			return fail(fmt.Errorf("p99 exemplar %d is server-origin under trace-every=1", exID))
		}

		stats := w1.Sub(w0)
		hr := harness.Result{
			System: system, Threads: threads, Elapsed: elapsed, Stats: stats,
			Throughput: float64(stats.Commits) / elapsed.Seconds(),
		}
		ex := NetExtras{P50: hist.Quantile(0.5), P99: hist.Quantile(0.99)}
		r := e.recordNet("", hr, ex)
		r.TraceSpansTotal = c.srv.TraceRing().Total()
		r.TraceStageSumUs = float64(stageSum) / float64(time.Microsecond)
		r.TraceClientUs = float64(client.Dur) / float64(time.Microsecond)
		hook(r)
		return nil
	}
	return e
}
