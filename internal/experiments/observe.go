package experiments

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sihtm/internal/results"
	"sihtm/internal/stats"
	"sihtm/internal/telemetry"
)

// The net-observe cell proves the observability plane end to end: a
// durable self-hosted server runs under load with the adaptive
// admission controller on, and halfway through the measurement window
// the cell scrapes the live /metrics endpoint like an external
// Prometheus would. The scrape must carry the full abort-cause family
// for the system under test, a populated fsync-latency histogram and
// controller-epoch activity — and every scraped counter must be
// consistent with (bounded by) the server's final statistics, proving
// the scrape-time instruments and the wire STATS plane count the same
// events.

// netObserveThreads is the cell's client worker count.
const netObserveThreads = 4

// netObserveCtrlInterval keeps the admission controller ticking fast
// enough that epochs accumulate within half a CI-scale measurement
// window.
const netObserveCtrlInterval = 5 * time.Millisecond

// abortCauseLabels is the metric label value of every abort cause, in
// stats.AbortKind order — the /metrics contract the cell asserts.
var abortCauseLabels = [stats.NumAbortKinds]string{
	"conflict", "non_transactional", "capacity", "explicit", "other",
}

func netObserveEntry() Entry {
	e := Entry{
		ID:       "net-observe",
		Title:    "Observability plane: live /metrics scrape under load, checked against final server statistics",
		Workload: "net",
		// All five concurrency controls: the telemetry seam's contract is
		// that every system reports the identical family set.
		Systems: []string{"htm", "si-htm", "p8tm", "silo", "sgl"},
		Params: fmt.Sprintf("ycsb-a durable over loopback batch=%d window=%s ctrl-interval=%s scrape=mid-measure",
			netBatchDefault, durableWindowDefault, netObserveCtrlInterval),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		sc = sc.withDefaults()
		n := netObserveThreads
		if sc.MaxThreads > 0 && n > sc.MaxThreads {
			n = sc.MaxThreads
		}
		p := NetPoint{
			Scenario: "ycsb-a", System: system, Threads: n, Batch: netBatchDefault,
			Durable: true, Window: durableWindowDefault,
			P99Target: time.Millisecond, CtrlInterval: netObserveCtrlInterval,
		}

		// The mid-measure observer stashes the host (for the final
		// consistency check) and the scraped counter values.
		var observed *netHost
		var scraped map[string]float64
		mid := func(h *netHost) error {
			observed = h
			// Serve the host's registry on an ephemeral port for the scrape
			// window only: the cell exercises the same handler stack `repro
			// serve --metrics-addr` mounts.
			msrv, err := telemetry.ListenAndServe("127.0.0.1:0", h.srv.Telemetry(), func() error {
				if h.srv.Draining() {
					return fmt.Errorf("draining")
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("net-observe: metrics listener: %w", err)
			}
			defer msrv.Close()

			if body, err := httpGetOK(msrv.Addr(), "/healthz"); err != nil {
				return fmt.Errorf("net-observe: %w", err)
			} else if !strings.Contains(body, "ok") {
				return fmt.Errorf("net-observe: /healthz body %q", body)
			}
			if _, err := httpGetOK(msrv.Addr(), "/readyz"); err != nil {
				return fmt.Errorf("net-observe: serving host not ready: %w", err)
			}
			body, err := httpGetOK(msrv.Addr(), "/metrics")
			if err != nil {
				return fmt.Errorf("net-observe: %w", err)
			}
			scraped, err = parsePrometheus(body)
			if err != nil {
				return fmt.Errorf("net-observe: %w", err)
			}

			// Every abort cause must be a registered series for this system,
			// present on the scrape even at zero.
			for _, cause := range abortCauseLabels {
				key := fmt.Sprintf(`sihtm_tm_aborts_total{cause=%q,system=%q}`, cause, system)
				if _, ok := scraped[key]; !ok {
					return fmt.Errorf("net-observe: scrape is missing %s", key)
				}
			}
			// Durable server under acknowledged load: fsyncs must have
			// happened and been observed by the latency histogram.
			if v := scraped["sihtm_wal_fsync_seconds_count"]; v < 1 {
				return fmt.Errorf("net-observe: fsync histogram empty mid-load (count=%v)", v)
			}
			if v := scraped["sihtm_wal_fsyncs_total"]; v < 1 {
				return fmt.Errorf("net-observe: fsync counter zero mid-load")
			}
			// The adaptive controller is on with a fast interval: epochs
			// must be accumulating.
			if v := scraped["sihtm_ctrl_epochs_total"]; v < 1 {
				return fmt.Errorf("net-observe: controller epochs zero with P99 target set")
			}
			// Commits must be flowing through the TM seam.
			upd := scraped[fmt.Sprintf(`sihtm_tm_commits_total{path="update",system=%q}`, system)]
			ro := scraped[fmt.Sprintf(`sihtm_tm_commits_total{path="read_only",system=%q}`, system)]
			if upd+ro < 1 {
				return fmt.Errorf("net-observe: no commits on the TM seam mid-load")
			}
			return nil
		}

		hr, ex, err := runNetPoint(p, sc, mid)
		if err != nil {
			return fmt.Errorf("net-observe %s: %w", system, err)
		}
		if observed == nil || scraped == nil {
			return fmt.Errorf("net-observe %s: mid-measure scrape never ran", system)
		}

		// Counters are monotone: the mid-flight scrape must be bounded by
		// the final totals, or the scrape path and the STATS plane are
		// counting different events.
		final := observed.srv.Snapshot()
		for k, cause := range abortCauseLabels {
			key := fmt.Sprintf(`sihtm_tm_aborts_total{cause=%q,system=%q}`, cause, system)
			if got, max := scraped[key], final.Stats.Aborts[stats.AbortKind(k)]; got > float64(max) {
				return fmt.Errorf("net-observe %s: scraped %s = %v exceeds final total %d", system, key, got, max)
			}
		}
		if final.Telemetry == nil {
			return fmt.Errorf("net-observe %s: final STATS snapshot has no telemetry block", system)
		}
		if got, max := scraped["sihtm_wal_fsyncs_total"], final.Telemetry.WalFsyncs; got > float64(max) {
			return fmt.Errorf("net-observe %s: scraped fsyncs %v exceed final total %d", system, got, max)
		}
		upd := scraped[fmt.Sprintf(`sihtm_tm_commits_total{path="update",system=%q}`, system)]
		ro := scraped[fmt.Sprintf(`sihtm_tm_commits_total{path="read_only",system=%q}`, system)]
		if got, max := upd+ro, final.Stats.Commits; got > float64(max) {
			return fmt.Errorf("net-observe %s: scraped commits %v exceed final total %d", system, got, max)
		}

		r := e.recordNet("", hr, ex)
		r.CtrlBatchMax = final.BatchMax
		r.CtrlAdmitWaitUs = final.AdmitWaitUs
		// The post-drain snapshot reports the target as off (stopController
		// zeroes it); the batch/grace knobs freeze at their converged
		// values. Record the target the run was configured with.
		r.CtrlP99TargetUs = int(p.P99Target / time.Microsecond)
		hook(r)
		return nil
	}
	return e
}

// httpGetOK fetches path from the observability plane and returns the
// body, failing on any non-200 status.
func httpGetOK(addr, path string) (string, error) {
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get("http://" + addr + path)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return string(b), fmt.Errorf("GET %s: status %d (%s)", path, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return string(b), nil
}

// parsePrometheus reads text exposition format into a map keyed by the
// full series name including its label set, exactly as rendered.
func parsePrometheus(body string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed metrics value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty metrics scrape")
	}
	return out, nil
}
