package experiments

import (
	"strings"
	"testing"
	"time"

	"sihtm/internal/results"
)

func TestConnScaleParams(t *testing.T) {
	for _, tc := range []struct {
		scale string
		rungs int
		top   int
	}{
		{"ci", 3, 512},
		{"quick", 3, 1024},
		{"paper", 3, 10240},
	} {
		sc, err := ScaleByName(tc.scale)
		if err != nil {
			t.Fatal(err)
		}
		ladder, perConn, target := connScaleParams(sc.withDefaults())
		if len(ladder) != tc.rungs || ladder[len(ladder)-1] != tc.top {
			t.Fatalf("%s ladder = %v", tc.scale, ladder)
		}
		if perConn <= 0 || target <= 0 {
			t.Fatalf("%s rate=%v target=%v", tc.scale, perConn, target)
		}
	}
}

func TestConnScaleCtrlInterval(t *testing.T) {
	if iv := connScaleCtrlInterval(Scale{Measure: 64 * time.Millisecond}); iv != 4*time.Millisecond {
		t.Fatalf("64ms window -> %v", iv)
	}
	if iv := connScaleCtrlInterval(Scale{Measure: 4 * time.Millisecond}); iv != 2*time.Millisecond {
		t.Fatalf("4ms window -> %v (floor)", iv)
	}
	if iv := connScaleCtrlInterval(Scale{Measure: 400 * time.Millisecond}); iv != 10*time.Millisecond {
		t.Fatalf("400ms window -> %v (cap)", iv)
	}
}

func TestConnScaleWindows(t *testing.T) {
	sc := connScaleWindows(Scale{Warmup: 10 * time.Millisecond, Measure: 40 * time.Millisecond})
	if sc.Warmup != 100*time.Millisecond || sc.Measure != 400*time.Millisecond {
		t.Fatalf("ci windows not floored: %+v", sc)
	}
	sc = connScaleWindows(Scale{Warmup: 150 * time.Millisecond, Measure: 600 * time.Millisecond})
	if sc.Warmup != 150*time.Millisecond || sc.Measure != 600*time.Millisecond {
		t.Fatalf("paper windows must pass through: %+v", sc)
	}
}

// TestConnScaleCell runs the whole net-connscale cell at ci scale: a
// self-hosted server, the open-loop ladder with the controller off and
// on at every rung, and the post-run population check. Asserts the
// record shape the BENCH pipeline depends on.
func TestConnScaleCell(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cell")
	}
	sc, err := ScaleByName("ci")
	if err != nil {
		t.Fatal(err)
	}
	e := connScaleEntry()
	recs, err := e.RunCell("si-htm", sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	ladder, _, target := connScaleParams(sc.withDefaults())
	if want := 2 * len(ladder); len(recs) != want {
		t.Fatalf("%d records, want %d", len(recs), want)
	}
	ctrlOn := 0
	for _, r := range recs {
		if r.Experiment != "net-connscale" || r.Workload != "net" {
			t.Fatalf("registry coordinates wrong: %+v", r)
		}
		if r.Threads <= 0 || r.Commits == 0 || r.Throughput <= 0 {
			t.Fatalf("empty measurement: %+v", r)
		}
		if r.LatencyP99Us <= 0 || r.LatencyP50Us <= 0 {
			t.Fatalf("missing CO-safe latency: %+v", r)
		}
		if r.CtrlBatchMax <= 0 {
			t.Fatalf("missing admission knobs: %+v", r)
		}
		if strings.HasSuffix(r.System, "+ctrl") {
			ctrlOn++
			if r.CtrlP99TargetUs != int(target/time.Microsecond) {
				t.Fatalf("controlled record reports target %dµs, want %dµs", r.CtrlP99TargetUs, int(target/time.Microsecond))
			}
		} else if r.CtrlP99TargetUs != 0 {
			t.Fatalf("uncontrolled record reports a p99 target: %+v", r)
		}
	}
	if ctrlOn != len(ladder) {
		t.Fatalf("%d controlled records, want %d", ctrlOn, len(ladder))
	}
}

// TestConnScaleMarkdown renders the controller panel for connscale
// records (the BENCH markdown path).
func TestConnScaleMarkdown(t *testing.T) {
	recs := []results.Record{
		{Experiment: "net-connscale", System: "si-htm", Threads: 32, Throughput: 1000,
			LatencyP50Us: 100, LatencyP99Us: 900, CtrlBatchMax: 256, CtrlAdmitWaitUs: 1000},
		{Experiment: "net-connscale", System: "si-htm+ctrl", Threads: 32, Throughput: 1100,
			LatencyP50Us: 80, LatencyP99Us: 500, CtrlBatchMax: 16, CtrlAdmitWaitUs: 40, CtrlP99TargetUs: 5000},
	}
	var b strings.Builder
	results.MarkdownController(&b, "net-connscale", recs)
	out := b.String()
	for _, want := range []string{"256 / 1000 / off", "16 / 40 / 5000", "si-htm+ctrl"} {
		if !strings.Contains(out, want) {
			t.Fatalf("controller panel missing %q:\n%s", want, out)
		}
	}
}
