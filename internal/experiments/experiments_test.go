package experiments

import (
	"strings"
	"testing"
	"time"

	"sihtm/internal/results"
)

func quickScale() Scale {
	return Scale{
		MaxThreads:  2,
		WorkloadDiv: 20,
		Warmup:      2 * time.Millisecond,
		Measure:     20 * time.Millisecond,
	}
}

func TestRegistryIsComplete(t *testing.T) {
	entries := Registry()
	if len(entries) != 33 { // 10 figure panels + 6 scenarios + 3 durable + 7 net + 2 repl + 5 ablations
		t.Fatalf("Registry() = %d entries, want 33", len(entries))
	}
	seen := map[string]bool{}
	figures := map[int]bool{}
	for _, e := range entries {
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if e.ID == "" || e.Title == "" || e.Workload == "" {
			t.Errorf("entry %+v missing metadata", e)
		}
		// net-connscale compares within its one cell: every rung is
		// measured with the admission controller off and on, labeled
		// system vs system+"+ctrl". net-slo is htm-only by design: the
		// capacity cliff it must alert on exists only for plain HTM —
		// si-htm's untracked ROT reads would hide it.
		if len(e.Systems) < 2 && e.ID != "net-connscale" && e.ID != "net-slo" {
			t.Errorf("entry %q compares %d systems, want >= 2", e.ID, len(e.Systems))
		}
		if e.run == nil {
			t.Errorf("entry %q has no runner", e.ID)
		}
		if e.Figure > 0 {
			figures[e.Figure] = true
			if e.Panel != "low" && e.Panel != "high" {
				t.Errorf("figure entry %q has panel %q", e.ID, e.Panel)
			}
			if len(e.ThreadLadder) == 0 {
				t.Errorf("figure entry %q has no thread ladder", e.ID)
			}
		}
	}
	for f := 6; f <= 10; f++ {
		if !figures[f] {
			t.Errorf("figure %d not in registry", f)
		}
	}
	for _, id := range FigureOrder {
		if !seen[id] {
			t.Errorf("FigureOrder id %q not in registry", id)
		}
	}
	// Registry() must build entries in presentation order (registryIDs),
	// which is also the rank stamped onto records.
	if len(entries) != len(registryIDs) {
		t.Fatalf("registryIDs has %d ids, registry %d entries", len(registryIDs), len(entries))
	}
	for i, e := range entries {
		if e.ID != registryIDs[i] {
			t.Errorf("registry[%d] = %q, want %q (presentation order)", i, e.ID, registryIDs[i])
		}
		if registryRank[e.ID] != i {
			t.Errorf("registryRank[%q] = %d, want %d", e.ID, registryRank[e.ID], i)
		}
	}
}

func TestLookupAndSelect(t *testing.T) {
	if _, ok := Lookup("fig6-low"); !ok {
		t.Fatal("fig6-low not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus id found")
	}

	cases := []struct {
		sel  string
		want int
	}{
		{"all", 33},
		{"figures", 10},
		{"scenarios", 6},
		{"ablations", 5},
		{"fig6", 2},
		{"6", 2},
		{"fig9-low", 1},
		{"capacity", 1},
		{"ycsb", 3},
		{"vacation", 2},
		{"zipf", 1},
		{"durable", 3},
		{"net", 7},
		{"repl", 2},
		{"fig6,fig9-low,capacity", 4},
		{"ycsb,vacation,zipf", 6},
		{"scenarios,durable,net", 16},
	}
	for _, c := range cases {
		got, err := Select(c.sel)
		if err != nil {
			t.Errorf("Select(%q): %v", c.sel, err)
			continue
		}
		if len(got) != c.want {
			t.Errorf("Select(%q) = %d entries, want %d", c.sel, len(got), c.want)
		}
	}
	if _, err := Select("figNaN"); err == nil {
		t.Error("bogus selector accepted")
	}
	if _, err := Select(""); err == nil {
		t.Error("empty selector accepted")
	}
}

func TestScalePresets(t *testing.T) {
	for _, name := range ScaleNames() {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("warp"); err == nil {
		t.Error("unknown scale accepted")
	}
	sc, _ := ScaleByName("paper")
	if sc.MaxThreads != 0 || sc.WorkloadDiv != 0 {
		t.Errorf("paper scale should be the zero value, got %+v", sc)
	}
}

func TestScaleThreads(t *testing.T) {
	sc := Scale{MaxThreads: 8}
	got := sc.threads([]int{1, 2, 4, 8, 16, 80})
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("threads = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("threads = %v, want %v", got, want)
		}
	}
	got = Scale{MaxThreads: 0}.threads([]int{5})
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("uncapped ladder mangled: %v", got)
	}
	// A cap below the ladder yields the cap itself.
	got = Scale{MaxThreads: 3}.threads([]int{4, 8})
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("below-ladder cap: %v, want [3]", got)
	}
}

func TestNewSystemNames(t *testing.T) {
	heap, m := machine(1 << 8)
	for _, name := range SystemNames() {
		sys, err := NewSystem(name, m, heap, 1)
		if err != nil {
			t.Fatalf("NewSystem(%q): %v", name, err)
		}
		if sys == nil {
			t.Fatalf("NewSystem(%q) returned nil", name)
		}
	}
	if _, err := NewSystem("bogus", m, heap, 1); err == nil {
		t.Fatal("bogus system accepted")
	}
}

func TestRunCellRejectsUnknownSystem(t *testing.T) {
	e, _ := Lookup("fig6-low")
	if _, err := e.RunCell("silo", quickScale(), nil); err == nil {
		t.Fatal("fig6-low has no silo cell; RunCell accepted it")
	}
}

func TestSweepForCoversSweepEntries(t *testing.T) {
	ids := append(append([]string{}, FigureOrder...), "rofast", "killer",
		"ycsb-a", "ycsb-b", "ycsb-c", "vacation-low", "vacation-high")
	for _, id := range ids {
		s, ok := SweepFor(id, quickScale())
		if !ok || s == nil {
			t.Errorf("SweepFor(%q) missing", id)
			continue
		}
		if s.ID != id || s.Setup == nil {
			t.Errorf("SweepFor(%q) malformed: %+v", id, s)
		}
	}
	for _, id := range []string{"capacity", "zipf"} {
		if _, ok := SweepFor(id, quickScale()); ok {
			t.Errorf("%s is not sweep-backed; SweepFor returned one", id)
		}
	}
}

// Every registered experiment must be runnable at CI scale: every
// (entry × system) cell executes, produces records stamped with the
// entry's coordinates, and passes its post-run checks.
func TestEveryEntryRunsAtCIScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every (entry × system) cell; several seconds")
	}
	sc := quickScale()
	for _, e := range Registry() {
		for _, system := range e.Systems {
			e, system := e, system
			t.Run(e.ID+"/"+system, func(t *testing.T) {
				var streamed int
				recs, err := e.RunCell(system, sc, func(results.Record) { streamed++ })
				if err != nil {
					t.Fatal(err)
				}
				if len(recs) == 0 {
					t.Fatal("no records produced")
				}
				if streamed != len(recs) {
					t.Errorf("hook saw %d records, returned %d", streamed, len(recs))
				}
				for _, r := range recs {
					// Paired-variant cells suffix the system label
					// ("+ctrl") to render the comparison as columns.
					if r.Experiment != e.ID || (r.System != system && r.System != system+"+ctrl") {
						t.Errorf("record mis-stamped: %+v", r)
					}
					if r.Workload != e.Workload {
						t.Errorf("record workload %q, want %q", r.Workload, e.Workload)
					}
					if r.Commits == 0 {
						t.Errorf("cell %s/%s point %q/%d committed nothing", e.ID, r.System, r.Param, r.Threads)
					}
				}
			})
		}
	}
}

// A miniature end-to-end run of one hash-map figure and one TPC-C
// figure across all their systems.
func TestMiniatureFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature figure runs take a few seconds")
	}
	sc := quickScale()
	for _, id := range []string{"fig6-high", "fig9-high"} {
		t.Run(id, func(t *testing.T) {
			e, ok := Lookup(id)
			if !ok {
				t.Fatalf("%s missing", id)
			}
			recs, err := e.Run(sc, nil)
			if err != nil {
				t.Fatal(err)
			}
			perSystem := map[string]int{}
			for _, r := range recs {
				perSystem[r.System]++
			}
			for _, s := range e.Systems {
				if perSystem[s] == 0 {
					t.Errorf("system %s produced no records", s)
				}
			}
			var b strings.Builder
			results.MarkdownThroughput(&b, e.Title, recs)
			if !strings.Contains(b.String(), "si-htm") {
				t.Errorf("markdown rendering lost systems:\n%s", b.String())
			}
		})
	}
}

// The Zipfian-θ sweep must show capacity aborts varying with skew:
// under the uniform extreme plain HTM's batched transactions overflow
// the TMCAM, and growing skew concentrates the footprint onto hot
// chains until it fits — so HTM's capacity-abort rate at θ=0 must sit
// clearly above its rate at θ=0.99, while SI-HTM stays flat at zero.
func TestZipfSkewShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run takes a few seconds")
	}
	e, ok := Lookup("zipf")
	if !ok {
		t.Fatal("zipf entry missing")
	}
	recs, err := e.Run(quickScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	capRate := map[string]map[string]float64{}
	for _, r := range recs {
		if capRate[r.System] == nil {
			capRate[r.System] = map[string]float64{}
		}
		capRate[r.System][r.Param] = r.AbortPercent(r.AbortsCapacity)
	}
	uniform, skewed := capRate["htm"]["theta=0.00"], capRate["htm"]["theta=0.99"]
	if uniform < 10 {
		t.Errorf("htm capacity-abort rate at theta=0 is %.1f%%, want the uniform extreme above the cliff", uniform)
	}
	if skewed >= uniform {
		t.Errorf("htm capacity-abort rate did not fall with skew: theta=0 %.1f%% vs theta=0.99 %.1f%%", uniform, skewed)
	}
	for param, rate := range capRate["si-htm"] {
		if rate != 0 {
			t.Errorf("si-htm capacity-abort rate at %s is %.1f%%, want 0", param, rate)
		}
	}
}

// The capacity-cliff ablation must show the cliff: plain HTM's
// capacity-abort rate at 96 lines is high while SI-HTM's stays zero.
func TestCapacityCliffShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run takes a few seconds")
	}
	e, ok := Lookup("capacity")
	if !ok {
		t.Fatal("capacity entry missing")
	}
	recs, err := e.Run(quickScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var sawHTMCliff, sawSIFlat bool
	for _, r := range recs {
		if r.Param != "footprint=96" {
			continue
		}
		if r.System == "htm" && r.AbortsCapacity > 0 {
			sawHTMCliff = true
		}
		if r.System == "si-htm" && r.AbortsCapacity == 0 {
			sawSIFlat = true
		}
	}
	if !sawHTMCliff {
		t.Errorf("HTM capacity cliff at 96 lines not visible: %+v", recs)
	}
	if !sawSIFlat {
		t.Errorf("SI-HTM not flat at 96 lines: %+v", recs)
	}
}
