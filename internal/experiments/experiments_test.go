package experiments

import (
	"strings"
	"testing"
	"time"
)

func quickScale() Scale {
	return Scale{
		MaxThreads:  2,
		WorkloadDiv: 20,
		Warmup:      2 * time.Millisecond,
		Measure:     20 * time.Millisecond,
	}
}

func TestFigureRegistryIsComplete(t *testing.T) {
	figs := Figures(quickScale())
	if len(FigureOrder) != 10 {
		t.Fatalf("FigureOrder has %d entries, want 10 (Figures 6-10 × 2 panels)", len(FigureOrder))
	}
	for _, id := range FigureOrder {
		s, ok := figs[id]
		if !ok {
			t.Fatalf("figure %q missing from registry", id)
		}
		if s.ID != id {
			t.Errorf("figure %q has mismatched ID %q", id, s.ID)
		}
		if len(s.Systems) < 2 {
			t.Errorf("figure %q has %d systems", id, len(s.Systems))
		}
	}
}

func TestAllRegistry(t *testing.T) {
	list, byID := All(quickScale())
	if len(list) != 15 { // 10 figure panels + 5 ablations
		t.Fatalf("All() = %d experiments, want 15", len(list))
	}
	for _, e := range list {
		if byID[e.ID].ID != e.ID {
			t.Errorf("experiment %q not indexed", e.ID)
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
}

func TestScaleThreads(t *testing.T) {
	sc := Scale{MaxThreads: 8}
	got := sc.threads([]int{1, 2, 4, 8, 16, 80})
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("threads = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("threads = %v, want %v", got, want)
		}
	}
	// A cap below the ladder yields the cap itself.
	sc = Scale{MaxThreads: 3}
	got = Scale{MaxThreads: 0}.threads([]int{5})
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("uncapped ladder mangled: %v", got)
	}
	got = sc.threads([]int{4, 8})
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("below-ladder cap: %v, want [3]", got)
	}
}

func TestNewSystemNames(t *testing.T) {
	heap, m := machine(1 << 8)
	for _, name := range []string{"htm", "si-htm", "si-htm-noro", "si-htm-killer", "p8tm", "silo", "sgl"} {
		sys, err := newSystem(name, m, heap, 1)
		if err != nil {
			t.Fatalf("newSystem(%q): %v", name, err)
		}
		if sys == nil {
			t.Fatalf("newSystem(%q) returned nil", name)
		}
	}
	if _, err := newSystem("bogus", m, heap, 1); err == nil {
		t.Fatal("bogus system accepted")
	}
}

// A miniature end-to-end run of one hash-map figure and one TPC-C figure:
// the sweeps execute, produce reports with both panels, and pass their
// post-run checks.
func TestMiniatureFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature figure runs take a few seconds")
	}
	sc := quickScale()
	for _, id := range []string{"fig6-high", "fig9-high"} {
		t.Run(id, func(t *testing.T) {
			_, byID := All(sc)
			e := byID[id]
			report, err := e.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{"throughput", "aborts", "csv:", "si-htm"} {
				if !strings.Contains(report, want) {
					t.Errorf("report missing %q", want)
				}
			}
		})
	}
}

// The capacity-cliff ablation must show the cliff: plain HTM's
// capacity-abort rate at 96 lines is high while SI-HTM's stays zero.
func TestCapacityCliffShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run takes a few seconds")
	}
	e := CapacityCliff(quickScale())
	report, err := e.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var sawHTMCliff, sawSIFlat bool
	for _, line := range strings.Split(report, "\n") {
		f := strings.Fields(line)
		if len(f) != 5 {
			continue
		}
		if f[0] == "htm" && f[1] == "96" && f[3] != "0.00" {
			sawHTMCliff = true
		}
		if f[0] == "si-htm" && f[1] == "96" && f[3] == "0.00" {
			sawSIFlat = true
		}
	}
	if !sawHTMCliff {
		t.Errorf("HTM capacity cliff at 96 lines not visible:\n%s", report)
	}
	if !sawSIFlat {
		t.Errorf("SI-HTM not flat at 96 lines:\n%s", report)
	}
}
