package experiments

import (
	"testing"
	"time"
)

// TestStartAndRecoverDurable drives the crash-recovery pipeline behind
// `repro durable` / `repro recover` end to end (with a clean stop
// standing in for the SIGKILL CI applies): run, then rebuild + replay
// + invariant check from the run directory alone.
func TestStartAndRecoverDurable(t *testing.T) {
	for _, scenario := range DurableScenarioNames() {
		scenario := scenario
		t.Run(scenario, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			meta := DurableMeta{
				Scenario: scenario,
				System:   "si-htm",
				Scale:    "ci",
				Threads:  2,
				WindowNS: int64(200 * time.Microsecond),
			}
			if err := StartDurable(dir, meta, 250*time.Millisecond, 100*time.Millisecond, nil); err != nil {
				t.Fatal(err)
			}
			rep, err := RecoverDurable(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.InvariantsOK {
				t.Fatalf("invariants not verified: %+v", rep)
			}
			if rep.RecoveredSeq == 0 {
				t.Fatal("no transactions recovered")
			}
			if rep.Meta != meta {
				t.Fatalf("meta round-trip: %+v != %+v", rep.Meta, meta)
			}
		})
	}
}

// TestDurableCellPoint smokes one registry durable cell point,
// including its built-in recovery equivalence check.
func TestDurableCellPoint(t *testing.T) {
	sc := quickScale()
	hr, batch, err := durableYCSBPoint(ycsbSpecs[0], sc, "si-htm", 2, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Stats.Commits == 0 {
		t.Fatal("no commits measured")
	}
	if batch <= 0 {
		t.Fatalf("batch size %f", batch)
	}
}
