package experiments

import (
	"fmt"
	"sync"
)

// followerProbe is the slice of replica.Follower that readiness needs.
type followerProbe interface {
	Promoted() bool
	Watermark() uint64
	LeaderSeq() uint64
}

// readyProbe builds the /readyz callback: a draining server admits
// nothing; an unpromoted follower is additionally ready only while
// caught up with the leader or still making progress (a stalled
// watermark behind a live leader means reads serve an ever-staler
// snapshot). fol may be nil for leaders and volatile servers.
func readyProbe(draining func() bool, fol followerProbe) func() error {
	var mu sync.Mutex
	var lastWM uint64
	return func() error {
		if draining() {
			return fmt.Errorf("draining")
		}
		if fol != nil && !fol.Promoted() {
			wm, leader := fol.Watermark(), fol.LeaderSeq()
			mu.Lock()
			advanced := wm > lastWM
			if advanced {
				lastWM = wm
			}
			mu.Unlock()
			if wm < leader && !advanced {
				return fmt.Errorf("replication stalled: watermark %d behind leader %d and not advancing", wm, leader)
			}
		}
		return nil
	}
}
