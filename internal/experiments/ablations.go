package experiments

import (
	"fmt"

	"sihtm/internal/harness"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/results"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
	"sihtm/internal/workload/hashmap"
	"sihtm/internal/workload/tpcc"
)

// The ablations are this reproduction's additions to the paper's
// figures: parameter sweeps that isolate individual mechanisms (the
// capacity cliff, TMCAM sizing, the read-only fast path, the §6 killing
// policy, SMT placement). Sweep-shaped ablations (rofast, killer) reuse
// the figure machinery; the rest emit one record per swept parameter
// value with the Param field carrying the x-axis.

// sweepAblations maps the sweep-backed ablation ids to their sweep
// builders — the single place that records which ablations SweepFor can
// serve. Keep in lockstep with the sweepAblationEntry wiring below.
var sweepAblations = map[string]func(Scale) *harness.Sweep{
	"rofast": roFastPathSweep,
	"killer": killerSweep,
}

// capacityFootprints is the read-footprint x-axis of ablation A1,
// straddling the 64-line TMCAM.
var capacityFootprints = []int{8, 16, 32, 48, 60, 64, 72, 96, 128, 256}

// capacityEntry is ablation A1: single-threaded transactions with a
// growing read footprint and a single-line write set, contrasting plain
// HTM (reads consume the 64-line TMCAM → abort cliff) with SI-HTM
// (write-set-bounded → flat). This isolates the paper's §2.2/§3
// capacity claim from all concurrency effects.
func capacityEntry() Entry {
	e := Entry{
		ID:       "capacity",
		Title:    "Ablation A1: read-footprint sweep (single thread, TMCAM = 64 lines)",
		Workload: "synthetic",
		Systems:  []string{"htm", "si-htm"},
		Params:   fmt.Sprintf("footprint=%v writes=1", capacityFootprints),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		sc = sc.withDefaults()
		for _, fp := range capacityFootprints {
			heap, m := machine(fp*4 + 1<<12)
			lines := make([]memsim.Addr, fp)
			for i := range lines {
				lines[i] = heap.AllocLine()
			}
			out := heap.AllocLine()
			sys, err := NewSystem(system, m, heap, 1)
			if err != nil {
				return err
			}
			mkWorker := func(int) func() {
				return func() {
					sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
						var sum uint64
						for _, a := range lines {
							sum += ops.Read(a)
						}
						ops.Write(out, sum)
					})
				}
			}
			hr := harness.Run(sys, 1, sc.Warmup/4, sc.Measure/2, mkWorker)
			hook(e.record(fmt.Sprintf("footprint=%d", fp), hr))
		}
		return nil
	}
	return e
}

// tmcamSizes is the TMCAM x-axis of ablation A2.
var tmcamSizes = []int{16, 32, 64, 128, 256}

// tmcamEntry is ablation A2: the hash-map 90%-RO large workload at a
// fixed thread count under varying TMCAM sizes, showing the sensitivity
// of both systems to the hardware buffer.
func tmcamEntry() Entry {
	const threads = 8
	e := Entry{
		ID:       "tmcam",
		Title:    "Ablation A2: TMCAM size sweep (hash-map large 90% RO, 8 threads)",
		Workload: "hashmap",
		Systems:  []string{"htm", "si-htm"},
		Params:   fmt.Sprintf("tmcam=%v threads=%d buckets=%d chain=%d ro=%d%%", tmcamSizes, threads, lowBuckets, largeChain, roHeavy),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		sc = sc.withDefaults()
		cfg := hashmap.BenchConfig{
			Buckets:           lowBuckets,
			ElementsPerBucket: largeChain / sc.WorkloadDiv,
			ReadOnlyPercent:   roHeavy,
			Seed:              5,
		}
		if cfg.ElementsPerBucket < 2 {
			cfg.ElementsPerBucket = 2
		}
		for _, size := range tmcamSizes {
			heap := memsim.NewHeapLines(cfg.HeapLinesNeeded() + (1 << 14))
			m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper(), TMCAMLines: size})
			bench, err := hashmap.NewBenchmark(heap, cfg)
			if err != nil {
				return err
			}
			sys, err := NewSystem(system, m, heap, threads)
			if err != nil {
				return err
			}
			mkWorker := func(thread int) func() {
				w := bench.NewWorker(sys, thread)
				return w.Op
			}
			hr := harness.Run(sys, threads, sc.Warmup, sc.Measure, mkWorker)
			hook(e.record(fmt.Sprintf("tmcam=%d", size), hr))
		}
		return nil
	}
	return e
}

// roFastPathSweep is ablation A3 as a sweep: SI-HTM with and without the
// read-only fast path on the read-heavy hash-map, isolating the
// quiescence the fast path saves.
func roFastPathSweep(sc Scale) *harness.Sweep {
	return HashmapSweep("rofast",
		"Ablation A3: SI-HTM read-only fast path on vs off (hash-map large 90% RO, low contention)",
		lowBuckets, largeChain, roHeavy,
		[]string{"si-htm", "si-htm-noro"}, sc)
}

func roFastPathEntry() Entry {
	return sweepAblationEntry(Entry{
		ID:           "rofast",
		Title:        "Ablation A3: SI-HTM read-only fast path on vs off (hash-map large 90% RO, low contention)",
		Workload:     "hashmap",
		Systems:      []string{"si-htm", "si-htm-noro"},
		ThreadLadder: topology.PaperThreadLadder,
		Params:       fmt.Sprintf("buckets=%d chain=%d ro=%d%%", lowBuckets, largeChain, roHeavy),
	}, roFastPathSweep)
}

// killerSweep is ablation A4a as a sweep: the §6 killing policy on the
// high-contention 50% update hash-map, where laggards prolong
// quiescence.
func killerSweep(sc Scale) *harness.Sweep {
	return HashmapSweep("killer",
		"Ablation A4a: §6 killing policy (hash-map large 50% RO, high contention)",
		highBuckets, largeChain, roBalanced,
		[]string{"si-htm", "si-htm-killer"}, sc)
}

func killerEntry() Entry {
	return sweepAblationEntry(Entry{
		ID:           "killer",
		Title:        "Ablation A4a: §6 killing policy (hash-map large 50% RO, high contention)",
		Workload:     "hashmap",
		Systems:      []string{"si-htm", "si-htm-killer"},
		ThreadLadder: topology.PaperThreadLadder,
		Params:       fmt.Sprintf("buckets=%d chain=%d ro=%d%%", highBuckets, largeChain, roBalanced),
	}, killerSweep)
}

// sweepAblationEntry wires a sweep-backed ablation's run closure.
func sweepAblationEntry(e Entry, build func(sc Scale) *harness.Sweep) Entry {
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		_, err := build(sc).ExecuteSystem(system, func(_ string, hr harness.Result) {
			hook(e.record("", hr))
		})
		return err
	}
	return e
}

// smtEntry is ablation A5: a fixed 8-thread TPC-C run placed either one
// thread per core (SMT-1) or stacked on a single core (SMT-8), measuring
// the cost of TMCAM sharing directly.
func smtEntry() Entry {
	const threads = 8
	e := Entry{
		ID:       "smt",
		Title:    "Ablation A5: SMT placement (TPC-C standard mix, 8 threads, spread vs stacked)",
		Workload: "tpcc",
		Systems:  []string{"htm", "si-htm"},
		Params:   "placement={spread,stacked} warehouses=8 mix=standard",
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		sc = sc.withDefaults()
		for _, stacked := range []bool{false, true} {
			topo := topology.New(8, 8)
			placement := "spread"
			if stacked {
				topo = topology.New(1, 8)
				placement = "stacked"
			}
			cfg := tpcc.Config{Warehouses: 8, ScaleDiv: 10 * sc.WorkloadDiv, Seed: 9}
			heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
			m := htm.NewMachine(heap, htm.Config{Topology: topo})
			db, err := tpcc.NewDB(heap, cfg)
			if err != nil {
				return err
			}
			sys, err := NewSystem(system, m, heap, threads)
			if err != nil {
				return err
			}
			mkWorker := func(thread int) func() {
				w, err := db.NewWorker(sys, thread, tpcc.StandardMix)
				if err != nil {
					panic(err)
				}
				return func() { w.Op() }
			}
			hr := harness.Run(sys, threads, sc.Warmup, sc.Measure, mkWorker)
			if err := db.CheckConsistency(); err != nil {
				return fmt.Errorf("smt %s/%s: %w", system, placement, err)
			}
			hook(e.record(fmt.Sprintf("placement=%s", placement), hr))
		}
		return nil
	}
	return e
}
