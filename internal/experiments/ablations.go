package experiments

import (
	"fmt"
	"io"
	"strings"

	"sihtm/internal/harness"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
	"sihtm/internal/workload/hashmap"
	"sihtm/internal/workload/tpcc"
)

// Experiment is a runnable unit: a figure reproduction or an ablation.
type Experiment struct {
	ID, Title string
	// Run executes the experiment, streaming progress, and returns the
	// final report text.
	Run func(progress io.Writer) (string, error)
}

// sweepExperiment wraps a harness.Sweep into an Experiment whose report
// contains the figure's two panels plus the peak-speedup summary line.
func sweepExperiment(s *harness.Sweep, highlight string) Experiment {
	return Experiment{
		ID:    s.ID,
		Title: s.Title,
		Run: func(progress io.Writer) (string, error) {
			results, err := s.Execute(progress)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			harness.FormatThroughputTable(&b, s.Title, results)
			b.WriteString("\n")
			harness.FormatAbortTable(&b, s.Title, results)
			b.WriteString("\n")
			b.WriteString(harness.SpeedupSummary(results, highlight))
			b.WriteString("\n\ncsv:\n")
			harness.FormatCSV(&b, results)
			return b.String(), nil
		},
	}
}

// CapacityCliff is ablation A1: single-threaded transactions with a
// growing read footprint and a single-line write set, contrasting plain
// HTM (reads consume the 64-line TMCAM → abort cliff) with SI-HTM
// (write-set-bounded → flat). This isolates the paper's §2.2/§3 capacity
// claim from all concurrency effects.
func CapacityCliff(sc Scale) Experiment {
	sc = sc.withDefaults()
	footprints := []int{8, 16, 32, 48, 60, 64, 72, 96, 128, 256}
	systems := []string{"htm", "si-htm"}
	return Experiment{
		ID:    "capacity",
		Title: "Ablation A1: read-footprint sweep (single thread, TMCAM = 64 lines)",
		Run: func(progress io.Writer) (string, error) {
			var b strings.Builder
			fmt.Fprintf(&b, "Ablation A1 — abort/fall-back behaviour vs read footprint (lines)\n")
			fmt.Fprintf(&b, "%10s %10s %14s %14s %12s\n", "system", "footprint", "tx/s", "capacity-ab/op", "fallback/op")
			for _, fp := range footprints {
				for _, name := range systems {
					heap, m := machine(fp*4 + 1<<12)
					lines := make([]memsim.Addr, fp)
					for i := range lines {
						lines[i] = heap.AllocLine()
					}
					out := heap.AllocLine()
					sys, err := newSystem(name, m, heap, 1)
					if err != nil {
						return "", err
					}
					mkWorker := func(int) func() {
						return func() {
							sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
								var sum uint64
								for _, a := range lines {
									sum += ops.Read(a)
								}
								ops.Write(out, sum)
							})
						}
					}
					r := harness.Run(sys, 1, sc.Warmup/4, sc.Measure/2, mkWorker)
					ops := float64(r.Stats.Commits)
					if ops == 0 {
						ops = 1
					}
					fmt.Fprintf(&b, "%10s %10d %14.0f %14.2f %12.2f\n",
						name, fp, r.Throughput,
						float64(r.Stats.Aborts[stats.AbortCapacity])/ops,
						float64(r.Stats.Fallbacks)/ops)
					if progress != nil {
						fmt.Fprintf(progress, "  capacity: %s fp=%d done\n", name, fp)
					}
				}
			}
			return b.String(), nil
		},
	}
}

// TMCAMSize is ablation A2: the hash-map 90%-RO large workload at a fixed
// thread count under varying TMCAM sizes, showing the sensitivity of both
// systems to the hardware buffer.
func TMCAMSize(sc Scale) Experiment {
	sc = sc.withDefaults()
	sizes := []int{16, 32, 64, 128, 256}
	systems := []string{"htm", "si-htm"}
	const threads = 8
	return Experiment{
		ID:    "tmcam",
		Title: "Ablation A2: TMCAM size sweep (hash-map large 90% RO, 8 threads)",
		Run: func(progress io.Writer) (string, error) {
			var b strings.Builder
			fmt.Fprintf(&b, "Ablation A2 — throughput vs TMCAM lines (8 threads)\n")
			fmt.Fprintf(&b, "%10s %8s %14s %16s\n", "system", "tmcam", "tx/s", "capacity-aborts%")
			cfg := hashmap.BenchConfig{
				Buckets:           lowBuckets,
				ElementsPerBucket: largeChain / sc.WorkloadDiv,
				ReadOnlyPercent:   roHeavy,
				Seed:              5,
			}
			if cfg.ElementsPerBucket < 2 {
				cfg.ElementsPerBucket = 2
			}
			for _, size := range sizes {
				for _, name := range systems {
					heap := memsim.NewHeapLines(cfg.HeapLinesNeeded() + (1 << 14))
					m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper(), TMCAMLines: size})
					bench, err := hashmap.NewBenchmark(heap, cfg)
					if err != nil {
						return "", err
					}
					sys, err := newSystem(name, m, heap, threads)
					if err != nil {
						return "", err
					}
					mkWorker := func(thread int) func() {
						w := bench.NewWorker(sys, thread, uint64(77+thread))
						return w.Op
					}
					r := harness.Run(sys, threads, sc.Warmup, sc.Measure, mkWorker)
					fmt.Fprintf(&b, "%10s %8d %14.0f %15.1f%%\n",
						name, size, r.Throughput, r.AbortPercent(stats.AbortCapacity))
					if progress != nil {
						fmt.Fprintf(progress, "  tmcam: %s size=%d done\n", name, size)
					}
				}
			}
			return b.String(), nil
		},
	}
}

// ROFastPath is ablation A3: SI-HTM with and without the read-only fast
// path on the read-heavy hash-map, isolating the quiescence the fast path
// saves.
func ROFastPath(sc Scale) Experiment {
	sc = sc.withDefaults()
	s := HashmapSweep("rofast",
		"Ablation A3: SI-HTM read-only fast path on vs off (hash-map large 90% RO, low contention)",
		lowBuckets, largeChain, roHeavy,
		[]string{"si-htm", "si-htm-noro"}, sc)
	return sweepExperiment(s, "si-htm")
}

// KillerPolicy is ablation A4a: the §6 killing policy on the
// high-contention 50% update hash-map, where laggards prolong quiescence.
func KillerPolicy(sc Scale) Experiment {
	sc = sc.withDefaults()
	s := HashmapSweep("killer",
		"Ablation A4a: §6 killing policy (hash-map large 50% RO, high contention)",
		highBuckets, largeChain, roBalanced,
		[]string{"si-htm", "si-htm-killer"}, sc)
	return sweepExperiment(s, "si-htm-killer")
}

// SMTPlacement is ablation A5: a fixed 8-thread TPC-C run placed either
// one thread per core (SMT-1) or stacked on a single core (SMT-8),
// measuring the cost of TMCAM sharing directly.
func SMTPlacement(sc Scale) Experiment {
	sc = sc.withDefaults()
	systems := []string{"htm", "si-htm"}
	const threads = 8
	return Experiment{
		ID:    "smt",
		Title: "Ablation A5: SMT placement (TPC-C standard mix, 8 threads, spread vs stacked)",
		Run: func(progress io.Writer) (string, error) {
			var b strings.Builder
			fmt.Fprintf(&b, "Ablation A5 — 8 threads spread (8 cores) vs stacked (1 core × SMT-8)\n")
			fmt.Fprintf(&b, "%10s %10s %14s %16s\n", "system", "placement", "tx/s", "capacity-aborts%")
			for _, stacked := range []bool{false, true} {
				topo := topology.New(8, 8)
				if stacked {
					topo = topology.New(1, 8)
				}
				for _, name := range systems {
					cfg := tpcc.Config{Warehouses: 8, ScaleDiv: 10 * sc.WorkloadDiv, Seed: 9}
					heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
					m := htm.NewMachine(heap, htm.Config{Topology: topo})
					db, err := tpcc.NewDB(heap, cfg)
					if err != nil {
						return "", err
					}
					sys, err := newSystem(name, m, heap, threads)
					if err != nil {
						return "", err
					}
					mkWorker := func(thread int) func() {
						w, err := db.NewWorker(sys, thread, tpcc.StandardMix, uint64(55+thread))
						if err != nil {
							panic(err)
						}
						return func() { w.Op() }
					}
					r := harness.Run(sys, threads, sc.Warmup, sc.Measure, mkWorker)
					placement := "spread"
					if stacked {
						placement = "stacked"
					}
					fmt.Fprintf(&b, "%10s %10s %14.0f %15.1f%%\n",
						name, placement, r.Throughput, r.AbortPercent(stats.AbortCapacity))
					if err := db.CheckConsistency(); err != nil {
						return "", fmt.Errorf("smt %s/%s: %w", name, placement, err)
					}
					if progress != nil {
						fmt.Fprintf(progress, "  smt: %s %s done\n", name, placement)
					}
				}
			}
			return b.String(), nil
		},
	}
}

// All returns every experiment (figures first, then ablations), keyed and
// ordered.
func All(sc Scale) ([]Experiment, map[string]Experiment) {
	var list []Experiment
	figs := Figures(sc)
	for _, id := range FigureOrder {
		list = append(list, sweepExperiment(figs[id], "si-htm"))
	}
	list = append(list,
		CapacityCliff(sc),
		TMCAMSize(sc),
		ROFastPath(sc),
		KillerPolicy(sc),
		SMTPlacement(sc),
	)
	byID := make(map[string]Experiment, len(list))
	for _, e := range list {
		byID[e.ID] = e
	}
	return list, byID
}
