package experiments

import (
	"fmt"

	"sihtm/internal/harness"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/results"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
	"sihtm/internal/workload/engine"
	"sihtm/internal/workload/vacation"
	"sihtm/internal/workload/ycsb"
)

// The scenario entries are the workload-engine additions to the paper's
// figures: YCSB-style KV mixes (over both engine backends), the
// vacation travel-reservation application, and the Zipfian-θ sweep that
// shows how capacity aborts depend on access skew. They compare the
// systems the capacity argument is about — plain HTM, SI-HTM's ROTs and
// the serial SGL floor.
var scenarioSystems = []string{"htm", "si-htm", "sgl"}

// scenarioWorkloads marks the workload families of the "scenarios"
// selector group (the durable and net families form their own groups).
var scenarioWorkloads = map[string]bool{"ycsb": true, "vacation": true}

// scaledKeys shrinks a base keyspace by the scale's divisor, keeping a
// floor so chains/trees stay non-degenerate.
func scaledKeys(base int, sc Scale, floor int) int {
	n := base / sc.WorkloadDiv
	if n < floor {
		n = floor
	}
	return n
}

// ycsbSpec declares one YCSB registry entry.
type ycsbSpec struct {
	id, title string
	workload  ycsb.Workload
	backend   string // "hashmap" or "btree"
	baseKeys  int
	chain     int // hashmap: target chain length (buckets = keys/chain)
	opsPerTx  int
}

var ycsbSpecs = []ycsbSpec{
	{id: "ycsb-a", workload: ycsb.A, backend: "hashmap", baseKeys: 8192, chain: 8, opsPerTx: 8,
		title: "YCSB-A: update-heavy 50r/50rmw, zipf(0.99), hash-map backend"},
	{id: "ycsb-b", workload: ycsb.B, backend: "hashmap", baseKeys: 8192, chain: 8, opsPerTx: 8,
		title: "YCSB-B: read-mostly 95r/5rmw, zipf(0.99), hash-map backend"},
	{id: "ycsb-c", workload: ycsb.C, backend: "btree", baseKeys: 16384, opsPerTx: 8,
		title: "YCSB-C: read-only 90r/10scan, zipf(0.99), B+tree index backend"},
}

// buildYCSB constructs the workload of one (spec × threads) point.
func (y ycsbSpec) build(sc Scale, threads int) (*htm.Machine, engine.Backend, *engine.Driver, error) {
	keys := scaledKeys(y.baseKeys, sc, 128)
	spec, err := ycsb.Spec(ycsb.Config{
		Workload: y.workload,
		Keys:     keys,
		OpsPerTx: y.opsPerTx,
		Seed:     uint64(threads)*19 + 5,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	var (
		heap    *memsim.Heap
		backend engine.Backend
	)
	if y.backend == "btree" {
		heap = memsim.NewHeapLines(engine.BTreeHeapLines(spec))
		backend = engine.NewBTreeBackend(heap)
	} else {
		buckets := keys / y.chain
		if buckets < 1 {
			buckets = 1
		}
		heap = memsim.NewHeapLines(engine.HashmapHeapLines(spec, buckets))
		backend = engine.NewHashmapBackend(heap, buckets)
	}
	m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
	engine.Populate(backend, spec)
	d, err := engine.New(spec, backend)
	if err != nil {
		return nil, nil, nil, err
	}
	return m, backend, d, nil
}

// engineCheck verifies a backend after a run: structural invariants
// plus exact population conservation for insert/delete-free mixes (all
// the YCSB mixes only read and overwrite, so the key count must not
// move).
func engineCheck(backend engine.Backend, keys int) error {
	if err := backend.Check(); err != nil {
		return err
	}
	if d, ok := backend.(*engine.DurableBackend); ok {
		backend = d.Unwrap()
	}
	var got int
	switch b := backend.(type) {
	case *engine.HashmapBackend:
		got = b.Map().Size()
	case *engine.BTreeBackend:
		got = b.Tree().Count(b.Direct())
	default:
		return nil
	}
	if got != keys {
		return fmt.Errorf("population drifted: %d keys, want %d", got, keys)
	}
	return nil
}

// ycsbSweep builds the thread-ladder sweep of one YCSB entry.
func ycsbSweep(y ycsbSpec, sc Scale) *harness.Sweep {
	sc = sc.withDefaults()
	return &harness.Sweep{
		ID:           y.id,
		Title:        y.title,
		Systems:      scenarioSystems,
		ThreadCounts: sc.threads(topology.PaperThreadLadder),
		Warmup:       sc.Warmup,
		Measure:      sc.Measure,
		Setup: func(system string, threads int) (tm.System, func(int) func(), func() error, error) {
			m, backend, d, err := y.build(sc, threads)
			if err != nil {
				return nil, nil, nil, err
			}
			heap := m.Heap()
			sys, err := NewSystem(system, m, heap, threads)
			if err != nil {
				return nil, nil, nil, err
			}
			keys := d.Spec().Keys
			check := func() error { return engineCheck(backend, keys) }
			return sys, d.Workers(sys), check, nil
		},
	}
}

// ycsbEntry builds the registry entry for one YCSB spec.
func ycsbEntry(y ycsbSpec) Entry {
	spec, err := ycsb.Spec(ycsb.Config{Workload: y.workload, Keys: y.baseKeys, OpsPerTx: y.opsPerTx})
	if err != nil {
		panic(err)
	}
	e := Entry{
		ID:           y.id,
		Title:        y.title,
		Workload:     "ycsb",
		Systems:      scenarioSystems,
		ThreadLadder: topology.PaperThreadLadder,
		Params:       fmt.Sprintf("%s backend=%s", spec.Params(), y.backend),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		_, err := ycsbSweep(y, sc).ExecuteSystem(system, func(_ string, hr harness.Result) {
			hook(e.record("", hr))
		})
		return err
	}
	return e
}

// vacationSpec declares one vacation registry entry.
type vacationSpec struct {
	id, title                    string
	queryN, rangePct             int
	browse, reserve, del, upd    int
	baseRelations, baseCustomers int
}

var vacationSpecs = []vacationSpec{
	{id: "vacation-low", queryN: 2, rangePct: 90,
		browse: 50, reserve: 40, del: 5, upd: 5,
		baseRelations: 2048, baseCustomers: 512,
		title: "Vacation (low contention): 2-item tasks over 90% of the tables"},
	{id: "vacation-high", queryN: 8, rangePct: 10,
		browse: 30, reserve: 60, del: 5, upd: 5,
		baseRelations: 2048, baseCustomers: 256,
		title: "Vacation (high contention): 8-item tasks over 10% of the tables"},
}

// config builds the scaled vacation configuration of one point.
func (v vacationSpec) config(sc Scale, threads int) vacation.Config {
	return vacation.Config{
		Relations:         scaledKeys(v.baseRelations, sc, 64),
		Customers:         scaledKeys(v.baseCustomers, sc, 16),
		QueryN:            v.queryN,
		QueryRangePct:     v.rangePct,
		BrowsePct:         v.browse,
		ReservePct:        v.reserve,
		DeleteCustomerPct: v.del,
		UpdateTablesPct:   v.upd,
		Seed:              uint64(threads)*23 + 9,
	}
}

// vacationSweep builds the thread-ladder sweep of one vacation entry.
func vacationSweep(v vacationSpec, sc Scale) *harness.Sweep {
	sc = sc.withDefaults()
	return &harness.Sweep{
		ID:           v.id,
		Title:        v.title,
		Systems:      scenarioSystems,
		ThreadCounts: sc.threads(topology.PaperThreadLadder),
		Warmup:       sc.Warmup,
		Measure:      sc.Measure,
		Setup: func(system string, threads int) (tm.System, func(int) func(), func() error, error) {
			cfg := v.config(sc, threads)
			heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
			m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
			mgr, err := vacation.NewManager(heap, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			sys, err := NewSystem(system, m, heap, threads)
			if err != nil {
				return nil, nil, nil, err
			}
			mkWorker := func(thread int) func() {
				w, err := mgr.NewWorker(sys, thread)
				if err != nil {
					panic(err)
				}
				return func() { w.Op() }
			}
			return sys, mkWorker, mgr.CheckConsistency, nil
		},
	}
}

// vacationEntry builds the registry entry for one vacation spec.
func vacationEntry(v vacationSpec) Entry {
	e := Entry{
		ID:           v.id,
		Title:        v.title,
		Workload:     "vacation",
		Systems:      scenarioSystems,
		ThreadLadder: topology.PaperThreadLadder,
		Params: fmt.Sprintf("relations=%d customers=%d queryN=%d range=%d%% mix=%d/%d/%d/%d",
			v.baseRelations, v.baseCustomers, v.queryN, v.rangePct, v.browse, v.reserve, v.del, v.upd),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		_, err := vacationSweep(v, sc).ExecuteSystem(system, func(_ string, hr harness.Result) {
			hook(e.record("", hr))
		})
		return err
	}
	return e
}

// zipfThetas is the skew x-axis of the Zipfian sweep.
var zipfThetas = []float64{0, 0.4, 0.7, 0.9, 0.99}

// zipfEntry is the Zipfian-θ capacity sweep: the YCSB-B mix batched
// into 16-op transactions over hash-map chains of ~8 nodes, at a fixed
// thread count, across growing skew. Under the uniform extreme a
// transaction touches ~16 distinct chains (≈80+ lines ≫ the 64-line
// TMCAM) and plain HTM lives above the capacity cliff; at θ = 0.99 the
// draws concentrate on few hot chains, the distinct-line footprint
// falls below the TMCAM and the capacity-abort rate falls with it,
// while SI-HTM stays flat throughout (read-only batches are
// uninstrumented and ROT reads untracked).
func zipfEntry() Entry {
	const (
		threads  = 8
		baseKeys = 4096
		chain    = 8
		opsPerTx = 16
	)
	e := Entry{
		ID:       "zipf",
		Title:    "Zipfian-θ sweep: capacity-abort rate vs access skew (YCSB-B, 16 ops/tx, 8 threads)",
		Workload: "ycsb",
		Systems:  scenarioSystems,
		Params:   fmt.Sprintf("theta=%v keys=%d chain=%d ops/tx=%d threads=%d", zipfThetas, baseKeys, chain, opsPerTx, threads),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		sc = sc.withDefaults()
		n := threads
		if sc.MaxThreads > 0 && n > sc.MaxThreads {
			n = sc.MaxThreads
		}
		for _, theta := range zipfThetas {
			keys := scaledKeys(baseKeys, sc, 128)
			spec, err := ycsb.Spec(ycsb.Config{
				Workload: ycsb.B,
				Keys:     keys,
				Theta:    theta,
				// Theta 0 must stay uniform rather than defaulting.
				UniformKeys: theta == 0,
				OpsPerTx:    opsPerTx,
				Seed:        31,
			})
			if err != nil {
				return err
			}
			buckets := keys / chain
			heap := memsim.NewHeapLines(engine.HashmapHeapLines(spec, buckets))
			m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
			backend := engine.NewHashmapBackend(heap, buckets)
			engine.Populate(backend, spec)
			d, err := engine.New(spec, backend)
			if err != nil {
				return err
			}
			sys, err := NewSystem(system, m, heap, n)
			if err != nil {
				return err
			}
			hr := harness.Run(sys, n, sc.Warmup, sc.Measure, d.Workers(sys))
			if err := engineCheck(backend, keys); err != nil {
				return fmt.Errorf("zipf %s/theta=%.2f: %w", system, theta, err)
			}
			hook(e.record(fmt.Sprintf("theta=%.2f", theta), hr))
		}
		return nil
	}
	return e
}

// scenarioEntries builds all scenario entries in presentation order.
func scenarioEntries() []Entry {
	entries := make([]Entry, 0, len(ycsbSpecs)+len(vacationSpecs)+1)
	for _, y := range ycsbSpecs {
		entries = append(entries, ycsbEntry(y))
	}
	entries = append(entries, zipfEntry())
	for _, v := range vacationSpecs {
		entries = append(entries, vacationEntry(v))
	}
	return entries
}

// scenarioSweeps serves SweepFor for the sweep-backed scenario entries.
var scenarioSweeps = func() map[string]func(Scale) *harness.Sweep {
	m := map[string]func(Scale) *harness.Sweep{}
	for _, y := range ycsbSpecs {
		y := y
		m[y.id] = func(sc Scale) *harness.Sweep { return ycsbSweep(y, sc) }
	}
	for _, v := range vacationSpecs {
		v := v
		m[v.id] = func(sc Scale) *harness.Sweep { return vacationSweep(v, sc) }
	}
	return m
}()
