package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sihtm/internal/alert"
	"sihtm/internal/durable"
	"sihtm/internal/harness"
	"sihtm/internal/replica"
	"sihtm/internal/results"
	"sihtm/internal/server"
	"sihtm/internal/stats"
	"sihtm/internal/telemetry"
	"sihtm/internal/topology"
	"sihtm/internal/trace"
	"sihtm/internal/tsdb"
	"sihtm/internal/wire"
	"sihtm/internal/workload/engine"
	"sihtm/internal/workload/ycsb"
)

// The net scenario entries measure the workload engine over the
// networked service layer: the same YCSB specs, driven through
// engine.RemoteBackend against a wire-protocol server whose admission
// stage coalesces pipelined client transactions into size-bounded
// hardware transactions. Throughput and commits are measured
// client-side; the abort taxonomy, the achieved batch size and the
// per-op latency percentiles come from the server's statistics,
// differenced over the measurement window.
//
// Each registry cell self-hosts a loopback server, so `repro run`
// covers the whole layer hermetically; `repro loadgen` reuses the same
// point runner against an external `repro serve` address.

// netBatchDefault is the admission bound (ops per transaction) of the
// net-ycsb-a and net-durable-ycsb-a entries.
const netBatchDefault = 32

// netBatches is the admission-bound ladder of the net-batch-window
// sweep: from no coalescing to far past the 64-line TMCAM.
var netBatches = []int{1, 4, 16, 64, 256}

// netWindowThreads is the client worker count of the batch sweep, and
// netWindowShards the (smaller) executor count its self-hosted servers
// run: concentrating the pipelined stream onto two queues is what lets
// the achieved batch size actually track the swept bound instead of
// being capped by per-shard queue depth.
const (
	netWindowThreads = 8
	netWindowShards  = 2
)

// netAdmitWait is the admission grace the batch sweep serves with: an
// executor holding a non-full batch waits this long for straggling
// pipelined requests, so the swept bound is actually approached instead
// of being limited by instantaneous queue depth.
const netAdmitWait = 100 * time.Microsecond

// NetPoint describes one remote measurement.
type NetPoint struct {
	// Scenario names the hosted YCSB build ("ycsb-a", "ycsb-b", "ycsb-c").
	Scenario string
	// System is the server's concurrency control; it labels the records.
	System string
	// Addr is the server address; empty self-hosts a loopback server for
	// the point (build, populate, serve, measure, tear down).
	Addr string
	// Threads is the client worker (session) count.
	Threads int
	// Shards is the self-hosted server's executor count (0 = Threads).
	// Fewer shards than clients concentrate the pipelined stream onto
	// fewer queues, which is what lets admission batches approach large
	// bounds: in-flight ops are capped by clients × ops/tx, and that
	// budget spreads across the shards.
	Shards int
	// Conns is the client connection-pool size (0 = ⌈Threads/2⌉, so
	// sessions share pipelined connections).
	Conns int
	// Batch sets the server's admission bound for the point (0 keeps the
	// server's current bound).
	Batch int
	// AdmitWait sets the server's admission grace period for the point
	// (0 keeps the server's current value).
	AdmitWait time.Duration
	// Durable (self-host only) attaches a WAL store, checkpoints fuzzily
	// during the run, and verifies digest-exact recovery afterwards.
	Durable bool
	// Window is the durable group-commit fsync window.
	Window time.Duration
	// P99Target (self-host only) starts the adaptive admission
	// controller against this server-side p99 service-latency target.
	P99Target time.Duration
	// CtrlInterval (self-host only) overrides the controller's
	// adjustment interval.
	CtrlInterval time.Duration
}

// NetExtras carries the measurements that exist only over the network.
type NetExtras struct {
	// P50 and P99 are per-op service-latency percentiles (server-side,
	// admission to reply encode), over the measurement window.
	P50, P99 time.Duration
	// BatchAvg is the achieved ops-per-transaction of the admission
	// batching during the window.
	BatchAvg float64
	// AdmitP99 is the p99 of the admission-wait stage (arrival to batch
	// execution start) over the window.
	AdmitP99 time.Duration
	// Fsyncs counts the window's fsyncs and FsyncP99/AckP99 the p99 of
	// fsync wall time and of the commit-acknowledgement wait (durable
	// servers only; zero otherwise).
	Fsyncs   uint64
	FsyncP99 time.Duration
	AckP99   time.Duration
}

// netSpec rebuilds the client-side Spec matching a server build: the
// same keyspace sizing rule build() uses, so keys drawn by remote
// workers always exist server-side.
func netSpec(y ycsbSpec, sc Scale, threads int) (engine.Spec, error) {
	return ycsb.Spec(ycsb.Config{
		Workload: y.workload,
		Keys:     scaledKeys(y.baseKeys, sc, 128),
		OpsPerTx: y.opsPerTx,
		Seed:     uint64(threads)*19 + 5,
	})
}

// ycsbSpecByID resolves a ycsb scenario id.
func ycsbSpecByID(id string) (ycsbSpec, error) {
	for _, y := range ycsbSpecs {
		if y.id == id {
			return y, nil
		}
	}
	return ycsbSpec{}, fmt.Errorf("experiments: unknown net scenario %q (known: ycsb-a, ycsb-b, ycsb-c)", id)
}

// RunNetPoint executes one remote measurement and returns the merged
// harness result: client-observed commits and throughput, server-side
// abort taxonomy, plus the latency extras.
func RunNetPoint(p NetPoint, sc Scale) (harness.Result, NetExtras, error) {
	return runNetPoint(p, sc, nil)
}

// runNetPoint is RunNetPoint with an optional mid-measurement observer:
// when non-nil, mid runs halfway through the measurement window while
// the workers are still driving load (the net-observe cell scrapes the
// live /metrics endpoint there). mid receives the self-hosted server (nil
// when the point targets an external address).
func runNetPoint(p NetPoint, sc Scale, mid func(h *netHost) error) (harness.Result, NetExtras, error) {
	sc = sc.withDefaults()
	fail := func(err error) (harness.Result, NetExtras, error) { return harness.Result{}, NetExtras{}, err }
	y, err := ycsbSpecByID(p.Scenario)
	if err != nil {
		return fail(err)
	}
	if p.Threads <= 0 {
		return fail(fmt.Errorf("experiments: net point needs a positive thread count"))
	}
	conns := p.Conns
	if conns <= 0 {
		conns = (p.Threads + 1) / 2
	}

	// Self-host a loopback server when no address is given.
	addr := p.Addr
	var host *netHost
	if addr == "" {
		host, err = startNetHost(y, p, sc)
		if err != nil {
			return fail(err)
		}
		defer host.close()
		addr = host.addr.String()
	}

	rb, err := engine.DialRemote(addr, conns)
	if err != nil {
		return fail(err)
	}
	defer rb.Close()
	if p.Batch > 0 || p.AdmitWait > 0 {
		ctrl := wire.Ctrl{BatchMax: p.Batch}
		if p.AdmitWait > 0 {
			ctrl.AdmitWaitUs = int(p.AdmitWait / time.Microsecond)
		}
		if err := rb.Ctrl(ctrl); err != nil {
			return fail(err)
		}
	}
	spec, err := netSpec(y, sc, p.Threads)
	if err != nil {
		return fail(err)
	}
	d, err := engine.New(spec, rb)
	if err != nil {
		return fail(err)
	}
	csys := engine.NewRemoteSystem(p.System, p.Threads)

	// The run loop mirrors harness.Run but snapshots BOTH sides at the
	// window edges, so the server-side abort/latency delta covers exactly
	// the client's measurement window.
	var stop atomic.Bool
	var wg sync.WaitGroup
	mk := d.Workers(csys)
	for id := 0; id < p.Threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			op := mk(id)
			for !stop.Load() {
				op()
			}
		}(id)
	}
	// Workers must be quiesced before any connection teardown (the
	// session protocol panics on transport failure), so every exit path
	// below stops them first.
	stopWorkers := func() { stop.Store(true); wg.Wait() }
	time.Sleep(sc.Warmup)
	sv0, err := rb.Stats()
	if err != nil {
		stopWorkers()
		return fail(err)
	}
	cl0 := csys.Collector().Snapshot()
	start := time.Now()
	if mid == nil {
		time.Sleep(sc.Measure)
	} else {
		time.Sleep(sc.Measure / 2)
		if err := mid(host); err != nil {
			stopWorkers()
			return fail(err)
		}
		time.Sleep(sc.Measure - sc.Measure/2)
	}
	sv1, err := rb.Stats()
	elapsed := time.Since(start)
	cl1 := csys.Collector().Snapshot()
	stopWorkers()
	if err != nil {
		return fail(err)
	}

	client := cl1.Sub(cl0)
	srvDelta := sv1.Stats.Sub(sv0.Stats)
	merged := stats.Stats{
		// Client side: committed transactions (the throughput basis) and
		// their read-only share.
		Commits:   client.Commits,
		CommitsRO: client.CommitsRO,
		// Server side: abort taxonomy, fall-backs and wait spins of the
		// batched transactions that served them.
		Aborts:    srvDelta.Aborts,
		Fallbacks: srvDelta.Fallbacks,
		WaitSpins: srvDelta.WaitSpins,
	}
	hr := harness.Result{
		System:     p.System,
		Threads:    p.Threads,
		Elapsed:    elapsed,
		Stats:      merged,
		Throughput: float64(client.Commits) / elapsed.Seconds(),
	}
	hist := sv1.Hist.Sub(sv0.Hist)
	extras := NetExtras{P50: hist.Quantile(0.5), P99: hist.Quantile(0.99)}
	if batches := sv1.Batches - sv0.Batches; batches > 0 {
		extras.BatchAvg = float64(sv1.BatchedOps-sv0.BatchedOps) / float64(batches)
	}
	if t1, t0 := sv1.Telemetry, sv0.Telemetry; t1 != nil && t0 != nil {
		extras.AdmitP99 = t1.AdmitWaitHist.Sub(t0.AdmitWaitHist).Quantile(0.99)
		extras.Fsyncs = t1.WalFsyncs - t0.WalFsyncs
		extras.FsyncP99 = t1.FsyncHist.Sub(t0.FsyncHist).Quantile(0.99)
		extras.AckP99 = t1.AckWaitHist.Sub(t0.AckWaitHist).Quantile(0.99)
	}

	// Server-side structural check over the wire (quiesces executors).
	if err := rb.Check(); err != nil {
		return fail(err)
	}
	// Self-hosted points verify in-process invariants (population
	// conservation) and, durably, digest-exact recovery.
	if host != nil {
		if err := host.verify(y, p, sc); err != nil {
			return fail(err)
		}
	}
	return hr, extras, nil
}

// netHost is one self-hosted loopback server and its in-process guts.
type netHost struct {
	srv     *server.Server
	addr    net.Addr
	backend engine.Backend
	keys    int
	cell    *durableCell
	served  chan error
}

// startNetHost builds the scenario, optionally attaches durability, and
// serves it on an ephemeral loopback port.
func startNetHost(y ycsbSpec, p NetPoint, sc Scale) (*netHost, error) {
	m, backend, d, err := y.build(sc, p.Threads)
	if err != nil {
		return nil, err
	}
	shards := p.Shards
	if shards <= 0 {
		shards = p.Threads
	}
	heap := m.Heap()
	sys, err := NewSystem(p.System, m, heap, shards)
	if err != nil {
		return nil, err
	}
	h := &netHost{backend: backend, keys: d.Spec().Keys, served: make(chan error, 1)}
	cfg := server.Config{
		Backend:      backend,
		System:       sys,
		Shards:       shards,
		BatchMax:     netBatchDefault,
		Scenario:     y.id,
		P99Target:    p.P99Target,
		CtrlInterval: p.CtrlInterval,
	}
	if p.Durable {
		h.cell, err = openDurableCell(heap, m, p.Window)
		if err != nil {
			return nil, err
		}
		cfg.Backend = engine.NewDurableBackend(backend, h.cell.store)
		cfg.System = h.cell.store.Attach(sys, m)
		cfg.Store = h.cell.store
		// No drain-time checkpoint: recovery must reconstruct the live
		// heap from the fuzzy checkpoint plus the log prefix alone — the
		// same image a SIGKILL would leave behind.
		h.cell.startCheckpointer(sc.Measure / 3)
	}
	h.srv, err = server.New(cfg)
	if err != nil {
		if h.cell != nil {
			h.cell.close()
		}
		return nil, err
	}
	h.addr, err = h.srv.Listen("127.0.0.1:0")
	if err != nil {
		if h.cell != nil {
			h.cell.close()
		}
		return nil, err
	}
	go func() { h.served <- h.srv.Serve() }()
	return h, nil
}

// verify drains the server and re-checks invariants in-process; durable
// hosts additionally prove digest-exact recovery: rebuild the
// deterministic base, restore fuzzy checkpoint + log, compare to the
// live heap word for word, and re-run the workload checks on the
// recovered state.
func (h *netHost) verify(y ycsbSpec, p NetPoint, sc Scale) error {
	if err := h.srv.Drain(); err != nil {
		return err
	}
	if err := <-h.served; err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if h.cell != nil {
		if err := h.cell.stopCheckpointer(); err != nil {
			return fmt.Errorf("checkpointer: %w", err)
		}
	}
	if err := engineCheck(h.backend, h.keys); err != nil {
		return err
	}
	if h.cell == nil {
		return nil
	}
	m2, backend2, d2, err := y.build(sc, p.Threads)
	if err != nil {
		return err
	}
	if _, err := durable.Recover(m2.Heap(), h.cell.ckptPath(), h.cell.logPath()); err != nil {
		return err
	}
	if err := compareHeaps(h.cell.store.Heap(), m2.Heap()); err != nil {
		return err
	}
	if err := engineCheck(backend2, d2.Spec().Keys); err != nil {
		return fmt.Errorf("recovered state: %w", err)
	}
	return nil
}

// close tears the host down (idempotent with verify's drain).
func (h *netHost) close() {
	h.srv.Drain()
	if h.cell != nil {
		h.cell.stopCheckpointer()
		h.cell.close()
	}
}

// recordNet stamps a net measurement with its registry coordinates and
// latency extras.
func (e Entry) recordNet(param string, hr harness.Result, ex NetExtras) results.Record {
	r := e.record(param, hr)
	r.LatencyP50Us = float64(ex.P50) / float64(time.Microsecond)
	r.LatencyP99Us = float64(ex.P99) / float64(time.Microsecond)
	r.BatchAvgOps = ex.BatchAvg
	r.AdmitWaitP99Us = float64(ex.AdmitP99) / float64(time.Microsecond)
	r.FsyncsTotal = ex.Fsyncs
	r.FsyncP99Us = float64(ex.FsyncP99) / float64(time.Microsecond)
	r.AckWaitP99Us = float64(ex.AckP99) / float64(time.Microsecond)
	return r
}

// netYCSBEntry is YCSB-A over the wire across the thread ladder: the
// full service path — pipelined connections, admission batching,
// per-shard execution — compared across concurrency controls.
func netYCSBEntry() Entry {
	e := Entry{
		ID:           "net-ycsb-a",
		Title:        "Networked YCSB-A: remote driver over the wire protocol, admission-batched transactions",
		Workload:     "net",
		Systems:      scenarioSystems,
		ThreadLadder: topology.PaperThreadLadder,
		Params:       fmt.Sprintf("ycsb-a over loopback batch=%d conns=threads/2", netBatchDefault),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		sc = sc.withDefaults()
		for _, n := range sc.threads(topology.PaperThreadLadder) {
			hr, ex, err := RunNetPoint(NetPoint{
				Scenario: "ycsb-a", System: system, Threads: n, Batch: netBatchDefault,
			}, sc)
			if err != nil {
				return fmt.Errorf("net-ycsb-a %s/%d: %w", system, n, err)
			}
			hook(e.recordNet("", hr, ex))
		}
		return nil
	}
	return e
}

// netWindowEntry is the admission-batch sweep: fixed client count, the
// server's per-transaction op bound swept from 1 (no coalescing) to 256
// (footprint far past the 64-line TMCAM). Growing batches amortize
// begin/commit over more client ops but push plain HTM up the capacity
// cliff and onto the serial fall-back, while SI-HTM's ROTs keep read
// footprints untracked — the paper's capacity trade-off, measured
// through the service layer with client-visible p50/p99 latency.
func netWindowEntry() Entry {
	e := Entry{
		ID:       "net-batch-window",
		Title:    fmt.Sprintf("Admission-batch sweep: throughput and p50/p99 latency vs batch bound (%d client threads)", netWindowThreads),
		Workload: "net",
		Systems:  []string{"si-htm", "htm"},
		Params: fmt.Sprintf("ycsb-a over loopback batches=%v threads=%d shards=%d admit-wait=%s",
			netBatches, netWindowThreads, netWindowShards, netAdmitWait),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		sc = sc.withDefaults()
		n := netWindowThreads
		if sc.MaxThreads > 0 && n > sc.MaxThreads {
			n = sc.MaxThreads
		}
		for _, batch := range netBatches {
			hr, ex, err := RunNetPoint(NetPoint{
				Scenario: "ycsb-a", System: system, Threads: n, Shards: netWindowShards, Batch: batch,
				AdmitWait: netAdmitWait,
			}, sc)
			if err != nil {
				return fmt.Errorf("net-batch-window %s/batch=%d: %w", system, batch, err)
			}
			hook(e.recordNet(fmt.Sprintf("batch=%d", batch), hr, ex))
		}
		return nil
	}
	return e
}

// netDurableEntry is durable YCSB-A over the wire: every reply
// acknowledges a group-commit fsync, fuzzy checkpoints run under
// traffic, and each point proves digest-exact recovery of the live heap
// from checkpoint + log.
func netDurableEntry() Entry {
	e := Entry{
		ID:           "net-durable-ycsb-a",
		Title:        "Networked durable YCSB-A: replies acknowledge group-commit fsyncs, digest-exact recovery per point",
		Workload:     "net",
		Systems:      scenarioSystems,
		ThreadLadder: topology.PaperThreadLadder,
		Params:       fmt.Sprintf("ycsb-a over loopback batch=%d window=%s ack=fsync ckpt=fuzzy", netBatchDefault, durableWindowDefault),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		sc = sc.withDefaults()
		for _, n := range sc.threads(topology.PaperThreadLadder) {
			hr, ex, err := RunNetPoint(NetPoint{
				Scenario: "ycsb-a", System: system, Threads: n, Batch: netBatchDefault,
				Durable: true, Window: durableWindowDefault,
			}, sc)
			if err != nil {
				return fmt.Errorf("net-durable-ycsb-a %s/%d: %w", system, n, err)
			}
			hook(e.recordNet("", hr, ex))
		}
		return nil
	}
	return e
}

// netEntries builds the networked scenario entries in presentation
// order.
func netEntries() []Entry {
	return []Entry{netYCSBEntry(), netWindowEntry(), netDurableEntry(), connScaleEntry(), netObserveEntry(), netTraceEntry(), netSLOEntry()}
}

// NetEntryIDs lists the networked registry entries `repro loadgen` can
// drive against an external server.
func NetEntryIDs() []string {
	return []string{"net-ycsb-a", "net-batch-window", "net-durable-ycsb-a", "net-connscale"}
}

// ServeConfig assembles `repro serve`: a long-running wire server
// hosting one scenario build.
type ServeConfig struct {
	// Addr is the listen address (e.g. "127.0.0.1:7654").
	Addr string
	// Scenario is the hosted build ("ycsb-a", "ycsb-b", "ycsb-c");
	// durable serving requires "ycsb-a" (the recovery pipeline's
	// deterministic rebuild covers it).
	Scenario string
	// System is the concurrency control.
	System string
	// ScaleName sizes the build and labels TStats replies.
	ScaleName string
	// Shards is the executor count; the build's deterministic seed
	// derives from it, so recovery must use the same value (persisted in
	// meta.json).
	Shards int
	// BatchMax is the initial admission bound.
	BatchMax int
	// AdmitWait is the initial admission grace period.
	AdmitWait time.Duration
	// P99Target, when positive, starts the adaptive admission
	// controller: the server steers BatchMax and the admission grace
	// online against this p99 service-latency target.
	P99Target time.Duration
	// DurableDir, when set, makes the server durable: wal.log +
	// heap.ckpt + meta.json live there, mirroring `repro durable` run
	// directories so `repro recover` replays them unchanged.
	DurableDir string
	// Window is the durable group-commit window.
	Window time.Duration
	// CkptEvery is the fuzzy checkpoint interval (0 disables periodic
	// checkpoints; the drain-time checkpoint still happens).
	CkptEvery time.Duration
	// FollowAddr, when set, makes this server a read replica of the
	// durable leader at that address: the scenario is rebuilt to the
	// identical deterministic base image (the leader's TStats reply is
	// probed to enforce matching build parameters), the leader's WAL
	// stream is replayed into the local heap, and only read-only
	// requests are admitted until promotion. Mutually exclusive with
	// DurableDir.
	FollowAddr string
	// LeaderLogPath is the shared-storage path of the leader's wal.log;
	// promotion catches up from its valid prefix, which contains every
	// acknowledged commit.
	LeaderLogPath string
	// MetricsAddr, when set, serves the observability plane there:
	// Prometheus text on /metrics, /healthz, /readyz (ready = admitting;
	// a follower is additionally ready only while its replication
	// watermark advances or it has been promoted), and /debug/pprof.
	MetricsAddr string
	// TraceSlow, when positive, logs a rate-limited per-stage lifecycle
	// trace for every request slower end-to-end than this threshold.
	TraceSlow time.Duration
	// ScrapeInterval is the tsdb self-scrape / alert evaluation cadence
	// of the observability plane (default 1s; only meaningful with
	// MetricsAddr).
	ScrapeInterval time.Duration
}

// NetServer is a running `repro serve` instance.
type NetServer struct {
	// Srv is the wire server (Serve blocks on it).
	Srv *server.Server
	// Addr is the bound listen address.
	Addr net.Addr
	// Metrics is the observability-plane HTTP server (nil unless
	// ServeConfig.MetricsAddr was set).
	Metrics *telemetry.Server

	store  *durable.Store
	fol    *replica.Follower
	cfg    ServeConfig
	ckpt   *checkpointer
	ts     *tsdb.Store
	alerts *alert.Engine
}

// StartNetServer builds the scenario (populated, optionally durable)
// and binds the listener. The caller runs Serve and, on shutdown,
// Shutdown.
func StartNetServer(cfg ServeConfig) (*NetServer, error) {
	sc, err := ScaleByName(cfg.ScaleName)
	if err != nil {
		return nil, err
	}
	sc = sc.withDefaults()
	y, err := ycsbSpecByID(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("experiments: serve needs a positive shard count")
	}
	m, backend, _, err := y.build(sc, cfg.Shards)
	if err != nil {
		return nil, err
	}
	heap := m.Heap()
	sys, err := NewSystem(cfg.System, m, heap, cfg.Shards)
	if err != nil {
		return nil, err
	}

	ns := &NetServer{cfg: cfg}
	scfg := server.Config{
		Backend:   backend,
		System:    sys,
		Shards:    cfg.Shards,
		BatchMax:  cfg.BatchMax,
		AdmitWait: cfg.AdmitWait,
		Scenario:  cfg.Scenario,
		Scale:     cfg.ScaleName,
		P99Target: cfg.P99Target,
		TraceSlow: cfg.TraceSlow,
	}
	if cfg.FollowAddr != "" {
		if cfg.DurableDir != "" {
			return nil, fmt.Errorf("experiments: a follower cannot also serve durably (--follow excludes --durable-dir)")
		}
		// The replica's base image must be the exact deterministic build
		// the leader's log was opened on; probe the leader and refuse a
		// mismatched build rather than silently diverging.
		probe, err := engine.DialRemote(cfg.FollowAddr, 1)
		if err != nil {
			return nil, fmt.Errorf("experiments: probing leader %s: %w", cfg.FollowAddr, err)
		}
		st, err := probe.Stats()
		probe.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: probing leader %s: %w", cfg.FollowAddr, err)
		}
		if !st.Durable {
			return nil, fmt.Errorf("experiments: leader %s is not durable; a volatile server has no WAL to stream", cfg.FollowAddr)
		}
		if st.Scenario != cfg.Scenario || st.Scale != cfg.ScaleName || st.Shards != cfg.Shards {
			return nil, fmt.Errorf("experiments: build mismatch with leader %s: it runs %s/%s shards=%d, this follower %s/%s shards=%d",
				cfg.FollowAddr, st.Scenario, st.Scale, st.Shards, cfg.Scenario, cfg.ScaleName, cfg.Shards)
		}
		leader := cfg.FollowAddr
		ns.fol, err = replica.NewFollower(replica.FollowerConfig{
			Heap: heap,
			Dial: func() (net.Conn, error) { return net.Dial("tcp", leader) },
		})
		if err != nil {
			return nil, err
		}
		scfg.Follower = ns.fol
		scfg.LeaderLogPath = cfg.LeaderLogPath
	}
	if cfg.DurableDir != "" {
		if cfg.Scenario != "ycsb-a" {
			return nil, fmt.Errorf("experiments: durable serving supports scenario ycsb-a, not %q", cfg.Scenario)
		}
		dir := cfg.DurableDir
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		// A fresh serve truncates wal.log; a checkpoint left by a previous
		// run belongs to a different history (see StartDurable).
		for _, stale := range []string{ckptPath(dir), ckptPath(dir) + ".tmp"} {
			if err := os.Remove(stale); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
		}
		meta := DurableMeta{
			Scenario: cfg.Scenario,
			System:   cfg.System,
			Scale:    cfg.ScaleName,
			Threads:  cfg.Shards,
			WindowNS: int64(cfg.Window),
		}
		mj, err := json.MarshalIndent(meta, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(metaPath(dir), append(mj, '\n'), 0o644); err != nil {
			return nil, err
		}
		store, err := durable.Open(heap, logPath(dir), m.Topology().MaxThreads(),
			durable.Config{Window: cfg.Window, WaitAck: true})
		if err != nil {
			return nil, err
		}
		ns.store = store
		scfg.Backend = engine.NewDurableBackend(backend, store)
		scfg.System = store.Attach(sys, m)
		scfg.Store = store
		scfg.CheckpointPath = ckptPath(dir)
	}
	ns.Srv, err = server.New(scfg)
	if err != nil {
		if ns.store != nil {
			ns.store.Close()
		}
		return nil, err
	}
	ns.Addr, err = ns.Srv.Listen(cfg.Addr)
	if err != nil {
		if ns.store != nil {
			ns.store.Close()
		}
		return nil, err
	}
	if ns.store != nil && cfg.CkptEvery > 0 {
		ns.ckpt = startCheckpointer(ns.store, ckptPath(cfg.DurableDir), cfg.CkptEvery)
	}
	if ns.fol != nil {
		ns.fol.Start()
	}
	if cfg.MetricsAddr != "" {
		var fp followerProbe
		if ns.fol != nil {
			fp = ns.fol
		}
		ready := readyProbe(ns.Srv.Draining, fp)

		// The analysis layer: the tsdb self-scrapes the registry and the
		// alert engine evaluates the role-appropriate rule set on every
		// scrape. Built before the listener so /debug/timeseries and
		// /debug/alerts are live from the first request.
		interval := cfg.ScrapeInterval
		if interval <= 0 {
			interval = tsdb.DefaultInterval
		}
		ns.ts = tsdb.New(ns.Srv.Telemetry(), tsdb.Config{Interval: interval})
		ns.alerts, err = alert.New(ns.ts, ns.Srv.Telemetry(), alert.DefaultRules(alert.RuleOptions{
			System:    cfg.System,
			Interval:  interval,
			P99Target: cfg.P99Target,
			Durable:   ns.store != nil,
			Follower:  ns.fol != nil,
			Leader:    ns.store != nil, // durable leaders own the replication publisher
		}), os.Stderr)
		if err != nil {
			ns.Shutdown()
			return nil, fmt.Errorf("experiments: alert rules: %w", err)
		}
		ns.ts.Start()
		ns.Metrics, err = telemetry.ListenAndServe(cfg.MetricsAddr, ns.Srv.Telemetry(), ready,
			telemetry.Extra{Path: "/debug/traces", Handler: trace.Handler(ns.Srv.TraceRing())},
			telemetry.Extra{Path: "/debug/timeseries", Handler: tsdb.Handler(ns.ts)},
			telemetry.Extra{Path: "/debug/alerts", Handler: alert.Handler(ns.alerts)})
		if err != nil {
			ns.Shutdown()
			return nil, fmt.Errorf("experiments: metrics listener: %w", err)
		}
	}
	return ns, nil
}

// Shutdown drains gracefully: the fuzzy checkpointer stops first (so
// it cannot race Drain's final checkpoint on the same path), then
// in-flight commits quiesce, replies flush, and the durable store
// writes the final checkpoint and closes.
func (ns *NetServer) Shutdown() error {
	// The observability plane goes first: its readiness probe reads
	// server and follower state that the teardown below invalidates.
	var err error
	if ns.Metrics != nil {
		err = ns.Metrics.Close()
		ns.Metrics = nil
	}
	if ns.ts != nil {
		ns.ts.Close()
		ns.ts = nil
		ns.alerts = nil
	}
	if herr := ns.ckpt.halt(); err == nil {
		err = herr
	}
	ns.ckpt = nil
	if derr := ns.Srv.Drain(); err == nil {
		err = derr
	}
	if ns.fol != nil {
		if ferr := ns.fol.Close(); err == nil {
			err = ferr
		}
		ns.fol = nil
	}
	if ns.store != nil {
		if cerr := ns.store.Close(); err == nil {
			err = cerr
		}
		ns.store = nil
	}
	return err
}

// runLoadgenBatchSweep sweeps the admission-batch bound against a live
// server, restoring the operator's knobs afterwards even when a point
// fails mid-sweep (the server outlives the load generator).
func runLoadgenBatchSweep(addr string, e Entry, st wire.ServerStats, sc, buildSc Scale,
	hook func(results.Record), note func(string, ...any)) (err error) {
	defer func() {
		// Put the knobs back where the operator set them.
		restore, derr := engine.DialRemote(addr, 1)
		if derr == nil {
			wait := st.AdmitWaitUs
			if wait == 0 {
				wait = -1 // clear back to no grace
			}
			derr = restore.Ctrl(wire.Ctrl{BatchMax: st.BatchMax, AdmitWaitUs: wait})
			restore.Close()
		}
		if derr != nil && err == nil {
			err = fmt.Errorf("net-batch-window: restoring server knobs: %w", derr)
		}
	}()
	n := netWindowThreads
	if sc.MaxThreads > 0 && n > sc.MaxThreads {
		n = sc.MaxThreads
	}
	for _, batch := range netBatches {
		hr, ex, perr := RunNetPoint(NetPoint{
			Scenario: st.Scenario, System: st.System, Addr: addr, Threads: n, Batch: batch,
			AdmitWait: netAdmitWait,
		}, buildSc)
		if perr != nil {
			return fmt.Errorf("net-batch-window/batch=%d: %w", batch, perr)
		}
		hook(e.recordNet(fmt.Sprintf("batch=%d", batch), hr, ex))
		note("  net-batch-window batch=%d: %.0f tx/s p50=%s p99=%s achieved=%.1f",
			batch, hr.Throughput, ex.P50, ex.P99, ex.BatchAvg)
	}
	return nil
}

// RunLoadgen drives the selected net entries against a live external
// server and streams one record per measured point. The server's TStats
// reply supplies the concurrency control, scenario and build scale the
// records are labeled with; sc shapes the client (ladder caps, run
// windows). The batch sweep restores the server's admission bound
// afterwards. progress may be nil.
func RunLoadgen(addr string, ids []string, sc Scale, hook func(results.Record), progress io.Writer) error {
	sc = sc.withDefaults()
	probe, err := engine.DialRemote(addr, 1)
	if err != nil {
		return err
	}
	st, err := probe.Stats()
	probe.Close()
	if err != nil {
		return err
	}
	if st.Scenario == "" {
		return fmt.Errorf("experiments: server at %s reports no scenario; is it `repro serve`?", addr)
	}
	// The server's build scale governs the keyspace the client draws
	// from; the client's own scale only shapes windows and ladders.
	buildSc, err := ScaleByName(st.Scale)
	if err != nil {
		return fmt.Errorf("experiments: server build scale: %w", err)
	}
	buildSc = buildSc.withDefaults()
	buildSc.Warmup, buildSc.Measure = sc.Warmup, sc.Measure
	note := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", args...)
		}
	}
	note("loadgen: server %s runs %s on %s (scale=%s, shards=%d, durable=%v)",
		addr, st.Scenario, st.System, st.Scale, st.Shards, st.Durable)

	for _, id := range ids {
		e, ok := Lookup(id)
		if !ok {
			return fmt.Errorf("experiments: unknown net entry %q (known: %v)", id, NetEntryIDs())
		}
		switch id {
		case "net-ycsb-a", "net-durable-ycsb-a":
			if id == "net-durable-ycsb-a" && !st.Durable {
				return fmt.Errorf("experiments: %s needs a durable server (serve --durable-dir)", id)
			}
			for _, n := range sc.threads(topology.PaperThreadLadder) {
				hr, ex, err := RunNetPoint(NetPoint{
					Scenario: st.Scenario, System: st.System, Addr: addr, Threads: n,
				}, buildSc)
				if err != nil {
					return fmt.Errorf("%s/%d: %w", id, n, err)
				}
				hook(e.recordNet("", hr, ex))
				note("  %s threads=%d: %.0f tx/s p50=%s p99=%s batch=%.1f",
					id, n, hr.Throughput, ex.P50, ex.P99, ex.BatchAvg)
			}
		case "net-batch-window":
			if err := runLoadgenBatchSweep(addr, e, st, sc, buildSc, hook, note); err != nil {
				return err
			}
		case "net-connscale":
			// The ladder reconfigures the server's admission knobs per
			// rung and leaves them at moderate defaults; the keyspace
			// comes from the server's own build.
			y, yerr := ycsbSpecByID(st.Scenario)
			if yerr != nil {
				return yerr
			}
			keys := scaledKeys(y.baseKeys, buildSc, 128)
			// The window floors apply against an external server too:
			// the uncontrolled rungs hold replies for a 10ms admission
			// grace, so a tens-of-milliseconds window could close
			// before the first batch answers.
			if err := runConnScaleLadder(e, addr, st.System, keys, connScaleWindows(sc), hook, note); err != nil {
				return err
			}
		default:
			return fmt.Errorf("experiments: %q is not a loadgen-drivable net entry (known: %v)", id, NetEntryIDs())
		}
	}
	return nil
}
