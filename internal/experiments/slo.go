package experiments

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"sihtm/internal/alert"
	"sihtm/internal/loadgen"
	"sihtm/internal/report"
	"sihtm/internal/results"
	"sihtm/internal/telemetry"
	"sihtm/internal/trace"
	"sihtm/internal/tsdb"
	"sihtm/internal/wire"
	"sihtm/internal/workload/engine"
)

// The net-slo cell closes the observability loop end to end: a
// self-hosted htm server is driven into the paper's capacity cliff by
// open-loop overload with the admission controller disabled and the
// batch bound pinned past the TMCAM capacity boundary; the in-process
// tsdb + alert stack must detect the cliff (the capacity-abort
// burn-rate rule fires while the load runs), see it heal (the rule
// resolves after the load drops and the backlog drains), and explain it
// (the incident report carries the firing→resolved timeline with at
// least one request-trace exemplar inside the firing window).

// sloConns is the open-loop connection count of the overload phase.
const sloConns = 32

// sloArrivalRate is the total offered load (ops/sec): far above what 4
// shards serve at batch 256 under htm capacity aborts, so the cliff is
// unambiguous.
const sloArrivalRate = 20000

// sloScrapeInterval picks the tsdb cadence: ~20 evaluation points per
// measurement window, clamped to a sane range.
func sloScrapeInterval(sc Scale) time.Duration {
	iv := sc.Measure / 20
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	if iv > 100*time.Millisecond {
		iv = 100 * time.Millisecond
	}
	return iv
}

func netSLOEntry() Entry {
	e := Entry{
		ID:       "net-slo",
		Title:    "SLO loop: capacity-cliff alert fires under open-loop overload, resolves on recovery, incident report explains it",
		Workload: "net",
		// htm only: at batch 256 the read/write sets overrun L1 and the
		// capacity-abort share deterministically exceeds the 2% ceiling;
		// si-htm's ROT reads would hide the cliff (the paper's point).
		Systems: []string{"htm"},
		Params: fmt.Sprintf("ycsb-a over loopback, shards=%d, uncontrolled batch=%d grace=%dµs, burn-rate capacity rule, in-process scrape+eval",
			connScaleShards, connScaleUncontrolledBatch, connScaleUncontrolledGrace),
	}
	e.run = func(system string, sc Scale, hook func(results.Record)) error {
		sc = connScaleWindows(sc.withDefaults())
		y, err := ycsbSpecByID("ycsb-a")
		if err != nil {
			return err
		}
		host, err := startNetHost(y, NetPoint{
			Scenario: "ycsb-a", System: system,
			Threads: connScaleShards, Shards: connScaleShards,
		}, sc)
		if err != nil {
			return err
		}
		verified := false
		defer func() {
			if !verified {
				host.close()
			}
		}()

		// The analysis stack, exactly as StartNetServer wires it for a
		// volatile server: tsdb over the live registry, the default rule
		// set (capacity rule only — no SLO target, no WAL, no replica),
		// evaluation on every scrape.
		interval := sloScrapeInterval(sc)
		ts := tsdb.New(host.srv.Telemetry(), tsdb.Config{Interval: interval, Retention: 1024})
		eng, err := alert.New(ts, host.srv.Telemetry(), alert.DefaultRules(alert.RuleOptions{
			System:   system,
			Interval: interval,
		}), io.Discard)
		if err != nil {
			return err
		}
		ts.Start()
		defer ts.Close()

		addr := host.addr.String()
		rb, err := engine.DialRemote(addr, 1)
		if err != nil {
			return err
		}
		defer rb.Close()
		// Pin the throughput-greedy knobs that drive batches past the
		// capacity boundary; the controller is off (no p99 target), so
		// nothing fights the overload.
		if err := connScaleVariant(rb, false, 0); err != nil {
			return err
		}

		// Overload phase: open-loop arrivals the server cannot keep up
		// with, every request trace-stamped so the firing window has
		// exemplars in the ring.
		keys := scaledKeys(y.baseKeys, sc, 128)
		arrival := loadgen.Arrival{Process: "poisson", Rate: sloArrivalRate}
		overloadStart := time.Now()
		r, err := runOpenLoopPoint(e, rb, addr, system, keys, sloConns, arrival, sc, 1)
		if err != nil {
			return fmt.Errorf("net-slo overload: %w", err)
		}
		// The cliff must have been detected while (or immediately after)
		// the load ran.
		var fired *alert.Event
		for _, ev := range eng.Dump().Events {
			if ev.Rule == alert.RuleCapacityShare && ev.To == "firing" {
				fired = &ev
				break
			}
		}
		if fired == nil {
			d := eng.Dump()
			detail := ""
			for _, rs := range d.Rules {
				if rs.Name == alert.RuleCapacityShare {
					detail = fmt.Sprintf(" (state=%s value=%.4g threshold=%g)", rs.State, rs.Value, rs.Threshold)
				}
			}
			return fmt.Errorf("net-slo: capacity alert never fired under overload%s", detail)
		}
		loadEnd := time.Now()

		// Recovery phase: the load is gone; drain the backlog, restore
		// moderate knobs, and wait for the fast burn window to age the
		// cliff out. The resolve deadline is generous — the engine only
		// needs the fast window (4 intervals) plus the backlog drain.
		if err := quiesceServer(rb); err != nil {
			return fmt.Errorf("net-slo recovery: %w", err)
		}
		if err := rb.Ctrl(wire.Ctrl{BatchMax: netBatchDefault, AdmitWaitUs: -1}); err != nil {
			return err
		}
		var resolvedAt time.Time
		deadline := time.Now().Add(30 * interval)
		for {
			if st, ok := eng.State(alert.RuleCapacityShare); ok && st != alert.StateFiring {
				resolvedAt = time.Now()
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("net-slo: capacity alert did not resolve within %s of load drop", 30*interval)
			}
			time.Sleep(interval / 2)
		}

		// Incident report, over the same HTTP surfaces `repro report`
		// uses: serve the three debug endpoints, collect, analyze, render.
		msrv, err := telemetry.ListenAndServe("127.0.0.1:0", host.srv.Telemetry(), nil,
			telemetry.Extra{Path: "/debug/traces", Handler: trace.Handler(host.srv.TraceRing())},
			telemetry.Extra{Path: "/debug/timeseries", Handler: tsdb.Handler(ts)},
			telemetry.Extra{Path: "/debug/alerts", Handler: alert.Handler(eng)})
		if err != nil {
			return fmt.Errorf("net-slo: metrics listener: %w", err)
		}
		nd, err := report.Collect("leader", "http://"+msrv.Addr())
		msrv.Close()
		if err != nil {
			return fmt.Errorf("net-slo: collect: %w", err)
		}
		an := report.Analyze(report.Inputs{Nodes: []report.NodeData{nd}})
		var sawFiring, sawResolved bool
		for _, ev := range an.Timeline {
			if ev.Rule == alert.RuleCapacityShare {
				sawFiring = sawFiring || ev.To == "firing"
				sawResolved = sawResolved || ev.To == "resolved"
			}
		}
		if !sawFiring || !sawResolved {
			return fmt.Errorf("net-slo: report timeline incomplete (firing=%v resolved=%v, %d events)",
				sawFiring, sawResolved, len(an.Timeline))
		}
		exemplar := false
		for _, ex := range an.Exemplars {
			if ex.Rule == alert.RuleCapacityShare && ex.Trace != 0 {
				exemplar = true
				break
			}
		}
		if !exemplar {
			return fmt.Errorf("net-slo: no trace exemplar inside the firing window (%d spans in ring)",
				an.SpanCounts["leader"])
		}
		var md bytes.Buffer
		if err := report.Render(&md, report.Inputs{Title: "net-slo", Nodes: []report.NodeData{nd}}, an); err != nil {
			return err
		}
		if md.Len() == 0 || !strings.Contains(md.String(), alert.RuleCapacityShare) {
			return fmt.Errorf("net-slo: rendered report is empty or missing the capacity rule")
		}

		// Stop scraping before the host drains, then run the standard
		// invariant checks.
		ts.Close()
		if err := host.verify(y, NetPoint{Scenario: "ycsb-a", System: system, Threads: connScaleShards}, sc); err != nil {
			return err
		}
		verified = true

		var firings uint64
		for _, ev := range an.Timeline {
			if ev.To == "firing" {
				firings++
			}
		}
		r.AlertsFired = firings
		r.AlertTimeToFireMs = float64(fired.AtNs-overloadStart.UnixNano()) / 1e6
		r.AlertTimeToResolveMs = float64(resolvedAt.Sub(loadEnd)) / float64(time.Millisecond)
		hook(r)
		return nil
	}
	return e
}
