package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"sihtm/internal/harness"
	"sihtm/internal/results"
	"sihtm/internal/topology"
)

// Entry is one row of the experiment registry: a declarative description
// of a figure panel or ablation — its identity, workload, systems and
// thread ladder are enumerable without running anything — plus the cell
// runner that measures one (entry × system) column.
type Entry struct {
	// ID is the registry key ("fig6-low", "capacity", ...).
	ID string
	// Figure is the paper figure reproduced (6–10; 0 for ablations).
	Figure int
	// Panel is the figure's contention panel ("low", "high"; "" for
	// ablations).
	Panel string
	// Title is the human-readable description.
	Title string
	// Workload names the workload family: "hashmap", "tpcc", "synthetic".
	Workload string
	// Systems are the concurrency controls compared, in display order.
	Systems []string
	// ThreadLadder is the x-axis before Scale capping; nil for ablations
	// that sweep a parameter at a fixed thread count.
	ThreadLadder []int
	// Params summarizes fixed workload parameters for `repro list`
	// (e.g. "buckets=1000 chain=200 ro=90%").
	Params string

	// run measures one (entry × system) cell at the given scale,
	// invoking hook for every record produced. Set by the constructors
	// in this package.
	run func(system string, sc Scale, hook func(results.Record)) error
}

// RunCell measures one (entry × system) cell — the unit of parallelism
// in the reproduction pipeline — and returns its records. hook (may be
// nil) streams each record as it is produced.
func (e Entry) RunCell(system string, sc Scale, hook func(results.Record)) ([]results.Record, error) {
	known := false
	for _, s := range e.Systems {
		if s == system {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("experiments: %s has no system %q (systems: %v)", e.ID, system, e.Systems)
	}
	var recs []results.Record
	collect := func(r results.Record) {
		recs = append(recs, r)
		if hook != nil {
			hook(r)
		}
	}
	if err := e.run(system, sc, collect); err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", e.ID, system, err)
	}
	return recs, nil
}

// Run measures every system of the entry sequentially. hook may be nil.
func (e Entry) Run(sc Scale, hook func(results.Record)) ([]results.Record, error) {
	var recs []results.Record
	for _, system := range e.Systems {
		rs, err := e.RunCell(system, sc, hook)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rs...)
	}
	return recs, nil
}

// record stamps a harness result with the entry's registry coordinates.
func (e Entry) record(param string, hr harness.Result) results.Record {
	r := results.FromHarness(e.ID, e.Figure, e.Panel, e.Workload, param, hr)
	r.Order = registryRank[e.ID]
	return r
}

// registryIDs is the presentation order of the whole registry: figures
// first, then the workload-engine scenarios (YCSB, the Zipfian-θ sweep,
// vacation), the durable and networked cells, then ablations A1..A5.
// Registry() builds entries in this order and records carry the rank so
// reports render in it too.
var registryIDs = append(append(append([]string{}, FigureOrder...),
	"ycsb-a", "ycsb-b", "ycsb-c", "zipf", "vacation-low", "vacation-high",
	"durable-ycsb-a", "durable-vacation", "durable-window",
	"net-ycsb-a", "net-batch-window", "net-durable-ycsb-a", "net-connscale", "net-observe", "net-trace", "net-slo",
	"repl-ycsb-c", "repl-failover"),
	"capacity", "tmcam", "rofast", "killer", "smt")

// registryRank maps entry id → presentation rank.
var registryRank = func() map[string]int {
	m := make(map[string]int, len(registryIDs))
	for i, id := range registryIDs {
		m[id] = i
	}
	return m
}()

// Registry returns every experiment, figures first in presentation
// order, then the workload scenarios, then ablations. The slice is
// freshly built; callers may modify their copy.
func Registry() []Entry {
	entries := make([]Entry, 0, len(registryIDs))
	for _, id := range FigureOrder {
		entries = append(entries, figureEntry(id))
	}
	entries = append(entries, scenarioEntries()...)
	entries = append(entries, durableEntries()...)
	entries = append(entries, netEntries()...)
	entries = append(entries, replEntries()...)
	entries = append(entries,
		capacityEntry(),
		tmcamEntry(),
		roFastPathEntry(),
		killerEntry(),
		smtEntry(),
	)
	return entries
}

// Lookup finds a registry entry by id.
func Lookup(id string) (Entry, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// Group classifies the entry for selectors and `repro list`:
// "figures" (paper figure panels), "scenarios" (workload-engine YCSB /
// Zipf / vacation), "durable" (WAL-backed cells), "net" (networked
// service-layer cells), "repl" (replicated-cluster cells) or
// "ablations".
func (e Entry) Group() string {
	switch {
	case e.Figure > 0:
		return "figures"
	case e.Workload == "durable":
		return "durable"
	case e.Workload == "net":
		return "net"
	case e.Workload == "repl":
		return "repl"
	case scenarioWorkloads[e.Workload]:
		return "scenarios"
	default:
		return "ablations"
	}
}

// Groups lists the selector groups in presentation order.
func Groups() []string {
	return []string{"figures", "scenarios", "durable", "net", "repl", "ablations"}
}

// Select resolves a selector to registry entries, in registry order:
//
//	"all"               every entry
//	"figures"           every figN-* entry
//	"scenarios"         the workload-engine entries (ycsb-*, zipf, vacation-*)
//	"durable" / "net"   the durability / networked service-layer cells
//	"ablations"         everything else (no figure, no scenario group)
//	"fig6" / "6"        both panels of one figure
//	"ycsb" / "vacation" every entry of the prefix
//	"fig6-low"          a single entry
//	"a,b,c"             union of selectors
func Select(selector string) ([]Entry, error) {
	all := Registry()
	want := map[string]bool{}
	for _, sel := range strings.Split(selector, ",") {
		sel = strings.TrimSpace(sel)
		if sel == "" {
			continue
		}
		if n, err := strconv.Atoi(sel); err == nil {
			sel = fmt.Sprintf("fig%d", n)
		}
		matched := false
		for _, e := range all {
			switch {
			case sel == "all",
				sel == e.Group(),
				sel == e.ID,
				strings.HasPrefix(e.ID, sel+"-"):
				want[e.ID] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("experiments: selector %q matches nothing", sel)
		}
	}
	var out []Entry
	for _, e := range all {
		if want[e.ID] {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: empty selector")
	}
	return out, nil
}

// Titles maps entry ids to titles (for rendering reports).
func Titles() map[string]string {
	m := map[string]string{}
	for _, e := range Registry() {
		m[e.ID] = e.Title
	}
	return m
}

// Named scale presets: the trade-off between fidelity to the paper's
// shape and wall-clock time.
var scales = map[string]Scale{
	// "paper" is the full evaluation: the complete thread ladder to 80
	// and the paper's workload sizes. Hours on a laptop.
	"paper": {},
	// "quick" keeps the interesting SMT region but shrinks workloads.
	"quick": {MaxThreads: 16, WorkloadDiv: 4, Warmup: 50 * time.Millisecond, Measure: 200 * time.Millisecond},
	// "ci" is the smoke scale: every cell runs, nothing is measured
	// carefully. Tens of seconds for the whole registry.
	"ci": {MaxThreads: 4, WorkloadDiv: 20, Warmup: 10 * time.Millisecond, Measure: 40 * time.Millisecond},
}

// ScaleByName resolves a named scale preset ("paper", "quick", "ci").
func ScaleByName(name string) (Scale, error) {
	sc, ok := scales[name]
	if !ok {
		return Scale{}, fmt.Errorf("experiments: unknown scale %q (known: %s)", name, strings.Join(ScaleNames(), ", "))
	}
	return sc, nil
}

// ScaleNames lists the scale presets, alphabetically.
func ScaleNames() []string {
	names := make([]string, 0, len(scales))
	for n := range scales {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MachineDescription describes the simulated hardware for report
// metadata.
func MachineDescription() string {
	return fmt.Sprintf("%d cores × SMT-%d POWER8, TMCAM 64 lines/core", topology.PaperCores, topology.PaperSMTWays)
}
