package trace

import (
	"sync/atomic"
	"time"

	"sihtm/internal/stats"
)

// Exemplars ties trace ids to the latency histogram's buckets: one
// atomic cell per stats.Histogram bucket holding the most recent traced
// request whose total latency landed there. A scraped p99 therefore
// comes with a concrete trace id to look up in /debug/traces — the
// bridge from "the histogram says something is slow" to "this exact
// request shows where the time went".
//
// The table is parallel to the histogram, not embedded in it: the
// histogram's Observe path stays a single atomic add for the unsampled
// majority, and only traced requests (1 in DefaultSampleEvery) pay the
// extra store.
type Exemplars struct {
	slots [stats.NumHistogramBuckets]atomic.Uint64
}

// Note records trace as the freshest exemplar for the bucket d lands
// in. Zero trace ids are ignored.
func (e *Exemplars) Note(d time.Duration, trace uint64) {
	if e == nil || trace == 0 {
		return
	}
	e.slots[stats.HistogramSlot(d)].Store(trace)
}

// Trace returns the most recent exemplar for one bucket slot, or zero.
func (e *Exemplars) Trace(slot int) uint64 {
	if e == nil || slot < 0 || slot >= len(e.slots) {
		return 0
	}
	return e.slots[slot].Load()
}

// ForQuantile resolves the exemplar nearest the q-quantile of a
// histogram snapshot: the exemplar of the bucket holding the quantile,
// falling back to the closest occupied lower bucket with an exemplar.
// Returns zero when the table has nothing relevant.
func (e *Exemplars) ForQuantile(s stats.HistogramSnapshot, q float64) uint64 {
	if e == nil {
		return 0
	}
	d, ok := s.QuantileOK(q)
	if !ok {
		return 0
	}
	slot := stats.HistogramSlot(d)
	if slot >= len(e.slots) {
		slot = len(e.slots) - 1
	}
	for i := slot; i >= 0; i-- {
		if t := e.slots[i].Load(); t != 0 {
			return t
		}
	}
	for i := slot + 1; i < len(e.slots); i++ {
		if t := e.slots[i].Load(); t != 0 {
			return t
		}
	}
	return 0
}
