//go:build !race

package trace

// raceEnabled gates the exact alloc pins: the race detector's
// instrumentation allocates, so the pins only assert without it.
const raceEnabled = false
