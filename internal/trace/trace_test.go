package trace

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sihtm/internal/stats"
)

func TestIDGenNonZeroNoOriginBit(t *testing.T) {
	g := NewIDGen(42)
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := g.Next()
		if id == 0 {
			t.Fatal("zero trace id")
		}
		if id&ServerOriginBit != 0 {
			t.Fatalf("client id %#x carries the server-origin bit", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %#x within 10k draws", id)
		}
		seen[id] = true
	}
}

func TestSamplerRate(t *testing.T) {
	s := NewSampler(8)
	hits := 0
	for i := 0; i < 800; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("sampler at 1/8 hit %d of 800", hits)
	}
	if NewSampler(0).Sample() {
		t.Fatal("disabled sampler sampled")
	}
	always := NewSampler(1)
	for i := 0; i < 3; i++ {
		if !always.Sample() {
			t.Fatal("every=1 sampler skipped")
		}
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler sampled")
	}
}

func TestRingRoundTrip(t *testing.T) {
	r := NewRing(8)
	for i := 1; i <= 5; i++ {
		r.Add(Span{Trace: uint64(i), Kind: KExec, Start: int64(i * 100), Dur: int64(i), Arg: int64(i * 2)})
	}
	got := r.Snapshot(nil)
	if len(got) != 5 {
		t.Fatalf("snapshot has %d spans, want 5", len(got))
	}
	for i, s := range got {
		want := Span{Trace: uint64(i + 1), Kind: KExec, Start: int64((i + 1) * 100), Dur: int64(i + 1), Arg: int64((i + 1) * 2)}
		if s != want {
			t.Fatalf("span %d = %+v, want %+v", i, s, want)
		}
	}
	// Overflow keeps the newest.
	for i := 6; i <= 20; i++ {
		r.Add(Span{Trace: uint64(i), Kind: KExec})
	}
	got = r.Snapshot(nil)
	if len(got) != 8 {
		t.Fatalf("wrapped snapshot has %d spans, want 8", len(got))
	}
	if got[0].Trace != 13 || got[7].Trace != 20 {
		t.Fatalf("wrapped snapshot spans [%d..%d], want [13..20]", got[0].Trace, got[7].Trace)
	}
	if r.Total() != 20 {
		t.Fatalf("Total = %d, want 20", r.Total())
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(256)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					r.Add(Span{Trace: uint64(w*1_000_000 + i + 1), Kind: KAdmit, Start: 1, Dur: 2})
				}
			}
		}(w)
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	var buf []Span
	for time.Now().Before(deadline) {
		buf = r.Snapshot(buf[:0])
		for _, s := range buf {
			// Every stable slot must hold a fully published span.
			if s.Trace == 0 || s.Kind != KAdmit || s.Start != 1 || s.Dur != 2 {
				close(stop)
				wg.Wait()
				t.Fatalf("torn span surfaced: %+v", s)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestSeqTraces(t *testing.T) {
	var m SeqTraces
	m.Put(7, 0xabc)
	if got := m.Get(7); got != 0xabc {
		t.Fatalf("Get(7) = %#x", got)
	}
	if got := m.Get(8); got != 0 {
		t.Fatalf("Get(miss) = %#x, want 0", got)
	}
	// A colliding sequence overwrites; the old key must miss, never
	// return the new trace.
	m.Put(7+seqTraceSlots, 0xdef)
	if got := m.Get(7); got != 0 {
		t.Fatalf("evicted key returned %#x, want 0", got)
	}
	if got := m.Get(7 + seqTraceSlots); got != 0xdef {
		t.Fatalf("Get(colliding) = %#x", got)
	}
}

func TestExemplars(t *testing.T) {
	var e Exemplars
	var h stats.Histogram
	h.Observe(time.Millisecond)
	e.Note(time.Millisecond, 0x111)
	snap := h.Snapshot()
	if got := e.ForQuantile(snap, 0.99); got != 0x111 {
		t.Fatalf("p99 exemplar = %#x, want 0x111", got)
	}
	if got := e.Trace(stats.HistogramSlot(time.Millisecond)); got != 0x111 {
		t.Fatalf("bucket exemplar = %#x", got)
	}
	if got := e.Trace(0); got != 0 {
		t.Fatalf("empty bucket exemplar = %#x", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	spans := []Span{
		{Trace: 123456789012345, Kind: KRequest, Start: 1000, Dur: 500, Arg: 3},
		{Kind: KFsync, Seq: 42, Start: 1100, Dur: 200, Arg: 7},
		{Trace: 5 | ServerOriginBit, Kind: KReplApply, Seq: 43, Start: 1200, Dur: 10, Arg: 43},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, spans, "leader"); err != nil {
		t.Fatal(err)
	}
	back, nodes, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(spans) {
		t.Fatalf("round trip lost spans: %d != %d", len(back), len(spans))
	}
	for i := range spans {
		if back[i] != spans[i] {
			t.Fatalf("span %d = %+v, want %+v", i, back[i], spans[i])
		}
		if nodes[i] != "leader" {
			t.Fatalf("node %d = %q", i, nodes[i])
		}
	}
}

func TestChromeTraceMerge(t *testing.T) {
	leader := NodeSpans{Node: "leader", Spans: []Span{
		{Trace: 9, Kind: KRequest, Start: 100, Dur: 900},
		{Kind: KFsync, Seq: 1, Start: 300, Dur: 100, Arg: 2},
	}}
	follower := NodeSpans{Node: "follower-0", Spans: []Span{
		{Trace: 9, Kind: KReplApply, Seq: 1, Start: 600, Dur: 50, Arg: 1},
	}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []NodeSpans{leader, follower}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, `"fsync"`, `"repl_apply"`, `"request"`, `"pid":"follower-0"`, `"tid":"trace-9"`, `"tid":"wal"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %s in %s", want, out)
		}
	}
}

func TestHandlerServesJSONLAndFilters(t *testing.T) {
	r := NewRing(16)
	r.Add(Span{Trace: 11, Kind: KRequest, Start: 1, Dur: 2})
	r.Add(Span{Trace: 22, Kind: KRequest, Start: 3, Dur: 4})
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	spans, _, err := ReadJSONL(rec.Body)
	if err != nil || len(spans) != 2 {
		t.Fatalf("full dump: %d spans, err %v", len(spans), err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace=22", nil))
	spans, _, err = ReadJSONL(rec.Body)
	if err != nil || len(spans) != 1 || spans[0].Trace != 22 {
		t.Fatalf("filtered dump: %+v, err %v", spans, err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/traces", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}

// TestRingAddAllocs pins the hot-path contract: recording a span into
// the ring, sampling, id generation and exemplar notes are all
// allocation-free.
func TestRingAddAllocs(t *testing.T) {
	r := NewRing(1024)
	g := NewIDGen(1)
	s := NewSampler(DefaultSampleEvery)
	var e Exemplars
	var m SeqTraces
	span := Span{Trace: 1, Kind: KExec, Start: 1, Dur: 2, Arg: 3}
	for i := 0; i < 512; i++ {
		r.Add(span)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if s.Sample() {
			span.Trace = g.Next()
		}
		r.Add(span)
		e.Note(time.Duration(span.Dur), span.Trace)
		m.Put(uint64(span.Start), span.Trace)
	})
	if allocs != 0 && !raceEnabled {
		t.Fatalf("trace hot path allocates %.2f times per span, want 0", allocs)
	}
}
