package trace

import "sync/atomic"

// DefaultRingSpans is the default per-process ring capacity. At the
// default 1/64 sampling rate and ~5 spans per traced request this
// window covers the last ~50k requests — plenty for "why was that
// request slow a moment ago" while bounding memory to ~256 KiB.
const DefaultRingSpans = 4096

// Ring is a fixed-size lock-free span buffer. Writers claim slots from
// a monotone counter and publish with a per-slot version (seqlock):
// odd while a write is in flight, even when stable. Readers snapshot
// without blocking writers; a slot overwritten mid-read is detected by
// the version changing and skipped. Every field is an atomic word, so
// the ring is torn-write-safe and clean under the race detector.
//
// Overwrite semantics are deliberate: the ring keeps the most recent
// spans and silently drops the oldest — it is a diagnostic window, not
// a log. In the pathological case of the write counter lapping a slot
// twice during one read, a snapshot can surface a span assembled from
// two writes; acceptable for diagnostics, impossible to hit with a
// 4096-slot ring and microsecond writes.
type Ring struct {
	mask  uint64
	next  atomic.Uint64
	total atomic.Uint64
	slots []ringSlot
}

type ringSlot struct {
	ver   atomic.Uint64
	trace atomic.Uint64
	seq   atomic.Uint64
	kind  atomic.Uint32
	start atomic.Int64
	dur   atomic.Int64
	arg   atomic.Int64
}

// NewRing builds a ring with at least n slots (rounded up to a power of
// two; n <= 0 uses DefaultRingSpans).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSpans
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &Ring{mask: uint64(size - 1), slots: make([]ringSlot, size)}
}

// Add records one span. Allocation-free; safe for concurrent use.
func (r *Ring) Add(s Span) {
	if r == nil {
		return
	}
	i := r.next.Add(1) - 1
	sl := &r.slots[i&r.mask]
	sl.ver.Add(1) // odd: write in flight
	sl.trace.Store(s.Trace)
	sl.seq.Store(s.Seq)
	sl.kind.Store(uint32(s.Kind))
	sl.start.Store(s.Start)
	sl.dur.Store(s.Dur)
	sl.arg.Store(s.Arg)
	sl.ver.Add(1) // even: stable
	r.total.Add(1)
}

// Total returns the number of spans ever recorded (recorded minus
// len(Snapshot) = spans the ring has dropped).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// Snapshot appends every currently stable span to dst and returns it,
// oldest first. Concurrent writers are never blocked; slots being
// written during the pass are skipped.
func (r *Ring) Snapshot(dst []Span) []Span {
	if r == nil {
		return dst
	}
	head := r.next.Load()
	n := uint64(len(r.slots))
	lo := uint64(0)
	if head > n {
		lo = head - n
	}
	for i := lo; i < head; i++ {
		sl := &r.slots[i&r.mask]
		v1 := sl.ver.Load()
		if v1 == 0 || v1&1 != 0 {
			continue
		}
		s := Span{
			Trace: sl.trace.Load(),
			Seq:   sl.seq.Load(),
			Kind:  Kind(sl.kind.Load()),
			Start: sl.start.Load(),
			Dur:   sl.dur.Load(),
			Arg:   sl.arg.Load(),
		}
		if sl.ver.Load() != v1 {
			continue // overwritten mid-read
		}
		dst = append(dst, s)
	}
	return dst
}

// SeqTraces is a small lossy seq → trace map: the leader's exec stage
// Puts (commit sequence, trace id) pairs for sampled requests, and the
// replication publisher Gets them to piggyback the id on the outgoing
// record. Fixed-size, allocation-free, safe for concurrent use; an
// entry may be overwritten by a later sequence hashing to the same
// slot, in which case the stream carries a zero id (span simply not
// closed — never a wrong closure, because Get re-checks the key).
type SeqTraces struct {
	seqs   [seqTraceSlots]atomic.Uint64
	traces [seqTraceSlots]atomic.Uint64
}

const seqTraceSlots = 1 << 12

// Put associates trace with seq. Zero values are ignored.
func (m *SeqTraces) Put(seq, trace uint64) {
	if m == nil || seq == 0 || trace == 0 {
		return
	}
	i := seq & (seqTraceSlots - 1)
	// Trace first, then the key: a reader that sees the key sees the
	// matching trace (single writer per seq; seqs are unique).
	m.traces[i].Store(trace)
	m.seqs[i].Store(seq)
}

// Get returns the trace associated with seq, or zero.
func (m *SeqTraces) Get(seq uint64) uint64 {
	if m == nil || seq == 0 {
		return 0
	}
	i := seq & (seqTraceSlots - 1)
	if m.seqs[i].Load() != seq {
		return 0
	}
	t := m.traces[i].Load()
	if m.seqs[i].Load() != seq {
		return 0 // overwritten between loads
	}
	return t
}
