package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// SpanJSON is the JSONL exchange form of a Span: one object per line on
// /debug/traces, consumed by `repro trace` when merging rings from a
// whole cluster. Trace ids travel as decimal strings — they are opaque
// 64-bit tokens, and strings survive every JSON consumer (including the
// Chrome trace viewer's JS) without precision loss.
type SpanJSON struct {
	Trace string `json:"trace,omitempty"`
	Kind  string `json:"kind"`
	Seq   uint64 `json:"seq,omitempty"`
	Start int64  `json:"start_ns"`
	Dur   int64  `json:"dur_ns"`
	Arg   int64  `json:"arg,omitempty"`
	// Node labels the process the span came from; empty on a node's own
	// /debug/traces output, filled in by the merge step.
	Node string `json:"node,omitempty"`
}

// ToJSON converts a span for serialization.
func (s Span) ToJSON(node string) SpanJSON {
	j := SpanJSON{Kind: s.Kind.String(), Seq: s.Seq, Start: s.Start, Dur: s.Dur, Arg: s.Arg, Node: node}
	if s.Trace != 0 {
		j.Trace = strconv.FormatUint(s.Trace, 10)
	}
	return j
}

// FromJSON converts back; unknown kinds are an error.
func (j SpanJSON) FromJSON() (Span, string, error) {
	k := KindByName(j.Kind)
	if k == NumKinds {
		return Span{}, "", fmt.Errorf("trace: unknown span kind %q", j.Kind)
	}
	s := Span{Kind: k, Seq: j.Seq, Start: j.Start, Dur: j.Dur, Arg: j.Arg}
	if j.Trace != "" {
		t, err := strconv.ParseUint(j.Trace, 10, 64)
		if err != nil {
			return Span{}, "", fmt.Errorf("trace: bad trace id %q: %v", j.Trace, err)
		}
		s.Trace = t
	}
	return s, j.Node, nil
}

// WriteJSONL writes spans one JSON object per line.
func WriteJSONL(w io.Writer, spans []Span, node string) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(s.ToJSON(node)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL span stream (blank lines skipped). The
// returned spans carry the node label embedded in each line.
func ReadJSONL(r io.Reader) ([]Span, []string, error) {
	var spans []Span
	var nodes []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var j SpanJSON
		if err := json.Unmarshal(line, &j); err != nil {
			return nil, nil, fmt.Errorf("trace: bad JSONL line: %v", err)
		}
		s, node, err := j.FromJSON()
		if err != nil {
			return nil, nil, err
		}
		spans = append(spans, s)
		nodes = append(nodes, node)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return spans, nodes, nil
}

// NodeSpans is one process's ring contents under its cluster-unique
// label ("leader", "follower-0", ...), the unit `repro trace` merges.
type NodeSpans struct {
	Node  string
	Spans []Span
}

// WriteChromeTrace merges per-node span sets into a single Chrome
// trace_event JSON document (load in chrome://tracing or Perfetto).
// Each node becomes a process; request-scoped spans group under their
// trace id as threads, process-scoped spans (fsync) under a "wal"
// thread. Complete events ("ph":"X") with microsecond timestamps.
func WriteChromeTrace(w io.Writer, nodes []NodeSpans) error {
	type chromeEvent struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  string         `json:"pid"`
		Tid  string         `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	var evs []chromeEvent
	for _, n := range nodes {
		for _, s := range n.Spans {
			tid := "wal"
			if s.Trace != 0 {
				tid = "trace-" + strconv.FormatUint(s.Trace, 10)
			}
			args := map[string]any{}
			if s.Seq != 0 {
				args["seq"] = s.Seq
			}
			if s.Arg != 0 {
				args["arg"] = s.Arg
			}
			if s.Trace&ServerOriginBit != 0 {
				args["server_origin"] = true
			}
			evs = append(evs, chromeEvent{
				Name: s.Kind.String(),
				Ph:   "X",
				Ts:   float64(s.Start) / 1e3,
				Dur:  float64(s.Dur) / 1e3,
				Pid:  n.Node,
				Tid:  tid,
				Args: args,
			})
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: evs}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Handler serves the ring as JSONL on GET — the /debug/traces endpoint
// of the telemetry listener. `?trace=<id>` filters to one trace id.
func Handler(r *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		spans := r.Snapshot(nil)
		if q := req.URL.Query().Get("trace"); q != "" {
			id, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			kept := spans[:0]
			for _, s := range spans {
				if s.Trace == id {
					kept = append(kept, s)
				}
			}
			spans = kept
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		WriteJSONL(w, spans, "")
	})
}
