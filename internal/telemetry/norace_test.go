//go:build !race

package telemetry_test

// raceEnabled gates the numeric alloc-pin assertions: the race detector
// instruments allocations, so under -race the pins still exercise the
// full path but skip the exact-zero check.
const raceEnabled = false
