// Package telemetry is the repo's metrics registry: named, labeled
// instruments over the same primitives the hot paths already use —
// atomic counters/gauges and the lock-free stats.Histogram — so that
// instrumenting the server, TM systems, WAL, and replication layers
// costs one atomic add per event and zero allocations at steady state.
//
// Registration happens once at wiring time (server construction) and
// may allocate; updates never do. Scraping (WritePrometheus) walks the
// registry read-only and renders Prometheus text exposition format,
// coarsened to one cumulative bucket per histogram octave.
//
// There is deliberately no package-global registry: each server owns a
// Registry instance, so parallel tests and multi-node processes (leader
// plus follower in one test binary) never collide.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sihtm/internal/stats"
)

// Kind is the Prometheus metric type of a family.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Unit declares how a histogram's raw nanosecond-domain buckets should
// be rendered: durations scale to seconds (Prometheus base unit),
// dimensionless distributions (batch sizes) render the bucket bounds
// verbatim.
type Unit int

const (
	UnitSeconds Unit = iota
	UnitCount
)

// Label is one name=value pair on a series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing series value. The zero value is
// ready; Add/Inc are one atomic add.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous series value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// series is one labeled member of a family. Exactly one of the value
// sources is set, matching the family kind.
type series struct {
	labels []Label
	sig    string // canonical "k1=v1,k2=v2" signature, sorted by key

	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *stats.Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	unit   Unit // histograms only
	series []*series
}

// DefaultSeriesLimit bounds the label cardinality of one family. The
// instruments here are all low-cardinality by construction (abort
// causes, TM system names, frame directions); hitting the limit means a
// caller is minting labels from request data, which is a bug.
const DefaultSeriesLimit = 64

// Registry holds metric families. Create with NewRegistry; methods are
// safe for concurrent use, though registration normally happens once at
// wiring time.
type Registry struct {
	mu          sync.Mutex
	families    map[string]*family
	seriesLimit int

	selfOnce sync.Once
	selfHist *stats.Histogram // SelfObserve's scrape-duration histogram
}

// NewRegistry returns an empty registry with DefaultSeriesLimit.
func NewRegistry() *Registry {
	return &Registry{
		families:    make(map[string]*family),
		seriesLimit: DefaultSeriesLimit,
	}
}

// SetSeriesLimit overrides the per-family label cardinality bound.
func (r *Registry) SetSeriesLimit(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesLimit = n
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// signature canonicalizes a label set: sorted by key, "k=v" joined with
// commas. It doubles as the ordering key for deterministic output.
func signature(labels []Label) (string, error) {
	if len(labels) == 0 {
		return "", nil
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if !validName(l.Key) {
			return "", fmt.Errorf("telemetry: invalid label key %q", l.Key)
		}
		if i > 0 && ls[i-1].Key == l.Key {
			return "", fmt.Errorf("telemetry: duplicate label key %q", l.Key)
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String(), nil
}

// register validates and inserts one series, enforcing kind consistency
// across a family, series uniqueness, and the cardinality bound.
func (r *Registry) register(name, help string, kind Kind, unit Unit, labels []Label, s *series) error {
	if !validName(name) {
		return fmt.Errorf("telemetry: invalid metric name %q", name)
	}
	sig, err := signature(labels)
	if err != nil {
		return err
	}
	s.labels = append([]Label(nil), labels...)
	sort.Slice(s.labels, func(i, j int) bool { return s.labels[i].Key < s.labels[j].Key })
	s.sig = sig

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, unit: unit}
		r.families[name] = f
	} else {
		if f.kind != kind {
			return fmt.Errorf("telemetry: %s already registered as %s, not %s", name, f.kind, kind)
		}
		if kind == KindHistogram && f.unit != unit {
			return fmt.Errorf("telemetry: %s already registered with a different unit", name)
		}
	}
	for _, have := range f.series {
		if have.sig == sig {
			return fmt.Errorf("telemetry: duplicate series %s{%s}", name, sig)
		}
	}
	if len(f.series) >= r.seriesLimit {
		return fmt.Errorf("telemetry: family %s exceeds series limit %d — label values must be bounded, not request-derived", name, r.seriesLimit)
	}
	f.series = append(f.series, s)
	return nil
}

// Counter registers and returns a new counter series.
func (r *Registry) Counter(name, help string, labels ...Label) (*Counter, error) {
	c := &Counter{}
	if err := r.register(name, help, KindCounter, 0, labels, &series{counter: c}); err != nil {
		return nil, err
	}
	return c, nil
}

// MustCounter is Counter, panicking on registration error. Wiring-time
// registration failures are programming errors.
func (r *Registry) MustCounter(name, help string, labels ...Label) *Counter {
	c, err := r.Counter(name, help, labels...)
	if err != nil {
		panic(err)
	}
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge to counters a subsystem already maintains
// (stats.Collector slots, WAL record counts) without double counting.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) error {
	return r.register(name, help, KindCounter, 0, labels, &series{counterFn: fn})
}

// MustCounterFunc is CounterFunc, panicking on error.
func (r *Registry) MustCounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if err := r.CounterFunc(name, help, fn, labels...); err != nil {
		panic(err)
	}
}

// Gauge registers and returns a new gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) (*Gauge, error) {
	g := &Gauge{}
	if err := r.register(name, help, KindGauge, 0, labels, &series{gauge: g}); err != nil {
		return nil, err
	}
	return g, nil
}

// MustGauge is Gauge, panicking on error.
func (r *Registry) MustGauge(name, help string, labels ...Label) *Gauge {
	g, err := r.Gauge(name, help, labels...)
	if err != nil {
		panic(err)
	}
	return g
}

// GaugeFunc registers a gauge series computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) error {
	return r.register(name, help, KindGauge, 0, labels, &series{gaugeFn: fn})
}

// MustGaugeFunc is GaugeFunc, panicking on error.
func (r *Registry) MustGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if err := r.GaugeFunc(name, help, fn, labels...); err != nil {
		panic(err)
	}
}

// Histogram registers a fresh stats.Histogram series and returns it;
// callers Observe durations on it directly (UnitSeconds) or feed counts
// through time.Duration units (UnitCount — Observe(time.Duration(n))).
func (r *Registry) Histogram(name, help string, unit Unit, labels ...Label) (*stats.Histogram, error) {
	h := &stats.Histogram{}
	if err := r.RegisterHistogram(name, help, unit, h, labels...); err != nil {
		return nil, err
	}
	return h, nil
}

// MustHistogram is Histogram, panicking on error.
func (r *Registry) MustHistogram(name, help string, unit Unit, labels ...Label) *stats.Histogram {
	h, err := r.Histogram(name, help, unit, labels...)
	if err != nil {
		panic(err)
	}
	return h
}

// RegisterHistogram attaches an existing histogram (the server's live
// service-latency histogram, the WAL's fsync histogram) as a series.
func (r *Registry) RegisterHistogram(name, help string, unit Unit, h *stats.Histogram, labels ...Label) error {
	return r.register(name, help, KindHistogram, unit, labels, &series{hist: h})
}

// MustRegisterHistogram is RegisterHistogram, panicking on error.
func (r *Registry) MustRegisterHistogram(name, help string, unit Unit, h *stats.Histogram, labels ...Label) {
	if err := r.RegisterHistogram(name, help, unit, h, labels...); err != nil {
		panic(err)
	}
}

// sortedFamilies snapshots the family list in name order for rendering.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// SeriesInfo identifies one registered series: family name, kind, unit
// (histograms only), and the sorted label set.
type SeriesInfo struct {
	Name   string
	Kind   Kind
	Unit   Unit
	Labels []Label
}

// SeriesReader is one series plus its read path. Histograms expose the
// live histogram in Hist (Value is nil); counters and gauges expose a
// Value closure. Neither path allocates, so a scraper that preallocated
// its destination (internal/tsdb's snapshot ring) can sample the whole
// registry allocation-free.
type SeriesReader struct {
	Info  SeriesInfo
	Value func() float64
	Hist  *stats.Histogram
}

// Readers snapshots the registry as a flat reader list in deterministic
// (family name, label signature) order. Series registered after the
// call are not included — scrape layouts are built once at wiring time.
func (r *Registry) Readers() []SeriesReader {
	var out []SeriesReader
	for _, f := range r.sortedFamilies() {
		r.mu.Lock()
		ss := append([]*series(nil), f.series...)
		r.mu.Unlock()
		sort.Slice(ss, func(i, j int) bool { return ss[i].sig < ss[j].sig })
		for _, s := range ss {
			rd := SeriesReader{Info: SeriesInfo{
				Name:   f.name,
				Kind:   f.kind,
				Unit:   f.unit,
				Labels: append([]Label(nil), s.labels...),
			}}
			switch {
			case s.hist != nil:
				rd.Hist = s.hist
			case s.counter != nil:
				c := s.counter
				rd.Value = func() float64 { return float64(c.Value()) }
			case s.counterFn != nil:
				fn := s.counterFn
				rd.Value = func() float64 { return float64(fn()) }
			case s.gauge != nil:
				g := s.gauge
				rd.Value = func() float64 { return float64(g.Value()) }
			default:
				rd.Value = s.gaugeFn
			}
			out = append(out, rd)
		}
	}
	return out
}

// Self-observability instrument names: the registry watching itself.
const (
	// ScrapeDurationName is the histogram of full-registry scrape
	// durations, observed in microseconds (UnitCount domain).
	ScrapeDurationName = "sihtm_telemetry_scrape_duration_us"
	// SeriesTotalName is the gauge counting registered series across
	// all families, computed at scrape time.
	SeriesTotalName = "sihtm_telemetry_series_total"
)

// SelfObserve registers the registry's own meta-instruments — the
// scrape-duration histogram and the series-count gauge — and returns
// the histogram for scrapers to feed. Idempotent: repeated calls return
// the same histogram. Opt-in rather than part of NewRegistry so that
// registries which are never scraped stay exactly as before.
func (r *Registry) SelfObserve() *stats.Histogram {
	r.selfOnce.Do(func() {
		r.selfHist = r.MustHistogram(ScrapeDurationName,
			"Duration of one full-registry scrape in microseconds.", UnitCount)
		r.MustGaugeFunc(SeriesTotalName,
			"Registered series across all families.",
			func() float64 { return float64(r.numSeries()) })
	})
	return r.selfHist
}

// numSeries counts every registered series across families.
func (r *Registry) numSeries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, f := range r.families {
		n += len(f.series)
	}
	return n
}
