package telemetry_test

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sihtm/internal/telemetry"
)

// The counter/gauge text format is an exact contract: golden output,
// deterministic ordering (families by name, series by label signature
// regardless of registration order).
func TestWritePrometheusGolden(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Register out of order to prove the renderer sorts.
	g := reg.MustGauge("zz_gauge", "A gauge.")
	g.Set(-3)
	b := reg.MustCounter("aa_requests_total", "Requests by kind.", telemetry.L("kind", "write"))
	a := reg.MustCounter("aa_requests_total", "", telemetry.L("kind", "read"))
	a.Add(41)
	a.Inc()
	b.Add(7)
	reg.MustGaugeFunc("mm_ratio", "A computed gauge.", func() float64 { return 0.25 })

	want := strings.Join([]string{
		`# HELP aa_requests_total Requests by kind.`,
		`# TYPE aa_requests_total counter`,
		`aa_requests_total{kind="read"} 42`,
		`aa_requests_total{kind="write"} 7`,
		`# HELP mm_ratio A computed gauge.`,
		`# TYPE mm_ratio gauge`,
		`mm_ratio 0.25`,
		`# HELP zz_gauge A gauge.`,
		`# TYPE zz_gauge gauge`,
		`zz_gauge -3`,
		``,
	}, "\n")
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Fatalf("golden mismatch:\n got:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// Histogram rendering: cumulative non-decreasing buckets with ascending
// le bounds ending in +Inf, correct _count/_sum, and deterministic
// output scrape over scrape.
func TestWritePrometheusHistogram(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.MustHistogram("lat_seconds", "Latency.", telemetry.UnitSeconds)
	for _, d := range []time.Duration{3, 1000, 1000, 250000, time.Second} {
		h.Observe(d)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	var les []float64
	var cums []uint64
	var gotCount uint64
	var gotSum float64
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "lat_seconds_bucket{le=\"+Inf\"}"):
			v, _ := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
			cums = append(cums, v)
			les = append(les, 1e308)
		case strings.HasPrefix(line, "lat_seconds_bucket{le=\""):
			rest := strings.TrimPrefix(line, "lat_seconds_bucket{le=\"")
			i := strings.Index(rest, "\"}")
			le, err := strconv.ParseFloat(rest[:i], 64)
			if err != nil {
				t.Fatalf("bad le in %q: %v", line, err)
			}
			v, _ := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
			les = append(les, le)
			cums = append(cums, v)
		case strings.HasPrefix(line, "lat_seconds_count"):
			gotCount, _ = strconv.ParseUint(strings.Fields(line)[1], 10, 64)
		case strings.HasPrefix(line, "lat_seconds_sum"):
			gotSum, _ = strconv.ParseFloat(strings.Fields(line)[1], 64)
		}
	}
	if len(les) < 10 {
		t.Fatalf("only %d buckets rendered:\n%s", len(les), out)
	}
	if !sort.Float64sAreSorted(les) {
		t.Fatalf("le bounds not ascending: %v", les)
	}
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			t.Fatalf("cumulative counts decreased at %d: %v", i, cums)
		}
	}
	if gotCount != 5 || cums[len(cums)-1] != 5 {
		t.Fatalf("count = %d, +Inf bucket = %d, want 5", gotCount, cums[len(cums)-1])
	}
	wantSum := float64(3+1000+1000+250000) / 1e9 // + 1s
	wantSum += 1.0
	if gotSum < wantSum*0.999 || gotSum > wantSum*1.001 {
		t.Fatalf("sum = %g, want ~%g", gotSum, wantSum)
	}

	var sb2 strings.Builder
	if err := reg.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("output not deterministic across scrapes")
	}
}

// UnitCount histograms render bucket bounds verbatim, not divided by 1e9.
func TestHistogramUnitCount(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.MustHistogram("batch_ops", "Batch sizes.", telemetry.UnitCount)
	h.Observe(time.Duration(16))
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	// 16 lands in bucket [16,20), rendered at the le=32 octave edge; the
	// le=16 bucket (exclusive upper bound) must not contain it.
	if !strings.Contains(sb.String(), `batch_ops_bucket{le="16"} 0`) ||
		!strings.Contains(sb.String(), `batch_ops_bucket{le="32"} 1`) {
		t.Fatalf("16-op observation misplaced:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "batch_ops_sum 16\n") {
		t.Fatalf("sum not rendered verbatim:\n%s", sb.String())
	}
}

// Concurrent increments across goroutines must not lose counts (run
// under -race in CI).
func TestConcurrentIncrements(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.MustCounter("hits_total", "")
	g := reg.MustGauge("level", "")
	h := reg.MustHistogram("obs_seconds", "", telemetry.UnitSeconds)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A scraper races the writers: output must stay well-formed.
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.WritePrometheus(io.Discard)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	close(stop)
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %d, want %d", g.Value(), workers*per)
	}
	if n := h.Snapshot().Count(); n != workers*per {
		t.Fatalf("histogram count = %d, want %d", n, workers*per)
	}
}

// Label cardinality is bounded per family; exceeding the limit is a
// registration error, not a silent series explosion.
func TestSeriesLimit(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetSeriesLimit(4)
	for i := 0; i < 4; i++ {
		if _, err := reg.Counter("bounded_total", "", telemetry.L("k", fmt.Sprint(i))); err != nil {
			t.Fatalf("series %d rejected early: %v", i, err)
		}
	}
	if _, err := reg.Counter("bounded_total", "", telemetry.L("k", "overflow")); err == nil {
		t.Fatal("5th series accepted past limit 4")
	} else if !strings.Contains(err.Error(), "series limit") {
		t.Fatalf("unhelpful limit error: %v", err)
	}
}

func TestRegistrationErrors(t *testing.T) {
	reg := telemetry.NewRegistry()
	if _, err := reg.Counter("bad name", ""); err == nil {
		t.Fatal("invalid metric name accepted")
	}
	if _, err := reg.Counter("x_total", "", telemetry.L("0bad", "v")); err == nil {
		t.Fatal("invalid label key accepted")
	}
	if _, err := reg.Counter("dup_total", "", telemetry.L("a", "1")); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Counter("dup_total", "", telemetry.L("a", "1")); err == nil {
		t.Fatal("duplicate series accepted")
	}
	if _, err := reg.Counter("x2_total", "", telemetry.L("a", "1"), telemetry.L("a", "2")); err == nil {
		t.Fatal("duplicate label key in one series accepted")
	}
	if _, err := reg.Gauge("dup_total", ""); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

// Label values with quotes, backslashes and newlines must be escaped.
func TestLabelEscaping(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.MustCounter("esc_total", "", telemetry.L("v", "a\"b\\c\nd"))
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{v="a\"b\\c\nd"} 0`) {
		t.Fatalf("escaping wrong:\n%s", sb.String())
	}
}

// Instrument updates are the hot path: one atomic op, zero allocations.
func TestUpdateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	reg := telemetry.NewRegistry()
	c := reg.MustCounter("c_total", "")
	g := reg.MustGauge("g", "")
	h := reg.MustHistogram("h_seconds", "", telemetry.UnitSeconds)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(7) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(time.Microsecond) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
}

// The HTTP endpoint set: /metrics scrapes, /healthz always, /readyz
// follows the callback, pprof answers.
func TestHTTPEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.MustCounter("up_total", "").Add(3)
	ready := true
	var mu sync.Mutex
	srv, err := telemetry.ListenAndServe("127.0.0.1:0", reg, func() error {
		mu.Lock()
		defer mu.Unlock()
		if !ready {
			return fmt.Errorf("draining")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up_total 3") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	mu.Lock()
	ready = false
	mu.Unlock()
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz while not ready = %d %q", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}
