package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sihtm/internal/stats"
)

// WritePrometheus renders every family in text exposition format,
// families sorted by name and series by label signature, so output is
// deterministic (golden-testable) scrape over scrape.
//
// Histograms are coarsened to one cumulative `le` bucket per octave of
// the underlying log-bucketed histogram (~38 buckets instead of 152),
// which keeps scrape payloads small while preserving the ~2x bucket
// resolution Prometheus histogram_quantile expects to work with.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		series := append([]*series(nil), f.series...)
		// Sort by signature for stable output; registration order is
		// wiring order, not a rendering contract.
		for i := 1; i < len(series); i++ {
			for j := i; j > 0 && series[j-1].sig > series[j].sig; j-- {
				series[j-1], series[j] = series[j], series[j-1]
			}
		}
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range series {
			switch f.kind {
			case KindCounter:
				v := uint64(0)
				if s.counterFn != nil {
					v = s.counterFn()
				} else {
					v = s.counter.Value()
				}
				fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(s.labels, ""), v)
			case KindGauge:
				if s.gaugeFn != nil {
					fmt.Fprintf(bw, "%s%s %s\n", f.name, renderLabels(s.labels, ""), formatFloat(s.gaugeFn()))
				} else {
					fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(s.labels, ""), s.gauge.Value())
				}
			case KindHistogram:
				writeHistogram(bw, f, s)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative per-octave
// buckets, +Inf, _sum, and _count.
func writeHistogram(bw *bufio.Writer, f *family, s *series) {
	snap := s.hist.Snapshot()
	var cum uint64
	for slot := 0; slot < len(snap.Counts); slot++ {
		cum += snap.Counts[slot]
		_, hi := stats.HistogramBucketBounds(slot)
		// Emit at octave edges: the last sub-bucket of each octave (and
		// the final slot, whose bucket clamps everything larger).
		last := slot == len(snap.Counts)-1
		var nextLo uint64
		if !last {
			nextLo, _ = stats.HistogramBucketBounds(slot + 1)
		}
		octaveEdge := last || isPow2(nextLo)
		if !octaveEdge {
			continue
		}
		le := scaleBound(hi, f.unit)
		fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, le), cum)
	}
	fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, "+Inf"), cum)
	sum := float64(snap.SumNs)
	if f.unit == UnitSeconds {
		sum /= 1e9
	}
	fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, renderLabels(s.labels, ""), formatFloat(sum))
	fmt.Fprintf(bw, "%s_count%s %d\n", f.name, renderLabels(s.labels, ""), cum)
}

func isPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// scaleBound renders a bucket upper bound in the family's unit.
func scaleBound(hiNs uint64, u Unit) string {
	if u == UnitSeconds {
		return formatFloat(float64(hiNs) / 1e9)
	}
	return formatFloat(float64(hiNs))
}

// renderLabels renders {k="v",...}, appending le when non-empty. No
// labels and no le renders as the empty string.
func renderLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest representation that round-trips, no exponent for the common
// magnitudes our instruments produce.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
