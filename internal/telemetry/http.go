package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Extra mounts one additional handler onto the observability mux — the
// transaction server adds /debug/traces this way.
type Extra struct {
	Path    string
	Handler http.Handler
}

// NewHandler builds the observability mux:
//
//	/metrics        Prometheus text exposition of reg
//	/healthz        200 while the process is up (liveness)
//	/readyz         200 while ready() returns nil (readiness); the
//	                server wires "admission open" and, on followers,
//	                "watermark advancing" into it
//	/debug/pprof/*  the standard Go profiling endpoints
//
// ready may be nil, in which case /readyz behaves like /healthz.
// Extras are mounted verbatim after the built-ins.
func NewHandler(reg *Registry, ready func() error, extras ...Extra) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil {
			if err := ready(); err != nil {
				http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extras {
		mux.Handle(e.Path, e.Handler)
	}
	return mux
}

// Server is a running observability HTTP endpoint.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// ListenAndServe binds addr (use port 0 for an ephemeral port in tests)
// and serves NewHandler(reg, ready, extras...) in a background
// goroutine.
func ListenAndServe(addr string, reg *Registry, ready func() error, extras ...Extra) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		lis: lis,
		// No WriteTimeout: pprof profile/trace requests legitimately
		// stream for their ?seconds= duration.
		srv: &http.Server{Handler: NewHandler(reg, ready, extras...), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(lis) }()
	return s, nil
}

// Addr returns the bound listen address ("127.0.0.1:9464").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the listener and any idle connections.
func (s *Server) Close() error { return s.srv.Close() }
