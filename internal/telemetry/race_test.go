//go:build race

package telemetry_test

// raceEnabled gates the numeric alloc-pin assertions; see norace_test.go.
const raceEnabled = true
