package tmtest

import (
	"testing"

	"sihtm/internal/memsim"
	"sihtm/internal/tm"
)

// The conformance suite runs every isolation property against every
// concurrency control. SI-HTM is asserted to *allow* write skew (that is
// the semantics the paper proves); everything else must forbid it.

func TestCounterConformance(t *testing.T) {
	for _, f := range StandardFactories(0) {
		t.Run(f.Name, func(t *testing.T) {
			heap := memsim.NewHeapLines(1 << 10)
			x := heap.AllocLine()
			sys := f.New(heap, 4)
			CheckCounter(t, sys, 4, 300, x, heap)
		})
	}
}

func TestSnapshotConsistencyConformance(t *testing.T) {
	for _, f := range StandardFactories(0) {
		t.Run(f.Name, func(t *testing.T) {
			heap := memsim.NewHeapLines(1 << 10)
			x := heap.AllocLine()
			y := heap.AllocLine()
			sys := f.New(heap, 4)
			CheckSnapshotConsistency(t, sys, heap, x, y, 400)
		})
	}
}

func TestRepeatableReadConformance(t *testing.T) {
	for _, f := range StandardFactories(0) {
		t.Run(f.Name, func(t *testing.T) {
			heap := memsim.NewHeapLines(1 << 10)
			x := heap.AllocLine()
			sys := f.New(heap, 2)
			CheckRepeatableRead(t, sys, heap, x)
		})
	}
}

func TestWriteSkewConformance(t *testing.T) {
	const rounds = 60
	for _, f := range StandardFactories(0) {
		t.Run(f.Name, func(t *testing.T) {
			heap := memsim.NewHeapLines(1 << 10)
			x := heap.AllocLine()
			y := heap.AllocLine()
			sys := f.New(heap, 2)
			skews := CheckWriteSkew(t, sys, heap, x, y, rounds, f.Serializable)
			if !f.Serializable && skews == 0 {
				t.Errorf("%s: no write skew in %d rounds; SI semantics should admit it", f.Name, rounds)
			}
		})
	}
}

func TestReadPromotionConformance(t *testing.T) {
	for _, f := range StandardFactories(0) {
		t.Run(f.Name, func(t *testing.T) {
			heap := memsim.NewHeapLines(1 << 10)
			x := heap.AllocLine()
			y := heap.AllocLine()
			sys := f.New(heap, 2)
			CheckReadPromotion(t, sys, heap, x, y, 40)
		})
	}
}

func TestFallbackConformance(t *testing.T) {
	// 8-line TMCAM; 16-line write set forces the HTM systems to the SGL.
	for _, f := range StandardFactories(8) {
		t.Run(f.Name, func(t *testing.T) {
			heap := memsim.NewHeapLines(1 << 10)
			lines := make([]memsim.Addr, 16)
			for i := range lines {
				lines[i] = heap.AllocLine()
			}
			sys := f.New(heap, 2)
			CheckFallback(t, sys, heap, lines)
		})
	}
}

func TestTransfersConformance(t *testing.T) {
	for _, f := range StandardFactories(0) {
		t.Run(f.Name, func(t *testing.T) {
			heap := memsim.NewHeapLines(1 << 10)
			accounts := make([]memsim.Addr, 8)
			for i := range accounts {
				accounts[i] = heap.AllocLine()
			}
			sys := f.New(heap, 4)
			CheckTransfers(t, sys, heap, accounts, 4, 400)
		})
	}
}

func TestReadOnlyWriteEnforcement(t *testing.T) {
	for _, f := range StandardFactories(0) {
		if f.Name != "si-htm" && f.Name != "p8tm" {
			continue // only the uninstrumented RO fast paths enforce the promise
		}
		t.Run(f.Name, func(t *testing.T) {
			heap := memsim.NewHeapLines(1 << 10)
			x := heap.AllocLine()
			sys := f.New(heap, 1)
			CheckReadOnlyWritePanics(t, sys, x)
		})
	}
}

func TestReadOnlyFastPathNeverAborts(t *testing.T) {
	for _, f := range StandardFactories(0) {
		if f.Name != "si-htm" && f.Name != "p8tm" {
			continue
		}
		t.Run(f.Name, func(t *testing.T) {
			heap := memsim.NewHeapLines(1 << 10)
			x := heap.AllocLine()
			sys := f.New(heap, 2)
			for i := 0; i < 500; i++ {
				sys.Atomic(0, tm.KindReadOnly, func(ops tm.Ops) {
					_ = ops.Read(x)
				})
			}
			s := sys.Collector().Snapshot()
			if s.CommitsRO != 500 {
				t.Errorf("%s: read-only commits = %d, want 500", f.Name, s.CommitsRO)
			}
			if s.TotalAborts() != 0 {
				t.Errorf("%s: read-only transactions aborted %d times, want 0", f.Name, s.TotalAborts())
			}
		})
	}
}
