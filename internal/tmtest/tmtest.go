// Package tmtest is a reusable conformance suite for tm.System
// implementations. Every concurrency control in the repository — SI-HTM
// and all baselines — must pass the isolation properties it encodes;
// serializable systems additionally must forbid the write skew that
// snapshot isolation admits (and SI-HTM's tests assert the skew is
// observable, since exhibiting SI rather than serializability is the
// paper's point).
package tmtest

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sihtm/internal/htm"
	"sihtm/internal/htmtm"
	"sihtm/internal/memsim"
	"sihtm/internal/p8tm"
	"sihtm/internal/sgl"
	"sihtm/internal/sihtm"
	"sihtm/internal/silo"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
)

// Factory describes a system under test.
type Factory struct {
	// Name labels subtests.
	Name string
	// Serializable reports whether the system promises full
	// serializability (true for all but SI-HTM, which promises SI).
	Serializable bool
	// New builds a fresh system over heap for the given thread count.
	New func(heap *memsim.Heap, threads int) tm.System
}

// testTopology is the default machine for conformance tests: 4 cores ×
// SMT-2 = 8 hardware threads.
func testTopology() topology.Topology { return topology.New(4, 2) }

func newMachine(heap *memsim.Heap, tmcamLines int) *htm.Machine {
	return htm.NewMachine(heap, htm.Config{Topology: testTopology(), TMCAMLines: tmcamLines})
}

// StandardFactories returns one factory per system, configured with the
// given TMCAM size (0 = hardware default of 64 lines).
func StandardFactories(tmcamLines int) []Factory {
	return []Factory{
		{Name: "sgl", Serializable: true, New: func(h *memsim.Heap, n int) tm.System {
			return sgl.NewSystem(newMachine(h, tmcamLines), n)
		}},
		{Name: "htm", Serializable: true, New: func(h *memsim.Heap, n int) tm.System {
			return htmtm.NewSystem(newMachine(h, tmcamLines), n, htmtm.Config{})
		}},
		{Name: "si-htm", Serializable: false, New: func(h *memsim.Heap, n int) tm.System {
			return sihtm.NewSystem(newMachine(h, tmcamLines), n, sihtm.Config{})
		}},
		{Name: "p8tm", Serializable: true, New: func(h *memsim.Heap, n int) tm.System {
			return p8tm.NewSystem(newMachine(h, tmcamLines), n, p8tm.Config{})
		}},
		{Name: "silo", Serializable: true, New: func(h *memsim.Heap, n int) tm.System {
			return silo.NewSystem(h, n)
		}},
	}
}

// CheckCounter runs concurrent read-modify-write increments on one shared
// word and asserts no update is lost. Lost updates are forbidden by
// serializability and by SI alike (write-write conflicts must abort), so
// every system must pass.
func CheckCounter(t *testing.T, sys tm.System, threads, perThread int, x memsim.Addr, heap *memsim.Heap) {
	t.Helper()
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				sys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
					ops.Write(x, ops.Read(x)+1)
				})
			}
		}(id)
	}
	wg.Wait()
	want := uint64(threads * perThread)
	if got := heap.Load(x); got != want {
		t.Errorf("%s: counter = %d, want %d (lost updates)", sys.Name(), got, want)
	}
	s := sys.Collector().Snapshot()
	if s.Commits != want {
		t.Errorf("%s: commits = %d, want %d", sys.Name(), s.Commits, want)
	}
}

// CheckSnapshotConsistency has writers atomically increment a pair of
// words on distinct cache lines (keeping x == y) while read-only
// transactions assert the pair is never observed torn. Both SI and
// serializability forbid a torn snapshot.
func CheckSnapshotConsistency(t *testing.T, sys tm.System, heap *memsim.Heap, x, y memsim.Addr, rounds int) {
	t.Helper()
	const writers = 2
	const readers = 2
	var torn atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				sys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
					v := ops.Read(x)
					ops.Write(x, v+1)
					ops.Write(y, v+1)
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				var a, b uint64
				sys.Atomic(id, tm.KindReadOnly, func(ops tm.Ops) {
					a = ops.Read(x)
					b = ops.Read(y)
				})
				if a != b {
					torn.Store(true)
					return
				}
			}
		}(writers + r)
	}
	wg.Wait()
	if torn.Load() {
		t.Errorf("%s: read-only transaction observed torn snapshot", sys.Name())
	}
	if gx, gy := heap.Load(x), heap.Load(y); gx != uint64(writers*rounds) || gx != gy {
		t.Errorf("%s: final pair (%d,%d), want (%d,%d)", sys.Name(), gx, gy, writers*rounds, writers*rounds)
	}
}

// CheckWriteSkew runs the classic write-skew anomaly with a barrier that
// forces both transactions to read before either writes:
//
//	t1: if x+y == 0 { x = 1 }        t2: if x+y == 0 { y = 1 }
//
// Serializable systems must end each round with x+y <= 1. Snapshot
// isolation admits x+y == 2. Returns how many of the rounds exhibited the
// skew so SI callers can assert it actually occurred.
func CheckWriteSkew(t *testing.T, sys tm.System, heap *memsim.Heap, x, y memsim.Addr, rounds int, serializable bool) (skews int) {
	t.Helper()
	for round := 0; round < rounds; round++ {
		heap.Store(x, 0)
		heap.Store(y, 0)
		var phase atomic.Int32 // counts transactions that finished reading
		var wg sync.WaitGroup
		run := func(id int, own memsim.Addr) {
			defer wg.Done()
			sys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
				sum := ops.Read(x) + ops.Read(y)
				phase.Add(1)
				// Wait (bounded) for the peer to finish reading, so the
				// reads of both transactions overlap. Bounded so that a
				// serializable system that kills the peer cannot deadlock
				// this barrier; yielding so the peer gets scheduled even on
				// a single-CPU host.
				for spin := 0; phase.Load() < 2 && spin < 1<<16; spin++ {
					runtime.Gosched()
				}
				if sum == 0 {
					ops.Write(own, 1)
				}
			})
		}
		wg.Add(2)
		go run(0, x)
		go run(1, y)
		wg.Wait()
		if got := heap.Load(x) + heap.Load(y); got == 2 {
			skews++
			if serializable {
				t.Errorf("%s: write skew on round %d (x+y == 2) under a serializable system", sys.Name(), round)
				return skews
			}
		}
	}
	return skews
}

// CheckReadPromotion repeats the write-skew rounds with the paper's §2.1
// fix: the problematic read is promoted into the write set, which turns
// the skew into a write-write conflict that SI must abort. No system may
// exhibit the skew.
func CheckReadPromotion(t *testing.T, sys tm.System, heap *memsim.Heap, x, y memsim.Addr, rounds int) {
	t.Helper()
	for round := 0; round < rounds; round++ {
		heap.Store(x, 0)
		heap.Store(y, 0)
		var phase atomic.Int32
		var wg sync.WaitGroup
		run := func(id int, own, other memsim.Addr) {
			defer wg.Done()
			sys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
				vOther := ops.Read(other)
				ops.Write(other, vOther) // read promotion
				sum := ops.Read(own) + vOther
				phase.Add(1)
				for spin := 0; phase.Load() < 2 && spin < 1<<16; spin++ {
					runtime.Gosched()
				}
				if sum == 0 {
					ops.Write(own, 1)
				}
			})
		}
		wg.Add(2)
		go run(0, x, y)
		go run(1, y, x)
		wg.Wait()
		if got := heap.Load(x) + heap.Load(y); got == 2 {
			t.Errorf("%s: write skew despite read promotion (round %d)", sys.Name(), round)
			return
		}
	}
}

// CheckRepeatableRead scripts Figure 3's anomaly attempt: a transaction
// reads x, a concurrent writer transaction commits x, and the first
// transaction reads x again. SI forbids observing two different values.
// The writer's Atomic necessarily blocks until the reader finishes (that
// is the safety wait), so the writer runs on its own goroutine.
func CheckRepeatableRead(t *testing.T, sys tm.System, heap *memsim.Heap, x memsim.Addr) {
	t.Helper()
	heap.Store(x, 0)
	var started atomic.Bool
	// mismatch is only meaningful for the attempt that actually commits;
	// optimistic systems (Silo) may expose inconsistent reads in attempts
	// they subsequently abort and retry.
	var first, second uint64
	var mismatch bool

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		attempts := 0
		sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
			attempts++
			if attempts > 1 {
				// A single-version SI implementation is allowed to resolve
				// the conflict by killing one side; on retry just read once.
				first = ops.Read(x)
				second = first
				mismatch = false
				return
			}
			first = ops.Read(x)
			started.Store(true)
			// Give the writer time to run its body and enter its commit
			// phase; it must not become visible while we are active.
			time.Sleep(20 * time.Millisecond)
			second = ops.Read(x)
			mismatch = first != second
		})
	}()
	go func() {
		defer wg.Done()
		for !started.Load() {
			runtime.Gosched()
		}
		sys.Atomic(1, tm.KindUpdate, func(ops tm.Ops) {
			ops.Write(x, ops.Read(x)+1)
		})
	}()
	wg.Wait()
	if mismatch {
		t.Errorf("%s: non-repeatable read: first=%d second=%d", sys.Name(), first, second)
	}
}

// CheckFallback forces the SGL fall-back by running an update transaction
// whose write set exceeds the TMCAM; the transaction must still commit
// (through the serial path) with its writes intact.
func CheckFallback(t *testing.T, sys tm.System, heap *memsim.Heap, lines []memsim.Addr) {
	t.Helper()
	sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
		for i, a := range lines {
			ops.Write(a, uint64(i)+1)
		}
	})
	for i, a := range lines {
		if got := heap.Load(a); got != uint64(i)+1 {
			t.Errorf("%s: line %d = %d, want %d", sys.Name(), i, got, i+1)
		}
	}
	s := sys.Collector().Snapshot()
	if s.Commits != 1 {
		t.Errorf("%s: commits = %d, want 1", sys.Name(), s.Commits)
	}
}

// CheckTransfers runs a random transfer matrix: `threads` workers move
// random amounts between `accounts` accounts (update transactions) while
// read-only audits sum all balances. Both SI and serializability require
// that every audit observes the exact conserved total and that the final
// balances sum to the initial total.
func CheckTransfers(t *testing.T, sys tm.System, heap *memsim.Heap, accounts []memsim.Addr, threads, opsPerThread int) {
	t.Helper()
	const initial = 1000
	for _, a := range accounts {
		heap.Store(a, initial)
	}
	total := uint64(len(accounts)) * initial

	var badAudit atomic.Bool
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := uint64(id)*0x9e3779b97f4a7c15 + 1
			next := func(n int) int {
				seed = seed*6364136223846793005 + 1442695040888963407
				return int((seed >> 33) % uint64(n))
			}
			for i := 0; i < opsPerThread; i++ {
				if i%8 == 7 { // audit
					var sum uint64
					sys.Atomic(id, tm.KindReadOnly, func(ops tm.Ops) {
						sum = 0
						for _, a := range accounts {
							sum += ops.Read(a)
						}
					})
					if sum != total {
						badAudit.Store(true)
						return
					}
					continue
				}
				from := accounts[next(len(accounts))]
				to := accounts[next(len(accounts))]
				amount := uint64(next(17))
				sys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
					f := ops.Read(from)
					if f < amount {
						return
					}
					ops.Write(from, f-amount)
					if to != from {
						ops.Write(to, ops.Read(to)+amount)
					} else {
						ops.Write(from, f) // self-transfer: restore
					}
				})
			}
		}(id)
	}
	wg.Wait()
	if badAudit.Load() {
		t.Errorf("%s: read-only audit observed a non-conserved total", sys.Name())
	}
	var sum uint64
	for _, a := range accounts {
		sum += heap.Load(a)
	}
	if sum != total {
		t.Errorf("%s: final total %d, want %d (money created or destroyed)", sys.Name(), sum, total)
	}
}

// CheckReadOnlyWritePanics asserts systems with an uninstrumented
// read-only path reject writes in transactions declared read-only.
func CheckReadOnlyWritePanics(t *testing.T, sys tm.System, x memsim.Addr) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: Write in read-only transaction did not panic", sys.Name())
		}
	}()
	sys.Atomic(0, tm.KindReadOnly, func(ops tm.Ops) {
		ops.Write(x, 1)
	})
}
