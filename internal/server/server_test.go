package server_test

import (
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sihtm/internal/durable"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/server"
	"sihtm/internal/sihtm"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
	"sihtm/internal/wire"
	"sihtm/internal/workload/engine"
)

// testSpec is the workload shape shared by the server tests.
func testSpec(keys int) engine.Spec {
	return engine.Spec{
		Name: "servertest",
		Keys: keys,
		Dist: engine.Dist{Kind: engine.DistUniform},
		Mix: []engine.MixEntry{
			{Op: engine.OpRead, Percent: 40},
			{Op: engine.OpReadModifyWrite, Percent: 40},
			{Op: engine.OpInsert, Percent: 10},
			{Op: engine.OpDelete, Percent: 10},
		},
		OpsPerTxMin: 2, OpsPerTxMax: 6,
		Seed: 99,
	}
}

// fixture is one loopback server plus its in-process guts.
type fixture struct {
	srv     *server.Server
	backend *engine.HashmapBackend
	heap    *memsim.Heap
	machine *htm.Machine
	store   *durable.Store
	dir     string
	addr    net.Addr
	served  chan error
}

// slowSystem delays every Atomic, building queues so admission batching
// becomes deterministic in tests.
type slowSystem struct {
	tm.System
	delay time.Duration
}

func (s slowSystem) Atomic(thread int, kind tm.Kind, body func(tm.Ops)) {
	time.Sleep(s.delay)
	s.System.Atomic(thread, kind, body)
}

// startFixture builds a populated hash-map backend behind a loopback
// server. delay > 0 wraps the system in slowSystem; durableOn attaches
// a WAL store.
func startFixture(t *testing.T, keys, shards, batchMax int, delay time.Duration, durableOn bool) *fixture {
	t.Helper()
	spec := testSpec(keys)
	buckets := keys / 4
	if buckets < 1 {
		buckets = 1
	}
	heap := memsim.NewHeapLines(engine.HashmapHeapLines(spec, buckets))
	m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
	backend := engine.NewHashmapBackend(heap, buckets)
	engine.Populate(backend, spec)

	var sys tm.System = sihtm.NewSystem(m, shards, sihtm.Config{})
	f := &fixture{backend: backend, heap: heap, machine: m, served: make(chan error, 1)}
	cfg := server.Config{
		Backend:  backend,
		System:   sys,
		Shards:   shards,
		BatchMax: batchMax,
		Scenario: "servertest",
	}
	if durableOn {
		f.dir = t.TempDir()
		store, err := durable.Open(heap, filepath.Join(f.dir, "wal.log"),
			m.Topology().MaxThreads(), durable.Config{Window: 200 * time.Microsecond, WaitAck: true})
		if err != nil {
			t.Fatal(err)
		}
		f.store = store
		sys = store.Attach(sys, m)
		cfg.System = sys
		cfg.Store = store
		cfg.CheckpointPath = filepath.Join(f.dir, "heap.ckpt")
	}
	if delay > 0 {
		cfg.System = slowSystem{System: cfg.System, delay: delay}
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f.srv = srv
	f.addr = addr
	go func() { f.served <- srv.Serve() }()
	t.Cleanup(func() {
		f.srv.Drain()
		if f.store != nil {
			f.store.Close()
		}
	})
	return f
}

func dial(t *testing.T, f *fixture, conns int) *engine.RemoteBackend {
	t.Helper()
	rb, err := engine.DialRemote(f.addr.String(), conns)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rb.Close() })
	return rb
}

func TestPointOpsOverLoopback(t *testing.T) {
	f := startFixture(t, 64, 2, 16, 0, false)
	rb := dial(t, f, 1)
	s := rb.NewSession()
	ops := rb.Direct()

	// Populated key.
	if v, ok := s.Read(ops, 7); !ok || v != engine.InitialValue(7) {
		t.Fatalf("Read(7) = (%d, %v)", v, ok)
	}
	// Upsert new and existing.
	if !s.Insert(ops, 1000, 5) {
		t.Error("Insert(fresh) reported existing")
	}
	if s.Insert(ops, 1000, 6) {
		t.Error("Insert(existing) reported new")
	}
	if v, ok := s.Read(ops, 1000); !ok || v != 6 {
		t.Fatalf("Read(1000) = (%d, %v), want (6, true)", v, ok)
	}
	// Delete present then absent.
	if !s.Delete(ops, 1000) {
		t.Error("Delete(present) reported absent")
	}
	if s.Delete(ops, 1000) {
		t.Error("Delete(absent) reported present")
	}
	// Scan over the dense populated prefix.
	if got := s.Scan(ops, 0, 10); got != 10 {
		t.Errorf("Scan(0, 10) = %d", got)
	}
	s.Commit()
	if err := rb.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnAtomicRMWBatch(t *testing.T) {
	f := startFixture(t, 64, 2, 32, 0, false)
	rb := dial(t, f, 1)
	s := rb.NewSession().(engine.AsyncSession)

	// One deferred transaction: rmw three keys, insert one, delete one.
	s.Reset()
	s.ReadModifyWriteAsync(1, 1)
	s.ReadModifyWriteAsync(1, 1)
	s.ReadModifyWriteAsync(2, 10)
	s.InsertAsync(500, 42)
	s.DeleteAsync(3)
	s.Commit()

	check := rb.NewSession()
	ops := rb.Direct()
	if v, _ := check.Read(ops, 1); v != engine.InitialValue(1)+2 {
		t.Errorf("rmw chain: key 1 = %d, want %d", v, engine.InitialValue(1)+2)
	}
	if v, _ := check.Read(ops, 2); v != engine.InitialValue(2)+10 {
		t.Errorf("rmw: key 2 = %d", v)
	}
	if v, ok := check.Read(ops, 500); !ok || v != 42 {
		t.Errorf("insert: key 500 = (%d, %v)", v, ok)
	}
	if _, ok := check.Read(ops, 3); ok {
		t.Error("delete: key 3 still present")
	}
}

// TestBatchingCoalesces pipelines many concurrent transactions against
// a deliberately slow commit path: queues build, and the admission
// stage must coalesce several client requests into each transaction.
func TestBatchingCoalesces(t *testing.T) {
	f := startFixture(t, 256, 1, 64, time.Millisecond, false)
	rb := dial(t, f, 1)

	const workers, each = 8, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := rb.NewSession().(engine.AsyncSession)
			for i := 0; i < each; i++ {
				s.Reset()
				s.ReadModifyWriteAsync(uint64(w*100+i), 1)
				s.ReadAsync(uint64(i))
				s.Commit()
			}
		}(w)
	}
	wg.Wait()

	st, err := rb.Stats()
	if err != nil {
		t.Fatal(err)
	}
	requests := uint64(workers * each)
	if st.BatchedOps != 2*requests {
		t.Fatalf("BatchedOps = %d, want %d", st.BatchedOps, 2*requests)
	}
	if st.Batches >= requests {
		t.Errorf("no coalescing: %d batches for %d requests", st.Batches, requests)
	}
	if st.Hist.Count() != requests {
		t.Errorf("histogram saw %d ops, want %d", st.Hist.Count(), requests)
	}
	if p50 := st.Hist.Quantile(0.5); p50 < time.Millisecond {
		t.Errorf("p50 %s below the injected 1ms commit delay", p50)
	}
}

// TestReadOnlyBatchesRideTheFastPath: batches made entirely of reads
// must launch as read-only transactions (SI-HTM's uninstrumented path),
// visible as read-only commits in the server's collector.
func TestReadOnlyBatchesRideTheFastPath(t *testing.T) {
	f := startFixture(t, 64, 2, 16, 0, false)
	rb := dial(t, f, 1)
	s := rb.NewSession().(engine.AsyncSession)
	for i := 0; i < 20; i++ {
		s.Reset()
		s.ReadAsync(uint64(i))
		s.ScanAsync(uint64(i), 4)
		s.Commit()
	}
	st, err := rb.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats.CommitsRO == 0 {
		t.Errorf("no read-only commits server-side: %+v", st.Stats)
	}
}

func TestCtrlBatchKnob(t *testing.T) {
	f := startFixture(t, 64, 1, 16, 0, false)
	rb := dial(t, f, 1)
	if err := rb.Ctrl(wire.Ctrl{BatchMax: 128}); err != nil {
		t.Fatal(err)
	}
	st, err := rb.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchMax != 128 {
		t.Fatalf("BatchMax = %d after ctrl, want 128", st.BatchMax)
	}
	if err := rb.Ctrl(wire.Ctrl{BatchMax: -3}); err == nil {
		t.Error("negative batch_max accepted")
	}
	if err := rb.Ctrl(wire.Ctrl{BatchMax: wire.MaxTxnOps + 1}); err == nil {
		t.Error("oversized batch_max accepted")
	}

	// Admission grace: set, observe, clear.
	if err := rb.Ctrl(wire.Ctrl{AdmitWaitUs: 250}); err != nil {
		t.Fatal(err)
	}
	if st, _ := rb.Stats(); st.AdmitWaitUs != 250 {
		t.Fatalf("AdmitWaitUs = %d after ctrl, want 250", st.AdmitWaitUs)
	}
	if err := rb.Ctrl(wire.Ctrl{AdmitWaitUs: -1}); err != nil {
		t.Fatal(err)
	}
	if st, _ := rb.Stats(); st.AdmitWaitUs != 0 {
		t.Fatalf("AdmitWaitUs not cleared: %d", st.AdmitWaitUs)
	}
	if err := rb.Ctrl(wire.Ctrl{AdmitWaitUs: int(2 * time.Second / time.Microsecond)}); err == nil {
		t.Error("oversized admit_wait accepted")
	}
}

// TestBadFrameClosesConnection: a framing violation is fatal to the
// connection, not resynchronized past.
func TestBadFrameClosesConnection(t *testing.T) {
	f := startFixture(t, 64, 1, 16, 0, false)
	nc, err := net.Dial("tcp", f.addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("this is not a frame, not even close.")); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("server answered a garbage frame instead of closing")
	}
}

// TestGracefulDrain: in-flight transactions are answered, Serve returns
// nil, later requests fail cleanly, and with a durable store attached
// the final checkpoint lands on disk.
func TestGracefulDrain(t *testing.T) {
	f := startFixture(t, 128, 2, 16, 0, true)
	rb := dial(t, f, 2)
	s := rb.NewSession().(engine.AsyncSession)
	for i := 0; i < 50; i++ {
		s.Reset()
		s.ReadModifyWriteAsync(uint64(i), 1)
		s.Commit()
	}
	if err := f.srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case err := <-f.served:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if _, err := rb.Stats(); err == nil {
		t.Error("request succeeded after drain")
	}
	// Final checkpoint written and restorable.
	heap2 := memsim.NewHeap(f.heap.Size())
	rep, err := durable.Recover(heap2, filepath.Join(f.dir, "heap.ckpt"), filepath.Join(f.dir, "wal.log"))
	if err != nil {
		t.Fatalf("recover after drain: %v", err)
	}
	if !rep.CheckpointUsed {
		t.Error("drain did not leave a usable final checkpoint")
	}
	for a := 0; a < f.heap.Size(); a++ {
		if w, g := f.heap.Load(memsim.Addr(a)), heap2.Load(memsim.Addr(a)); w != g {
			t.Fatalf("recovered heap differs at word %d: %d, want %d", a, g, w)
		}
	}
}

// TestDurableAckCrashConsistency: stop the server abruptly (no final
// checkpoint) and verify recovery from the group-commit log alone
// reproduces the live heap exactly — every acknowledged transaction
// was durable before its reply.
func TestDurableAckCrashConsistency(t *testing.T) {
	f := startFixture(t, 128, 2, 32, 0, true)
	// No final checkpoint: recovery must come from the WAL prefix.
	f.srv = withoutCheckpoint(t, f)
	rb := dial(t, f, 2)

	const workers, each = 4, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := rb.NewSession().(engine.AsyncSession)
			for i := 0; i < each; i++ {
				s.Reset()
				s.ReadModifyWriteAsync(uint64(w*31+i), 1)
				s.ReadModifyWriteAsync(uint64(i), 2)
				s.Commit()
			}
		}(w)
	}
	wg.Wait()
	// Quiesce commits (drain) but recover only from the log: the acked
	// history replayed over the deterministic base must equal the live
	// heap word for word.
	if err := f.srv.Drain(); err != nil {
		t.Fatal(err)
	}
	// Rebuild the deterministic base state and replay the log over it.
	spec := testSpec(128)
	buckets := 128 / 4
	base := memsim.NewHeapLines(engine.HashmapHeapLines(spec, buckets))
	backend2 := engine.NewHashmapBackend(base, buckets)
	engine.Populate(backend2, spec)
	if _, err := durable.Recover(base, filepath.Join(f.dir, "nonexistent.ckpt"), filepath.Join(f.dir, "wal.log")); err != nil {
		t.Fatal(err)
	}
	if base.Size() != f.heap.Size() {
		t.Fatalf("rebuilt heap geometry differs: %d vs %d", base.Size(), f.heap.Size())
	}
	for a := 0; a < f.heap.Size(); a++ {
		if w, g := f.heap.Load(memsim.Addr(a)), base.Load(memsim.Addr(a)); w != g {
			t.Fatalf("recovered heap differs at word %d: %d, want %d", a, g, w)
		}
	}
	if err := backend2.Check(); err != nil {
		t.Fatalf("recovered structure: %v", err)
	}
}

// withoutCheckpoint rebuilds the fixture server without a drain-time
// checkpoint path, re-listening on a fresh port.
func withoutCheckpoint(t *testing.T, f *fixture) *server.Server {
	t.Helper()
	f.srv.Drain()
	var sys tm.System = sihtm.NewSystem(f.machine, 2, sihtm.Config{})
	sys = f.store.Attach(sys, f.machine)
	srv, err := server.New(server.Config{
		Backend: f.backend, System: sys, Shards: 2, BatchMax: 32, Store: f.store,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f.addr = addr
	go func() { srv.Serve() }()
	t.Cleanup(func() { srv.Drain() })
	return srv
}

// TestStatsShape sanity-checks the stats snapshot fields the load
// generator depends on.
func TestStatsShape(t *testing.T) {
	f := startFixture(t, 64, 3, 16, 0, false)
	rb := dial(t, f, 1)
	s := rb.NewSession()
	s.Read(rb.Direct(), 1)
	s.Commit()
	st, err := rb.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.System != "si-htm" || st.Shards != 3 || st.Scenario != "servertest" {
		t.Fatalf("stats mislabeled: %+v", st)
	}
	if st.Durable {
		t.Error("non-durable server reports durable")
	}
	if st.Batches == 0 || st.Hist.Count() == 0 {
		t.Errorf("counters flat: %+v", st)
	}
	var _ stats.HistogramSnapshot = st.Hist
}
