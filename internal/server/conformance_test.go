package server_test

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"sihtm/internal/durable"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/replica"
	"sihtm/internal/server"
	"sihtm/internal/sihtm"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
	"sihtm/internal/workload/engine"
	"sihtm/internal/workload/engine/enginetest"
)

// remoteMaker builds a RemoteBackend instance over a loopback server
// for the shared engine conformance suite: the remote backend must
// expose exactly the key-value semantics of the in-process backends it
// proxies. durableOn runs the server with the WAL store attached, so
// the suite also covers the durable wrapper end to end (every
// conformance transaction is acknowledged only after its redo record
// is fsynced).
func remoteMaker(durableOn bool) enginetest.Maker {
	return func(t *testing.T, keys, threads int) enginetest.Instance {
		t.Helper()
		// Size the heap for the suite's out-of-keyspace inserts (keys up
		// to 2×keys plus a few far outliers); the engine's slack absorbs
		// them.
		spec := engine.Spec{Name: "conformance", Keys: keys * 2}
		buckets := keys / 4
		if buckets < 1 {
			buckets = 1
		}
		heap := memsim.NewHeapLines(engine.HashmapHeapLines(spec, buckets))
		m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
		backend := engine.NewHashmapBackend(heap, buckets)

		var sys tm.System = sihtm.NewSystem(m, threads, sihtm.Config{})
		var served engine.Backend = backend
		cfg := server.Config{Shards: threads, BatchMax: 8}
		var store *durable.Store
		if durableOn {
			dir := t.TempDir()
			var err error
			store, err = durable.Open(heap, filepath.Join(dir, "wal.log"),
				m.Topology().MaxThreads(), durable.Config{Window: 100 * time.Microsecond, WaitAck: true})
			if err != nil {
				t.Fatal(err)
			}
			sys = store.Attach(sys, m)
			served = engine.NewDurableBackend(backend, store)
			cfg.Store = store
		}
		cfg.Backend = served
		cfg.System = sys

		srv, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve()

		conns := (threads + 1) / 2
		rb, err := engine.DialRemote(addr.String(), conns)
		if err != nil {
			t.Fatal(err)
		}
		return enginetest.Instance{
			Backend: rb,
			Heap:    heap,
			Machine: m,
			Sys:     engine.NewRemoteSystem("si-htm", threads),
			Cleanup: func() {
				rb.Close()
				srv.Drain()
				if store != nil {
					store.Close()
				}
			},
		}
	}
}

func TestRemoteBackendConformance(t *testing.T) {
	enginetest.Run(t, "remote", remoteMaker(false))
}

func TestRemoteDurableBackendConformance(t *testing.T) {
	enginetest.Run(t, "remote-durable", remoteMaker(true))
}

// replicaMaker builds a two-node cluster — a durable leader and a
// follower replaying its WAL stream — fronted by the routing
// ReplicaBackend in SyncReads mode: every follower-bound read first
// waits for the follower's watermark to catch the leader's durable
// frontier. Under that gate the cluster must be observationally
// identical to a single node, which is exactly what the conformance
// suite checks — so stale-read semantics ("a replica read is a clean
// prefix, and a caught-up replica read is current") are pinned by
// tests rather than prose.
func replicaMaker() enginetest.Maker {
	return func(t *testing.T, keys, threads int) enginetest.Instance {
		t.Helper()
		spec := engine.Spec{Name: "conformance", Keys: keys * 2}
		buckets := keys / 4
		if buckets < 1 {
			buckets = 1
		}

		// Leader: the standard durable server (WaitAck pins every
		// acknowledged commit at or below the WAL's durable frontier,
		// which is what makes the catch-up gate sufficient).
		heap := memsim.NewHeapLines(engine.HashmapHeapLines(spec, buckets))
		m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
		backend := engine.NewHashmapBackend(heap, buckets)
		store, err := durable.Open(heap, filepath.Join(t.TempDir(), "wal.log"),
			m.Topology().MaxThreads(), durable.Config{Window: 100 * time.Microsecond, WaitAck: true})
		if err != nil {
			t.Fatal(err)
		}
		sys := store.Attach(sihtm.NewSystem(m, threads, sihtm.Config{}), m)
		srv, err := server.New(server.Config{
			Backend:  engine.NewDurableBackend(backend, store),
			System:   sys,
			Store:    store,
			Shards:   threads,
			BatchMax: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve()

		// Follower: the identical deterministic backend build over its
		// own heap (same base image the leader's log started from), fed
		// by a replica.Follower streaming from the leader.
		fheap := memsim.NewHeapLines(engine.HashmapHeapLines(spec, buckets))
		fm := htm.NewMachine(fheap, htm.Config{Topology: topology.Paper()})
		fbackend := engine.NewHashmapBackend(fheap, buckets)
		leaderAddr := addr.String()
		fol, err := replica.NewFollower(replica.FollowerConfig{
			Heap: fheap,
			Dial: func() (net.Conn, error) { return net.Dial("tcp", leaderAddr) },
		})
		if err != nil {
			t.Fatal(err)
		}
		fsrv, err := server.New(server.Config{
			Backend:  fbackend,
			System:   sihtm.NewSystem(fm, threads, sihtm.Config{}),
			Shards:   threads,
			BatchMax: 8,
			Follower: fol,
		})
		if err != nil {
			t.Fatal(err)
		}
		faddr, err := fsrv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go fsrv.Serve()
		fol.Start()

		conns := (threads + 1) / 2
		rb, err := engine.DialReplica(addr.String(), []string{faddr.String()}, conns)
		if err != nil {
			t.Fatal(err)
		}
		rb.SyncReads = true
		return enginetest.Instance{
			Backend: rb,
			Heap:    heap,
			Machine: m,
			Sys:     engine.NewRemoteSystem("si-htm", threads),
			Cleanup: func() {
				rb.Close()
				fsrv.Drain()
				fol.Close()
				srv.Drain()
				store.Close()
			},
		}
	}
}

func TestReplicaBackendConformance(t *testing.T) {
	enginetest.Run(t, "replica", replicaMaker())
}
