package server

import (
	"fmt"
	"time"

	"sihtm/internal/stats"
	"sihtm/internal/wire"
)

// The adaptive admission controller closes the loop the PR 5 batch
// sweep left open: growing batch_max amortizes framing and group-commit
// cost but pushes the coalesced transaction toward the TMCAM capacity
// cliff (batch 1→256: htm capacity aborts 0→6%, p50 10µs→1.2ms). The
// controller owns batch_max and admit_wait_us online, steering them by
// two observed signals per interval — the server-side p99 service
// latency (admission to reply encode, from the latency histogram) and
// the capacity-abort share of transaction attempts (from the system's
// collector) — against a configured p99 target:
//
//   - p99 over target: back off, grace period first (it is pure added
//     latency), then halve the batch bound — multiplicative decrease.
//   - capacity-abort share over CtrlCapacityMax: halve the batch bound
//     regardless of latency headroom — the footprint is at the cliff,
//     and retries are about to ruin both latency and throughput.
//   - p99 comfortably under target (≤ 80%): grow. While executors fill
//     their batches, additive-increase the bound; once batches run dry
//     below the bound, more batching needs more patience, so double the
//     grace period instead (bounded by a fraction of the target).
//
// Between 80% and 100% of target the controller holds — a deadband that
// stops it hunting. The asymmetry (additive increase, multiplicative
// decrease) is the classic AIMD shape: converge gently, retreat fast.

const (
	// ctrlMinWindowOps is the minimum histogram observations an interval
	// needs before its quantiles are trusted; thinner windows hold.
	ctrlMinWindowOps = 16
	// ctrlMinGrace is the smallest non-zero admission grace the
	// controller sets; backing off below it clears the grace entirely.
	ctrlMinGrace = 10 * time.Microsecond
)

// ctrlMaxGrace bounds the admission grace at a quarter of the latency
// target, capped at 1ms — the grace is spent on every dry-queue batch,
// so it must never be able to consume the latency budget by itself.
func ctrlMaxGrace(target time.Duration) time.Duration {
	g := target / 4
	if g > time.Millisecond {
		g = time.Millisecond
	}
	return g
}

// controller is one running control loop; at most one exists per
// server (guarded by Server.ctrlMu).
type controller struct {
	s    *Server
	stop chan struct{}
	done chan struct{}
}

// setP99Target applies the control plane's p99-target knob
// (microseconds): positive sets the target and starts the controller if
// it is not running, negative stops it (knobs freeze at their converged
// values).
func (s *Server) setP99Target(us int) error {
	if us < 0 {
		s.stopController()
		return nil
	}
	if us > int(time.Minute/time.Microsecond) {
		return fmt.Errorf("p99_target_us %d exceeds 60s", us)
	}
	s.p99Target.Store(int64(time.Duration(us) * time.Microsecond))
	s.ctrlMu.Lock()
	defer s.ctrlMu.Unlock()
	if s.ctrl == nil && !s.draining.Load() {
		c := &controller{s: s, stop: make(chan struct{}), done: make(chan struct{})}
		s.ctrl = c
		go c.run()
	}
	return nil
}

// stopController stops a running control loop and waits it out; the
// target resets to zero (reported as "off" in stats).
func (s *Server) stopController() {
	s.ctrlMu.Lock()
	c := s.ctrl
	s.ctrl = nil
	s.ctrlMu.Unlock()
	s.p99Target.Store(0)
	if c != nil {
		close(c.stop)
		<-c.done
	}
}

// run is the control loop: each interval differences the latency
// histogram, the abort collector and the batch counters, then makes at
// most one move per knob.
func (c *controller) run() {
	defer close(c.done)
	s := c.s
	tick := time.NewTicker(s.cfg.CtrlInterval)
	defer tick.Stop()
	prevHist := s.hist.Snapshot()
	prevStats := s.cfg.System.Collector().Snapshot()
	prevBatches := s.batches.Load()
	prevOps := s.batchedOps.Load()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		hist := s.hist.Snapshot()
		st := s.cfg.System.Collector().Snapshot()
		batches := s.batches.Load()
		ops := s.batchedOps.Load()
		wh := hist.Sub(prevHist)
		ws := st.Sub(prevStats)
		wBatches := batches - prevBatches
		wOps := ops - prevOps

		s.ctrlEpochs.Add(1)
		if wh.Count() < ctrlMinWindowOps {
			// Too thin to trust a p99 — keep accumulating into the same
			// window (prev snapshots stay put) so a slow server still
			// converges, just at a lower cadence.
			continue
		}
		prevHist, prevStats, prevBatches, prevOps = hist, st, batches, ops
		target := time.Duration(s.p99Target.Load())
		if target <= 0 {
			continue
		}
		p99 := wh.Quantile(0.99)
		capShare := ws.AbortShare(stats.AbortCapacity)
		batch := int(s.batchMax.Load())
		wait := time.Duration(s.admitWait.Load())
		nbatch, nwait := batch, wait
		achieved := 0.0
		if wBatches > 0 {
			achieved = float64(wOps) / float64(wBatches)
		}

		switch {
		case p99 > target:
			if wait > 0 {
				nwait = wait / 2
				if nwait < ctrlMinGrace {
					nwait = 0
				}
			} else if batch > 1 {
				nbatch = batch / 2
			}
		case capShare > s.cfg.CtrlCapacityMax:
			if batch > 1 {
				nbatch = batch / 2
			}
		case p99 <= target-target/5:
			if achieved >= 0.75*float64(batch) && batch < wire.MaxTxnOps {
				nbatch = batch + (batch+3)/4
				if nbatch > wire.MaxTxnOps {
					nbatch = wire.MaxTxnOps
				}
			} else if max := ctrlMaxGrace(target); wait < max {
				nwait = wait * 2
				if nwait < ctrlMinGrace {
					nwait = ctrlMinGrace
				}
				if nwait > max {
					nwait = max
				}
			}
		}

		if nbatch != batch {
			s.batchMax.Store(int64(nbatch))
			s.ctrlAdjusts.Add(1)
		}
		if nwait != wait {
			s.admitWait.Store(int64(nwait))
			s.ctrlAdjusts.Add(1)
		}
	}
}
