package server

import (
	"fmt"
	"time"

	"sihtm/internal/telemetry"
	"sihtm/internal/tm"
)

// registerMetrics wires every instrument onto the server's registry
// (Config.Metrics, or a private one). Called once from New — before any
// connection exists — so all hot-path instruments are plain field loads
// by the time traffic arrives. The families registered here are the
// contract documented in docs/observability.md.
func (s *Server) registerMetrics() {
	reg := s.cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s.tel = reg

	// Request lifecycle stage histograms. service = admission to reply
	// encode (the controller's signal); the stages bracket it.
	s.admitHist = reg.MustHistogram("sihtm_server_admission_wait_seconds",
		"Arrival to batch-execution start: time spent queued plus admission grace.",
		telemetry.UnitSeconds)
	s.execHist = reg.MustHistogram("sihtm_server_batch_exec_seconds",
		"Batch execution wall time (one System.Atomic, including fsync ack when durable).",
		telemetry.UnitSeconds)
	s.flushHist = reg.MustHistogram("sihtm_server_reply_flush_seconds",
		"Reply encode to socket write completion.",
		telemetry.UnitSeconds)
	s.batchOpsHist = reg.MustHistogram("sihtm_server_batch_ops",
		"Operations coalesced per executed batch.",
		telemetry.UnitCount)
	reg.MustRegisterHistogram("sihtm_server_service_seconds",
		"Per-op service latency, admission to reply encode (what the admission controller steers).",
		telemetry.UnitSeconds, s.hist)

	// Wire traffic and connection state.
	reg.MustCounterFunc("sihtm_server_frames_total",
		"Wire frames by direction.",
		func() uint64 { return s.framesIn.Load() }, telemetry.L("dir", "in"))
	reg.MustCounterFunc("sihtm_server_frames_total", "",
		func() uint64 { return s.framesOut.Load() }, telemetry.L("dir", "out"))
	reg.MustGaugeFunc("sihtm_server_connections",
		"Open client connections.",
		func() float64 {
			s.mu.Lock()
			n := len(s.conns)
			s.mu.Unlock()
			return float64(n)
		})
	reg.MustGaugeFunc("sihtm_server_queue_depth",
		"Admitted requests waiting in executor queues.",
		func() float64 {
			n := 0
			for _, sh := range s.shards {
				n += len(sh.ch)
			}
			return float64(n)
		})
	reg.MustGaugeFunc("sihtm_server_executors_busy",
		"Executors currently inside System.Atomic.",
		func() float64 { return float64(s.execBusy.Load()) })

	// Batching and admission knobs (live values — the controller moves
	// them) plus controller activity.
	reg.MustCounterFunc("sihtm_server_batches_total",
		"Executed batches (one transaction each).",
		func() uint64 { return s.batches.Load() })
	reg.MustCounterFunc("sihtm_server_batched_ops_total",
		"Operations carried by executed batches.",
		func() uint64 { return s.batchedOps.Load() })
	reg.MustGaugeFunc("sihtm_ctrl_batch_max",
		"Current admission batch bound (ops per transaction).",
		func() float64 { return float64(s.batchMax.Load()) })
	reg.MustGaugeFunc("sihtm_ctrl_admit_wait_seconds",
		"Current admission grace period.",
		func() float64 { return time.Duration(s.admitWait.Load()).Seconds() })
	reg.MustGaugeFunc("sihtm_ctrl_p99_target_seconds",
		"Adaptive admission controller p99 target (0 = controller off).",
		func() float64 { return time.Duration(s.p99Target.Load()).Seconds() })
	reg.MustCounterFunc("sihtm_ctrl_epochs_total",
		"Completed controller sampling intervals.",
		func() uint64 { return s.ctrlEpochs.Load() })
	reg.MustCounterFunc("sihtm_ctrl_adjusts_total",
		"Controller intervals that moved a knob.",
		func() uint64 { return s.ctrlAdjusts.Load() })
	reg.MustCounterFunc("sihtm_server_slow_traces_total",
		"Requests that exceeded the slow-trace threshold.",
		func() uint64 { return s.slowTraces.Load() })
	reg.MustCounterFunc("sihtm_server_slow_trace_stage_total",
		"Slow requests by dominant lifecycle stage — counted for every slow request, including those whose log line the rate limiter dropped.",
		func() uint64 { return s.slowStage[0].Load() }, telemetry.L("stage", "admit"))
	reg.MustCounterFunc("sihtm_server_slow_trace_stage_total", "",
		func() uint64 { return s.slowStage[1].Load() }, telemetry.L("stage", "exec"))
	reg.MustCounterFunc("sihtm_server_slow_trace_stage_total", "",
		func() uint64 { return s.slowStage[2].Load() }, telemetry.L("stage", "flush"))
	reg.MustCounterFunc("sihtm_trace_spans_total",
		"Spans recorded into the trace ring (lossy: the ring keeps the newest).",
		func() uint64 { return s.ring.Total() })

	// The shared TM seam: identical abort/commit/hw-mode families for
	// whichever of the five systems this server runs.
	tm.RegisterMetrics(reg, s.cfg.System)

	if st := s.cfg.Store; st != nil {
		l := st.Log()
		reg.MustCounterFunc("sihtm_wal_records_total",
			"Redo records appended (not necessarily durable yet).",
			func() uint64 { return l.Stats().Records })
		reg.MustCounterFunc("sihtm_wal_bytes_total",
			"Encoded record bytes appended.",
			func() uint64 { return l.Stats().Bytes })
		reg.MustCounterFunc("sihtm_wal_batches_total",
			"Group-commit flushes that wrote data.",
			func() uint64 { return l.Stats().Batches })
		reg.MustCounterFunc("sihtm_wal_fsyncs_total",
			"fsync calls.",
			func() uint64 { return l.Stats().Fsyncs })
		reg.MustGaugeFunc("sihtm_wal_pending_bytes",
			"Append-buffer bytes awaiting the next group-commit flush.",
			func() float64 { return float64(l.PendingBytes()) })
		reg.MustGaugeFunc("sihtm_wal_durable_seq",
			"Highest fsynced sequence number (the acknowledgement frontier).",
			func() float64 { return float64(l.DurableSeq()) })
		reg.MustRegisterHistogram("sihtm_wal_fsync_seconds",
			"Wall time of each fsync.",
			telemetry.UnitSeconds, l.FsyncHist())
		reg.MustRegisterHistogram("sihtm_wal_batch_records",
			"Redo records per group-commit batch.",
			telemetry.UnitCount, l.BatchRecsHist())
		reg.MustRegisterHistogram("sihtm_durable_ack_wait_seconds",
			"Time Atomic callers blocked on fsync acknowledgement.",
			telemetry.UnitSeconds, st.AckWaitHist())
	}

	if f := s.cfg.Follower; f != nil {
		reg.MustGaugeFunc("sihtm_repl_watermark",
			"Follower replay watermark (highest applied sequence).",
			func() float64 { return float64(f.Watermark()) })
		reg.MustGaugeFunc("sihtm_repl_leader_seq",
			"Leader durable frontier as last advertised on the stream.",
			func() float64 { return float64(f.LeaderSeq()) })
		reg.MustGaugeFunc("sihtm_repl_lag",
			"Leader frontier minus follower watermark (records behind).",
			func() float64 {
				w, l := f.Watermark(), f.LeaderSeq()
				if l <= w {
					return 0
				}
				return float64(l - w)
			})
		reg.MustCounterFunc("sihtm_repl_reconnects_total",
			"Stream reconnects the follower performed.",
			func() uint64 { return f.Reconnects() })
		reg.MustCounterFunc("sihtm_repl_applied_total",
			"Redo records the follower applied.",
			func() uint64 { return f.Applied() })
		reg.MustGaugeFunc("sihtm_repl_promoted",
			"1 once the follower was promoted to a serving leader.",
			func() float64 {
				if f.Promoted() {
					return 1
				}
				return 0
			})
	} else if s.pub != nil {
		reg.MustGaugeFunc("sihtm_repl_subscribers",
			"Live follower streams on this leader.",
			func() float64 { return float64(s.pub.Subscribers()) })
		reg.MustCounterFunc("sihtm_repl_dropped_subscribers_total",
			"Follower streams that ended on a failed write.",
			func() uint64 { return s.pub.Dropped() })
	}
}

// Telemetry returns the server's metrics registry — what an HTTP
// observability endpoint serves and what embedding tests scrape.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// slowTraceMinGap rate-limits slow-request lines: under a latency
// collapse every request is slow, and the log must not become the
// second collapse.
const slowTraceMinGap = 10 * time.Millisecond

// noteSlow runs in the writer after the socket write when the request's
// total lifecycle exceeded the threshold: count it always — including
// which stage dominated, so a rate-limited collapse still shows where
// the time went — and log it at most once per gap. The log line is the
// only allocation and happens off the steady-state path by construction
// (only slow requests reach the Fprintf).
func (s *Server) noteSlow(t *task, total time.Duration) {
	s.slowTraces.Add(1)
	admit := t.tExec.Sub(t.t0)
	exec := t.tDone.Sub(t.tExec)
	flush := total - admit - exec
	dom := 0
	if exec > admit {
		dom = 1
	}
	if flush > admit && flush > exec {
		dom = 2
	}
	s.slowStage[dom].Add(1)
	now := time.Now().UnixNano()
	last := s.lastSlowNs.Load()
	if now-last < int64(slowTraceMinGap) || !s.lastSlowNs.CompareAndSwap(last, now) {
		return
	}
	fmt.Fprintf(s.traceLog,
		"trace-slow: id=%d total=%s admit=%s exec=%s flush=%s batch_ops=%d hw_begins=%d aborts{capacity=%d conflict=%d other=%d} fallbacks=%d\n",
		t.id, total.Round(time.Microsecond), admit.Round(time.Microsecond),
		exec.Round(time.Microsecond), flush.Round(time.Microsecond),
		t.batchOps, t.hwBegins, t.abCapacity, t.abConflict, t.abOther, t.fallbacks)
}
