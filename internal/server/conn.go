package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sihtm/internal/wire"
)

var (
	errReadOnlyReplica = errors.New("server: read-only replica (not promoted)")
	errNotLeader       = errors.New("server: not a replication leader (no durable store)")
	errNotFollower     = errors.New("server: not a follower")
)

// hasWrite reports whether any op mutates — the replica's admission
// gate (GET/SCAN point reads and read-only TXNs pass, everything else
// is refused until promotion).
func hasWrite(ops []wire.Op) bool {
	for _, op := range ops {
		if !op.Kind.ReadOnly() {
			return true
		}
	}
	return false
}

// connIO bundles a connection's pooled I/O state: the buffered reader
// and writer plus the frame-read scratch buffer, recycled together
// across connections through one pool so accepting a connection costs
// no per-side allocations in steady state.
type connIO struct {
	br      *bufio.Reader
	bw      *bufio.Writer
	scratch []byte // wire.ReadFrame scratch, grown in place
}

var connIOPool = sync.Pool{New: func() any {
	return &connIO{
		br:      bufio.NewReaderSize(nil, 4096),
		bw:      bufio.NewWriterSize(nil, 4096),
		scratch: make([]byte, 0, 4096),
	}
}}

// outMsg is one queued reply: either a pooled task whose reply buffer
// holds the encoded frame (data plane — the writer recycles the task
// after the write), or a standalone encoded frame (control plane).
type outMsg struct {
	t     *task
	frame []byte
}

// srvConn is one client connection: a reader goroutine parses frames
// and routes data-plane requests into shard queues (control-plane
// requests are answered inline), a writer goroutine streams encoded
// reply frames back with coalesced flushes. The connection closes once
// the reader has exited and every admitted task has been answered —
// the per-connection half of graceful drain.
type srvConn struct {
	srv *Server
	c   net.Conn
	io  *connIO
	out chan outMsg

	// inflight counts admitted-but-unanswered tasks; together with
	// readerGone it decides when out can close.
	inflight   atomic.Int64
	mu         sync.Mutex
	readerGone bool
	outClosed  bool
}

func newSrvConn(s *Server, nc net.Conn) *srvConn {
	io := connIOPool.Get().(*connIO)
	io.br.Reset(nc)
	io.bw.Reset(nc)
	return &srvConn{
		srv: s,
		c:   nc,
		io:  io,
		out: make(chan outMsg, 256),
	}
}

// send queues one encoded frame for the writer. Callers hold either the
// reader's liveness or an inflight reference, which is what guarantees
// out is not yet closed.
func (c *srvConn) send(frame []byte) { c.out <- outMsg{frame: frame} }

// sendTask queues an answered task: its reply buffer holds the encoded
// frame, and its inflight reference is released by the writer after the
// write (the executor's only obligation ends here).
func (c *srvConn) sendTask(t *task) { c.out <- outMsg{t: t} }

// sendErr queues a TErr reply.
func (c *srvConn) sendErr(id uint64, err error) {
	c.send(wire.AppendFrame(nil, id, wire.TErr, []byte(err.Error())))
}

// sendEmptyReply queues an empty TReply (control-plane acknowledgement).
func (c *srvConn) sendEmptyReply(id uint64) {
	c.send(wire.AppendFrame(nil, id, wire.TReply, nil))
}

// taskDone releases one inflight reference.
func (c *srvConn) taskDone() {
	if c.inflight.Add(-1) == 0 {
		c.maybeCloseOut()
	}
}

// readerExit marks the reader gone and closes out if nothing is in
// flight.
func (c *srvConn) readerExit() {
	c.mu.Lock()
	c.readerGone = true
	c.mu.Unlock()
	c.maybeCloseOut()
}

func (c *srvConn) maybeCloseOut() {
	c.mu.Lock()
	if c.readerGone && !c.outClosed && c.inflight.Load() == 0 {
		c.outClosed = true
		close(c.out)
	}
	c.mu.Unlock()
}

// readLoop parses and dispatches frames until the connection ends —
// client EOF, a framing violation (fatal by protocol) or drain (the
// deadline sweep unparks the read and the draining flag stops
// admission).
func (c *srvConn) readLoop() {
	defer func() {
		c.readerExit()
		c.srv.readers.Done()
	}()
	br := c.io.br
	for {
		if c.srv.draining.Load() {
			return
		}
		var (
			id      uint64
			t       wire.Type
			tr      uint64
			payload []byte
			err     error
		)
		id, t, _, tr, payload, c.io.scratch, err = wire.ReadFrameT(br, c.io.scratch)
		if err != nil {
			return
		}
		c.srv.framesIn.Add(1)
		switch t {
		case wire.TGet, wire.TPut, wire.TDel, wire.TScan, wire.TTxn:
			// Decode straight into a pooled task's op slice; the task (ops,
			// results and reply buffers included) cycles reader → shard →
			// writer → pool, so a steady-state request allocates nothing.
			tsk := taskPool.Get().(*task)
			tsk.ops, err = decodeData(t, payload, tsk.ops[:0])
			if err != nil {
				taskPool.Put(tsk)
				c.sendErr(id, err)
				continue
			}
			if f := c.srv.cfg.Follower; f != nil && !f.Promoted() && hasWrite(tsk.ops) {
				taskPool.Put(tsk)
				c.sendErr(id, errReadOnlyReplica)
				continue
			}
			tsk.c = c
			tsk.id = id
			tsk.trace = tr
			tsk.t0 = time.Now()
			c.inflight.Add(1)
			c.srv.shardFor(tsk.ops).ch <- tsk

		case wire.TCtrl:
			var ctrl wire.Ctrl
			if err := wire.DecodeJSON(payload, &ctrl); err != nil {
				c.sendErr(id, err)
				continue
			}
			if ctrl.BatchMax != 0 {
				if err := c.srv.setBatchMax(ctrl.BatchMax); err != nil {
					c.sendErr(id, err)
					continue
				}
			}
			if ctrl.AdmitWaitUs != 0 {
				if err := c.srv.setAdmitWait(ctrl.AdmitWaitUs); err != nil {
					c.sendErr(id, err)
					continue
				}
			}
			if ctrl.P99TargetUs != 0 {
				if err := c.srv.setP99Target(ctrl.P99TargetUs); err != nil {
					c.sendErr(id, err)
					continue
				}
			}
			c.sendEmptyReply(id)

		case wire.TStats:
			c.send(wire.AppendFrame(nil, id, wire.TReply, wire.EncodeJSON(c.srv.statsSnapshot())))

		case wire.TCheck:
			// Quiesce the executors (batches run under RLock) — and, on a
			// replica, the replay applier — so the backend's structural
			// walk sees no transaction or half-applied record mid-flight.
			c.srv.execMu.Lock()
			if f := c.srv.cfg.Follower; f != nil {
				f.Lock()
			}
			err := c.srv.cfg.Backend.Check()
			if f := c.srv.cfg.Follower; f != nil {
				f.Unlock()
			}
			c.srv.execMu.Unlock()
			if err != nil {
				c.sendErr(id, err)
			} else {
				c.sendEmptyReply(id)
			}

		case wire.TReplSub:
			from, perr := wire.ParseReplSub(payload)
			if perr != nil {
				c.sendErr(id, perr)
				continue
			}
			if c.srv.pub == nil {
				c.sendErr(id, errNotLeader)
				continue
			}
			// The subscription hijacks the connection (protocol contract:
			// TReplSub is the only request ever sent on it), so the reader
			// goroutine itself becomes the stream pump, writing frames
			// straight to the socket. Drain stops it via the stop hook.
			c.streamRepl(id, from)
			return

		case wire.TReplPromote:
			f := c.srv.cfg.Follower
			if f == nil {
				c.sendErr(id, errNotFollower)
				continue
			}
			if _, perr := f.Promote(c.srv.cfg.LeaderLogPath); perr != nil {
				c.sendErr(id, perr)
				continue
			}
			rs := f.Stats()
			c.send(wire.AppendFrame(nil, id, wire.TReply, wire.EncodeJSON(rs)))

		default:
			c.sendErr(id, fmt.Errorf("server: unexpected message type %v", t))
		}
	}
}

// decodeData normalizes a data-plane payload into an op list.
func decodeData(t wire.Type, payload []byte, dst []wire.Op) ([]wire.Op, error) {
	switch t {
	case wire.TGet:
		key, err := wire.ParseKey(payload)
		if err != nil {
			return nil, err
		}
		return append(dst, wire.Op{Kind: wire.OpGet, Key: key}), nil
	case wire.TPut:
		key, val, err := wire.ParseKeyArg(payload)
		if err != nil {
			return nil, err
		}
		return append(dst, wire.Op{Kind: wire.OpPut, Key: key, Arg: val}), nil
	case wire.TDel:
		key, err := wire.ParseKey(payload)
		if err != nil {
			return nil, err
		}
		return append(dst, wire.Op{Kind: wire.OpDel, Key: key}), nil
	case wire.TScan:
		key, n, err := wire.ParseKeyArg(payload)
		if err != nil {
			return nil, err
		}
		if n > wire.MaxScanLen {
			return nil, fmt.Errorf("server: scan length %d exceeds %d", n, wire.MaxScanLen)
		}
		return append(dst, wire.Op{Kind: wire.OpScan, Key: key, Arg: n}), nil
	default: // wire.TTxn
		return wire.ParseOps(payload, dst)
	}
}

// streamRepl pumps the replication stream on a hijacked connection.
// Frames are written directly to the socket (the writer queue is idle:
// nothing else was, or will be, requested on this connection), each
// write bounded by writeTimeout; drain stops the pump.
func (c *srvConn) streamRepl(id, from uint64) {
	c.srv.pub.Stream(deadlineWriter{c.c}, id, from, func() bool {
		return c.srv.draining.Load()
	})
}

// deadlineWriter arms writeTimeout before every socket write.
type deadlineWriter struct{ c net.Conn }

func (w deadlineWriter) Write(p []byte) (int, error) {
	w.c.SetWriteDeadline(time.Now().Add(writeTimeout))
	return w.c.Write(p)
}

// writeTimeout bounds each reply write: a client that stops reading
// (closed TCP window) errors its connection out instead of backing
// pressure up through the writer queue into the executors — which
// would otherwise wedge Drain forever behind one stalled peer.
const writeTimeout = 10 * time.Second

// writeLoop streams reply frames, flushing whenever the queue runs dry
// (coalesced flushes across pipelined replies). A write error stops
// output but keeps draining the queue — releasing inflight references
// and recycling tasks — so executors never block on a dead connection.
// The writer exits last (out closes only after the reader is gone and
// inflight hits zero), so it owns returning the connection's pooled
// I/O state.
func (c *srvConn) writeLoop() {
	defer func() {
		c.c.Close()
		c.io.br.Reset(nil)
		c.io.bw.Reset(nil)
		connIOPool.Put(c.io)
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
		c.srv.writers.Done()
	}()
	bw := c.io.bw
	var werr error
	for m := range c.out {
		frame := m.frame
		if m.t != nil {
			frame = m.t.reply
		}
		if werr == nil {
			c.c.SetWriteDeadline(time.Now().Add(writeTimeout))
			if _, err := bw.Write(frame); err != nil {
				werr = err
			} else if len(c.out) == 0 {
				if err := bw.Flush(); err != nil {
					werr = err
				}
			}
			c.srv.framesOut.Add(1)
		}
		if m.t != nil {
			// Close the lifecycle trace at the socket write: flush stage,
			// span emission for sampled or slow requests, then the
			// slow-request log check against the full span.
			c.srv.flushHist.Observe(time.Since(m.t.tDone))
			total := time.Since(m.t.t0)
			slow := c.srv.traceSlow > 0 && int64(total) >= c.srv.traceSlow
			if m.t.trace != 0 || slow {
				c.srv.recordSpans(m.t, total)
			}
			if slow {
				c.srv.noteSlow(m.t, total)
			}
			taskPool.Put(m.t)
			c.taskDone()
		}
	}
	if werr == nil {
		c.c.SetWriteDeadline(time.Now().Add(writeTimeout))
		bw.Flush()
	}
}
