package server_test

import (
	"testing"

	"sihtm/internal/workload/engine"
)

// The hot-path allocation pins, in the mould of the PR 2 simulator pins
// (internal/htm/alloc_test.go): testing.AllocsPerRun counts mallocs
// process-wide, so a loopback round trip pins the client encoder, both
// server goroutine sides (reader → shard executor → writer) and the
// client reply path all at once. A warm-up loop first grows every
// pooled buffer (connIO, tasks, session waiters, the line pool) to its
// steady-state footprint; after it, a request must allocate nothing
// anywhere in the process.
//
// Under -race the detector's instrumentation allocates, so the tests
// still drive the full path (the race job's reason to run them) but
// skip the exact-zero assertion.

// TestServerRequestPathZeroAllocs pins the TXN path: frame read →
// admission → batched execute → reply encode → socket write, plus the
// client's AppendOpsFrame encode and waiter round trip.
func TestServerRequestPathZeroAllocs(t *testing.T) {
	f := startFixture(t, 256, 1, 16, 0, false)
	rb := dial(t, f, 1)
	s := rb.NewSession().(engine.AsyncSession)

	op := func() {
		s.Reset()
		s.ReadModifyWriteAsync(7, 1)
		s.ReadAsync(9)
		s.ScanAsync(3, 4)
		s.Commit()
	}
	for i := 0; i < 512; i++ {
		op()
	}
	allocs := testing.AllocsPerRun(500, op)
	if raceEnabled {
		t.Skipf("race detector instrumentation allocates; path exercised, pin skipped (measured %.2f)", allocs)
	}
	if allocs != 0 {
		t.Fatalf("steady-state TXN round trip allocates %.2f times, want 0", allocs)
	}
}

// TestServerTracedRequestPathZeroAllocs pins the same TXN path with
// tracing at full rate: every request carries a trace id, the server
// records five stage spans plus an exemplar per request, and the client
// closes its round-trip span — all of it ring stores into preallocated
// slots, so the pin must stay at exactly zero.
func TestServerTracedRequestPathZeroAllocs(t *testing.T) {
	f := startFixture(t, 256, 1, 16, 0, false)
	rb := dial(t, f, 1)
	rb.EnableTracing(1)
	s := rb.NewSession().(engine.AsyncSession)

	op := func() {
		s.Reset()
		s.ReadModifyWriteAsync(7, 1)
		s.ReadAsync(9)
		s.Commit()
	}
	for i := 0; i < 512; i++ {
		op()
	}
	allocs := testing.AllocsPerRun(500, op)
	if raceEnabled {
		t.Skipf("race detector instrumentation allocates; path exercised, pin skipped (measured %.2f)", allocs)
	}
	if allocs != 0 {
		t.Fatalf("steady-state traced TXN round trip allocates %.2f times, want 0", allocs)
	}
}

// TestRemoteRoundTripZeroAllocs pins the point-frame path (TGet/TPut
// compact layouts through decodeData) via the synchronous plain
// Session, the RemoteBackend conformance surface.
func TestRemoteRoundTripZeroAllocs(t *testing.T) {
	f := startFixture(t, 256, 1, 16, 0, false)
	rb := dial(t, f, 1)
	s := rb.NewSession()
	ops := rb.Direct()

	op := func() {
		s.Read(ops, 7)
		s.Insert(ops, 9, 42)
	}
	for i := 0; i < 512; i++ {
		op()
	}
	allocs := testing.AllocsPerRun(500, op)
	if raceEnabled {
		t.Skipf("race detector instrumentation allocates; path exercised, pin skipped (measured %.2f)", allocs)
	}
	if allocs != 0 {
		t.Fatalf("steady-state point round trip allocates %.2f times, want 0", allocs)
	}
}
