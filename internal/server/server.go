// Package server is the networked service layer: a TCP server speaking
// the internal/wire protocol that fronts any engine.Backend (the
// chained hash map, the B+tree, their durable decorations) through the
// repository's tm.System seam.
//
// The interesting part is the admission/batching stage. Client
// connections are read by per-connection goroutines that route each
// request — a point op or a multi-op TXN — to one of a fixed set of
// per-shard executor goroutines (shard = hash of the request's first
// key, so hot keys serialize onto one executor instead of conflicting
// across all of them). An executor drains its queue opportunistically
// and coalesces the pipelined requests of many connections into a
// single transaction of at most BatchMax operations, executed as one
// System.Atomic. That is the paper's capacity argument turned into a
// serving architecture: a bigger hardware-transaction footprint per
// commit amortizes the begin/commit cost — and, with a durable store
// attached, the group-commit fsync — over more client operations,
// while pushing the transaction closer to the TMCAM capacity cliff.
// Sweeping BatchMax (live, via the wire control plane) reproduces the
// capacity-vs-abort trade-off over the network.
//
// Atomicity is preserved per request: a TXN's ops always land in the
// same batch, and a batch is one transaction, so clients get at-least
// TXN-level isolation (batching only ever widens the atomic unit).
// A batch of exclusively read-only ops launches as tm.KindReadOnly and
// rides SI-HTM's uninstrumented read-only fast path.
//
// Graceful drain: Drain stops the accept loop, unblocks connection
// readers, lets executors finish every admitted request (replies
// included), flushes and closes connections, and — when a durable
// store is attached — forces a final checkpoint so a restart recovers
// without replaying the whole log.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sihtm/internal/durable"
	"sihtm/internal/replica"
	"sihtm/internal/stats"
	"sihtm/internal/telemetry"
	"sihtm/internal/tm"
	"sihtm/internal/trace"
	"sihtm/internal/wire"
	"sihtm/internal/workload/engine"
)

// Config assembles a Server.
type Config struct {
	// Backend is the data structure served. The caller populates it (and
	// wraps it durably) before Listen.
	Backend engine.Backend
	// System is the concurrency control executing batches; it must be
	// sized for at least Shards threads.
	System tm.System
	// Shards is the executor goroutine count (transaction thread ids
	// 0..Shards-1). Default 4.
	Shards int
	// BatchMax bounds the operations coalesced into one transaction —
	// the footprint knob. Default 16; reconfigurable live via TCtrl.
	BatchMax int
	// AdmitWait is the admission grace period: how long an executor
	// holding a non-full batch waits for more pipelined requests before
	// committing. Zero (the default) commits as soon as the queue runs
	// dry; small values trade per-op latency for fuller batches (and,
	// durably, fuller group commits). Reconfigurable live via TCtrl.
	AdmitWait time.Duration
	// P99Target, when positive, starts the adaptive admission controller
	// at Listen: a control loop that owns BatchMax and AdmitWait online,
	// growing batches while the server-side p99 service latency holds
	// under the target and the capacity-abort share stays low, shrinking
	// them when either budget is blown. Also settable live via
	// Ctrl.P99TargetUs.
	P99Target time.Duration
	// CtrlInterval is the controller's sampling interval. Default 10ms;
	// each interval differences the latency histogram and abort
	// collector and makes at most one knob move.
	CtrlInterval time.Duration
	// CtrlCapacityMax is the capacity-abort share (capacity aborts /
	// attempts) above which the controller shrinks batches regardless of
	// latency headroom — the TMCAM-cliff guard. Default 0.02.
	CtrlCapacityMax float64
	// Store, when non-nil, is the durability manager already attached to
	// System; Drain forces a final checkpoint to CheckpointPath (if set)
	// and syncs the log. A durable server is automatically a replication
	// leader: TReplSub subscribers stream its log.
	Store *durable.Store
	// CheckpointPath receives Drain's final checkpoint.
	CheckpointPath string
	// Follower, when non-nil, makes this a replica server: the backend's
	// heap is fed by the follower's replay, write requests are refused
	// until promotion, and reads run under the follower's snapshot lock.
	// The caller starts the follower; TReplPromote promotes it.
	Follower *replica.Follower
	// LeaderLogPath is the (shared-storage) path of the leader's WAL,
	// used by promotion to catch up past the dead leader's stream — the
	// zero-acked-loss step. Empty skips catch-up.
	LeaderLogPath string
	// Scenario and Scale label the hosted workload build in TStats
	// replies, so remote load generators can rebuild the matching Spec.
	Scenario string
	Scale    string
	// Metrics, when non-nil, is the telemetry registry the server
	// registers every instrument on; nil makes the server create a
	// private one (readable via Telemetry()). Instruments are always
	// registered, so the alloc pins exercise the instrumented path.
	Metrics *telemetry.Registry
	// TraceSlow, when positive, samples a structured log line for every
	// request whose admission-to-socket-write lifecycle exceeds it
	// (rate-limited to one line per 10ms so a latency collapse cannot
	// melt the log).
	TraceSlow time.Duration
	// TraceLog receives slow-request lines. Default os.Stderr.
	TraceLog io.Writer
}

// Server is a wire-protocol transaction server.
type Server struct {
	cfg       Config
	ln        net.Listener
	shards    []*shard
	pub       *replica.Publisher // non-nil on durable (leader-capable) servers
	hist      *stats.Histogram
	batchMax  atomic.Int64
	admitWait atomic.Int64 // nanoseconds

	batches    atomic.Uint64
	batchedOps atomic.Uint64

	// Telemetry: the registry (tel), the lifecycle stage histograms
	// beyond hist (admission wait, per-batch exec, reply flush, batch op
	// count), and the raw hot-path counters the registry scrapes.
	tel          *telemetry.Registry
	admitHist    *stats.Histogram
	execHist     *stats.Histogram
	flushHist    *stats.Histogram
	batchOpsHist *stats.Histogram // dimensionless: ops per batch
	framesIn     atomic.Uint64
	framesOut    atomic.Uint64
	execBusy     atomic.Int64
	slowTraces   atomic.Uint64
	slowStage    [3]atomic.Uint64 // dominant stage of slow requests: admit, exec, flush
	lastSlowNs   atomic.Int64
	traceSlow    int64 // Config.TraceSlow in ns (0 = off)
	traceLog     io.Writer

	// Structured tracing: the span ring every stage records into (the
	// WAL and an attached follower share it), the service-latency
	// exemplar table, the seq→trace map the replication publisher
	// consults, and the id generator for server-origin ids (slow
	// requests the client did not sample).
	ring      *trace.Ring
	exemplars trace.Exemplars
	seqTraces trace.SeqTraces
	idGen     *trace.IDGen

	// Adaptive admission controller state (admission.go). p99Target is
	// the live target in nanoseconds (zero = controller off).
	p99Target   atomic.Int64
	ctrlEpochs  atomic.Uint64
	ctrlAdjusts atomic.Uint64
	ctrlMu      sync.Mutex
	ctrl        *controller

	// execMu lets the control plane quiesce the executors: every batch
	// runs under RLock, a TCheck takes Lock.
	execMu sync.RWMutex

	mu       sync.Mutex
	conns    map[*srvConn]struct{}
	draining atomic.Bool

	readers sync.WaitGroup
	execs   sync.WaitGroup
	writers sync.WaitGroup

	drainOnce sync.Once
	drainErr  error
}

// shard is one executor: a queue, a backend session and scratch state.
type shard struct {
	id    int
	ch    chan *task
	sess  engine.Session
	batch []*task
	timer *time.Timer // admission-grace timer, reused across batches
	// body is the transaction body handed to System.Atomic, bound once
	// at construction — a per-batch closure literal would escape and
	// cost one heap allocation per batch.
	body func(tm.Ops)
	// colT is this executor's thread view of the system's collector;
	// exec diffs it around each Atomic to attribute attempts and abort
	// causes to the batch (for slow-request traces).
	colT stats.Thread
}

// task is one admitted data-plane request. Tasks are pooled: the reader
// decodes into ops, the executor fills results and encodes the framed
// reply in place, and the writer recycles the task after the socket
// write — all three buffers keep their capacity across requests, which
// is what makes the steady-state request path allocation-free.
type task struct {
	c       *srvConn
	id      uint64
	trace   uint64 // client-stamped trace id (0 = unsampled)
	seq     uint64 // commit sequence the carrying batch was assigned (update batches)
	ackNs   int64  // fsync-acknowledgement wait inside the carrying Atomic
	ops     []wire.Op
	results []wire.Result
	reply   []byte // encoded TReply frame (wire.AppendResultsFrame)
	t0      time.Time

	// Lifecycle trace, stamped by the executor and consumed by the
	// writer: when the batch started executing (admission wait = tExec -
	// t0) and when the reply was encoded and handed over (reply flush =
	// socket write time - tDone). The batch fields attribute the carrying
	// batch's hardware behaviour to the request for slow traces. All
	// plain scalars on the pooled struct: tracing allocates nothing.
	tExec      time.Time
	tDone      time.Time
	batchOps   int32
	hwBegins   uint32
	abCapacity uint32
	abConflict uint32
	abOther    uint32
	fallbacks  uint32
}

var taskPool = sync.Pool{New: func() any { return new(task) }}

// New validates the configuration and builds the server (not yet
// listening).
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil || cfg.System == nil {
		return nil, errors.New("server: Config needs Backend and System")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Shards > cfg.System.Threads() {
		return nil, fmt.Errorf("server: %d shards exceed the system's %d threads", cfg.Shards, cfg.System.Threads())
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 16
	}
	if cfg.CtrlInterval <= 0 {
		cfg.CtrlInterval = 10 * time.Millisecond
	}
	if cfg.CtrlCapacityMax <= 0 {
		cfg.CtrlCapacityMax = 0.02
	}
	s := &Server{
		cfg:       cfg,
		hist:      &stats.Histogram{},
		conns:     map[*srvConn]struct{}{},
		traceSlow: int64(cfg.TraceSlow),
		traceLog:  cfg.TraceLog,
	}
	if s.traceLog == nil {
		s.traceLog = os.Stderr
	}
	s.batchMax.Store(int64(cfg.BatchMax))
	s.admitWait.Store(int64(cfg.AdmitWait))
	s.ring = trace.NewRing(trace.DefaultRingSpans)
	s.idGen = trace.NewIDGen(uint64(time.Now().UnixNano()))
	if cfg.Store != nil {
		s.pub = replica.NewPublisher(cfg.Store.LogPath(), cfg.Store.Log())
		s.pub.SetTraceLookup(s.seqTraces.Get)
		cfg.Store.Log().SetTraceRing(s.ring)
	}
	if cfg.Follower != nil {
		cfg.Follower.SetTraceRing(s.ring)
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			id:   i,
			ch:   make(chan *task, 256),
			sess: cfg.Backend.NewSession(),
			colT: cfg.System.Collector().Thread(i),
		}
		sh.body = sh.execBody
		s.shards = append(s.shards, sh)
	}
	s.registerMetrics()
	return s, nil
}

// Listen binds the server and starts its executors. Use addr
// "127.0.0.1:0" for an ephemeral loopback port; the chosen address is
// returned.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	for _, sh := range s.shards {
		s.execs.Add(1)
		go sh.run(s)
	}
	if s.cfg.P99Target > 0 {
		if err := s.setP99Target(int(s.cfg.P99Target / time.Microsecond)); err != nil {
			ln.Close()
			return nil, err
		}
	}
	return ln.Addr(), nil
}

// Serve accepts connections until the listener closes. It returns nil
// when the server is draining, the accept error otherwise.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.startConn(nc)
	}
}

// startConn registers one accepted connection and spawns its reader and
// writer goroutines.
func (s *Server) startConn(nc net.Conn) {
	c := newSrvConn(s, nc)
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.readers.Add(1)
	go c.readLoop()
	s.writers.Add(1)
	go c.writeLoop()
}

// Drain shuts the server down gracefully: no new connections or
// requests are admitted, every already-admitted request commits and is
// answered, connections flush and close, and a durable store gets a
// final checkpoint. Safe to call more than once; Serve returns nil
// once draining.
func (s *Server) Drain() error {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining.Store(true)
		for c := range s.conns {
			// Unblock readers parked in a frame read; they observe the
			// draining flag and exit without admitting further requests.
			c.c.SetReadDeadline(time.Now())
		}
		s.mu.Unlock()
		// Draining is set, so a racing TCtrl cannot restart the controller
		// after this stop.
		s.stopController()
		if s.ln != nil {
			s.ln.Close()
		}
		// Readers are the only producers; once they exit the queues can
		// close, and the executors quiesce after finishing every admitted
		// batch.
		s.readers.Wait()
		for _, sh := range s.shards {
			close(sh.ch)
		}
		s.execs.Wait()
		s.writers.Wait()
		if s.cfg.Store != nil {
			if s.cfg.CheckpointPath != "" {
				if _, err := s.cfg.Store.WriteCheckpoint(s.cfg.CheckpointPath); err != nil {
					s.drainErr = fmt.Errorf("server: final checkpoint: %w", err)
					return
				}
			}
			if err := s.cfg.Store.Sync(); err != nil {
				s.drainErr = fmt.Errorf("server: drain sync: %w", err)
			}
		}
	})
	return s.drainErr
}

// shardFor routes a request to an executor by its first key, so a hot
// key's traffic serializes onto one shard instead of conflicting across
// all of them. Requests with no key (empty TXNs) land on shard 0.
func (s *Server) shardFor(ops []wire.Op) *shard {
	if len(ops) == 0 {
		return s.shards[0]
	}
	h := ops[0].Key * 0x9e3779b97f4a7c15
	return s.shards[int(h>>33)%len(s.shards)]
}

// setBatchMax applies the control plane's batch knob.
func (s *Server) setBatchMax(n int) error {
	if n <= 0 || n > wire.MaxTxnOps {
		return fmt.Errorf("batch_max %d out of range 1..%d", n, wire.MaxTxnOps)
	}
	s.batchMax.Store(int64(n))
	return nil
}

// setAdmitWait applies the control plane's admission-grace knob
// (microseconds; negative clears to zero).
func (s *Server) setAdmitWait(us int) error {
	if us < 0 {
		us = 0
	}
	if us > int(time.Second/time.Microsecond) {
		return fmt.Errorf("admit_wait_us %d exceeds 1s", us)
	}
	s.admitWait.Store(int64(time.Duration(us) * time.Microsecond))
	return nil
}

// statsSnapshot builds the TStats reply.
func (s *Server) statsSnapshot() wire.ServerStats {
	var repl *wire.ReplStats
	if f := s.cfg.Follower; f != nil {
		rs := f.Stats()
		repl = &rs
	} else if s.pub != nil {
		repl = &wire.ReplStats{
			Role:        "leader",
			DurableSeq:  s.cfg.Store.DurableSeq(),
			Subscribers: s.pub.Subscribers(),
		}
	}
	tel := &wire.TelemetryStats{
		FramesIn:      s.framesIn.Load(),
		FramesOut:     s.framesOut.Load(),
		SlowTraces:    s.slowTraces.Load(),
		AdmitWaitHist: s.admitHist.Snapshot(),
		FlushHist:     s.flushHist.Snapshot(),
		BatchOpsHist:  s.batchOpsHist.Snapshot(),
	}
	if st := s.cfg.Store; st != nil {
		ws := st.Log().Stats()
		tel.WalRecords = ws.Records
		tel.WalBytes = ws.Bytes
		tel.WalBatches = ws.Batches
		tel.WalFsyncs = ws.Fsyncs
		tel.FsyncHist = st.Log().FsyncHist().Snapshot()
		tel.AckWaitHist = st.AckWaitHist().Snapshot()
		tel.BatchRecHist = st.Log().BatchRecsHist().Snapshot()
	}
	if s.pub != nil {
		tel.Subscribers = s.pub.Subscribers()
		tel.Dropped = s.pub.Dropped()
	}
	return wire.ServerStats{
		Repl:        repl,
		System:      s.cfg.System.Name(),
		Scenario:    s.cfg.Scenario,
		Scale:       s.cfg.Scale,
		Shards:      len(s.shards),
		BatchMax:    int(s.batchMax.Load()),
		AdmitWaitUs: int(time.Duration(s.admitWait.Load()) / time.Microsecond),
		P99TargetUs: int(time.Duration(s.p99Target.Load()) / time.Microsecond),
		CtrlEpochs:  s.ctrlEpochs.Load(),
		CtrlAdjusts: s.ctrlAdjusts.Load(),
		Durable:     s.cfg.Store != nil,
		Stats:       s.cfg.System.Collector().Snapshot(),
		Batches:     s.batches.Load(),
		BatchedOps:  s.batchedOps.Load(),
		Hist:        s.hist.Snapshot(),
		Telemetry:   tel,
	}
}

// Snapshot exposes the full TStats payload in-process — what a drain
// log or an embedding test reads without a wire round trip.
func (s *Server) Snapshot() wire.ServerStats { return s.statsSnapshot() }

// Hist exposes the per-op latency histogram (tests and in-process
// loadgen cells read it directly).
func (s *Server) Hist() *stats.Histogram { return s.hist }

// TraceRing exposes the server's span ring — what /debug/traces serves
// and what trace-reconstruction cells snapshot. The WAL's fsync spans
// and an attached follower's replay spans land in the same ring.
func (s *Server) TraceRing() *trace.Ring { return s.ring }

// Exemplars exposes the service-latency exemplar table: per histogram
// bucket, the most recent traced request that landed in it.
func (s *Server) Exemplars() *trace.Exemplars { return &s.exemplars }

// recordSpans closes a request's lifecycle trace after the socket
// write: one span per stage plus the covering request span, all under
// one trace id. Requests the client did not sample get spans only when
// slow, under a fresh server-origin id. The stage spans tile the
// request exactly (admit + exec + flush = total); the ack span nests
// inside exec. Allocation-free: spans are stack literals into the
// lock-free ring.
func (s *Server) recordSpans(t *task, total time.Duration) {
	tr := t.trace
	if tr == 0 {
		tr = s.idGen.Next() | trace.ServerOriginBit
	}
	start := t.t0.UnixNano()
	admit := int64(t.tExec.Sub(t.t0))
	exec := int64(t.tDone.Sub(t.tExec))
	flush := int64(total) - admit - exec
	s.ring.Add(trace.Span{Trace: tr, Kind: trace.KAdmit, Start: start, Dur: admit})
	s.ring.Add(trace.Span{Trace: tr, Kind: trace.KExec, Start: start + admit, Dur: exec, Arg: int64(t.batchOps)})
	if t.ackNs > 0 {
		s.ring.Add(trace.Span{Trace: tr, Kind: trace.KAck, Seq: t.seq, Start: t.tDone.UnixNano() - t.ackNs, Dur: t.ackNs})
	}
	s.ring.Add(trace.Span{Trace: tr, Kind: trace.KFlush, Start: start + admit + exec, Dur: flush})
	s.ring.Add(trace.Span{Trace: tr, Kind: trace.KRequest, Start: start, Dur: int64(total), Arg: int64(len(t.ops)), Seq: t.seq})
}

// Draining reports whether Drain has started — the readiness signal.
func (s *Server) Draining() bool { return s.draining.Load() }

// run is the executor loop: admit one task (blocking), coalesce more up
// to the batch bound — draining the queue opportunistically and, with a
// non-zero admission grace, waiting briefly for stragglers — then
// execute the batch as one transaction and answer every task.
func (sh *shard) run(s *Server) {
	defer s.execs.Done()
	for t := range sh.ch {
		sh.batch = sh.batch[:0]
		sh.batch = append(sh.batch, t)
		opsN := len(t.ops)
		max := int(s.batchMax.Load())
		wait := time.Duration(s.admitWait.Load())
		var deadline time.Time
		if wait > 0 {
			deadline = time.Now().Add(wait)
		}
	fill:
		for opsN < max {
			select {
			case t2, ok := <-sh.ch:
				if !ok {
					// Queue closed mid-fill: run what we have, then exit via
					// the range loop.
					break fill
				}
				sh.batch = append(sh.batch, t2)
				opsN += len(t2.ops)
				continue
			default:
			}
			// Queue dry: wait out the admission grace, if any remains.
			if wait <= 0 {
				break
			}
			rem := time.Until(deadline)
			if rem <= 0 {
				break
			}
			// The grace timer is per-shard and reused across batches
			// (Reset/Stop without draining is sound under go >= 1.23 timer
			// semantics), so a non-zero admission grace costs no allocation
			// per batch.
			if sh.timer == nil {
				sh.timer = time.NewTimer(rem)
			} else {
				sh.timer.Reset(rem)
			}
			select {
			case t2, ok := <-sh.ch:
				sh.timer.Stop()
				if !ok {
					break fill
				}
				sh.batch = append(sh.batch, t2)
				opsN += len(t2.ops)
			case <-sh.timer.C:
				break fill
			}
		}
		sh.exec(s, opsN)
	}
}

// exec runs one batch as a single transaction and replies to each task.
func (sh *shard) exec(s *Server, opsN int) {
	tExec := time.Now()
	for _, t := range sh.batch {
		s.admitHist.Observe(tExec.Sub(t.t0))
	}
	loc0 := sh.colT.Local()
	s.execMu.RLock()
	if f := s.cfg.Follower; f != nil {
		// Replica batches run under the follower's snapshot lock: replay
		// applies whole records under the write lock, so the batch
		// observes a record-boundary prefix at the published watermark.
		f.RLock()
	}
	inserts := 0
	kind := tm.KindReadOnly
	for _, t := range sh.batch {
		if cap(t.results) < len(t.ops) {
			t.results = make([]wire.Result, len(t.ops))
		}
		t.results = t.results[:len(t.ops)]
		for _, op := range t.ops {
			if op.Kind.MayInsert() {
				inserts++
			}
			if !op.Kind.ReadOnly() {
				kind = tm.KindUpdate
			}
		}
	}
	sh.sess.Prepare(inserts)
	s.execBusy.Add(1)
	s.cfg.System.Atomic(sh.id, kind, sh.body)
	s.execBusy.Add(-1)
	sh.sess.Commit()
	if f := s.cfg.Follower; f != nil {
		f.RUnlock()
	}
	s.execMu.RUnlock()

	locd := sh.colT.Local().Sub(loc0)
	s.batches.Add(1)
	s.batchedOps.Add(uint64(opsN))
	s.execHist.Observe(time.Since(tExec))
	s.batchOpsHist.Observe(time.Duration(opsN))
	// Commit sequence and fsync-ack wait of the batch just executed
	// (thread-owned slots, read on the same executor that ran Atomic);
	// zero for read-only batches, which never touched the log.
	var seq uint64
	var ackNs int64
	if st := s.cfg.Store; st != nil && kind == tm.KindUpdate {
		seq = st.ThreadSeq(sh.id)
		ackNs = st.LastAckWait(sh.id)
	}
	for _, t := range sh.batch {
		// With a durable store attached, Atomic returned only after the
		// batch's record was fsynced — the reply acknowledges durability.
		// The framed reply is encoded straight into the task's own buffer
		// (no intermediate payload, no copy); the writer releases the
		// inflight reference and recycles the task after the write.
		d := time.Since(t.t0)
		s.hist.Observe(d)
		t.seq = seq
		t.ackNs = ackNs
		if t.trace != 0 {
			s.exemplars.Note(d, t.trace)
			if seq != 0 {
				s.seqTraces.Put(seq, t.trace)
			}
		}
		t.reply = wire.AppendResultsFrameT(t.reply[:0], t.id, t.trace, t.results)
		t.tExec = tExec
		t.batchOps = int32(opsN)
		t.hwBegins = uint32(locd.HWBeginROT + locd.HWBeginHTM)
		t.abCapacity = uint32(locd.Aborts[stats.AbortCapacity])
		t.abConflict = uint32(locd.Aborts[stats.AbortTransactional])
		t.abOther = uint32(locd.Aborts[stats.AbortNonTransactional] + locd.Aborts[stats.AbortExplicit] + locd.Aborts[stats.AbortOther])
		t.fallbacks = uint32(locd.Fallbacks)
		t.tDone = time.Now()
		t.c.sendTask(t)
	}
}

// execBody is the transaction body for the shard's current batch. The
// body may retry (TM contract): Reset rewinds the session and results
// are overwritten in place, so replays are idempotent.
func (sh *shard) execBody(ops tm.Ops) {
	sh.sess.Reset()
	for _, t := range sh.batch {
		for i, op := range t.ops {
			switch op.Kind {
			case wire.OpGet:
				v, ok := sh.sess.Read(ops, op.Key)
				t.results[i] = wire.Result{OK: ok, Val: v}
			case wire.OpPut:
				wasNew := sh.sess.Insert(ops, op.Key, op.Arg)
				t.results[i] = wire.Result{OK: wasNew, Val: op.Arg}
			case wire.OpDel:
				present := sh.sess.Delete(ops, op.Key)
				t.results[i] = wire.Result{OK: present}
			case wire.OpScan:
				n := sh.sess.Scan(ops, op.Key, int(op.Arg))
				t.results[i] = wire.Result{OK: true, Val: uint64(n)}
			case wire.OpRMW:
				v, _ := sh.sess.Read(ops, op.Key)
				sh.sess.Insert(ops, op.Key, v+op.Arg)
				t.results[i] = wire.Result{OK: true, Val: v + op.Arg}
			}
		}
	}
}
