package server_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sihtm/internal/wire"
	"sihtm/internal/workload/engine"
)

// drive runs workers async sessions committing small transactions in a
// loop until stop is closed — background traffic for the controller to
// observe.
func drive(t *testing.T, rb *engine.RemoteBackend, workers int, stop chan struct{}) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		s := rb.NewSession().(engine.AsyncSession)
		key := uint64(w * 7)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Reset()
				s.ReadModifyWriteAsync(key%64, 1)
				s.ReadAsync((key + 1) % 64)
				s.Commit()
				key++
			}
		}()
	}
	return &wg
}

// waitStats polls the server's stats until cond holds or the deadline
// passes, returning the last snapshot.
func waitStats(t *testing.T, rb *engine.RemoteBackend, d time.Duration, cond func(wire.ServerStats) bool) (wire.ServerStats, bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		st, err := rb.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if cond(st) {
			return st, true
		}
		if time.Now().After(deadline) {
			return st, false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestControllerBacksOffOverTarget: with every batch taking ≥1ms, a 1ms
// p99 target is unreachable, so the controller must retreat — grace
// period to zero first, then the batch bound down to 1.
func TestControllerBacksOffOverTarget(t *testing.T) {
	f := startFixture(t, 64, 1, 64, time.Millisecond, false)
	rb := dial(t, f, 2)

	if err := rb.Ctrl(wire.Ctrl{AdmitWaitUs: 400, P99TargetUs: 1000}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	wg := drive(t, rb, 8, stop)
	st, ok := waitStats(t, rb, 5*time.Second, func(st wire.ServerStats) bool {
		return st.BatchMax == 1 && st.AdmitWaitUs == 0
	})
	close(stop)
	wg.Wait()
	if !ok {
		t.Fatalf("controller did not back off: batch_max=%d admit_wait_us=%d after %d epochs (%d adjusts)",
			st.BatchMax, st.AdmitWaitUs, st.CtrlEpochs, st.CtrlAdjusts)
	}
	if st.P99TargetUs != 1000 {
		t.Fatalf("p99_target_us = %d, want 1000", st.P99TargetUs)
	}
	if st.CtrlAdjusts == 0 {
		t.Fatal("controller reports zero adjustments after backing off")
	}
}

// TestControllerGrowsBatchWithHeadroom: sub-millisecond service times
// against a 50ms target leave plenty of headroom, so the controller
// must grow the batch bound from its floor of 1.
func TestControllerGrowsBatchWithHeadroom(t *testing.T) {
	f := startFixture(t, 64, 1, 1, 0, false)
	rb := dial(t, f, 2)

	if err := rb.Ctrl(wire.Ctrl{P99TargetUs: 50_000}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	wg := drive(t, rb, 8, stop)
	st, ok := waitStats(t, rb, 5*time.Second, func(st wire.ServerStats) bool {
		return st.BatchMax > 1
	})
	close(stop)
	wg.Wait()
	if !ok {
		t.Fatalf("controller never grew batch_max past 1 (%d epochs, %d adjusts)", st.CtrlEpochs, st.CtrlAdjusts)
	}
}

// TestControllerDisable: a negative target stops the controller and the
// knobs freeze where they are.
func TestControllerDisable(t *testing.T) {
	f := startFixture(t, 64, 1, 8, 0, false)
	rb := dial(t, f, 1)

	if err := rb.Ctrl(wire.Ctrl{P99TargetUs: 10_000}); err != nil {
		t.Fatal(err)
	}
	st, err := rb.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.P99TargetUs != 10_000 {
		t.Fatalf("p99_target_us = %d, want 10000", st.P99TargetUs)
	}
	if err := rb.Ctrl(wire.Ctrl{P99TargetUs: -1}); err != nil {
		t.Fatal(err)
	}
	st, err = rb.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.P99TargetUs != 0 {
		t.Fatalf("p99_target_us = %d after disable, want 0", st.P99TargetUs)
	}
	frozen := st.BatchMax

	// The frozen knob is still manually adjustable.
	if err := rb.Ctrl(wire.Ctrl{BatchMax: frozen + 1}); err != nil {
		t.Fatal(err)
	}
	st, err = rb.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchMax != frozen+1 {
		t.Fatalf("batch_max = %d after manual set, want %d", st.BatchMax, frozen+1)
	}

	// An absurd target is rejected.
	if err := rb.Ctrl(wire.Ctrl{P99TargetUs: int(2 * time.Minute / time.Microsecond)}); err == nil {
		t.Fatal("2-minute p99 target accepted, want error")
	}
}

// TestControllerStopsAtDrain: draining while the controller runs must
// stop it cleanly (no goroutine left adjusting a drained server).
func TestControllerStopsAtDrain(t *testing.T) {
	f := startFixture(t, 64, 1, 8, 0, false)
	rb := dial(t, f, 1)
	if err := rb.Ctrl(wire.Ctrl{P99TargetUs: 10_000}); err != nil {
		t.Fatal(err)
	}
	var done atomic.Bool
	go func() {
		f.srv.Drain()
		done.Store(true)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !done.Load() {
		if time.Now().After(deadline) {
			t.Fatal("Drain did not complete with controller running")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
