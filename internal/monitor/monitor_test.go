package monitor

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sihtm/internal/alert"
	"sihtm/internal/telemetry"
	"sihtm/internal/tsdb"
)

// TestPollAndRender runs a real tsdb + alert engine behind a real
// metrics listener and checks the dashboard panel end to end.
func TestPollAndRender(t *testing.T) {
	reg := telemetry.NewRegistry()
	sys := telemetry.L("system", "si-htm")
	commits := reg.MustCounter("sihtm_tm_commits_total", "commits",
		telemetry.L("path", "update"), sys)
	reg.MustCounter("sihtm_tm_commits_total", "commits", telemetry.L("path", "read_only"), sys)
	caps := reg.MustCounter("sihtm_tm_aborts_total", "aborts",
		telemetry.L("cause", "capacity"), sys)
	for _, cause := range []string{"conflict", "non_transactional", "explicit", "other"} {
		reg.MustCounter("sihtm_tm_aborts_total", "aborts", telemetry.L("cause", cause), sys)
	}
	svc := reg.MustHistogram("sihtm_server_service_seconds", "service", telemetry.UnitSeconds)
	store := tsdb.New(reg, tsdb.Config{Interval: 10 * time.Millisecond, Retention: 64})
	eng, err := alert.New(store, reg, alert.DefaultRules(alert.RuleOptions{
		System: "si-htm", Interval: 10 * time.Millisecond,
	}), nil)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Unix(3000, 0)
	for i := 0; i < 12; i++ {
		commits.Add(50)
		caps.Add(25) // 33% capacity share: the cliff rule must fire
		svc.Observe(700 * time.Microsecond)
		at = at.Add(10 * time.Millisecond)
		store.ScrapeAt(at)
	}
	srv, err := telemetry.ListenAndServe("127.0.0.1:0", reg, nil,
		telemetry.Extra{Path: "/debug/timeseries", Handler: tsdb.Handler(store)},
		telemetry.Extra{Path: "/debug/alerts", Handler: alert.Handler(eng)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	f := Poll(Node{Name: "leader", Base: "http://" + srv.Addr()}, 0)
	if f.Err != nil {
		t.Fatal(f.Err)
	}
	if len(f.TS.TimesNs) != 12 {
		t.Fatalf("polled points = %d want 12", len(f.TS.TimesNs))
	}
	var buf bytes.Buffer
	Render(&buf, []Frame{f}, 0)
	out := buf.String()
	for _, want := range []string{
		"== leader",
		"throughput  5000 tx/s",
		"capacity 33.3%",
		"service 7", // ~700µs bucketized
		"FIRING: " + alert.RuleCapacityShare,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}

	// A dead node renders as unreachable, not a panic.
	dead := Poll(Node{Name: "ghost", Base: "http://127.0.0.1:1"}, 0)
	if dead.Err == nil {
		t.Fatal("poll of dead node succeeded")
	}
	buf.Reset()
	Render(&buf, []Frame{dead}, 0)
	if !strings.Contains(buf.String(), "UNREACHABLE") {
		t.Fatalf("dead panel:\n%s", buf.String())
	}
}
