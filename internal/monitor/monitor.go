// Package monitor is the live terminal dashboard behind `repro
// monitor`: it polls one or more nodes' /debug/timeseries and
// /debug/alerts surfaces and renders a compact per-node panel —
// throughput, abort-cause mix, stage latencies, replication lag, and
// the active alert set. Rates are computed client-side from the dumped
// counter trajectories, so the monitor needs nothing beyond the two
// JSON endpoints and works identically against a live server or a
// replayed dump.
package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"sihtm/internal/alert"
	"sihtm/internal/tsdb"
)

// Node names one polled metrics listener.
type Node struct {
	Name string
	Base string // "http://host:port"
}

// Frame is one node's polled state (Err set when the poll failed —
// the dashboard renders the error in place of the panel).
type Frame struct {
	Node   Node
	TS     tsdb.Dump
	Alerts alert.Dump
	Err    error
}

// Poll fetches one node's dump pair, trimmed to the trailing window.
func Poll(n Node, window time.Duration) Frame {
	f := Frame{Node: n}
	base := strings.TrimSuffix(n.Base, "/")
	url := base + "/debug/timeseries"
	if window > 0 {
		url += "?window=" + window.String()
	}
	if f.Err = getJSON(url, &f.TS); f.Err != nil {
		return f
	}
	f.Err = getJSON(base+"/debug/alerts", &f.Alerts)
	return f
}

func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// sumRate sums the window rate of every series of a family.
func sumRate(d *tsdb.Dump, name string, window time.Duration) float64 {
	var sum float64
	for _, ds := range d.Find(name) {
		if r, ok := d.ScalarRate(ds, window); ok {
			sum += r
		}
	}
	return sum
}

// Render writes one dashboard block for the polled frames.
func Render(w io.Writer, frames []Frame, window time.Duration) {
	for _, f := range frames {
		fmt.Fprintf(w, "== %s (%s)\n", f.Node.Name, f.Node.Base)
		if f.Err != nil {
			fmt.Fprintf(w, "  UNREACHABLE: %v\n\n", f.Err)
			continue
		}
		d := &f.TS
		fmt.Fprintf(w, "  window      %d points x %.0fms (%d scrape overruns)\n",
			len(d.TimesNs), d.IntervalMs, d.ScrapeOverruns)

		commitRate := sumRate(d, "sihtm_tm_commits_total", window)
		fmt.Fprintf(w, "  throughput  %.0f tx/s\n", commitRate)

		abortRate := sumRate(d, "sihtm_tm_aborts_total", window)
		attempts := commitRate + abortRate
		var mix []string
		for _, ds := range d.Find("sihtm_tm_aborts_total") {
			r, ok := d.ScalarRate(ds, window)
			if !ok || attempts <= 0 || r <= 0 {
				continue
			}
			mix = append(mix, fmt.Sprintf("%s %.1f%%", ds.Labels["cause"], 100*r/attempts))
		}
		if len(mix) == 0 {
			mix = []string{"none"}
		}
		fmt.Fprintf(w, "  aborts      %s\n", strings.Join(mix, "  "))

		var stages []string
		for _, fam := range []struct{ name, label string }{
			{"sihtm_server_admission_wait_seconds", "admit"},
			{"sihtm_server_batch_exec_seconds", "exec"},
			{"sihtm_server_reply_flush_seconds", "flush"},
			{"sihtm_server_service_seconds", "service"},
		} {
			for _, ds := range d.Find(fam.name) {
				if p99 := ds.LastP99Us(8); p99 > 0 {
					stages = append(stages, fmt.Sprintf("%s %.0fµs", fam.label, p99))
				}
			}
		}
		if len(stages) > 0 {
			fmt.Fprintf(w, "  stage p99   %s\n", strings.Join(stages, "  "))
		}

		if fsync := d.Find("sihtm_wal_fsync_seconds"); len(fsync) > 0 {
			line := fmt.Sprintf("  wal         fsync p99 %.0fµs", fsync[0].LastP99Us(8))
			if seq := d.Find("sihtm_wal_durable_seq"); len(seq) > 0 {
				line += fmt.Sprintf("  durable_seq %.0f", seq[0].Last())
			}
			fmt.Fprintf(w, "%s\n", line)
		}
		if lag := d.Find("sihtm_repl_lag"); len(lag) > 0 {
			wm := d.Find("sihtm_repl_watermark")
			line := fmt.Sprintf("  repl        lag %.0f", lag[0].Last())
			if len(wm) > 0 {
				line += fmt.Sprintf("  watermark %.0f", wm[0].Last())
			}
			fmt.Fprintf(w, "%s\n", line)
		}

		var firing, pending []string
		for _, rs := range f.Alerts.Rules {
			switch rs.State {
			case "firing":
				firing = append(firing, fmt.Sprintf("%s (%.4g %s %g)", rs.Name, rs.Value, rs.Op, rs.Threshold))
			case "pending":
				pending = append(pending, rs.Name)
			}
		}
		sort.Strings(firing)
		sort.Strings(pending)
		switch {
		case len(firing) > 0:
			fmt.Fprintf(w, "  alerts      FIRING: %s\n", strings.Join(firing, ", "))
		case len(pending) > 0:
			fmt.Fprintf(w, "  alerts      pending: %s\n", strings.Join(pending, ", "))
		default:
			fmt.Fprintf(w, "  alerts      all %d rules healthy\n", len(f.Alerts.Rules))
		}
		if len(pending) > 0 && len(firing) > 0 {
			fmt.Fprintf(w, "              pending: %s\n", strings.Join(pending, ", "))
		}
		fmt.Fprintln(w)
	}
}
