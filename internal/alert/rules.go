// Built-in rules for the domain: the capacity-cliff detector the paper
// is about, the latency SLO the admission controller steers toward, and
// the durability/replication health signals. DefaultRules emits only
// the rules whose series the node actually registers — WAL rules on
// durable nodes, watermark rules on followers, subscriber rules on
// leaders — so resolution against the scrape layout never fails.
package alert

import (
	"time"

	"sihtm/internal/telemetry"
)

// Rule names, exported so cells and smoke scripts can reference them
// without string drift.
const (
	RuleCapacityShare  = "capacity-abort-share"
	RuleP99SLO         = "p99-over-slo"
	RuleFsyncP99       = "fsync-p99"
	RuleWatermarkStall = "follower-watermark-stall"
	RuleDroppedSubs    = "repl-dropped-subscribers"
)

// DefaultCapacityMax mirrors the admission controller's capacity-abort
// ceiling (server.Config.CtrlCapacityMax default): beyond a 2% share
// the paper's capacity cliff is underway.
const DefaultCapacityMax = 0.02

// DefaultFsyncP99Max is the fsync-latency threshold: well above a
// healthy group-commit window, low enough to catch a struggling disk.
const DefaultFsyncP99Max = 50 * time.Millisecond

// RuleOptions scopes DefaultRules to one node's role and knobs.
type RuleOptions struct {
	// System is the TM system label of the hosted workload ("si-htm",
	// "htm", ...) — the tm_* families are labeled per system.
	System string
	// Interval is the scrape cadence; every window scales from it.
	Interval time.Duration
	// CapacityMax overrides the capacity-abort share ceiling
	// (default DefaultCapacityMax).
	CapacityMax float64
	// P99Target enables the p99 SLO rule when > 0 (the --p99-target
	// knob), compared against the service-latency histogram.
	P99Target time.Duration
	// FsyncP99Max overrides the fsync threshold (default
	// DefaultFsyncP99Max).
	FsyncP99Max time.Duration
	// Durable: the node has a WAL (fsync rule applies).
	Durable bool
	// Follower: the node streams from a leader (watermark rule).
	Follower bool
	// Leader: the node publishes replication (dropped-subscriber rule).
	Leader bool
}

// attemptsSignal lists every series summing to transaction attempts for
// one system: both commit paths plus all five abort causes.
func attemptsSignal(system string) []Series {
	sys := telemetry.L("system", system)
	out := []Series{
		{Name: "sihtm_tm_commits_total", Labels: []telemetry.Label{telemetry.L("path", "update"), sys}},
		{Name: "sihtm_tm_commits_total", Labels: []telemetry.Label{telemetry.L("path", "read_only"), sys}},
	}
	for _, cause := range []string{"conflict", "non_transactional", "capacity", "explicit", "other"} {
		out = append(out, Series{Name: "sihtm_tm_aborts_total",
			Labels: []telemetry.Label{telemetry.L("cause", cause), sys}})
	}
	return out
}

// DefaultRules builds the role-appropriate built-in rule set.
func DefaultRules(o RuleOptions) []Rule {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	capMax := o.CapacityMax
	if capMax <= 0 {
		capMax = DefaultCapacityMax
	}
	fsyncMax := o.FsyncP99Max
	if fsyncMax <= 0 {
		fsyncMax = DefaultFsyncP99Max
	}
	iv := o.Interval
	sys := telemetry.L("system", o.System)

	rules := []Rule{{
		// The capacity-cliff detector: share of attempts dying as HTM
		// capacity aborts, burn-rate over a fast/slow window pair so a
		// one-interval blip doesn't page but a real cliff fires within
		// one evaluation of the fast window filling.
		Name:     RuleCapacityShare,
		Help:     "HTM capacity-abort share of transaction attempts above the admission controller's ceiling — the TMCAM capacity cliff.",
		Severity: "page",
		Kind:     KindBurnRate,
		Signal: Signal{
			Series: []Series{{Name: "sihtm_tm_aborts_total",
				Labels: []telemetry.Label{telemetry.L("cause", "capacity"), sys}}},
			Reduce: ReduceRate,
			Den:    attemptsSignal(o.System),
		},
		Op:         OpGreater,
		Threshold:  capMax,
		FastWindow: 4 * iv,
		SlowWindow: 16 * iv,
	}}

	if o.P99Target > 0 {
		rules = append(rules, Rule{
			Name:     RuleP99SLO,
			Help:     "Service p99 over the --p99-target SLO on both burn windows.",
			Severity: "page",
			Kind:     KindBurnRate,
			Signal: Signal{
				Series: []Series{{Name: "sihtm_server_service_seconds"}},
				Reduce: ReduceQuantile,
				Q:      0.99,
			},
			Op:         OpGreater,
			Threshold:  o.P99Target.Seconds(),
			FastWindow: 8 * iv,
			SlowWindow: 32 * iv,
		})
	}

	if o.Durable {
		rules = append(rules, Rule{
			Name:     RuleFsyncP99,
			Help:     "WAL fsync p99 over threshold — group commit is losing its window to the disk.",
			Severity: "warn",
			Kind:     KindThreshold,
			Signal: Signal{
				Series: []Series{{Name: "sihtm_wal_fsync_seconds"}},
				Reduce: ReduceQuantile,
				Q:      0.99,
			},
			Op:        OpGreater,
			Threshold: fsyncMax.Seconds(),
			Window:    8 * iv,
			For:       2 * iv,
		})
	}

	if o.Follower {
		rules = append(rules, Rule{
			Name:     RuleWatermarkStall,
			Help:     "Follower watermark not advancing while behind the leader's frontier.",
			Severity: "page",
			Kind:     KindRateOfChange,
			Signal: Signal{
				Series: []Series{{Name: "sihtm_repl_watermark"}},
				Reduce: ReduceDelta,
			},
			Op:        OpLess,
			Threshold: 1, // fewer than one record applied over the window
			Window:    8 * iv,
			For:       2 * iv,
			Gate: &Condition{
				Signal:    Signal{Series: []Series{{Name: "sihtm_repl_lag"}}, Reduce: ReduceValue},
				Op:        OpGreater,
				Threshold: 0,
			},
		})
	}

	if o.Leader {
		rules = append(rules, Rule{
			Name:     RuleDroppedSubs,
			Help:     "Replication subscribers dropped for falling behind the stream.",
			Severity: "warn",
			Kind:     KindRateOfChange,
			Signal: Signal{
				Series: []Series{{Name: "sihtm_repl_dropped_subscribers_total"}},
				Reduce: ReduceDelta,
			},
			Op:        OpGreater,
			Threshold: 0,
			Window:    8 * iv,
		})
	}
	return rules
}
