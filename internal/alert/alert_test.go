package alert

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sihtm/internal/telemetry"
	"sihtm/internal/tsdb"
)

const step = 10 * time.Millisecond

// harness drives a store with synthetic timestamps so for-durations and
// windows are exact.
type harness struct {
	reg   *telemetry.Registry
	store *tsdb.Store
	at    time.Time
}

func newHarness(t *testing.T, build func(reg *telemetry.Registry)) *harness {
	t.Helper()
	reg := telemetry.NewRegistry()
	build(reg)
	return &harness{
		reg:   reg,
		store: tsdb.New(reg, tsdb.Config{Interval: step, Retention: 64}),
		at:    time.Unix(2000, 0),
	}
}

// tick scrapes once; the engine's OnScrape hook evaluates.
func (h *harness) tick() { h.at = h.at.Add(step); h.store.ScrapeAt(h.at) }

func TestThresholdHysteresis(t *testing.T) {
	var g *telemetry.Gauge
	h := newHarness(t, func(reg *telemetry.Registry) {
		g = reg.MustGauge("t_depth", "depth")
	})
	var logBuf bytes.Buffer
	eng, err := New(h.store, h.reg, []Rule{{
		Name: "deep-queue", Severity: "warn", Kind: KindThreshold,
		Signal:    Signal{Series: []Series{{Name: "t_depth"}}, Reduce: ReduceValue},
		Op:        OpGreater,
		Threshold: 100,
		For:       2 * step,
	}}, &logBuf)
	if err != nil {
		t.Fatal(err)
	}
	mustState := func(want State) {
		t.Helper()
		if st, ok := eng.State("deep-queue"); !ok || st != want {
			t.Fatalf("state = %v,%v want %v", st, ok, want)
		}
	}
	h.tick()
	mustState(StateInactive)
	g.Set(500)
	h.tick() // breach #1 → pending
	mustState(StatePending)
	h.tick() // breach held 1 step < For
	mustState(StatePending)
	h.tick() // held 2 steps >= For → firing
	mustState(StateFiring)
	g.Set(10)
	h.tick()
	mustState(StateInactive)

	d := eng.Dump()
	if len(d.Events) != 2 || d.Events[0].To != "firing" || d.Events[1].To != "resolved" {
		t.Fatalf("events = %+v", d.Events)
	}
	if d.Events[0].Value != 500 {
		t.Fatalf("firing value = %v want 500", d.Events[0].Value)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "rule=deep-queue") || !strings.Contains(logs, "state=firing") ||
		!strings.Contains(logs, "state=resolved") {
		t.Fatalf("log lines missing transitions:\n%s", logs)
	}
	// A bounce that clears before For never fires.
	g.Set(500)
	h.tick()
	mustState(StatePending)
	g.Set(0)
	h.tick()
	mustState(StateInactive)
	if got := eng.Dump(); len(got.Events) != 2 {
		t.Fatalf("bounce produced events: %+v", got.Events)
	}
}

func TestBurnRateShare(t *testing.T) {
	var capc, okc *telemetry.Counter
	h := newHarness(t, func(reg *telemetry.Registry) {
		capc = reg.MustCounter("t_bad_total", "capacity aborts")
		okc = reg.MustCounter("t_ok_total", "commits")
	})
	eng, err := New(h.store, h.reg, []Rule{{
		Name: "bad-share", Severity: "page", Kind: KindBurnRate,
		Signal: Signal{
			Series: []Series{{Name: "t_bad_total"}},
			Reduce: ReduceRate,
			Den:    []Series{{Name: "t_bad_total"}, {Name: "t_ok_total"}},
		},
		Op:         OpGreater,
		Threshold:  0.02,
		FastWindow: 4 * step,
		SlowWindow: 16 * step,
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy traffic: 100 commits, 1 capacity abort per interval (1%).
	for i := 0; i < 20; i++ {
		okc.Add(100)
		capc.Add(1)
		h.tick()
	}
	if st, _ := eng.State("bad-share"); st != StateInactive {
		t.Fatalf("healthy share fired: %v", st)
	}
	// Cliff: 10% capacity share. The fast window (4 steps) breaches
	// almost immediately; firing waits for the slow window (16 steps)
	// to cross too — the slow burn confirmation.
	fired := -1
	for i := 0; i < 30; i++ {
		okc.Add(90)
		capc.Add(10)
		h.tick()
		if st, _ := eng.State("bad-share"); st == StateFiring {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("capacity cliff never fired")
	}
	// Recovery: clean traffic resolves on the fast window alone, well
	// before the slow window forgets the cliff.
	resolved := -1
	for i := 0; i < 10; i++ {
		okc.Add(100)
		h.tick()
		if st, _ := eng.State("bad-share"); st == StateInactive {
			resolved = i
			break
		}
	}
	if resolved < 0 {
		t.Fatal("did not resolve on fast-window recovery")
	}
	// Dead denominator with zero numerator is healthy, not NaN.
	for i := 0; i < 20; i++ {
		h.tick()
	}
	if st, _ := eng.State("bad-share"); st != StateInactive {
		t.Fatalf("idle traffic state = %v", st)
	}
}

func TestGatedStallRule(t *testing.T) {
	var wm, lag *telemetry.Gauge
	h := newHarness(t, func(reg *telemetry.Registry) {
		wm = reg.MustGauge("t_watermark", "applied seq")
		lag = reg.MustGauge("t_lag", "records behind")
	})
	eng, err := New(h.store, h.reg, []Rule{{
		Name: "stall", Severity: "page", Kind: KindRateOfChange,
		Signal:    Signal{Series: []Series{{Name: "t_watermark"}}, Reduce: ReduceDelta},
		Op:        OpLess,
		Threshold: 1,
		Window:    4 * step,
		Gate: &Condition{
			Signal:    Signal{Series: []Series{{Name: "t_lag"}}, Reduce: ReduceValue},
			Op:        OpGreater,
			Threshold: 0,
		},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Caught up and idle: watermark flat, lag 0 → gate closed, healthy.
	for i := 0; i < 10; i++ {
		h.tick()
	}
	if st, _ := eng.State("stall"); st != StateInactive {
		t.Fatalf("caught-up follower alerted: %v", st)
	}
	// Behind and stuck: lag > 0, watermark flat → fires.
	lag.Set(50)
	for i := 0; i < 6; i++ {
		h.tick()
	}
	if st, _ := eng.State("stall"); st != StateFiring {
		t.Fatalf("stalled follower state = %v want firing", st)
	}
	// Progress resumes: watermark advances every interval → resolves.
	for i := 0; i < 8; i++ {
		wm.Add(100)
		h.tick()
	}
	if st, _ := eng.State("stall"); st != StateInactive {
		t.Fatalf("advancing follower state = %v want inactive", st)
	}
}

func TestNewRejectsUnknownSeries(t *testing.T) {
	h := newHarness(t, func(reg *telemetry.Registry) {})
	_, err := New(h.store, h.reg, []Rule{{
		Name:   "ghost",
		Signal: Signal{Series: []Series{{Name: "t_never_registered"}}},
	}}, nil)
	if err == nil || !strings.Contains(err.Error(), "t_never_registered") {
		t.Fatalf("err = %v, want unknown-series error", err)
	}
}

func TestHandlerAndMetrics(t *testing.T) {
	var g *telemetry.Gauge
	h := newHarness(t, func(reg *telemetry.Registry) {
		g = reg.MustGauge("t_depth", "depth")
	})
	eng, err := New(h.store, h.reg, []Rule{{
		Name: "deep-queue", Severity: "warn", Kind: KindThreshold,
		Signal:    Signal{Series: []Series{{Name: "t_depth"}}, Reduce: ReduceValue},
		Op:        OpGreater,
		Threshold: 100,
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.Set(200)
	h.tick()
	srv := httptest.NewServer(Handler(eng))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if len(d.Rules) != 1 || d.Rules[0].State != "firing" || d.Rules[0].Threshold != 100 {
		t.Fatalf("dump rules = %+v", d.Rules)
	}
	if len(d.Events) != 1 || d.Events[0].To != "firing" {
		t.Fatalf("dump events = %+v", d.Events)
	}
	// Transition metrics render in the registry's own exposition.
	var buf bytes.Buffer
	h.reg.WritePrometheus(&buf)
	expo := buf.String()
	for _, want := range []string{
		`sihtm_alert_state{rule="deep-queue"} 2`,
		`sihtm_alert_transitions_total{rule="deep-queue",to="firing"} 1`,
	} {
		if !strings.Contains(expo, want) {
			t.Fatalf("exposition missing %q:\n%s", want, expo)
		}
	}
}

func TestDefaultRulesRoles(t *testing.T) {
	names := func(rules []Rule) []string {
		var out []string
		for _, r := range rules {
			out = append(out, r.Name)
		}
		return out
	}
	base := DefaultRules(RuleOptions{System: "si-htm", Interval: step})
	if got := names(base); len(got) != 1 || got[0] != RuleCapacityShare {
		t.Fatalf("volatile rules = %v", got)
	}
	all := DefaultRules(RuleOptions{
		System: "si-htm", Interval: step,
		P99Target: time.Millisecond, Durable: true, Follower: true, Leader: true,
	})
	want := []string{RuleCapacityShare, RuleP99SLO, RuleFsyncP99, RuleWatermarkStall, RuleDroppedSubs}
	got := names(all)
	if len(got) != len(want) {
		t.Fatalf("full rules = %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("full rules = %v want %v", got, want)
		}
	}
}
