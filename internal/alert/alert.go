// Package alert is the declarative SLO/alert rules engine over the
// tsdb ring: rules reference telemetry series by name, reduce them over
// trailing windows (value, delta, rate, share-of-denominator, quantile),
// and run a Prometheus-style state machine — inactive → pending (while
// a for-duration elapses) → firing, resolving the moment the condition
// clears. Burn-rate rules require a fast AND a slow window to breach
// before firing and resolve on fast-window recovery, the standard
// fast-burn/slow-burn SLO construction.
//
// The engine evaluates synchronously from the store's OnScrape hook, so
// alert latency is exactly one scrape interval. Transitions are
// exported three ways: counters + a per-rule state gauge on the same
// registry, structured log lines, and the /debug/alerts JSON surface
// (current rule states plus a bounded ring of transition events).
package alert

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"sihtm/internal/telemetry"
	"sihtm/internal/tsdb"
)

// RuleKind selects the evaluation shape.
type RuleKind int

const (
	// KindThreshold compares one reduced value over Window.
	KindThreshold RuleKind = iota
	// KindRateOfChange is threshold over a delta/rate reduce — named
	// separately because its intent (progress/stall detection) differs.
	KindRateOfChange
	// KindBurnRate evaluates the signal over FastWindow and SlowWindow;
	// both must breach to fire, fast recovery resolves.
	KindBurnRate
)

func (k RuleKind) String() string {
	switch k {
	case KindThreshold:
		return "threshold"
	case KindRateOfChange:
		return "rate-of-change"
	case KindBurnRate:
		return "burn-rate"
	default:
		return fmt.Sprintf("RuleKind(%d)", int(k))
	}
}

// Reduce maps a window of samples to one number.
type Reduce int

const (
	// ReduceValue is the latest sample (gauges).
	ReduceValue Reduce = iota
	// ReduceDelta is last-first over the window (counters).
	ReduceDelta
	// ReduceRate is delta per second over the window.
	ReduceRate
	// ReduceQuantile is the Q-quantile of a histogram's observations
	// within the window, in seconds. An empty window reduces to 0
	// ("no traffic, no violation").
	ReduceQuantile
)

// Op compares the reduced value to the threshold.
type Op int

const (
	OpGreater Op = iota
	OpLess
)

func (o Op) String() string {
	if o == OpLess {
		return "<"
	}
	return ">"
}

// Series names one telemetry series by family name and labels.
type Series struct {
	Name   string
	Labels []telemetry.Label
}

// Signal is what a rule measures: the sum of the reduced Series,
// optionally divided by the sum of the reduced Den series (a share —
// capacity aborts over attempts). A zero denominator with a zero
// numerator reduces to 0 (healthy); a zero denominator with a positive
// numerator reduces to +Inf.
type Signal struct {
	Series []Series
	Reduce Reduce
	Q      float64 // ReduceQuantile only
	Den    []Series
}

// Condition is a standalone signal comparison, used for rule gates.
type Condition struct {
	Signal    Signal
	Op        Op
	Threshold float64
}

// Rule is one declarative alert.
type Rule struct {
	Name     string
	Help     string
	Severity string // "page" | "warn" — advisory, rendered not enforced
	Kind     RuleKind

	Signal    Signal
	Op        Op
	Threshold float64

	// Window is the reduce window for threshold and rate-of-change
	// rules; Fast/SlowWindow are the burn-rate pair.
	Window     time.Duration
	FastWindow time.Duration
	SlowWindow time.Duration

	// For is the hysteresis: the condition must hold this long before
	// the rule fires. 0 fires on the first breaching evaluation.
	For time.Duration

	// Gate, when set, must hold for the rule to be considered at all —
	// otherwise the rule reads healthy. Used to scope stall detection
	// to "stalled while actually behind".
	Gate *Condition
}

// State is the rule state machine position.
type State int

const (
	StateInactive State = iota
	StatePending
	StateFiring
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	default:
		return "inactive"
	}
}

// Event is one firing/resolved transition.
type Event struct {
	Rule     string  `json:"rule"`
	Severity string  `json:"severity,omitempty"`
	To       string  `json:"to"` // "firing" | "resolved"
	AtNs     int64   `json:"at_ns"`
	Value    float64 `json:"value"`
}

// RuleStatus is one rule's current position for /debug/alerts.
type RuleStatus struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	Severity  string  `json:"severity"`
	Help      string  `json:"help,omitempty"`
	State     string  `json:"state"`
	SinceNs   int64   `json:"since_ns,omitempty"`
	Value     float64 `json:"value"`
	Op        string  `json:"op"`
	Threshold float64 `json:"threshold"`
}

// Dump is the full /debug/alerts payload.
type Dump struct {
	Rules  []RuleStatus `json:"rules"`
	Events []Event      `json:"events"`
}

// maxEvents bounds the transition ring; oldest transitions drop first.
const maxEvents = 256

// resolvedSignal is a Signal with every series resolved to a store Ref.
type resolvedSignal struct {
	series []tsdb.Ref
	den    []tsdb.Ref
}

// ruleState is the mutable half of one rule.
type ruleState struct {
	state State
	since int64 // unix ns the current state was entered
	value float64
	fired *telemetry.Counter
	reslv *telemetry.Counter
}

// Engine evaluates a fixed rule set against a Store.
type Engine struct {
	store *tsdb.Store
	rules []Rule
	sigs  []resolvedSignal
	gates []*resolvedSignal
	log   io.Writer

	mu     sync.Mutex
	states []ruleState
	events []Event
}

// New resolves every rule's series against the store's scrape layout
// (missing series are a wiring error), registers the engine's own
// transition metrics on reg, installs evaluation as the store's
// OnScrape hook, and returns the engine. logw receives one structured
// line per transition (io.Discard silences).
func New(store *tsdb.Store, reg *telemetry.Registry, rules []Rule, logw io.Writer) (*Engine, error) {
	if logw == nil {
		logw = io.Discard
	}
	e := &Engine{
		store:  store,
		rules:  rules,
		log:    logw,
		states: make([]ruleState, len(rules)),
	}
	for i := range rules {
		r := &rules[i]
		rs, err := resolveSignal(store, r.Name, r.Signal)
		if err != nil {
			return nil, err
		}
		e.sigs = append(e.sigs, rs)
		if r.Gate != nil {
			g, err := resolveSignal(store, r.Name+"/gate", r.Gate.Signal)
			if err != nil {
				return nil, err
			}
			e.gates = append(e.gates, &g)
		} else {
			e.gates = append(e.gates, nil)
		}
		idx := i
		if err := reg.GaugeFunc("sihtm_alert_state",
			"Rule state: 0 inactive, 1 pending, 2 firing.",
			func() float64 {
				e.mu.Lock()
				defer e.mu.Unlock()
				return float64(e.states[idx].state)
			}, telemetry.L("rule", r.Name)); err != nil {
			return nil, err
		}
		fired, err := reg.Counter("sihtm_alert_transitions_total",
			"Alert state transitions.", telemetry.L("rule", r.Name), telemetry.L("to", "firing"))
		if err != nil {
			return nil, err
		}
		reslv, err := reg.Counter("sihtm_alert_transitions_total",
			"Alert state transitions.", telemetry.L("rule", r.Name), telemetry.L("to", "resolved"))
		if err != nil {
			return nil, err
		}
		e.states[i].fired, e.states[i].reslv = fired, reslv
	}
	store.OnScrape(e.Eval)
	return e, nil
}

// resolveSignal maps every series name in sig to a store Ref.
func resolveSignal(store *tsdb.Store, rule string, sig Signal) (resolvedSignal, error) {
	var rs resolvedSignal
	for _, sr := range sig.Series {
		ref, ok := store.Lookup(sr.Name, sr.Labels...)
		if !ok {
			return rs, fmt.Errorf("alert: rule %s references unknown series %s%v", rule, sr.Name, sr.Labels)
		}
		rs.series = append(rs.series, ref)
	}
	for _, sr := range sig.Den {
		ref, ok := store.Lookup(sr.Name, sr.Labels...)
		if !ok {
			return rs, fmt.Errorf("alert: rule %s references unknown denominator series %s%v", rule, sr.Name, sr.Labels)
		}
		rs.den = append(rs.den, ref)
	}
	return rs, nil
}

// evalSignal reduces a signal over one window. ok is false only when
// the store holds too few points for the reduce — callers hold state.
func (e *Engine) evalSignal(rs resolvedSignal, sig Signal, window time.Duration) (float64, bool) {
	sumOver := func(refs []tsdb.Ref) (float64, bool) {
		var sum float64
		for _, ref := range refs {
			switch sig.Reduce {
			case ReduceValue:
				v, ok := e.store.LatestScalar(ref)
				if !ok {
					return 0, false
				}
				sum += v
			case ReduceDelta:
				d, ok := e.store.Delta(ref, window)
				if !ok {
					return 0, false
				}
				sum += d
			case ReduceRate:
				r, ok := e.store.Rate(ref, window)
				if !ok {
					return 0, false
				}
				sum += r
			}
		}
		return sum, true
	}
	if sig.Reduce == ReduceQuantile {
		// Single histogram series; an empty window is healthy silence.
		delta, _, ok := e.store.HistWindow(rs.series[0], window)
		if !ok {
			return 0, false
		}
		q, any := delta.QuantileOK(sig.Q)
		if !any {
			return 0, true
		}
		return q.Seconds(), true
	}
	num, ok := sumOver(rs.series)
	if !ok {
		return 0, false
	}
	if len(rs.den) == 0 {
		return num, true
	}
	den, ok := sumOver(rs.den)
	if !ok {
		return 0, false
	}
	if den <= 0 {
		if num <= 0 {
			return 0, true
		}
		// Positive numerator over a dead denominator: maximally bad,
		// but kept finite so the value stays JSON-encodable.
		return math.MaxFloat64, true
	}
	return num / den, true
}

func cmp(op Op, v, threshold float64) bool {
	if op == OpLess {
		return v < threshold
	}
	return v > threshold
}

// evalRule computes (value, ok, breach) for one rule. ok=false means
// not enough data yet — the state machine holds.
func (e *Engine) evalRule(i int, firing bool) (float64, bool, bool) {
	r := &e.rules[i]
	if g := e.gates[i]; g != nil {
		gv, gok := e.evalSignal(*g, r.Gate.Signal, gateWindow(r))
		if !gok {
			return 0, false, false
		}
		if !cmp(r.Gate.Op, gv, r.Gate.Threshold) {
			return 0, true, false
		}
	}
	switch r.Kind {
	case KindBurnRate:
		vF, okF := e.evalSignal(e.sigs[i], r.Signal, r.FastWindow)
		if !okF {
			return 0, false, false
		}
		if firing {
			// Resolve on fast-window recovery alone.
			return vF, true, cmp(r.Op, vF, r.Threshold)
		}
		vS, okS := e.evalSignal(e.sigs[i], r.Signal, r.SlowWindow)
		if !okS {
			return vF, false, false
		}
		return vF, true, cmp(r.Op, vF, r.Threshold) && cmp(r.Op, vS, r.Threshold)
	default:
		v, ok := e.evalSignal(e.sigs[i], r.Signal, r.Window)
		if !ok {
			return 0, false, false
		}
		return v, true, cmp(r.Op, v, r.Threshold)
	}
}

// gateWindow picks the reduce window for a rule's gate condition.
func gateWindow(r *Rule) time.Duration {
	if r.Kind == KindBurnRate {
		return r.FastWindow
	}
	return r.Window
}

// Eval runs one evaluation pass at the given timestamp. Installed as
// the store's OnScrape hook; may also be driven manually in tests.
func (e *Engine) Eval(at time.Time) {
	now := at.UnixNano()
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.rules {
		r := &e.rules[i]
		st := &e.states[i]
		v, ok, breach := e.evalRule(i, st.state == StateFiring)
		if !ok {
			continue
		}
		st.value = v
		switch st.state {
		case StateInactive:
			if breach {
				if r.For <= 0 {
					e.transition(i, StateFiring, now, v)
				} else {
					st.state, st.since = StatePending, now
				}
			}
		case StatePending:
			switch {
			case !breach:
				st.state, st.since = StateInactive, now
			case now-st.since >= int64(r.For):
				e.transition(i, StateFiring, now, v)
			}
		case StateFiring:
			if !breach {
				e.transition(i, StateInactive, now, v)
			}
		}
	}
}

// transition moves rule i to firing or resolved under the lock,
// recording the event in every export channel.
func (e *Engine) transition(i int, to State, now int64, v float64) {
	r := &e.rules[i]
	st := &e.states[i]
	st.state, st.since = to, now
	word := "resolved"
	ctr := st.reslv
	if to == StateFiring {
		word = "firing"
		ctr = st.fired
	}
	ctr.Inc()
	if len(e.events) >= maxEvents {
		copy(e.events, e.events[1:])
		e.events = e.events[:maxEvents-1]
	}
	e.events = append(e.events, Event{
		Rule: r.Name, Severity: r.Severity, To: word, AtNs: now, Value: v,
	})
	fmt.Fprintf(e.log, "alert: rule=%s severity=%s state=%s value=%g threshold=%s%g kind=%s\n",
		r.Name, r.Severity, word, v, r.Op, r.Threshold, r.Kind)
}

// State returns a rule's current state by name.
func (e *Engine) State(rule string) (State, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.rules {
		if e.rules[i].Name == rule {
			return e.states[i].state, true
		}
	}
	return StateInactive, false
}

// Dump snapshots every rule's status and the transition event ring.
func (e *Engine) Dump() Dump {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := Dump{Events: append([]Event(nil), e.events...)}
	for i := range e.rules {
		r := &e.rules[i]
		st := &e.states[i]
		d.Rules = append(d.Rules, RuleStatus{
			Name:      r.Name,
			Kind:      r.Kind.String(),
			Severity:  r.Severity,
			Help:      r.Help,
			State:     st.state.String(),
			SinceNs:   st.since,
			Value:     st.value,
			Op:        r.Op.String(),
			Threshold: r.Threshold,
		})
	}
	return d
}

// Handler serves the engine's Dump as JSON — the /debug/alerts surface.
func Handler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(e.Dump())
	})
}
