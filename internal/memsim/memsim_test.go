package memsim

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestLineGeometry(t *testing.T) {
	if WordsPerLine != 16 {
		t.Fatalf("WordsPerLine = %d, want 16 (128B lines of 8B words)", WordsPerLine)
	}
	if LineOf(0) != 0 || LineOf(15) != 0 || LineOf(16) != 1 {
		t.Fatal("LineOf boundary behaviour wrong")
	}
	if WordInLine(0) != 0 || WordInLine(15) != 15 || WordInLine(16) != 0 {
		t.Fatal("WordInLine boundary behaviour wrong")
	}
	if Line(3).FirstAddr() != 48 {
		t.Fatalf("Line(3).FirstAddr() = %d, want 48", Line(3).FirstAddr())
	}
}

func TestLinesSpanned(t *testing.T) {
	cases := []struct {
		a    Addr
		n    int
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 16, 1},
		{0, 17, 2},
		{15, 1, 1},
		{15, 2, 2},
		{16, 16, 1},
		{8, 32, 3},
	}
	for _, c := range cases {
		if got := LinesSpanned(c.a, c.n); got != c.want {
			t.Errorf("LinesSpanned(%d, %d) = %d, want %d", c.a, c.n, got, c.want)
		}
	}
}

// Property: LineOf and WordInLine are a bijection with the address.
func TestLineDecompositionProperty(t *testing.T) {
	f := func(aRaw uint32) bool {
		a := Addr(aRaw)
		return Addr(LineOf(a))*WordsPerLine+Addr(WordInLine(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeapNullSentinel(t *testing.T) {
	h := NewHeap(1024)
	a := h.Alloc(1)
	if a == 0 {
		t.Fatal("first allocation returned Addr 0; 0 must stay reserved as nil")
	}
}

func TestHeapLoadStore(t *testing.T) {
	h := NewHeap(1024)
	a := h.Alloc(4)
	h.Store(a+2, 0xdeadbeef)
	if got := h.Load(a + 2); got != 0xdeadbeef {
		t.Fatalf("Load = %#x, want 0xdeadbeef", got)
	}
	if got := h.Load(a); got != 0 {
		t.Fatalf("fresh word = %#x, want 0", got)
	}
}

func TestAllocLineAlignment(t *testing.T) {
	h := NewHeap(4096)
	h.Alloc(3) // misalign the bump pointer
	for i := 0; i < 10; i++ {
		a := h.AllocLine()
		if WordInLine(a) != 0 {
			t.Fatalf("AllocLine returned unaligned address %d", a)
		}
		if LinesSpanned(a, WordsPerLine) != 1 {
			t.Fatalf("AllocLine block spans %d lines", LinesSpanned(a, WordsPerLine))
		}
	}
}

func TestAllocLinesContiguous(t *testing.T) {
	h := NewHeap(4096)
	a := h.AllocLines(3)
	if WordInLine(a) != 0 {
		t.Fatalf("AllocLines returned unaligned address %d", a)
	}
	if got := LinesSpanned(a, 3*WordsPerLine); got != 3 {
		t.Fatalf("AllocLines(3) spans %d lines, want 3", got)
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	h := NewHeap(1 << 16)
	const goroutines = 8
	const perG = 200
	var mu sync.Mutex
	seen := make(map[Addr]int)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				size := 1 + (g+i)%7
				a := h.Alloc(size)
				mu.Lock()
				for w := 0; w < size; w++ {
					if prev, dup := seen[a+Addr(w)]; dup {
						t.Errorf("word %d allocated twice (goroutines %d and %d)", a+Addr(w), prev, g)
					}
					seen[a+Addr(w)] = g
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
}

func TestHeapExhaustionPanics(t *testing.T) {
	h := NewHeap(32)
	defer func() {
		if recover() == nil {
			t.Fatal("allocating past capacity did not panic")
		}
	}()
	h.Alloc(64)
}

func TestAllocAlignedValidation(t *testing.T) {
	h := NewHeap(64)
	for _, tc := range []struct{ size, align int }{{0, 1}, {-1, 1}, {1, 0}, {1, 3}, {1, -4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AllocAligned(%d,%d) did not panic", tc.size, tc.align)
				}
			}()
			h.AllocAligned(tc.size, tc.align)
		}()
	}
}

func TestZero(t *testing.T) {
	h := NewHeap(256)
	a := h.Alloc(8)
	for i := 0; i < 8; i++ {
		h.Store(a+Addr(i), uint64(i+1))
	}
	h.Zero(a, 8)
	for i := 0; i < 8; i++ {
		if h.Load(a+Addr(i)) != 0 {
			t.Fatalf("word %d not zeroed", i)
		}
	}
}

func TestNewHeapLines(t *testing.T) {
	h := NewHeapLines(4)
	if h.Size() != 4*WordsPerLine {
		t.Fatalf("Size = %d, want %d", h.Size(), 4*WordsPerLine)
	}
}

func TestNewHeapValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHeap(0) did not panic")
		}
	}()
	NewHeap(0)
}
