// Package memsim provides the simulated, cache-line-structured memory that
// every concurrency control in this repository operates on.
//
// The paper's systems manipulate pre-allocated memory locations indexed by
// virtual address (§3), and the P8-HTM hardware tracks conflicts and
// capacity at the granularity of 128-byte cache lines (§2.2). memsim
// reproduces that addressing model in software: memory is a flat array of
// 64-bit words, grouped into lines of 16 words (128 bytes), and every
// address can be mapped to its line. Workloads lay out their records over
// this heap exactly as a C program would lay them out over real memory, so
// transaction footprints (in cache lines) — the quantity the paper's whole
// argument revolves around — are meaningful.
//
// Raw Load/Store accessors are atomic but perform no conflict detection;
// they are the substrate the HTM simulator (internal/htm) builds on, and
// are also used for single-threaded setup and verification.
package memsim

import (
	"fmt"
	"sync/atomic"
)

// Cache-line geometry of the IBM POWER8/9 (paper §2.2: the 8 KB TMCAM
// holds 64 lines of 128 bytes).
const (
	WordBytes     = 8
	LineBytes     = 128
	WordsPerLine  = LineBytes / WordBytes // 16
	lineShift     = 4                     // log2(WordsPerLine)
	lineWordsMask = WordsPerLine - 1
)

// Addr is a word address into a Heap. Address 0 is valid; workloads that
// need a nil sentinel reserve it via NewHeap's first allocation.
type Addr uint64

// Line identifies a cache line (Addr >> lineShift).
type Line uint64

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(a >> lineShift) }

// WordInLine returns a's word offset within its cache line.
func WordInLine(a Addr) int { return int(a & lineWordsMask) }

// FirstAddr returns the address of the first word of line l.
func (l Line) FirstAddr() Addr { return Addr(l) << lineShift }

// LinesSpanned reports how many cache lines an object of size words
// starting at a touches.
func LinesSpanned(a Addr, words int) int {
	if words <= 0 {
		return 0
	}
	first := LineOf(a)
	last := LineOf(a + Addr(words) - 1)
	return int(last-first) + 1
}

// Heap is a flat, fixed-capacity simulated memory with a thread-safe bump
// allocator. All word accesses are atomic, which makes the raw accessors
// safe under the race detector; isolation and conflict detection are the
// job of the layers above.
type Heap struct {
	words []uint64
	next  atomic.Uint64 // bump pointer, in words
}

// NewHeap creates a heap holding the given number of words. The first word
// is pre-allocated so that Addr 0 can serve as a null sentinel.
func NewHeap(words int) *Heap {
	if words <= 0 {
		panic(fmt.Sprintf("memsim: heap size must be positive, got %d words", words))
	}
	h := &Heap{words: make([]uint64, words)}
	h.next.Store(1) // reserve Addr 0 as nil
	return h
}

// NewHeapLines creates a heap holding the given number of cache lines.
func NewHeapLines(lines int) *Heap { return NewHeap(lines * WordsPerLine) }

// Size returns the heap capacity in words.
func (h *Heap) Size() int { return len(h.words) }

// Allocated returns the number of words handed out so far (including the
// reserved null word and any alignment padding).
func (h *Heap) Allocated() int { return int(h.next.Load()) }

// Load atomically reads the word at a. It performs no conflict detection.
func (h *Heap) Load(a Addr) uint64 {
	return atomic.LoadUint64(&h.words[a])
}

// Store atomically writes the word at a. It performs no conflict detection.
func (h *Heap) Store(a Addr, v uint64) {
	atomic.StoreUint64(&h.words[a], v)
}

// CompareAndSwap atomically replaces the word at a with new if it equals
// old, reporting whether the swap happened. It performs no conflict
// detection; the HTM layer wraps it for lock words that live in the heap.
func (h *Heap) CompareAndSwap(a Addr, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&h.words[a], old, new)
}

// Alloc reserves size words with no particular alignment and returns the
// address of the first. It is safe for concurrent use. Alloc panics if the
// heap is exhausted: heaps are sized up-front from workload parameters, so
// exhaustion is a configuration bug, not a runtime condition.
func (h *Heap) Alloc(size int) Addr {
	return h.AllocAligned(size, 1)
}

// AllocLine reserves one full cache line, line-aligned. This is the
// workhorse for workloads that want a known per-object footprint of
// exactly one line (e.g. hash-map chain nodes, matching the paper's
// "one element ≈ one cache line" footprint accounting).
func (h *Heap) AllocLine() Addr {
	return h.AllocAligned(WordsPerLine, WordsPerLine)
}

// AllocLines reserves n full cache lines, line-aligned.
func (h *Heap) AllocLines(n int) Addr {
	return h.AllocAligned(n*WordsPerLine, WordsPerLine)
}

// AllocAligned reserves size words aligned to alignWords (which must be a
// power of two) and returns the address of the first.
func (h *Heap) AllocAligned(size, alignWords int) Addr {
	if size <= 0 {
		panic(fmt.Sprintf("memsim: allocation size must be positive, got %d", size))
	}
	if alignWords <= 0 || alignWords&(alignWords-1) != 0 {
		panic(fmt.Sprintf("memsim: alignment must be a positive power of two, got %d", alignWords))
	}
	mask := uint64(alignWords - 1)
	for {
		cur := h.next.Load()
		start := (cur + mask) &^ mask
		end := start + uint64(size)
		if end > uint64(len(h.words)) {
			panic(fmt.Sprintf("memsim: heap exhausted: need %d words at %d, capacity %d",
				size, start, len(h.words)))
		}
		if h.next.CompareAndSwap(cur, end) {
			return Addr(start)
		}
	}
}

// RestoreAllocated resets the bump pointer to the given watermark —
// recovery support: a restored heap image must also restore how much of
// the heap was handed out, or post-recovery allocations would overlap
// live data. Quiescent use only.
func (h *Heap) RestoreAllocated(words int) {
	if words < 1 || words > len(h.words) {
		panic(fmt.Sprintf("memsim: restore watermark %d out of [1,%d]", words, len(h.words)))
	}
	h.next.Store(uint64(words))
}

// Zero clears size words starting at a. Setup-time helper; not atomic as a
// unit (each word store is atomic).
func (h *Heap) Zero(a Addr, size int) {
	for i := 0; i < size; i++ {
		h.Store(a+Addr(i), 0)
	}
}
