// Package hotbench is the simulator's hot-path microbenchmark suite: a
// set of self-timing scenarios that measure the software cost of one
// simulated transactional operation (Read, Write, Commit, or a full
// sihtm Atomic block) as a function of the transaction's footprint in
// cache lines.
//
// The paper's argument is about large-footprint transactions, so the
// simulator's per-access cost must not grow with footprint — otherwise
// the reproduced curves confound software overhead with the very
// variable the paper sweeps. This suite is the guard rail: it sweeps
// footprints from 1 to 4096 lines and reports ns/op and allocs/op per
// point, which `repro bench` serializes to BENCH_hotpath.json (see
// docs/performance.md).
//
// The same scenario bodies back the `go test -bench` benchmarks in
// internal/htm and the root package, so interactive runs and the JSON
// artifact measure identical code.
package hotbench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/results"
	isihtm "sihtm/internal/sihtm"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
)

// DefaultSweep is the footprint ladder, in cache lines: from well under
// the 64-line TMCAM to ~64× past it, the regime SI-HTM stretches into.
var DefaultSweep = []int{1, 4, 16, 64, 256, 1024, 4096}

// Case is one microbenchmark: Setup builds a fresh simulated machine and
// returns a runner executing n operations of the scenario.
type Case struct {
	// Op is the operation family: "read", "write", "commit" or "atomic".
	Op string
	// Mode is the transaction flavour ("HTM"/"ROT"); "" for atomic.
	Mode string
	// Lines is the transaction footprint in cache lines.
	Lines int
	// Setup constructs the scenario and returns its runner.
	Setup func() func(n int)
}

// Sub is the case's sub-benchmark name, e.g. "HTM/lines=1024".
func (c Case) Sub() string {
	if c.Mode == "" {
		return fmt.Sprintf("lines=%d", c.Lines)
	}
	return fmt.Sprintf("%s/lines=%d", c.Mode, c.Lines)
}

// Name is the case's full display name, e.g. "Read/HTM/lines=1024".
func (c Case) Name() string {
	title := map[string]string{"read": "Read", "write": "Write", "commit": "Commit", "atomic": "Atomic"}[c.Op]
	return title + "/" + c.Sub()
}

// newMachine builds a single-thread machine whose TMCAM comfortably fits
// a footprint of lines, so capacity aborts never pollute the timing.
func newMachine(lines int) (*memsim.Heap, *htm.Machine) {
	heap := memsim.NewHeapLines(lines + 64)
	m := htm.NewMachine(heap, htm.Config{
		Topology:   topology.New(1, 1),
		TMCAMLines: lines + 8,
	})
	return heap, m
}

// allocLines reserves n line-aligned addresses.
func allocLines(heap *memsim.Heap, n int) []memsim.Addr {
	addrs := make([]memsim.Addr, n)
	for i := range addrs {
		addrs[i] = heap.AllocLine()
	}
	return addrs
}

// readCase measures the steady-state cost of Tx.Read inside a live
// transaction that already tracks a footprint of `lines` cache lines —
// the access pattern of every large read-mostly transaction.
func readCase(mode htm.Mode, lines int) Case {
	return Case{Op: "read", Mode: mode.String(), Lines: lines, Setup: func() func(int) {
		heap, m := newMachine(lines)
		addrs := allocLines(heap, lines)
		tx := m.Thread(0).Begin(mode)
		for _, a := range addrs {
			tx.Read(a)
		}
		i := 0
		return func(n int) {
			for k := 0; k < n; k++ {
				tx.Read(addrs[i])
				if i++; i == len(addrs) {
					i = 0
				}
			}
		}
	}}
}

// writeCase measures the steady-state cost of Tx.Write inside a live
// transaction whose write set already spans `lines` cache lines.
func writeCase(mode htm.Mode, lines int) Case {
	return Case{Op: "write", Mode: mode.String(), Lines: lines, Setup: func() func(int) {
		heap, m := newMachine(lines)
		addrs := allocLines(heap, lines)
		tx := m.Thread(0).Begin(mode)
		for _, a := range addrs {
			tx.Write(a, 1)
		}
		i := 0
		return func(n int) {
			for k := 0; k < n; k++ {
				tx.Write(addrs[i], uint64(k))
				if i++; i == len(addrs) {
					i = 0
				}
			}
		}
	}}
}

// commitCase measures a whole transaction writing `lines` distinct cache
// lines and committing — one op is Begin + lines×Write + Commit, so its
// ns/op necessarily grows with footprint; allocs/op must not.
func commitCase(mode htm.Mode, lines int) Case {
	return Case{Op: "commit", Mode: mode.String(), Lines: lines, Setup: func() func(int) {
		heap, m := newMachine(lines)
		addrs := allocLines(heap, lines)
		th := m.Thread(0)
		return func(n int) {
			for k := 0; k < n; k++ {
				tx := th.Begin(mode)
				for _, a := range addrs {
					tx.Write(a, uint64(k))
				}
				tx.Commit()
			}
		}
	}}
}

// atomicCase measures the end-to-end sihtm update path — ROT attempt,
// commit, quiescence — for a transaction reading and writing `lines`
// cache lines, through the same Atomic entry point workloads use.
func atomicCase(lines int) Case {
	return Case{Op: "atomic", Lines: lines, Setup: func() func(int) {
		heap, m := newMachine(lines)
		addrs := allocLines(heap, lines)
		sys := isihtm.NewSystem(m, 1, isihtm.Config{})
		return func(n int) {
			for k := 0; k < n; k++ {
				sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
					for _, a := range addrs {
						ops.Write(a, ops.Read(a)+1)
					}
				})
			}
		}
	}}
}

// Cases enumerates the full suite over the given footprint sweep.
func Cases(sweep []int) []Case {
	if len(sweep) == 0 {
		sweep = DefaultSweep
	}
	var cs []Case
	for _, op := range []string{"read", "write", "commit"} {
		for _, mode := range []htm.Mode{htm.ModeHTM, htm.ModeROT} {
			for _, lines := range sweep {
				switch op {
				case "read":
					cs = append(cs, readCase(mode, lines))
				case "write":
					cs = append(cs, writeCase(mode, lines))
				case "commit":
					cs = append(cs, commitCase(mode, lines))
				}
			}
		}
	}
	for _, lines := range sweep {
		cs = append(cs, atomicCase(lines))
	}
	return cs
}

// CasesFor returns the suite restricted to one operation family.
func CasesFor(op string, sweep []int) []Case {
	var out []Case
	for _, c := range Cases(sweep) {
		if c.Op == op {
			out = append(out, c)
		}
	}
	return out
}

// Run measures one case: it calibrates an iteration count that fills
// roughly the given budget, then times a single measured batch bracketed
// by memory-stat reads, and returns the point as a BenchRecord.
func Run(c Case, budget time.Duration) results.BenchRecord {
	if budget <= 0 {
		budget = 100 * time.Millisecond
	}
	run := c.Setup()
	run(1) // warm up lazily-built state so it is not billed to op 0

	// Calibrate: grow n until one batch fills ~the budget. The final
	// calibration batch doubles as the explicit warm-up: it runs the
	// full measured iteration count, so every pool, spare and
	// lazily-grown slice the steady state needs exists before the
	// measured batch starts.
	n := 1
	for {
		start := time.Now()
		run(n)
		d := time.Since(start)
		if d >= budget || n >= 1<<30 {
			break
		}
		grow := 2.0
		if d > 0 {
			grow = 1.2 * float64(budget) / float64(d)
		}
		if grow < 2 {
			grow = 2
		} else if grow > 100 {
			grow = 100
		}
		n = int(float64(n) * grow)
	}

	// Measure with the collector paused: a GC cycle landing inside the
	// batch charges its bookkeeping allocations to the scenario and
	// turns a true zero into a one-in-ten-million blip. The suite's
	// pin is exact zeros, so nothing may allocate but the scenario.
	//
	// Even with GC off, the runtime very occasionally makes a single
	// small internal allocation inside a multi-second window (observed:
	// one 32-byte malloc in ~1 of 30 ten-million-op batches, with no
	// user goroutines running). That noise is indistinguishable from a
	// scenario leak in a single batch, so measure up to a few batches
	// and keep the one with the fewest mallocs: a real scenario
	// allocation recurs in every batch and still shows through, while
	// one-off runtime blips are rejected.
	gcPrev := debug.SetGCPercent(-1)
	var best results.BenchRecord
	for attempt := 0; attempt < 3; attempt++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		run(n)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)

		fn := float64(n)
		r := results.BenchRecord{
			Name:        c.Name(),
			Op:          c.Op,
			Mode:        c.Mode,
			Lines:       c.Lines,
			Iters:       uint64(n),
			NsPerOp:     float64(elapsed.Nanoseconds()) / fn,
			AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / fn,
			BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / fn,
		}
		if attempt == 0 || r.AllocsPerOp < best.AllocsPerOp {
			best = r
		}
		if best.AllocsPerOp == 0 {
			break
		}
	}
	debug.SetGCPercent(gcPrev)
	return best
}

// RunAll measures every case in the suite over the sweep, invoking
// progress after each point if non-nil.
func RunAll(sweep []int, budget time.Duration, progress func(results.BenchRecord)) []results.BenchRecord {
	var recs []results.BenchRecord
	for _, c := range Cases(sweep) {
		r := Run(c, budget)
		if progress != nil {
			progress(r)
		}
		recs = append(recs, r)
	}
	return recs
}
