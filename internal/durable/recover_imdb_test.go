package durable

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sihtm/internal/htm"
	"sihtm/internal/imdb"
	"sihtm/internal/memsim"
	"sihtm/internal/sihtm"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
)

// buildOrdersDB constructs the test database deterministically: the
// same call sequence on a fresh heap of the same geometry yields
// identical heap addresses, which is what lets recovery rebuild the
// Go-side handles (table base, index root cells) and then restore the
// heap content underneath them from checkpoint + log.
func buildOrdersDB(heap *memsim.Heap) (*imdb.DB, *imdb.Table) {
	db := imdb.New(heap)
	t, err := db.CreateTable(imdb.Schema{
		Table:   "orders",
		Columns: []string{"id", "customer", "amount"},
	}, 1<<12)
	if err != nil {
		panic(err)
	}
	if err := t.CreateIndex("customer"); err != nil {
		panic(err)
	}
	return db, t
}

const ordersHeapLines = 1 << 13

// TestIMDBRecovery rebuilds a db/imdb instance from checkpoint + log
// replay: concurrent indexed inserts and updates run through a durable
// SI-HTM, a fuzzy checkpoint lands mid-run, and recovery on a fresh
// heap must reproduce the exact live image with all engine invariants
// (row/index consistency) intact.
func TestIMDBRecovery(t *testing.T) {
	const threads, perThread = 4, 120
	heap := memsim.NewHeapLines(ordersHeapLines)
	_, orders := buildOrdersDB(heap)

	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(4, 2)})
	sys := sihtm.NewSystem(m, threads, sihtm.Config{})
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal.log")
	ckptPath := filepath.Join(dir, "heap.ckpt")
	store, err := Open(heap, logPath, 16, Config{Window: 300 * time.Microsecond, WaitAck: true})
	if err != nil {
		t.Fatal(err)
	}
	dsys := store.Attach(sys, m)

	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := orders.NewWriter()
			w.Prepare()
			pool := w.Pool()
			for i := 0; i < perThread; i++ {
				key := uint64(id*perThread + i + 1)
				dsys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
					pool.Reset()
					if _, err := w.Insert(ops, []uint64{key, key % 17, key * 3}); err != nil {
						panic(err)
					}
				})
				w.Commit()
				if i%8 == 0 {
					id64 := uint64(0)
					dsys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
						pool.Reset()
						rid, ok := orders.LookupPK(ops, key)
						if !ok {
							panic("inserted key vanished")
						}
						id64 = uint64(rid)
						orders.Update(ops, rid, "amount", key*5, pool)
					})
					w.Commit()
					_ = id64
				}
			}
		}(id)
	}
	// One fuzzy checkpoint somewhere in the middle of the run.
	time.Sleep(5 * time.Millisecond)
	if _, err := store.WriteCheckpoint(ckptPath); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := orders.CheckConsistency(); err != nil {
		t.Fatalf("live state inconsistent before recovery: %v", err)
	}

	// Recovery: rebuild the empty database deterministically on a fresh
	// heap, then restore checkpoint + replay the log underneath it.
	rheap := memsim.NewHeapLines(ordersHeapLines)
	_, rorders := buildOrdersDB(rheap)
	rep, err := Recover(rheap, ckptPath, logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CheckpointUsed {
		t.Fatal("recovery did not use the checkpoint")
	}

	diffs := 0
	for a := 0; a < heap.Size(); a++ {
		if w, g := heap.Load(memsim.Addr(a)), rheap.Load(memsim.Addr(a)); w != g {
			diffs++
		}
	}
	if diffs != 0 {
		t.Fatalf("recovered heap differs from live heap in %d words", diffs)
	}

	// The recovered table object counts rows through its Go-side
	// counter, which recovery cannot restore — verify through the
	// indexes and raw heap instead.
	po := rheap
	total := threads * perThread
	found := 0
	for key := uint64(1); key <= uint64(total); key++ {
		if _, ok := rorders.LookupPK(plainOps{po}, key); ok {
			found++
		}
	}
	if found != total {
		t.Fatalf("recovered index resolves %d/%d keys", found, total)
	}
}

// plainOps adapts raw heap access for quiescent verification walks.
type plainOps struct{ heap *memsim.Heap }

func (o plainOps) Read(a memsim.Addr) uint64     { return o.heap.Load(a) }
func (o plainOps) Write(a memsim.Addr, v uint64) { o.heap.Store(a, v) }
