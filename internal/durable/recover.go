package durable

import (
	"errors"
	"fmt"
	"os"

	"sihtm/internal/footprint"
	"sihtm/internal/memsim"
	"sihtm/internal/wal"
)

// Report summarizes one recovery pass.
type Report struct {
	// CheckpointUsed reports whether a checkpoint image was restored.
	CheckpointUsed bool
	// Watermark is the checkpoint's replay floor (0 without one).
	Watermark uint64
	// Replay describes the log scan (valid prefix, discarded tail).
	Replay wal.ReplayStats
	// Applied counts records with seq > Watermark (re-played into the
	// heap); Skipped counts records the checkpoint already covered.
	Applied, Skipped int
	// RecoveredSeq is the sequence number the recovered state
	// corresponds to: the state is exactly commits 1..RecoveredSeq.
	RecoveredSeq uint64
}

// String renders the report for logs and CLI output.
func (r Report) String() string {
	src := "base image"
	if r.CheckpointUsed {
		src = fmt.Sprintf("checkpoint (watermark %d)", r.Watermark)
	}
	return fmt.Sprintf("recovered to seq %d from %s: %d records applied, %d skipped; log: %s",
		r.RecoveredSeq, src, r.Applied, r.Skipped, r.Replay)
}

// Recover rebuilds the durable state onto heap: it restores the
// checkpoint at ckptPath (if the file exists), then replays the log's
// valid prefix, applying every record past the checkpoint watermark in
// sequence order. When no checkpoint exists the heap must already hold
// the base state the log was started from (the deterministic
// post-population image) and the whole log is applied.
//
// The resulting heap is exactly the state produced by commits
// 1..Report.RecoveredSeq — prefix-consistent, containing every
// acknowledged (fsynced) transaction and nothing past the log's valid
// prefix.
func Recover(heap *memsim.Heap, ckptPath, logPath string) (Report, error) {
	var rep Report
	if ckptPath != "" {
		w, err := ReadCheckpoint(ckptPath, heap)
		switch {
		case err == nil:
			rep.CheckpointUsed = true
			rep.Watermark = w
		case errors.Is(err, os.ErrNotExist):
			// No checkpoint yet (crash before the first one): replay
			// from the base image.
		default:
			return rep, err
		}
	}

	maxAddr := memsim.Addr(0)
	st, err := wal.Replay(logPath, func(seq uint64, entries []footprint.Entry) error {
		if seq <= rep.Watermark {
			rep.Skipped++
			return nil
		}
		for _, e := range entries {
			if int(e.Addr) >= heap.Size() {
				return fmt.Errorf("redo address %d beyond heap size %d", e.Addr, heap.Size())
			}
			heap.Store(e.Addr, e.Val)
			if e.Addr > maxAddr {
				maxAddr = e.Addr
			}
		}
		rep.Applied++
		return nil
	})
	rep.Replay = st
	if err != nil {
		return rep, err
	}
	rep.RecoveredSeq = st.LastSeq
	if rep.RecoveredSeq < rep.Watermark {
		// A checkpoint is only renamed into place after the log was
		// forced through its watermark, so a valid prefix ending below
		// it means the log and checkpoint do not belong together.
		return rep, fmt.Errorf("durable: log prefix ends at seq %d but checkpoint watermark is %d",
			rep.RecoveredSeq, rep.Watermark)
	}

	// Replayed records may reference heap past the restored allocation
	// watermark (nodes allocated after the checkpoint): advance the bump
	// pointer over the containing line so post-recovery allocations
	// cannot overlap replayed data.
	if rep.Applied > 0 {
		end := (memsim.LineOf(maxAddr) + 1).FirstAddr()
		if int(end) > heap.Allocated() {
			heap.RestoreAllocated(int(end))
		}
	}
	return rep, nil
}
