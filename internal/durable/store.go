// Package durable makes the transactional engine survive restarts: it
// couples the simulated heap with a write-ahead log (internal/wal) and
// fuzzy checkpoints, behind the commit-hook seam every TM backend in
// the repository exposes (htm.CommitHook / tm.HookableSystem). The
// design follows the back-end-logging school of hardware transactional
// persistence (Giles/Doshi/Varman's HTPM): the hardware commit path is
// never stalled by I/O — redo records are captured from the write
// buffer inside the commit bracket, sequenced, and made durable
// asynchronously by the log's group-commit daemon, with acknowledgement
// (the durability guarantee to the caller) deferred to the end of
// Atomic.
//
// Guarantees, in terms of the commit sequence number (LSN) the store
// assigns inside each commit's critical section:
//
//   - Prefix consistency: the state recovered after a crash is exactly
//     the state produced by commits 1..K in sequence order, for some K
//     ≥ the highest acknowledged sequence. The log's per-record CRC
//     discards the torn tail a crash leaves behind (K is the end of the
//     valid prefix), and conflicting transactions carry sequence
//     numbers in their serialization order, so replaying the prefix
//     reproduces a legal history.
//   - Acknowledged ⇒ present: System.Atomic returns only after the
//     transaction's record is fsynced (WaitAck mode), so every
//     acknowledged transaction is inside the recovered prefix.
//   - Checkpoints are fuzzy: they run concurrently with commits and
//     never block the commit path for longer than two sequence-counter
//     reads. See checkpoint.go for the watermark argument.
package durable

import (
	"fmt"
	"sync"
	"time"

	"sihtm/internal/footprint"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
	"sihtm/internal/wal"
)

// Config tunes a Store.
type Config struct {
	// Window is the group-commit fsync window (see wal.Config.Window).
	Window time.Duration
	// WaitAck makes the durable System wrapper block each Atomic until
	// the transaction's record is fsynced — the "committed means
	// durable" contract. Disable only for fire-and-forget benchmarking
	// of the capture path.
	WaitAck bool
	// NoDaemon disables the log's background flusher (tests drive Sync
	// manually). Implies no acknowledgements until Sync.
	NoDaemon bool
	// FirstSeq numbers the first commit (default 1); a store opened
	// after recovering to sequence S uses S+1.
	FirstSeq uint64
}

// threadSeq is a per-thread last-assigned-sequence slot, padded so
// worker threads do not false-share.
type threadSeq struct {
	seq   uint64 // owned by the thread between PreCommit and ack
	ackNs int64  // last Atomic's fsync-acknowledgement wait (WaitAck mode)
	_     [112]byte
}

// Store is the durability manager for one heap: it implements
// htm.CommitHook (= tm.CommitHook), so installing it on a machine and
// on a system's fall-back path routes every committed write set into
// the log.
type Store struct {
	heap    *memsim.Heap
	log     *wal.Log
	logPath string
	cfg     Config

	// barrier is the checkpoint barrier: every capture+publish runs
	// under RLock (PreCommit takes it, PostCommit releases it), so a
	// brief Lock observes a quiescent point — all assigned sequence
	// numbers fully published, no publication in flight. See
	// checkpoint.go.
	barrier sync.RWMutex

	last []threadSeq // per-thread last assigned sequence

	// ackHist observes how long each WaitAck'd Atomic blocked on the
	// group-commit fsync — the durability tax as the caller feels it.
	ackHist stats.Histogram
}

// Open creates a store logging to logPath. The caller sizes last for
// the machine's hardware threads (one slot per thread id the hook may
// see).
func Open(heap *memsim.Heap, logPath string, threads int, cfg Config) (*Store, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("durable: thread count must be positive, got %d", threads)
	}
	l, err := wal.Create(logPath, wal.Config{
		Window:   cfg.Window,
		NoDaemon: cfg.NoDaemon,
		FirstSeq: cfg.FirstSeq,
	})
	if err != nil {
		return nil, err
	}
	return &Store{heap: heap, log: l, logPath: logPath, cfg: cfg, last: make([]threadSeq, threads)}, nil
}

// Log exposes the underlying write-ahead log (stats, manual Sync).
func (s *Store) Log() *wal.Log { return s.log }

// LogPath returns the log file's path — what a replication publisher
// tails and a promoted follower catches up from.
func (s *Store) LogPath() string { return s.logPath }

// DurableSeq returns the highest fsynced sequence number: the
// acknowledgement frontier, and the bound on what a leader may stream
// to followers (acked ⇒ on disk ⇒ shippable).
func (s *Store) DurableSeq() uint64 { return s.log.DurableSeq() }

// Heap returns the heap the store persists.
func (s *Store) Heap() *memsim.Heap { return s.heap }

// PreCommit implements htm.CommitHook: capture the redo record and
// enter the checkpoint barrier. Called inside the committing
// transaction's critical section, before its writes are visible, so
// the sequence number drawn here orders conflicting transactions
// exactly as the TM serialized them. Allocation-free at steady state
// (the log's append buffer is retained across flushes).
func (s *Store) PreCommit(thread int, entries []footprint.Entry) {
	s.barrier.RLock()
	s.last[thread].seq = s.log.Append(entries)
}

// PostCommit implements htm.CommitHook: the write set is now visible;
// leave the checkpoint barrier. The durability wait happens later, off
// the TM critical section, in System.Atomic.
func (s *Store) PostCommit(thread int) {
	s.barrier.RUnlock()
}

// WaitThread blocks until the last transaction committed by the given
// thread is durable. A thread whose last commit is already fsynced (or
// that has only run read-only transactions) returns immediately.
func (s *Store) WaitThread(thread int) {
	if seq := s.last[thread].seq; seq != 0 {
		s.log.WaitDurable(seq)
	}
}

// AckWaitHist returns the live ack-wait histogram (time Atomic callers
// spent blocked on fsync acknowledgement) for telemetry registration.
func (s *Store) AckWaitHist() *stats.Histogram { return &s.ackHist }

// ThreadSeq returns the sequence number the thread's last committed
// update transaction was assigned (zero before the first). Only the
// thread itself may call this between its own Atomics — the slot is
// thread-owned, exactly like the commit hook writes it. The server's
// executor uses it to tag a request's trace with its commit sequence.
func (s *Store) ThreadSeq(thread int) uint64 { return s.last[thread].seq }

// LastAckWait returns how long the thread's last WaitAck'd Atomic
// blocked on fsync acknowledgement, in nanoseconds. Same thread-owned
// contract as ThreadSeq.
func (s *Store) LastAckWait(thread int) int64 { return s.last[thread].ackNs }

// LastSeq returns the highest sequence number assigned so far.
func (s *Store) LastSeq() uint64 { return s.log.LastSeq() }

// Sync forces everything appended so far to disk.
func (s *Store) Sync() error { return s.log.Sync() }

// Close flushes and closes the log.
func (s *Store) Close() error { return s.log.Close() }

// Attach installs the store on a system: the machine-level hook covers
// hardware commits, the system-level hook (when the system implements
// tm.HookableSystem) covers its software publication paths, and the
// returned wrapper adds the end-of-Atomic durability wait. Call before
// any transaction runs. m may be nil for machine-less systems (Silo).
func (s *Store) Attach(sys tm.System, m *htm.Machine) tm.System {
	if m != nil {
		m.SetCommitHook(s)
	}
	if h, ok := sys.(tm.HookableSystem); ok {
		h.SetCommitHook(s)
	}
	return &System{inner: sys, store: s}
}

// System is the durable tm.System wrapper: Atomic commits through the
// inner system (whose hooks feed the store) and then, in WaitAck mode,
// blocks until the transaction's redo record is fsynced — group-commit
// acknowledgement. The fsync wait happens after the inner commit fully
// published (no TM locks held), so log latency never stalls conflicting
// threads, only the caller.
type System struct {
	inner tm.System
	store *Store
}

// Name implements tm.System (the durable wrapper keeps the inner name:
// registry records compare like against like).
func (d *System) Name() string { return d.inner.Name() }

// Threads implements tm.System.
func (d *System) Threads() int { return d.inner.Threads() }

// Collector implements tm.System.
func (d *System) Collector() *stats.Collector { return d.inner.Collector() }

// Atomic implements tm.System.
func (d *System) Atomic(thread int, kind tm.Kind, body func(tm.Ops)) {
	d.inner.Atomic(thread, kind, body)
	if d.store.cfg.WaitAck {
		t0 := time.Now()
		d.store.WaitThread(thread)
		wait := time.Since(t0)
		d.store.last[thread].ackNs = int64(wait)
		d.store.ackHist.Observe(wait)
	}
}

// Unwrap returns the inner system.
func (d *System) Unwrap() tm.System { return d.inner }

var _ tm.System = (*System)(nil)
var _ htm.CommitHook = (*Store)(nil)
