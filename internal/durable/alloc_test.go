package durable

import (
	"path/filepath"
	"testing"

	"sihtm/internal/htm"
	"sihtm/internal/htmtm"
	"sihtm/internal/memsim"
	"sihtm/internal/sihtm"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
)

// TestDurableCommitZeroAllocs pins the acceptance criterion: a
// steady-state durable commit adds zero heap allocations on the TM hot
// path. The log runs without its daemon and with acknowledgement off,
// so the measurement covers exactly the capture path — PreCommit
// (barrier + sequencing + record encoding into the retained append
// buffer), write-back, PostCommit — with all file I/O excluded; Sync
// between warm-up and measurement resets the buffer length while
// keeping its capacity, so encoding never grows it mid-measurement.
func TestDurableCommitZeroAllocs(t *testing.T) {
	for _, name := range []string{"htm", "si-htm"} {
		t.Run(name, func(t *testing.T) {
			heap := memsim.NewHeapLines(64)
			addrs := [4]memsim.Addr{heap.AllocLine(), heap.AllocLine(), heap.AllocLine(), heap.AllocLine()}
			m := htm.NewMachine(heap, htm.Config{Topology: topology.New(2, 2)})
			var sys tm.System
			if name == "htm" {
				sys = htmtm.NewSystem(m, 1, htmtm.Config{})
			} else {
				sys = sihtm.NewSystem(m, 1, sihtm.Config{})
			}
			store, err := Open(heap, filepath.Join(t.TempDir(), "wal.log"), 4,
				Config{NoDaemon: true, WaitAck: false})
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			dsys := store.Attach(sys, m)

			// The transaction body is hoisted out of the op loop so the
			// pin measures the TM + log-capture path, not the caller's
			// per-call closure construction.
			body := func(ops tm.Ops) {
				for _, a := range addrs {
					ops.Write(a, ops.Read(a)+1)
				}
			}
			op := func() { dsys.Atomic(0, tm.KindUpdate, body) }
			for i := 0; i < 2048; i++ { // warm pools and grow the append buffer
				op()
			}
			if err := store.Sync(); err != nil {
				t.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(1000, op); allocs != 0 {
				t.Errorf("%s: durable commit allocates %.2f objects/op at steady state, want 0", name, allocs)
			}
		})
	}
}
