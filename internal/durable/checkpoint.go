package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"sihtm/internal/memsim"
)

// Checkpoint file layout (little-endian):
//
//	offset  size  field
//	0       4     magic   = ckptMagic ("SCKP")
//	4       4     version = 1
//	8       8     watermark — replay log records with seq > watermark
//	16      8     allocated — heap bump pointer, in words
//	24      8     words     — heap capacity, in words
//	32      8·W   payload   — the heap image, word by word
//	32+8·W  4     crc       — CRC-32C over bytes [0, 32+8·W)
//
// The file is written to a temporary sibling and renamed into place, so
// the named checkpoint is always a complete image: a crash mid-write
// leaves the previous checkpoint (or none) behind, never a torn one.
const (
	ckptMagic   = uint32(0x53434B50) // "SCKP"
	ckptVersion = uint32(1)
	ckptHeader  = 32
)

// castagnoli mirrors the WAL's CRC-32C polynomial.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteCheckpoint takes a fuzzy snapshot of the heap and writes it to
// path, returning the watermark it recorded. It runs concurrently with
// commits; the commit path is blocked only for the two sequence-counter
// reads bracketing the scan.
//
// Why the fuzzy image plus the recorded watermark recover an exact
// state:
//
//  1. W is read with the barrier held exclusively: every sequence
//     number ≤ W was assigned by a capture whose publication has also
//     completed (captures and publications share one RLock section), so
//     the scan that follows sees all of commits 1..W.
//  2. The scan may additionally see fragments of commits that publish
//     while it runs. Any such commit appended its record (PreCommit)
//     before storing a single word, so by the time the scan finishes,
//     every write the image may contain is already in the log's append
//     buffer.
//  3. The log is forced (Sync) after the scan and before the checkpoint
//     is renamed into place, so all those records are durable when the
//     checkpoint becomes the recovery base — the WAL rule.
//
// Recovery restores the image and replays the log from W+1. Records in
// (W, E] whose effects the image already holds are re-applied — physical
// redo is idempotent — and records the image caught only partially are
// completed. The recovered state is exactly commits 1..K for K = end of
// the log's valid prefix (≥ E).
func (s *Store) WriteCheckpoint(path string) (watermark uint64, err error) {
	s.barrier.Lock()
	watermark = s.log.LastSeq()
	s.barrier.Unlock()

	heap := s.heap
	words := heap.Size()
	allocated := heap.Allocated()

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	crc := uint32(0)
	w := bufio.NewWriterSize(f, 1<<16)
	emit := func(b []byte) error {
		crc = crc32.Update(crc, castagnoli, b)
		_, werr := w.Write(b)
		return werr
	}
	var hdr [ckptHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], ckptMagic)
	binary.LittleEndian.PutUint32(hdr[4:], ckptVersion)
	binary.LittleEndian.PutUint64(hdr[8:], watermark)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(allocated))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(words))
	if err = emit(hdr[:]); err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	var chunk [512]byte
	for a := 0; a < words; {
		n := 0
		for ; n < len(chunk)/8 && a < words; n++ {
			binary.LittleEndian.PutUint64(chunk[n*8:], heap.Load(memsim.Addr(a)))
			a++
		}
		if err = emit(chunk[:n*8]); err != nil {
			return 0, fmt.Errorf("durable: checkpoint: %w", err)
		}
	}
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], crc)
	if _, err = w.Write(tr[:]); err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	if err = w.Flush(); err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}

	// The WAL rule: the log must cover every write the image may hold
	// before the checkpoint becomes the named recovery base.
	if err = s.log.Sync(); err != nil {
		return 0, err
	}
	if err = f.Sync(); err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	if err = f.Close(); err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	return watermark, nil
}

// ReadCheckpoint restores a checkpoint image into heap and returns its
// watermark. The heap must have the same word capacity the image was
// taken from.
func ReadCheckpoint(path string, heap *memsim.Heap) (watermark uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	if len(data) < ckptHeader+4 {
		return 0, fmt.Errorf("durable: checkpoint %s: truncated (%d bytes)", path, len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != ckptMagic {
		return 0, fmt.Errorf("durable: checkpoint %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != ckptVersion {
		return 0, fmt.Errorf("durable: checkpoint %s: unsupported version %d", path, v)
	}
	watermark = binary.LittleEndian.Uint64(data[8:])
	allocated := binary.LittleEndian.Uint64(data[16:])
	words := binary.LittleEndian.Uint64(data[24:])
	if int(words) != heap.Size() {
		return 0, fmt.Errorf("durable: checkpoint %s: image has %d words, heap has %d",
			path, words, heap.Size())
	}
	body := ckptHeader + int(words)*8
	if len(data) != body+4 {
		return 0, fmt.Errorf("durable: checkpoint %s: %d bytes, want %d", path, len(data), body+4)
	}
	if got, want := crc32.Checksum(data[:body], castagnoli), binary.LittleEndian.Uint32(data[body:]); got != want {
		return 0, fmt.Errorf("durable: checkpoint %s: CRC mismatch", path)
	}
	if allocated < 1 || allocated > words {
		return 0, fmt.Errorf("durable: checkpoint %s: bad allocation watermark %d", path, allocated)
	}
	for a := 0; a < int(words); a++ {
		heap.Store(memsim.Addr(a), binary.LittleEndian.Uint64(data[ckptHeader+a*8:]))
	}
	heap.RestoreAllocated(int(allocated))
	return watermark, nil
}
