package durable

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sihtm/internal/htm"
	"sihtm/internal/htmtm"
	"sihtm/internal/memsim"
	"sihtm/internal/p8tm"
	"sihtm/internal/sgl"
	"sihtm/internal/sihtm"
	"sihtm/internal/silo"
	"sihtm/internal/tm"
	"sihtm/internal/topology"
)

// snapshotHeap copies the heap image (words + allocation watermark).
func snapshotHeap(h *memsim.Heap) ([]uint64, int) {
	img := make([]uint64, h.Size())
	for a := range img {
		img[a] = h.Load(memsim.Addr(a))
	}
	return img, h.Allocated()
}

// restoreHeap writes an image into a fresh heap of the same geometry.
func restoreHeap(h *memsim.Heap, img []uint64, allocated int) {
	for a, v := range img {
		h.Store(memsim.Addr(a), v)
	}
	h.RestoreAllocated(allocated)
}

func heapsEqual(t *testing.T, want, got *memsim.Heap, label string) {
	t.Helper()
	if want.Size() != got.Size() {
		t.Fatalf("%s: heap sizes differ (%d vs %d)", label, want.Size(), got.Size())
	}
	diffs := 0
	for a := 0; a < want.Size(); a++ {
		if w, g := want.Load(memsim.Addr(a)), got.Load(memsim.Addr(a)); w != g {
			if diffs < 5 {
				t.Errorf("%s: word %d = %d, want %d", label, a, g, w)
			}
			diffs++
		}
	}
	if diffs > 0 {
		t.Fatalf("%s: %d words differ", label, diffs)
	}
}

// sysFactory builds a system over a fresh machine/heap. The tiny TMCAM
// forces the HTM-based systems onto their SGL fall-back regularly, so
// both the hardware hook and the Recorder path are exercised.
type sysFactory struct {
	name string
	mk   func(heap *memsim.Heap, threads int) (tm.System, *htm.Machine)
}

func factories() []sysFactory {
	newMachine := func(h *memsim.Heap) *htm.Machine {
		return htm.NewMachine(h, htm.Config{Topology: topology.New(4, 2), TMCAMLines: 8})
	}
	return []sysFactory{
		{"htm", func(h *memsim.Heap, n int) (tm.System, *htm.Machine) {
			m := newMachine(h)
			return htmtm.NewSystem(m, n, htmtm.Config{}), m
		}},
		{"si-htm", func(h *memsim.Heap, n int) (tm.System, *htm.Machine) {
			m := newMachine(h)
			return sihtm.NewSystem(m, n, sihtm.Config{}), m
		}},
		{"p8tm", func(h *memsim.Heap, n int) (tm.System, *htm.Machine) {
			m := newMachine(h)
			return p8tm.NewSystem(m, n, p8tm.Config{}), m
		}},
		{"sgl", func(h *memsim.Heap, n int) (tm.System, *htm.Machine) {
			m := newMachine(h)
			return sgl.NewSystem(m, n), m
		}},
		{"silo", func(h *memsim.Heap, n int) (tm.System, *htm.Machine) {
			return silo.NewSystem(h, n), nil
		}},
	}
}

// TestRecoveryMatchesLiveState: for every system, a concurrent mixed
// workload committed through the durable wrapper recovers — from the
// base image plus the log alone — to exactly the live final heap.
func TestRecoveryMatchesLiveState(t *testing.T) {
	const threads, perThread, accounts = 4, 300, 8
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			heap := memsim.NewHeapLines(256)
			accts := make([]memsim.Addr, accounts)
			for i := range accts {
				accts[i] = heap.AllocLine()
				heap.Store(accts[i], 1000)
			}
			big := heap.AllocLines(32) // spills the 8-line TMCAM → fall-backs
			base, baseAlloc := snapshotHeap(heap)

			sys, m := f.mk(heap, threads)
			logPath := filepath.Join(t.TempDir(), "wal.log")
			store, err := Open(heap, logPath, 16, Config{Window: 500 * time.Microsecond, WaitAck: true})
			if err != nil {
				t.Fatal(err)
			}
			dsys := store.Attach(sys, m)

			var wg sync.WaitGroup
			for id := 0; id < threads; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					seed := uint64(id)*0x9e3779b97f4a7c15 + 1
					next := func(n int) int {
						seed = seed*6364136223846793005 + 1442695040888963407
						return int((seed >> 33) % uint64(n))
					}
					for i := 0; i < perThread; i++ {
						switch i % 5 {
						case 4: // read-only audit: must not reach the log
							dsys.Atomic(id, tm.KindReadOnly, func(ops tm.Ops) {
								s := uint64(0)
								for _, a := range accts {
									s += ops.Read(a)
								}
							})
						case 3: // large write set: forces the fall-back path
							dsys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
								for l := 0; l < 32; l++ {
									a := big + memsim.Addr(l*memsim.WordsPerLine)
									ops.Write(a, ops.Read(a)+1)
								}
							})
						default: // transfer
							from, to := accts[next(accounts)], accts[next(accounts)]
							amt := uint64(next(7))
							dsys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
								fv := ops.Read(from)
								if fv < amt || from == to {
									return
								}
								ops.Write(from, fv-amt)
								ops.Write(to, ops.Read(to)+amt)
							})
						}
					}
				}(id)
			}
			wg.Wait()
			if err := store.Close(); err != nil {
				t.Fatal(err)
			}

			recovered := memsim.NewHeap(heap.Size())
			restoreHeap(recovered, base, baseAlloc)
			rep, err := Recover(recovered, "", logPath)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Replay.TailBytes != 0 {
				t.Fatalf("clean shutdown left a torn tail: %s", rep.Replay)
			}
			heapsEqual(t, heap, recovered, f.name)
			if rep.RecoveredSeq == 0 {
				t.Fatal("no transactions were logged")
			}
		})
	}
}

// TestFuzzyCheckpointEquivalence: checkpoints written while the
// workload runs recover to the same state as replaying the full log
// from the base image.
func TestFuzzyCheckpointEquivalence(t *testing.T) {
	const threads, perThread = 4, 400
	heap := memsim.NewHeapLines(128)
	cells := make([]memsim.Addr, 16)
	for i := range cells {
		cells[i] = heap.AllocLine()
	}
	base, baseAlloc := snapshotHeap(heap)

	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(4, 2), TMCAMLines: 8})
	sys := sihtm.NewSystem(m, threads, sihtm.Config{})
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal.log")
	ckptPath := filepath.Join(dir, "heap.ckpt")
	store, err := Open(heap, logPath, 16, Config{Window: 200 * time.Microsecond, WaitAck: true})
	if err != nil {
		t.Fatal(err)
	}
	dsys := store.Attach(sys, m)

	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				c := cells[(id*perThread+i)%len(cells)]
				dsys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
					ops.Write(c, ops.Read(c)+1)
				})
			}
		}(id)
	}
	// Checkpoint repeatedly while the workload runs: each overwrite
	// leaves the newest complete image under ckptPath.
	workersDone := waitGroupDone(&wg)
	ckpts := 0
	for done := false; !done; {
		select {
		case <-workersDone:
			done = true
		default:
			if _, err := store.WriteCheckpoint(ckptPath); err != nil {
				t.Fatal(err)
			}
			ckpts++
		}
	}
	wg.Wait()
	if ckpts == 0 {
		t.Fatal("no fuzzy checkpoint was written while the workload ran")
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	viaCkpt := memsim.NewHeap(heap.Size())
	repC, err := Recover(viaCkpt, ckptPath, logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !repC.CheckpointUsed {
		t.Fatal("recovery did not use the checkpoint")
	}
	viaBase := memsim.NewHeap(heap.Size())
	restoreHeap(viaBase, base, baseAlloc)
	repB, err := Recover(viaBase, "", logPath)
	if err != nil {
		t.Fatal(err)
	}
	heapsEqual(t, viaBase, viaCkpt, "checkpoint-vs-full-replay")
	heapsEqual(t, heap, viaCkpt, "checkpoint-vs-live")
	if repC.RecoveredSeq != repB.RecoveredSeq {
		t.Fatalf("recovered seq differs: checkpoint %d, base %d", repC.RecoveredSeq, repB.RecoveredSeq)
	}
	if repC.Skipped == 0 && repC.Watermark > 0 {
		t.Errorf("watermark %d but no records were skipped", repC.Watermark)
	}
}

// waitGroupDone adapts a WaitGroup to a select-able channel.
func waitGroupDone(wg *sync.WaitGroup) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}

// TestCrashPrefixAndAcks: the log image copied while the workload runs
// (the crash) recovers to an exact commit prefix that contains every
// transaction acknowledged before the copy.
func TestCrashPrefixAndAcks(t *testing.T) {
	const threads = 4
	heap := memsim.NewHeapLines(64)
	counter := heap.AllocLine()
	base, baseAlloc := snapshotHeap(heap)

	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(4, 2)})
	sys := htmtm.NewSystem(m, threads, htmtm.Config{})
	logPath := filepath.Join(t.TempDir(), "wal.log")
	store, err := Open(heap, logPath, 16, Config{Window: 200 * time.Microsecond, WaitAck: true})
	if err != nil {
		t.Fatal(err)
	}
	dsys := store.Attach(sys, m)

	var acked atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !stop.Load() {
				dsys.Atomic(id, tm.KindUpdate, func(ops tm.Ops) {
					ops.Write(counter, ops.Read(counter)+1)
				})
				acked.Add(1) // Atomic returned ⇒ record fsynced
			}
		}(id)
	}

	time.Sleep(20 * time.Millisecond)
	// "Crash": snapshot the ack count, then copy the log file while
	// appends and fsyncs continue — exactly what a SIGKILL preserves.
	ackedAtCrash := acked.Load()
	crashImage := copyFile(t, logPath)
	stop.Store(true)
	wg.Wait()
	store.Close()

	recovered := memsim.NewHeap(heap.Size())
	restoreHeap(recovered, base, baseAlloc)
	rep, err := Recover(recovered, "", crashImage)
	if err != nil {
		t.Fatal(err)
	}
	// Every commit increments the counter once, and commits are
	// sequenced 1,2,3,...: an exact prefix of K commits leaves the
	// counter at exactly K.
	if got := recovered.Load(counter); got != rep.RecoveredSeq {
		t.Fatalf("counter = %d after recovering to seq %d: not an exact prefix", got, rep.RecoveredSeq)
	}
	if rep.RecoveredSeq < ackedAtCrash {
		t.Fatalf("recovered only %d commits but %d were acknowledged before the crash",
			rep.RecoveredSeq, ackedAtCrash)
	}
}

func copyFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := path + ".crash"
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}
