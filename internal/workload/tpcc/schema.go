// Package tpcc implements the TPC-C benchmark (revision 5.11) over the
// simulated heap, as the paper's §4.2 real-world workload: all nine
// tables, the five transaction profiles, the paper's two mixes (standard
// `-s 4 -d 4 -o 4 -p 43 -r 45` and read-dominated `-s 4 -d 4 -o 80 -p 4
// -r 8`) and the low/high contention configurations (many warehouses vs
// one).
//
// Deviations from the letter of the spec, chosen to match what TM papers
// (including this one) actually run, are documented in DESIGN.md:
// fixed-capacity order/order-line/history rings instead of unbounded
// inserts; string payloads stored as 64-bit hashes (footprints in cache
// lines are preserved, which is what the paper's capacity argument needs);
// customer selection by last name through a static side index (the paper
// disables record indexing in its baselines); Delivery executed as ten
// per-district transactions (allowed by spec clause 2.7.4.2); and the 1%
// NewOrder user-rollback omitted.
package tpcc

import (
	"fmt"

	"sihtm/internal/memsim"
	"sihtm/internal/rng"
)

// Fixed TPC-C shape.
const (
	DistrictsPerWarehouse = 10
	MaxOrderLines         = 15
	MinOrderLines         = 5
)

// Config sizes a TPC-C database.
type Config struct {
	// Warehouses is the scaling factor W: the paper's low-contention runs
	// use many warehouses, the high-contention runs use 1.
	Warehouses int
	// ScaleDiv divides the spec's per-warehouse cardinalities (items,
	// customers) to keep the simulated heap manageable. 0 means 10:
	// 10,000 items, 300 customers/district.
	ScaleDiv int
	// OrderRing is the per-district order ring capacity (slots for order
	// + order-line rows, reused cyclically). 0 means 1024.
	OrderRing int
	// HistoryRing is the per-warehouse history ring capacity. 0 means 8192.
	HistoryRing int
	// Seed drives the initial population.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.ScaleDiv == 0 {
		c.ScaleDiv = 10
	}
	if c.OrderRing == 0 {
		c.OrderRing = 1024
	}
	if c.HistoryRing == 0 {
		c.HistoryRing = 8192
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Warehouses <= 0 {
		return fmt.Errorf("tpcc: warehouses must be positive, got %d", c.Warehouses)
	}
	if c.ScaleDiv < 1 || c.ScaleDiv > 1000 {
		return fmt.Errorf("tpcc: scale divisor %d out of range [1,1000]", c.ScaleDiv)
	}
	if c.OrderRing < 64 {
		return fmt.Errorf("tpcc: order ring %d too small (min 64)", c.OrderRing)
	}
	return nil
}

// Items returns the item-table cardinality (spec: 100,000 / ScaleDiv).
func (c Config) Items() int { return 100000 / c.withDefaults().ScaleDiv }

// CustomersPerDistrict returns the customer cardinality (spec: 3,000 /
// ScaleDiv).
func (c Config) CustomersPerDistrict() int { return 3000 / c.withDefaults().ScaleDiv }

// Row layouts, in words. Strings are stored as single-word hashes but the
// row footprints (in cache lines) match realistic record sizes.
const (
	// Warehouse (1 line): the YTD word is the global hot spot under high
	// contention.
	wYTD   = 0 // cents
	wTax   = 1 // basis points
	wHHead = 2 // history ring head

	// District (1 line): NEXT_O_ID serialises NewOrders per district.
	dNextOID    = 0
	dYTD        = 1
	dTax        = 2
	dOldestNO   = 3 // oldest undelivered order (the NEW-ORDER queue head)
	dInitialOID = 4 // first order id of the run (for scans)

	// Customer: 2 lines; line 0 is the hot line.
	cBalance      = 0 // int64 cents, two's complement in a uint64
	cYTDPayment   = 1
	cPaymentCnt   = 2
	cDeliveryCnt  = 3
	cLastOID      = 4                   // most recent order id, 0 = none
	cCredit       = 5                   // 0 = GC, 1 = BC
	cLastName     = 6                   // last-name number 0..999
	cDiscount     = 7                   // basis points
	cDataLine     = memsim.WordsPerLine // start of the cold C_DATA line
	customerWords = 2 * memsim.WordsPerLine

	// Item: 8 words, two items per line (read-only table).
	iPrice    = 0 // cents
	iNameHash = 1
	iImID     = 2
	iDataHash = 3
	itemWords = 8

	// Stock (1 line): written by every NewOrder.
	sQuantity  = 0
	sYTD       = 1
	sOrderCnt  = 2
	sRemoteCnt = 3
	sDistHash  = 4

	// Order (1 line).
	oCID      = 0
	oEntryD   = 1
	oCarrier  = 2 // 0 = not delivered
	oOLCnt    = 3
	oAllLocal = 4
	oTotal    = 5

	// Order line: 8 words, two per line; MaxOrderLines slots per order.
	olIID      = 0
	olSupplyW  = 1
	olQuantity = 2
	olAmount   = 3
	olDeliverD = 4
	olDistHash = 5
	olWords    = 8

	// History entry: 8 words, two per line.
	hCID    = 0
	hCDID   = 1
	hCWID   = 2
	hDID    = 3
	hWID    = 4
	hAmount = 5
	hWords  = 8
)

// table is a fixed-stride row store inside the heap.
type table struct {
	base   memsim.Addr
	stride int // words
	rows   int
}

func (t table) row(i int) memsim.Addr {
	if i < 0 || i >= t.rows {
		panic(fmt.Sprintf("tpcc: row %d out of range [0,%d)", i, t.rows))
	}
	return t.base + memsim.Addr(i*t.stride)
}

// warehouse groups one warehouse's tables.
type warehouse struct {
	w         memsim.Addr // warehouse row
	districts table       // 10 rows × 1 line
	customers table       // 10×NC rows × 2 lines (d*NC + c)
	stock     table       // Items rows × 1 line
	orders    []table     // per district: OrderRing rows × 1 line
	lines     []table     // per district: OrderRing × MaxOrderLines rows × 8 words
	history   table       // HistoryRing rows × 8 words
}

// DB is a populated TPC-C database.
type DB struct {
	heap *memsim.Heap
	cfg  Config

	items table
	ws    []warehouse

	// nameIndex[w][d][name] lists customer ids with that last name —
	// a static side index (customer names never change).
	nameIndex [][][][]int

	// NURand run constants (spec 2.1.6.1).
	cLast, cCust, cItem int

	initialWYTD uint64
}

// HeapLinesNeeded estimates the lines the database occupies, plus slack.
func (c Config) HeapLinesNeeded() int {
	c = c.withDefaults()
	nc := c.CustomersPerDistrict()
	perWarehouse := 1 + // warehouse row
		DistrictsPerWarehouse + // district rows
		DistrictsPerWarehouse*nc*2 + // customers
		c.Items() + // stock
		DistrictsPerWarehouse*c.OrderRing + // orders
		DistrictsPerWarehouse*c.OrderRing*MaxOrderLines/2 + // order lines (2 per line)
		c.HistoryRing/2 + DistrictsPerWarehouse
	return c.Warehouses*perWarehouse + c.Items()/2 + 4096
}

// signedWord stores an int64 (e.g. a balance in cents, which can go
// negative) in a heap word, two's-complement.
func signedWord(v int64) uint64 { return uint64(v) }

// hashStr stands in for the spec's random strings: a word whose value is
// deterministic per (table, row, field).
func hashStr(kind, a, b, f uint64) uint64 {
	x := kind*0x9e3779b97f4a7c15 ^ a*0xbf58476d1ce4e5b9 ^ b*0x94d049bb133111eb ^ f
	x ^= x >> 31
	return x
}

// NewDB allocates and populates a TPC-C database on heap.
func NewDB(heap *memsim.Heap, cfg Config) (*DB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	r := rng.Stream(cfg.Seed, rng.StreamPopulate)

	db := &DB{
		heap:  heap,
		cfg:   cfg,
		cLast: r.IntRange(0, 255),
		cCust: r.IntRange(0, 1023),
		cItem: r.IntRange(0, 8191),
	}
	nItems := cfg.Items()
	nc := cfg.CustomersPerDistrict()

	// Item table (shared, read-only).
	db.items = table{base: heap.AllocLines((nItems*itemWords + memsim.WordsPerLine - 1) / memsim.WordsPerLine), stride: itemWords, rows: nItems}
	for i := 0; i < nItems; i++ {
		row := db.items.row(i)
		heap.Store(row+iPrice, uint64(r.IntRange(100, 10000)))
		heap.Store(row+iNameHash, hashStr(1, uint64(i), 0, 0))
		heap.Store(row+iImID, uint64(r.IntRange(1, 10000)))
		heap.Store(row+iDataHash, hashStr(1, uint64(i), 0, 1))
	}

	db.ws = make([]warehouse, cfg.Warehouses)
	db.nameIndex = make([][][][]int, cfg.Warehouses)
	for w := range db.ws {
		wh := &db.ws[w]
		wh.w = heap.AllocLine()
		heap.Store(wh.w+wTax, uint64(r.IntRange(0, 2000)))

		wh.districts = table{base: heap.AllocLines(DistrictsPerWarehouse), stride: memsim.WordsPerLine, rows: DistrictsPerWarehouse}
		wh.customers = table{base: heap.AllocLines(DistrictsPerWarehouse * nc * 2), stride: customerWords, rows: DistrictsPerWarehouse * nc}
		wh.stock = table{base: heap.AllocLines(nItems), stride: memsim.WordsPerLine, rows: nItems}
		wh.history = table{base: heap.AllocLines((cfg.HistoryRing*hWords + memsim.WordsPerLine - 1) / memsim.WordsPerLine), stride: hWords, rows: cfg.HistoryRing}

		db.nameIndex[w] = make([][][]int, DistrictsPerWarehouse)
		for d := 0; d < DistrictsPerWarehouse; d++ {
			drow := wh.districts.row(d)
			heap.Store(drow+dNextOID, uint64(nc)) // initial orders 0..nc-1
			heap.Store(drow+dInitialOID, uint64(nc))
			heap.Store(drow+dYTD, 30000_00)
			heap.Store(drow+dTax, uint64(r.IntRange(0, 2000)))
			heap.Store(drow+dOldestNO, uint64(nc*2/3)) // spec: last 900 of 3000 undelivered

			db.nameIndex[w][d] = make([][]int, 1000)
			for c := 0; c < nc; c++ {
				crow := wh.customers.row(d*nc + c)
				heap.Store(crow+cBalance, signedWord(-10_00)) // spec: -$10.00
				heap.Store(crow+cYTDPayment, 10_00)
				heap.Store(crow+cPaymentCnt, 1)
				heap.Store(crow+cDiscount, uint64(r.IntRange(0, 5000)))
				credit := uint64(0)
				if r.Bool(10) { // 10% bad credit
					credit = 1
				}
				heap.Store(crow+cCredit, credit)
				var name int
				if c < 1000 {
					name = c % 1000
				} else {
					name = r.NURand(rng.NURandACustomerLast, 0, 999, db.cLast)
				}
				heap.Store(crow+cLastName, uint64(name))
				heap.Store(crow+cDataLine, hashStr(2, uint64(w), uint64(d*nc+c), 0))
				db.nameIndex[w][d][name] = append(db.nameIndex[w][d][name], c)
			}
		}

		for i := 0; i < nItems; i++ {
			srow := wh.stock.row(i)
			heap.Store(srow+sQuantity, uint64(r.IntRange(10, 100)))
			heap.Store(srow+sDistHash, hashStr(3, uint64(w), uint64(i), 0))
		}

		wh.orders = make([]table, DistrictsPerWarehouse)
		wh.lines = make([]table, DistrictsPerWarehouse)
		for d := 0; d < DistrictsPerWarehouse; d++ {
			wh.orders[d] = table{base: heap.AllocLines(cfg.OrderRing), stride: memsim.WordsPerLine, rows: cfg.OrderRing}
			olLines := (cfg.OrderRing*MaxOrderLines*olWords + memsim.WordsPerLine - 1) / memsim.WordsPerLine
			wh.lines[d] = table{base: heap.AllocLines(olLines), stride: olWords, rows: cfg.OrderRing * MaxOrderLines}

			// Initial orders: one per customer, in random permutation (spec
			// 4.3.3.1), the last third undelivered.
			perm := make([]int, nc)
			r.Perm(perm)
			for o := 0; o < nc; o++ {
				slot := o % cfg.OrderRing
				orow := wh.orders[d].row(slot)
				olCnt := r.IntRange(MinOrderLines, MaxOrderLines)
				heap.Store(orow+oCID, uint64(perm[o]))
				heap.Store(orow+oEntryD, uint64(o))
				heap.Store(orow+oOLCnt, uint64(olCnt))
				heap.Store(orow+oAllLocal, 1)
				carrier := uint64(0)
				if o < nc*2/3 { // delivered
					carrier = uint64(r.IntRange(1, 10))
				}
				heap.Store(orow+oCarrier, carrier)
				crow := wh.customers.row(d*nc + perm[o])
				heap.Store(crow+cLastOID, uint64(o)+1) // +1 so 0 means "none"
				for ol := 0; ol < olCnt; ol++ {
					olrow := wh.lines[d].row(slot*MaxOrderLines + ol)
					heap.Store(olrow+olIID, uint64(r.Intn(nItems)))
					heap.Store(olrow+olSupplyW, uint64(w))
					heap.Store(olrow+olQuantity, 5)
					heap.Store(olrow+olAmount, uint64(r.IntRange(1, 9999)))
					if carrier != 0 {
						heap.Store(olrow+olDeliverD, uint64(o)+1)
					}
				}
			}
		}

		// W_YTD = sum of D_YTD (spec consistency condition 1).
		heap.Store(wh.w+wYTD, 30000_00*DistrictsPerWarehouse)
	}
	db.initialWYTD = 30000_00 * DistrictsPerWarehouse
	return db, nil
}

// Heap returns the underlying heap.
func (db *DB) Heap() *memsim.Heap { return db.heap }

// Config returns the database configuration.
func (db *DB) Config() Config { return db.cfg }

// Warehouses returns W.
func (db *DB) Warehouses() int { return len(db.ws) }
