package tpcc

import (
	"fmt"

	"sihtm/internal/memsim"
)

// CheckConsistency verifies the TPC-C consistency conditions that remain
// decidable under this implementation's ring-buffer storage (see
// DESIGN.md). It must be called quiescently (no concurrent transactions).
// It returns the first violation found, or nil.
//
// Checks implemented, following the spec's consistency conditions §3.3.2:
//
//  1. W_YTD == Σ D_YTD for every warehouse (condition 1).
//  2. D_NEXT_O_ID monotonicity: oldest-undelivered ≤ next order id, and
//     next never below the initial population (condition 2-ish).
//  3. Every live order's OL_CNT ∈ [5, 15] and its order lines carry valid
//     item ids — detects torn or lost multi-line commits (condition 3/7).
//  4. History/YTD balance: Σ history amounts == W_YTD − initial W_YTD,
//     when the history ring has not wrapped (condition 5-ish).
//  5. Stock sanity: S_QUANTITY ∈ [0, 100+91] for every item.
func (db *DB) CheckConsistency() error {
	h := db.heap
	for w := range db.ws {
		wh := &db.ws[w]
		var dYTDSum uint64
		for d := 0; d < DistrictsPerWarehouse; d++ {
			drow := wh.districts.row(d)
			dYTDSum += h.Load(drow + dYTD)

			next := h.Load(drow + dNextOID)
			oldest := h.Load(drow + dOldestNO)
			initial := h.Load(drow + dInitialOID)
			if next < initial {
				return fmt.Errorf("tpcc: w%d d%d: next order id %d below initial %d", w, d, next, initial)
			}
			if oldest > next {
				return fmt.Errorf("tpcc: w%d d%d: oldest undelivered %d beyond next %d", w, d, oldest, next)
			}

			// Live ring slots: the most recent min(next, ring) orders.
			lo := uint64(0)
			if next > uint64(db.cfg.OrderRing) {
				lo = next - uint64(db.cfg.OrderRing)
			}
			for oid := lo; oid < next; oid++ {
				slot := int(oid) % db.cfg.OrderRing
				orow := wh.orders[d].row(slot)
				olCnt := h.Load(orow + oOLCnt)
				if olCnt < MinOrderLines || olCnt > MaxOrderLines {
					return fmt.Errorf("tpcc: w%d d%d order %d: OL_CNT %d out of range", w, d, oid, olCnt)
				}
				for i := 0; i < int(olCnt); i++ {
					olrow := wh.lines[d].row(slot*MaxOrderLines + i)
					iid := h.Load(olrow + olIID)
					if iid >= uint64(db.cfg.Items()) {
						return fmt.Errorf("tpcc: w%d d%d order %d line %d: item id %d out of range (torn commit?)",
							w, d, oid, i, iid)
					}
				}
			}
		}
		wYTDv := h.Load(wh.w + wYTD)
		if wYTDv != dYTDSum {
			return fmt.Errorf("tpcc: w%d: W_YTD %d != Σ D_YTD %d (lost payment update)", w, wYTDv, dYTDSum)
		}

		hHead := h.Load(wh.w + wHHead)
		if hHead <= uint64(db.cfg.HistoryRing) {
			var hSum uint64
			for i := uint64(0); i < hHead; i++ {
				hSum += h.Load(wh.history.row(int(i)) + hAmount)
			}
			if db.initialWYTD+hSum != wYTDv {
				return fmt.Errorf("tpcc: w%d: history sum %d != W_YTD delta %d (lost history insert)",
					w, hSum, wYTDv-db.initialWYTD)
			}
		}

		for i := 0; i < db.cfg.Items(); i++ {
			q := h.Load(wh.stock.row(i) + sQuantity)
			if q > 191 {
				return fmt.Errorf("tpcc: w%d stock %d: quantity %d out of range (torn stock update)", w, i, q)
			}
		}
	}
	return nil
}

// TotalOrders counts orders entered since population, across all
// districts (from D_NEXT_O_ID deltas). Verification helper.
func (db *DB) TotalOrders() uint64 {
	var n uint64
	for w := range db.ws {
		for d := 0; d < DistrictsPerWarehouse; d++ {
			drow := db.ws[w].districts.row(d)
			n += db.heap.Load(drow+dNextOID) - db.heap.Load(drow+dInitialOID)
		}
	}
	return n
}

// WarehouseYTD returns warehouse w's year-to-date total (cents).
func (db *DB) WarehouseYTD(w int) uint64 {
	return db.heap.Load(db.ws[w].w + wYTD)
}

// CustomerBalance returns customer (w,d,c)'s balance in cents (signed).
func (db *DB) CustomerBalance(w, d, c int) int64 {
	nc := db.cfg.CustomersPerDistrict()
	return int64(db.heap.Load(db.ws[w].customers.row(d*nc+c) + cBalance))
}

var _ = memsim.WordsPerLine
