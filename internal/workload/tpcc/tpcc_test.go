package tpcc_test

import (
	"sync"
	"testing"

	"sihtm/internal/memsim"
	"sihtm/internal/tm"
	"sihtm/internal/tmtest"
	"sihtm/internal/workload/tpcc"
)

// smallConfig is a fast test database: 2 warehouses, heavily scaled down.
func smallConfig() tpcc.Config {
	return tpcc.Config{Warehouses: 2, ScaleDiv: 100, OrderRing: 64, HistoryRing: 1024, Seed: 42}
}

func newDB(t testing.TB, cfg tpcc.Config) (*tpcc.DB, *memsim.Heap) {
	t.Helper()
	heap := memsim.NewHeapLines(cfg.HeapLinesNeeded())
	db, err := tpcc.NewDB(heap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db, heap
}

func TestConfigValidation(t *testing.T) {
	bad := []tpcc.Config{
		{Warehouses: 0},
		{Warehouses: 1, ScaleDiv: 2000},
		{Warehouses: 1, OrderRing: 8},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated", i)
		}
	}
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if good.Items() != 1000 || good.CustomersPerDistrict() != 30 {
		t.Fatalf("scaled cardinalities = %d items, %d customers",
			good.Items(), good.CustomersPerDistrict())
	}
}

func TestFreshDatabaseIsConsistent(t *testing.T) {
	db, _ := newDB(t, smallConfig())
	if err := db.CheckConsistency(); err != nil {
		t.Fatalf("fresh database inconsistent: %v", err)
	}
	if db.Warehouses() != 2 {
		t.Fatalf("warehouses = %d", db.Warehouses())
	}
	if db.TotalOrders() != 0 {
		t.Fatalf("fresh TotalOrders = %d, want 0", db.TotalOrders())
	}
}

func TestMixValidation(t *testing.T) {
	if err := tpcc.StandardMix.Validate(); err != nil {
		t.Fatalf("standard mix invalid: %v", err)
	}
	if err := tpcc.ReadDominatedMix.Validate(); err != nil {
		t.Fatalf("read-dominated mix invalid: %v", err)
	}
	bad := tpcc.Mix{NewOrder: 50, Payment: 49} // sums to 99
	if err := bad.Validate(); err == nil {
		t.Fatal("bad mix validated")
	}
}

func TestMixProportions(t *testing.T) {
	db, heap := newDB(t, smallConfig())
	sys := tmtest.StandardFactories(0)[0].New(heap, 1) // sgl: deterministic
	w, err := db.NewWorker(sys, 0, tpcc.StandardMix)
	if err != nil {
		t.Fatal(err)
	}
	const ops = 4000
	for i := 0; i < ops; i++ {
		w.Op()
	}
	frac := func(tt tpcc.TxType) float64 { return float64(w.Executed[tt]) / ops }
	if f := frac(tpcc.TxNewOrder); f < 0.40 || f > 0.50 {
		t.Errorf("new-order fraction = %v, want ≈0.45", f)
	}
	if f := frac(tpcc.TxPayment); f < 0.38 || f > 0.48 {
		t.Errorf("payment fraction = %v, want ≈0.43", f)
	}
	for _, tt := range []tpcc.TxType{tpcc.TxOrderStatus, tpcc.TxDelivery, tpcc.TxStockLevel} {
		if f := frac(tt); f < 0.02 || f > 0.07 {
			t.Errorf("%v fraction = %v, want ≈0.04", tt, f)
		}
	}
}

func TestTxTypeStrings(t *testing.T) {
	want := map[tpcc.TxType]string{
		tpcc.TxNewOrder:    "new-order",
		tpcc.TxPayment:     "payment",
		tpcc.TxOrderStatus: "order-status",
		tpcc.TxDelivery:    "delivery",
		tpcc.TxStockLevel:  "stock-level",
	}
	for tt, s := range want {
		if tt.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(tt), tt.String(), s)
		}
	}
	if !tpcc.TxOrderStatus.ReadOnly() || !tpcc.TxStockLevel.ReadOnly() {
		t.Error("read-only profiles misclassified")
	}
	if tpcc.TxNewOrder.ReadOnly() || tpcc.TxPayment.ReadOnly() || tpcc.TxDelivery.ReadOnly() {
		t.Error("update profiles misclassified")
	}
}

// The central integration test: run the standard mix concurrently under
// every concurrency control and verify the TPC-C consistency conditions
// afterwards. The paper's claim that TPC-C is serializable under SI means
// SI-HTM must pass the same checks as the serializable systems.
func TestConcurrentRunStaysConsistent(t *testing.T) {
	for _, f := range tmtest.StandardFactories(0) {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			cfg := smallConfig()
			db, heap := newDB(t, cfg)
			const threads = 4
			sys := f.New(heap, threads)
			var wg sync.WaitGroup
			for id := 0; id < threads; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					w, err := db.NewWorker(sys, id, tpcc.StandardMix)
					if err != nil {
						panic(err)
					}
					for i := 0; i < 150; i++ {
						w.Op()
					}
				}(id)
			}
			wg.Wait()
			if err := db.CheckConsistency(); err != nil {
				t.Fatalf("%s: %v", f.Name, err)
			}
			if db.TotalOrders() == 0 {
				t.Fatalf("%s: no orders entered", f.Name)
			}
		})
	}
}

// Same, for the read-dominated mix.
func TestReadDominatedRunStaysConsistent(t *testing.T) {
	for _, f := range tmtest.StandardFactories(0) {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			cfg := smallConfig()
			cfg.Warehouses = 1 // high contention
			db, heap := newDB(t, cfg)
			const threads = 4
			sys := f.New(heap, threads)
			var wg sync.WaitGroup
			for id := 0; id < threads; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					w, err := db.NewWorker(sys, id, tpcc.ReadDominatedMix)
					if err != nil {
						panic(err)
					}
					for i := 0; i < 150; i++ {
						w.Op()
					}
				}(id)
			}
			wg.Wait()
			if err := db.CheckConsistency(); err != nil {
				t.Fatalf("%s: %v", f.Name, err)
			}
		})
	}
}

// Delivery advances the undelivered queue and credits customers.
func TestDeliveryProgress(t *testing.T) {
	cfg := smallConfig()
	cfg.Warehouses = 1
	db, heap := newDB(t, cfg)
	sys := tmtest.StandardFactories(0)[0].New(heap, 1)
	w, err := db.NewWorker(sys, 0, tpcc.Mix{Delivery: 100})
	if err != nil {
		t.Fatal(err)
	}
	before := db.TotalOrders()
	for i := 0; i < 5; i++ {
		w.Op()
	}
	if db.TotalOrders() != before {
		t.Fatal("delivery entered orders")
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// A pure new-order run must wrap the ring safely and stay consistent.
func TestOrderRingWrapIsSafe(t *testing.T) {
	cfg := smallConfig()
	cfg.Warehouses = 1
	db, heap := newDB(t, cfg)
	sys := tmtest.StandardFactories(0)[0].New(heap, 1)
	w, err := db.NewWorker(sys, 0, tpcc.Mix{NewOrder: 100})
	if err != nil {
		t.Fatal(err)
	}
	// 64-slot rings × 10 districts; 800 new-orders guarantee wraps.
	for i := 0; i < 800; i++ {
		w.Op()
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := db.TotalOrders(); got != 800 {
		t.Fatalf("TotalOrders = %d, want 800", got)
	}
}

// Payments must balance: warehouse YTD grows by exactly the amounts paid.
func TestPaymentAccounting(t *testing.T) {
	cfg := smallConfig()
	cfg.Warehouses = 1
	db, heap := newDB(t, cfg)
	sys := tmtest.StandardFactories(0)[0].New(heap, 2)
	before := db.WarehouseYTD(0)
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w, err := db.NewWorker(sys, id, tpcc.Mix{Payment: 100})
			if err != nil {
				panic(err)
			}
			for i := 0; i < 200; i++ {
				w.Op()
			}
		}(id)
	}
	wg.Wait()
	if db.WarehouseYTD(0) <= before {
		t.Fatal("payments did not accumulate")
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Read-only profiles must not modify the database.
func TestReadOnlyProfilesDoNotWrite(t *testing.T) {
	cfg := smallConfig()
	db, heap := newDB(t, cfg)
	sys := tmtest.StandardFactories(0)[2].New(heap, 1) // si-htm: RO fast path would panic on writes
	w, err := db.NewWorker(sys, 0, tpcc.Mix{OrderStatus: 50, StockLevel: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		w.Op()
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if db.TotalOrders() != 0 {
		t.Fatal("read-only run entered orders")
	}
	s := sys.Collector().Snapshot()
	if s.CommitsRO != 200 {
		t.Fatalf("RO commits = %d, want 200", s.CommitsRO)
	}
}

func TestWorkerRejectsBadMix(t *testing.T) {
	db, heap := newDB(t, smallConfig())
	sys := tmtest.StandardFactories(0)[0].New(heap, 1)
	if _, err := db.NewWorker(sys, 0, tpcc.Mix{NewOrder: 10}); err == nil {
		t.Fatal("bad mix accepted")
	}
}

var _ = tm.KindUpdate
