package tpcc

import (
	"sihtm/internal/memsim"
	"sihtm/internal/rng"
	"sihtm/internal/tm"
)

// The five transaction profiles. All random choices are drawn before the
// body runs so that a retried body replays identical accesses (the
// standard TM idempotency contract); outputs are written to the worker's
// scratch so the compiler cannot elide the reads.

// newOrderParams carries one NewOrder's pre-drawn randomness.
type newOrderParams struct {
	w, d, c int
	entryD  uint64
	items   [MaxOrderLines]struct {
		id      int
		supplyW int
		qty     uint64
	}
	olCnt int
}

func (db *DB) drawNewOrder(r *rng.Rand, homeW int, seq uint64) newOrderParams {
	p := newOrderParams{
		w:      homeW,
		d:      r.Intn(DistrictsPerWarehouse),
		c:      r.CustomerID(db.cfg.CustomersPerDistrict(), db.cCust) - 1,
		olCnt:  r.IntRange(MinOrderLines, MaxOrderLines),
		entryD: seq,
	}
	for i := 0; i < p.olCnt; i++ {
		p.items[i].id = r.ItemID(db.cfg.Items(), db.cItem) - 1
		p.items[i].supplyW = homeW
		if len(db.ws) > 1 && r.Bool(1) { // 1% remote supply
			for {
				sw := r.Intn(len(db.ws))
				if sw != homeW {
					p.items[i].supplyW = sw
					break
				}
			}
		}
		p.items[i].qty = uint64(r.IntRange(1, 10))
	}
	return p
}

// NewOrder is TPC-C's order-entry transaction (≈45% of the standard mix).
// Its footprint — district row, customer row, ~10 stock lines, an order
// row and ~8 order-line lines — is what makes "roughly half" of the
// standard mix large, per the paper.
func (db *DB) newOrder(ops tm.Ops, p newOrderParams) {
	wh := &db.ws[p.w]
	nc := db.cfg.CustomersPerDistrict()

	wTaxV := ops.Read(wh.w + wTax)
	drow := wh.districts.row(p.d)
	dTaxV := ops.Read(drow + dTax)
	oid := ops.Read(drow + dNextOID)
	ops.Write(drow+dNextOID, oid+1)

	crow := wh.customers.row(p.d*nc + p.c)
	discount := ops.Read(crow + cDiscount)

	slot := int(oid) % db.cfg.OrderRing
	orow := wh.orders[p.d].row(slot)
	ops.Write(orow+oCID, uint64(p.c))
	ops.Write(orow+oEntryD, p.entryD)
	ops.Write(orow+oCarrier, 0)
	ops.Write(orow+oOLCnt, uint64(p.olCnt))
	allLocal := uint64(1)

	var total uint64
	for i := 0; i < p.olCnt; i++ {
		it := p.items[i]
		irow := db.items.row(it.id)
		price := ops.Read(irow + iPrice)

		srow := db.ws[it.supplyW].stock.row(it.id)
		q := ops.Read(srow + sQuantity)
		if q >= it.qty+10 {
			q -= it.qty
		} else {
			q = q - it.qty + 91
		}
		ops.Write(srow+sQuantity, q)
		ops.Write(srow+sYTD, ops.Read(srow+sYTD)+it.qty)
		ops.Write(srow+sOrderCnt, ops.Read(srow+sOrderCnt)+1)
		if it.supplyW != p.w {
			ops.Write(srow+sRemoteCnt, ops.Read(srow+sRemoteCnt)+1)
			allLocal = 0
		}

		amount := it.qty * price
		total += amount
		olrow := wh.lines[p.d].row(slot*MaxOrderLines + i)
		ops.Write(olrow+olIID, uint64(it.id))
		ops.Write(olrow+olSupplyW, uint64(it.supplyW))
		ops.Write(olrow+olQuantity, it.qty)
		ops.Write(olrow+olAmount, amount)
		ops.Write(olrow+olDeliverD, 0)
		ops.Write(olrow+olDistHash, ops.Read(srow+sDistHash))
	}
	ops.Write(orow+oAllLocal, allLocal)
	// total with taxes and discount, in the spec's formula shape.
	total = total * (10000 - discount) / 10000
	total = total * (10000 + wTaxV + dTaxV) / 10000
	ops.Write(orow+oTotal, total)
	ops.Write(crow+cLastOID, oid+1)
}

// paymentParams carries one Payment's pre-drawn randomness.
type paymentParams struct {
	w, d       int // paying district
	cw, cd, c  int // customer coordinates (15% remote)
	amount     uint64
	byLastName bool
}

func (db *DB) drawPayment(r *rng.Rand, homeW int) paymentParams {
	p := paymentParams{
		w:      homeW,
		d:      r.Intn(DistrictsPerWarehouse),
		amount: uint64(r.IntRange(100, 500000)),
	}
	p.cw, p.cd = p.w, p.d
	if len(db.ws) > 1 && r.Bool(15) {
		for {
			cw := r.Intn(len(db.ws))
			if cw != homeW {
				p.cw = cw
				break
			}
		}
		p.cd = r.Intn(DistrictsPerWarehouse)
	}
	nc := db.cfg.CustomersPerDistrict()
	if r.Bool(60) {
		p.byLastName = true
		p.c = db.customerByName(p.cw, p.cd, r)
	} else {
		p.c = r.CustomerID(nc, db.cCust) - 1
	}
	return p
}

// customerByName picks the spec's "position n/2 rounded up" customer
// among those sharing a NURand last name, via the static side index.
func (db *DB) customerByName(w, d int, r *rng.Rand) int {
	name := r.LastNameNum(db.cLast)
	ids := db.nameIndex[w][d][name]
	for len(ids) == 0 { // scaled-down DBs may miss some names; probe on
		name = (name + 1) % 1000
		ids = db.nameIndex[w][d][name]
	}
	return ids[(len(ids)+1)/2-1]
}

// payment is TPC-C's payment transaction (≈43% of the standard mix): a
// small update transaction whose warehouse-YTD write is the global hot
// spot under high contention.
func (db *DB) payment(ops tm.Ops, p paymentParams) {
	wh := &db.ws[p.w]
	ops.Write(wh.w+wYTD, ops.Read(wh.w+wYTD)+p.amount)
	drow := wh.districts.row(p.d)
	ops.Write(drow+dYTD, ops.Read(drow+dYTD)+p.amount)

	nc := db.cfg.CustomersPerDistrict()
	crow := db.ws[p.cw].customers.row(p.cd*nc + p.c)
	ops.Write(crow+cBalance, ops.Read(crow+cBalance)-p.amount)
	ops.Write(crow+cYTDPayment, ops.Read(crow+cYTDPayment)+p.amount)
	ops.Write(crow+cPaymentCnt, ops.Read(crow+cPaymentCnt)+1)
	if ops.Read(crow+cCredit) == 1 { // bad credit: rewrite C_DATA
		old := ops.Read(crow + cDataLine)
		ops.Write(crow+cDataLine, hashStr(4, old, p.amount, uint64(p.c)))
		ops.Write(crow+cDataLine+1, uint64(p.w)<<32|uint64(p.d))
	}

	hIdx := ops.Read(wh.w + wHHead)
	ops.Write(wh.w+wHHead, hIdx+1)
	hrow := wh.history.row(int(hIdx) % db.cfg.HistoryRing)
	ops.Write(hrow+hCID, uint64(p.c))
	ops.Write(hrow+hCDID, uint64(p.cd))
	ops.Write(hrow+hCWID, uint64(p.cw))
	ops.Write(hrow+hDID, uint64(p.d))
	ops.Write(hrow+hWID, uint64(p.w))
	ops.Write(hrow+hAmount, p.amount)
}

// orderStatusParams carries one Order-Status's randomness.
type orderStatusParams struct {
	w, d, c int
}

func (db *DB) drawOrderStatus(r *rng.Rand, homeW int) orderStatusParams {
	p := orderStatusParams{w: homeW, d: r.Intn(DistrictsPerWarehouse)}
	nc := db.cfg.CustomersPerDistrict()
	if r.Bool(60) {
		p.c = db.customerByName(p.w, p.d, r)
	} else {
		p.c = r.CustomerID(nc, db.cCust) - 1
	}
	return p
}

// orderStatus is the read-only customer-order inquiry (80% of the paper's
// read-dominated mix). It returns a checksum of everything read so the
// reads cannot be optimised away.
func (db *DB) orderStatus(ops tm.Ops, p orderStatusParams) uint64 {
	wh := &db.ws[p.w]
	nc := db.cfg.CustomersPerDistrict()
	crow := wh.customers.row(p.d*nc + p.c)
	sum := ops.Read(crow + cBalance)
	lastOID := ops.Read(crow + cLastOID)
	if lastOID == 0 {
		return sum
	}
	oid := lastOID - 1
	drow := wh.districts.row(p.d)
	next := ops.Read(drow + dNextOID)
	if next > uint64(db.cfg.OrderRing) && oid < next-uint64(db.cfg.OrderRing) {
		return sum // order rotated out of the ring
	}
	slot := int(oid) % db.cfg.OrderRing
	orow := wh.orders[p.d].row(slot)
	sum += ops.Read(orow + oEntryD)
	sum += ops.Read(orow + oCarrier)
	olCnt := ops.Read(orow + oOLCnt)
	for i := 0; i < int(olCnt) && i < MaxOrderLines; i++ {
		olrow := wh.lines[p.d].row(slot*MaxOrderLines + i)
		sum += ops.Read(olrow+olIID) + ops.Read(olrow+olSupplyW) +
			ops.Read(olrow+olQuantity) + ops.Read(olrow+olAmount) +
			ops.Read(olrow+olDeliverD)
	}
	return sum
}

// deliveryParams carries one district-delivery's randomness.
type deliveryParams struct {
	w, d      int
	carrier   uint64
	deliveryD uint64
}

// deliverDistrict delivers the oldest undelivered order of one district
// (spec clause 2.7.4.2 permits splitting Delivery into per-district
// transactions). Returns false if the district had no undelivered order.
func (db *DB) deliverDistrict(ops tm.Ops, p deliveryParams) bool {
	wh := &db.ws[p.w]
	nc := db.cfg.CustomersPerDistrict()
	drow := wh.districts.row(p.d)
	oldest := ops.Read(drow + dOldestNO)
	next := ops.Read(drow + dNextOID)
	if next > uint64(db.cfg.OrderRing) && oldest < next-uint64(db.cfg.OrderRing) {
		// Producers lapped the ring; skip forgotten slots.
		oldest = next - uint64(db.cfg.OrderRing)
	}
	if oldest >= next {
		return false
	}
	ops.Write(drow+dOldestNO, oldest+1)

	slot := int(oldest) % db.cfg.OrderRing
	orow := wh.orders[p.d].row(slot)
	cid := ops.Read(orow + oCID)
	olCnt := ops.Read(orow + oOLCnt)
	ops.Write(orow+oCarrier, p.carrier)

	var total uint64
	for i := 0; i < int(olCnt) && i < MaxOrderLines; i++ {
		olrow := wh.lines[p.d].row(slot*MaxOrderLines + i)
		total += ops.Read(olrow + olAmount)
		ops.Write(olrow+olDeliverD, p.deliveryD)
	}
	crow := wh.customers.row(p.d*nc + int(cid)%nc)
	ops.Write(crow+cBalance, ops.Read(crow+cBalance)+total)
	ops.Write(crow+cDeliveryCnt, ops.Read(crow+cDeliveryCnt)+1)
	return true
}

// stockLevelParams carries one Stock-Level's randomness.
type stockLevelParams struct {
	w, d      int
	threshold uint64
}

// stockLevel is the read-only inventory scan: the last 20 orders'
// order-lines and their stock rows — by far the largest read footprint in
// TPC-C (hundreds of cache lines), the transaction that plain HTM cannot
// run and SI-HTM runs uninstrumented. seen is the worker's scratch for
// distinct-item filtering; it is reset here so retried bodies stay
// correct.
func (db *DB) stockLevel(ops tm.Ops, p stockLevelParams, seen []bool) int {
	wh := &db.ws[p.w]
	drow := wh.districts.row(p.d)
	next := ops.Read(drow + dNextOID)
	first := ops.Read(drow + dInitialOID)
	lo := uint64(0)
	if next > 20 {
		lo = next - 20
	}
	if lo < first-uint64(min(int(first), db.cfg.CustomersPerDistrict())) {
		lo = 0
	}
	for i := range seen {
		seen[i] = false
	}
	lowStock := 0
	for oid := lo; oid < next; oid++ {
		slot := int(oid) % db.cfg.OrderRing
		orow := wh.orders[p.d].row(slot)
		olCnt := ops.Read(orow + oOLCnt)
		for i := 0; i < int(olCnt) && i < MaxOrderLines; i++ {
			olrow := wh.lines[p.d].row(slot*MaxOrderLines + i)
			iid := int(ops.Read(olrow + olIID))
			if iid >= len(seen) || seen[iid] {
				continue
			}
			seen[iid] = true
			if ops.Read(wh.stock.row(iid)+sQuantity) < p.threshold {
				lowStock++
			}
		}
	}
	return lowStock
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ = memsim.WordsPerLine // keep the import pinned for layout constants
