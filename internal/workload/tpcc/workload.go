package tpcc

import (
	"fmt"

	"sihtm/internal/rng"
	"sihtm/internal/tm"
)

// TxType identifies a TPC-C transaction profile.
type TxType int

// The five profiles.
const (
	TxNewOrder TxType = iota
	TxPayment
	TxOrderStatus
	TxDelivery
	TxStockLevel
	NumTxTypes
)

// String implements fmt.Stringer.
func (t TxType) String() string {
	switch t {
	case TxNewOrder:
		return "new-order"
	case TxPayment:
		return "payment"
	case TxOrderStatus:
		return "order-status"
	case TxDelivery:
		return "delivery"
	case TxStockLevel:
		return "stock-level"
	default:
		return fmt.Sprintf("TxType(%d)", int(t))
	}
}

// ReadOnly reports whether the profile performs no shared writes.
func (t TxType) ReadOnly() bool { return t == TxOrderStatus || t == TxStockLevel }

// Mix is a transaction mix in percent (summing to 100), in the flag order
// of the paper's artifact: -s stock-level, -d delivery, -o order-status,
// -p payment, -r new-order.
type Mix struct {
	StockLevel  int
	Delivery    int
	OrderStatus int
	Payment     int
	NewOrder    int
}

// StandardMix is the paper's `-s 4 -d 4 -o 4 -p 43 -r 45`.
var StandardMix = Mix{StockLevel: 4, Delivery: 4, OrderStatus: 4, Payment: 43, NewOrder: 45}

// ReadDominatedMix is the paper's `-s 4 -d 4 -o 80 -p 4 -r 8`.
var ReadDominatedMix = Mix{StockLevel: 4, Delivery: 4, OrderStatus: 80, Payment: 4, NewOrder: 8}

// Validate checks the mix sums to 100.
func (m Mix) Validate() error {
	if s := m.StockLevel + m.Delivery + m.OrderStatus + m.Payment + m.NewOrder; s != 100 {
		return fmt.Errorf("tpcc: mix sums to %d, want 100", s)
	}
	return nil
}

// pick draws a profile according to the mix.
func (m Mix) pick(r *rng.Rand) TxType {
	v := r.Intn(100)
	switch {
	case v < m.NewOrder:
		return TxNewOrder
	case v < m.NewOrder+m.Payment:
		return TxPayment
	case v < m.NewOrder+m.Payment+m.OrderStatus:
		return TxOrderStatus
	case v < m.NewOrder+m.Payment+m.OrderStatus+m.Delivery:
		return TxDelivery
	default:
		return TxStockLevel
	}
}

// Worker drives one thread's share of the benchmark. Each worker has a
// home warehouse (thread mod W, as in the paper's thread-pinning runs),
// its own generator, and scratch buffers so transaction bodies allocate
// nothing.
type Worker struct {
	db     *DB
	sys    tm.System
	thread int
	mix    Mix
	r      *rng.Rand
	homeW  int
	seq    uint64
	seen   []bool // stock-level distinct-item scratch

	// Executed counts committed transactions per profile.
	Executed [NumTxTypes]uint64
}

// NewWorker builds the driver for one thread. Its generator is thread's
// stream of the database seed (rng.Stream): the population used
// rng.StreamPopulate of the same seed, so one Config.Seed reproduces
// the whole benchmark — load and execution — deterministically.
func (db *DB) NewWorker(sys tm.System, thread int, mix Mix) (*Worker, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	return &Worker{
		db:     db,
		sys:    sys,
		thread: thread,
		mix:    mix,
		r:      rng.Stream(db.cfg.Seed, uint64(thread)),
		homeW:  thread % len(db.ws),
		seen:   make([]bool, db.cfg.Items()),
	}, nil
}

// Op draws one transaction from the mix and runs it to commit, returning
// its profile. Delivery counts as one Op but runs its ten district legs
// as separate transactions, as spec clause 2.7.4.2 permits.
func (w *Worker) Op() TxType {
	t := w.mix.pick(w.r)
	switch t {
	case TxNewOrder:
		w.seq++
		p := w.db.drawNewOrder(w.r, w.homeW, uint64(w.thread)<<32|w.seq)
		w.sys.Atomic(w.thread, tm.KindUpdate, func(ops tm.Ops) {
			w.db.newOrder(ops, p)
		})
	case TxPayment:
		p := w.db.drawPayment(w.r, w.homeW)
		w.sys.Atomic(w.thread, tm.KindUpdate, func(ops tm.Ops) {
			w.db.payment(ops, p)
		})
	case TxOrderStatus:
		p := w.db.drawOrderStatus(w.r, w.homeW)
		w.sys.Atomic(w.thread, tm.KindReadOnly, func(ops tm.Ops) {
			w.db.orderStatus(ops, p)
		})
	case TxDelivery:
		carrier := uint64(w.r.IntRange(1, 10))
		w.seq++
		for d := 0; d < DistrictsPerWarehouse; d++ {
			p := deliveryParams{w: w.homeW, d: d, carrier: carrier, deliveryD: uint64(w.thread)<<32 | w.seq}
			w.sys.Atomic(w.thread, tm.KindUpdate, func(ops tm.Ops) {
				w.db.deliverDistrict(ops, p)
			})
		}
	case TxStockLevel:
		p := stockLevelParams{
			w:         w.homeW,
			d:         w.r.Intn(DistrictsPerWarehouse),
			threshold: uint64(w.r.IntRange(10, 20)),
		}
		w.sys.Atomic(w.thread, tm.KindReadOnly, func(ops tm.Ops) {
			w.db.stockLevel(ops, p, w.seen)
		})
	}
	w.Executed[t]++
	return t
}
