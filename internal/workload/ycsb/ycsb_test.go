package ycsb

import (
	"testing"

	"sihtm/internal/workload/engine"
)

func TestSpecs(t *testing.T) {
	for _, w := range []Workload{A, B, C} {
		spec, err := Spec(Config{Workload: w, Keys: 1000, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: invalid spec: %v", w, err)
		}
		if spec.Dist.Kind != engine.DistZipfian || spec.Dist.Theta != DefaultTheta {
			t.Errorf("%s: default distribution %v, want zipf(%v)", w, spec.Dist, DefaultTheta)
		}
	}
	if _, err := Spec(Config{Workload: "z", Keys: 10}); err == nil {
		t.Error("unknown workload accepted")
	}
}

// C must be entirely read-only — the property that routes all its
// transactions through SI-HTM's fast path.
func TestCIsReadOnly(t *testing.T) {
	mix, err := C.Mix()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mix {
		if !m.Op.ReadOnly() {
			t.Errorf("C contains writing op %s", m.Op)
		}
	}
}

func TestConfigOverrides(t *testing.T) {
	spec, err := Spec(Config{Workload: B, Keys: 100, Theta: 0.5, OpsPerTx: 4, ScanLen: 9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Dist.Theta != 0.5 || spec.OpsPerTxMin != 4 || spec.ScanLen != 9 {
		t.Errorf("overrides lost: %+v", spec)
	}
	spec, err = Spec(Config{Workload: A, Keys: 100, UniformKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Dist.Kind != engine.DistUniform {
		t.Errorf("UniformKeys ignored: %+v", spec.Dist)
	}
}
