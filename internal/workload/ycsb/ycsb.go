// Package ycsb defines YCSB-style transactional key-value workloads as
// engine specs: the A/B/C core mixes (update-heavy, read-mostly,
// read-only) grouped into multi-operation transactions over a Zipfian
// keyspace, runnable on either engine backend (the chained hash map or
// the B+tree index).
//
// The translation from YCSB's single-op requests to transactions: each
// transaction batches OpsPerTx operations of the mix, so the paper's
// capacity argument applies — a transaction's footprint is the union of
// the cache lines its batched operations touch, and read-only batches
// ride SI-HTM's uninstrumented fast path.
package ycsb

import (
	"fmt"

	"sihtm/internal/workload/engine"
)

// DefaultTheta is YCSB's default Zipfian skew.
const DefaultTheta = 0.99

// Workload names a core YCSB mix.
type Workload string

// The supported mixes.
const (
	// A is the update-heavy mix: 50% reads, 50% read-modify-writes.
	A Workload = "a"
	// B is the read-mostly mix: 95% reads, 5% read-modify-writes.
	B Workload = "b"
	// C is the read-only mix: point reads plus short scans (the
	// scan-flavoured C variant; every transaction is read-only).
	C Workload = "c"
)

// Mix returns the op mix of a workload.
func (w Workload) Mix() ([]engine.MixEntry, error) {
	switch w {
	case A:
		return []engine.MixEntry{
			{Op: engine.OpRead, Percent: 50},
			{Op: engine.OpReadModifyWrite, Percent: 50},
		}, nil
	case B:
		return []engine.MixEntry{
			{Op: engine.OpRead, Percent: 95},
			{Op: engine.OpReadModifyWrite, Percent: 5},
		}, nil
	case C:
		return []engine.MixEntry{
			{Op: engine.OpRead, Percent: 90},
			{Op: engine.OpScan, Percent: 10},
		}, nil
	default:
		return nil, fmt.Errorf("ycsb: unknown workload %q (have a, b, c)", w)
	}
}

// Config parameterises a YCSB spec.
type Config struct {
	// Workload selects the mix (A, B, C).
	Workload Workload
	// Keys is the keyspace size; all keys are populated.
	Keys int
	// Theta is the Zipfian skew (0 = uniform; DefaultTheta if left 0
	// and UniformKeys is false).
	Theta float64
	// UniformKeys forces the uniform distribution (Theta 0 otherwise
	// defaults to DefaultTheta).
	UniformKeys bool
	// OpsPerTx is the operations batched per transaction (default 8).
	OpsPerTx int
	// ScanLen is the entries per scan op (default 16).
	ScanLen int
	// Seed reproduces the run.
	Seed uint64
}

// Spec builds the engine spec for the configuration.
func Spec(c Config) (engine.Spec, error) {
	mix, err := c.Workload.Mix()
	if err != nil {
		return engine.Spec{}, err
	}
	if c.OpsPerTx <= 0 {
		c.OpsPerTx = 8
	}
	dist := engine.Dist{Kind: engine.DistZipfian, Theta: c.Theta}
	if c.UniformKeys {
		dist = engine.Dist{Kind: engine.DistUniform}
	} else if c.Theta == 0 {
		dist.Theta = DefaultTheta
	}
	return engine.Spec{
		Name:        "ycsb-" + string(c.Workload),
		Keys:        c.Keys,
		Dist:        dist,
		Mix:         mix,
		OpsPerTxMin: c.OpsPerTx,
		ScanLen:     c.ScanLen,
		Seed:        c.Seed,
	}, nil
}
