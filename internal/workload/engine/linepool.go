package engine

import "sihtm/internal/memsim"

// LinePool manages single-cache-line nodes with the cursor-based
// recycling protocol the workloads share: spares are allocated outside
// transactions (Prepare); an attempt consumes them through the cursor
// (Peek/Consume or Take) and records the nodes it unlinked (Release);
// aborted attempts rewind with Reset and reuse the very same nodes
// (their tentative contents were never published); Commit permanently
// consumes the committed attempt's takes and recycles its releases.
// Used by the hash-map backend session and the vacation workers.
type LinePool struct {
	heap     *memsim.Heap
	spares   []memsim.Addr
	cursor   int
	released []memsim.Addr
}

// NewLinePool creates a pool over heap.
func NewLinePool(heap *memsim.Heap) *LinePool { return &LinePool{heap: heap} }

// Prepare tops the spare list up to n nodes. Call only outside
// transactions (heap allocation is not transactional).
func (p *LinePool) Prepare(n int) {
	for len(p.spares) < n {
		p.spares = append(p.spares, p.heap.AllocLine())
	}
}

// Reset rewinds the attempt state; call at the top of each transaction
// body so retried attempts replay over the same nodes.
func (p *LinePool) Reset() {
	p.cursor = 0
	p.released = p.released[:0]
}

// Peek returns the next spare without consuming it. Running dry
// mid-transaction panics, pointing at an undersized Prepare.
func (p *LinePool) Peek() memsim.Addr {
	if p.cursor >= len(p.spares) {
		panic("engine: line pool exhausted inside a transaction; Prepare undersized")
	}
	return p.spares[p.cursor]
}

// Consume advances past the node Peek returned.
func (p *LinePool) Consume() { p.cursor++ }

// Take consumes and returns the next spare.
func (p *LinePool) Take() memsim.Addr {
	n := p.Peek()
	p.Consume()
	return n
}

// Release records a node the attempt unlinked, to be recycled at
// Commit.
func (p *LinePool) Release(a memsim.Addr) { p.released = append(p.released, a) }

// Commit consumes the nodes the committed attempt took and recycles the
// ones it released; call after the transaction committed.
func (p *LinePool) Commit() {
	p.spares = p.spares[:copy(p.spares, p.spares[p.cursor:])]
	p.spares = append(p.spares, p.released...)
	p.cursor = 0
	p.released = p.released[:0]
}
