package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"sihtm/internal/tm"
)

// ReplicaBackend is the cluster-aware remote backend: writes go to the
// leader, read-only traffic is spread round-robin over the followers'
// replayed snapshots. The routing unit is the operation class, decided
// where the op is issued:
//
//   - A read-only transaction (the ycsb-c shape) defers onto one
//     follower session and ships as one TXN — atomic on that
//     follower's snapshot at its published watermark.
//   - Any mutating op (sync or async) goes to the leader; a mixed
//     transaction therefore splits into a leader TXN (the writes, with
//     server-side RMW reading leader-fresh state) and a follower TXN
//     (the reads). Reads may then trail writes by the replication lag
//     — the stale-but-consistent snapshot semantics replica reads buy
//     their scaling with.
//
// SyncReads restores read-your-writes at a latency cost: every
// follower-bound read first waits until each follower's watermark has
// caught the leader's durable frontier. The conformance suite runs in
// that mode; throughput scenarios run without it.
type ReplicaBackend struct {
	leader    *RemoteBackend
	followers []*RemoteBackend
	next      atomic.Uint32

	// SyncReads gates follower reads on catch-up (see above).
	SyncReads bool
	// CatchupTimeout bounds one SyncReads wait (default 10s).
	CatchupTimeout time.Duration
}

// DialReplica connects to a leader and its followers, with conns
// pipelined connections to each node.
func DialReplica(leaderAddr string, followerAddrs []string, conns int) (*ReplicaBackend, error) {
	if len(followerAddrs) == 0 {
		return nil, fmt.Errorf("engine: replica backend needs at least one follower")
	}
	leader, err := DialRemote(leaderAddr, conns)
	if err != nil {
		return nil, err
	}
	b := &ReplicaBackend{leader: leader, CatchupTimeout: 10 * time.Second}
	for _, addr := range followerAddrs {
		f, err := DialRemote(addr, conns)
		if err != nil {
			b.Close()
			return nil, err
		}
		b.followers = append(b.followers, f)
	}
	return b, nil
}

// Close tears down every node's connection pool.
func (b *ReplicaBackend) Close() error {
	first := b.leader.Close()
	for _, f := range b.followers {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Name implements Backend.
func (b *ReplicaBackend) Name() string { return "replica" }

// Leader exposes the leader pool (stats, ctrl).
func (b *ReplicaBackend) Leader() *RemoteBackend { return b.leader }

// Followers exposes the follower pools.
func (b *ReplicaBackend) Followers() []*RemoteBackend { return b.followers }

// NewSession implements Backend: a routing session over one leader
// session and one follower session (followers assigned round-robin).
func (b *ReplicaBackend) NewSession() Session {
	f := b.followers[int(b.next.Add(1)-1)%len(b.followers)]
	return &replicaSession{
		b: b,
		w: b.leader.NewSession().(*remoteSession),
		r: f.NewSession().(*remoteSession),
	}
}

// Direct implements Backend (no local heap; panics on use, same as the
// remote backend).
func (b *ReplicaBackend) Direct() tm.Ops { return remoteNoOps{} }

// Check implements Backend: the leader's structural check, then — after
// waiting for every follower to catch the leader's durable frontier —
// each follower's check over its replayed heap. A replication bug that
// corrupts a follower's structure surfaces here.
func (b *ReplicaBackend) Check() error {
	if err := b.leader.Check(); err != nil {
		return err
	}
	if err := b.WaitCatchup(b.catchupTimeout()); err != nil {
		return err
	}
	for i, f := range b.followers {
		if err := f.Check(); err != nil {
			return fmt.Errorf("follower %d: %w", i, err)
		}
	}
	return nil
}

func (b *ReplicaBackend) catchupTimeout() time.Duration {
	if b.CatchupTimeout > 0 {
		return b.CatchupTimeout
	}
	return 10 * time.Second
}

// LeaderSeq fetches the leader's durable frontier.
func (b *ReplicaBackend) LeaderSeq() (uint64, error) {
	st, err := b.leader.Stats()
	if err != nil {
		return 0, err
	}
	if st.Repl == nil {
		return 0, fmt.Errorf("engine: leader reports no replication state")
	}
	return st.Repl.DurableSeq, nil
}

// WaitCatchup blocks until every follower's watermark reaches the
// leader's current durable frontier (or the timeout expires).
func (b *ReplicaBackend) WaitCatchup(timeout time.Duration) error {
	target, err := b.LeaderSeq()
	if err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)
	for _, f := range b.followers {
		for {
			st, err := f.Stats()
			if err != nil {
				return err
			}
			if st.Repl != nil && st.Repl.Watermark >= target {
				break
			}
			if time.Now().After(deadline) {
				var wm uint64
				if st.Repl != nil {
					wm = st.Repl.Watermark
				}
				return fmt.Errorf("engine: follower stuck at watermark %d, leader durable %d", wm, target)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	return nil
}

var _ Backend = (*ReplicaBackend)(nil)

// replicaSession routes one thread's ops: w is the leader session (all
// mutations), r the follower session (all reads).
type replicaSession struct {
	b *ReplicaBackend
	w *remoteSession
	r *remoteSession
}

// Prepare implements Session (server-side on both nodes).
func (s *replicaSession) Prepare(int) {}

// Reset implements Session.
func (s *replicaSession) Reset() {
	s.w.Reset()
	s.r.Reset()
}

// Commit implements Session: the leader's writes flush first (their
// acknowledgement pins them at or below the leader's durable frontier),
// then the follower's reads — after catch-up in SyncReads mode, so the
// read TXN observes the writes this transaction just made.
func (s *replicaSession) Commit() {
	s.w.Commit()
	if len(s.r.pending) > 0 {
		s.waitSync()
	}
	s.r.Commit()
}

// waitSync is the SyncReads gate before a follower-bound read.
func (s *replicaSession) waitSync() {
	if !s.b.SyncReads {
		return
	}
	if err := s.b.WaitCatchup(s.b.catchupTimeout()); err != nil {
		panic(fmt.Sprintf("engine: replica session: %v", err))
	}
}

// Read implements Session (synchronous, follower).
func (s *replicaSession) Read(ops tm.Ops, key uint64) (uint64, bool) {
	s.waitSync()
	return s.r.Read(ops, key)
}

// Insert implements Session (synchronous, leader).
func (s *replicaSession) Insert(ops tm.Ops, key, value uint64) bool {
	return s.w.Insert(ops, key, value)
}

// Delete implements Session (synchronous, leader).
func (s *replicaSession) Delete(ops tm.Ops, key uint64) bool {
	return s.w.Delete(ops, key)
}

// Scan implements Session (synchronous, follower).
func (s *replicaSession) Scan(ops tm.Ops, key uint64, n int) int {
	s.waitSync()
	return s.r.Scan(ops, key, n)
}

// ReadAsync implements AsyncSession (follower).
func (s *replicaSession) ReadAsync(key uint64) { s.r.ReadAsync(key) }

// ReadModifyWriteAsync implements AsyncSession (leader: the dependent
// write must read leader-fresh state).
func (s *replicaSession) ReadModifyWriteAsync(key, delta uint64) {
	s.w.ReadModifyWriteAsync(key, delta)
}

// InsertAsync implements AsyncSession (leader).
func (s *replicaSession) InsertAsync(key, value uint64) { s.w.InsertAsync(key, value) }

// DeleteAsync implements AsyncSession (leader).
func (s *replicaSession) DeleteAsync(key uint64) { s.w.DeleteAsync(key) }

// ScanAsync implements AsyncSession (follower).
func (s *replicaSession) ScanAsync(key uint64, n int) { s.r.ScanAsync(key, n) }

var _ AsyncSession = (*replicaSession)(nil)
