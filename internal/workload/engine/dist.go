package engine

import (
	"fmt"
	"math"

	"sihtm/internal/rng"
)

// KeyDraw draws keys in [0, n) according to a Dist. Implementations are
// immutable after construction and safe to share across workers; all
// entropy comes from the caller's generator, so draws stay per-thread
// deterministic. Exported so scenario packages built on the engine
// (internal/workload/vacation) share the same distribution machinery.
type KeyDraw interface {
	Draw(r *rng.Rand) uint64
}

// Check validates the distribution's parameters without building a
// sampler (Spec.Validate uses it to avoid paying the Zipfian CDF
// construction twice).
func (d Dist) Check() error {
	switch d.Kind {
	case DistUniform:
		return nil
	case DistZipfian:
		if d.Theta != 0 && (d.Theta < 0 || d.Theta >= 1) {
			return fmt.Errorf("engine: zipfian theta must be in [0, 1), got %v", d.Theta)
		}
		return nil
	case DistHotSet:
		if d.HotKeysPercent <= 0 || d.HotKeysPercent >= 100 ||
			d.HotOpsPercent < 0 || d.HotOpsPercent > 100 {
			return fmt.Errorf("engine: hotset wants 0 < keys%% < 100 and 0 <= ops%% <= 100, got %d/%d",
				d.HotKeysPercent, d.HotOpsPercent)
		}
		return nil
	default:
		return fmt.Errorf("engine: unknown distribution kind %d", int(d.Kind))
	}
}

// NewKeyDraw builds the sampler for a distribution over [0, n).
func NewKeyDraw(d Dist, n int) (KeyDraw, error) {
	if n <= 0 {
		return nil, fmt.Errorf("engine: distribution needs a positive keyspace, got %d", n)
	}
	if err := d.Check(); err != nil {
		return nil, err
	}
	switch d.Kind {
	case DistZipfian:
		if d.Theta == 0 {
			return uniformDist{n: uint64(n)}, nil
		}
		return newZipf(n, d.Theta), nil
	case DistHotSet:
		hot := uint64(n) * uint64(d.HotKeysPercent) / 100
		if hot == 0 {
			hot = 1
		}
		return hotSetDist{hot: hot, n: uint64(n), hotOps: d.HotOpsPercent}, nil
	default:
		return uniformDist{n: uint64(n)}, nil
	}
}

type uniformDist struct{ n uint64 }

func (u uniformDist) Draw(r *rng.Rand) uint64 { return r.Uint64() % u.n }

// hotSetDist sends hotOps% of draws to [0, hot), the rest to [hot, n).
type hotSetDist struct {
	hot, n uint64
	hotOps int
}

func (h hotSetDist) Draw(r *rng.Rand) uint64 {
	if r.Bool(h.hotOps) || h.hot >= h.n {
		return r.Uint64() % h.hot
	}
	return h.hot + r.Uint64()%(h.n-h.hot)
}

// zipfDist draws rank k in [0, n) with probability
// 1 / ((k+1)^θ · ζ(n, θ)) — the YCSB zipfian popularity law with rank 0
// the hottest key — by exact inversion of the precomputed CDF (YCSB's
// closed-form approximation misstates mid-rank masses by >10%, which
// would fail any honest distribution test). Construction is O(n); a
// draw is one uniform variate plus an O(log n) binary search.
type zipfDist struct {
	n     uint64
	theta float64
	zetan float64
	cum   []float64 // cum[k] = P(rank <= k)
}

func newZipf(n int, theta float64) *zipfDist {
	zetan := 0.0
	for i := 1; i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	z := &zipfDist{n: uint64(n), theta: theta, zetan: zetan, cum: make([]float64, n)}
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += 1 / (math.Pow(float64(k+1), theta) * zetan)
		z.cum[k] = acc
	}
	z.cum[n-1] = 1 // absorb accumulated rounding
	return z
}

func (z *zipfDist) Draw(r *rng.Rand) uint64 {
	u := r.Float64()
	// First rank with cum[k] > u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint64(lo)
}

// RankProbability returns the theoretical probability of rank k — the
// oracle the distribution-sanity tests compare empirical frequencies
// against.
func (z *zipfDist) RankProbability(k uint64) float64 {
	return 1 / (math.Pow(float64(k+1), z.theta) * z.zetan)
}
