package engine

import (
	"fmt"

	"sihtm/internal/index/btree"
	"sihtm/internal/memsim"
	"sihtm/internal/tm"
)

// BTreeBackend drives the transactional B+tree index (ordered; scans
// stream the leaf chain at ~2 cache lines per 14 entries).
type BTreeBackend struct {
	heap *memsim.Heap
	t    *btree.Tree
}

// NewBTreeBackend builds an empty tree on heap.
func NewBTreeBackend(heap *memsim.Heap) *BTreeBackend {
	return &BTreeBackend{heap: heap, t: btree.New(heap)}
}

// BTreeHeapLines estimates the heap a spec needs on this backend: ~2
// lines per node at half-full leaves, internal overhead, split churn and
// per-worker pools.
func BTreeHeapLines(spec Spec) int {
	return spec.Keys/2 + 1<<14
}

// Name implements Backend.
func (b *BTreeBackend) Name() string { return "btree" }

// Tree exposes the underlying index for scenario-level checks.
func (b *BTreeBackend) Tree() *btree.Tree { return b.t }

// Direct implements Backend.
func (b *BTreeBackend) Direct() tm.Ops { return DirectOps{Heap: b.heap} }

// Check implements Backend: the tree's structural invariants.
func (b *BTreeBackend) Check() error {
	if err := b.t.CheckInvariants(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}

// NewSession implements Backend.
func (b *BTreeBackend) NewSession() Session {
	return &btreeSession{b: b, pool: btree.NewPool(b.heap)}
}

// btreeSession wraps the tree's cursor-based node pool in the Session
// protocol: Prepare refills for the worst-case split chains of the
// planned inserts, Reset rewinds the cursor for retries, Commit consumes
// what the committed attempt used.
type btreeSession struct {
	b    *BTreeBackend
	pool *btree.Pool
}

func (s *btreeSession) Prepare(inserts int) {
	s.pool.Refill(inserts * btree.RecommendedPoolSize())
}

func (s *btreeSession) Reset() { s.pool.Reset() }

func (s *btreeSession) Read(ops tm.Ops, key uint64) (uint64, bool) {
	return s.b.t.Lookup(ops, key)
}

func (s *btreeSession) Insert(ops tm.Ops, key, value uint64) bool {
	return s.b.t.Insert(ops, key, value, s.pool)
}

func (s *btreeSession) Delete(ops tm.Ops, key uint64) bool {
	return s.b.t.Delete(ops, key)
}

func (s *btreeSession) Scan(ops tm.Ops, key uint64, n int) int {
	if n <= 0 {
		return 0
	}
	seen := 0
	s.b.t.RangeScan(ops, key, ^uint64(0), func(uint64, uint64) bool {
		seen++
		return seen < n
	})
	return seen
}

func (s *btreeSession) Commit() { s.pool.Commit() }
