package engine

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sihtm/internal/memsim"
	"sihtm/internal/stats"
	"sihtm/internal/tm"
	"sihtm/internal/trace"
	"sihtm/internal/wire"
)

// RemoteBackend drives a key-value workload against a networked
// transaction server (internal/server) instead of an in-process data
// structure: every existing Spec runs unmodified over it. It holds a
// small pool of pipelined connections; sessions are assigned
// round-robin, so when sessions outnumber connections many requests are
// in flight per connection and the server's admission stage sees the
// concurrent stream its batching coalesces.
//
// Session semantics split by result use, mirroring the two client
// modes a pipelined store offers:
//
//   - The plain Session methods are synchronous: each call ships the
//     deferred buffer plus the new op as one TXN and returns the op's
//     real result. Tests and interactive callers get exact key-value
//     semantics.
//   - The AsyncSession methods defer: ops accumulate client-side and
//     Commit ships the whole transaction as one TXN frame — the
//     engine's driver path, where one planned transaction becomes one
//     atomic server-side unit.
//
// Transport failures are fatal to the workload (the session protocol
// has no error channel) and surface as panics; orchestrate shutdown so
// load generators finish before the server drains.
type RemoteBackend struct {
	conns []*clientConn
	next  atomic.Uint32
}

// DialRemote connects a pool of conns pipelined connections to a wire
// server.
func DialRemote(addr string, conns int) (*RemoteBackend, error) {
	if conns <= 0 {
		conns = 1
	}
	b := &RemoteBackend{}
	for i := 0; i < conns; i++ {
		c, err := dialConn(addr)
		if err != nil {
			b.Close()
			return nil, fmt.Errorf("engine: remote backend: %w", err)
		}
		b.conns = append(b.conns, c)
	}
	return b, nil
}

// Close tears down the connection pool.
func (b *RemoteBackend) Close() error {
	var first error
	for _, c := range b.conns {
		if err := c.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Name implements Backend.
func (b *RemoteBackend) Name() string { return "remote" }

// clientTracer is the backend's shared tracing state: one sampler and
// id stream across the pool, one ring collecting client spans.
type clientTracer struct {
	ring    *trace.Ring
	sampler *trace.Sampler
	ids     *trace.IDGen
}

// EnableTracing samples every n-th transaction with a fresh trace id
// (1 traces everything): the id rides the TXN frame's trace extension,
// the server threads it through its stages, and the synchronous client
// records a KClient span per traced round trip into the returned ring.
// Call before traffic starts.
func (b *RemoteBackend) EnableTracing(every int) *trace.Ring {
	tr := &clientTracer{
		ring:    trace.NewRing(trace.DefaultRingSpans),
		sampler: trace.NewSampler(every),
		ids:     trace.NewIDGen(uint64(time.Now().UnixNano())),
	}
	for _, c := range b.conns {
		c.tr = tr
	}
	return tr.ring
}

// NewSession implements Backend: the session pipelines on the pool's
// next connection.
func (b *RemoteBackend) NewSession() Session {
	c := b.conns[int(b.next.Add(1)-1)%len(b.conns)]
	return &remoteSession{c: c, w: newWaiter()}
}

// Direct implements Backend. A remote backend has no local heap; the
// returned Ops panics on use. Populate and the conformance suite pass
// it into session methods, which ignore it — population happens through
// real (synchronous) wire requests.
func (b *RemoteBackend) Direct() tm.Ops { return remoteNoOps{} }

// Check implements Backend by running the server-side backend's
// structural invariant check quiescently (the server pauses its
// executors around it).
func (b *RemoteBackend) Check() error {
	t, payload, err := b.conns[0].roundTrip(wire.TCheck, nil)
	if err != nil {
		return err
	}
	if t == wire.TErr {
		return fmt.Errorf("engine: remote check: %s", payload)
	}
	return nil
}

// Stats fetches the server's statistics snapshot — the load generator's
// measurement-window source (difference two snapshots).
func (b *RemoteBackend) Stats() (wire.ServerStats, error) {
	var st wire.ServerStats
	t, payload, err := b.conns[0].roundTrip(wire.TStats, nil)
	if err != nil {
		return st, err
	}
	if t == wire.TErr {
		return st, fmt.Errorf("engine: remote stats: %s", payload)
	}
	err = wire.DecodeJSON(payload, &st)
	return st, err
}

// Promote asks a follower server to promote itself (catch up from the
// dead leader's log and start admitting writes), returning the
// follower's post-promotion replication stats.
func (b *RemoteBackend) Promote() (wire.ReplStats, error) {
	var rs wire.ReplStats
	t, payload, err := b.conns[0].roundTrip(wire.TReplPromote, nil)
	if err != nil {
		return rs, err
	}
	if t == wire.TErr {
		return rs, fmt.Errorf("engine: remote promote: %s", payload)
	}
	err = wire.DecodeJSON(payload, &rs)
	return rs, err
}

// Ctrl reconfigures the live server (the batch-size knob of the
// admission stage).
func (b *RemoteBackend) Ctrl(c wire.Ctrl) error {
	t, payload, err := b.conns[0].roundTrip(wire.TCtrl, wire.EncodeJSON(c))
	if err != nil {
		return err
	}
	if t == wire.TErr {
		return fmt.Errorf("engine: remote ctrl: %s", payload)
	}
	return nil
}

var _ Backend = (*RemoteBackend)(nil)

// remoteNoOps is the Direct() placeholder: any dereference is a bug.
type remoteNoOps struct{}

func (remoteNoOps) Read(memsim.Addr) uint64 {
	panic("engine: remote backend has no direct heap access")
}
func (remoteNoOps) Write(memsim.Addr, uint64) {
	panic("engine: remote backend has no direct heap access")
}

// remoteSession is one thread's pipelined view of the server. It owns
// its waiter (sessions are single-threaded with one outstanding request
// at a time), so a steady-state synchronous round trip — encode, write,
// demultiplexed reply, parse — performs no heap allocations.
type remoteSession struct {
	c       *clientConn
	w       *waiter
	pending []wire.Op
	results []wire.Result
	payload []byte
}

// Prepare implements Session; pool sizing happens server-side, per
// batch.
func (s *remoteSession) Prepare(int) {}

// Reset implements Session: rewinding a retried transaction body
// discards the ops the previous attempt deferred.
func (s *remoteSession) Reset() { s.pending = s.pending[:0] }

// Commit implements Session: ship anything still deferred as one TXN.
func (s *remoteSession) Commit() {
	if len(s.pending) > 0 {
		s.flush()
	}
}

// flush ships the pending ops as a single atomic request and fills
// s.results. Single plain ops use the compact point-request frames so
// the whole protocol surface stays exercised; everything else is a TXN,
// encoded straight into the connection's write buffer (no intermediate
// payload slice).
func (s *remoteSession) flush() {
	var (
		t       wire.Type
		txn     bool
		payload = s.payload[:0]
	)
	if len(s.pending) == 1 {
		op := s.pending[0]
		switch op.Kind {
		case wire.OpGet:
			t, payload = wire.TGet, wire.AppendKey(payload, op.Key)
		case wire.OpPut:
			t, payload = wire.TPut, wire.AppendKeyArg(payload, op.Key, op.Arg)
		case wire.OpDel:
			t, payload = wire.TDel, wire.AppendKey(payload, op.Key)
		case wire.OpScan:
			t, payload = wire.TScan, wire.AppendKeyArg(payload, op.Key, op.Arg)
		default:
			txn = true
		}
	} else {
		txn = true
	}
	s.payload = payload

	var (
		rt  wire.Type
		rp  []byte
		err error
	)
	if txn {
		rt, rp, err = s.c.do(s.w, 0, nil, s.pending)
	} else {
		rt, rp, err = s.c.do(s.w, t, payload, nil)
	}
	if err != nil {
		panic(fmt.Sprintf("engine: remote session: %v", err))
	}
	if rt == wire.TErr {
		panic(fmt.Sprintf("engine: remote session: server error: %s", rp))
	}
	s.results, err = wire.ParseResults(rp, s.results)
	if err != nil {
		panic(fmt.Sprintf("engine: remote session: %v", err))
	}
	if len(s.results) != len(s.pending) {
		panic(fmt.Sprintf("engine: remote session: %d results for %d ops", len(s.results), len(s.pending)))
	}
	s.pending = s.pending[:0]
}

// syncOp appends op, ships the whole pending buffer, and returns the
// op's own result — the synchronous plain-Session path.
func (s *remoteSession) syncOp(op wire.Op) wire.Result {
	s.pending = append(s.pending, op)
	s.flush()
	return s.results[len(s.results)-1]
}

// Read implements Session (synchronous).
func (s *remoteSession) Read(_ tm.Ops, key uint64) (uint64, bool) {
	r := s.syncOp(wire.Op{Kind: wire.OpGet, Key: key})
	return r.Val, r.OK
}

// Insert implements Session (synchronous).
func (s *remoteSession) Insert(_ tm.Ops, key, value uint64) bool {
	return s.syncOp(wire.Op{Kind: wire.OpPut, Key: key, Arg: value}).OK
}

// Delete implements Session (synchronous).
func (s *remoteSession) Delete(_ tm.Ops, key uint64) bool {
	return s.syncOp(wire.Op{Kind: wire.OpDel, Key: key}).OK
}

// Scan implements Session (synchronous).
func (s *remoteSession) Scan(_ tm.Ops, key uint64, n int) int {
	return int(s.syncOp(wire.Op{Kind: wire.OpScan, Key: key, Arg: uint64(n)}).Val)
}

// ReadAsync implements AsyncSession.
func (s *remoteSession) ReadAsync(key uint64) {
	s.pending = append(s.pending, wire.Op{Kind: wire.OpGet, Key: key})
}

// ReadModifyWriteAsync implements AsyncSession.
func (s *remoteSession) ReadModifyWriteAsync(key, delta uint64) {
	s.pending = append(s.pending, wire.Op{Kind: wire.OpRMW, Key: key, Arg: delta})
}

// InsertAsync implements AsyncSession.
func (s *remoteSession) InsertAsync(key, value uint64) {
	s.pending = append(s.pending, wire.Op{Kind: wire.OpPut, Key: key, Arg: value})
}

// DeleteAsync implements AsyncSession.
func (s *remoteSession) DeleteAsync(key uint64) {
	s.pending = append(s.pending, wire.Op{Kind: wire.OpDel, Key: key})
}

// ScanAsync implements AsyncSession.
func (s *remoteSession) ScanAsync(key uint64, n int) {
	s.pending = append(s.pending, wire.Op{Kind: wire.OpScan, Key: key, Arg: uint64(n)})
}

var _ AsyncSession = (*remoteSession)(nil)

// RemoteSystem is the client-side tm.System of a networked workload:
// transaction execution, retry and fall-back all happen server-side, so
// Atomic just runs the body once (deferring its ops into the session)
// and counts the commit. The Ops handed to the body panics on use —
// remote sessions never touch a local heap. The commit is counted when
// Atomic returns; the durable acknowledgement wait happens in the
// session's Commit flush, one call later in the driver's protocol, so
// a measured window's commit count can lead its acked flushes by at
// most one transaction per worker.
type RemoteSystem struct {
	name    string
	threads int
	col     *stats.Collector
}

// NewRemoteSystem builds the client system. name labels records — pass
// the server's concurrency control so remote cells compare like local
// ones.
func NewRemoteSystem(name string, threads int) *RemoteSystem {
	return &RemoteSystem{name: name, threads: threads, col: stats.New(threads)}
}

// Name implements tm.System.
func (s *RemoteSystem) Name() string { return s.name }

// Threads implements tm.System.
func (s *RemoteSystem) Threads() int { return s.threads }

// Collector implements tm.System: client-observed commits only (the
// server's collector holds the abort taxonomy).
func (s *RemoteSystem) Collector() *stats.Collector { return s.col }

// Atomic implements tm.System.
func (s *RemoteSystem) Atomic(thread int, kind tm.Kind, body func(tm.Ops)) {
	body(remoteNoOps{})
	s.col.Thread(thread).Commit(kind == tm.KindReadOnly)
}

var _ tm.System = (*RemoteSystem)(nil)

// clientConn is one pipelined connection: writes are serialized under a
// mutex, a reader goroutine demultiplexes responses to waiters by
// request id.
type clientConn struct {
	c  net.Conn
	bw *bufio.Writer
	tr *clientTracer // nil unless EnableTracing ran

	wmu    sync.Mutex // serializes frame encode+write+flush
	wbuf   []byte
	nextID uint64 // guarded by wmu

	pmu     sync.Mutex
	pending map[uint64]*waiter
	broken  error // sticky transport failure, guarded by pmu

	readerDone chan struct{}
}

// waiter is one caller's reply slot: a reusable one-shot channel plus
// the buffer the reader copies the payload into. The channel is never
// closed (a transport failure is delivered as a clientReply carrying
// err), so a waiter is reusable across requests: sessions keep one for
// their lifetime, which is what makes the client round trip
// allocation-free.
type waiter struct {
	ch  chan clientReply
	buf []byte
}

func newWaiter() *waiter { return &waiter{ch: make(chan clientReply, 1)} }

// clientReply is one demultiplexed response; n is the payload length
// copied into the waiter's buffer.
type clientReply struct {
	t   wire.Type
	n   int
	err error
}

func dialConn(addr string) (*clientConn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &clientConn{
		c:          nc,
		bw:         bufio.NewWriter(nc),
		pending:    map[uint64]*waiter{},
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *clientConn) close() error {
	err := c.c.Close()
	<-c.readerDone
	return err
}

// fail marks the connection broken and wakes every waiter. Each pending
// waiter gets exactly one reply (cap-1 channel), so the sends never
// block and the channels stay reusable.
func (c *clientConn) fail(err error) {
	c.pmu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	for id, w := range c.pending {
		w.ch <- clientReply{err: err}
		delete(c.pending, id)
	}
	c.pmu.Unlock()
}

func (c *clientConn) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReader(c.c)
	var scratch []byte
	for {
		var (
			id      uint64
			t       wire.Type
			payload []byte
			err     error
		)
		id, t, payload, scratch, err = wire.ReadFrame(br, scratch)
		if err != nil {
			c.fail(fmt.Errorf("engine: remote connection: %w", err))
			return
		}
		c.pmu.Lock()
		w, ok := c.pending[id]
		delete(c.pending, id)
		c.pmu.Unlock()
		if ok {
			// Copy into the waiter's own (reused) buffer: the scratch is
			// about to be overwritten by the next frame, and the waiter is
			// the only goroutine that will read buf until its next request.
			w.buf = append(w.buf[:0], payload...)
			w.ch <- clientReply{t: t, n: len(payload)}
		}
	}
}

// roundTrip sends one control-plane request and blocks for its
// response, on a fresh waiter (the data plane goes through do with the
// session's own waiter).
func (c *clientConn) roundTrip(t wire.Type, payload []byte) (wire.Type, []byte, error) {
	return c.do(newWaiter(), t, payload, nil)
}

// do sends one request on w and blocks for its response. Concurrent
// callers pipeline: the write lock covers only the frame encode+write,
// and responses are matched by id. When ops is non-nil the request is a
// TXN encoded directly into the connection's write buffer
// (wire.AppendOpsFrame — no intermediate payload); otherwise t/payload
// frame as given. The returned payload aliases w.buf and is valid until
// w's next request.
func (c *clientConn) do(w *waiter, t wire.Type, payload []byte, ops []wire.Op) (wire.Type, []byte, error) {
	// Head-based sampling happens here, at the single point every
	// data-plane transaction funnels through; the id rides the frame's
	// trace extension and the span closes when the reply lands.
	var traceID uint64
	var traceT0 time.Time
	if tr := c.tr; tr != nil && ops != nil && tr.sampler.Sample() {
		traceID = tr.ids.Next()
		traceT0 = time.Now()
	}
	c.wmu.Lock()
	c.nextID++
	id := c.nextID
	c.pmu.Lock()
	if err := c.broken; err != nil {
		c.pmu.Unlock()
		c.wmu.Unlock()
		return 0, nil, err
	}
	c.pending[id] = w
	c.pmu.Unlock()
	if ops != nil {
		c.wbuf = wire.AppendOpsFrameT(c.wbuf[:0], id, traceID, ops)
	} else {
		c.wbuf = wire.AppendFrame(c.wbuf[:0], id, t, payload)
	}
	_, werr := c.bw.Write(c.wbuf)
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.wmu.Unlock()
	if werr != nil {
		c.fail(fmt.Errorf("engine: remote connection: %w", werr))
		// The failure reply w received (from fail, or from the reader's
		// own exit) must be consumed so w stays reusable.
		<-w.ch
		return 0, nil, werr
	}

	r := <-w.ch
	if r.err != nil {
		return 0, nil, r.err
	}
	if traceID != 0 {
		c.tr.ring.Add(trace.Span{
			Trace: traceID,
			Kind:  trace.KClient,
			Start: traceT0.UnixNano(),
			Dur:   int64(time.Since(traceT0)),
			Arg:   int64(len(ops)),
		})
	}
	return r.t, w.buf[:r.n], nil
}
