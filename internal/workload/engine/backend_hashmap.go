package engine

import (
	"fmt"

	"sihtm/internal/memsim"
	"sihtm/internal/tm"
	"sihtm/internal/workload/hashmap"
)

// HashmapBackend drives the paper's chained hash map (unordered; scans
// degenerate to consecutive point reads). Footprint knob: with all Keys
// populated, a lookup traverses ~Keys/(2·buckets) nodes on average, one
// cache line each.
type HashmapBackend struct {
	heap *memsim.Heap
	m    *hashmap.Map
}

// NewHashmapBackend builds the map with the given bucket count.
func NewHashmapBackend(heap *memsim.Heap, buckets int) *HashmapBackend {
	return &HashmapBackend{heap: heap, m: hashmap.New(heap, buckets)}
}

// HashmapHeapLines estimates the heap a spec needs on this backend:
// bucket heads, the populated nodes, steady-state churn slack and
// per-worker spares.
func HashmapHeapLines(spec Spec, buckets int) int {
	return buckets + 2*spec.Keys + 1<<13
}

// Name implements Backend.
func (b *HashmapBackend) Name() string { return "hashmap" }

// Map exposes the underlying structure for scenario-level checks.
func (b *HashmapBackend) Map() *hashmap.Map { return b.m }

// Direct implements Backend.
func (b *HashmapBackend) Direct() tm.Ops { return DirectOps{Heap: b.heap} }

// Check implements Backend: every chain must terminate (no cycles).
func (b *HashmapBackend) Check() error {
	if _, ok := b.m.WalkBounded(1 << 24); !ok {
		return fmt.Errorf("engine: hash-map chain does not terminate (cycle)")
	}
	return nil
}

// NewSession implements Backend.
func (b *HashmapBackend) NewSession() Session {
	return &hashmapSession{b: b, pool: NewLinePool(b.heap)}
}

// hashmapSession wraps a LinePool in the Session protocol: spares feed
// inserts, and nodes a committed remove unlinked are recycled.
type hashmapSession struct {
	b    *HashmapBackend
	pool *LinePool
}

func (s *hashmapSession) Prepare(inserts int) { s.pool.Prepare(inserts) }

func (s *hashmapSession) Reset() { s.pool.Reset() }

func (s *hashmapSession) Read(ops tm.Ops, key uint64) (uint64, bool) {
	return s.b.m.Lookup(ops, key)
}

func (s *hashmapSession) Insert(ops tm.Ops, key, value uint64) bool {
	if s.b.m.Insert(ops, key, value, s.pool.Peek()) {
		s.pool.Consume()
		return true
	}
	return false
}

func (s *hashmapSession) Delete(ops tm.Ops, key uint64) bool {
	if node := s.b.m.Remove(ops, key); node != 0 {
		s.pool.Release(node)
		return true
	}
	return false
}

func (s *hashmapSession) Scan(ops tm.Ops, key uint64, n int) int {
	found := 0
	for i := 0; i < n; i++ {
		if _, ok := s.b.m.Lookup(ops, key+uint64(i)); ok {
			found++
		}
	}
	return found
}

func (s *hashmapSession) Commit() { s.pool.Commit() }
