package engine

import (
	"sihtm/internal/memsim"
	"sihtm/internal/tm"
)

// Backend is a transactional key-value substrate the engine can drive:
// an adapter giving a data structure the uniform read / upsert / delete
// / scan vocabulary of the op mix. Backends are shared across threads;
// all per-thread state (node pools, recycling lists) lives in Sessions.
type Backend interface {
	// Name tags the backend in registry params ("hashmap", "btree").
	Name() string
	// NewSession creates one thread's access handle.
	NewSession() Session
	// Direct returns a tm.Ops over raw heap accesses for quiescent
	// setup (Populate) and verification.
	Direct() tm.Ops
	// Check verifies the backend's structural invariants quiescently
	// (harness post-run check).
	Check() error
}

// Session is one thread's view of a Backend. The driver's protocol per
// transaction:
//
//	Prepare(inserts)  outside the transaction — top up node pools for
//	                  at most `inserts` key-creating ops
//	Reset()           at the top of the transaction body; aborted
//	                  attempts re-enter here, so it must rewind any
//	                  state the previous attempt consumed
//	Read/Insert/...   inside the body, in planned order
//	Commit()          after the transaction committed — permanently
//	                  consume used pool nodes and recycle deleted ones
type Session interface {
	Prepare(inserts int)
	Reset()
	// Read returns the value under key.
	Read(ops tm.Ops, key uint64) (uint64, bool)
	// Insert upserts key, reporting whether it was new.
	Insert(ops tm.Ops, key, value uint64) bool
	// Delete removes key, reporting whether it was present.
	Delete(ops tm.Ops, key uint64) bool
	// Scan visits up to n entries from key onward, returning how many
	// it saw. On unordered backends this degenerates to n point reads
	// of consecutive keys.
	Scan(ops tm.Ops, key uint64, n int) int
	Commit()
}

// DirectOps adapts raw heap accesses to tm.Ops: the quiescent access
// path of Populate and of verification walks.
type DirectOps struct{ Heap *memsim.Heap }

// Read implements tm.Ops.
func (o DirectOps) Read(a memsim.Addr) uint64 { return o.Heap.Load(a) }

// Write implements tm.Ops.
func (o DirectOps) Write(a memsim.Addr, v uint64) { o.Heap.Store(a, v) }
