package engine

import (
	"sihtm/internal/memsim"
	"sihtm/internal/tm"
)

// Backend is a transactional key-value substrate the engine can drive:
// an adapter giving a data structure the uniform read / upsert / delete
// / scan vocabulary of the op mix. Backends are shared across threads;
// all per-thread state (node pools, recycling lists) lives in Sessions.
type Backend interface {
	// Name tags the backend in registry params ("hashmap", "btree").
	Name() string
	// NewSession creates one thread's access handle.
	NewSession() Session
	// Direct returns a tm.Ops over raw heap accesses for quiescent
	// setup (Populate) and verification.
	Direct() tm.Ops
	// Check verifies the backend's structural invariants quiescently
	// (harness post-run check).
	Check() error
}

// Session is one thread's view of a Backend. The driver's protocol per
// transaction:
//
//	Prepare(inserts)  outside the transaction — top up node pools for
//	                  at most `inserts` key-creating ops
//	Reset()           at the top of the transaction body; aborted
//	                  attempts re-enter here, so it must rewind any
//	                  state the previous attempt consumed
//	Read/Insert/...   inside the body, in planned order
//	Commit()          after the transaction committed — permanently
//	                  consume used pool nodes and recycle deleted ones
type Session interface {
	Prepare(inserts int)
	Reset()
	// Read returns the value under key.
	Read(ops tm.Ops, key uint64) (uint64, bool)
	// Insert upserts key, reporting whether it was new.
	Insert(ops tm.Ops, key, value uint64) bool
	// Delete removes key, reporting whether it was present.
	Delete(ops tm.Ops, key uint64) bool
	// Scan visits up to n entries from key onward, returning how many
	// it saw. On unordered backends this degenerates to n point reads
	// of consecutive keys.
	Scan(ops tm.Ops, key uint64, n int) int
	Commit()
}

// AsyncSession is an optional Session capability for operations whose
// results the caller discards: instead of executing eagerly, the
// session may defer them and ship the whole set as one unit when
// Commit is called. The driver prefers this interface when a session
// offers it, which is what turns a planned transaction into exactly one
// wire TXN on the remote backend (local backends have no reason to
// implement it — their eager ops are already free). ReadModifyWriteAsync
// exists because the dependent write (read value + delta) must be
// computed wherever the read executes; a remote session encodes it as a
// single server-side RMW op.
type AsyncSession interface {
	Session
	// ReadAsync is Read with the result discarded.
	ReadAsync(key uint64)
	// ReadModifyWriteAsync upserts key ← read(key)+delta (read = 0 when
	// absent), the engine's OpReadModifyWrite semantics.
	ReadModifyWriteAsync(key, delta uint64)
	// InsertAsync is Insert with the result discarded.
	InsertAsync(key, value uint64)
	// DeleteAsync is Delete with the result discarded.
	DeleteAsync(key uint64)
	// ScanAsync is Scan with the result discarded.
	ScanAsync(key uint64, n int)
}

// DirectOps adapts raw heap accesses to tm.Ops: the quiescent access
// path of Populate and of verification walks.
type DirectOps struct{ Heap *memsim.Heap }

// Read implements tm.Ops.
func (o DirectOps) Read(a memsim.Addr) uint64 { return o.Heap.Load(a) }

// Write implements tm.Ops.
func (o DirectOps) Write(a memsim.Addr, v uint64) { o.Heap.Store(a, v) }
