package engine

import (
	"testing"

	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/sgl"
	"sihtm/internal/sihtm"
	"sihtm/internal/topology"
)

func testSpec() Spec {
	return Spec{
		Name: "test",
		Keys: 500,
		Dist: Dist{Kind: DistZipfian, Theta: 0.9},
		Mix: []MixEntry{
			{Op: OpRead, Percent: 60},
			{Op: OpReadModifyWrite, Percent: 20},
			{Op: OpInsert, Percent: 8},
			{Op: OpDelete, Percent: 8},
			{Op: OpScan, Percent: 4},
		},
		OpsPerTxMin: 2,
		OpsPerTxMax: 6,
		ScanLen:     8,
		Seed:        42,
	}
}

func newHashmapDriver(t *testing.T, spec Spec, buckets int) (*Driver, *HashmapBackend, *htm.Machine) {
	t.Helper()
	heap := memsim.NewHeapLines(HashmapHeapLines(spec, buckets))
	m := htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
	b := NewHashmapBackend(heap, buckets)
	Populate(b, spec)
	d, err := New(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	return d, b, m
}

// Same seed + spec must yield identical per-thread op sequences, and
// distinct threads must diverge — the determinism contract every
// scenario inherits.
func TestPlanDeterminism(t *testing.T) {
	spec := testSpec()
	d1, _, _ := newHashmapDriver(t, spec, 50)
	d2, _, _ := newHashmapDriver(t, spec, 50)

	w1 := d1.NewWorker(nil, 3)
	w2 := d2.NewWorker(nil, 3)
	other := d1.NewWorker(nil, 4)
	diverged := false
	for tx := 0; tx < 500; tx++ {
		ro1, ins1 := w1.planTx()
		ro2, ins2 := w2.planTx()
		if ro1 != ro2 || ins1 != ins2 || len(w1.plan) != len(w2.plan) {
			t.Fatalf("tx %d: plans diverged (%v/%d/%d vs %v/%d/%d)",
				tx, ro1, ins1, len(w1.plan), ro2, ins2, len(w2.plan))
		}
		for i := range w1.plan {
			if w1.plan[i] != w2.plan[i] {
				t.Fatalf("tx %d op %d: %+v vs %+v", tx, i, w1.plan[i], w2.plan[i])
			}
		}
		other.planTx()
		if len(other.plan) != len(w1.plan) {
			diverged = true
		} else {
			for i := range w1.plan {
				if other.plan[i] != w1.plan[i] {
					diverged = true
				}
			}
		}
	}
	if !diverged {
		t.Fatal("threads 3 and 4 produced identical 500-tx sequences")
	}
}

// planTx must classify transactions: all-read plans launch read-only,
// and the insert budget must cover every key-creating op.
func TestPlanClassification(t *testing.T) {
	spec := testSpec()
	spec.Mix = []MixEntry{{Op: OpRead, Percent: 80}, {Op: OpScan, Percent: 20}}
	d, _, _ := newHashmapDriver(t, spec, 50)
	w := d.NewWorker(nil, 0)
	for tx := 0; tx < 200; tx++ {
		ro, ins := w.planTx()
		if !ro || ins != 0 {
			t.Fatalf("read-only mix planned ro=%v inserts=%d", ro, ins)
		}
	}

	spec = testSpec()
	d, _, _ = newHashmapDriver(t, spec, 50)
	w = d.NewWorker(nil, 0)
	for tx := 0; tx < 200; tx++ {
		ro, ins := w.planTx()
		creators := 0
		writers := 0
		for _, p := range w.plan {
			if p.op == OpInsert || p.op == OpReadModifyWrite {
				creators++
			}
			if !p.op.ReadOnly() {
				writers++
			}
		}
		if ins != creators {
			t.Fatalf("tx %d: insert budget %d, plan has %d creators", tx, ins, creators)
		}
		if ro != (writers == 0) {
			t.Fatalf("tx %d: ro=%v with %d writing ops", tx, ro, writers)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Name: "nokeys", Mix: []MixEntry{{Op: OpRead, Percent: 100}}},
		{Name: "nomix", Keys: 10},
		{Name: "sum", Keys: 10, Mix: []MixEntry{{Op: OpRead, Percent: 50}}},
		{Name: "badop", Keys: 10, Mix: []MixEntry{{Op: Op(99), Percent: 100}}},
		{Name: "badtheta", Keys: 10, Dist: Dist{Kind: DistZipfian, Theta: 1.5},
			Mix: []MixEntry{{Op: OpRead, Percent: 100}}},
		{Name: "badhot", Keys: 10, Dist: Dist{Kind: DistHotSet, HotKeysPercent: 100},
			Mix: []MixEntry{{Op: OpRead, Percent: 100}}},
	}
	for _, s := range bad {
		if err := s.withDefaults().Validate(); err == nil {
			t.Errorf("spec %q validated", s.Name)
		}
	}
	if err := testSpec().withDefaults().Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

// End-to-end on the serial oracle: drive the full mix through SGL and
// verify the backend afterwards — values under keys the workload never
// creates stay recomputable, and the structure stays intact.
func TestEndToEndSGL(t *testing.T) {
	for _, backend := range []string{"hashmap", "btree"} {
		t.Run(backend, func(t *testing.T) {
			spec := testSpec()
			var (
				b    Backend
				m    *htm.Machine
				heap *memsim.Heap
			)
			if backend == "hashmap" {
				heap = memsim.NewHeapLines(HashmapHeapLines(spec, 50))
				m = htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
				b = NewHashmapBackend(heap, 50)
			} else {
				heap = memsim.NewHeapLines(BTreeHeapLines(spec))
				m = htm.NewMachine(heap, htm.Config{Topology: topology.Paper()})
				b = NewBTreeBackend(heap)
			}
			Populate(b, spec)
			d, err := New(spec, b)
			if err != nil {
				t.Fatal(err)
			}
			sys := sgl.NewSystem(m, 1)
			w := d.NewWorker(sys, 0)
			for i := 0; i < 3000; i++ {
				w.Op()
			}
			if got := sys.Collector().Snapshot().Commits; got == 0 {
				t.Fatal("no commits recorded")
			}
			if err := b.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Multi-threaded smoke on SI-HTM: concurrent workers over the same
// backend must leave it structurally intact.
func TestConcurrentSIHTM(t *testing.T) {
	spec := testSpec()
	spec.Seed = 7
	d, b, m := newHashmapDriver(t, spec, 20)
	const threads = 4
	sys := sihtm.NewSystem(m, threads, sihtm.Config{})
	done := make(chan struct{})
	for th := 0; th < threads; th++ {
		go func(th int) {
			defer func() { done <- struct{}{} }()
			w := d.NewWorker(sys, th)
			for i := 0; i < 400; i++ {
				w.Op()
			}
		}(th)
	}
	for th := 0; th < threads; th++ {
		<-done
	}
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Collector().Snapshot().Commits; got < threads*400 {
		t.Fatalf("commits %d < %d ops issued", got, threads*400)
	}
}

// Populate must fill the whole keyspace with recomputable values on both
// backends.
func TestPopulate(t *testing.T) {
	spec := testSpec()
	spec.Keys = 300
	heap := memsim.NewHeapLines(BTreeHeapLines(spec))
	b := NewBTreeBackend(heap)
	Populate(b, spec)
	ops := b.Direct()
	for k := uint64(0); k < uint64(spec.Keys); k++ {
		v, ok := b.Tree().Lookup(ops, k)
		if !ok || v != InitialValue(k) {
			t.Fatalf("key %d: got (%d,%v), want (%d,true)", k, v, ok, InitialValue(k))
		}
	}
	if got := b.Tree().Count(ops); got != spec.Keys {
		t.Fatalf("tree count %d, want %d", got, spec.Keys)
	}
}

// The hash-map session must survive attempt replays: Reset must rewind
// the spare cursor and the removal list so a retried body reuses the
// same nodes and Commit recycles exactly the committed attempt's
// victims.
func TestHashmapSessionReplay(t *testing.T) {
	spec := testSpec()
	spec.Keys = 64
	heap := memsim.NewHeapLines(HashmapHeapLines(spec, 8))
	b := NewHashmapBackend(heap, 8)
	Populate(b, spec)
	ops := b.Direct()
	s := b.NewSession().(*hashmapSession)

	s.Prepare(2)
	allocated := heap.Allocated()
	// First attempt: insert two fresh keys, delete one existing.
	attempt := func() {
		s.Reset()
		s.Insert(ops, 1000, 1)
		s.Insert(ops, 1001, 2)
		s.Delete(ops, 1000)
	}
	attempt()
	// The structure now contains the first attempt's effects; a real
	// abort would roll them back, but the session-side bookkeeping must
	// rewind regardless: replay and commit.
	s.Delete(ops, 1001)
	s.Delete(ops, 1000)
	attempt()
	s.Commit()
	if heap.Allocated() != allocated {
		t.Fatalf("replay allocated fresh lines (%d -> %d); spares not reused",
			allocated, heap.Allocated())
	}
	if _, ok := b.Map().Lookup(ops, 1001); !ok {
		t.Fatal("committed insert of key 1001 missing")
	}
	if _, ok := b.Map().Lookup(ops, 1000); ok {
		t.Fatal("committed delete of key 1000 ineffective")
	}
	// Both spares were consumed by the committed inserts; the node the
	// committed delete unlinked must be recycled into the spare pool.
	if len(s.pool.spares) != 1 {
		t.Fatalf("spare pool has %d nodes after commit, want 1 (the recycled victim)", len(s.pool.spares))
	}
	if len(s.pool.released) != 0 {
		t.Fatalf("release list not drained by Commit: %v", s.pool.released)
	}
}

// Scan must see consecutive populated keys on both backends.
func TestScan(t *testing.T) {
	spec := testSpec()
	spec.Keys = 200
	for _, mk := range []func() Backend{
		func() Backend {
			return NewHashmapBackend(memsim.NewHeapLines(HashmapHeapLines(spec, 16)), 16)
		},
		func() Backend { return NewBTreeBackend(memsim.NewHeapLines(BTreeHeapLines(spec))) },
	} {
		b := mk()
		Populate(b, spec)
		s := b.NewSession()
		s.Prepare(0)
		s.Reset()
		if got := s.Scan(b.Direct(), 10, 25); got != 25 {
			t.Fatalf("%s: scan(10,25) = %d, want 25", b.Name(), got)
		}
		s.Commit()
	}
}
