package engine

import (
	"fmt"
	"strings"
)

// Op enumerates the primitive operations a workload mix composes.
type Op int

// The operation vocabulary.
const (
	// OpRead is a point lookup.
	OpRead Op = iota
	// OpReadModifyWrite reads a key and writes back a derived value.
	OpReadModifyWrite
	// OpInsert upserts a key (update if present, insert if absent).
	OpInsert
	// OpDelete removes a key.
	OpDelete
	// OpScan visits Spec.ScanLen entries starting at the drawn key.
	OpScan
	numOps
)

// String implements fmt.Stringer with the short codes used in registry
// parameter strings.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "r"
	case OpReadModifyWrite:
		return "rmw"
	case OpInsert:
		return "ins"
	case OpDelete:
		return "del"
	case OpScan:
		return "scan"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// ReadOnly reports whether the op performs no shared writes — a
// transaction whose planned ops are all read-only launches as
// tm.KindReadOnly and rides SI-HTM's uninstrumented fast path.
func (o Op) ReadOnly() bool { return o == OpRead || o == OpScan }

// MixEntry gives one op a share of the mix, in percent.
type MixEntry struct {
	Op      Op
	Percent int
}

// DistKind names a key distribution family.
type DistKind int

// The supported key distributions.
const (
	// DistUniform draws keys uniformly over the keyspace.
	DistUniform DistKind = iota
	// DistZipfian draws rank k with probability ∝ 1/(k+1)^θ (YCSB's
	// zipfian generator); rank 0 is the hottest key.
	DistZipfian
	// DistHotSet sends HotOpsPercent of draws to the first
	// HotKeysPercent of the keyspace, the rest uniformly to the cold
	// remainder.
	DistHotSet
)

// String implements fmt.Stringer.
func (k DistKind) String() string {
	switch k {
	case DistUniform:
		return "uniform"
	case DistZipfian:
		return "zipfian"
	case DistHotSet:
		return "hotset"
	default:
		return fmt.Sprintf("DistKind(%d)", int(k))
	}
}

// Dist declares a key distribution.
type Dist struct {
	Kind DistKind
	// Theta is the Zipfian skew parameter, in [0, 1) (0.99 is YCSB's
	// default; 0 degenerates to uniform).
	Theta float64
	// HotKeysPercent and HotOpsPercent parameterise DistHotSet.
	HotKeysPercent, HotOpsPercent int
}

// String renders the distribution for registry parameter strings.
func (d Dist) String() string {
	switch d.Kind {
	case DistZipfian:
		return fmt.Sprintf("zipf(%.2f)", d.Theta)
	case DistHotSet:
		return fmt.Sprintf("hot(%d%%keys/%d%%ops)", d.HotKeysPercent, d.HotOpsPercent)
	default:
		return "uniform"
	}
}

// Spec declares one workload: everything the Driver needs to generate
// deterministic per-thread operation streams.
type Spec struct {
	// Name identifies the workload in errors and docs.
	Name string
	// Keys is the keyspace size: keys are drawn from [0, Keys), and
	// Populate fills all of them.
	Keys int
	// Dist is the key distribution.
	Dist Dist
	// Mix is the operation mix; percentages must sum to 100.
	Mix []MixEntry
	// OpsPerTxMin/Max bound the per-transaction operation count, drawn
	// uniformly in [Min, Max] (Max <= Min means every transaction has
	// exactly Min ops).
	OpsPerTxMin, OpsPerTxMax int
	// ScanLen is the entries visited per OpScan (defaults to 16).
	ScanLen int
	// Seed reproduces the run; per-thread streams derive from it via
	// rng.Stream.
	Seed uint64
}

func (s Spec) withDefaults() Spec {
	if s.OpsPerTxMin <= 0 {
		s.OpsPerTxMin = 1
	}
	if s.ScanLen <= 0 {
		s.ScanLen = 16
	}
	return s
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Keys <= 0 {
		return fmt.Errorf("engine: %s: keyspace must be positive, got %d", s.Name, s.Keys)
	}
	if len(s.Mix) == 0 {
		return fmt.Errorf("engine: %s: empty op mix", s.Name)
	}
	total := 0
	for _, m := range s.Mix {
		if m.Op < 0 || m.Op >= numOps {
			return fmt.Errorf("engine: %s: unknown op %d in mix", s.Name, int(m.Op))
		}
		if m.Percent <= 0 {
			return fmt.Errorf("engine: %s: mix share for %s must be positive, got %d", s.Name, m.Op, m.Percent)
		}
		total += m.Percent
	}
	if total != 100 {
		return fmt.Errorf("engine: %s: mix sums to %d, want 100", s.Name, total)
	}
	if s.OpsPerTxMin <= 0 {
		return fmt.Errorf("engine: %s: ops/tx must be positive, got %d", s.Name, s.OpsPerTxMin)
	}
	if err := s.Dist.Check(); err != nil {
		return fmt.Errorf("engine: %s: %w", s.Name, err)
	}
	return nil
}

// MixString renders the mix compactly, e.g. "95r/5rmw".
func (s Spec) MixString() string {
	parts := make([]string, 0, len(s.Mix))
	for _, m := range s.Mix {
		parts = append(parts, fmt.Sprintf("%d%s", m.Percent, m.Op))
	}
	return strings.Join(parts, "/")
}

// Params renders the spec for `repro list`.
func (s Spec) Params() string {
	tx := fmt.Sprintf("%d", s.OpsPerTxMin)
	if s.OpsPerTxMax > s.OpsPerTxMin {
		tx = fmt.Sprintf("%d..%d", s.OpsPerTxMin, s.OpsPerTxMax)
	}
	return fmt.Sprintf("keys=%d dist=%s mix=%s ops/tx=%s", s.Keys, s.Dist, s.MixString(), tx)
}
