package engine

import (
	"sihtm/internal/durable"
	"sihtm/internal/tm"
)

// DurableBackend decorates any Backend with the durability subsystem:
// the wrapped backend's heap is covered by the store's write-ahead log
// and checkpoints, and Check additionally forces the log so a post-run
// verification (or crash) never races an unflushed buffer. The wrapper
// adds nothing to the access path — durability is captured at the TM
// commit hook, not in the backend — so sessions pass straight through;
// what the wrapper contributes is the pairing of a Backend with its
// Store, which is what scenario setup, post-run recovery checks and the
// `repro recover` rebuild all need to agree on.
type DurableBackend struct {
	inner Backend
	store *durable.Store
}

// NewDurableBackend pairs a backend with the store persisting its heap.
func NewDurableBackend(inner Backend, store *durable.Store) *DurableBackend {
	return &DurableBackend{inner: inner, store: store}
}

// Name implements Backend ("durable-hashmap", "durable-btree").
func (b *DurableBackend) Name() string { return "durable-" + b.inner.Name() }

// Unwrap returns the decorated backend (scenario-level checks
// type-switch on the concrete backends).
func (b *DurableBackend) Unwrap() Backend { return b.inner }

// Store returns the durability manager.
func (b *DurableBackend) Store() *durable.Store { return b.store }

// NewSession implements Backend by delegating: per-thread session state
// is orthogonal to durability.
func (b *DurableBackend) NewSession() Session { return b.inner.NewSession() }

// Direct implements Backend by delegating. Direct writes (Populate)
// are deliberately not logged: they form the deterministic base image
// recovery rebuilds before replaying the log.
func (b *DurableBackend) Direct() tm.Ops { return b.inner.Direct() }

// Check implements Backend: the inner structural invariants plus a log
// force, so everything committed before the check is durable when the
// caller proceeds to recovery verification.
func (b *DurableBackend) Check() error {
	if err := b.inner.Check(); err != nil {
		return err
	}
	return b.store.Sync()
}

var _ Backend = (*DurableBackend)(nil)
