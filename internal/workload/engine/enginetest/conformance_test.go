package enginetest

import (
	"path/filepath"
	"testing"
	"time"

	"sihtm/internal/durable"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/sihtm"
	"sihtm/internal/topology"
	"sihtm/internal/workload/engine"
)

// heapFor sizes a heap generously for the suite's churn (double
// keyspace plus pools).
func heapFor(keys int, buckets int) *memsim.Heap {
	lines := buckets + 8*keys + 1<<13
	return memsim.NewHeapLines(lines)
}

func newInstance(t *testing.T, b engine.Backend, heap *memsim.Heap, threads int) Instance {
	m := htm.NewMachine(heap, htm.Config{Topology: topology.New(4, 2)})
	sys := sihtm.NewSystem(m, threads, sihtm.Config{})
	return Instance{Backend: b, Heap: heap, Machine: m, Sys: sys, Cleanup: func() {}}
}

func hashmapMaker(t *testing.T, keys, threads int) Instance {
	buckets := keys / 8
	if buckets < 1 {
		buckets = 1
	}
	heap := heapFor(keys, buckets)
	return newInstance(t, engine.NewHashmapBackend(heap, buckets), heap, threads)
}

func btreeMaker(t *testing.T, keys, threads int) Instance {
	heap := heapFor(keys, 0)
	return newInstance(t, engine.NewBTreeBackend(heap), heap, threads)
}

// durableMaker decorates an inner maker with a real store (log on
// disk, group-commit daemon running, acknowledgements on) and attaches
// it to the machine and system, so the conformance suite exercises the
// full durable write path.
func durableMaker(inner Maker) Maker {
	return func(t *testing.T, keys, threads int) Instance {
		in := inner(t, keys, threads)
		store, err := durable.Open(in.Heap, filepath.Join(t.TempDir(), "wal.log"),
			in.Machine.Topology().MaxThreads(), durable.Config{
				Window: 200 * time.Microsecond, WaitAck: true,
			})
		if err != nil {
			t.Fatal(err)
		}
		in.Backend = engine.NewDurableBackend(in.Backend, store)
		in.Sys = store.Attach(in.Sys, in.Machine)
		prev := in.Cleanup
		in.Cleanup = func() {
			if err := store.Close(); err != nil {
				t.Errorf("store close: %v", err)
			}
			prev()
		}
		return in
	}
}

func TestHashmapConformance(t *testing.T) { Run(t, "hashmap", hashmapMaker) }

func TestBTreeConformance(t *testing.T) { Run(t, "btree", btreeMaker) }

func TestDurableHashmapConformance(t *testing.T) {
	Run(t, "durable-hashmap", durableMaker(hashmapMaker))
}

func TestDurableBTreeConformance(t *testing.T) {
	Run(t, "durable-btree", durableMaker(btreeMaker))
}

// TestDurableBackendIdentity pins the wrapper's surface: name prefix,
// unwrap, store accessor.
func TestDurableBackendIdentity(t *testing.T) {
	in := durableMaker(hashmapMaker)(t, 16, 1)
	defer in.Cleanup()
	db, ok := in.Backend.(*engine.DurableBackend)
	if !ok {
		t.Fatalf("maker produced %T, want *engine.DurableBackend", in.Backend)
	}
	if db.Name() != "durable-hashmap" {
		t.Errorf("Name() = %q", db.Name())
	}
	if _, ok := db.Unwrap().(*engine.HashmapBackend); !ok {
		t.Errorf("Unwrap() = %T, want *engine.HashmapBackend", db.Unwrap())
	}
	if db.Store() == nil {
		t.Error("Store() = nil")
	}
}
