// Package enginetest is the shared conformance suite for
// engine.Backend implementations, in the mould of internal/tmtest:
// every backend the workload engine can drive — the chained hash map,
// the B+tree index and their durable decorations — must expose the same
// observable key-value semantics through the Session protocol
// (Prepare / Reset / ops / Commit), survive retry-style Reset rewinds,
// agree with a model map under randomized churn, and keep its
// structural invariants under concurrent transactional load.
package enginetest

import (
	"testing"

	"sihtm/internal/harness"
	"sihtm/internal/htm"
	"sihtm/internal/memsim"
	"sihtm/internal/rng"
	"sihtm/internal/tm"
	"sihtm/internal/workload/engine"
)

// Instance is one backend under test, built over its own heap and
// machine so tests are independent.
type Instance struct {
	Backend engine.Backend
	Heap    *memsim.Heap
	Machine *htm.Machine // nil for machine-less systems
	Sys     tm.System
	Cleanup func()
}

// Maker builds a fresh Instance sized for the given keyspace and
// thread count.
type Maker func(t *testing.T, keys, threads int) Instance

// Run executes the whole conformance suite against one backend family.
func Run(t *testing.T, name string, mk Maker) {
	t.Run(name+"/PopulateAndLookup", func(t *testing.T) { checkPopulate(t, mk) })
	t.Run(name+"/SessionProtocol", func(t *testing.T) { checkSessionProtocol(t, mk) })
	t.Run(name+"/ResetRewind", func(t *testing.T) { checkResetRewind(t, mk) })
	t.Run(name+"/ModelChurn", func(t *testing.T) { checkModelChurn(t, mk) })
	t.Run(name+"/ConcurrentDriver", func(t *testing.T) { checkConcurrentDriver(t, mk) })
}

func spec(keys int) engine.Spec {
	return engine.Spec{
		Name: "enginetest",
		Keys: keys,
		Dist: engine.Dist{Kind: engine.DistUniform},
		Mix: []engine.MixEntry{
			{Op: engine.OpRead, Percent: 50},
			{Op: engine.OpReadModifyWrite, Percent: 30},
			{Op: engine.OpInsert, Percent: 10},
			{Op: engine.OpDelete, Percent: 10},
		},
		OpsPerTxMin: 1, OpsPerTxMax: 4,
		Seed: 42,
	}
}

// checkPopulate: Populate fills exactly [0, Keys) with InitialValue,
// visible both through Direct and through a transactional session.
func checkPopulate(t *testing.T, mk Maker) {
	const keys = 64
	in := mk(t, keys, 1)
	defer in.Cleanup()
	engine.Populate(in.Backend, spec(keys))

	s := in.Backend.NewSession()
	ops := in.Backend.Direct()
	s.Prepare(0)
	s.Reset()
	for k := uint64(0); k < keys; k++ {
		v, ok := s.Read(ops, k)
		if !ok || v != engine.InitialValue(k) {
			t.Fatalf("key %d: (%d, %v), want (%d, true)", k, v, ok, engine.InitialValue(k))
		}
	}
	if _, ok := s.Read(ops, keys); ok {
		t.Fatalf("key %d beyond the populated keyspace is present", keys)
	}
	s.Commit()
	if err := in.Backend.Check(); err != nil {
		t.Fatal(err)
	}
}

// checkSessionProtocol: insert / upsert / delete / scan semantics
// through real transactions.
func checkSessionProtocol(t *testing.T, mk Maker) {
	const keys = 64
	in := mk(t, keys, 1)
	defer in.Cleanup()
	engine.Populate(in.Backend, spec(keys))
	s := in.Backend.NewSession()

	atomic := func(inserts int, body func(ops tm.Ops)) {
		s.Prepare(inserts)
		in.Sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
			s.Reset()
			body(ops)
		})
		s.Commit()
	}

	atomic(1, func(ops tm.Ops) {
		if !s.Insert(ops, 1000, 7) {
			t.Error("Insert of a fresh key reported existing")
		}
	})
	atomic(1, func(ops tm.Ops) {
		if s.Insert(ops, 1000, 8) {
			t.Error("upsert of an existing key reported new")
		}
	})
	atomic(0, func(ops tm.Ops) {
		if v, ok := s.Read(ops, 1000); !ok || v != 8 {
			t.Errorf("Read(1000) = (%d, %v), want (8, true)", v, ok)
		}
	})
	atomic(0, func(ops tm.Ops) {
		if !s.Delete(ops, 1000) {
			t.Error("Delete of a present key reported absent")
		}
		if s.Delete(ops, 1000) {
			t.Error("Delete of an absent key reported present")
		}
	})
	atomic(0, func(ops tm.Ops) {
		// All keys 0..keys-1 are present: a scan from 0 sees min(n, keys).
		if got := s.Scan(ops, 0, 10); got != 10 {
			t.Errorf("Scan(0, 10) = %d, want 10", got)
		}
	})
	if err := in.Backend.Check(); err != nil {
		t.Fatal(err)
	}
}

// checkResetRewind emulates the TM retry contract inside one
// transaction: the body runs its planned ops, rewinds with Reset, and
// runs them again — the backend must end in the single-execution state
// (aborted attempts must not leak nodes or double-apply).
func checkResetRewind(t *testing.T, mk Maker) {
	const keys = 32
	in := mk(t, keys, 1)
	defer in.Cleanup()
	engine.Populate(in.Backend, spec(keys))
	s := in.Backend.NewSession()

	s.Prepare(2)
	in.Sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
		for attempt := 0; attempt < 2; attempt++ {
			s.Reset()
			s.Insert(ops, 500, 1)
			s.Insert(ops, 501, 2)
			s.Delete(ops, 3)
		}
	})
	s.Commit()

	s.Prepare(0)
	s.Reset()
	ops := in.Backend.Direct()
	if v, ok := s.Read(ops, 500); !ok || v != 1 {
		t.Errorf("Read(500) = (%d, %v), want (1, true)", v, ok)
	}
	if v, ok := s.Read(ops, 501); !ok || v != 2 {
		t.Errorf("Read(501) = (%d, %v), want (2, true)", v, ok)
	}
	if _, ok := s.Read(ops, 3); ok {
		t.Error("key 3 still present after replayed delete")
	}
	s.Commit()
	if err := in.Backend.Check(); err != nil {
		t.Fatal(err)
	}
}

// checkModelChurn runs randomized single-threaded churn against a model
// map and compares the full keyspace at the end.
func checkModelChurn(t *testing.T, mk Maker) {
	const keys, rounds = 48, 600
	in := mk(t, keys, 1)
	defer in.Cleanup()
	engine.Populate(in.Backend, spec(keys))
	s := in.Backend.NewSession()
	model := map[uint64]uint64{}
	for k := uint64(0); k < keys; k++ {
		model[k] = engine.InitialValue(k)
	}

	r := rng.New(7)
	for i := 0; i < rounds; i++ {
		key := uint64(r.Intn(keys * 2)) // half the draws miss/insert fresh
		s.Prepare(1)
		in.Sys.Atomic(0, tm.KindUpdate, func(ops tm.Ops) {
			s.Reset()
			switch r.Intn(4) {
			case 0:
				v, ok := s.Read(ops, key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					t.Fatalf("round %d: Read(%d) = (%d, %v), model (%d, %v)", i, key, v, ok, mv, mok)
				}
			case 1:
				s.Insert(ops, key, uint64(i))
				model[key] = uint64(i)
			case 2:
				got := s.Delete(ops, key)
				_, want := model[key]
				if got != want {
					t.Fatalf("round %d: Delete(%d) = %v, model %v", i, key, got, want)
				}
				delete(model, key)
			case 3:
				v, _ := s.Read(ops, key)
				s.Insert(ops, key, v+1)
				model[key] = v + 1
			}
		})
		s.Commit()
	}

	s.Prepare(0)
	s.Reset()
	ops := in.Backend.Direct()
	for k := uint64(0); k < keys*2; k++ {
		v, ok := s.Read(ops, k)
		mv, mok := model[k]
		if ok != mok || (ok && v != mv) {
			t.Fatalf("final sweep: key %d = (%d, %v), model (%d, %v)", k, v, ok, mv, mok)
		}
	}
	s.Commit()
	if err := in.Backend.Check(); err != nil {
		t.Fatal(err)
	}
}

// checkConcurrentDriver runs the declarative driver over the backend
// with several threads and verifies structural invariants afterwards.
func checkConcurrentDriver(t *testing.T, mk Maker) {
	const keys, threads, perThread = 256, 4, 150
	in := mk(t, keys, threads)
	defer in.Cleanup()
	sp := spec(keys)
	engine.Populate(in.Backend, sp)
	d, err := engine.New(sp, in.Backend)
	if err != nil {
		t.Fatal(err)
	}
	r := harness.RunOps(in.Sys, threads, perThread, d.Workers(in.Sys))
	if r.Stats.Commits < uint64(threads*perThread) {
		t.Fatalf("commits = %d, want ≥ %d", r.Stats.Commits, threads*perThread)
	}
	if err := in.Backend.Check(); err != nil {
		t.Fatal(err)
	}
}
